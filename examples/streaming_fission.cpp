// Kernel fission with the Stream Pool (paper Section IV, Table IV):
//   1. drive the Table IV API by hand to build the Fig 13 pipeline —
//      segments of H2D copy, kernel, D2H copy rotating over three streams;
//   2. let the query executor do the same automatically for a SELECT over
//      16 GB of input — far beyond the simulated device's 6 GB.
//
// Build & run:  ./build/examples/streaming_fission
#include <fstream>
#include <iostream>

#include "common/table_printer.h"
#include "core/query_executor.h"
#include "core/select_chain.h"
#include "sim/trace_export.h"
#include "stream/stream_pool.h"

int main() {
  using namespace kf;
  sim::DeviceSimulator device;

  // --- 1. The Stream Pool, used directly. ------------------------------------
  stream::StreamPool pool(device, 3);
  const int segments = 9;
  const std::uint64_t segment_bytes = MiB(256);
  std::vector<stream::StreamHandle> handles;
  std::vector<sim::TraceCommand> trace_meta;
  for (int s = 0; s < 3; ++s) handles.push_back(pool.GetAvailableStream());

  for (int s = 0; s < segments; ++s) {
    const stream::StreamHandle h = handles[static_cast<std::size_t>(s) % 3];
    pool.SetStreamCommand(
        h, {device.MakeCopy(segment_bytes, sim::CopyDirection::kHostToDevice,
                            sim::HostMemoryKind::kPinned, "h2d"),
            {}});
    trace_meta.push_back({sim::CommandKind::kCopyH2D, "h2d[" + std::to_string(s) + "]"});
    sim::KernelProfile kernel;
    kernel.label = "select";
    kernel.elements = segment_bytes / 4;
    kernel.global_bytes_read = segment_bytes;
    kernel.global_bytes_written = segment_bytes / 2;
    kernel.memory_access_efficiency = 0.55;
    pool.SetStreamCommand(h, {device.MakeKernel(kernel), {}});
    trace_meta.push_back({sim::CommandKind::kKernel, "select[" + std::to_string(s) + "]"});
    pool.SetStreamCommand(
        h, {device.MakeCopy(segment_bytes / 2, sim::CopyDirection::kDeviceToHost,
                            sim::HostMemoryKind::kPinned, "d2h"),
            {}});
    trace_meta.push_back({sim::CommandKind::kCopyD2H, "d2h[" + std::to_string(s) + "]"});
  }
  pool.StartStreams();
  const sim::TimelineStats& stats = pool.WaitAll();

  // What serial execution of the same commands would cost.
  SimTime serial = 0;
  serial += segments * device.pcie().TransferTime(segment_bytes,
                                                  sim::HostMemoryKind::kPinned,
                                                  sim::CopyDirection::kHostToDevice);
  serial += segments * device.pcie().TransferTime(segment_bytes / 2,
                                                  sim::HostMemoryKind::kPinned,
                                                  sim::CopyDirection::kDeviceToHost);
  serial += stats.compute_busy;
  std::cout << "hand-built Fig 13 pipeline, " << segments << " segments x "
            << FormatBytes(segment_bytes) << ":\n"
            << "  pipelined makespan: " << FormatTime(stats.makespan) << "\n"
            << "  serial estimate:    " << FormatTime(serial) << "\n"
            << "  overlap speedup:    "
            << TablePrinter::Num(serial / stats.makespan, 2) << "x\n"
            << "  engine busy times — H2D " << FormatTime(stats.h2d_busy)
            << ", compute " << FormatTime(stats.compute_busy) << ", D2H "
            << FormatTime(stats.d2h_busy) << "\n\n";

  // Export the schedule for chrome://tracing / ui.perfetto.dev.
  {
    std::ofstream trace("fission_pipeline_trace.json");
    trace << sim::ToChromeTrace(stats, trace_meta);
  }
  std::cout << "wrote fission_pipeline_trace.json (open in chrome://tracing)\n\n";

  // --- 2. The executor's automatic fission on out-of-core data. --------------
  core::QueryExecutor executor(device);
  core::SelectChain chain =
      core::MakeSelectChain(4'000'000'000ull, std::vector<double>{0.5});
  std::cout << "SELECT over " << FormatBytes(chain.input_bytes())
            << " of input through a " << FormatBytes(device.spec().mem_capacity_bytes)
            << " device:\n";
  for (core::Strategy strategy :
       {core::Strategy::kSerial, core::Strategy::kFission}) {
    core::ExecutorOptions options;
    options.strategy = strategy;
    const auto report =
        executor.EstimateOnly(chain.graph, chain.expected_rows, options);
    std::cout << "  " << ToString(strategy) << ": " << FormatTime(report.makespan)
              << " (" << FormatGBs(report.ThroughputGBs(chain.input_bytes()))
              << ", peak device use " << FormatBytes(report.peak_device_bytes)
              << ")\n";
  }
  std::cout << "\nfission turns the out-of-core SELECT into a pipeline bounded "
               "by the input transfer alone (paper Fig 14).\n";
  return 0;
}
