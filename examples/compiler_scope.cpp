// The compiler's view of kernel fusion (paper Table III / Fig 7(f)):
// lowering SELECT filters to the mini PTX-like IR, printing the bodies
// before and after the -O3 pipeline, separately and fused — and running
// both through the IR interpreter to show they compute the same thing.
//
// Build & run:  ./build/examples/compiler_scope
#include <iostream>

#include "core/expr_lower.h"
#include "ir/interpreter.h"
#include "ir/kernel_gen.h"
#include "ir/liveness.h"
#include "ir/passes.h"

int main() {
  using namespace kf;
  using ir::CompareKind;
  using ir::FilterStep;

  std::cout << "Two SELECT kernels: keep d < 1000, then keep d < 500.\n\n";

  ir::Function k1 = ir::BuildSelectKernel("select_k1", FilterStep{CompareKind::kLt, 1000});
  ir::Function k2 = ir::BuildSelectKernel("select_k2", FilterStep{CompareKind::kLt, 500});
  ir::Function fused = ir::BuildFusedSelectKernel(
      "fused", {{CompareKind::kLt, 1000}, {CompareKind::kLt, 500}});

  std::cout << "--- unoptimized fused kernel (what source-level fusion emits) ---\n"
            << fused.ToString() << "\n"
            << "instructions: " << fused.InstructionCount()
            << ", peak register pressure: " << ir::MaxRegisterPressure(fused)
            << "\n\n";

  const std::size_t unfused_o0 = k1.InstructionCount() + k2.InstructionCount();
  ir::OptimizeO3(k1);
  ir::OptimizeO3(k2);
  const std::size_t unfused_o3 = k1.InstructionCount() + k2.InstructionCount();
  const std::size_t fused_o0 = fused.InstructionCount();
  ir::OptimizeO3(fused);

  std::cout << "--- optimized fused kernel ---\n" << fused.ToString() << "\n";
  std::cout << "Table III:\n"
            << "  separate kernels: " << unfused_o0 << " -> " << unfused_o3
            << " instructions under O3\n"
            << "  fused kernel:     " << fused_o0 << " -> "
            << fused.InstructionCount() << " instructions under O3\n"
            << "  (the two comparisons collapsed into one: d < 500)\n\n";

  // Prove semantics held, via the interpreter.
  int agree = 0;
  for (std::int64_t d = 0; d < 1500; d += 25) {
    ir::SlotState in;
    in.ints["in"] = d;
    ir::SlotState chained = in;
    // Unfused: k1 writes its survivors to "out"; feed those to k2.
    const ir::SlotState after_k1 = Interpret(k1, chained).slots;
    ir::SlotState k2_in;
    bool passed_k1 = after_k1.ints.count("out") != 0;
    if (passed_k1) k2_in.ints["in"] = after_k1.ints.at("out");
    const bool unfused_keeps =
        passed_k1 && Interpret(k2, k2_in).slots.ints.count("out") != 0;
    const bool fused_keeps = Interpret(fused, in).slots.ints.count("out") != 0;
    if (unfused_keeps == fused_keeps) ++agree;
  }
  std::cout << "interpreter agreement over 60 probe values: " << agree
            << "/60\n";
  return 0;
}
