// The paper's core microbenchmark as a library walk-through: back-to-back
// SELECT operators, staged exactly like Fig 3 (partition / filter / buffer /
// gather), run unfused and fused (Fig 6), functionally on host threads and
// timed on the simulated device for every execution strategy.
//
// Build & run:  ./build/examples/select_pipeline
#include <iostream>

#include "common/thread_pool.h"
#include "core/query_executor.h"
#include "core/select_chain.h"
#include "relational/staged_kernel.h"

int main() {
  using namespace kf;

  // --- Functional layer: the staged kernels themselves. ---------------------
  const std::size_t n = 1'000'000;
  const relational::Table data = core::MakeUniformInt32Table(n);
  const auto& values = data.column(0).AsInt32();
  const std::vector<relational::Int32Predicate> predicates = {
      [](std::int32_t v) { return v < (1 << 30); },  // keep 50%
      [](std::int32_t v) { return v < (1 << 29); },  // keep 50% of those
  };

  ThreadPool pool;  // each chunk = one simulated CTA
  std::vector<relational::StagedSelectStats> unfused_stats;
  const auto unfused =
      relational::StagedSelectChainUnfused(values, predicates, 448, &pool,
                                           &unfused_stats);
  relational::StagedSelectStats fused_stats;
  const auto fused =
      relational::StagedSelectChainFused(values, predicates, 448, &pool, &fused_stats);

  std::cout << "input elements:        " << n << "\n"
            << "after two 50% SELECTs: " << fused.size() << " ("
            << 100.0 * static_cast<double>(fused.size()) / static_cast<double>(n)
            << "%)\n"
            << "unfused == fused:      " << (unfused == fused ? "yes" : "NO") << "\n"
            << "unfused stage passes:  " << unfused_stats.size()
            << " staged selects (2 device kernels each)\n"
            << "fused stage passes:    1 staged select, filter depth "
            << fused_stats.filter_stage_count << "\n\n";

  // --- Timing layer: the same chain on the simulated C2070, all four
  // strategies, at a size where the differences matter (200M elements). -----
  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  core::SelectChain chain =
      core::MakeSelectChain(200'000'000, std::vector<double>{0.5, 0.5});
  std::cout << "simulated timings for 200M elements ("
            << FormatBytes(chain.input_bytes()) << " over PCIe):\n";
  for (core::Strategy strategy :
       {core::Strategy::kSerial, core::Strategy::kFused, core::Strategy::kFission,
        core::Strategy::kFusedFission}) {
    core::ExecutorOptions options;
    options.strategy = strategy;
    const auto report =
        executor.EstimateOnly(chain.graph, chain.expected_rows, options);
    std::cout << "  " << ToString(strategy) << ": "
              << FormatTime(report.makespan) << "  ("
              << FormatGBs(report.ThroughputGBs(chain.input_bytes()))
              << ", compute " << FormatTime(report.compute_time) << ", CPU gather "
              << FormatTime(report.host_gather_time) << ")\n";
  }
  return 0;
}
