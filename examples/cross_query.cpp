// Cross-query kernel fusion (paper Section III-A): two independent queries
// scan the same relation; merging their operator graphs lets the planner
// fuse both into one shared-scan kernel. Results stay per-query; the scan
// happens once.
//
// Build & run:  ./build/examples/cross_query
#include <iostream>

#include "common/table_printer.h"
#include "core/graph_merge.h"
#include "core/query_executor.h"
#include "core/select_chain.h"

int main() {
  using namespace kf;
  using relational::DataType;
  using relational::Expr;
  using relational::OperatorDesc;
  using relational::Schema;

  // Query A: which readings are below 2^29?
  core::OpGraph query_a;
  {
    const auto src = query_a.AddSource("readings", Schema{{"v", DataType::kInt32}}, 0);
    query_a.AddOperator(
        OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(1 << 29)), "low"),
        src);
  }
  // Query B: how many readings are above 2^30, and their mean?
  core::OpGraph query_b;
  {
    const auto src = query_b.AddSource("readings", Schema{{"v", DataType::kInt32}}, 0);
    const auto sel = query_b.AddOperator(
        OperatorDesc::Select(Expr::Ge(Expr::FieldRef(0), Expr::Lit(1 << 30)), "high"),
        src);
    query_b.AddOperator(
        OperatorDesc::Aggregate(
            {},
            {relational::AggregateSpec{relational::AggregateSpec::Func::kCount, 0, "n"},
             relational::AggregateSpec{relational::AggregateSpec::Func::kAvg, 0,
                                       "mean"}}),
        sel);
  }

  const core::MergeResult merged = MergeGraphs(query_a, query_b);
  std::cout << "merged graph (one shared source):\n" << merged.graph.ToString();
  const core::FusionPlan plan = PlanFusion(merged.graph);
  std::cout << "\nfusion plan:\n" << plan.ToString(merged.graph) << "\n";

  const relational::Table data = core::MakeUniformInt32Table(500000);
  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  core::ExecutorOptions options;
  options.strategy = core::Strategy::kFused;

  const auto separate_a =
      executor.Execute(query_a, {{query_a.Sources()[0], data}}, options);
  const auto separate_b =
      executor.Execute(query_b, {{query_b.Sources()[0], data}}, options);
  const auto together =
      executor.Execute(merged.graph, {{merged.graph.Sources()[0], data}}, options);

  std::cout << "query A alone:        " << FormatTime(separate_a.makespan) << "\n"
            << "query B alone:        " << FormatTime(separate_b.makespan) << "\n"
            << "back-to-back total:   "
            << FormatTime(separate_a.makespan + separate_b.makespan) << "\n"
            << "merged, shared scan:  " << FormatTime(together.makespan) << "  ("
            << TablePrinter::Num((separate_a.makespan + separate_b.makespan) /
                                     together.makespan, 2)
            << "x)\n\n";

  for (const auto& [sink, table] : together.sink_results) {
    std::cout << "result of sink #" << sink << ": " << table.row_count()
              << " row(s)\n";
  }
  std::cout << "\nthe shared relation crossed PCIe once ("
            << FormatBytes(together.h2d_bytes) << " vs "
            << FormatBytes(separate_a.h2d_bytes + separate_b.h2d_bytes)
            << " separately).\n";
  return 0;
}
