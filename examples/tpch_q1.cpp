// TPC-H Q1 end to end: generate data, build the paper's Fig 17(a) plan
// (SELECT + six JOINs reassembling the wide relation, SORT, price
// arithmetic, AGGREGATION, UNIQUE), fuse it, execute it, and validate the
// result against an independent scalar implementation.
//
// Build & run:  ./build/examples/tpch_q1
#include <iostream>

#include "common/table_printer.h"
#include "core/query_executor.h"
#include "tpch/q1.h"

int main() {
  using namespace kf;

  tpch::TpchConfig config;
  config.order_count = 5000;
  config.supplier_count = 100;
  const tpch::TpchData data = MakeTpchData(config);
  std::cout << "generated " << data.lineitem.row_count() << " lineitems over "
            << data.orders.row_count() << " orders\n\n";

  tpch::QueryPlan plan = BuildQ1Plan(data);
  std::cout << "query plan (Fig 17a):\n" << plan.graph.ToString() << "\n";

  core::FusionOptions fusion_options;
  fusion_options.register_budget = 63;
  const core::FusionPlan fusion = PlanFusion(plan.graph, fusion_options);
  std::cout << "fusion plan — the SELECT and all six JOINs become one kernel, "
               "the arithmetic + aggregation another:\n"
            << fusion.ToString(plan.graph) << "\n";

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  relational::Table result;
  double baseline = 0;
  for (core::Strategy strategy :
       {core::Strategy::kSerial, core::Strategy::kFused,
        core::Strategy::kFusedFission}) {
    core::ExecutorOptions options;
    options.strategy = strategy;
    options.fusion = fusion_options;
    const auto report = executor.Execute(plan.graph, plan.sources, options);
    if (strategy == core::Strategy::kSerial) {
      baseline = report.makespan;
      result = report.sink_results.at(plan.sink);
    }
    std::cout << ToString(strategy) << ": " << FormatTime(report.makespan)
              << " simulated (" << TablePrinter::Num(report.makespan / baseline, 3)
              << " normalized), " << report.kernel_launches << " launches\n";
  }

  const relational::Table reference = tpch::ReferenceQ1(data.lineitem);
  std::cout << "\nresult matches scalar reference: "
            << (relational::ApproxSameRowMultiset(result, reference, 1e-6) ? "yes"
                                                                           : "NO")
            << "\n\npricing summary (flag, status, sums, averages, count):\n"
            << result.ToString();
  return 0;
}
