// Quickstart — the library in five minutes:
//   1. build relations and run the Table-I relational operators;
//   2. express a query as an operator graph;
//   3. let the fusion planner cluster it (paper Section III-C);
//   4. execute it against the simulated Tesla C2070 with and without
//      fusion, and compare results and simulated time.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/query_executor.h"
#include "core/select_chain.h"
#include "relational/operators.h"

int main() {
  using namespace kf;
  using namespace kf::relational;

  // --- 1. Relations and operators (paper Table I, letters encoded a=1...).
  Table x(Schema{{"key", DataType::kInt64}, {"val", DataType::kInt64}});
  x.AppendRow({Value::Int64(3), Value::Int64(1)});
  x.AppendRow({Value::Int64(4), Value::Int64(1)});
  x.AppendRow({Value::Int64(2), Value::Int64(2)});
  Table y(Schema{{"key", DataType::kInt64}, {"val", DataType::kInt64}});
  y.AppendRow({Value::Int64(2), Value::Int64(6)});
  y.AppendRow({Value::Int64(3), Value::Int64(3)});

  std::cout << "x = " << x.ToString() << "y = " << y.ToString();
  std::cout << "join x y = "
            << ApplyOperator(OperatorDesc::Join(), x, &y).ToString();
  std::cout << "select key==2 x = "
            << ApplyOperator(
                   OperatorDesc::Select(Expr::Eq(Expr::FieldRef(0), Expr::Lit(2))), x)
                   .ToString();

  // --- 2. A query as an operator graph: two chained SELECTs and an
  // aggregation over a generated relation (Fig 2 patterns a + g).
  core::OpGraph graph;
  const core::NodeId source = graph.AddSource(
      "numbers", Schema{{"v", DataType::kInt32}}, /*row_hint=*/100000);
  const core::NodeId keep_small = graph.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(1 << 30)),
                           "keep_small"),
      source);
  const core::NodeId keep_even = graph.AddOperator(
      OperatorDesc::Select(
          Expr::Eq(Expr::Sub(Expr::FieldRef(0),
                             Expr::Mul(Expr::Div(Expr::FieldRef(0), Expr::Lit(2)),
                                       Expr::Lit(2))),
                   Expr::Lit(0)),
          "keep_even"),
      keep_small);
  graph.AddOperator(
      OperatorDesc::Aggregate(
          {}, {AggregateSpec{AggregateSpec::Func::kCount, 0, "n"},
               AggregateSpec{AggregateSpec::Func::kAvg, 0, "mean"}}),
      keep_even);
  std::cout << "\nOperator graph:\n" << graph.ToString();

  // --- 3. Fusion plan: all three operators stream in ONE fused kernel.
  const core::FusionPlan plan = PlanFusion(graph);
  std::cout << "\nFusion plan:\n" << plan.ToString(graph);

  // --- 4. Execute on the simulated device, unfused vs fused.
  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  std::map<core::NodeId, Table> sources;
  sources.emplace(source, core::MakeUniformInt32Table(100000));

  for (core::Strategy strategy : {core::Strategy::kSerial, core::Strategy::kFused}) {
    core::ExecutorOptions options;
    options.strategy = strategy;
    const core::ExecutionReport report =
        executor.Execute(graph, sources, options);
    std::cout << "\n" << ToString(strategy) << ": simulated "
              << FormatTime(report.makespan) << " ("
              << report.kernel_launches << " kernel launches)\n"
              << report.sink_results.begin()->second.ToString();
  }
  std::cout << "\nSame answer, fewer kernels, less simulated time - that is "
               "kernel fusion.\n";
  return 0;
}
