#include "relational/predicate.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "relational/expr.h"

namespace kf::relational {
namespace {

constexpr std::int64_t kI32Min = std::numeric_limits<std::int32_t>::min();
constexpr std::int64_t kI32Max = std::numeric_limits<std::int32_t>::max();

std::vector<std::int32_t> TestInput() {
  std::vector<std::int32_t> input;
  // Deterministic mix of signs, magnitudes, and the domain edges.
  std::mt19937 rng(1234);
  std::uniform_int_distribution<std::int32_t> dist(
      std::numeric_limits<std::int32_t>::min(),
      std::numeric_limits<std::int32_t>::max());
  for (int i = 0; i < 4096; ++i) input.push_back(dist(rng));
  for (std::int32_t v : {0, 1, -1, 7, -7,
                         std::numeric_limits<std::int32_t>::min(),
                         std::numeric_limits<std::int32_t>::max()}) {
    input.push_back(v);
  }
  return input;
}

// Reference filter via the scalar Matches path.
std::vector<std::int32_t> ScalarFilter(const std::vector<std::int32_t>& input,
                                       const TypedPredicate& pred) {
  std::vector<std::int32_t> out;
  for (std::int32_t v : input) {
    if (pred.Matches(v)) out.push_back(v);
  }
  return out;
}

TEST(TypedPredicate, KernelsMatchScalarReference) {
  const std::vector<std::int32_t> input = TestInput();
  const Int32Predicate odd = [](std::int32_t v) { return (v & 1) != 0; };
  const std::vector<TypedPredicate> preds = {
      TypedPredicate::AlwaysTrue(),  TypedPredicate::AlwaysFalse(),
      TypedPredicate::Lt(17),        TypedPredicate::Le(-3),
      TypedPredicate::Gt(100000),    TypedPredicate::Ge(0),
      TypedPredicate::Eq(7),         TypedPredicate::Ne(0),
      TypedPredicate::InRange(-50, 50),
      TypedPredicate::InRange(10, 9),  // empty range
      TypedPredicate::MaskEq(0xFF, 0x0F),
      TypedPredicate::Fallback(odd),
  };
  std::vector<std::int32_t> out(input.size());
  for (const TypedPredicate& pred : preds) {
    const std::vector<std::int32_t> expected = ScalarFilter(input, pred);
    const std::size_t n = FilterInt32(input, pred, out.data());
    ASSERT_EQ(n, expected.size()) << pred.ToString();
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(), out.begin()))
        << pred.ToString();
    EXPECT_EQ(CountInt32(input, pred), expected.size()) << pred.ToString();
  }
}

TEST(TypedPredicate, FilterAllIsConjunction) {
  const std::vector<std::int32_t> input = TestInput();
  const Int32Predicate odd = [](std::int32_t v) { return (v & 1) != 0; };
  const std::vector<TypedPredicate> chain = {
      TypedPredicate::Ge(-1000000), TypedPredicate::Lt(1000000),
      TypedPredicate::Fallback(odd)};
  std::vector<std::int32_t> expected;
  for (std::int32_t v : input) {
    if (v >= -1000000 && v < 1000000 && (v & 1) != 0) expected.push_back(v);
  }
  std::vector<std::int32_t> out(input.size());
  const std::size_t n = FilterInt32All(input, chain, out.data());
  ASSERT_EQ(n, expected.size());
  EXPECT_TRUE(std::equal(expected.begin(), expected.end(), out.begin()));
}

TEST(TypedPredicate, FilterAllEmptyChainPassesEverything) {
  const std::vector<std::int32_t> input = {3, 1, 4, 1, 5};
  std::vector<std::int32_t> out(input.size());
  EXPECT_EQ(FilterInt32All(input, {}, out.data()), input.size());
  EXPECT_TRUE(std::equal(input.begin(), input.end(), out.begin()));
}

TEST(FoldConjunction, MergesBoundsIntoRange) {
  const std::vector<TypedPredicate> chain = {TypedPredicate::Gt(10),
                                             TypedPredicate::Lt(20)};
  const std::vector<TypedPredicate> folded = FoldConjunction(chain);
  ASSERT_EQ(folded.size(), 1u);
  EXPECT_EQ(folded[0].op, PredOp::kInRange);
  EXPECT_EQ(folded[0].a, 11);
  EXPECT_EQ(folded[0].b, 19);
}

TEST(FoldConjunction, ContradictionCollapsesToFalse) {
  const std::vector<TypedPredicate> chain = {TypedPredicate::Lt(0),
                                             TypedPredicate::Gt(10)};
  const std::vector<TypedPredicate> folded = FoldConjunction(chain);
  ASSERT_EQ(folded.size(), 1u);
  EXPECT_EQ(folded[0].op, PredOp::kAlwaysFalse);
}

TEST(FoldConjunction, EqInsideBoundsStaysEq) {
  const std::vector<TypedPredicate> chain = {
      TypedPredicate::Ge(0), TypedPredicate::Eq(5), TypedPredicate::Le(100)};
  const std::vector<TypedPredicate> folded = FoldConjunction(chain);
  ASSERT_EQ(folded.size(), 1u);
  EXPECT_EQ(folded[0].op, PredOp::kEq);
  EXPECT_EQ(folded[0].a, 5);
}

TEST(FoldConjunction, PreservesUnfoldableInOrder) {
  const Int32Predicate odd = [](std::int32_t v) { return (v & 1) != 0; };
  const std::vector<TypedPredicate> chain = {
      TypedPredicate::Ne(3), TypedPredicate::Gt(0),
      TypedPredicate::Fallback(odd)};
  const std::vector<TypedPredicate> folded = FoldConjunction(chain);
  ASSERT_EQ(folded.size(), 3u);
  EXPECT_EQ(folded[0].op, PredOp::kGe);  // Gt 0 -> Ge 1
  EXPECT_EQ(folded[0].a, 1);
  EXPECT_EQ(folded[1].op, PredOp::kNe);
  EXPECT_EQ(folded[2].op, PredOp::kFallback);
}

TEST(FoldConjunction, TautologiesDisappear) {
  const std::vector<TypedPredicate> chain = {TypedPredicate::AlwaysTrue(),
                                             TypedPredicate::AlwaysTrue()};
  const std::vector<TypedPredicate> folded = FoldConjunction(chain);
  ASSERT_EQ(folded.size(), 1u);
  EXPECT_EQ(folded[0].op, PredOp::kAlwaysTrue);
}

TEST(CompilePredicate, SimpleComparisons) {
  // Folding normalizes strict bounds to inclusive form: v < 42  <=>  v <= 41.
  const auto lt = CompilePredicate(
      Expr::Lt(Expr::FieldRef(0), Expr::Lit(std::int64_t{42})));
  ASSERT_TRUE(lt.has_value());
  EXPECT_EQ(lt->op, PredOp::kLe);
  EXPECT_EQ(lt->a, 41);

  // Literal on the left mirrors the comparison: 42 < v  <=>  v >= 43.
  const auto gt = CompilePredicate(
      Expr::Lt(Expr::Lit(std::int64_t{42}), Expr::FieldRef(0)));
  ASSERT_TRUE(gt.has_value());
  EXPECT_EQ(gt->op, PredOp::kGe);
  EXPECT_EQ(gt->a, 43);
}

TEST(CompilePredicate, AndFoldsToRange) {
  const Expr expr = Expr::And(
      Expr::Ge(Expr::FieldRef(0), Expr::Lit(std::int64_t{10})),
      Expr::Le(Expr::FieldRef(0), Expr::Lit(std::int64_t{20})));
  const auto pred = CompilePredicate(expr);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->op, PredOp::kInRange);
  EXPECT_EQ(pred->a, 10);
  EXPECT_EQ(pred->b, 20);
}

TEST(CompilePredicate, NotNegatesComparison) {
  const auto pred = CompilePredicate(
      Expr::Not(Expr::Lt(Expr::FieldRef(0), Expr::Lit(std::int64_t{5}))));
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->op, PredOp::kGe);
  EXPECT_EQ(pred->a, 5);
}

TEST(CompilePredicate, OutOfRangeLiteralsFoldExactly) {
  // EvalExpr compares in int64: v < 2^40 is true for every int32.
  const auto t = CompilePredicate(
      Expr::Lt(Expr::FieldRef(0), Expr::Lit(std::int64_t{1} << 40)));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->op, PredOp::kAlwaysTrue);

  const auto f = CompilePredicate(
      Expr::Eq(Expr::FieldRef(0), Expr::Lit(kI32Max + 1)));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->op, PredOp::kAlwaysFalse);

  const auto all = CompilePredicate(
      Expr::Ne(Expr::FieldRef(0), Expr::Lit(kI32Min - 1)));
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->op, PredOp::kAlwaysTrue);

  // Boundary literals stay exact comparisons.
  const auto le_max = CompilePredicate(
      Expr::Le(Expr::FieldRef(0), Expr::Lit(kI32Max)));
  ASSERT_TRUE(le_max.has_value());
  EXPECT_EQ(le_max->op, PredOp::kAlwaysTrue);  // v <= INT32_MAX always holds
  const auto lt_max = CompilePredicate(
      Expr::Lt(Expr::FieldRef(0), Expr::Lit(kI32Max)));
  ASSERT_TRUE(lt_max.has_value());
  EXPECT_EQ(lt_max->op, PredOp::kLe);  // normalized: v < MAX  <=>  v <= MAX-1
  EXPECT_EQ(lt_max->a, kI32Max - 1);
}

TEST(CompilePredicate, RejectsUncompilableShapes) {
  // Float literal: compares as double, not expressible in int32 kernels.
  EXPECT_FALSE(CompilePredicate(Expr::Lt(Expr::FieldRef(0), Expr::LitF(1.5)))
                   .has_value());
  // Wrong field.
  EXPECT_FALSE(CompilePredicate(
                   Expr::Lt(Expr::FieldRef(1), Expr::Lit(std::int64_t{3})))
                   .has_value());
  // Arithmetic inside the comparison.
  EXPECT_FALSE(CompilePredicate(
                   Expr::Lt(Expr::Add(Expr::FieldRef(0), Expr::Lit(1)),
                            Expr::Lit(std::int64_t{3})))
                   .has_value());
  // Disjunction.
  EXPECT_FALSE(CompilePredicate(
                   Expr::Or(Expr::Lt(Expr::FieldRef(0), Expr::Lit(1)),
                            Expr::Gt(Expr::FieldRef(0), Expr::Lit(5))))
                   .has_value());
}

TEST(CompilePredicate, MatchesEvalExprOnRandomComparisons) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<std::int64_t> lit_dist(kI32Min * 4, kI32Max * 4);
  std::uniform_int_distribution<std::int32_t> val_dist(
      std::numeric_limits<std::int32_t>::min(),
      std::numeric_limits<std::int32_t>::max());
  const std::vector<ExprOp> ops = {ExprOp::kLt, ExprOp::kLe, ExprOp::kGt,
                                   ExprOp::kGe, ExprOp::kEq, ExprOp::kNe};
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t lit = lit_dist(rng);
    const ExprOp op = ops[static_cast<std::size_t>(trial) % ops.size()];
    const Expr expr = Expr::Binary(op, Expr::FieldRef(0), Expr::Lit(lit));
    const auto pred = CompilePredicate(expr);
    ASSERT_TRUE(pred.has_value());
    for (int probe = 0; probe < 32; ++probe) {
      const std::int32_t v = val_dist(rng);
      const Row row = {Value::Int32(v)};
      EXPECT_EQ(pred->Matches(v), EvalExpr(expr, row).as_bool())
          << expr.ToString() << " at v=" << v;
    }
  }
}

}  // namespace
}  // namespace kf::relational
