#include "relational/compression.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace kf::relational {
namespace {

TEST(Compression, RoundTripsRandomData) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::int32_t> values(static_cast<std::size_t>(rng.UniformInt(0, 5000)));
    for (auto& v : values) {
      v = static_cast<std::int32_t>(rng.UniformInt(INT32_MIN, INT32_MAX));
    }
    const CompressedInt32 compressed = CompressedInt32::Compress(values);
    EXPECT_EQ(compressed.Decompress(), values) << "trial " << trial;
  }
}

TEST(Compression, ConstantColumnCollapsesToOneRun) {
  const std::vector<std::int32_t> values(100000, 42);
  const CompressedInt32 compressed = CompressedInt32::Compress(values);
  EXPECT_EQ(compressed.scheme(), CompressionScheme::kRunLength);
  EXPECT_LT(compressed.compressed_bytes(), 100u);
  EXPECT_GT(compressed.ratio(), 1000.0);
  EXPECT_EQ(compressed.Decompress(), values);
}

TEST(Compression, NarrowDomainBitPacks) {
  // Dictionary-encoded flags (0-2) need 2 bits, not 32.
  Rng rng(2);
  std::vector<std::int32_t> values(50000);
  for (auto& v : values) v = static_cast<std::int32_t>(rng.UniformInt(0, 2));
  const CompressedInt32 compressed = CompressedInt32::Compress(values);
  EXPECT_EQ(compressed.scheme(), CompressionScheme::kBitPacked);
  EXPECT_GT(compressed.ratio(), 10.0);
  EXPECT_EQ(compressed.Decompress(), values);
}

TEST(Compression, NegativeFrameOfReference) {
  Rng rng(3);
  std::vector<std::int32_t> values(10000);
  for (auto& v : values) v = static_cast<std::int32_t>(rng.UniformInt(-1000100, -1000000));
  const CompressedInt32 compressed = CompressedInt32::Compress(values);
  EXPECT_EQ(compressed.scheme(), CompressionScheme::kBitPacked);
  EXPECT_EQ(compressed.Decompress(), values);
}

TEST(Compression, IncompressibleDataStaysRaw) {
  Rng rng(4);
  std::vector<std::int32_t> values(10000);
  for (auto& v : values) {
    v = static_cast<std::int32_t>(rng.UniformInt(INT32_MIN, INT32_MAX));
  }
  const CompressedInt32 compressed = CompressedInt32::Compress(values);
  EXPECT_EQ(compressed.scheme(), CompressionScheme::kRaw);
  EXPECT_LE(compressed.ratio(), 1.0 + 1e-9);
  EXPECT_EQ(compressed.Decompress(), values);
}

TEST(Compression, EmptyColumn) {
  const CompressedInt32 compressed = CompressedInt32::Compress({});
  EXPECT_EQ(compressed.value_count(), 0u);
  EXPECT_TRUE(compressed.Decompress().empty());
}

TEST(Compression, WideBitWidthBoundary) {
  // Span needing 31-33 bits of delta exercises the cross-word packing path.
  const std::vector<std::int32_t> values = {INT32_MIN, INT32_MAX, 0, -1, 1,
                                            INT32_MIN, INT32_MAX};
  const CompressedInt32 compressed = CompressedInt32::Compress(values);
  EXPECT_EQ(compressed.Decompress(), values);
}

TEST(Compression, SortedRunsOfDatesChooseRle) {
  // A sorted date column (post-SORT, as in Q1's flag/status ordering) is
  // extremely run-heavy.
  std::vector<std::int32_t> values;
  for (std::int32_t day = 0; day < 100; ++day) {
    values.insert(values.end(), 500, 8036 + day);
  }
  const CompressedInt32 compressed = CompressedInt32::Compress(values);
  EXPECT_EQ(compressed.scheme(), CompressionScheme::kRunLength);
  EXPECT_GT(compressed.ratio(), 100.0);
  EXPECT_EQ(compressed.Decompress(), values);
}

}  // namespace
}  // namespace kf::relational
