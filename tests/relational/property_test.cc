// Property-based cross-checks: the hash-based operator implementations in
// operators.cc against the naive sort/nested-loop reference implementations,
// over randomized relations, plus algebraic identities of the RA operators.
#include <gtest/gtest.h>

#include "common/random.h"
#include "relational/reference.h"

namespace kf::relational {
namespace {

Table RandomTable(Rng& rng, std::size_t rows, int key_range, int val_range) {
  Table t(Schema{{"k", DataType::kInt64}, {"v", DataType::kInt64}});
  for (std::size_t r = 0; r < rows; ++r) {
    t.AppendRow({Value::Int64(rng.UniformInt(0, key_range)),
                 Value::Int64(rng.UniformInt(0, val_range))});
  }
  return t;
}

class BinaryOpProperty : public ::testing::TestWithParam<OpKind> {};

TEST_P(BinaryOpProperty, HashImplementationMatchesNaiveReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 17);
  for (int trial = 0; trial < 20; ++trial) {
    const Table left = RandomTable(rng, rng.UniformInt(0, 60), 8, 3);
    const Table right = RandomTable(rng, rng.UniformInt(0, 60), 8, 3);
    OperatorDesc op;
    op.kind = GetParam();
    const Table a = ApplyOperator(op, left, &right);
    const Table b = reference::Apply(op, left, &right);
    EXPECT_TRUE(SameRowMultiset(a, b))
        << "trial " << trial << " kind " << ToString(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(SetAndJoinOps, BinaryOpProperty,
                         ::testing::Values(OpKind::kUnion, OpKind::kIntersect,
                                           OpKind::kDifference, OpKind::kJoin,
                                           OpKind::kProduct),
                         [](const auto& param_info) { return ToString(param_info.param); });

TEST(UnaryOpProperty, SelectMatchesReference) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const Table t = RandomTable(rng, rng.UniformInt(0, 100), 10, 10);
    const OperatorDesc op = OperatorDesc::Select(
        Expr::And(Expr::Lt(Expr::FieldRef(0), Expr::Lit(rng.UniformInt(0, 10))),
                  Expr::Ge(Expr::FieldRef(1), Expr::Lit(rng.UniformInt(0, 10)))));
    EXPECT_TRUE(SameRowMultiset(ApplyOperator(op, t), reference::Apply(op, t)));
  }
}

TEST(UnaryOpProperty, UniqueMatchesReference) {
  Rng rng(102);
  for (int trial = 0; trial < 20; ++trial) {
    const Table t = RandomTable(rng, 80, 4, 2);  // many duplicates
    const OperatorDesc op = OperatorDesc::Unique();
    EXPECT_TRUE(SameRowMultiset(ApplyOperator(op, t), reference::Apply(op, t)));
  }
}

// --- Algebraic identities ----------------------------------------------------

TEST(Algebra, UnionIsCommutative) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Table x = RandomTable(rng, 30, 6, 3);
    const Table y = RandomTable(rng, 30, 6, 3);
    const OperatorDesc u = OperatorDesc::Union();
    EXPECT_TRUE(SameRowMultiset(ApplyOperator(u, x, &y), ApplyOperator(u, y, &x)));
  }
}

TEST(Algebra, IntersectionIsCommutative) {
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    const Table x = RandomTable(rng, 40, 5, 2);
    const Table y = RandomTable(rng, 40, 5, 2);
    const OperatorDesc op = OperatorDesc::Intersect();
    EXPECT_TRUE(SameRowMultiset(ApplyOperator(op, x, &y), ApplyOperator(op, y, &x)));
  }
}

TEST(Algebra, DifferenceThenIntersectionIsEmpty) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const Table x = RandomTable(rng, 40, 5, 2);
    const Table y = RandomTable(rng, 40, 5, 2);
    const Table diff = ApplyOperator(OperatorDesc::Difference(), x, &y);
    const Table overlap = ApplyOperator(OperatorDesc::Intersect(), diff, &y);
    EXPECT_EQ(overlap.row_count(), 0u);
  }
}

TEST(Algebra, SelectConjunctionEqualsChainedSelects) {
  // The algebraic fact kernel fusion of SELECT chains relies on.
  Rng rng(10);
  for (int trial = 0; trial < 10; ++trial) {
    const Table t = RandomTable(rng, 100, 20, 20);
    const Expr p1 = Expr::Lt(Expr::FieldRef(0), Expr::Lit(12));
    const Expr p2 = Expr::Gt(Expr::FieldRef(1), Expr::Lit(5));
    const Table chained = ApplyOperator(
        OperatorDesc::Select(p2), ApplyOperator(OperatorDesc::Select(p1), t));
    const Table conjunct =
        ApplyOperator(OperatorDesc::Select(Expr::And(p1, p2)), t);
    EXPECT_TRUE(SameRowMultiset(chained, conjunct));
  }
}

TEST(Algebra, SelectCommutesWithSort) {
  Rng rng(11);
  const Table t = RandomTable(rng, 60, 10, 10);
  const Expr p = Expr::Le(Expr::FieldRef(1), Expr::Lit(5));
  const Table sort_then_select = ApplyOperator(
      OperatorDesc::Select(p), ApplyOperator(OperatorDesc::Sort({0}), t));
  const Table select_then_sort = ApplyOperator(
      OperatorDesc::Sort({0}), ApplyOperator(OperatorDesc::Select(p), t));
  EXPECT_TRUE(SameRowMultiset(sort_then_select, select_then_sort));
}

TEST(Algebra, ProjectAfterProductEqualsSides) {
  Rng rng(12);
  const Table x = RandomTable(rng, 10, 5, 5);
  const Table y = RandomTable(rng, 8, 5, 5);
  const Table prod = ApplyOperator(OperatorDesc::Product(), x, &y);
  EXPECT_EQ(prod.row_count(), x.row_count() * y.row_count());
  const Table left_again = ApplyOperator(OperatorDesc::Project({0, 1}), prod);
  // Every x row appears y.row_count() times.
  const Table expected = ApplyOperator(OperatorDesc::Unique(), left_again);
  const Table x_unique = ApplyOperator(OperatorDesc::Unique(), x);
  EXPECT_TRUE(SameRowMultiset(expected, x_unique));
}

TEST(Algebra, SortPreservesMultiset) {
  Rng rng(13);
  const Table t = RandomTable(rng, 100, 50, 50);
  const Table sorted = ApplyOperator(OperatorDesc::Sort({0, 1}), t);
  EXPECT_TRUE(SameRowMultiset(t, sorted));
  // And it is actually ordered.
  for (std::size_t r = 1; r < sorted.row_count(); ++r) {
    const Row a = sorted.GetRow(r - 1);
    const Row b = sorted.GetRow(r);
    const bool le = a[0] < b[0] || (a[0] == b[0] && !(b[1] < a[1]));
    EXPECT_TRUE(le) << "row " << r;
  }
}

}  // namespace
}  // namespace kf::relational
