#include "relational/csv.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/random.h"

namespace kf::relational {
namespace {

Table SampleTable() {
  Table t(Schema{{"id", DataType::kInt64},
                 {"flag", DataType::kInt32},
                 {"price", DataType::kFloat64}});
  t.AppendRow({Value::Int64(1), Value::Int32(0), Value::Float64(9.5)});
  t.AppendRow({Value::Int64(-2), Value::Int32(1), Value::Float64(0.125)});
  return t;
}

TEST(Csv, RoundTripPreservesSchemaAndRows) {
  const Table original = SampleTable();
  const Table parsed = FromCsv(ToCsv(original));
  EXPECT_EQ(parsed.schema().ToString(), original.schema().ToString());
  EXPECT_TRUE(SameRowMultiset(parsed, original));
}

TEST(Csv, HeaderCarriesTypes) {
  const std::string csv = ToCsv(SampleTable());
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "id:i64,flag:i32,price:f64");
}

TEST(Csv, RoundTripsDoublesExactly) {
  Table t(Schema{{"x", DataType::kFloat64}});
  t.AppendRow({Value::Float64(0.1 + 0.2)});  // needs 17 significant digits
  const Table parsed = FromCsv(ToCsv(t));
  EXPECT_EQ(parsed.column(0).Get(0).as_double(), 0.1 + 0.2);
}

TEST(Csv, RandomTablesRoundTrip) {
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    Table t(Schema{{"a", DataType::kInt32}, {"b", DataType::kFloat64}});
    const int rows = static_cast<int>(rng.UniformInt(0, 200));
    for (int r = 0; r < rows; ++r) {
      t.AppendRow({Value::Int32(static_cast<std::int32_t>(rng.UniformInt(-1000, 1000))),
                   Value::Float64(rng.UniformDouble(-5, 5))});
    }
    EXPECT_TRUE(SameRowMultiset(FromCsv(ToCsv(t)), t)) << "trial " << trial;
  }
}

TEST(Csv, EmptyTableRoundTrips) {
  Table t(Schema{{"only", DataType::kInt64}});
  const Table parsed = FromCsv(ToCsv(t));
  EXPECT_EQ(parsed.row_count(), 0u);
  EXPECT_EQ(parsed.schema().field(0).name, "only");
}

TEST(Csv, MalformedInputsThrow) {
  EXPECT_THROW(FromCsv(""), kf::Error);                         // no header
  EXPECT_THROW(FromCsv("a:i32,b\n1,2\n"), kf::Error);           // missing type
  EXPECT_THROW(FromCsv("a:i128\n1\n"), kf::Error);              // unknown type
  EXPECT_THROW(FromCsv("a:i32,b:i32\n1\n"), kf::Error);         // ragged row
  EXPECT_THROW(FromCsv("a:i32\nxyz\n"), kf::Error);             // bad integer
  EXPECT_THROW(FromCsv("a:f64\n1.5zz\n"), kf::Error);           // trailing junk
}

// Every ingestion failure carries the stable invalid_argument code so
// servers can classify client errors without string-matching messages.
TEST(Csv, MalformedInputsThrowTypedInvalidArgument) {
  const auto expect_invalid = [](const std::string& csv, const char* what) {
    try {
      (void)FromCsv(csv);
      ADD_FAILURE() << "expected kf::InvalidArgument for " << what;
    } catch (const kf::Error& e) {
      EXPECT_EQ(e.code(), kf::ErrorCode::kInvalidArgument) << what;
    }
  };
  expect_invalid("", "empty input");
  expect_invalid("a:i32,b\n1,2\n", "header field without type tag");
  expect_invalid("a:i128\n1\n", "unknown type tag");
  expect_invalid("a:i32,b:i32\n1\n", "truncated row (too few cells)");
  expect_invalid("a:i32,b:i32\n1,2,3\n", "overlong row (too many cells)");
  expect_invalid("a:i32\nxyz\n", "non-numeric integer field");
  expect_invalid("a:i32\n\xF0\x9F\x92\xA9\n", "non-ascii integer field");
  expect_invalid("a:f64\nnot-a-float\n", "non-numeric float field");
  expect_invalid("a:f64\n1.5zz\n", "float with trailing junk");
  expect_invalid("a:i32\n99999999999999999999\n", "integer out of range");
}

TEST(Csv, OverlongLinesThrowTypedInvalidArgument) {
  // Lines beyond the 1 MiB guard are rejected up front, header or data.
  const std::string long_cell(std::size_t{1} << 21, '7');
  const auto expect_invalid = [](const std::string& csv, const char* what) {
    try {
      (void)FromCsv(csv);
      ADD_FAILURE() << "expected kf::InvalidArgument for " << what;
    } catch (const kf::Error& e) {
      EXPECT_EQ(e.code(), kf::ErrorCode::kInvalidArgument) << what;
    }
  };
  expect_invalid("a:i64\n" + long_cell + "\n", "overlong data line");
  expect_invalid(long_cell + ":i64\n1\n", "overlong header line");
}

TEST(Csv, LargeButBoundedLinesStillParse) {
  // Just under the guard: many cells, one long line — must succeed.
  Table t(Schema{{"a", DataType::kInt64}});
  std::string csv = "a:i64\n123456789\n";
  EXPECT_EQ(FromCsv(csv).row_count(), 1u);
}

TEST(Csv, BlankLinesIgnored) {
  const Table parsed = FromCsv("a:i32\n1\n\n2\n");
  EXPECT_EQ(parsed.row_count(), 2u);
}

}  // namespace
}  // namespace kf::relational
