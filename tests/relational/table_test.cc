#include "relational/table.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace kf::relational {
namespace {

Schema TwoColSchema() {
  return Schema{{"k", DataType::kInt64}, {"v", DataType::kFloat64}};
}

TEST(Schema, IndexOfAndRowWidth) {
  const Schema s = TwoColSchema();
  EXPECT_EQ(s.IndexOf("k"), 0u);
  EXPECT_EQ(s.IndexOf("v"), 1u);
  EXPECT_THROW(s.IndexOf("nope"), Error);
  EXPECT_EQ(s.row_width_bytes(), 16u);
}

TEST(Table, AppendAndGetRows) {
  Table t(TwoColSchema());
  t.AppendRow({Value::Int64(1), Value::Float64(1.5)});
  t.AppendRow({Value::Int64(2), Value::Float64(2.5)});
  EXPECT_EQ(t.row_count(), 2u);
  const Row row = t.GetRow(1);
  EXPECT_EQ(row[0].as_int(), 2);
  EXPECT_DOUBLE_EQ(row[1].as_double(), 2.5);
  EXPECT_THROW(t.GetRow(2), Error);
}

TEST(Table, AppendRowValidatesArity) {
  Table t(TwoColSchema());
  EXPECT_THROW(t.AppendRow({Value::Int64(1)}), Error);
}

TEST(Table, ByteSizeSumsColumns) {
  Table t(TwoColSchema());
  for (int i = 0; i < 4; ++i) t.AppendRow({Value::Int64(i), Value::Float64(i)});
  EXPECT_EQ(t.byte_size(), 4u * (8 + 8));
}

TEST(Table, ColumnByName) {
  Table t(TwoColSchema());
  t.AppendRow({Value::Int64(7), Value::Float64(0.5)});
  EXPECT_EQ(t.column("k").Get(0).as_int(), 7);
}

TEST(Table, SyncRowCountFromColumns) {
  Table t(Schema{{"v", DataType::kInt32}});
  t.column(0).AsInt32() = {1, 2, 3};
  t.SyncRowCountFromColumns();
  EXPECT_EQ(t.row_count(), 3u);
}

TEST(Table, SyncRowCountRejectsRaggedColumns) {
  Table t(TwoColSchema());
  t.column(0).Append(Value::Int64(1));
  EXPECT_THROW(t.SyncRowCountFromColumns(), Error);
}

TEST(Table, SameRowMultisetIsOrderInsensitive) {
  Table a(TwoColSchema()), b(TwoColSchema());
  a.AppendRow({Value::Int64(1), Value::Float64(1.0)});
  a.AppendRow({Value::Int64(2), Value::Float64(2.0)});
  b.AppendRow({Value::Int64(2), Value::Float64(2.0)});
  b.AppendRow({Value::Int64(1), Value::Float64(1.0)});
  EXPECT_TRUE(SameRowMultiset(a, b));
}

TEST(Table, SameRowMultisetCountsDuplicates) {
  Table a(TwoColSchema()), b(TwoColSchema());
  a.AppendRow({Value::Int64(1), Value::Float64(1.0)});
  a.AppendRow({Value::Int64(1), Value::Float64(1.0)});
  b.AppendRow({Value::Int64(1), Value::Float64(1.0)});
  EXPECT_FALSE(SameRowMultiset(a, b));
  b.AppendRow({Value::Int64(1), Value::Float64(1.0)});
  EXPECT_TRUE(SameRowMultiset(a, b));
}

TEST(Table, ApproxSameRowMultisetToleratesUlps) {
  Table a(TwoColSchema()), b(TwoColSchema());
  a.AppendRow({Value::Int64(1), Value::Float64(0.1 + 0.2)});
  b.AppendRow({Value::Int64(1), Value::Float64(0.3)});
  EXPECT_TRUE(ApproxSameRowMultiset(a, b));
  EXPECT_FALSE(SameRowMultiset(a, b));  // exact comparison sees the ulp
}

TEST(Table, ApproxSameRowMultisetRejectsRealDifferences) {
  Table a(TwoColSchema()), b(TwoColSchema());
  a.AppendRow({Value::Int64(1), Value::Float64(1.0)});
  b.AppendRow({Value::Int64(1), Value::Float64(1.01)});
  EXPECT_FALSE(ApproxSameRowMultiset(a, b));
}

TEST(Table, ToStringTruncates) {
  Table t(TwoColSchema());
  for (int i = 0; i < 30; ++i) t.AppendRow({Value::Int64(i), Value::Float64(i)});
  const std::string s = t.ToString(5);
  EXPECT_NE(s.find("rows=30"), std::string::npos);
  EXPECT_NE(s.find("25 more"), std::string::npos);
}

}  // namespace
}  // namespace kf::relational
