#include "relational/staged_aggregate.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace kf::relational {
namespace {

std::vector<AggregateInput> RandomInput(Rng& rng, std::size_t n, std::int64_t groups) {
  std::vector<AggregateInput> input(n);
  for (auto& in : input) {
    in.group = rng.UniformInt(0, groups - 1);
    in.value = rng.UniformDouble(-10.0, 10.0);
  }
  return input;
}

// Scalar reference.
std::map<std::int64_t, GroupedSum> Naive(std::span<const AggregateInput> input) {
  std::map<std::int64_t, GroupedSum> out;
  for (const AggregateInput& in : input) {
    auto [it, inserted] = out.try_emplace(in.group);
    GroupedSum& acc = it->second;
    if (inserted) {
      acc.group = in.group;
      acc.min_value = in.value;
      acc.max_value = in.value;
    } else {
      acc.min_value = std::min(acc.min_value, in.value);
      acc.max_value = std::max(acc.max_value, in.value);
    }
    acc.sum += in.value;
    ++acc.count;
  }
  return out;
}

TEST(StagedGroupedAggregate, MatchesNaiveReference) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const auto input = RandomInput(rng, 5000, 16);
    const auto result = StagedGroupedAggregate(input, 16);
    const auto reference = Naive(input);
    ASSERT_EQ(result.size(), reference.size());
    for (const GroupedSum& acc : result) {
      const GroupedSum& ref = reference.at(acc.group);
      EXPECT_NEAR(acc.sum, ref.sum, 1e-9 * std::abs(ref.sum) + 1e-9);
      EXPECT_EQ(acc.count, ref.count);
      EXPECT_DOUBLE_EQ(acc.min_value, ref.min_value);
      EXPECT_DOUBLE_EQ(acc.max_value, ref.max_value);
    }
  }
}

TEST(StagedGroupedAggregate, OutputSortedByGroup) {
  Rng rng(2);
  const auto input = RandomInput(rng, 2000, 50);
  const auto result = StagedGroupedAggregate(input, 8);
  for (std::size_t i = 1; i < result.size(); ++i) {
    EXPECT_LT(result[i - 1].group, result[i].group);
  }
}

TEST(StagedGroupedAggregate, EmptyInput) {
  EXPECT_TRUE(StagedGroupedAggregate({}, 8).empty());
}

TEST(StagedGroupedAggregate, SingleGroup) {
  std::vector<AggregateInput> input;
  for (int i = 1; i <= 100; ++i) {
    input.push_back(AggregateInput{7, static_cast<double>(i)});
  }
  const auto result = StagedGroupedAggregate(input, 16);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_DOUBLE_EQ(result[0].sum, 5050.0);
  EXPECT_EQ(result[0].count, 100);
  EXPECT_DOUBLE_EQ(result[0].min_value, 1.0);
  EXPECT_DOUBLE_EQ(result[0].max_value, 100.0);
  EXPECT_DOUBLE_EQ(result[0].mean(), 50.5);
}

TEST(StagedGroupedAggregate, ChunkCountInvariance) {
  Rng rng(3);
  const auto input = RandomInput(rng, 3000, 10);
  const auto reference = StagedGroupedAggregate(input, 1);
  for (int chunks : {2, 7, 64, 448}) {
    const auto result = StagedGroupedAggregate(input, chunks);
    ASSERT_EQ(result.size(), reference.size()) << chunks;
    for (std::size_t i = 0; i < result.size(); ++i) {
      EXPECT_EQ(result[i].group, reference[i].group);
      EXPECT_NEAR(result[i].sum, reference[i].sum, 1e-9);
      EXPECT_EQ(result[i].count, reference[i].count);
    }
  }
}

TEST(StagedGroupedAggregate, ParallelMatchesSerial) {
  Rng rng(4);
  const auto input = RandomInput(rng, 100000, 32);
  ThreadPool pool(4);
  const auto serial = StagedGroupedAggregate(input, 64);
  const auto parallel = StagedGroupedAggregate(input, 64, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].group, parallel[i].group);
    EXPECT_NEAR(serial[i].sum, parallel[i].sum, 1e-6);
    EXPECT_EQ(serial[i].count, parallel[i].count);
  }
}

}  // namespace
}  // namespace kf::relational
