#include "relational/staged_sort.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "common/random.h"

namespace kf::relational {
namespace {

std::vector<std::int32_t> RandomKeys(std::size_t n, std::uint64_t seed,
                                     std::int32_t lo, std::int32_t hi) {
  Rng rng(seed);
  std::vector<std::int32_t> v(n);
  for (auto& x : v) x = static_cast<std::int32_t>(rng.UniformInt(lo, hi));
  return v;
}

TEST(StagedRadixSort, MatchesStdSortOnRandomData) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto keys = RandomKeys(10000, seed, -1000000, 1000000);
    auto expected = keys;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(StagedRadixSort(keys, 16), expected) << "seed " << seed;
  }
}

TEST(StagedRadixSort, HandlesNegativesAndExtremes) {
  std::vector<std::int32_t> keys = {0,  -1, 1,  INT32_MAX, INT32_MIN,
                                    42, -42, 7, INT32_MIN, INT32_MAX};
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(StagedRadixSort(keys, 3), expected);
}

TEST(StagedRadixSort, EmptyAndSingle) {
  EXPECT_TRUE(StagedRadixSort({}, 4).empty());
  EXPECT_EQ(StagedRadixSort(std::vector<std::int32_t>{5}, 4),
            std::vector<std::int32_t>{5});
}

TEST(StagedRadixSort, ChunkCountInvariance) {
  const auto keys = RandomKeys(5000, 9, -500, 500);
  const auto reference = StagedRadixSort(keys, 1);
  for (int chunks : {2, 7, 64, 448}) {
    EXPECT_EQ(StagedRadixSort(keys, chunks), reference) << chunks << " chunks";
  }
}

TEST(StagedRadixSort, ParallelMatchesSerial) {
  const auto keys = RandomKeys(100000, 10, INT32_MIN, INT32_MAX);
  ThreadPool pool(4);
  EXPECT_EQ(StagedRadixSort(keys, 32, &pool), StagedRadixSort(keys, 32));
}

TEST(StagedRadixSort, RejectsZeroChunks) {
  EXPECT_THROW(StagedRadixSort(std::vector<std::int32_t>{1}, 0), kf::Error);
}

TEST(StagedRadixArgsort, ProducesSortedPermutation) {
  const auto keys = RandomKeys(20000, 11, -100, 100);
  const auto perm = StagedRadixArgsort(keys, 16);
  ASSERT_EQ(perm.size(), keys.size());
  for (std::size_t i = 1; i < perm.size(); ++i) {
    EXPECT_LE(keys[perm[i - 1]], keys[perm[i]]) << "at " << i;
  }
  // It is a permutation: every index exactly once.
  std::vector<bool> seen(keys.size(), false);
  for (std::uint32_t p : perm) {
    ASSERT_LT(p, keys.size());
    ASSERT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(StagedRadixArgsort, IsStable) {
  // Many duplicate keys: equal keys keep input order (LSD radix property) —
  // what makes multi-column lexicographic sorting by successive passes work.
  const auto keys = RandomKeys(5000, 12, 0, 7);
  const auto perm = StagedRadixArgsort(keys, 8);
  for (std::size_t i = 1; i < perm.size(); ++i) {
    if (keys[perm[i - 1]] == keys[perm[i]]) {
      EXPECT_LT(perm[i - 1], perm[i]) << "stability violated at " << i;
    }
  }
}

TEST(StagedRadixArgsort, ChainedPassesSortLexicographically) {
  // Sort by minor key then by major key (stable): lexicographic (major, minor).
  Rng rng(13);
  const std::size_t n = 3000;
  std::vector<std::int32_t> major(n), minor(n);
  for (std::size_t i = 0; i < n; ++i) {
    major[i] = static_cast<std::int32_t>(rng.UniformInt(0, 5));
    minor[i] = static_cast<std::int32_t>(rng.UniformInt(-9, 9));
  }
  // Pass 1: argsort by minor.
  const auto by_minor = StagedRadixArgsort(minor, 8);
  std::vector<std::int32_t> major_reordered(n), minor_reordered(n);
  for (std::size_t i = 0; i < n; ++i) {
    major_reordered[i] = major[by_minor[i]];
    minor_reordered[i] = minor[by_minor[i]];
  }
  // Pass 2: stable argsort by major.
  const auto by_major = StagedRadixArgsort(major_reordered, 8);
  std::int32_t last_major = INT32_MIN, last_minor = INT32_MIN;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t mj = major_reordered[by_major[i]];
    const std::int32_t mn = minor_reordered[by_major[i]];
    if (mj == last_major) {
      EXPECT_LE(last_minor, mn) << "at " << i;
    } else {
      EXPECT_LT(last_major, mj);
    }
    last_major = mj;
    last_minor = mn;
  }
}

}  // namespace
}  // namespace kf::relational
