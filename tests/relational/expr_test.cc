#include "relational/expr.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace kf::relational {
namespace {

Row SampleRow() { return {Value::Int32(10), Value::Float64(0.5), Value::Int64(-3)}; }

TEST(Expr, FieldAndConstEval) {
  EXPECT_EQ(EvalExpr(Expr::FieldRef(0), SampleRow()).as_int(), 10);
  EXPECT_DOUBLE_EQ(EvalExpr(Expr::FieldRef(1), SampleRow()).as_double(), 0.5);
  EXPECT_EQ(EvalExpr(Expr::Lit(7), SampleRow()).as_int(), 7);
}

TEST(Expr, IntegerArithmeticStaysIntegral) {
  const Value v = EvalExpr(Expr::Add(Expr::FieldRef(0), Expr::Lit(5)), SampleRow());
  EXPECT_FALSE(v.is_float());
  EXPECT_EQ(v.as_int(), 15);
}

TEST(Expr, MixedArithmeticPromotesToDouble) {
  const Value v = EvalExpr(Expr::Mul(Expr::FieldRef(0), Expr::FieldRef(1)), SampleRow());
  EXPECT_TRUE(v.is_float());
  EXPECT_DOUBLE_EQ(v.as_double(), 5.0);
}

TEST(Expr, DivisionAlwaysDouble) {
  const Value v = EvalExpr(Expr::Div(Expr::Lit(1), Expr::Lit(2)), SampleRow());
  EXPECT_TRUE(v.is_float());
  EXPECT_DOUBLE_EQ(v.as_double(), 0.5);
}

TEST(Expr, DivisionByZeroThrows) {
  EXPECT_THROW(EvalExpr(Expr::Div(Expr::Lit(1), Expr::Lit(0)), SampleRow()), Error);
}

TEST(Expr, Comparisons) {
  const Row row = SampleRow();
  EXPECT_TRUE(EvalExpr(Expr::Lt(Expr::FieldRef(2), Expr::Lit(0)), row).as_bool());
  EXPECT_TRUE(EvalExpr(Expr::Ge(Expr::FieldRef(0), Expr::Lit(10)), row).as_bool());
  EXPECT_FALSE(EvalExpr(Expr::Eq(Expr::FieldRef(0), Expr::Lit(11)), row).as_bool());
  EXPECT_TRUE(EvalExpr(Expr::Ne(Expr::FieldRef(1), Expr::Lit(0)), row).as_bool());
}

TEST(Expr, LogicShortCircuits) {
  const Row row = SampleRow();
  // The right side would divide by zero; && must not evaluate it.
  const Expr guarded = Expr::And(Expr::Lt(Expr::FieldRef(0), Expr::Lit(0)),
                                 Expr::Lt(Expr::Div(Expr::Lit(1), Expr::Lit(0)), Expr::Lit(1)));
  EXPECT_FALSE(EvalExpr(guarded, row).as_bool());
  const Expr or_guarded = Expr::Or(Expr::Gt(Expr::FieldRef(0), Expr::Lit(0)),
                                   Expr::Lt(Expr::Div(Expr::Lit(1), Expr::Lit(0)), Expr::Lit(1)));
  EXPECT_TRUE(EvalExpr(or_guarded, row).as_bool());
}

TEST(Expr, NotNegates) {
  EXPECT_FALSE(EvalExpr(Expr::Not(Expr::Lit(1)), SampleRow()).as_bool());
  EXPECT_TRUE(EvalExpr(Expr::Not(Expr::Lit(0)), SampleRow()).as_bool());
}

TEST(Expr, FieldOutOfRangeThrows) {
  EXPECT_THROW(EvalExpr(Expr::FieldRef(9), SampleRow()), Error);
}

TEST(Expr, OpsCountGrowsWithTreeSize) {
  const Expr small = Expr::Lt(Expr::FieldRef(0), Expr::Lit(5));
  const Expr big = Expr::And(small, Expr::Gt(Expr::FieldRef(1), Expr::Lit(2)));
  EXPECT_GT(ExprOps(big), ExprOps(small));
}

TEST(Expr, RegisterEstimateSethiUllman) {
  // A single leaf needs one register.
  EXPECT_EQ(ExprRegisters(Expr::FieldRef(0)), 1);
  // A balanced tree of two leaves needs two.
  EXPECT_EQ(ExprRegisters(Expr::Add(Expr::FieldRef(0), Expr::FieldRef(1))), 2);
  // A deeper balanced tree needs three.
  EXPECT_EQ(ExprRegisters(Expr::Add(Expr::Add(Expr::FieldRef(0), Expr::FieldRef(1)),
                                    Expr::Add(Expr::FieldRef(2), Expr::FieldRef(3)))),
            3);
}

TEST(Expr, MaxFieldScansTree) {
  EXPECT_EQ(ExprMaxField(Expr::Lit(1)), -1);
  EXPECT_EQ(ExprMaxField(Expr::Mul(Expr::FieldRef(3),
                                   Expr::Sub(Expr::Lit(1), Expr::FieldRef(7)))),
            7);
}

TEST(Expr, ToStringReadable) {
  const Expr e = Expr::Lt(Expr::FieldRef(0), Expr::Lit(5));
  EXPECT_EQ(e.ToString(), "($0 < 5)");
}

}  // namespace
}  // namespace kf::relational
