// The staged SELECT (Fig 3) and the fused stage structure (Fig 6).
#include "relational/staged_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "common/random.h"

namespace kf::relational {
namespace {

std::vector<std::int32_t> RandomInts(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int32_t> v(n);
  for (auto& x : v) x = static_cast<std::int32_t>(rng.UniformInt(0, 1 << 30));
  return v;
}

TEST(Partition, CoversInputExactly) {
  const auto chunks = PartitionInput(103, 8);
  ASSERT_EQ(chunks.size(), 8u);
  std::size_t covered = 0;
  std::size_t expected_begin = 0;
  for (const ChunkRange& c : chunks) {
    EXPECT_EQ(c.begin, expected_begin);
    covered += c.size();
    expected_begin = c.end;
  }
  EXPECT_EQ(covered, 103u);
  // Balanced: sizes differ by at most one.
  std::size_t lo = chunks[0].size(), hi = chunks[0].size();
  for (const ChunkRange& c : chunks) {
    lo = std::min(lo, c.size());
    hi = std::max(hi, c.size());
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(Partition, MoreChunksThanElements) {
  const auto chunks = PartitionInput(3, 8);
  std::size_t covered = 0;
  for (const ChunkRange& c : chunks) covered += c.size();
  EXPECT_EQ(covered, 3u);
}

TEST(Partition, RejectsZeroChunks) { EXPECT_THROW(PartitionInput(10, 0), kf::Error); }

TEST(FilterStage, CountsMatchBuffers) {
  const auto data = RandomInts(10000, 1);
  const auto chunks = PartitionInput(data.size(), 16);
  const auto result =
      RunFilterStage(data, chunks, [](std::int32_t v) { return v % 2 == 0; });
  ASSERT_EQ(result.buffers.size(), 16u);
  for (std::size_t c = 0; c < result.buffers.size(); ++c) {
    EXPECT_EQ(result.counts[c], result.buffers[c].size());
  }
  const std::size_t expected = static_cast<std::size_t>(
      std::count_if(data.begin(), data.end(), [](std::int32_t v) { return v % 2 == 0; }));
  EXPECT_EQ(result.total_matches(), expected);
}

TEST(GatherStage, ProducesDenseOrderedOutput) {
  const auto data = RandomInts(5000, 2);
  const auto chunks = PartitionInput(data.size(), 7);
  const auto pred = [](std::int32_t v) { return v % 3 == 0; };
  const auto filtered = RunFilterStage(data, chunks, pred);
  const auto output = RunGatherStage(filtered);
  std::vector<std::int32_t> expected;
  std::copy_if(data.begin(), data.end(), std::back_inserter(expected), pred);
  EXPECT_EQ(output, expected);  // gather preserves input order
}

TEST(StagedSelect, MatchesScalarFilterAcrossChunkCounts) {
  const auto data = RandomInts(20000, 3);
  const auto pred = [](std::int32_t v) { return v < (1 << 29); };
  std::vector<std::int32_t> expected;
  std::copy_if(data.begin(), data.end(), std::back_inserter(expected), pred);
  for (int chunks : {1, 2, 13, 64, 448}) {
    StagedSelectStats stats;
    const auto output = StagedSelect(data, pred, chunks, nullptr, &stats);
    EXPECT_EQ(output, expected) << chunks << " chunks";
    EXPECT_EQ(stats.input_count, data.size());
    EXPECT_EQ(stats.output_count, expected.size());
  }
}

TEST(StagedSelect, ParallelExecutionMatchesSerial) {
  const auto data = RandomInts(50000, 4);
  const auto pred = [](std::int32_t v) { return (v & 7) != 0; };
  ThreadPool pool(4);
  const auto serial = StagedSelect(data, pred, 32, nullptr);
  const auto parallel = StagedSelect(data, pred, 32, &pool);
  EXPECT_EQ(serial, parallel);
}

TEST(StagedSelect, EmptyInput) {
  const std::vector<std::int32_t> empty;
  const auto output = StagedSelect(empty, [](std::int32_t) { return true; }, 8);
  EXPECT_TRUE(output.empty());
}

TEST(StagedSelect, AllOrNothingSelectivity) {
  const auto data = RandomInts(1000, 5);
  EXPECT_EQ(StagedSelect(data, [](std::int32_t) { return true; }, 8).size(), data.size());
  EXPECT_TRUE(StagedSelect(data, [](std::int32_t) { return false; }, 8).empty());
}

TEST(SelectChain, FusedEqualsUnfused) {
  // The core guarantee of kernel fusion: identical results (Fig 6 vs 2x Fig 3).
  const auto data = RandomInts(30000, 6);
  const std::vector<Int32Predicate> predicates = {
      [](std::int32_t v) { return v < (1 << 29); },
      [](std::int32_t v) { return v % 2 == 0; },
      [](std::int32_t v) { return v % 3 != 1; },
  };
  std::vector<StagedSelectStats> unfused_stats;
  const auto unfused =
      StagedSelectChainUnfused(data, predicates, 32, nullptr, &unfused_stats);
  StagedSelectStats fused_stats;
  const auto fused = StagedSelectChainFused(data, predicates, 32, nullptr, &fused_stats);
  EXPECT_EQ(unfused, fused);
  // The unfused chain ran 3 staged selects; the fused chain one with depth 3.
  ASSERT_EQ(unfused_stats.size(), 3u);
  EXPECT_EQ(unfused_stats[0].input_count, data.size());
  EXPECT_EQ(unfused_stats[2].output_count, fused.size());
  EXPECT_EQ(fused_stats.filter_stage_count, 3);
  EXPECT_EQ(fused_stats.input_count, data.size());
}

TEST(SelectChain, FiftyPercentChainKeepsQuarter) {
  // Paper III-B: two 50% SELECTs keep 25% of the data.
  const auto data = RandomInts(100000, 7);
  const std::int32_t mid = 1 << 29;  // half of the [0, 2^30) domain
  const std::vector<Int32Predicate> predicates = {
      [mid](std::int32_t v) { return v < mid; },
      [mid](std::int32_t v) { return v < mid / 2; },
  };
  StagedSelectStats stats;
  const auto out = StagedSelectChainFused(data, predicates, 64, nullptr, &stats);
  EXPECT_NEAR(static_cast<double>(out.size()) / static_cast<double>(data.size()), 0.25,
              0.01);
}

TEST(SelectChain, EmptyPredicateListThrows) {
  const auto data = RandomInts(10, 8);
  EXPECT_THROW(StagedSelectChainFused(data, {}, 4), kf::Error);
  EXPECT_THROW(StagedSelectChainUnfused(data, {}, 4), kf::Error);
}

// ---------------------------------------------------------------------------
// Pooled / typed-predicate ("Into") substrate. These paths must be
// byte-identical to the legacy std::function entry points above.
// ---------------------------------------------------------------------------

TEST(StagedSelectInto, TypedMatchesScalarAcrossChunkCounts) {
  const auto data = RandomInts(20000, 9);
  const TypedPredicate pred = TypedPredicate::Lt(1 << 29);
  std::vector<std::int32_t> expected;
  std::copy_if(data.begin(), data.end(), std::back_inserter(expected),
               [](std::int32_t v) { return v < (1 << 29); });
  BufferArena arena;
  for (int chunks : {1, 2, 13, 64, 448}) {
    auto ws = arena.Acquire<StagedBuffers>();
    StagedSelectStats stats;
    const auto out = StagedSelectInto(data, pred, chunks, *ws, nullptr, &stats);
    ASSERT_EQ(out.size(), expected.size()) << chunks << " chunks";
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(), out.begin()))
        << chunks << " chunks";
    EXPECT_EQ(stats.input_count, data.size());
    EXPECT_EQ(stats.output_count, expected.size());
  }
}

TEST(StagedSelectInto, FallbackPredicateMatchesTyped) {
  const auto data = RandomInts(15000, 10);
  const Int32Predicate fn = [](std::int32_t v) { return v < (1 << 28); };
  BufferArena arena;
  auto ws_typed = arena.Acquire<StagedBuffers>();
  auto ws_fallback = arena.Acquire<StagedBuffers>();
  const auto typed =
      StagedSelectInto(data, TypedPredicate::Lt(1 << 28), 32, *ws_typed);
  const auto fallback =
      StagedSelectInto(data, TypedPredicate::Fallback(fn), 32, *ws_fallback);
  ASSERT_EQ(typed.size(), fallback.size());
  EXPECT_TRUE(std::equal(typed.begin(), typed.end(), fallback.begin()));
}

TEST(StagedSelectInto, ParallelMatchesSerial) {
  const auto data = RandomInts(50000, 11);
  const TypedPredicate pred = TypedPredicate::MaskEq(7, 0);
  ThreadPool pool(4);
  BufferArena arena;
  auto ws_serial = arena.Acquire<StagedBuffers>();
  auto ws_parallel = arena.Acquire<StagedBuffers>();
  const auto serial = StagedSelectInto(data, pred, 32, *ws_serial);
  const auto parallel = StagedSelectInto(data, pred, 32, *ws_parallel, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_TRUE(std::equal(serial.begin(), serial.end(), parallel.begin()));
}

TEST(StagedSelectInto, WorkspaceReuseAcrossDifferingInputs) {
  // A warm workspace from a big run must not leak stale state into a smaller
  // (or larger) subsequent run.
  BufferArena arena;
  auto ws = arena.Acquire<StagedBuffers>();
  const TypedPredicate pred = TypedPredicate::Ge(0);
  for (std::uint64_t seed : {20, 21, 22, 23}) {
    const std::size_t n = (seed % 2 == 0) ? 40000u : 137u;
    const auto data = RandomInts(n, seed);
    std::vector<std::int32_t> expected;
    std::copy_if(data.begin(), data.end(), std::back_inserter(expected),
                 [](std::int32_t v) { return v >= 0; });
    const auto out = StagedSelectInto(data, pred, 16, *ws);
    ASSERT_EQ(out.size(), expected.size()) << "seed " << seed;
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(), out.begin()))
        << "seed " << seed;
  }
  EXPECT_GT(ws->CapacityBytes(), 0u);
}

TEST(SelectChainInto, MatchesLegacyChains) {
  const auto data = RandomInts(30000, 12);
  const std::vector<Int32Predicate> legacy_preds = {
      [](std::int32_t v) { return v < (1 << 29); },
      [](std::int32_t v) { return v % 2 == 0; },
      [](std::int32_t v) { return v % 3 != 1; },
  };
  const Int32Predicate even = legacy_preds[1];
  const Int32Predicate mod3 = legacy_preds[2];
  const std::vector<TypedPredicate> typed_preds = {
      TypedPredicate::Lt(1 << 29), TypedPredicate::Fallback(even),
      TypedPredicate::Fallback(mod3)};
  const auto legacy_unfused = StagedSelectChainUnfused(data, legacy_preds, 32);
  const auto legacy_fused = StagedSelectChainFused(data, legacy_preds, 32);

  BufferArena arena;
  auto ws = arena.Acquire<StagedBuffers>();
  std::vector<StagedSelectStats> per_step;
  const auto unfused =
      StagedSelectChainUnfusedInto(data, typed_preds, 32, *ws, nullptr, &per_step);
  ASSERT_EQ(unfused.size(), legacy_unfused.size());
  EXPECT_TRUE(
      std::equal(legacy_unfused.begin(), legacy_unfused.end(), unfused.begin()));
  ASSERT_EQ(per_step.size(), 3u);
  EXPECT_EQ(per_step[0].input_count, data.size());
  EXPECT_EQ(per_step[2].output_count, unfused.size());

  auto ws2 = arena.Acquire<StagedBuffers>();
  StagedSelectStats fused_stats;
  const auto fused =
      StagedSelectChainFusedInto(data, typed_preds, 32, *ws2, nullptr, &fused_stats);
  ASSERT_EQ(fused.size(), legacy_fused.size());
  EXPECT_TRUE(std::equal(legacy_fused.begin(), legacy_fused.end(), fused.begin()));
  EXPECT_EQ(fused_stats.filter_stage_count, 3);
}

TEST(SelectChainInto, FusedEqualsUnfusedOnTypedChain) {
  const auto data = RandomInts(25000, 13);
  const std::vector<TypedPredicate> preds = {TypedPredicate::Lt(1 << 29),
                                             TypedPredicate::MaskEq(1, 0),
                                             TypedPredicate::Gt(-5000)};
  BufferArena arena;
  auto ws_a = arena.Acquire<StagedBuffers>();
  auto ws_b = arena.Acquire<StagedBuffers>();
  ThreadPool pool(4);
  const auto unfused = StagedSelectChainUnfusedInto(data, preds, 32, *ws_a, &pool);
  const auto fused = StagedSelectChainFusedInto(data, preds, 32, *ws_b, &pool);
  ASSERT_EQ(unfused.size(), fused.size());
  EXPECT_TRUE(std::equal(unfused.begin(), unfused.end(), fused.begin()));
}

TEST(SelectChainInto, EmptyPredicateListThrows) {
  const auto data = RandomInts(10, 14);
  BufferArena arena;
  auto ws = arena.Acquire<StagedBuffers>();
  EXPECT_THROW(StagedSelectChainFusedInto(data, {}, 4, *ws), kf::Error);
  EXPECT_THROW(StagedSelectChainUnfusedInto(data, {}, 4, *ws), kf::Error);
}

TEST(SelectChainInto, SingleStepEqualsStagedSelectInto) {
  const auto data = RandomInts(9000, 15);
  const std::vector<TypedPredicate> preds = {TypedPredicate::InRange(0, 1 << 20)};
  BufferArena arena;
  auto ws_a = arena.Acquire<StagedBuffers>();
  auto ws_b = arena.Acquire<StagedBuffers>();
  const auto chain = StagedSelectChainUnfusedInto(data, preds, 8, *ws_a);
  const auto single = StagedSelectInto(data, preds[0], 8, *ws_b);
  ASSERT_EQ(chain.size(), single.size());
  EXPECT_TRUE(std::equal(chain.begin(), chain.end(), single.begin()));
}

}  // namespace
}  // namespace kf::relational
