#include "relational/staged_join.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"

namespace kf::relational {
namespace {

std::vector<JoinPair> RandomPairs(Rng& rng, std::size_t n, std::int64_t key_range) {
  std::vector<JoinPair> pairs(n);
  for (auto& p : pairs) {
    p.key = rng.UniformInt(0, key_range);
    p.value = rng.UniformInt(-100, 100);
  }
  return pairs;
}

// Naive nested-loop reference.
std::vector<JoinedRow> NaiveJoin(std::span<const JoinPair> left,
                                 std::span<const JoinPair> right) {
  std::vector<JoinedRow> out;
  for (const JoinPair& l : left) {
    for (const JoinPair& r : right) {
      if (l.key == r.key) out.push_back(JoinedRow{l.key, l.value, r.value});
    }
  }
  return out;
}

bool SameMultiset(std::vector<JoinedRow> a, std::vector<JoinedRow> b) {
  auto less = [](const JoinedRow& x, const JoinedRow& y) {
    return std::tie(x.key, x.left_value, x.right_value) <
           std::tie(y.key, y.left_value, y.right_value);
  };
  std::sort(a.begin(), a.end(), less);
  std::sort(b.begin(), b.end(), less);
  return a == b;
}

TEST(StagedHashTable, BuildsAndProbes) {
  const std::vector<JoinPair> rows = {{1, 10}, {2, 20}, {1, 11}};
  const StagedHashTable table(rows, 2);
  EXPECT_EQ(table.entry_count(), 3u);
  std::vector<std::int64_t> matches;
  EXPECT_EQ(table.Probe(1, matches), 2u);
  std::sort(matches.begin(), matches.end());
  EXPECT_EQ(matches, (std::vector<std::int64_t>{10, 11}));
  matches.clear();
  EXPECT_EQ(table.Probe(99, matches), 0u);
}

TEST(StagedHashTable, LoadFactorBounded) {
  Rng rng(5);
  const auto rows = RandomPairs(rng, 1000, 100);
  const StagedHashTable table(rows, 8);
  EXPECT_GE(table.slot_count(), 2 * rows.size());
}

TEST(StagedHashJoin, MatchesNaiveJoinOnRandomData) {
  Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    const auto left = RandomPairs(rng, static_cast<std::size_t>(rng.UniformInt(0, 300)), 20);
    const auto right = RandomPairs(rng, static_cast<std::size_t>(rng.UniformInt(0, 300)), 20);
    EXPECT_TRUE(SameMultiset(StagedHashJoin(left, right, 8), NaiveJoin(left, right)))
        << "trial " << trial;
  }
}

TEST(StagedHashJoin, DuplicateKeysExpand) {
  const std::vector<JoinPair> left = {{7, 1}, {7, 2}};
  const std::vector<JoinPair> right = {{7, 10}, {7, 20}, {7, 30}};
  EXPECT_EQ(StagedHashJoin(left, right, 4).size(), 6u);  // 2 x 3
}

TEST(StagedHashJoin, EmptySides) {
  const std::vector<JoinPair> some = {{1, 1}};
  EXPECT_TRUE(StagedHashJoin({}, some, 4).empty());
  EXPECT_TRUE(StagedHashJoin(some, {}, 4).empty());
}

TEST(StagedHashJoin, ParallelBuildAndProbeMatchSerial) {
  Rng rng(11);
  const auto left = RandomPairs(rng, 50000, 500);
  const auto right = RandomPairs(rng, 20000, 500);
  ThreadPool pool(4);
  EXPECT_TRUE(SameMultiset(StagedHashJoin(left, right, 64, &pool),
                           StagedHashJoin(left, right, 64)));
}

TEST(StagedHashJoin, ChunkCountInvariance) {
  Rng rng(13);
  const auto left = RandomPairs(rng, 2000, 50);
  const auto right = RandomPairs(rng, 500, 50);
  const auto reference = StagedHashJoin(left, right, 1);
  for (int chunks : {2, 16, 448}) {
    EXPECT_TRUE(SameMultiset(StagedHashJoin(left, right, chunks), reference));
  }
}

TEST(StagedHashJoin, SkewedKeysStillCorrect) {
  // Everything hashes to the same key: worst-case probe runs.
  std::vector<JoinPair> left(200, JoinPair{5, 1});
  std::vector<JoinPair> right(50, JoinPair{5, 2});
  EXPECT_EQ(StagedHashJoin(left, right, 8).size(), 200u * 50u);
}

}  // namespace
}  // namespace kf::relational
