// Exercises every RA operator, starting with the exact examples of paper
// Table I (letters dictionary-encoded: a=1, b=2, c=3, f=6; True=1, False=0).
#include "relational/operators.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace kf::relational {
namespace {

Schema KV() { return Schema{{"key", DataType::kInt64}, {"val", DataType::kInt64}}; }

Table MakeKV(std::initializer_list<std::pair<int, int>> rows) {
  Table t(KV());
  for (auto [k, v] : rows) t.AppendRow({Value::Int64(k), Value::Int64(v)});
  return t;
}

constexpr int kA = 1, kB = 2, kC = 3, kF = 6;

TEST(TableI, Union) {
  const Table x = MakeKV({{3, kA}, {4, kA}, {2, kB}});
  const Table y = MakeKV({{0, kA}, {2, kB}});
  const Table result = ApplyOperator(OperatorDesc::Union(), x, &y);
  EXPECT_TRUE(SameRowMultiset(result, MakeKV({{3, kA}, {4, kA}, {2, kB}, {0, kA}})));
}

TEST(TableI, Intersection) {
  const Table x = MakeKV({{3, kA}, {4, kA}, {2, kB}});
  const Table y = MakeKV({{0, kA}, {2, kB}});
  const Table result = ApplyOperator(OperatorDesc::Intersect(), x, &y);
  EXPECT_TRUE(SameRowMultiset(result, MakeKV({{2, kB}})));
}

TEST(TableI, Product) {
  const Table x = MakeKV({{3, kA}, {4, kA}});
  const Table y = MakeKV({{1, 2}});  // (True, 2)
  const Table result = ApplyOperator(OperatorDesc::Product(), x, &y);
  ASSERT_EQ(result.row_count(), 2u);
  ASSERT_EQ(result.column_count(), 4u);
  Table expected(Schema{{"key", DataType::kInt64},
                        {"val", DataType::kInt64},
                        {"key", DataType::kInt64},
                        {"val", DataType::kInt64}});
  expected.AppendRow({Value::Int64(3), Value::Int64(kA), Value::Int64(1), Value::Int64(2)});
  expected.AppendRow({Value::Int64(4), Value::Int64(kA), Value::Int64(1), Value::Int64(2)});
  EXPECT_TRUE(SameRowMultiset(result, expected));
}

TEST(TableI, Difference) {
  const Table x = MakeKV({{3, kA}, {4, kA}, {2, kB}});
  const Table y = MakeKV({{4, kA}, {3, kA}});
  const Table result = ApplyOperator(OperatorDesc::Difference(), x, &y);
  EXPECT_TRUE(SameRowMultiset(result, MakeKV({{2, kB}})));
}

TEST(TableI, Join) {
  const Table x = MakeKV({{3, kA}, {4, kA}, {2, kB}});
  const Table y = MakeKV({{2, kF}, {3, kC}});
  const Table result = ApplyOperator(OperatorDesc::Join(), x, &y);
  Table expected(Schema{{"key", DataType::kInt64},
                        {"val", DataType::kInt64},
                        {"val", DataType::kInt64}});
  expected.AppendRow({Value::Int64(3), Value::Int64(kA), Value::Int64(kC)});
  expected.AppendRow({Value::Int64(2), Value::Int64(kB), Value::Int64(kF)});
  EXPECT_TRUE(SameRowMultiset(result, expected));
}

Table ThreeCol() {
  Table t(Schema{{"key", DataType::kInt64},
                 {"flag", DataType::kInt64},
                 {"val", DataType::kInt64}});
  t.AppendRow({Value::Int64(3), Value::Int64(1), Value::Int64(kA)});
  t.AppendRow({Value::Int64(4), Value::Int64(1), Value::Int64(kA)});
  t.AppendRow({Value::Int64(2), Value::Int64(0), Value::Int64(kB)});
  return t;
}

TEST(TableI, Project) {
  const Table result = ApplyOperator(OperatorDesc::Project({0, 2}), ThreeCol());
  EXPECT_TRUE(SameRowMultiset(result, MakeKV({{3, kA}, {4, kA}, {2, kB}})));
}

TEST(TableI, Select) {
  const Table result = ApplyOperator(
      OperatorDesc::Select(Expr::Eq(Expr::FieldRef(0), Expr::Lit(2))), ThreeCol());
  ASSERT_EQ(result.row_count(), 1u);
  const Row row = result.GetRow(0);
  EXPECT_EQ(row[0].as_int(), 2);
  EXPECT_EQ(row[1].as_int(), 0);
  EXPECT_EQ(row[2].as_int(), kB);
}

// --- Beyond Table I ---------------------------------------------------------

TEST(Operators, SelectPreservesInputOrder) {
  const Table t = MakeKV({{5, 1}, {1, 2}, {4, 3}, {0, 4}});
  const Table result = ApplyOperator(
      OperatorDesc::Select(Expr::Ge(Expr::FieldRef(0), Expr::Lit(4))), t);
  ASSERT_EQ(result.row_count(), 2u);
  EXPECT_EQ(result.GetRow(0)[1].as_int(), 1);
  EXPECT_EQ(result.GetRow(1)[1].as_int(), 3);
}

TEST(Operators, JoinExpandsDuplicateKeys) {
  const Table left = MakeKV({{1, 10}, {1, 11}});
  const Table right = MakeKV({{1, 20}, {1, 21}});
  const Table result = ApplyOperator(OperatorDesc::Join(), left, &right);
  EXPECT_EQ(result.row_count(), 4u);  // 2 x 2 matches
}

TEST(Operators, JoinOnNonDefaultKeys) {
  Table left(Schema{{"a", DataType::kInt64}, {"k", DataType::kInt64}});
  left.AppendRow({Value::Int64(100), Value::Int64(7)});
  Table right(Schema{{"b", DataType::kInt64}, {"k", DataType::kInt64}});
  right.AppendRow({Value::Int64(200), Value::Int64(7)});
  const Table result = ApplyOperator(OperatorDesc::Join(1, 1), left, &right);
  ASSERT_EQ(result.row_count(), 1u);
  const Row row = result.GetRow(0);
  EXPECT_EQ(row[0].as_int(), 100);
  EXPECT_EQ(row[1].as_int(), 7);
  EXPECT_EQ(row[2].as_int(), 200);
}

TEST(Operators, AggregateGroupedSums) {
  Table t(Schema{{"g", DataType::kInt32}, {"x", DataType::kFloat64}});
  t.AppendRow({Value::Int32(1), Value::Float64(1.0)});
  t.AppendRow({Value::Int32(2), Value::Float64(5.0)});
  t.AppendRow({Value::Int32(1), Value::Float64(2.0)});
  const Table result = ApplyOperator(
      OperatorDesc::Aggregate({0},
                              {AggregateSpec{AggregateSpec::Func::kSum, 1, "sum"},
                               AggregateSpec{AggregateSpec::Func::kCount, 0, "n"},
                               AggregateSpec{AggregateSpec::Func::kMin, 1, "lo"},
                               AggregateSpec{AggregateSpec::Func::kMax, 1, "hi"},
                               AggregateSpec{AggregateSpec::Func::kAvg, 1, "mean"}}),
      t);
  ASSERT_EQ(result.row_count(), 2u);
  // Group 1: sum 3, count 2, min 1, max 2, avg 1.5.
  bool found = false;
  for (const Row& row : result.Rows()) {
    if (row[0].as_int() == 1) {
      found = true;
      EXPECT_DOUBLE_EQ(row[1].as_double(), 3.0);
      EXPECT_EQ(row[2].as_int(), 2);
      EXPECT_DOUBLE_EQ(row[3].as_double(), 1.0);
      EXPECT_DOUBLE_EQ(row[4].as_double(), 2.0);
      EXPECT_DOUBLE_EQ(row[5].as_double(), 1.5);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Operators, AggregateWithoutGroupByIsGlobal) {
  Table t(Schema{{"x", DataType::kInt32}});
  for (int i = 1; i <= 5; ++i) t.AppendRow({Value::Int32(i)});
  const Table result = ApplyOperator(
      OperatorDesc::Aggregate({}, {AggregateSpec{AggregateSpec::Func::kSum, 0, "sum"}}),
      t);
  ASSERT_EQ(result.row_count(), 1u);
  EXPECT_DOUBLE_EQ(result.GetRow(0)[0].as_double(), 15.0);
}

TEST(Operators, ArithAppendsComputedColumn) {
  Table t(Schema{{"p", DataType::kFloat64}, {"d", DataType::kFloat64}});
  t.AppendRow({Value::Float64(100.0), Value::Float64(0.1)});
  const Table result = ApplyOperator(
      OperatorDesc::Arith(
          Expr::Mul(Expr::FieldRef(0), Expr::Sub(Expr::LitF(1.0), Expr::FieldRef(1))),
          "disc_price"),
      t);
  ASSERT_EQ(result.column_count(), 3u);
  EXPECT_DOUBLE_EQ(result.GetRow(0)[2].as_double(), 90.0);
  EXPECT_EQ(result.schema().field(2).name, "disc_price");
}

TEST(Operators, SortIsStableLexicographic) {
  Table t(Schema{{"a", DataType::kInt32}, {"b", DataType::kInt32},
                 {"tag", DataType::kInt32}});
  t.AppendRow({Value::Int32(2), Value::Int32(1), Value::Int32(0)});
  t.AppendRow({Value::Int32(1), Value::Int32(2), Value::Int32(1)});
  t.AppendRow({Value::Int32(1), Value::Int32(1), Value::Int32(2)});
  t.AppendRow({Value::Int32(1), Value::Int32(1), Value::Int32(3)});
  const Table result = ApplyOperator(OperatorDesc::Sort({0, 1}), t);
  EXPECT_EQ(result.GetRow(0)[2].as_int(), 2);  // (1,1) first occurrence
  EXPECT_EQ(result.GetRow(1)[2].as_int(), 3);  // stable: second (1,1)
  EXPECT_EQ(result.GetRow(2)[2].as_int(), 1);  // (1,2)
  EXPECT_EQ(result.GetRow(3)[2].as_int(), 0);  // (2,1)
}

TEST(Operators, UniqueDropsDuplicates) {
  const Table t = MakeKV({{1, 1}, {1, 1}, {2, 2}, {1, 1}});
  const Table result = ApplyOperator(OperatorDesc::Unique(), t);
  EXPECT_TRUE(SameRowMultiset(result, MakeKV({{1, 1}, {2, 2}})));
}

TEST(Operators, EmptyInputsFlowThrough) {
  const Table empty = MakeKV({});
  EXPECT_EQ(ApplyOperator(OperatorDesc::Select(Expr::Lit(1)), empty).row_count(), 0u);
  EXPECT_EQ(ApplyOperator(OperatorDesc::Sort({0}), empty).row_count(), 0u);
  const Table y = MakeKV({{1, 1}});
  EXPECT_EQ(ApplyOperator(OperatorDesc::Join(), empty, &y).row_count(), 0u);
  EXPECT_EQ(ApplyOperator(OperatorDesc::Union(), empty, &y).row_count(), 1u);
}

TEST(Operators, SchemaValidation) {
  const Table x = MakeKV({{1, 1}});
  Table three(Schema{{"a", DataType::kInt64},
                     {"b", DataType::kInt64},
                     {"c", DataType::kInt64}});
  EXPECT_THROW(ApplyOperator(OperatorDesc::Union(), x, &three), Error);
  EXPECT_THROW(ApplyOperator(OperatorDesc::Project({5}), x), Error);
  EXPECT_THROW(ApplyOperator(OperatorDesc::Join(), x, nullptr), Error);
  EXPECT_THROW(ApplyOperator(OperatorDesc::Select(Expr::Lit(1)), x, &x), Error);
}

TEST(Operators, OutputSchemaJoinDropsRightKey) {
  const Schema left{{"k", DataType::kInt64}, {"v", DataType::kInt64}};
  const Schema right{{"k", DataType::kInt64}, {"w", DataType::kFloat64}};
  const Schema out = OutputSchema(OperatorDesc::Join(), left, &right);
  ASSERT_EQ(out.field_count(), 3u);
  EXPECT_EQ(out.field(2).name, "w");
  EXPECT_EQ(out.field(2).type, DataType::kFloat64);
}

}  // namespace
}  // namespace kf::relational
