#include "relational/column.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace kf::relational {
namespace {

TEST(Value, ConstructorsAndAccessors) {
  const Value i32 = Value::Int32(-7);
  EXPECT_EQ(i32.type, DataType::kInt32);
  EXPECT_EQ(i32.as_int(), -7);
  EXPECT_DOUBLE_EQ(i32.as_double(), -7.0);
  EXPECT_TRUE(i32.as_bool());

  const Value f = Value::Float64(2.5);
  EXPECT_TRUE(f.is_float());
  EXPECT_EQ(f.as_int(), 2);
  EXPECT_FALSE(Value::Int64(0).as_bool());
}

TEST(Value, NumericComparisonAcrossTypes) {
  EXPECT_TRUE(Value::Int32(3) == Value::Int64(3));
  EXPECT_TRUE(Value::Int32(3) == Value::Float64(3.0));
  EXPECT_TRUE(Value::Int32(2) < Value::Float64(2.5));
  EXPECT_TRUE(Value::Float64(2.5) < Value::Int64(3));
  EXPECT_TRUE(Value::Int64(5) >= Value::Int32(5));
  EXPECT_TRUE(Value::Int64(5) != Value::Float64(5.5));
}

TEST(Value, HashConsistentWithEquality) {
  ValueHash h;
  EXPECT_EQ(h(Value::Int32(42)), h(Value::Int64(42)));
  EXPECT_EQ(h(Value::Int64(42)), h(Value::Float64(42.0)));
}

TEST(Column, TypedAppendAndGet) {
  Column c(DataType::kInt32);
  c.Append(Value::Int32(1));
  c.Append(Value::Int64(2));  // converted
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.Get(0).as_int(), 1);
  EXPECT_EQ(c.Get(1).as_int(), 2);
  EXPECT_EQ(c.Get(1).type, DataType::kInt32);
}

TEST(Column, ByteSizeTracksWidth) {
  Column i32(DataType::kInt32);
  Column f64(DataType::kFloat64);
  for (int i = 0; i < 10; ++i) {
    i32.Append(Value::Int32(i));
    f64.Append(Value::Float64(i));
  }
  EXPECT_EQ(i32.byte_size(), 40u);
  EXPECT_EQ(f64.byte_size(), 80u);
}

TEST(Column, TypedAccessThrowsOnMismatch) {
  Column c(DataType::kInt32);
  EXPECT_NO_THROW(c.AsInt32());
  EXPECT_THROW(c.AsInt64(), Error);
  EXPECT_THROW(c.AsFloat64(), Error);
}

TEST(Column, DirectVectorAccessIsLive) {
  Column c(DataType::kFloat64);
  c.AsFloat64().push_back(1.5);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c.Get(0).as_double(), 1.5);
}

TEST(Column, ClearEmpties) {
  Column c(DataType::kInt64);
  c.Append(Value::Int64(1));
  c.Clear();
  EXPECT_TRUE(c.empty());
}

TEST(Column, GetOutOfRangeThrows) {
  Column c(DataType::kInt32);
  EXPECT_THROW(c.Get(0), std::out_of_range);
}

}  // namespace
}  // namespace kf::relational
