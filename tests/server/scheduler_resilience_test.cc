// Scheduler-level fault handling: typed failures through futures, whole-query
// retry after device faults, the circuit breaker (open -> host routing ->
// probe -> close), and cancel-on-shutdown semantics. Also exercised under
// TSan via the server_test target.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/error.h"
#include "core/select_chain.h"
#include "relational/csv.h"
#include "server/query_scheduler.h"
#include "sim/fault_injector.h"

namespace kf::server {
namespace {

using core::NodeId;
using core::Strategy;
using relational::Table;

QueryRequest ChainRequest(const core::SelectChain& chain, const Table& input,
                          obs::MetricsRegistry* metrics = nullptr) {
  QueryRequest request;
  request.graph = chain.graph;
  request.sources.emplace(chain.source, input);
  request.options.strategy = Strategy::kFusedFission;
  request.options.chunk_count = 16;
  request.options.fission_segments = 6;
  request.options.metrics = metrics;
  return request;
}

std::string ResultsCsv(const QueryResult& result) {
  std::string out;
  for (const auto& [sink, table] : result.results) {
    out += relational::ToCsv(table);
  }
  return out;
}

TEST(SchedulerResilience, BreakerOpensRoutesHostAndStaysCorrect) {
  const core::SelectChain chain =
      core::MakeSelectChain(20000, std::vector<double>{0.5, 0.5});
  const Table input = core::MakeUniformInt32Table(20000);

  sim::DeviceSimulator device;
  obs::MetricsRegistry registry;

  // Fault-free reference for byte-identity checks.
  core::QueryExecutor executor(device);
  core::ExecutorOptions ref_options;
  ref_options.strategy = Strategy::kFusedFission;
  ref_options.chunk_count = 16;
  ref_options.fission_segments = 6;
  ref_options.metrics = &registry;
  const std::string reference = [&] {
    const core::ExecutionReport report =
        executor.Execute(chain.graph, {{chain.source, input}}, ref_options);
    std::string out;
    for (const auto& [sink, table] : report.sink_results) {
      out += relational::ToCsv(table);
    }
    return out;
  }();

  // Every kernel fails: each device batch degrades, feeding the breaker.
  sim::FaultConfig config;
  config.seed = 1;
  config.kernel_fault_rate = 1.0;
  sim::FaultInjector injector(config, &registry);

  SchedulerOptions options;
  options.worker_count = 1;
  options.metrics = &registry;
  options.fault_injector = &injector;
  options.breaker_threshold = 2;
  options.breaker_probe_interval = 3;
  QueryScheduler scheduler(device, options);

  // Two degraded device runs open the breaker.
  for (int i = 0; i < 2; ++i) {
    QueryResult result =
        scheduler.Submit(ChainRequest(chain, input, &registry)).get();
    EXPECT_TRUE(result.degraded);
    EXPECT_FALSE(result.ran_on_host);
    EXPECT_EQ(ResultsCsv(result), reference);
  }
  EXPECT_TRUE(scheduler.breaker_open());
  EXPECT_EQ(registry.GetCounter("resilience.breaker_opened").value(), 1u);

  // While open, batches run host-side (except the periodic probe).
  QueryResult rerouted =
      scheduler.Submit(ChainRequest(chain, input, &registry)).get();
  EXPECT_TRUE(rerouted.ran_on_host);
  EXPECT_FALSE(rerouted.degraded);
  EXPECT_EQ(ResultsCsv(rerouted), reference);
  EXPECT_GE(registry.GetCounter("resilience.breaker_rerouted").value(), 1u);

  // The probe (3rd batch while open) hits the still-broken device and the
  // breaker stays open.
  QueryResult second = scheduler.Submit(ChainRequest(chain, input, &registry)).get();
  QueryResult probe = scheduler.Submit(ChainRequest(chain, input, &registry)).get();
  EXPECT_TRUE(second.ran_on_host);
  EXPECT_TRUE(probe.degraded);  // the probe ran on the device and degraded
  EXPECT_EQ(ResultsCsv(probe), reference);
  EXPECT_TRUE(scheduler.breaker_open());
  EXPECT_GE(registry.GetCounter("resilience.breaker_probes").value(), 1u);
}

TEST(SchedulerResilience, BreakerClosesAfterSuccessfulProbe) {
  const core::SelectChain chain =
      core::MakeSelectChain(20000, std::vector<double>{0.5});
  const Table input = core::MakeUniformInt32Table(20000);

  sim::DeviceSimulator device;
  obs::MetricsRegistry registry;
  sim::FaultConfig config;
  config.seed = 1;
  config.kernel_fault_rate = 1.0;
  sim::FaultInjector faulty(config, &registry);

  SchedulerOptions options;
  options.worker_count = 1;
  options.metrics = &registry;
  options.breaker_threshold = 2;
  options.breaker_probe_interval = 2;
  QueryScheduler scheduler(device, options);

  // The device "fails" only for requests that carry the faulty injector.
  for (int i = 0; i < 2; ++i) {
    QueryRequest request = ChainRequest(chain, input, &registry);
    request.options.fault_injector = &faulty;
    QueryResult result = scheduler.Submit(std::move(request)).get();
    EXPECT_TRUE(result.degraded);
  }
  EXPECT_TRUE(scheduler.breaker_open());

  // Device is healthy again (no injector on these requests): the first batch
  // is rerouted, the second is the probe — it succeeds and closes the breaker.
  QueryResult rerouted = scheduler.Submit(ChainRequest(chain, input, &registry)).get();
  EXPECT_TRUE(rerouted.ran_on_host);
  QueryResult probe = scheduler.Submit(ChainRequest(chain, input, &registry)).get();
  EXPECT_FALSE(probe.ran_on_host);
  EXPECT_FALSE(probe.degraded);
  EXPECT_FALSE(scheduler.breaker_open());
  EXPECT_EQ(registry.GetCounter("resilience.breaker_closed").value(), 1u);

  // Back to normal device execution.
  QueryResult after = scheduler.Submit(ChainRequest(chain, input, &registry)).get();
  EXPECT_FALSE(after.ran_on_host);
}

TEST(SchedulerResilience, ExhaustedQueryRetriesFailTyped) {
  const core::SelectChain chain =
      core::MakeSelectChain(20000, std::vector<double>{0.5});
  const Table input = core::MakeUniformInt32Table(20000);

  sim::DeviceSimulator device;
  obs::MetricsRegistry registry;
  sim::FaultConfig config;
  config.seed = 1;
  config.oom_rate = 1.0;  // every device reservation fails
  sim::FaultInjector injector(config, &registry);

  SchedulerOptions options;
  options.worker_count = 1;
  options.metrics = &registry;
  options.fault_injector = &injector;
  options.query_retry_limit = 2;
  QueryScheduler scheduler(device, options);

  std::future<QueryResult> future =
      scheduler.Submit(ChainRequest(chain, input, &registry));
  try {
    (void)future.get();
    FAIL() << "expected kf::DeviceFault through the future";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeviceFault);
  }
  EXPECT_EQ(registry.GetCounter("resilience.query_retries").value(), 2u);
  EXPECT_EQ(
      registry.GetCounter("server.failed", {{"code", "device_fault"}}).value(),
      1u);
}

TEST(SchedulerResilience, QueryRetryRecoversFromTransientReservationFault) {
  const core::SelectChain chain =
      core::MakeSelectChain(20000, std::vector<double>{0.5});
  const Table input = core::MakeUniformInt32Table(20000);

  sim::DeviceSimulator device;
  obs::MetricsRegistry registry;
  sim::FaultConfig config;
  config.seed = 9;
  config.oom_rate = 0.2;  // transient: some reservation sequence succeeds
  sim::FaultInjector injector(config, &registry);

  SchedulerOptions options;
  options.worker_count = 1;
  options.metrics = &registry;
  options.fault_injector = &injector;
  options.query_retry_limit = 10;
  QueryScheduler scheduler(device, options);

  QueryResult result = scheduler.Submit(ChainRequest(chain, input, &registry)).get();
  EXPECT_FALSE(result.results.empty());
  // Either the first attempt was clean or retries kicked in; both are fine —
  // what matters is the query completed and any retries were counted.
  EXPECT_EQ(registry.GetCounter("resilience.query_retries").value(),
            result.device_retries);
}

TEST(SchedulerResilience, ShutdownCancelsPendingQueriesTyped) {
  const core::SelectChain chain =
      core::MakeSelectChain(5000, std::vector<double>{0.5});
  const Table input = core::MakeUniformInt32Table(5000);

  sim::DeviceSimulator device;
  obs::MetricsRegistry registry;
  SchedulerOptions options;
  options.worker_count = 1;
  options.start_paused = true;  // nothing executes before Shutdown
  options.cancel_pending_on_shutdown = true;
  options.max_queue_depth = 16;
  options.metrics = &registry;
  QueryScheduler scheduler(device, options);

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(scheduler.Submit(ChainRequest(chain, input, &registry)));
  }
  scheduler.Shutdown();

  for (auto& future : futures) {
    try {
      (void)future.get();
      FAIL() << "expected kf::Cancelled";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kCancelled);
    }
  }
  EXPECT_EQ(registry.GetCounter("server.cancelled").value(), 5u);

  // Submitting after shutdown fails typed as well.
  try {
    (void)scheduler.Submit(ChainRequest(chain, input, &registry));
    FAIL() << "expected kf::Cancelled";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
  }
}

TEST(SchedulerResilience, ConcurrentShutdownNeverDropsAFuture) {
  // TSan regression: submitters race Shutdown(); every future must resolve —
  // with a result for executed queries, kf::Cancelled for cancelled ones.
  const core::SelectChain chain =
      core::MakeSelectChain(2000, std::vector<double>{0.5});
  const Table input = core::MakeUniformInt32Table(2000);

  sim::DeviceSimulator device;
  SchedulerOptions options;
  options.worker_count = 2;
  options.cancel_pending_on_shutdown = true;
  options.max_queue_depth = 4;
  QueryScheduler scheduler(device, options);

  std::atomic<int> completed{0};
  std::atomic<int> cancelled{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        try {
          std::future<QueryResult> future =
              scheduler.Submit(ChainRequest(chain, input));
          (void)future.get();
          completed.fetch_add(1);
        } catch (const Error& e) {
          EXPECT_EQ(e.code(), ErrorCode::kCancelled);
          cancelled.fetch_add(1);
        }
      }
    });
  }
  // Let some work land, then pull the plug while submitters are racing.
  while (completed.load() == 0 && cancelled.load() == 0) {
    std::this_thread::yield();
  }
  scheduler.Shutdown();
  for (std::thread& thread : submitters) thread.join();
  EXPECT_EQ(completed.load() + cancelled.load(), 32);
}

}  // namespace
}  // namespace kf::server
