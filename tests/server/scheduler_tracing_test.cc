// Scheduler-level tracing: every submitted query gets a full span tree
// (root / queue wait / execution attempts / executor subtree), seeded runs
// export byte-identical deterministic traces, the faulty-serving acceptance
// scenario keeps >= 95% makespan coverage with typed annotations, a forced
// failure dumps its flight-recorder tree, and the whole machinery is
// TSan-clean under racing workers. Runs under TSan via the server_test
// target.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/select_chain.h"
#include "obs/tracer.h"
#include "server/query_scheduler.h"
#include "sim/fault_injector.h"

namespace kf::server {
namespace {

using core::Strategy;
using obs::QueryTrace;
using obs::Span;
using obs::SpanAnnotation;
using obs::SpanAnnotationKind;
using relational::Table;

QueryRequest ChainRequest(const core::SelectChain& chain, const Table& input,
                          obs::MetricsRegistry* metrics,
                          const std::string& merge_class = "") {
  QueryRequest request;
  request.graph = chain.graph;
  request.sources.emplace(chain.source, input);
  request.options.strategy = Strategy::kFused;
  request.options.chunk_count = 8;
  request.options.metrics = metrics;
  request.merge_class = merge_class;
  return request;
}

bool HasAnnotation(const QueryTrace& trace, SpanAnnotationKind kind) {
  for (const Span& span : trace.spans) {
    for (const SpanAnnotation& note : span.annotations) {
      if (note.kind == kind) return true;
    }
  }
  return false;
}

TEST(SchedulerTracing, EveryQueryGetsAFullTree) {
  const core::SelectChain chain =
      core::MakeSelectChain(20000, std::vector<double>{0.5, 0.5});
  const Table input = core::MakeUniformInt32Table(20000);

  sim::DeviceSimulator device;
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  SchedulerOptions options;
  options.worker_count = 1;
  options.metrics = &registry;
  options.tracer = &tracer;
  QueryScheduler scheduler(device, options);

  const QueryResult result =
      scheduler.Submit(ChainRequest(chain, input, &registry)).get();
  ASSERT_NE(result.trace_query_id, 0u);

  const QueryTrace trace = tracer.Snapshot(result.trace_query_id);
  ASSERT_FALSE(trace.empty());
  EXPECT_TRUE(trace.finished);
  EXPECT_FALSE(trace.failed);

  // Root covers the full submit->complete window on the virtual clock.
  const Span& root = trace.spans.front();
  EXPECT_EQ(root.name, "query");
  EXPECT_DOUBLE_EQ(root.sim_start, result.sim_submit);
  EXPECT_DOUBLE_EQ(root.sim_end, result.sim_complete);

  bool saw_queue_wait = false, saw_attempt = false, saw_executor = false,
       saw_command = false;
  for (const Span& span : trace.spans) {
    if (span.name == "queue wait") saw_queue_wait = true;
    if (span.name == "execute attempt") saw_attempt = true;
    if (span.name.rfind("execute/", 0) == 0) saw_executor = true;
    if (!span.category.empty()) saw_command = true;
  }
  EXPECT_TRUE(saw_queue_wait);
  EXPECT_TRUE(saw_attempt);
  EXPECT_TRUE(saw_executor);
  EXPECT_TRUE(saw_command);
  EXPECT_TRUE(HasAnnotation(trace, SpanAnnotationKind::kCacheMiss) ||
              HasAnnotation(trace, SpanAnnotationKind::kCacheHit));
}

TEST(SchedulerTracing, SeededRunsExportByteIdenticalTraces) {
  const core::SelectChain chain =
      core::MakeSelectChain(10000, std::vector<double>{0.5});
  const Table input = core::MakeUniformInt32Table(10000);

  auto run_session = [&](obs::Tracer& tracer) {
    sim::DeviceSimulator device;
    obs::MetricsRegistry registry;
    sim::FaultConfig config;
    config.seed = 13;
    config.kernel_fault_rate = 0.2;
    const sim::FaultInjector injector(config, &registry);

    SchedulerOptions options;
    options.worker_count = 1;       // serialized batches: deterministic
    options.start_paused = true;    // enqueue everything, then release
    options.metrics = &registry;
    options.tracer = &tracer;
    options.fault_injector = &injector;
    QueryScheduler scheduler(device, options);

    std::vector<std::future<QueryResult>> futures;
    for (int i = 0; i < 6; ++i) {
      futures.push_back(scheduler.Submit(ChainRequest(chain, input, &registry)));
    }
    scheduler.Start();
    for (auto& future : futures) (void)future.get();
    scheduler.Shutdown();
  };

  obs::Tracer a;
  obs::Tracer b;
  run_session(a);
  run_session(b);
  // Wall time differs between the sessions; the deterministic export
  // (sim times, span structure, annotations) is byte-identical.
  const std::string da = ToSessionTraceJson(a, /*include_wall=*/false).Dump(2);
  const std::string db = ToSessionTraceJson(b, /*include_wall=*/false).Dump(2);
  EXPECT_EQ(da, db);
  EXPECT_EQ(da.find("wall_ms"), std::string::npos);
}

TEST(SchedulerTracing, FaultyServingKeepsCoverageAndAnnotations) {
  // The acceptance scenario: concurrent clients against a faulty, silently
  // corrupting device group with integrity verification on.
  const core::SelectChain chain =
      core::MakeSelectChain(20000, std::vector<double>{0.5, 0.5});
  const Table input = core::MakeUniformInt32Table(20000);

  sim::DeviceSimulator device;
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  sim::FaultConfig config;
  config.seed = 20260808;
  config.copy_fault_rate = 0.10;
  config.kernel_fault_rate = 0.10;
  config.stall_rate = 0.10;
  config.corrupt_h2d_rate = 0.01;
  config.corrupt_d2h_rate = 0.01;
  const sim::FaultInjector injector(config, &registry);

  SchedulerOptions options;
  options.worker_count = 1;
  options.start_paused = true;
  options.max_batch = 4;
  options.metrics = &registry;
  options.tracer = &tracer;
  options.fault_injector = &injector;
  options.query_retry_limit = 8;
  options.integrity.verify_transfers = true;
  options.integrity.audit_fraction = 1.0;
  QueryScheduler scheduler(device, options);

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 6;
  std::vector<std::future<QueryResult>> futures;
  for (int c = 0; c < kClients; ++c) {
    for (int q = 0; q < kQueriesPerClient; ++q) {
      futures.push_back(scheduler.Submit(
          ChainRequest(chain, input, &registry, "dashboard")));
    }
  }
  scheduler.Start();

  std::size_t total_faults = 0;
  for (auto& future : futures) {
    const QueryResult result = future.get();
    total_faults += result.report.fault_count;
    ASSERT_NE(result.trace_query_id, 0u);

    // >= 95% coverage: the root span must contain the query's whole
    // sim_submit -> sim_complete window (it does, exactly).
    const QueryTrace trace = tracer.Snapshot(result.trace_query_id);
    ASSERT_FALSE(trace.empty());
    const Span& root = trace.spans.front();
    const double latency = result.sim_latency();
    ASSERT_GT(latency, 0.0);
    const double covered =
        std::min(root.sim_end, result.sim_complete) -
        std::max(root.sim_start, result.sim_submit);
    EXPECT_GE(covered / latency, 0.95);
  }
  ASSERT_GT(total_faults, 0u) << "scenario expected injected faults";
  scheduler.Shutdown();

  // The fault/stall/verification story shows up as typed annotations
  // somewhere in the session.
  bool saw_fault_note = false, saw_verify_note = false, saw_merge = false;
  for (const QueryTrace& trace : tracer.FlightRecorder()) {
    saw_fault_note = saw_fault_note ||
                     HasAnnotation(trace, SpanAnnotationKind::kFault) ||
                     HasAnnotation(trace, SpanAnnotationKind::kReExecution);
    saw_verify_note =
        saw_verify_note ||
        HasAnnotation(trace, SpanAnnotationKind::kCorruptionDetected);
    saw_merge = saw_merge || HasAnnotation(trace, SpanAnnotationKind::kBatchMerge);
  }
  EXPECT_TRUE(saw_fault_note);
  EXPECT_TRUE(saw_merge);
  (void)saw_verify_note;  // corruption at 1% may or may not hit in 24 queries

  // Schema sanity of the exported session document.
  const obs::Json doc = ToSessionTraceJson(tracer);
  const obs::Json& events = doc.at("traceEvents");
  ASSERT_GT(events.size(), 0u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::Json& event = events.at(i);
    const std::string& ph = event.at("ph").str();
    ASSERT_TRUE(ph == "X" || ph == "M" || ph == "s" || ph == "f") << ph;
    ASSERT_TRUE(event.Has("pid"));
    ASSERT_TRUE(event.Has("tid"));
    if (ph == "X") {
      ASSERT_TRUE(event.Has("ts"));
      ASSERT_GE(event.at("dur").number(), 0.0);
      ASSERT_TRUE(event.at("args").Has("query"));
    }
  }
}

TEST(SchedulerTracing, FailedQueryDumpsItsFlightRecorderTree) {
  const core::SelectChain chain =
      core::MakeSelectChain(10000, std::vector<double>{0.5});
  const Table input = core::MakeUniformInt32Table(10000);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "kf_scheduler_tracing_dump";
  std::filesystem::remove_all(dir);

  sim::DeviceSimulator device;
  obs::MetricsRegistry registry;
  obs::TracerOptions tracer_options;
  tracer_options.trace_dir = dir.string();
  obs::Tracer tracer(tracer_options);

  sim::FaultConfig config;
  config.seed = 1;
  config.oom_rate = 1.0;  // every reservation faults: retries exhaust
  const sim::FaultInjector injector(config, &registry);

  SchedulerOptions options;
  options.worker_count = 1;
  options.metrics = &registry;
  options.tracer = &tracer;
  options.fault_injector = &injector;
  options.query_retry_limit = 2;
  QueryScheduler scheduler(device, options);

  std::future<QueryResult> future =
      scheduler.Submit(ChainRequest(chain, input, &registry));
  try {
    (void)future.get();
    FAIL() << "expected kf::DeviceFault";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeviceFault);
  }

  // The failed query landed in the flight recorder with its typed failure
  // and dumped its full tree into the trace dir.
  std::vector<QueryTrace> flight = tracer.FlightRecorder();
  ASSERT_EQ(flight.size(), 1u);
  EXPECT_TRUE(flight.front().failed);
  EXPECT_EQ(flight.front().failure, "device_fault");
  EXPECT_TRUE(HasAnnotation(flight.front(), SpanAnnotationKind::kFailure));
  EXPECT_TRUE(HasAnnotation(flight.front(), SpanAnnotationKind::kReExecution));

  const std::filesystem::path dump =
      dir / ("trace_query_" + std::to_string(flight.front().query_id) + ".json");
  EXPECT_TRUE(std::filesystem::exists(dump));
  std::filesystem::remove_all(dir);
}

TEST(SchedulerTracing, RacingWorkersAndClientsStayConsistent) {
  // TSan stress: multiple workers execute batches concurrently while client
  // threads submit; every tree must come out finished and well formed.
  const core::SelectChain chain =
      core::MakeSelectChain(2000, std::vector<double>{0.5});
  const Table input = core::MakeUniformInt32Table(2000);

  sim::DeviceSimulator device;
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  SchedulerOptions options;
  options.worker_count = 4;
  options.metrics = &registry;
  options.tracer = &tracer;
  QueryScheduler scheduler(device, options);

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 8;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const QueryResult result =
            scheduler.Submit(ChainRequest(chain, input, &registry)).get();
        EXPECT_NE(result.trace_query_id, 0u);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  scheduler.Shutdown();

  EXPECT_EQ(tracer.finished_count(),
            static_cast<std::size_t>(kClients * kQueriesPerClient));
  std::set<std::uint64_t> seen;
  for (const QueryTrace& trace : tracer.FlightRecorder()) {
    EXPECT_TRUE(trace.finished);
    EXPECT_FALSE(trace.failed);
    EXPECT_TRUE(seen.insert(trace.query_id).second);
    ASSERT_FALSE(trace.spans.empty());
    for (std::size_t i = 0; i < trace.spans.size(); ++i) {
      EXPECT_EQ(trace.spans[i].id, i + 1);
      if (trace.spans[i].parent != 0) {
        EXPECT_NE(trace.FindSpan(trace.spans[i].parent), nullptr);
      }
    }
  }
  // And the concurrent session still renders one well-formed document.
  const obs::Json doc = ToSessionTraceJson(tracer);
  EXPECT_GT(doc.at("traceEvents").size(), 0u);
}

}  // namespace
}  // namespace kf::server
