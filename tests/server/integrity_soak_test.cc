// Integrity soak: N random operator graphs served through the scheduler
// while 5% of device commands (uploads, downloads, kernel outputs) silently
// corrupt. With checksummed transfers plus a full audit, every query must
// either complete byte-identical to the scalar reference (healed by verified
// re-execution / host degradation) or fail with typed kf::Error — and the
// detection ledger must be clean: zero undetected corruptions, ever. CI runs
// this in Release with KF_SOAK_QUERIES=200; the default keeps ctest fast.
#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/random.h"
#include "obs/tracer.h"
#include "relational/csv.h"
#include "server/query_scheduler.h"
#include "sim/device_group.h"
#include "sim/fault_injector.h"
#include "tests/core/byte_identical.h"
#include "tests/core/random_graph.h"

namespace kf::server {
namespace {

using core::NodeId;
using relational::Table;

std::size_t SoakQueryCount() {
  if (const char* env = std::getenv("KF_SOAK_QUERIES")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 40;  // local default; CI overrides to 200
}

core::IntegrityOptions FullVerification() {
  core::IntegrityOptions integrity;
  integrity.verify_transfers = true;
  integrity.audit_fraction = 1.0;
  return integrity;
}

sim::FaultConfig FivePercentCorruption(std::uint64_t seed) {
  // KF_FAULT_CORRUPT_* environment variables override the built-in 5%
  // profile, so CI (or a bisecting developer) can re-run at other rates.
  sim::FaultConfig config = sim::FaultConfig::FromEnv();
  if (!config.CorruptionEnabled()) {
    config.seed = seed;
    config.corrupt_h2d_rate = 0.05;
    config.corrupt_d2h_rate = 0.05;
    config.corrupt_kernel_rate = 0.05;
  }
  return config;
}

TEST(IntegritySoak, CorruptedServingStaysByteIdenticalOrFailsTyped) {
  const std::size_t n = SoakQueryCount();

  sim::DeviceSimulator device;
  obs::MetricsRegistry registry;
  sim::FaultInjector injector(FivePercentCorruption(2026), &registry);
  // With KF_TRACE_DIR set (the CI soak jobs do), any query failing with a
  // typed error dumps its full span tree there for post-mortem triage.
  obs::Tracer tracer;

  SchedulerOptions options;
  options.worker_count = 1;  // deterministic batch order
  options.start_paused = true;
  options.max_queue_depth = n;
  options.max_batch = 1;  // solo execution: per-query outcomes stay pinned
  options.metrics = &registry;
  options.tracer = &tracer;
  options.fault_injector = &injector;
  options.integrity = FullVerification();
  QueryScheduler scheduler(device, options);

  const core::Strategy strategies[] = {
      core::Strategy::kSerial, core::Strategy::kFused,
      core::Strategy::kFission, core::Strategy::kFusedFission};

  std::vector<core::RandomQuery> queries;
  std::vector<std::future<QueryResult>> futures;
  queries.reserve(n);
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queries.push_back(core::MakeRandomQuery(3000 + i));
    QueryRequest request;
    request.graph = queries.back().graph;
    request.sources = queries.back().sources;
    request.options.strategy = strategies[i % 4];  // all four, cycled
    request.options.chunk_count = 8;
    request.options.fission_segments = 4;
    request.options.metrics = &registry;
    futures.push_back(scheduler.Submit(std::move(request)));
  }
  scheduler.Start();

  std::size_t completed = 0, failed = 0, corrupted = 0, detected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    try {
      const QueryResult result = futures[i].get();
      ++completed;
      corrupted += result.report.corrupted_commands;
      detected += result.report.corruption_detected;
      // 100% detection: no corruption ever escapes into accepted results.
      EXPECT_EQ(result.report.corruption_undetected, 0u) << "query " << i;
      EXPECT_FALSE(result.report.silent_corruption) << "query " << i;
      const std::map<NodeId, Table> truth = core::ReferenceResults(queries[i]);
      for (NodeId sink : queries[i].graph.Sinks()) {
        ASSERT_EQ(result.results.count(sink), 1u)
            << "query " << i << " missing sink " << sink;
        EXPECT_EQ(relational::ToCsv(result.results.at(sink)),
                  relational::ToCsv(truth.at(sink)))
            << "query " << i << " sink " << sink;
      }
      EXPECT_EQ(result.report.leaked_device_bytes, 0u) << "query " << i;
    } catch (const Error& e) {
      ++failed;
      EXPECT_NE(e.code(), ErrorCode::kGeneric)
          << "query " << i << " failed untyped: " << e.what();
    } catch (const std::exception& e) {
      ++failed;
      ADD_FAILURE() << "query " << i
                    << " threw a non-kf::Error exception: " << e.what();
    }
  }

  EXPECT_EQ(completed + failed, n);
  // 5% corruption with re-execution + host degradation: the vast majority
  // of queries must still complete.
  EXPECT_GE(static_cast<double>(completed), 0.9 * static_cast<double>(n))
      << completed << "/" << n << " completed";
  // The soak only proves something if corruption actually happened — and
  // everything that happened in accepted runs was caught.
  EXPECT_GT(corrupted, 0u);
  EXPECT_GT(detected, 0u);
}

TEST(IntegritySoak, ShardedServingUnderCorruptionStaysClean) {
  // The multi-device arm: shardable chains served across two corrupting
  // devices with sharding opted in; the gather is verified host-side.
  const std::size_t n = std::max<std::size_t>(SoakQueryCount() / 4, 10);

  obs::MetricsRegistry registry;
  sim::FaultInjector injector(FivePercentCorruption(4049), &registry);
  sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(2);
  obs::Tracer tracer;

  SchedulerOptions options;
  options.worker_count = 1;
  options.start_paused = true;
  options.max_queue_depth = n;
  options.max_batch = 1;
  options.metrics = &registry;
  options.tracer = &tracer;
  options.fault_injector = &injector;
  options.integrity = FullVerification();
  options.quarantine_threshold = 0;  // both devices corrupt: keep serving
  QueryScheduler scheduler(group, options);

  std::vector<core::RandomQuery> queries;
  std::vector<std::future<QueryResult>> futures;
  for (std::size_t i = 0; i < n; ++i) {
    kf::Rng rng(5000 + i);
    core::RandomQuery q;
    const Table fact = core::RandomKV(rng, 400);
    const NodeId src = q.graph.AddSource("fact", fact.schema(), 400);
    q.sources.emplace(src, fact);
    NodeId node = q.graph.AddOperator(
        relational::OperatorDesc::Select(
            relational::Expr::Le(relational::Expr::FieldRef(1),
                                 relational::Expr::Lit(30))),
        src);
    q.graph.AddOperator(
        relational::OperatorDesc::Select(
            relational::Expr::Ge(relational::Expr::FieldRef(1),
                                 relational::Expr::Lit(-30))),
        node);
    queries.push_back(q);

    QueryRequest request;
    request.graph = q.graph;
    request.sources = q.sources;
    request.allow_sharding = true;
    request.options.chunk_count = 8;
    request.options.metrics = &registry;
    futures.push_back(scheduler.Submit(std::move(request)));
  }
  scheduler.Start();

  std::size_t completed = 0, failed = 0, sharded = 0, corrupted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    try {
      const QueryResult result = futures[i].get();
      ++completed;
      if (result.sharded) ++sharded;
      corrupted += result.report.corrupted_commands;
      EXPECT_EQ(result.report.corruption_undetected, 0u) << "query " << i;
      const std::map<NodeId, Table> truth = core::ReferenceResults(queries[i]);
      for (NodeId sink : queries[i].graph.Sinks()) {
        ASSERT_EQ(result.results.count(sink), 1u) << "query " << i;
        EXPECT_TRUE(
            core::ByteIdentical(result.results.at(sink), truth.at(sink)))
            << "query " << i;
      }
    } catch (const Error& e) {
      ++failed;
      EXPECT_NE(e.code(), ErrorCode::kGeneric) << "query " << i;
    }
  }
  EXPECT_EQ(completed + failed, n);
  EXPECT_GE(static_cast<double>(completed), 0.9 * static_cast<double>(n));
  EXPECT_GT(sharded, 0u);
  EXPECT_GT(corrupted, 0u);
}

}  // namespace
}  // namespace kf::server
