// FusionPlanCache tests, centered on the canonicalization fix: cache keys
// must be deterministic across runs and across graph insertion orders —
// structural position only, never node ids or pointer values. Two
// structurally-equal graphs built in different AddSource/AddOperator orders
// must hit the same cache entry, and a plan cached from one must rehydrate
// correctly (right node ids) for the other.
#include <gtest/gtest.h>

#include "core/query_executor.h"
#include "server/plan_cache.h"
#include "tests/core/random_graph.h"
#include "tpch/q1.h"

namespace kf::server {
namespace {

using core::FusionOptions;
using core::FusionPlan;
using core::NodeId;
using core::OpGraph;
using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;

Schema KV() {
  return Schema{{"k", DataType::kInt64}, {"v", DataType::kInt64}};
}

// The same two-branch DAG built in two insertion orders:
//   sink = JOIN(SELECT(lineitem), ARITH(orders))
struct TwoBranch {
  OpGraph graph;
  NodeId sink = core::kNoNode;
};

TwoBranch BuildForward() {
  TwoBranch g;
  const NodeId lineitem = g.graph.AddSource("lineitem", KV(), 100);
  const NodeId orders = g.graph.AddSource("orders", KV(), 50);
  const NodeId sel = g.graph.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(10)), "sel"),
      lineitem);
  const NodeId arith = g.graph.AddOperator(
      OperatorDesc::Arith(Expr::Add(Expr::FieldRef(0), Expr::FieldRef(1)),
                          "sum", DataType::kInt64),
      orders);
  g.sink = g.graph.AddOperator(OperatorDesc::Join(0, 0, "join"), sel, arith);
  return g;
}

TwoBranch BuildReversed() {
  // Same DAG, but sources and branches added in the opposite order, with
  // different labels (labels are cosmetic and excluded from the key).
  TwoBranch g;
  const NodeId orders = g.graph.AddSource("orders", KV(), 50);
  const NodeId lineitem = g.graph.AddSource("lineitem", KV(), 100);
  const NodeId arith = g.graph.AddOperator(
      OperatorDesc::Arith(Expr::Add(Expr::FieldRef(0), Expr::FieldRef(1)),
                          "sum", DataType::kInt64),
      orders);
  const NodeId sel = g.graph.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(10)),
                           "filter_renamed"),
      lineitem);
  g.sink = g.graph.AddOperator(OperatorDesc::Join(0, 0, "probe_renamed"), sel,
                               arith);
  return g;
}

TEST(Canonicalization, InsertionOrderDoesNotChangeTheKey) {
  const TwoBranch forward = BuildForward();
  const TwoBranch reversed = BuildReversed();
  const CanonicalGraph a = CanonicalizeGraph(forward.graph);
  const CanonicalGraph b = CanonicalizeGraph(reversed.graph);
  EXPECT_EQ(a.key, b.key);

  // order/position are mutual inverses covering every node.
  ASSERT_EQ(a.order.size(), forward.graph.node_count());
  for (std::size_t pos = 0; pos < a.order.size(); ++pos) {
    EXPECT_EQ(a.position[a.order[pos]], pos);
  }

  // Canonically-aligned nodes have identical content across the two builds.
  for (std::size_t pos = 0; pos < a.order.size(); ++pos) {
    const core::OpNode& na = forward.graph.node(a.order[pos]);
    const core::OpNode& nb = reversed.graph.node(b.order[pos]);
    EXPECT_EQ(na.is_source, nb.is_source) << "position " << pos;
    if (na.is_source) {
      EXPECT_EQ(na.name, nb.name) << "position " << pos;
    }
  }
}

TEST(Canonicalization, StructurallyDifferentGraphsGetDifferentKeys) {
  const TwoBranch forward = BuildForward();
  OpGraph other = forward.graph;
  other.AddOperator(OperatorDesc::Sort({0}, "sort"), forward.sink);
  EXPECT_NE(CanonicalizeGraph(forward.graph).key, CanonicalizeGraph(other).key);

  // Changing a predicate constant changes the key too.
  TwoBranch tweaked = BuildForward();
  OpGraph tweaked_graph;
  const NodeId lineitem = tweaked_graph.AddSource("lineitem", KV(), 100);
  tweaked_graph.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(11)), "sel"),
      lineitem);
  OpGraph base;
  const NodeId lineitem2 = base.AddSource("lineitem", KV(), 100);
  base.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(10)), "sel"),
      lineitem2);
  EXPECT_NE(CanonicalizeGraph(tweaked_graph).key, CanonicalizeGraph(base).key);
}

TEST(Canonicalization, RowHintsAndLabelsAreCosmetic) {
  OpGraph a;
  const NodeId sa = a.AddSource("t", KV(), 100);
  a.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(5)), "x"), sa);

  OpGraph b;
  const NodeId sb = b.AddSource("t", KV(), 9999);  // different row hint
  b.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(5)), "y"), sb);

  EXPECT_EQ(CanonicalizeGraph(a).key, CanonicalizeGraph(b).key);
}

TEST(FusionPlanCache, InsertionOrderVariantsShareOneEntry) {
  const TwoBranch forward = BuildForward();
  const TwoBranch reversed = BuildReversed();
  FusionOptions options;
  options.enabled = true;

  FusionPlanCache cache(8);
  bool hit = true;
  const FusionPlan first = cache.GetOrPlan(forward.graph, options, &hit);
  EXPECT_FALSE(hit);
  const FusionPlan second = cache.GetOrPlan(reversed.graph, options, &hit);
  EXPECT_TRUE(hit) << "structurally-equal graph built in a different "
                      "insertion order missed the cache";
  EXPECT_EQ(cache.size(), 1u);

  // The rehydrated plan is expressed in the REVERSED graph's node ids and is
  // a valid plan for it: every operator in exactly one cluster, no sources in
  // clusters, primary/build inputs that exist. (PlanFusion itself may choose
  // a different — equally valid — clustering for a different insertion
  // order; the cache's job is a valid plan, not that exact one.)
  ASSERT_EQ(second.cluster_of.size(), reversed.graph.node_count());
  std::vector<int> membership(reversed.graph.node_count(), 0);
  for (const core::FusionCluster& cluster : second.clusters) {
    for (NodeId id : cluster.nodes) {
      ASSERT_LT(id, reversed.graph.node_count());
      EXPECT_FALSE(reversed.graph.node(id).is_source);
      ++membership[id];
    }
    ASSERT_LT(cluster.primary_input, reversed.graph.node_count());
    EXPECT_FALSE(cluster.outputs.empty());
  }
  for (NodeId id = 0; id < reversed.graph.node_count(); ++id) {
    if (!reversed.graph.node(id).is_source) {
      EXPECT_EQ(membership[id], 1) << "node " << id;
    }
  }

  // Functionally: executing the reversed graph with the rehydrated plan
  // injected produces the same rows as executing it with a fresh plan.
  kf::Rng rng(7);
  std::map<NodeId, relational::Table> sources;
  for (NodeId src : reversed.graph.Sources()) {
    sources.emplace(src, core::RandomKV(
                             rng, reversed.graph.node(src).name == "lineitem"
                                      ? 100
                                      : 50));
  }
  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  core::ExecutorOptions exec_options;
  exec_options.strategy = core::Strategy::kFused;
  exec_options.fusion = options;
  const core::ExecutionReport fresh_run =
      executor.Execute(reversed.graph, sources, exec_options);
  core::ExecutorOptions injected = exec_options;
  injected.plan = &second;
  const core::ExecutionReport cached_run =
      executor.Execute(reversed.graph, sources, injected);
  ASSERT_EQ(cached_run.sink_results.size(), fresh_run.sink_results.size());
  for (const auto& [sink, table] : fresh_run.sink_results) {
    EXPECT_TRUE(
        relational::SameRowMultiset(cached_run.sink_results.at(sink), table))
        << "sink " << sink;
  }
}

TEST(FusionPlanCache, CachedPlanExecutesIdenticallyOnReorderedGraph) {
  // End to end: prime the cache with the forward build, execute the reversed
  // build with the rehydrated plan injected, compare against planning fresh.
  const std::uint64_t seed = 2012;
  const core::RandomQuery primer = core::MakeRandomQuery(seed);
  const core::RandomQuery repeat = core::MakeRandomQuery(seed);

  core::ExecutorOptions exec_options;
  exec_options.strategy = core::Strategy::kFused;
  const FusionOptions fusion_options =
      core::EffectiveFusionOptions(exec_options);

  FusionPlanCache cache(8);
  (void)cache.GetOrPlan(primer.graph, fusion_options);
  bool hit = false;
  const FusionPlan cached = cache.GetOrPlan(repeat.graph, fusion_options, &hit);
  ASSERT_TRUE(hit);

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  const core::ExecutionReport fresh =
      executor.Execute(repeat.graph, repeat.sources, exec_options);
  core::ExecutorOptions injected = exec_options;
  injected.plan = &cached;
  const core::ExecutionReport replayed =
      executor.Execute(repeat.graph, repeat.sources, injected);

  EXPECT_DOUBLE_EQ(replayed.makespan, fresh.makespan);
  for (NodeId sink : repeat.graph.Sinks()) {
    EXPECT_TRUE(relational::SameRowMultiset(replayed.sink_results.at(sink),
                                            fresh.sink_results.at(sink)));
  }
}

TEST(FusionPlanCache, DifferentFusionOptionsGetDifferentEntries) {
  const TwoBranch g = BuildForward();
  FusionOptions fused;
  fused.enabled = true;
  FusionOptions unfused;
  unfused.enabled = false;

  FusionPlanCache cache(8);
  bool hit = true;
  (void)cache.GetOrPlan(g.graph, fused, &hit);
  EXPECT_FALSE(hit);
  (void)cache.GetOrPlan(g.graph, unfused, &hit);
  EXPECT_FALSE(hit) << "different planner knobs must not share a plan";
  EXPECT_EQ(cache.size(), 2u);
}

TEST(FusionPlanCache, EvictsLeastRecentlyUsed) {
  FusionOptions options;
  options.enabled = true;
  FusionPlanCache cache(2);

  auto chain_of = [](int length) {
    OpGraph g;
    NodeId prev = g.AddSource("t", KV(), 100);
    for (int i = 0; i < length; ++i) {
      prev = g.AddOperator(
          OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(i)), "s"),
          prev);
    }
    return g;
  };

  const OpGraph a = chain_of(1);
  const OpGraph b = chain_of(2);
  const OpGraph c = chain_of(3);
  bool hit = false;
  (void)cache.GetOrPlan(a, options, &hit);
  (void)cache.GetOrPlan(b, options, &hit);
  (void)cache.GetOrPlan(a, options, &hit);  // refresh a -> b is now LRU
  EXPECT_TRUE(hit);
  (void)cache.GetOrPlan(c, options, &hit);  // evicts b
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 2u);
  (void)cache.GetOrPlan(a, options, &hit);
  EXPECT_TRUE(hit) << "recently-used entry was evicted";
  (void)cache.GetOrPlan(b, options, &hit);
  EXPECT_FALSE(hit) << "LRU entry survived eviction";
}

TEST(FusionPlanCache, VersionZeroKeepsHistoricalKeys) {
  // Version 0 must reproduce the pre-versioning key exactly, so existing
  // callers (and any persisted key expectations) see no change.
  const TwoBranch g = BuildForward();
  FusionOptions options;
  options.enabled = true;
  EXPECT_EQ(FusionPlanCache::KeyFor(g.graph, options),
            FusionPlanCache::KeyFor(g.graph, options, /*version=*/0));
}

TEST(FusionPlanCache, VersionsPartitionTheKeySpace) {
  const TwoBranch g = BuildForward();
  FusionOptions options;
  options.enabled = true;
  const std::string v0 = FusionPlanCache::KeyFor(g.graph, options, 0);
  const std::string v1 = FusionPlanCache::KeyFor(g.graph, options, 1);
  const std::string v2 = FusionPlanCache::KeyFor(g.graph, options, 2);
  EXPECT_NE(v0, v1);
  EXPECT_NE(v1, v2);
  EXPECT_NE(v0, v2);
}

TEST(FusionPlanCache, StalePlanIsReplannedAfterVersionBump) {
  // The calibration-epoch contract: a plan cached under version N is simply
  // never found under version N+1 — the lookup misses and the graph is
  // re-planned against the current cost model, not served stale.
  const TwoBranch g = BuildForward();
  FusionOptions options;
  options.enabled = true;
  FusionPlanCache cache(8);

  bool hit = true;
  (void)cache.GetOrPlan(g.graph, options, &hit, /*version=*/1);
  EXPECT_FALSE(hit);
  (void)cache.GetOrPlan(g.graph, options, &hit, /*version=*/1);
  EXPECT_TRUE(hit) << "same version must reuse the cached plan";
  (void)cache.GetOrPlan(g.graph, options, &hit, /*version=*/2);
  EXPECT_FALSE(hit) << "bumped version reused a stale plan";
  (void)cache.GetOrPlan(g.graph, options, &hit, /*version=*/2);
  EXPECT_TRUE(hit);
}

TEST(FusionPlanCache, KeyIsStableAcrossProcessRestartsByConstruction) {
  // The key must contain no pointers, node ids, or iteration-order artifacts
  // — re-canonicalizing the same graph many times, and canonicalizing a
  // freshly rebuilt copy, always yields the identical string.
  tpch::TpchConfig config;
  config.order_count = 50;
  config.supplier_count = 10;
  const tpch::TpchData data = tpch::MakeTpchData(config);
  const tpch::QueryPlan plan1 = BuildQ1Plan(data);
  const tpch::QueryPlan plan2 = BuildQ1Plan(data);
  const std::string key = CanonicalizeGraph(plan1.graph).key;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(CanonicalizeGraph(plan1.graph).key, key);
  }
  EXPECT_EQ(CanonicalizeGraph(plan2.graph).key, key);
  EXPECT_FALSE(key.empty());
}

}  // namespace
}  // namespace kf::server
