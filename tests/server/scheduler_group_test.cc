// QueryScheduler group mode: least-loaded placement across a DeviceGroup,
// sharded serving, per-device circuit breakers (a permanently broken device
// drains to the healthy ones), and per-device virtual-clock accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/multi_device.h"
#include "obs/metrics_registry.h"
#include "server/query_scheduler.h"
#include "sim/device_group.h"
#include "sim/fault_injector.h"
#include "tests/core/byte_identical.h"
#include "tests/core/random_graph.h"

namespace kf::server {
namespace {

using core::NodeId;
using relational::Expr;
using relational::OperatorDesc;
using relational::Table;

// A shardable SELECT chain over one source (see MultiDeviceExecutor docs).
core::RandomQuery MakeChainQuery(std::uint64_t seed, std::size_t rows) {
  kf::Rng rng(seed);
  core::RandomQuery q;
  const Table fact = core::RandomKV(rng, rows);
  const NodeId src = q.graph.AddSource("fact", fact.schema(), rows);
  q.sources.emplace(src, fact);
  NodeId node = q.graph.AddOperator(
      OperatorDesc::Select(Expr::Le(Expr::FieldRef(1), Expr::Lit(30))), src);
  q.graph.AddOperator(
      OperatorDesc::Select(Expr::Ge(Expr::FieldRef(1), Expr::Lit(-30))), node);
  return q;
}

QueryRequest MakeRequest(const core::RandomQuery& q, bool allow_sharding = false) {
  QueryRequest request;
  request.graph = q.graph;
  request.sources = q.sources;
  request.allow_sharding = allow_sharding;
  return request;
}

TEST(SchedulerGroupTest, LeastLoadedPlacementSpreadsAcrossDevices) {
  sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(2);
  obs::MetricsRegistry registry;
  SchedulerOptions options;
  options.worker_count = 1;  // deterministic batch order
  options.start_paused = true;
  options.metrics = &registry;
  QueryScheduler scheduler(group, options);

  std::vector<std::future<QueryResult>> futures;
  std::vector<core::RandomQuery> queries;
  for (int i = 0; i < 4; ++i) {
    queries.push_back(MakeChainQuery(100 + static_cast<std::uint64_t>(i), 400));
    futures.push_back(scheduler.Submit(MakeRequest(queries.back())));
  }
  scheduler.Start();

  std::vector<int> devices;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    QueryResult result = futures[i].get();
    EXPECT_FALSE(result.sharded);
    EXPECT_EQ(result.devices_used, 1);
    EXPECT_GE(result.sim_latency(), 0.0);
    devices.push_back(result.device);
    const std::map<NodeId, Table> truth = core::ReferenceResults(queries[i]);
    for (NodeId sink : queries[i].graph.Sinks()) {
      EXPECT_TRUE(core::ByteIdentical(result.results.at(sink), truth.at(sink)));
    }
  }
  // Equal-cost queries on an idle group alternate between the two devices.
  EXPECT_EQ(std::count(devices.begin(), devices.end(), 0), 2);
  EXPECT_EQ(std::count(devices.begin(), devices.end(), 1), 2);
  EXPECT_GE(registry.GetCounter("server.device.batches", {{"device", "dev0"}})
                .value(),
            1u);
  EXPECT_GE(registry.GetCounter("server.device.batches", {{"device", "dev1"}})
                .value(),
            1u);
}

TEST(SchedulerGroupTest, ShardingOptInServesAcrossTheGroup) {
  sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(4);
  obs::MetricsRegistry registry;
  SchedulerOptions options;
  options.worker_count = 1;
  options.start_paused = true;
  options.metrics = &registry;
  QueryScheduler scheduler(group, options);

  const core::RandomQuery q = MakeChainQuery(7, 1200);
  auto sharded_future = scheduler.Submit(MakeRequest(q, /*allow_sharding=*/true));
  auto whole_future = scheduler.Submit(MakeRequest(q, /*allow_sharding=*/false));
  scheduler.Start();

  const std::map<NodeId, Table> truth = core::ReferenceResults(q);
  QueryResult sharded = sharded_future.get();
  EXPECT_TRUE(sharded.sharded);
  EXPECT_EQ(sharded.devices_used, 4);
  QueryResult whole = whole_future.get();
  EXPECT_FALSE(whole.sharded);
  EXPECT_EQ(whole.devices_used, 1);
  for (NodeId sink : q.graph.Sinks()) {
    EXPECT_TRUE(core::ByteIdentical(sharded.results.at(sink), truth.at(sink)));
    EXPECT_TRUE(core::ByteIdentical(whole.results.at(sink), truth.at(sink)));
  }
  EXPECT_GE(registry.GetCounter("server.device.sharded_batches").value(), 1u);
  EXPECT_GT(scheduler.sim_clock(), 0.0);
}

TEST(SchedulerGroupTest, BrokenDeviceDrainsToHealthySiblings) {
  // Device 0 faults on nearly every command; its first degraded batch trips
  // the breaker (threshold 1), and with probing disabled it stays open, so
  // the remaining work drains to device 1. (A degraded batch also inflates
  // dev0's virtual clock — host rerun time — so least-loaded placement
  // naturally avoids it even before the breaker reacts.) Every query still
  // completes byte-identically.
  sim::FaultConfig config;
  config.seed = 99;
  config.copy_fault_rate = 0.95;
  config.kernel_fault_rate = 0.95;
  const sim::FaultInjector faulty(config);

  sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(2);
  obs::MetricsRegistry registry;
  SchedulerOptions options;
  options.worker_count = 1;
  options.start_paused = true;
  options.metrics = &registry;
  options.device_injectors = {&faulty, nullptr};
  options.breaker_threshold = 1;
  options.breaker_probe_interval = 0;  // never probe: dev0 stays quarantined
  QueryScheduler scheduler(group, options);

  std::vector<std::future<QueryResult>> futures;
  std::vector<core::RandomQuery> queries;
  for (int i = 0; i < 8; ++i) {
    queries.push_back(MakeChainQuery(500 + static_cast<std::uint64_t>(i), 300));
    futures.push_back(scheduler.Submit(MakeRequest(queries[i])));
  }
  scheduler.Start();

  int on_broken = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    QueryResult result = futures[i].get();
    if (result.device == 0) ++on_broken;
    EXPECT_GE(result.sim_latency(), 0.0);
    const std::map<NodeId, Table> truth = core::ReferenceResults(queries[i]);
    for (NodeId sink : queries[i].graph.Sinks()) {
      EXPECT_TRUE(core::ByteIdentical(result.results.at(sink), truth.at(sink)))
          << "query " << i << " on device " << result.device;
    }
  }
  EXPECT_TRUE(scheduler.breaker_open(0));
  EXPECT_FALSE(scheduler.breaker_open(1));
  // The breaker needed one strike, then dev0 got no more work.
  EXPECT_LE(on_broken, 2);
  EXPECT_GE(registry
                .GetCounter("server.device.breaker_opened", {{"device", "dev0"}})
                .value(),
            1u);
}

TEST(SchedulerGroupTest, AllBreakersOpenRoutesHostSide) {
  sim::FaultConfig config;
  config.seed = 5;
  config.copy_fault_rate = 0.95;
  config.kernel_fault_rate = 0.95;
  const sim::FaultInjector faulty(config);

  sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(2);
  obs::MetricsRegistry registry;
  SchedulerOptions options;
  options.worker_count = 1;
  options.start_paused = true;
  options.metrics = &registry;
  options.device_injectors = {&faulty, &faulty};
  options.breaker_threshold = 1;
  options.breaker_probe_interval = 0;
  QueryScheduler scheduler(group, options);

  std::vector<std::future<QueryResult>> futures;
  std::vector<core::RandomQuery> queries;
  for (int i = 0; i < 5; ++i) {
    queries.push_back(MakeChainQuery(900 + static_cast<std::uint64_t>(i), 200));
    futures.push_back(scheduler.Submit(MakeRequest(queries[i])));
  }
  scheduler.Start();

  bool saw_host_run = false;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    QueryResult result = futures[i].get();
    saw_host_run = saw_host_run || result.ran_on_host;
    const std::map<NodeId, Table> truth = core::ReferenceResults(queries[i]);
    for (NodeId sink : queries[i].graph.Sinks()) {
      EXPECT_TRUE(core::ByteIdentical(result.results.at(sink), truth.at(sink)));
    }
  }
  EXPECT_TRUE(scheduler.breaker_open(0));
  EXPECT_TRUE(scheduler.breaker_open(1));
  EXPECT_TRUE(saw_host_run);
}

}  // namespace
}  // namespace kf::server
