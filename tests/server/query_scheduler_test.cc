// QueryScheduler unit tests: single-query parity with direct execution,
// cross-query batching through MergeGraphs, backpressure and admission,
// shutdown semantics, and virtual-clock accounting.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/query_executor.h"
#include "core/select_chain.h"
#include "server/query_scheduler.h"
#include "tpch/q1.h"

namespace kf::server {
namespace {

using core::ExecutorOptions;
using core::NodeId;
using core::Strategy;
using relational::Table;

tpch::TpchData SmallData() {
  tpch::TpchConfig config;
  config.order_count = 200;
  config.supplier_count = 20;
  return tpch::MakeTpchData(config);
}

QueryRequest Q1Request(const tpch::QueryPlan& plan, Strategy strategy,
                       std::string merge_class = "") {
  QueryRequest request;
  request.graph = plan.graph;
  request.sources = plan.sources;
  request.options.strategy = strategy;
  request.merge_class = std::move(merge_class);
  return request;
}

QueryRequest ChainRequest(const core::SelectChain& chain, const Table& input,
                          std::string merge_class) {
  QueryRequest request;
  request.graph = chain.graph;
  request.sources.emplace(chain.source, input);
  request.options.strategy = Strategy::kFusedFission;
  request.merge_class = std::move(merge_class);
  return request;
}

TEST(QueryScheduler, SingleQueryMatchesDirectExecution) {
  const tpch::TpchData data = SmallData();
  const tpch::QueryPlan plan = BuildQ1Plan(data);

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  ExecutorOptions options;
  options.strategy = Strategy::kFused;
  const core::ExecutionReport direct =
      executor.Execute(plan.graph, plan.sources, options);

  obs::MetricsRegistry registry;
  SchedulerOptions sched_options;
  sched_options.worker_count = 1;
  sched_options.metrics = &registry;
  QueryScheduler scheduler(device, sched_options);
  QueryResult result = scheduler.Submit(Q1Request(plan, Strategy::kFused)).get();

  EXPECT_FALSE(result.merged);
  EXPECT_EQ(result.batch_size, 1u);
  EXPECT_DOUBLE_EQ(result.report.makespan, direct.makespan);
  ASSERT_EQ(result.results.count(plan.sink), 1u);
  EXPECT_TRUE(relational::SameRowMultiset(result.results.at(plan.sink),
                                          direct.sink_results.at(plan.sink)));
  // The virtual device clock advanced by exactly this query's makespan.
  EXPECT_DOUBLE_EQ(scheduler.sim_clock(), direct.makespan);
  EXPECT_DOUBLE_EQ(result.sim_latency(), direct.makespan);
  EXPECT_EQ(registry.GetCounter("server.completed").value(), 1u);
  EXPECT_EQ(registry.GetCounter("server.batches").value(), 1u);
}

TEST(QueryScheduler, BatchesCompatibleQueriesAndSharesScans) {
  // Four select-chain queries over the SAME source relation, merge-enabled:
  // with a paused single-worker scheduler they land in one merged execution
  // whose simulated makespan beats running them back to back (the input
  // crosses PCIe once, not four times).
  const std::vector<double> selectivities = {0.5, 0.5};
  const core::SelectChain chain = core::MakeSelectChain(50'000, selectivities);
  const Table input = core::MakeUniformInt32Table(50'000);

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  ExecutorOptions options;
  options.strategy = Strategy::kFusedFission;
  const core::ExecutionReport solo_report =
      executor.Execute(chain.graph, {{chain.source, input}}, options);
  const double solo = solo_report.makespan;
  const std::size_t expected_rows =
      solo_report.sink_results.begin()->second.row_count();

  obs::MetricsRegistry registry;
  SchedulerOptions sched_options;
  sched_options.worker_count = 1;
  sched_options.start_paused = true;
  sched_options.metrics = &registry;
  QueryScheduler scheduler(device, sched_options);

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(scheduler.Submit(ChainRequest(chain, input, "chains")));
  }
  scheduler.Start();

  for (auto& future : futures) {
    QueryResult result = future.get();
    EXPECT_TRUE(result.merged);
    EXPECT_EQ(result.batch_size, 4u);
    ASSERT_EQ(result.results.size(), 1u);
    EXPECT_EQ(result.results.begin()->second.row_count(), expected_rows);
  }
  // One merged run of 4 chains must beat 4 solo runs on simulated time.
  EXPECT_LT(scheduler.sim_clock(), 4 * solo);
  EXPECT_EQ(registry.GetCounter("server.batches").value(), 1u);
  EXPECT_EQ(registry.GetCounter("server.merged_queries").value(), 4u);
}

TEST(QueryScheduler, EmptyMergeClassNeverMerges) {
  const std::vector<double> selectivities = {0.5};
  const core::SelectChain chain = core::MakeSelectChain(10'000, selectivities);
  const Table input = core::MakeUniformInt32Table(10'000);

  sim::DeviceSimulator device;
  SchedulerOptions sched_options;
  sched_options.worker_count = 1;
  sched_options.start_paused = true;
  obs::MetricsRegistry registry;
  sched_options.metrics = &registry;
  QueryScheduler scheduler(device, sched_options);

  auto f1 = scheduler.Submit(ChainRequest(chain, input, ""));
  auto f2 = scheduler.Submit(ChainRequest(chain, input, ""));
  scheduler.Start();
  EXPECT_FALSE(f1.get().merged);
  EXPECT_FALSE(f2.get().merged);
  EXPECT_EQ(registry.GetCounter("server.batches").value(), 2u);
}

TEST(QueryScheduler, DifferentOptionsDoNotMerge) {
  const std::vector<double> selectivities = {0.5};
  const core::SelectChain chain = core::MakeSelectChain(10'000, selectivities);
  const Table input = core::MakeUniformInt32Table(10'000);

  sim::DeviceSimulator device;
  SchedulerOptions sched_options;
  sched_options.worker_count = 1;
  sched_options.start_paused = true;
  QueryScheduler scheduler(device, sched_options);

  QueryRequest serial = ChainRequest(chain, input, "chains");
  serial.options.strategy = Strategy::kSerial;
  auto f1 = scheduler.Submit(std::move(serial));
  auto f2 = scheduler.Submit(ChainRequest(chain, input, "chains"));
  scheduler.Start();
  EXPECT_FALSE(f1.get().merged);
  EXPECT_FALSE(f2.get().merged);
}

TEST(QueryScheduler, TrySubmitRejectsWhenQueueFull) {
  const std::vector<double> selectivities = {0.5};
  const core::SelectChain chain = core::MakeSelectChain(1'000, selectivities);
  const Table input = core::MakeUniformInt32Table(1'000);

  sim::DeviceSimulator device;
  SchedulerOptions sched_options;
  sched_options.worker_count = 1;
  sched_options.start_paused = true;  // nothing drains until Start()
  sched_options.max_queue_depth = 2;
  obs::MetricsRegistry registry;
  sched_options.metrics = &registry;
  QueryScheduler scheduler(device, sched_options);

  auto f1 = scheduler.TrySubmit(ChainRequest(chain, input, ""));
  auto f2 = scheduler.TrySubmit(ChainRequest(chain, input, ""));
  auto f3 = scheduler.TrySubmit(ChainRequest(chain, input, ""));
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  EXPECT_FALSE(f3.has_value());
  EXPECT_EQ(registry.GetCounter("server.rejected").value(), 1u);
  EXPECT_EQ(scheduler.queue_depth(), 2u);

  scheduler.Start();
  EXPECT_EQ(f1->get().results.size(), 1u);
  EXPECT_EQ(f2->get().results.size(), 1u);
}

TEST(QueryScheduler, ShutdownDrainsQueuedQueries) {
  const std::vector<double> selectivities = {0.5};
  const core::SelectChain chain = core::MakeSelectChain(1'000, selectivities);
  const Table input = core::MakeUniformInt32Table(1'000);

  sim::DeviceSimulator device;
  SchedulerOptions sched_options;
  sched_options.worker_count = 1;
  sched_options.start_paused = true;
  QueryScheduler scheduler(device, sched_options);

  auto f1 = scheduler.Submit(ChainRequest(chain, input, ""));
  auto f2 = scheduler.Submit(ChainRequest(chain, input, ""));
  scheduler.Shutdown();  // never Start()ed — Shutdown still drains the queue
  EXPECT_EQ(f1.get().results.size(), 1u);
  EXPECT_EQ(f2.get().results.size(), 1u);
  EXPECT_THROW(scheduler.Submit(ChainRequest(chain, input, "")), kf::Error);
}

TEST(QueryScheduler, FailedQueryPropagatesThroughFuture) {
  // A graph submitted without its source bound: Execute throws, and the
  // exception must surface through the future, not kill the worker.
  const std::vector<double> selectivities = {0.5};
  const core::SelectChain chain = core::MakeSelectChain(1'000, selectivities);
  const Table input = core::MakeUniformInt32Table(1'000);

  sim::DeviceSimulator device;
  SchedulerOptions sched_options;
  sched_options.worker_count = 1;
  QueryScheduler scheduler(device, sched_options);

  QueryRequest unbound;
  unbound.graph = chain.graph;  // sources left empty
  auto bad = scheduler.Submit(std::move(unbound));
  EXPECT_THROW(bad.get(), kf::Error);

  // The worker survives and keeps serving.
  auto good = scheduler.Submit(ChainRequest(chain, input, ""));
  EXPECT_EQ(good.get().results.size(), 1u);
}

TEST(QueryScheduler, MergedBatchFallsBackWhenOneQueryIsBroken) {
  // Two merge-class queries, one with its source unbound: the merged run
  // throws, the scheduler retries solo, the good query still succeeds and
  // the bad one reports its own error.
  const std::vector<double> selectivities = {0.5};
  const core::SelectChain chain = core::MakeSelectChain(1'000, selectivities);
  const Table input = core::MakeUniformInt32Table(1'000);

  sim::DeviceSimulator device;
  SchedulerOptions sched_options;
  sched_options.worker_count = 1;
  sched_options.start_paused = true;
  obs::MetricsRegistry registry;
  sched_options.metrics = &registry;
  QueryScheduler scheduler(device, sched_options);

  auto good = scheduler.Submit(ChainRequest(chain, input, "chains"));
  // Same chain plus an extra source that is never bound: the merged run
  // throws when it reaches the unbound source.
  QueryRequest unbound = ChainRequest(chain, input, "chains");
  core::OpGraph broken = chain.graph;
  const core::NodeId missing = broken.AddSource(
      "missing", relational::Schema{{"v", relational::DataType::kInt32}}, 100);
  broken.AddOperator(
      relational::OperatorDesc::Select(
          relational::Expr::Ge(relational::Expr::FieldRef(0),
                               relational::Expr::Lit(0)),
          "consume_missing"),
      missing);
  unbound.graph = std::move(broken);
  auto bad = scheduler.Submit(std::move(unbound));
  scheduler.Start();

  EXPECT_EQ(good.get().results.size(), 1u);
  EXPECT_THROW(bad.get(), kf::Error);
  EXPECT_EQ(registry.GetCounter("server.merge_fallbacks").value(), 1u);
}

TEST(QueryScheduler, RepeatedTemplateHitsPlanCache) {
  const tpch::TpchData data = SmallData();
  const tpch::QueryPlan plan = BuildQ1Plan(data);

  sim::DeviceSimulator device;
  SchedulerOptions sched_options;
  sched_options.worker_count = 1;
  sched_options.max_batch = 1;  // force one execution per query
  QueryScheduler scheduler(device, sched_options);

  const int kQueries = 10;
  bool first_hit = true;
  for (int i = 0; i < kQueries; ++i) {
    QueryResult result =
        scheduler.Submit(Q1Request(plan, Strategy::kFused)).get();
    if (i == 0) first_hit = result.plan_cache_hit;
    if (i > 0) EXPECT_TRUE(result.plan_cache_hit) << "query " << i;
  }
  EXPECT_FALSE(first_hit);
  EXPECT_EQ(scheduler.plan_cache().hits(), static_cast<std::uint64_t>(kQueries - 1));
  EXPECT_EQ(scheduler.plan_cache().misses(), 1u);
  EXPECT_GT(scheduler.plan_cache().HitRate(), 0.89);
}

TEST(QueryScheduler, AdmissionControlSerializesOversizedBatches) {
  // With a tiny admission allowance every batch exceeds the budget, so
  // batches run strictly one at a time even with many workers — and all of
  // them still complete (an oversized batch runs when nothing else does).
  const std::vector<double> selectivities = {0.5};
  const core::SelectChain chain = core::MakeSelectChain(10'000, selectivities);
  const Table input = core::MakeUniformInt32Table(10'000);

  sim::DeviceSimulator device;
  SchedulerOptions sched_options;
  sched_options.worker_count = 4;
  sched_options.admission_memory_fraction = 1e-9;  // ~6 bytes of allowance
  QueryScheduler scheduler(device, sched_options);

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(scheduler.Submit(ChainRequest(chain, input, "")));
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().results.size(), 1u);
  }
}

TEST(QueryScheduler, DrainWaitsForAllOutstandingWork) {
  const std::vector<double> selectivities = {0.5};
  const core::SelectChain chain = core::MakeSelectChain(5'000, selectivities);
  const Table input = core::MakeUniformInt32Table(5'000);

  sim::DeviceSimulator device;
  SchedulerOptions sched_options;
  sched_options.worker_count = 2;
  QueryScheduler scheduler(device, sched_options);

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(scheduler.Submit(ChainRequest(chain, input, "")));
  }
  scheduler.Drain();
  EXPECT_EQ(scheduler.queue_depth(), 0u);
  for (auto& future : futures) {
    // Every future is already fulfilled after Drain().
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    future.get();
  }
}

TEST(QueryScheduler, CalibrationEpochBumpInvalidatesCachedPlans) {
  // The staleness regression: a plan cached before the calibration epoch
  // moved must NOT be served afterwards — the bumped epoch versions it out
  // of the key space and the next submission re-plans.
  const tpch::TpchData data = SmallData();
  const tpch::QueryPlan plan = BuildQ1Plan(data);

  sim::DeviceSimulator device;
  core::CalibrationOptions calib_options;
  calib_options.frozen = true;  // deterministic epochs: only manual bumps
  core::CostModelCalibrator calib(device.spec(), sim::PcieConfig{},
                                  calib_options);

  obs::MetricsRegistry registry;
  SchedulerOptions sched_options;
  sched_options.worker_count = 1;
  sched_options.metrics = &registry;
  sched_options.calibration = &calib;
  QueryScheduler scheduler(device, sched_options);

  EXPECT_FALSE(
      scheduler.Submit(Q1Request(plan, Strategy::kFused)).get().plan_cache_hit);
  EXPECT_TRUE(
      scheduler.Submit(Q1Request(plan, Strategy::kFused)).get().plan_cache_hit);

  calib.AdvanceEpoch();  // the cost model drifted: the cached plan is stale
  EXPECT_FALSE(
      scheduler.Submit(Q1Request(plan, Strategy::kFused)).get().plan_cache_hit)
      << "pre-drift plan was served after the calibration epoch bumped";
  EXPECT_TRUE(
      scheduler.Submit(Q1Request(plan, Strategy::kFused)).get().plan_cache_hit)
      << "re-planned entry under the new epoch must be reusable";
}

TEST(QueryScheduler, SharedCalibratorAcrossWorkersLearnsAndStaysCorrect) {
  // Several workers execute concurrently against ONE calibrator (the
  // production shape: scheduler-level calibration). Results must match the
  // uncalibrated reference and the calibrator must have actually learned.
  const tpch::TpchData data = SmallData();
  const tpch::QueryPlan plan = BuildQ1Plan(data);

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  ExecutorOptions direct_options;
  direct_options.strategy = Strategy::kFusedFission;
  const core::ExecutionReport direct =
      executor.Execute(plan.graph, plan.sources, direct_options);

  // Believed PCIe 2x optimistic: there is a real correction to learn.
  sim::PcieConfig believed;
  believed.pinned_h2d_gbs *= 2.0;
  believed.pinned_d2h_gbs *= 2.0;
  core::CostModelCalibrator calib(device.spec(), believed);

  obs::MetricsRegistry registry;
  SchedulerOptions sched_options;
  sched_options.worker_count = 3;
  sched_options.metrics = &registry;
  sched_options.calibration = &calib;
  QueryScheduler scheduler(device, sched_options);

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(
        scheduler.Submit(Q1Request(plan, Strategy::kFusedFission)));
  }
  for (auto& future : futures) {
    QueryResult result = future.get();
    ASSERT_EQ(result.results.count(plan.sink), 1u);
    EXPECT_TRUE(relational::SameRowMultiset(result.results.at(plan.sink),
                                            direct.sink_results.at(plan.sink)));
  }
  EXPECT_GT(calib.observations(), 0u);
  EXPECT_GT(calib.CopyCorrection(sim::CopyDirection::kHostToDevice), 1.2)
      << "2x-optimistic H2D belief should learn a >1 correction";
}

}  // namespace
}  // namespace kf::server
