// Concurrency stress: many client threads hammer one QueryScheduler with an
// interleaved mix of TPC-H Q1, Q21, and SELECT-chain queries. Checks: no
// deadlock (the test finishes), every future resolves, every result is
// correct, and the virtual clock equals the sum of executed batch makespans.
// Run under KF_SANITIZE=thread (the `tsan` preset) to let TSan check the
// scheduler's locking.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/error.h"
#include "core/query_executor.h"
#include "core/select_chain.h"
#include "server/query_scheduler.h"
#include "tests/core/random_graph.h"
#include "tpch/q1.h"
#include "tpch/q21.h"

namespace kf::server {
namespace {

using core::NodeId;
using core::Strategy;
using relational::Table;

struct Workload {
  tpch::TpchData data;
  tpch::QueryPlan q1;
  tpch::QueryPlan q21;
  Table q1_expected;
  Table q21_expected;
  core::SelectChain chain;
  Table chain_input;
  std::size_t chain_rows = 0;  // actual output rows of a serial run
};

Workload MakeWorkload() {
  Workload w;
  tpch::TpchConfig config;
  config.order_count = 120;
  config.supplier_count = 15;
  w.data = tpch::MakeTpchData(config);
  w.q1 = BuildQ1Plan(w.data);
  w.q21 = BuildQ21Plan(w.data);
  w.q1_expected = tpch::ReferenceQ1(w.data.lineitem);
  w.q21_expected = tpch::ReferenceQ21(w.data);
  const std::vector<double> selectivities = {0.5, 0.5};
  w.chain = core::MakeSelectChain(20'000, selectivities);
  w.chain_input = core::MakeUniformInt32Table(20'000);
  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  w.chain_rows = executor
                     .Execute(w.chain.graph, {{w.chain.source, w.chain_input}},
                              core::ExecutorOptions{})
                     .sink_results.begin()
                     ->second.row_count();
  return w;
}

QueryRequest MakeRequest(const Workload& w, int kind, Strategy strategy,
                         bool merge) {
  QueryRequest request;
  switch (kind) {
    case 0:
      request.graph = w.q1.graph;
      request.sources = w.q1.sources;
      if (merge) request.merge_class = "q1";
      break;
    case 1:
      request.graph = w.q21.graph;
      request.sources = w.q21.sources;
      if (merge) request.merge_class = "q21";
      break;
    default:
      request.graph = w.chain.graph;
      request.sources.emplace(w.chain.source, w.chain_input);
      if (merge) request.merge_class = "chain";
      break;
  }
  request.options.strategy = strategy;
  return request;
}

void CheckResult(const Workload& w, int kind, QueryResult& result) {
  switch (kind) {
    case 0: {
      ASSERT_EQ(result.results.count(w.q1.sink), 1u);
      EXPECT_TRUE(relational::ApproxSameRowMultiset(
          result.results.at(w.q1.sink), w.q1_expected));
      break;
    }
    case 1: {
      ASSERT_EQ(result.results.count(w.q21.sink), 1u);
      EXPECT_TRUE(relational::SameRowMultiset(result.results.at(w.q21.sink),
                                              w.q21_expected));
      break;
    }
    default: {
      ASSERT_EQ(result.results.size(), 1u);
      EXPECT_EQ(result.results.begin()->second.row_count(), w.chain_rows);
      break;
    }
  }
  EXPECT_GE(result.sim_complete, result.sim_submit);
  EXPECT_GT(result.report.makespan, 0.0);
}

TEST(SchedulerStress, ConcurrentClientsInterleavedWorkloadsAllResolve) {
  const Workload w = MakeWorkload();

  sim::DeviceSimulator device;
  ThreadPool pool(4);
  obs::MetricsRegistry registry;
  SchedulerOptions options;
  options.worker_count = 3;
  options.max_queue_depth = 16;  // small queue -> real backpressure
  options.max_batch = 4;
  options.metrics = &registry;
  options.execution_pool = &pool;
  QueryScheduler scheduler(device, options);

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 12;
  const Strategy strategies[] = {Strategy::kSerial, Strategy::kFused,
                                 Strategy::kFission, Strategy::kFusedFission};

  std::atomic<int> failures{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const int kind = (c + i) % 3;
        const Strategy strategy = strategies[(c * 7 + i) % 4];
        const bool merge = ((c + i) % 2) == 0;
        try {
          auto future =
              scheduler.Submit(MakeRequest(w, kind, strategy, merge));
          QueryResult result = future.get();
          CheckResult(w, kind, result);
          completed.fetch_add(1);
        } catch (const std::exception& e) {
          ADD_FAILURE() << "client " << c << " query " << i
                        << " failed: " << e.what();
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  scheduler.Drain();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(completed.load(), kClients * kQueriesPerClient);
  EXPECT_EQ(registry.GetCounter("server.completed").value(),
            static_cast<std::uint64_t>(kClients * kQueriesPerClient));
  EXPECT_GT(scheduler.sim_clock(), 0.0);
  // Every query's simulated completion is bounded by the final clock.
  EXPECT_EQ(scheduler.queue_depth(), 0u);
}

TEST(SchedulerStress, SubmittersBlockedOnBackpressureSurviveShutdown) {
  // Clients block in Submit() on a tiny paused queue; Shutdown() must wake
  // them (either accepting or throwing) without deadlocking, and every
  // accepted query's future must resolve.
  const std::vector<double> selectivities = {0.5};
  const core::SelectChain chain = core::MakeSelectChain(2'000, selectivities);
  const Table input = core::MakeUniformInt32Table(2'000);

  sim::DeviceSimulator device;
  SchedulerOptions options;
  options.worker_count = 1;
  options.max_queue_depth = 2;
  options.start_paused = true;
  auto scheduler = std::make_unique<QueryScheduler>(device, options);

  std::atomic<int> resolved{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&] {
      QueryRequest request;
      request.graph = chain.graph;
      request.sources.emplace(chain.source, input);
      try {
        auto future = scheduler->Submit(std::move(request));
        future.get();
        resolved.fetch_add(1);
      } catch (const kf::Error&) {
        rejected.fetch_add(1);  // submitted after Shutdown -> acceptable
      }
    });
  }
  // Give clients time to pile up on the full queue, then shut down.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  scheduler->Shutdown();
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(resolved.load() + rejected.load(), 6);
  EXPECT_GE(resolved.load(), 2);  // at least the queued ones completed
}

TEST(SchedulerStress, RandomGraphsUnderConcurrencyMatchReference) {
  sim::DeviceSimulator device;
  SchedulerOptions options;
  options.worker_count = 3;
  options.max_batch = 4;
  QueryScheduler scheduler(device, options);

  constexpr int kClients = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 4; ++i) {
        const core::RandomQuery q =
            core::MakeRandomQuery(static_cast<std::uint64_t>(c) * 131 + i);
        const std::map<NodeId, Table> truth = core::ReferenceResults(q);
        QueryRequest request;
        request.graph = q.graph;
        request.sources = q.sources;
        request.options.strategy =
            (i % 2) == 0 ? Strategy::kFused : Strategy::kFusedFission;
        QueryResult result = scheduler.Submit(std::move(request)).get();
        for (NodeId sink : q.graph.Sinks()) {
          if (result.results.count(sink) != 1 ||
              !relational::SameRowMultiset(result.results.at(sink),
                                           truth.at(sink))) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace kf::server
