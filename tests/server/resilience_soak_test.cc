// Fault-injection soak: N random operator graphs served through the
// scheduler under aggressive fault rates. Every query must either complete
// (possibly retried or degraded) with results byte-identical to the scalar
// reference, or fail with a *typed* kf::Error — never a wrong answer, never
// an untyped one. CI runs this in Release with KF_SOAK_QUERIES=200; the
// default keeps local ctest fast.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/error.h"
#include "obs/tracer.h"
#include "relational/csv.h"
#include "server/query_scheduler.h"
#include "sim/fault_injector.h"
#include "tests/core/random_graph.h"

namespace kf::server {
namespace {

using core::NodeId;
using relational::Table;

std::size_t SoakQueryCount() {
  if (const char* env = std::getenv("KF_SOAK_QUERIES")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 40;  // local default; CI overrides to 200
}

TEST(ResilienceSoak, RandomGraphsSucceedDegradeOrFailTyped) {
  const std::size_t n = SoakQueryCount();

  sim::DeviceSimulator device;
  obs::MetricsRegistry registry;

  // KF_FAULT_* environment variables override the built-in 20% profile, so
  // CI (or a bisecting developer) can re-run the soak at other rates/seeds.
  sim::FaultConfig config = sim::FaultConfig::FromEnv();
  if (!config.AnyEnabled()) {
    config.seed = 2026;
    config.copy_fault_rate = 0.2;
    config.kernel_fault_rate = 0.2;
    config.stall_rate = 0.2;
    config.oom_rate = 0.05;
  }
  sim::FaultInjector injector(config, &registry);

  // With KF_TRACE_DIR set (the CI soak jobs do), any query failing with a
  // typed error dumps its full span tree there for post-mortem triage.
  obs::Tracer tracer;

  SchedulerOptions options;
  options.worker_count = 1;  // deterministic batch order
  options.start_paused = true;
  options.max_queue_depth = n;
  options.max_batch = 1;  // solo execution: per-query outcomes stay pinned
  options.metrics = &registry;
  options.tracer = &tracer;
  options.fault_injector = &injector;
  options.query_retry_limit = 3;
  QueryScheduler scheduler(device, options);

  std::vector<core::RandomQuery> queries;
  std::vector<std::future<QueryResult>> futures;
  queries.reserve(n);
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queries.push_back(core::MakeRandomQuery(1000 + i));
    QueryRequest request;
    request.graph = queries.back().graph;
    request.sources = queries.back().sources;
    request.options.strategy = core::Strategy::kFusedFission;
    request.options.chunk_count = 8;
    request.options.fission_segments = 4;
    request.options.metrics = &registry;
    futures.push_back(scheduler.Submit(std::move(request)));
  }
  scheduler.Start();

  std::size_t completed = 0, degraded = 0, failed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    try {
      const QueryResult result = futures[i].get();
      ++completed;
      if (result.degraded) ++degraded;
      // Recovered or not, results are byte-identical to the scalar
      // reference for every sink.
      const std::map<NodeId, Table> truth =
          core::ReferenceResults(queries[i]);
      for (NodeId sink : queries[i].graph.Sinks()) {
        ASSERT_EQ(result.results.count(sink), 1u)
            << "query " << i << " missing sink " << sink;
        EXPECT_EQ(relational::ToCsv(result.results.at(sink)),
                  relational::ToCsv(truth.at(sink)))
            << "query " << i << " sink " << sink;
      }
      // Failed segments released their reservations.
      EXPECT_EQ(result.report.leaked_device_bytes, 0u) << "query " << i;
    } catch (const Error& e) {
      ++failed;
      EXPECT_NE(e.code(), ErrorCode::kGeneric)
          << "query " << i << " failed untyped: " << e.what();
    } catch (const std::exception& e) {
      ++failed;
      ADD_FAILURE() << "query " << i
                    << " threw a non-kf::Error exception: " << e.what();
    }
  }

  EXPECT_EQ(completed + failed, n);
  // At 20% transient rates with retries + host degradation the vast
  // majority of queries must complete.
  EXPECT_GE(static_cast<double>(completed), 0.9 * static_cast<double>(n))
      << completed << "/" << n << " completed (" << degraded << " degraded)";
}

}  // namespace
}  // namespace kf::server
