// Device quarantine: a device that keeps returning corrupted bytes (caught
// by the integrity layer's checksums/audits, healed by re-execution) builds
// up a corruption score and gets quarantined — new batches drain to its
// siblings — while periodic probes keep testing it for re-admission.
#include <gtest/gtest.h>

#include <future>
#include <map>
#include <vector>

#include "common/random.h"
#include "obs/metrics_registry.h"
#include "server/query_scheduler.h"
#include "sim/device_group.h"
#include "sim/fault_injector.h"
#include "tests/core/byte_identical.h"
#include "tests/core/random_graph.h"

namespace kf::server {
namespace {

using core::NodeId;
using relational::Expr;
using relational::OperatorDesc;
using relational::Table;

core::RandomQuery MakeChainQuery(std::uint64_t seed, std::size_t rows) {
  kf::Rng rng(seed);
  core::RandomQuery q;
  const Table fact = core::RandomKV(rng, rows);
  const NodeId src = q.graph.AddSource("fact", fact.schema(), rows);
  q.sources.emplace(src, fact);
  NodeId node = q.graph.AddOperator(
      OperatorDesc::Select(Expr::Le(Expr::FieldRef(1), Expr::Lit(30))), src);
  q.graph.AddOperator(
      OperatorDesc::Select(Expr::Ge(Expr::FieldRef(1), Expr::Lit(-30))), node);
  return q;
}

QueryRequest MakeRequest(const core::RandomQuery& q) {
  QueryRequest request;
  request.graph = q.graph;
  request.sources = q.sources;
  return request;
}

core::IntegrityOptions FullVerification() {
  core::IntegrityOptions integrity;
  integrity.verify_transfers = true;
  integrity.audit_fraction = 1.0;
  return integrity;
}

TEST(SchedulerQuarantineTest, CorruptingDeviceIsQuarantinedAndDrains) {
  // Device 1 silently corrupts half its commands; the scheduler-level
  // integrity policy catches every flip and re-execution heals it, so
  // results stay correct — but its first corrupt batch quarantines it
  // (threshold 1; healing also inflates its virtual clock, so least-loaded
  // placement avoids it even before the quarantine reacts) and the
  // remaining work drains to device 0.
  sim::FaultConfig config;
  config.seed = 77;
  config.corrupt_h2d_rate = 0.5;
  config.corrupt_d2h_rate = 0.5;
  config.corrupt_kernel_rate = 0.5;
  const sim::FaultInjector corrupter(config);

  sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(2);
  obs::MetricsRegistry registry;
  SchedulerOptions options;
  options.worker_count = 1;
  options.start_paused = true;
  options.metrics = &registry;
  options.device_injectors = {nullptr, &corrupter};
  options.integrity = FullVerification();
  options.breaker_threshold = 0;       // isolate the quarantine machinery
  options.quarantine_threshold = 1;
  options.quarantine_probe_interval = 0;  // never probe: dev1 stays out
  QueryScheduler scheduler(group, options);

  std::vector<std::future<QueryResult>> futures;
  std::vector<core::RandomQuery> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(MakeChainQuery(800 + static_cast<std::uint64_t>(i), 300));
    futures.push_back(scheduler.Submit(MakeRequest(queries[i])));
  }
  scheduler.Start();

  int on_corrupter = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    QueryResult result = futures[i].get();
    if (result.device == 1) ++on_corrupter;
    const std::map<NodeId, Table> truth = core::ReferenceResults(queries[i]);
    for (NodeId sink : queries[i].graph.Sinks()) {
      ASSERT_EQ(result.results.count(sink), 1u) << "query " << i;
      EXPECT_TRUE(core::ByteIdentical(result.results.at(sink), truth.at(sink)))
          << "query " << i << " on device " << result.device;
    }
    EXPECT_EQ(result.report.corruption_undetected, 0u) << "query " << i;
  }
  EXPECT_TRUE(scheduler.quarantined(1));
  EXPECT_FALSE(scheduler.quarantined(0));
  EXPECT_FALSE(scheduler.breaker_open(1));  // corruption, not loud faults
  // One strike, then dev1 got no more work.
  EXPECT_LE(on_corrupter, 2);
  EXPECT_GE(registry
                .GetCounter("server.device.corrupt_batches", {{"device", "dev1"}})
                .value(),
            1u);
  EXPECT_GE(registry
                .GetCounter("server.device.quarantined", {{"device", "dev1"}})
                .value(),
            1u);
  EXPECT_EQ(registry
                .GetCounter("server.device.corrupt_batches", {{"device", "dev0"}})
                .value(),
            0u);
}

TEST(SchedulerQuarantineTest, ProbesKeepTestingAQuarantinedDevice) {
  // With probing enabled, every quarantine_probe_interval-th batch tries the
  // quarantined device again. This corrupter never goes clean, so it stays
  // quarantined — but the probes are visible and results stay correct.
  sim::FaultConfig config;
  config.seed = 13;
  config.corrupt_kernel_rate = 1.0;
  const sim::FaultInjector corrupter(config);

  sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(2);
  obs::MetricsRegistry registry;
  SchedulerOptions options;
  options.worker_count = 1;
  options.start_paused = true;
  options.metrics = &registry;
  options.device_injectors = {nullptr, &corrupter};
  options.integrity = FullVerification();
  options.breaker_threshold = 0;
  options.quarantine_threshold = 1;
  options.quarantine_probe_interval = 2;
  QueryScheduler scheduler(group, options);

  std::vector<std::future<QueryResult>> futures;
  std::vector<core::RandomQuery> queries;
  for (int i = 0; i < 12; ++i) {
    queries.push_back(MakeChainQuery(900 + static_cast<std::uint64_t>(i), 300));
    futures.push_back(scheduler.Submit(MakeRequest(queries[i])));
  }
  scheduler.Start();

  for (std::size_t i = 0; i < futures.size(); ++i) {
    QueryResult result = futures[i].get();
    const std::map<NodeId, Table> truth = core::ReferenceResults(queries[i]);
    for (NodeId sink : queries[i].graph.Sinks()) {
      EXPECT_TRUE(core::ByteIdentical(result.results.at(sink), truth.at(sink)))
          << "query " << i << " on device " << result.device;
    }
  }
  EXPECT_TRUE(scheduler.quarantined(1));
  EXPECT_GE(registry
                .GetCounter("server.device.quarantine_probes",
                            {{"device", "dev1"}})
                .value(),
            1u);
  EXPECT_EQ(registry
                .GetCounter("server.device.unquarantined", {{"device", "dev1"}})
                .value(),
            0u);
}

TEST(SchedulerQuarantineTest, CleanProbeReadmitsTheDevice) {
  // Corruption at a moderate rate: the first corrupt batches quarantine
  // device 1; sooner or later a probe batch draws no flips, comes back
  // clean, and re-admits it (score reset to zero). Batches are submitted
  // one at a time so each one's placement sees the latest state.
  sim::FaultConfig config;
  config.seed = 5;
  config.corrupt_h2d_rate = 0.25;
  const sim::FaultInjector corrupter(config);

  sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(2);
  obs::MetricsRegistry registry;
  SchedulerOptions options;
  options.worker_count = 1;
  options.metrics = &registry;
  options.device_injectors = {nullptr, &corrupter};
  options.integrity = FullVerification();
  options.breaker_threshold = 0;
  options.quarantine_threshold = 1;
  options.quarantine_probe_interval = 1;  // probe on every batch
  QueryScheduler scheduler(group, options);

  bool was_quarantined = false;
  bool readmitted = false;
  for (int i = 0; i < 80 && !readmitted; ++i) {
    core::RandomQuery q =
        MakeChainQuery(700 + static_cast<std::uint64_t>(i), 200);
    QueryRequest request = MakeRequest(q);
    request.options.chunk_count = 2;  // few commands: clean draws do happen
    request.options.fission_segments = 2;
    auto future = scheduler.Submit(std::move(request));
    (void)future.get();
    scheduler.Drain();
    if (scheduler.quarantined(1)) was_quarantined = true;
    if (was_quarantined && !scheduler.quarantined(1)) readmitted = true;
  }
  EXPECT_TRUE(was_quarantined);
  EXPECT_TRUE(readmitted);
  EXPECT_EQ(scheduler.corruption_score(1), 0u);  // reset on re-admission
  EXPECT_GE(registry
                .GetCounter("server.device.unquarantined", {{"device", "dev1"}})
                .value(),
            1u);
}

}  // namespace
}  // namespace kf::server
