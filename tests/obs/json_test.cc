// The tiny JSON layer under the metrics registry and the bench documents:
// construction, accessors, deterministic dumping, and parse round trips.
#include <gtest/gtest.h>

#include "common/error.h"
#include "obs/json.h"

namespace kf::obs {
namespace {

TEST(Json, TypedConstructionAndAccessors) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_EQ(Json(true).bool_value(), true);
  EXPECT_DOUBLE_EQ(Json(2.5).number(), 2.5);
  EXPECT_DOUBLE_EQ(Json(7).number(), 7.0);
  EXPECT_EQ(Json("hi").str(), "hi");
  EXPECT_EQ(Json(std::string("there")).str(), "there");
}

TEST(Json, AccessorTypeMismatchThrows) {
  EXPECT_THROW(Json(1.0).str(), Error);
  EXPECT_THROW(Json("x").number(), Error);
  EXPECT_THROW(Json().array(), Error);
}

TEST(Json, ObjectAutoVivifiesAndFinds) {
  Json doc;
  doc["a"]["b"] = Json(3);
  EXPECT_TRUE(doc.Has("a"));
  EXPECT_FALSE(doc.Has("z"));
  EXPECT_EQ(doc.at("a").at("b").number(), 3.0);
  EXPECT_EQ(doc.Find("z"), nullptr);
  EXPECT_THROW(doc.at("z"), Error);
}

TEST(Json, ArrayPushBackAndIndex) {
  Json arr = Json::MakeArray();
  arr.push_back(Json(1));
  arr.push_back(Json("two"));
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr.at(0).number(), 1.0);
  EXPECT_EQ(arr.at(1).str(), "two");
  EXPECT_THROW(arr.at(5), Error);
}

TEST(Json, DumpIsDeterministicWithSortedKeys) {
  Json doc = Json::MakeObject();
  doc["zebra"] = Json(1);
  doc["alpha"] = Json(2);
  EXPECT_EQ(doc.Dump(), "{\"alpha\":2,\"zebra\":1}");
}

TEST(Json, IntegralDoublesPrintWithoutExponent) {
  EXPECT_EQ(Json(61069056.0).Dump(), "61069056");
  EXPECT_EQ(Json(-3.0).Dump(), "-3");
  EXPECT_EQ(Json(0.0).Dump(), "0");
}

TEST(Json, NonIntegralDoublesRoundTripExactly) {
  for (double v : {0.1, 1.0 / 3.0, 2.5e-7, 1.23456789012345e10}) {
    const std::string text = Json(v).Dump();
    EXPECT_DOUBLE_EQ(Json::Parse(text).number(), v) << text;
  }
}

TEST(Json, StringEscaping) {
  const Json v("line\n\"quoted\"\ttab");
  const Json back = Json::Parse(v.Dump());
  EXPECT_EQ(back.str(), "line\n\"quoted\"\ttab");
}

TEST(Json, ParseHandlesWhitespaceLiteralsAndNesting) {
  const Json doc = Json::Parse(
      "  { \"a\" : [ 1 , 2.5 , true , false , null , \"s\" ] }  ");
  const Json& arr = doc.at("a");
  ASSERT_EQ(arr.size(), 6u);
  EXPECT_EQ(arr.at(0).number(), 1.0);
  EXPECT_EQ(arr.at(2).bool_value(), true);
  EXPECT_TRUE(arr.at(4).is_null());
  EXPECT_EQ(arr.at(5).str(), "s");
}

TEST(Json, ParseUnicodeEscape) {
  EXPECT_EQ(Json::Parse("\"\\u0041\"").str(), "A");
  EXPECT_EQ(Json::Parse("\"\\u00e9\"").str(), "\xc3\xa9");  // é as UTF-8
}

TEST(Json, ParseErrorsCarryOffsets) {
  EXPECT_THROW(Json::Parse(""), Error);
  EXPECT_THROW(Json::Parse("{"), Error);
  EXPECT_THROW(Json::Parse("[1,]"), Error);
  EXPECT_THROW(Json::Parse("{\"a\":1} trailing"), Error);
  EXPECT_THROW(Json::Parse("nul"), Error);
}

TEST(Json, EqualityIsDeep) {
  const Json a = Json::Parse("{\"x\":[1,{\"y\":2}]}");
  const Json b = Json::Parse("{\"x\":[1,{\"y\":2}]}");
  const Json c = Json::Parse("{\"x\":[1,{\"y\":3}]}");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Json, DumpParseRoundTripOnNestedDocument) {
  Json doc = Json::MakeObject();
  doc["schema"] = Json("kf-bench-v1");
  Json series = Json::MakeArray();
  Json entry = Json::MakeObject();
  entry["name"] = Json("fused");
  Json points = Json::MakeArray();
  Json point = Json::MakeArray();
  point.push_back(Json(4194304.0));
  point.push_back(Json(1.9823912));
  points.push_back(std::move(point));
  entry["points"] = std::move(points);
  series.push_back(std::move(entry));
  doc["series"] = std::move(series);

  EXPECT_EQ(Json::Parse(doc.Dump()), doc);
  EXPECT_EQ(Json::Parse(doc.Dump(2)), doc);  // pretty-printed form too
}

}  // namespace
}  // namespace kf::obs
