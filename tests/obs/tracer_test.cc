// Tracer semantics: span-tree construction, context re-basing, the bounded
// flight recorder, failure dumps, and the session-wide Chrome trace export.
#include "obs/tracer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace kf::obs {
namespace {

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// A scratch directory unique to this test binary run.
class TraceDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("kf_tracer_test_" +
            std::to_string(static_cast<std::uint64_t>(
                ::testing::UnitTest::GetInstance()->random_seed())) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST(Tracer, SpanIdsAreDenseAndParentsResolve) {
  Tracer tracer;
  TraceContext ctx;
  ctx.query_id = tracer.NextQueryId();
  const SpanId root = tracer.BeginSpan(ctx, 0, "query", "scheduler", 0.0);
  const SpanId child = tracer.BeginSpan(ctx, root, "execute", "executor", 0.1);
  const SpanId leaf =
      tracer.AddSpan(ctx, child, "upload", "stream 0", 0.1, 0.2, "input_output");
  tracer.EndSpan(ctx, child, 0.3);
  tracer.EndSpan(ctx, root, 0.3);

  const QueryTrace trace = tracer.Snapshot(ctx.query_id);
  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_EQ(root, 1u);
  EXPECT_EQ(child, 2u);
  EXPECT_EQ(leaf, 3u);
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    EXPECT_EQ(trace.spans[i].id, i + 1);
  }
  EXPECT_EQ(trace.spans[0].parent, 0u);
  EXPECT_EQ(trace.spans[1].parent, root);
  EXPECT_EQ(trace.spans[2].parent, child);
  EXPECT_EQ(trace.spans[2].category, "input_output");
  EXPECT_DOUBLE_EQ(trace.spans[1].sim_end, 0.3);
  EXPECT_EQ(trace.FindSpan(leaf)->name, "upload");
  EXPECT_EQ(trace.FindSpan(99), nullptr);
}

TEST(Tracer, ContextOffsetRebasesSimTimes) {
  Tracer tracer;
  TraceContext ctx;
  ctx.query_id = tracer.NextQueryId();
  ctx.sim_offset = 10.0;
  const SpanId span = tracer.BeginSpan(ctx, 0, "execute", "executor", 0.5);
  tracer.EndSpan(ctx, span, 1.5);
  tracer.Annotate(ctx, span, SpanAnnotationKind::kStall, "pcie stall", 0.75);

  const QueryTrace trace = tracer.Snapshot(ctx.query_id);
  ASSERT_EQ(trace.spans.size(), 1u);
  EXPECT_DOUBLE_EQ(trace.spans[0].sim_start, 10.5);
  EXPECT_DOUBLE_EQ(trace.spans[0].sim_end, 11.5);
  ASSERT_EQ(trace.spans[0].annotations.size(), 1u);
  EXPECT_DOUBLE_EQ(trace.spans[0].annotations[0].sim_time, 10.75);
}

TEST(Tracer, AnnotateIdZeroTargetsTheRoot) {
  Tracer tracer;
  TraceContext ctx;
  ctx.query_id = tracer.NextQueryId();
  tracer.BeginSpan(ctx, 0, "query", "scheduler", 0.0);
  tracer.BeginSpan(ctx, 1, "execute", "executor", 0.0);
  tracer.Annotate(ctx, 0, SpanAnnotationKind::kReExecution, "retry 1", 0.2);

  const QueryTrace trace = tracer.Snapshot(ctx.query_id);
  ASSERT_EQ(trace.spans.size(), 2u);
  ASSERT_EQ(trace.spans[0].annotations.size(), 1u);
  EXPECT_EQ(trace.spans[0].annotations[0].kind,
            SpanAnnotationKind::kReExecution);
  EXPECT_TRUE(trace.spans[1].annotations.empty());
}

TEST(Tracer, SetSpanIntervalRewritesTheWindow) {
  Tracer tracer;
  TraceContext ctx;
  ctx.query_id = tracer.NextQueryId();
  const SpanId span = tracer.BeginSpan(ctx, 0, "attempt", "worker", 1.0);
  // The batch's true position on the virtual clock is only known after the
  // timeline ran; the scheduler rewrites the interval then.
  tracer.SetSpanInterval(ctx, span, 4.0, 6.5);
  const QueryTrace trace = tracer.Snapshot(ctx.query_id);
  EXPECT_DOUBLE_EQ(trace.spans[0].sim_start, 4.0);
  EXPECT_DOUBLE_EQ(trace.spans[0].sim_end, 6.5);
}

TEST(Tracer, FlightRecorderIsBoundedOldestFirst) {
  TracerOptions options;
  options.flight_capacity = 4;
  Tracer tracer(options);
  for (int i = 0; i < 10; ++i) {
    TraceContext ctx;
    ctx.query_id = tracer.NextQueryId();
    const SpanId root = tracer.BeginSpan(ctx, 0, "query", "scheduler", 0.0);
    tracer.EndSpan(ctx, root, 1.0);
    tracer.FinishQuery(ctx, /*failed=*/false, "");
  }
  EXPECT_EQ(tracer.finished_count(), 10u);
  EXPECT_EQ(tracer.dropped_count(), 6u);
  const std::vector<QueryTrace> flight = tracer.FlightRecorder();
  ASSERT_EQ(flight.size(), 4u);
  EXPECT_EQ(flight.front().query_id, 7u);
  EXPECT_EQ(flight.back().query_id, 10u);
  // Evicted queries are gone; retained ones still snapshot.
  EXPECT_TRUE(tracer.Snapshot(1).empty());
  EXPECT_FALSE(tracer.Snapshot(10).empty());
  EXPECT_TRUE(tracer.Snapshot(10).finished);
}

TEST(Tracer, FinishQueryOnUnknownIdIsANoOp) {
  Tracer tracer;
  TraceContext ctx;
  ctx.query_id = 42;
  EXPECT_EQ(tracer.FinishQuery(ctx, true, "boom"), "");
  EXPECT_EQ(tracer.finished_count(), 0u);
}

TEST_F(TraceDirTest, FailedFinishWritesFlightDump) {
  TracerOptions options;
  options.trace_dir = dir_.string();
  Tracer tracer(options);
  TraceContext ctx;
  ctx.query_id = tracer.NextQueryId();
  const SpanId root = tracer.BeginSpan(ctx, 0, "query", "scheduler", 0.0);
  tracer.Annotate(ctx, root, SpanAnnotationKind::kFault, "kernel fault", 0.5);
  tracer.EndSpan(ctx, root, 1.0);

  const std::string path =
      tracer.FinishQuery(ctx, /*failed=*/true, "device_fault");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(std::filesystem::path(path).filename().string(),
            "trace_query_" + std::to_string(ctx.query_id) + ".json");
  ASSERT_TRUE(std::filesystem::exists(path));
  const std::string body = ReadFile(path);
  EXPECT_NE(body.find("\"failed\": true"), std::string::npos);
  EXPECT_NE(body.find("\"failure\": \"device_fault\""), std::string::npos);
  EXPECT_NE(body.find("fault"), std::string::npos);
}

TEST_F(TraceDirTest, CleanFinishWritesNoDump) {
  TracerOptions options;
  options.trace_dir = dir_.string();
  Tracer tracer(options);
  TraceContext ctx;
  ctx.query_id = tracer.NextQueryId();
  tracer.BeginSpan(ctx, 0, "query", "scheduler", 0.0);
  EXPECT_EQ(tracer.FinishQuery(ctx, /*failed=*/false, ""), "");
  EXPECT_FALSE(std::filesystem::exists(dir_));
}

TEST_F(TraceDirTest, DumpQueryWritesOnDemand) {
  TracerOptions options;
  options.trace_dir = dir_.string();
  Tracer tracer(options);
  TraceContext ctx;
  ctx.query_id = tracer.NextQueryId();
  tracer.BeginSpan(ctx, 0, "query", "scheduler", 0.0);
  const std::string path = tracer.DumpQuery(ctx.query_id);
  ASSERT_FALSE(path.empty());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_EQ(tracer.DumpQuery(999), "");
}

TEST(Tracer, DeterministicJsonExcludesWallTime) {
  auto run = [](Tracer& tracer) {
    TraceContext ctx;
    ctx.query_id = tracer.NextQueryId();
    const SpanId root = tracer.BeginSpan(ctx, 0, "query", "scheduler", 0.0);
    const SpanId child =
        tracer.BeginSpan(ctx, root, "execute", "executor", 0.25);
    tracer.Annotate(ctx, child, SpanAnnotationKind::kCacheMiss, "cold", 0.25);
    tracer.EndSpan(ctx, child, 0.75);
    tracer.EndSpan(ctx, root, 1.0);
    tracer.FinishQuery(ctx, false, "");
    return tracer.Snapshot(ctx.query_id);
  };
  Tracer a;
  Tracer b;
  // Wall-clock timings differ across the two runs (the sleep guarantees it),
  // but the deterministic serialization is byte-identical.
  const QueryTrace ta = run(a);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const QueryTrace tb = run(b);
  const std::string da = ta.ToJson(/*include_wall=*/false).Dump(2);
  EXPECT_EQ(da, tb.ToJson(/*include_wall=*/false).Dump(2));
  EXPECT_EQ(da.find("wall"), std::string::npos);
  EXPECT_NE(ta.ToJson(/*include_wall=*/true).Dump(2).find("wall_start"),
            std::string::npos);
}

TEST(Tracer, SessionTraceHasMetadataSlicesAndFlows) {
  Tracer tracer;
  TraceContext ctx;
  ctx.query_id = tracer.NextQueryId();
  const SpanId root = tracer.BeginSpan(ctx, 0, "query", "scheduler", 0.0);
  // First attempt fails...
  ctx.attempt = 0;
  const SpanId a0 = tracer.BeginSpan(ctx, root, "execute attempt", "worker", 0.1);
  tracer.Annotate(ctx, a0, SpanAnnotationKind::kFault, "copy fault", 0.2);
  tracer.EndSpan(ctx, a0, 0.2);
  // ...the retry runs on another device.
  ctx.attempt = 1;
  ctx.device = 1;
  const SpanId a1 = tracer.BeginSpan(ctx, root, "execute attempt", "worker", 0.3);
  tracer.EndSpan(ctx, a1, 0.9);
  ctx.attempt = 0;
  ctx.device = 0;
  tracer.EndSpan(ctx, root, 1.0);
  tracer.FinishQuery(ctx, false, "");

  const Json doc = ToSessionTraceJson(tracer);
  const Json& events = doc.at("traceEvents");
  ASSERT_GT(events.size(), 0u);

  int metadata = 0, slices = 0, flow_starts = 0, flow_finishes = 0;
  bool saw_device1 = false;
  bool saw_annotation = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& event = events.at(i);
    const std::string& ph = event.at("ph").str();
    if (ph == "M") {
      ++metadata;
    } else if (ph == "X") {
      ++slices;
      if (event.at("pid").number() == 1.0) saw_device1 = true;
      if (event.at("args").Find("annotations") != nullptr) {
        saw_annotation = true;
      }
      EXPECT_GE(event.at("dur").number(), 0.0);
    } else if (ph == "s") {
      ++flow_starts;
    } else if (ph == "f") {
      ++flow_finishes;
      EXPECT_EQ(event.at("bp").str(), "e");
    }
  }
  // process_name + thread_name for (device 0, scheduler), (device 0, worker),
  // (device 1, worker).
  EXPECT_EQ(metadata, 6);
  EXPECT_EQ(slices, 3);
  // Both attempt spans differ from the root (attempt or device change makes
  // a new flow leg only on attempt/shard change: attempt 1 differs).
  EXPECT_EQ(flow_starts, flow_finishes);
  EXPECT_GE(flow_starts, 1);
  EXPECT_TRUE(saw_device1);
  EXPECT_TRUE(saw_annotation);
  EXPECT_EQ(doc.at("displayTimeUnit").str(), "ms");
}

TEST(Tracer, SessionTraceOnlyExportsFinishedQueries) {
  Tracer tracer;
  TraceContext live;
  live.query_id = tracer.NextQueryId();
  tracer.BeginSpan(live, 0, "query", "scheduler", 0.0);

  TraceContext done;
  done.query_id = tracer.NextQueryId();
  const SpanId root = tracer.BeginSpan(done, 0, "query", "scheduler", 0.0);
  tracer.EndSpan(done, root, 1.0);
  tracer.FinishQuery(done, false, "");

  const Json doc = ToSessionTraceJson(tracer);
  const std::string dump = doc.Dump(-1);
  EXPECT_NE(dump.find("\"query\":" + std::to_string(done.query_id)),
            std::string::npos);
  EXPECT_EQ(dump.find("\"query\":" + std::to_string(live.query_id)),
            std::string::npos);
}

TEST(Tracer, ConcurrentQueriesNeverCrossContaminate) {
  Tracer tracer;
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 64;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        TraceContext ctx;
        ctx.query_id = tracer.NextQueryId();
        ctx.device = t % 3;
        const SpanId root =
            tracer.BeginSpan(ctx, 0, "query", "scheduler", q * 1.0);
        const SpanId child =
            tracer.BeginSpan(ctx, root, "execute", "executor", q * 1.0);
        tracer.Annotate(ctx, child, SpanAnnotationKind::kCacheHit, "warm",
                        q * 1.0);
        tracer.EndSpan(ctx, child, q * 1.0 + 0.5);
        tracer.EndSpan(ctx, root, q * 1.0 + 1.0);
        tracer.FinishQuery(ctx, false, "");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(tracer.finished_count(),
            static_cast<std::size_t>(kThreads * kQueriesPerThread));
  // Every retained tree is internally consistent: dense ids, two spans.
  for (const QueryTrace& trace : tracer.FlightRecorder()) {
    ASSERT_EQ(trace.spans.size(), 2u);
    EXPECT_EQ(trace.spans[0].id, 1u);
    EXPECT_EQ(trace.spans[1].id, 2u);
    EXPECT_EQ(trace.spans[1].parent, 1u);
    EXPECT_TRUE(trace.finished);
  }
  // The session export of a fully concurrent run still renders.
  const Json doc = ToSessionTraceJson(tracer);
  EXPECT_GT(doc.at("traceEvents").size(), 0u);
}

}  // namespace
}  // namespace kf::obs
