// Prometheus exposition: charset sanitization, escaping, summary rendering,
// and the scrape round trip back through ParsePrometheusText.
#include "obs/prometheus.h"

#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "obs/metrics_registry.h"

namespace kf::obs {
namespace {

TEST(SanitizeMetricName, MapsInvalidCharsAndLeadingDigits) {
  EXPECT_EQ(SanitizeMetricName("server.queue_depth"), "server_queue_depth");
  EXPECT_EQ(SanitizeMetricName("stream_pool.makespan_seconds"),
            "stream_pool_makespan_seconds");
  EXPECT_EQ(SanitizeMetricName("2fast"), "_2fast");
  EXPECT_EQ(SanitizeMetricName("ok:name_1"), "ok:name_1");
  EXPECT_EQ(SanitizeMetricName("a-b c"), "a_b_c");
}

TEST(ToPrometheusText, RendersCountersGaugesAndLabels) {
  MetricsRegistry registry;
  registry.GetCounter("server.completed").Increment(7);
  registry.GetCounter("stream_pool.commands", {{"kind", "kernel"}}).Increment(3);
  registry.GetGauge("server.queue_depth").Set(2.5);

  const std::string text = ToPrometheusText(registry);
  EXPECT_NE(text.find("# TYPE server_completed counter\n"), std::string::npos);
  EXPECT_NE(text.find("server_completed 7\n"), std::string::npos);
  EXPECT_NE(text.find("stream_pool_commands{kind=\"kernel\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE server_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("server_queue_depth 2.5\n"), std::string::npos);
}

TEST(ToPrometheusText, RendersHistogramsAsSummaries) {
  MetricsRegistry registry;
  DurationHistogram& h = registry.GetHistogram("batch.seconds");
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));

  const std::string text = ToPrometheusText(registry);
  EXPECT_NE(text.find("# TYPE batch_seconds summary\n"), std::string::npos);
  EXPECT_NE(text.find("batch_seconds{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("batch_seconds{quantile=\"0.9\"}"), std::string::npos);
  EXPECT_NE(text.find("batch_seconds{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("batch_seconds_sum 5050\n"), std::string::npos);
  EXPECT_NE(text.find("batch_seconds_count 100\n"), std::string::npos);
}

TEST(ToPrometheusText, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("events", {{"device", "gpu \"a\"\\0"}}).Increment();
  const std::string text = ToPrometheusText(registry);
  EXPECT_NE(text.find("events{device=\"gpu \\\"a\\\"\\\\0\"} 1\n"),
            std::string::npos);
}

TEST(ParsePrometheusText, RoundTripsEverySample) {
  MetricsRegistry registry;
  registry.GetCounter("server.completed").Increment(11);
  registry.GetCounter("server.device.batches", {{"device", "gpu0"}})
      .Increment(4);
  registry.GetGauge("inflight").Set(1.25);
  DurationHistogram& h =
      registry.GetHistogram("latency.seconds", {{"mode", "traced"}});
  for (int i = 1; i <= 10; ++i) h.Record(static_cast<double>(i));

  const auto samples = ParsePrometheusText(ToPrometheusText(registry));
  EXPECT_DOUBLE_EQ(samples.at("server_completed"), 11.0);
  EXPECT_DOUBLE_EQ(samples.at("server_device_batches{device=\"gpu0\"}"), 4.0);
  EXPECT_DOUBLE_EQ(samples.at("inflight"), 1.25);
  EXPECT_DOUBLE_EQ(samples.at("latency_seconds_count{mode=\"traced\"}"), 10.0);
  EXPECT_DOUBLE_EQ(samples.at("latency_seconds_sum{mode=\"traced\"}"), 55.0);
  EXPECT_DOUBLE_EQ(
      samples.at("latency_seconds{mode=\"traced\",quantile=\"0.5\"}"),
      registry.FindHistogram("latency.seconds{mode=traced}")->Percentile(50.0));
}

TEST(ParsePrometheusText, RejectsMalformedLines) {
  EXPECT_THROW(ParsePrometheusText("lonely_token\n"), kf::Error);
  // A trailing non-numeric suffix means the value token did not fully parse.
  EXPECT_THROW(ParsePrometheusText("metric 1.5x\n"), kf::Error);
}

}  // namespace
}  // namespace kf::obs
