// MetricsRegistry semantics: key flattening, thread-safe mutation through
// the ThreadPool, percentile math, and the JSON round trip the bench
// documents rely on.
#include <gtest/gtest.h>

#include <cstddef>

#include "common/thread_pool.h"
#include "obs/metrics_registry.h"

namespace kf::obs {
namespace {

TEST(FlattenKey, RendersLabelsInCallSiteOrder) {
  EXPECT_EQ(FlattenKey("runs", {}), "runs");
  EXPECT_EQ(FlattenKey("x", {{"strategy", "fusion"}, {"engine", "h2d"}}),
            "x{strategy=fusion,engine=h2d}");
}

TEST(MetricsRegistry, CounterLookupIsStableAndKeyed) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("launches", {{"strategy", "serial"}});
  Counter& b = registry.GetCounter("launches", {{"strategy", "fusion"}});
  a.Increment(3);
  b.Increment();
  EXPECT_EQ(&a, &registry.GetCounter("launches", {{"strategy", "serial"}}));
  EXPECT_EQ(registry.CounterValue("launches{strategy=serial}"), 3u);
  EXPECT_EQ(registry.CounterValue("launches{strategy=fusion}"), 1u);
  EXPECT_EQ(registry.CounterValue("absent", 42u), 42u);
}

TEST(MetricsRegistry, ConcurrentIncrementsLoseNothing) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("events");
  Gauge& gauge = registry.GetGauge("accumulated");
  ThreadPool pool(8);
  constexpr std::size_t kTotal = 100'000;
  pool.ParallelFor(kTotal, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      counter.Increment();
      gauge.Add(1.0);
      // Exercise the lookup-or-create path under contention too.
      registry.GetCounter("looked-up").Increment();
    }
  });
  EXPECT_EQ(counter.value(), kTotal);
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(kTotal));
  EXPECT_EQ(registry.CounterValue("looked-up"), kTotal);
}

TEST(MetricsRegistry, ConcurrentHistogramRecordsKeepEverySample) {
  MetricsRegistry registry;
  DurationHistogram& hist = registry.GetHistogram("latency");
  ThreadPool pool(8);
  constexpr std::size_t kTotal = 10'000;
  pool.ParallelFor(kTotal, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hist.Record(static_cast<double>(i));
    }
  });
  EXPECT_EQ(hist.count(), kTotal);
  EXPECT_DOUBLE_EQ(hist.min(), 0.0);
  EXPECT_DOUBLE_EQ(hist.max(), static_cast<double>(kTotal - 1));
  EXPECT_DOUBLE_EQ(hist.sum(), kTotal * (kTotal - 1) / 2.0);
}

TEST(DurationHistogram, PercentilesInterpolateLinearly) {
  DurationHistogram hist;
  EXPECT_DOUBLE_EQ(hist.Percentile(50), 0.0);  // empty
  for (double v : {10.0, 20.0, 30.0, 40.0}) hist.Record(v);
  EXPECT_DOUBLE_EQ(hist.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(50), 25.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(25), 17.5);
}

TEST(MetricsRegistry, ResetDropsEverything) {
  MetricsRegistry registry;
  registry.GetCounter("c").Increment();
  registry.GetGauge("g").Set(1.5);
  registry.GetHistogram("h").Record(0.25);
  registry.Reset();
  EXPECT_EQ(registry.CounterValue("c", 99u), 99u);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("g", -1.0), -1.0);
  EXPECT_EQ(registry.FindHistogram("h"), nullptr);
}

TEST(MetricsRegistry, JsonRoundTripPreservesAllMetricKinds) {
  MetricsRegistry registry;
  registry.GetCounter("launches", {{"strategy", "fusion"}}).Increment(17);
  registry.GetGauge("busy", {{"engine", "h2d"}}).Set(0.125);
  DurationHistogram& hist = registry.GetHistogram("makespan");
  for (double v : {0.5, 1.5, 2.5}) hist.Record(v);

  const Json dump = registry.ToJson();
  MetricsRegistry restored = MetricsRegistry::FromJson(dump);

  EXPECT_EQ(restored.CounterValue("launches{strategy=fusion}"), 17u);
  EXPECT_DOUBLE_EQ(restored.GaugeValue("busy{engine=h2d}"), 0.125);
  const DurationHistogram* restored_hist = restored.FindHistogram("makespan");
  ASSERT_NE(restored_hist, nullptr);
  EXPECT_EQ(restored_hist->count(), 3u);
  EXPECT_DOUBLE_EQ(restored_hist->sum(), 4.5);
  EXPECT_DOUBLE_EQ(restored_hist->Percentile(50), 1.5);

  // And the dump of the restored registry is byte-identical: the documents
  // committed as bench baselines must be stable across a round trip.
  EXPECT_EQ(restored.ToJson().Dump(), dump.Dump());
}

TEST(MetricsRegistry, HistogramJsonReportsSummaryStatistics) {
  MetricsRegistry registry;
  DurationHistogram& hist = registry.GetHistogram("t");
  for (int i = 1; i <= 100; ++i) hist.Record(static_cast<double>(i));
  const Json dump = registry.ToJson();
  const Json& entry = dump.at("histograms").at("t");
  EXPECT_EQ(entry.at("count").number(), 100.0);
  EXPECT_DOUBLE_EQ(entry.at("min").number(), 1.0);
  EXPECT_DOUBLE_EQ(entry.at("max").number(), 100.0);
  EXPECT_DOUBLE_EQ(entry.at("p50").number(), 50.5);
  EXPECT_NEAR(entry.at("p99").number(), 99.01, 1e-9);
  EXPECT_EQ(entry.at("samples").size(), 100u);
}

TEST(DurationHistogram, ExactUpToReservoirCap) {
  DurationHistogram h;
  for (std::size_t i = 0; i < DurationHistogram::kReservoirCap; ++i) {
    h.Record(static_cast<double>(i));
  }
  EXPECT_EQ(h.count(), DurationHistogram::kReservoirCap);
  EXPECT_EQ(h.Samples().size(), DurationHistogram::kReservoirCap);
  // Below the cap nothing is sampled away: percentiles are exact.
  const double truth =
      static_cast<double>(DurationHistogram::kReservoirCap - 1) / 2.0;
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), truth);
}

TEST(DurationHistogram, ReservoirBoundsMemoryOnSoakStreams) {
  DurationHistogram h;
  const std::size_t total = DurationHistogram::kReservoirCap * 4;
  for (std::size_t i = 0; i < total; ++i) {
    h.Record(static_cast<double>(i));
  }
  // Exact running statistics survive eviction...
  EXPECT_EQ(h.count(), total);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(total - 1));
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(total) *
                                static_cast<double>(total - 1) / 2.0);
  // ...while the retained sample set stays bounded at the cap.
  EXPECT_EQ(h.Samples().size(), DurationHistogram::kReservoirCap);
  // Percentiles become estimates from a uniform reservoir of the stream: on
  // a linear ramp they stay within a few percent of the exact quantiles.
  const double hi = static_cast<double>(total - 1);
  EXPECT_NEAR(h.Percentile(50.0), 0.5 * hi, 0.05 * hi);
  EXPECT_NEAR(h.Percentile(90.0), 0.9 * hi, 0.05 * hi);
  EXPECT_NEAR(h.Percentile(99.0), 0.99 * hi, 0.05 * hi);
}

TEST(DurationHistogram, ReservoirIsDeterministic) {
  // The eviction stream is a fixed-seed SplitMix64: two histograms fed the
  // same stream retain byte-identical reservoirs (golden tests and CI
  // baselines depend on this).
  DurationHistogram a;
  DurationHistogram b;
  const std::size_t total = DurationHistogram::kReservoirCap * 3;
  for (std::size_t i = 0; i < total; ++i) {
    const double v = static_cast<double>((i * 2654435761u) % 100003u);
    a.Record(v);
    b.Record(v);
  }
  EXPECT_EQ(a.Samples(), b.Samples());
  EXPECT_DOUBLE_EQ(a.Percentile(99.0), b.Percentile(99.0));
}

}  // namespace
}  // namespace kf::obs
