// bench_compare's threshold logic: direction semantics, tolerance overrides,
// missing metrics, and the pass/fail exit condition.
#include <gtest/gtest.h>

#include "common/error.h"
#include "obs/json.h"
#include "obs/regression.h"

namespace kf::obs {
namespace {

Json BenchDoc(double summary_value, const char* direction = "higher",
              double point_y = 2.0, bool with_series = true) {
  Json doc = Json::MakeObject();
  doc["schema"] = Json("kf-bench-v1");
  doc["benchmark"] = Json("unit");
  Json summaries = Json::MakeArray();
  Json s = Json::MakeObject();
  s["name"] = Json("gain");
  s["value"] = Json(summary_value);
  s["direction"] = Json(direction);
  summaries.push_back(std::move(s));
  doc["summaries"] = std::move(summaries);
  Json series = Json::MakeArray();
  if (with_series) {
    Json entry = Json::MakeObject();
    entry["name"] = Json("throughput");
    Json points = Json::MakeArray();
    Json point = Json::MakeArray();
    point.push_back(Json(1000.0));
    point.push_back(Json(point_y));
    points.push_back(std::move(point));
    entry["points"] = std::move(points);
    series.push_back(std::move(entry));
  }
  doc["series"] = std::move(series);
  return doc;
}

const MetricDelta* FindDelta(const CompareResult& result, const std::string& name) {
  for (const MetricDelta& d : result.deltas) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

TEST(GatedValues, ExtractsSummariesAndSeriesPoints) {
  const auto gated = GatedValues(BenchDoc(1.5));
  ASSERT_EQ(gated.size(), 2u);
  EXPECT_DOUBLE_EQ(gated.at("summary/gain").first, 1.5);
  EXPECT_EQ(gated.at("summary/gain").second, Direction::kHigherIsBetter);
  EXPECT_DOUBLE_EQ(gated.at("series/throughput[1000]").first, 2.0);
  EXPECT_EQ(gated.at("series/throughput[1000]").second, Direction::kTwoSided);
}

TEST(GatedValues, RejectsWrongSchema) {
  Json doc = BenchDoc(1.0);
  doc["schema"] = Json("something-else");
  EXPECT_THROW(GatedValues(doc), Error);
}

TEST(CompareBenchRuns, IdenticalRunsPass) {
  const Json doc = BenchDoc(1.5);
  const CompareResult result = CompareBenchRuns(doc, doc, ToleranceSpec{});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.regression_count, 0u);
  EXPECT_EQ(result.deltas.size(), 2u);
}

TEST(CompareBenchRuns, WithinToleranceDriftPasses) {
  const CompareResult result = CompareBenchRuns(
      BenchDoc(100.0), BenchDoc(96.0, "higher", 2.04), ToleranceSpec{});
  EXPECT_TRUE(result.ok());  // -4% on higher-is-better, +2% two-sided: both ok
}

TEST(CompareBenchRuns, HigherIsBetterRegressesOnlyDownward) {
  // -10% drop on a higher-is-better metric with 5% tolerance: regression.
  const CompareResult down =
      CompareBenchRuns(BenchDoc(100.0), BenchDoc(90.0), ToleranceSpec{});
  EXPECT_FALSE(down.ok());
  const MetricDelta* delta = FindDelta(down, "summary/gain");
  ASSERT_NE(delta, nullptr);
  EXPECT_TRUE(delta->regressed);
  EXPECT_NEAR(delta->RelativeChange(), -0.10, 1e-12);

  // +10% improvement never regresses.
  const CompareResult up =
      CompareBenchRuns(BenchDoc(100.0), BenchDoc(110.0), ToleranceSpec{});
  EXPECT_TRUE(FindDelta(up, "summary/gain") != nullptr);
  EXPECT_FALSE(FindDelta(up, "summary/gain")->regressed);
}

TEST(CompareBenchRuns, LowerIsBetterRegressesOnlyUpward) {
  const CompareResult up = CompareBenchRuns(BenchDoc(100.0, "lower"),
                                            BenchDoc(110.0, "lower"),
                                            ToleranceSpec{});
  EXPECT_TRUE(FindDelta(up, "summary/gain")->regressed);
  const CompareResult down = CompareBenchRuns(BenchDoc(100.0, "lower"),
                                              BenchDoc(90.0, "lower"),
                                              ToleranceSpec{});
  EXPECT_FALSE(FindDelta(down, "summary/gain")->regressed);
}

TEST(CompareBenchRuns, TwoSidedRegressesBothWays) {
  for (double run : {90.0, 110.0}) {
    const CompareResult result = CompareBenchRuns(
        BenchDoc(100.0, "none"), BenchDoc(run, "none"), ToleranceSpec{});
    EXPECT_TRUE(FindDelta(result, "summary/gain")->regressed) << run;
  }
}

TEST(CompareBenchRuns, SeriesPointsAreGatedTwoSided) {
  // Series y moves +10% while the summary is unchanged.
  const CompareResult result = CompareBenchRuns(
      BenchDoc(100.0, "higher", 2.0), BenchDoc(100.0, "higher", 2.2),
      ToleranceSpec{});
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(FindDelta(result, "series/throughput[1000]")->regressed);
}

TEST(CompareBenchRuns, PerMetricToleranceOverridesDefault) {
  ToleranceSpec tolerances;
  tolerances.default_tolerance = 0.05;
  tolerances.per_metric["summary/gain"] = 0.25;
  const CompareResult result = CompareBenchRuns(
      BenchDoc(100.0), BenchDoc(80.0, "higher", 2.0), tolerances);
  EXPECT_TRUE(result.ok());  // -20% allowed by the 25% override
  EXPECT_DOUBLE_EQ(FindDelta(result, "summary/gain")->tolerance, 0.25);
}

TEST(CompareBenchRuns, MissingMetricIsARegression) {
  const CompareResult result =
      CompareBenchRuns(BenchDoc(100.0), BenchDoc(100.0, "higher", 2.0, false),
                       ToleranceSpec{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.missing_count, 1u);
  const MetricDelta* delta = FindDelta(result, "series/throughput[1000]");
  ASSERT_NE(delta, nullptr);
  EXPECT_TRUE(delta->missing);
  EXPECT_TRUE(delta->regressed);
}

TEST(CompareBenchRuns, NewMetricsInRunAreNotedButNotGated) {
  const CompareResult result =
      CompareBenchRuns(BenchDoc(100.0, "higher", 2.0, false), BenchDoc(100.0),
                       ToleranceSpec{});
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.new_metrics.size(), 1u);
  EXPECT_EQ(result.new_metrics[0], "series/throughput[1000]");
}

TEST(CompareBenchRuns, ZeroBaselineGatesOnExactMatch) {
  // With baseline 0 the tolerance band collapses: equal passes, change fails.
  const CompareResult same = CompareBenchRuns(
      BenchDoc(0.0, "none"), BenchDoc(0.0, "none"), ToleranceSpec{});
  EXPECT_FALSE(FindDelta(same, "summary/gain")->regressed);
  const CompareResult moved = CompareBenchRuns(
      BenchDoc(0.0, "none"), BenchDoc(0.5, "none"), ToleranceSpec{});
  EXPECT_TRUE(FindDelta(moved, "summary/gain")->regressed);
}

TEST(FormatReport, ShowsRegressionsAndTally) {
  const CompareResult result =
      CompareBenchRuns(BenchDoc(100.0), BenchDoc(90.0), ToleranceSpec{});
  const std::string report = FormatReport(result, /*verbose=*/false);
  EXPECT_NE(report.find("REGRESSION"), std::string::npos);
  EXPECT_NE(report.find("FAIL"), std::string::npos);
  const std::string pass_report = FormatReport(
      CompareBenchRuns(BenchDoc(100.0), BenchDoc(100.0), ToleranceSpec{}),
      /*verbose=*/false);
  EXPECT_NE(pass_report.find("PASS"), std::string::npos);
}

TEST(Direction, ParseAndToStringRoundTrip) {
  EXPECT_EQ(ParseDirection("higher"), Direction::kHigherIsBetter);
  EXPECT_EQ(ParseDirection("lower"), Direction::kLowerIsBetter);
  EXPECT_EQ(ParseDirection("none"), Direction::kTwoSided);
  EXPECT_THROW(ParseDirection("sideways"), Error);
  EXPECT_EQ(ParseDirection(ToString(Direction::kHigherIsBetter)),
            Direction::kHigherIsBetter);
}

}  // namespace
}  // namespace kf::obs
