// Allocation-regression harness (hostperf): warm staged-kernel runs must be
// heap-allocation-free, and repeated executor runs must reach an allocation
// steady state. Counting comes from the global operator new/delete overrides
// in alloc_hooks.cc, which is why these tests live in their own binary.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/buffer_arena.h"
#include "core/query_executor.h"
#include "core/select_chain.h"
#include "relational/operators.h"
#include "relational/predicate.h"
#include "relational/staged_kernel.h"
#include "tests/hostperf/alloc_hooks.h"

namespace kf {
namespace {

using relational::StagedBuffers;
using relational::StagedSelectChainFusedInto;
using relational::StagedSelectChainUnfusedInto;
using relational::StagedSelectInto;
using relational::TypedPredicate;
using testing::AllocationCountingAvailable;
using testing::AllocationScope;

std::vector<std::int32_t> MakeInput(std::size_t n) {
  std::vector<std::int32_t> input(n);
  std::uint32_t state = 0x9E3779B9u;
  for (auto& v : input) {
    state = state * 1664525u + 1013904223u;
    v = static_cast<std::int32_t>(state & 0x3FFFFFFFu);
  }
  return input;
}

class AllocationRegressionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!AllocationCountingAvailable()) {
      GTEST_SKIP() << "allocation hooks disabled under sanitizers";
    }
  }
};

TEST_F(AllocationRegressionTest, WarmStagedSelectIsAllocationFree) {
  const auto input = MakeInput(100000);
  const TypedPredicate pred = TypedPredicate::Lt(1 << 29);
  BufferArena arena;
  auto ws = arena.Acquire<StagedBuffers>();
  // Cold run sizes every workspace vector.
  const auto cold = StagedSelectInto(input, pred, 64, *ws);
  ASSERT_FALSE(cold.empty());

  AllocationScope scope;
  const auto warm = StagedSelectInto(input, pred, 64, *ws);
  EXPECT_EQ(scope.delta(), 0u) << "warm StagedSelectInto touched the heap";
  EXPECT_EQ(warm.size(), cold.size());
}

TEST_F(AllocationRegressionTest, WarmFusedChainIsAllocationFree) {
  const auto input = MakeInput(100000);
  const std::vector<TypedPredicate> preds = {TypedPredicate::Lt(1 << 29),
                                             TypedPredicate::Gt(1 << 20),
                                             TypedPredicate::MaskEq(1, 0)};
  BufferArena arena;
  auto ws = arena.Acquire<StagedBuffers>();
  const auto cold = StagedSelectChainFusedInto(input, preds, 64, *ws);
  ASSERT_FALSE(cold.empty());

  AllocationScope scope;
  const auto warm = StagedSelectChainFusedInto(input, preds, 64, *ws);
  EXPECT_EQ(scope.delta(), 0u) << "warm fused chain touched the heap";
  EXPECT_EQ(warm.size(), cold.size());
}

TEST_F(AllocationRegressionTest, WarmUnfusedChainIsAllocationFree) {
  const auto input = MakeInput(100000);
  const std::vector<TypedPredicate> preds = {TypedPredicate::Lt(1 << 29),
                                             TypedPredicate::Ge(0)};
  BufferArena arena;
  auto ws = arena.Acquire<StagedBuffers>();
  const auto cold = StagedSelectChainUnfusedInto(input, preds, 64, *ws);
  ASSERT_FALSE(cold.empty());

  AllocationScope scope;
  const auto warm = StagedSelectChainUnfusedInto(input, preds, 64, *ws);
  EXPECT_EQ(scope.delta(), 0u) << "warm unfused chain touched the heap";
  EXPECT_EQ(warm.size(), cold.size());
}

TEST_F(AllocationRegressionTest, WarmFallbackPredicateIsAllocationFree) {
  // The std::function fallback path rides the same pooled workspace; the
  // predicate object itself lives outside the hot loop.
  const auto input = MakeInput(50000);
  const relational::Int32Predicate odd = [](std::int32_t v) {
    return (v & 1) != 0;
  };
  const TypedPredicate pred = TypedPredicate::Fallback(odd);
  BufferArena arena;
  auto ws = arena.Acquire<StagedBuffers>();
  const auto cold = StagedSelectInto(input, pred, 32, *ws);
  ASSERT_FALSE(cold.empty());

  AllocationScope scope;
  const auto warm = StagedSelectInto(input, pred, 32, *ws);
  EXPECT_EQ(scope.delta(), 0u) << "warm fallback select touched the heap";
  EXPECT_EQ(warm.size(), cold.size());
}

TEST_F(AllocationRegressionTest, ExecutorReachesAllocationSteadyState) {
  // Whole-query runs allocate (fresh result tables, reports), but with a
  // caller-provided arena the per-run allocation count must stabilize: run N
  // and run N+1 are identical workloads, so any growth would be a leak of
  // warm-path pooling.
  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  core::SelectChain chain =
      core::MakeSelectChain(50000, std::vector<double>{0.5, 0.5, 0.5});
  const relational::Table data = core::MakeUniformInt32Table(50000, 11);
  const std::map<core::NodeId, relational::Table> sources{
      {chain.source, data}};
  BufferArena arena;
  obs::MetricsRegistry registry;  // isolate from other tests' metric traffic
  core::ExecutorOptions options;
  options.strategy = core::Strategy::kFused;
  options.chunk_count = 16;
  options.arena = &arena;
  options.metrics = &registry;

  auto measure = [&] {
    AllocationScope scope;
    (void)executor.Execute(chain.graph, sources, options);
    return scope.delta();
  };

  // Warm arena pools, metric entries, and cost tables; then the per-run
  // allocation count must settle. Metric histograms append samples with
  // amortized doubling, so consecutive runs only match between capacity
  // doublings — a pooling leak instead grows the delta monotonically and
  // never produces two equal consecutive runs.
  (void)measure();
  (void)measure();
  std::uint64_t prev = measure();
  bool steady = false;
  for (int run = 0; run < 20 && !steady; ++run) {
    const std::uint64_t delta = measure();
    steady = (delta == prev);
    prev = delta;
  }
  EXPECT_TRUE(steady) << "executor allocations still drifting after warmup";
}

}  // namespace
}  // namespace kf
