#include "tests/hostperf/alloc_hooks.h"

#include <atomic>
#include <cstdlib>
#include <new>

// Detect sanitizers across GCC (__SANITIZE_*__) and Clang (__has_feature).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define KF_ALLOC_HOOKS_DISABLED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define KF_ALLOC_HOOKS_DISABLED 1
#endif
#endif

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

namespace kf::testing {

bool AllocationCountingAvailable() {
#if defined(KF_ALLOC_HOOKS_DISABLED)
  return false;
#else
  return true;
#endif
}

std::uint64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace kf::testing

#if !defined(KF_ALLOC_HOOKS_DISABLED)

namespace {

void* CountedAlloc(std::size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void* CountedAllocAligned(std::size_t size, std::size_t alignment) {
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded);
  if (p == nullptr) throw std::bad_alloc();
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p != nullptr) g_allocations.fetch_add(1, std::memory_order_relaxed);
  return p;
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  return CountedAllocAligned(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return CountedAllocAligned(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // !KF_ALLOC_HOOKS_DISABLED
