// Deterministic heap-allocation counting for the hostperf regression tests.
//
// alloc_hooks.cc replaces the global operator new/delete family with
// counting wrappers. The counters are plain relaxed atomics so the hooks are
// safe from any thread and cost a couple of nanoseconds — but they are still
// process-global, which is why this harness links into its own test binary
// (hostperf_test) and nothing else.
//
// Under ASan/TSan the sanitizer runtime interposes its own allocator and our
// overrides either never fire or double-count interceptor traffic, so the
// hooks compile away and AllocationCountingAvailable() reports false; tests
// GTEST_SKIP in that configuration.
#ifndef KF_TESTS_HOSTPERF_ALLOC_HOOKS_H_
#define KF_TESTS_HOSTPERF_ALLOC_HOOKS_H_

#include <cstddef>
#include <cstdint>

namespace kf::testing {

// True when the counting operator new/delete overrides are active in this
// binary (i.e. not compiled under a sanitizer).
bool AllocationCountingAvailable();

// Total successful operator-new calls (all variants) since process start.
std::uint64_t AllocationCount();

// Scoped delta reader: `AllocationScope scope; ...; scope.delta()`.
class AllocationScope {
 public:
  AllocationScope() : start_(AllocationCount()) {}
  std::uint64_t delta() const { return AllocationCount() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace kf::testing

#endif  // KF_TESTS_HOSTPERF_ALLOC_HOOKS_H_
