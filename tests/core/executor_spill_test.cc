// Capacity-pressure behaviour of the executor: when retained intermediates
// exceed device memory, the executor must spill them to host memory (the
// forced round trip of paper Fig 7(a)) instead of failing — and reload them
// for their consumers.
#include <gtest/gtest.h>

#include "core/query_executor.h"
#include "core/select_chain.h"
#include "relational/operators.h"

namespace kf::core {
namespace {

using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;

// A graph whose intermediates all stay retained: three branches off one
// source, consumed again at the end, so the peak retained set (source +
// current sort output + three branch results) far exceeds any single
// operator's own working set.
//   src -> sort_i -> sel_i  (i = 1..3),  union(sel1, union(sel2, sel3))
OpGraph RetentionHeavyGraph(std::uint64_t rows) {
  OpGraph g;
  const NodeId src = g.AddSource("in", Schema{{"v", DataType::kInt32}}, rows);
  std::vector<NodeId> branches;
  for (int i = 1; i <= 3; ++i) {
    const NodeId sorted = g.AddOperator(
        OperatorDesc::Sort({0}, "sort" + std::to_string(i)), src);
    branches.push_back(g.AddOperator(
        OperatorDesc::Select(Expr::Ge(Expr::FieldRef(0), Expr::Lit(i - 1)),
                             "sel" + std::to_string(i)),
        sorted));
  }
  const NodeId inner =
      g.AddOperator(OperatorDesc::Union("union_inner"), branches[1], branches[2]);
  g.AddOperator(OperatorDesc::Union("union_outer"), branches[0], inner);
  return g;
}

TEST(ExecutorSpill, TinyDeviceForcesRoundTripsButStaysCorrect) {
  // 64 MiB device; 5M int32 rows = 20 MB per materialized relation, and the
  // graph retains several at once (the union's inputs + output still fit,
  // but the full retained set does not).
  sim::DeviceSimulator tiny(sim::DeviceSpec::TinyTestDevice());
  QueryExecutor executor(tiny);
  const std::uint64_t rows = 5'000'000;
  const OpGraph graph = RetentionHeavyGraph(rows);

  ExecutorOptions options;
  options.strategy = Strategy::kSerial;
  std::map<NodeId, std::uint64_t> counts;
  for (NodeId id = 0; id < graph.node_count(); ++id) counts[id] = rows;
  const ExecutionReport report = executor.EstimateOnly(graph, counts, options);

  // The working set exceeded capacity, so intermediates round-tripped.
  EXPECT_GT(report.round_trip_time, 0.0);
  EXPECT_LE(report.peak_device_bytes, tiny.spec().mem_capacity_bytes);
}

TEST(ExecutorSpill, BigDeviceNeedsNoRoundTrips) {
  sim::DeviceSimulator big;  // 6 GB
  QueryExecutor executor(big);
  const std::uint64_t rows = 5'000'000;
  const OpGraph graph = RetentionHeavyGraph(rows);
  ExecutorOptions options;
  options.strategy = Strategy::kSerial;
  std::map<NodeId, std::uint64_t> counts;
  for (NodeId id = 0; id < graph.node_count(); ++id) counts[id] = rows;
  const ExecutionReport report = executor.EstimateOnly(graph, counts, options);
  EXPECT_DOUBLE_EQ(report.round_trip_time, 0.0);
}

TEST(ExecutorSpill, SpillingIsFunctionallyInvisible) {
  // Same query on the tiny and the big device: identical results.
  sim::DeviceSimulator tiny(sim::DeviceSpec::TinyTestDevice());
  sim::DeviceSimulator big;
  const std::uint64_t rows = 20000;
  const OpGraph graph = RetentionHeavyGraph(rows);
  const relational::Table data = MakeUniformInt32Table(rows);
  const std::map<NodeId, relational::Table> sources{{graph.Sources()[0], data}};
  ExecutorOptions options;
  options.strategy = Strategy::kSerial;
  options.chunk_count = 4;
  const auto tiny_report = QueryExecutor(tiny).Execute(graph, sources, options);
  const auto big_report = QueryExecutor(big).Execute(graph, sources, options);
  ASSERT_EQ(tiny_report.sink_results.size(), 1u);
  EXPECT_TRUE(relational::SameRowMultiset(
      tiny_report.sink_results.begin()->second,
      big_report.sink_results.begin()->second));
}

TEST(ExecutorSpill, ImpossibleWorkingSetThrows) {
  // A single relation larger than the tiny device with pinned inputs on
  // both sides of a sort leaves nothing to spill mid-cluster.
  sim::DeviceSimulator tiny(sim::DeviceSpec::TinyTestDevice());
  QueryExecutor executor(tiny);
  OpGraph g;
  const NodeId src = g.AddSource("in", Schema{{"v", DataType::kInt32}}, 0);
  g.AddOperator(OperatorDesc::Sort({0}), src);
  std::map<NodeId, std::uint64_t> counts;
  // 40M rows = 160 MB >> 64 MiB: sort needs input + output resident at once.
  for (NodeId id = 0; id < g.node_count(); ++id) counts[id] = 40'000'000;
  ExecutorOptions options;
  options.strategy = Strategy::kSerial;
  EXPECT_THROW(executor.EstimateOnly(g, counts, options), kf::Error);
}

}  // namespace
}  // namespace kf::core
