// Capacity-pressure behaviour of the executor: when retained intermediates
// exceed device memory, the executor must spill them to host memory (the
// forced round trip of paper Fig 7(a)) instead of failing — and reload them
// for their consumers.
#include <gtest/gtest.h>

#include "core/query_executor.h"
#include "core/select_chain.h"
#include "relational/operators.h"

namespace kf::core {
namespace {

using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;

// A graph whose intermediates all stay retained: three branches off one
// source, consumed again at the end, so the peak retained set (source +
// current sort output + three branch results) far exceeds any single
// operator's own working set.
//   src -> sort_i -> sel_i  (i = 1..3),  union(sel1, union(sel2, sel3))
OpGraph RetentionHeavyGraph(std::uint64_t rows) {
  OpGraph g;
  const NodeId src = g.AddSource("in", Schema{{"v", DataType::kInt32}}, rows);
  std::vector<NodeId> branches;
  for (int i = 1; i <= 3; ++i) {
    const NodeId sorted = g.AddOperator(
        OperatorDesc::Sort({0}, "sort" + std::to_string(i)), src);
    branches.push_back(g.AddOperator(
        OperatorDesc::Select(Expr::Ge(Expr::FieldRef(0), Expr::Lit(i - 1)),
                             "sel" + std::to_string(i)),
        sorted));
  }
  const NodeId inner =
      g.AddOperator(OperatorDesc::Union("union_inner"), branches[1], branches[2]);
  g.AddOperator(OperatorDesc::Union("union_outer"), branches[0], inner);
  return g;
}

TEST(ExecutorSpill, TinyDeviceForcesRoundTripsButStaysCorrect) {
  // 64 MiB device; 5M int32 rows = 20 MB per materialized relation, and the
  // graph retains several at once (the union's inputs + output still fit,
  // but the full retained set does not).
  sim::DeviceSimulator tiny(sim::DeviceSpec::TinyTestDevice());
  QueryExecutor executor(tiny);
  const std::uint64_t rows = 5'000'000;
  const OpGraph graph = RetentionHeavyGraph(rows);

  ExecutorOptions options;
  options.strategy = Strategy::kSerial;
  std::map<NodeId, std::uint64_t> counts;
  for (NodeId id = 0; id < graph.node_count(); ++id) counts[id] = rows;
  const ExecutionReport report = executor.EstimateOnly(graph, counts, options);

  // The working set exceeded capacity, so intermediates round-tripped.
  EXPECT_GT(report.round_trip_time, 0.0);
  EXPECT_LE(report.peak_device_bytes, tiny.spec().mem_capacity_bytes);
}

TEST(ExecutorSpill, BigDeviceNeedsNoRoundTrips) {
  sim::DeviceSimulator big;  // 6 GB
  QueryExecutor executor(big);
  const std::uint64_t rows = 5'000'000;
  const OpGraph graph = RetentionHeavyGraph(rows);
  ExecutorOptions options;
  options.strategy = Strategy::kSerial;
  std::map<NodeId, std::uint64_t> counts;
  for (NodeId id = 0; id < graph.node_count(); ++id) counts[id] = rows;
  const ExecutionReport report = executor.EstimateOnly(graph, counts, options);
  EXPECT_DOUBLE_EQ(report.round_trip_time, 0.0);
}

TEST(ExecutorSpill, SpillingIsFunctionallyInvisible) {
  // Same query on the tiny and the big device: identical results.
  sim::DeviceSimulator tiny(sim::DeviceSpec::TinyTestDevice());
  sim::DeviceSimulator big;
  const std::uint64_t rows = 20000;
  const OpGraph graph = RetentionHeavyGraph(rows);
  const relational::Table data = MakeUniformInt32Table(rows);
  const std::map<NodeId, relational::Table> sources{{graph.Sources()[0], data}};
  ExecutorOptions options;
  options.strategy = Strategy::kSerial;
  options.chunk_count = 4;
  const auto tiny_report = QueryExecutor(tiny).Execute(graph, sources, options);
  const auto big_report = QueryExecutor(big).Execute(graph, sources, options);
  ASSERT_EQ(tiny_report.sink_results.size(), 1u);
  EXPECT_TRUE(relational::SameRowMultiset(
      tiny_report.sink_results.begin()->second,
      big_report.sink_results.begin()->second));
}

// --- Fission segmentation edge cases -----------------------------------
// Degenerate inputs for the segmented pipeline: more segments than rows,
// empty and single-element inputs, and a working set landing exactly on the
// device-memory segmentation boundary.

OpGraph SmallChainGraph() {
  OpGraph g;
  const NodeId src = g.AddSource("in", Schema{{"v", DataType::kInt32}}, 0);
  const NodeId sel = g.AddOperator(
      OperatorDesc::Select(Expr::Ge(Expr::FieldRef(0), Expr::Lit(0)), "keep"),
      src);
  const NodeId sorted = g.AddOperator(OperatorDesc::Sort({0}, "sort"), sel);
  g.AddOperator(
      OperatorDesc::Select(
          Expr::Lt(Expr::FieldRef(0), Expr::Lit(std::int64_t{1} << 31)), "cap"),
      sorted);
  return g;
}

TEST(FissionEdgeCases, MoreSegmentsThanRows) {
  // 5 rows through a 12-segment fission pipeline: most segments are empty,
  // results must still match the serial strategy exactly.
  sim::DeviceSimulator device;
  QueryExecutor executor(device);
  const OpGraph graph = SmallChainGraph();
  const std::map<NodeId, relational::Table> sources{
      {graph.Sources()[0], MakeUniformInt32Table(5)}};

  ExecutorOptions serial;
  serial.strategy = Strategy::kSerial;
  const auto expected = executor.Execute(graph, sources, serial);

  for (Strategy strategy : {Strategy::kFission, Strategy::kFusedFission}) {
    ExecutorOptions options;
    options.strategy = strategy;
    options.fission_segments = 12;
    const auto report = executor.Execute(graph, sources, options);
    ASSERT_EQ(report.sink_results.size(), 1u) << ToString(strategy);
    EXPECT_TRUE(relational::SameRowMultiset(
        report.sink_results.begin()->second,
        expected.sink_results.begin()->second))
        << ToString(strategy);
    EXPECT_GT(report.makespan, 0.0) << ToString(strategy);
  }
}

TEST(FissionEdgeCases, EmptyInput) {
  sim::DeviceSimulator device;
  QueryExecutor executor(device);
  const OpGraph graph = SmallChainGraph();
  const std::map<NodeId, relational::Table> sources{
      {graph.Sources()[0], MakeUniformInt32Table(0)}};

  for (Strategy strategy : {Strategy::kSerial, Strategy::kFused,
                            Strategy::kFission, Strategy::kFusedFission}) {
    ExecutorOptions options;
    options.strategy = strategy;
    const auto report = executor.Execute(graph, sources, options);
    ASSERT_EQ(report.sink_results.size(), 1u) << ToString(strategy);
    EXPECT_EQ(report.sink_results.begin()->second.row_count(), 0u)
        << ToString(strategy);
  }
}

TEST(FissionEdgeCases, SingleElementInput) {
  sim::DeviceSimulator device;
  QueryExecutor executor(device);
  const OpGraph graph = SmallChainGraph();
  const relational::Table one = MakeUniformInt32Table(1);
  const std::map<NodeId, relational::Table> sources{{graph.Sources()[0], one}};

  for (Strategy strategy : {Strategy::kSerial, Strategy::kFused,
                            Strategy::kFission, Strategy::kFusedFission}) {
    ExecutorOptions options;
    options.strategy = strategy;
    options.fission_segments = 4;
    const auto report = executor.Execute(graph, sources, options);
    ASSERT_EQ(report.sink_results.size(), 1u) << ToString(strategy);
    // v >= 0 keeps the uniform-domain value; the row survives both selects.
    EXPECT_EQ(report.sink_results.begin()->second.row_count(), 1u)
        << ToString(strategy);
  }
}

TEST(FissionEdgeCases, SegmentBoundaryExactlyAtDeviceCapacity) {
  // Row counts chosen so the working set lands exactly ON the segmentation
  // threshold (budget fraction x capacity), and one row past it. Both must
  // execute without throwing and respect the capacity invariant — the
  // boundary is where an off-by-one in segment sizing would surface.
  sim::DeviceSimulator tiny(sim::DeviceSpec::TinyTestDevice());
  QueryExecutor executor(tiny);
  OpGraph g;
  const NodeId src = g.AddSource("in", Schema{{"v", DataType::kInt32}}, 0);
  g.AddOperator(
      OperatorDesc::Select(Expr::Ge(Expr::FieldRef(0), Expr::Lit(0)), "keep"),
      src);

  ExecutorOptions options;
  options.strategy = Strategy::kFission;
  options.device_memory_budget = 0.5;
  // 0.5 x 64 MiB = 32 MiB; int32 rows -> exactly 8M rows on the boundary.
  const std::uint64_t boundary_rows = (tiny.spec().mem_capacity_bytes / 2) / 4;

  for (std::uint64_t rows : {boundary_rows, boundary_rows + 1}) {
    std::map<NodeId, std::uint64_t> counts;
    for (NodeId id = 0; id < g.node_count(); ++id) counts[id] = rows;
    const ExecutionReport report = executor.EstimateOnly(g, counts, options);
    EXPECT_GT(report.makespan, 0.0) << rows << " rows";
    EXPECT_LE(report.peak_device_bytes, tiny.spec().mem_capacity_bytes)
        << rows << " rows";
  }
}

TEST(ExecutorSpill, ImpossibleWorkingSetThrows) {
  // A single relation larger than the tiny device with pinned inputs on
  // both sides of a sort leaves nothing to spill mid-cluster.
  sim::DeviceSimulator tiny(sim::DeviceSpec::TinyTestDevice());
  QueryExecutor executor(tiny);
  OpGraph g;
  const NodeId src = g.AddSource("in", Schema{{"v", DataType::kInt32}}, 0);
  g.AddOperator(OperatorDesc::Sort({0}), src);
  std::map<NodeId, std::uint64_t> counts;
  // 40M rows = 160 MB >> 64 MiB: sort needs input + output resident at once.
  for (NodeId id = 0; id < g.node_count(); ++id) counts[id] = 40'000'000;
  ExecutorOptions options;
  options.strategy = Strategy::kSerial;
  EXPECT_THROW(executor.EstimateOnly(g, counts, options), kf::Error);
}

}  // namespace
}  // namespace kf::core
