// The planner must discover exactly the fusable patterns of paper Fig 2.
#include "core/fusion_planner.h"

#include <gtest/gtest.h>

namespace kf::core {
namespace {

using relational::AggregateSpec;
using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;

Schema KV() { return Schema{{"k", DataType::kInt64}, {"v", DataType::kInt64}}; }

OperatorDesc Sel(const char* label = "select") {
  return OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(5)), label);
}

int ClusterOf(const FusionPlan& plan, NodeId id) { return plan.cluster_of[id]; }

TEST(FusionPlanner, PatternA_SelectChainFusesIntoOneCluster) {
  OpGraph g;
  const NodeId src = g.AddSource("in", KV(), 100);
  const NodeId s1 = g.AddOperator(Sel("s1"), src);
  const NodeId s2 = g.AddOperator(Sel("s2"), s1);
  const NodeId s3 = g.AddOperator(Sel("s3"), s2);
  const FusionPlan plan = PlanFusion(g);
  EXPECT_EQ(plan.clusters.size(), 1u);
  EXPECT_EQ(ClusterOf(plan, s1), ClusterOf(plan, s2));
  EXPECT_EQ(ClusterOf(plan, s2), ClusterOf(plan, s3));
  EXPECT_EQ(plan.clusters[0].primary_input, src);
  EXPECT_EQ(plan.clusters[0].outputs, std::vector<NodeId>{s3});
}

TEST(FusionPlanner, PatternB_JoinChainFusesAlongProbeSide) {
  OpGraph g;
  const NodeId a = g.AddSource("a", KV(), 100);
  const NodeId b = g.AddSource("b", KV(), 100);
  const NodeId c = g.AddSource("c", KV(), 100);
  const NodeId j1 = g.AddOperator(OperatorDesc::Join(0, 0, "j1"), a, b);
  const NodeId j2 = g.AddOperator(OperatorDesc::Join(0, 0, "j2"), j1, c);
  const FusionPlan plan = PlanFusion(g);
  EXPECT_EQ(plan.clusters.size(), 1u);
  EXPECT_EQ(ClusterOf(plan, j1), ClusterOf(plan, j2));
  EXPECT_EQ(plan.clusters[0].build_inputs, (std::vector<NodeId>{b, c}));
}

TEST(FusionPlanner, PatternC_SharedInputSelectsShareACluster) {
  OpGraph g;
  const NodeId src = g.AddSource("in", KV(), 100);
  const NodeId s1 = g.AddOperator(Sel("s1"), src);
  const NodeId s2 = g.AddOperator(Sel("s2"), src);
  const FusionPlan plan = PlanFusion(g);
  EXPECT_EQ(plan.clusters.size(), 1u);
  EXPECT_EQ(ClusterOf(plan, s1), ClusterOf(plan, s2));
  // Both selects escape: two outputs from one fused kernel.
  EXPECT_EQ(plan.clusters[0].outputs, (std::vector<NodeId>{s1, s2}));
}

TEST(FusionPlanner, PatternDE_SelectAndArithAfterJoinFuse) {
  OpGraph g;
  const NodeId a = g.AddSource("a", KV(), 100);
  const NodeId b = g.AddSource("b", KV(), 100);
  const NodeId j = g.AddOperator(OperatorDesc::Join(), a, b);
  const NodeId s = g.AddOperator(Sel(), j);
  const NodeId ar = g.AddOperator(
      OperatorDesc::Arith(Expr::Add(Expr::FieldRef(1), Expr::FieldRef(2)), "sum"), s);
  const FusionPlan plan = PlanFusion(g);
  EXPECT_EQ(plan.clusters.size(), 1u);
  EXPECT_EQ(ClusterOf(plan, j), ClusterOf(plan, ar));
}

TEST(FusionPlanner, PatternF_JoinOfTwoSelectedTables) {
  // select(a) join select(b): the probe-side select fuses with the join;
  // the build-side select is a separate, earlier cluster.
  OpGraph g;
  const NodeId a = g.AddSource("a", KV(), 100);
  const NodeId b = g.AddSource("b", KV(), 100);
  const NodeId sb = g.AddOperator(Sel("sel_b"), b);
  const NodeId sa = g.AddOperator(Sel("sel_a"), a);
  const NodeId j = g.AddOperator(OperatorDesc::Join(), sa, sb);
  const FusionPlan plan = PlanFusion(g);
  EXPECT_EQ(plan.clusters.size(), 2u);
  EXPECT_EQ(ClusterOf(plan, sa), ClusterOf(plan, j));
  EXPECT_NE(ClusterOf(plan, sb), ClusterOf(plan, j));
}

TEST(FusionPlanner, PatternG_AggregationOverSelectFuses) {
  OpGraph g;
  const NodeId src = g.AddSource("in", KV(), 100);
  const NodeId s = g.AddOperator(Sel(), src);
  const NodeId agg = g.AddOperator(
      OperatorDesc::Aggregate({}, {AggregateSpec{AggregateSpec::Func::kSum, 1, "sum"}}),
      s);
  const FusionPlan plan = PlanFusion(g);
  EXPECT_EQ(plan.clusters.size(), 1u);
  EXPECT_EQ(ClusterOf(plan, s), ClusterOf(plan, agg));
}

TEST(FusionPlanner, PatternH_ArithThenProjectFuses) {
  OpGraph g;
  const NodeId src = g.AddSource("in", KV(), 100);
  const NodeId ar = g.AddOperator(
      OperatorDesc::Arith(Expr::Mul(Expr::FieldRef(1), Expr::LitF(0.9)), "disc"), src);
  const NodeId pr = g.AddOperator(OperatorDesc::Project({0, 2}), ar);
  const FusionPlan plan = PlanFusion(g);
  EXPECT_EQ(plan.clusters.size(), 1u);
  EXPECT_EQ(ClusterOf(plan, ar), ClusterOf(plan, pr));
}

TEST(FusionPlanner, NothingFusesThroughAggregation) {
  OpGraph g;
  const NodeId src = g.AddSource("in", KV(), 100);
  const NodeId agg = g.AddOperator(
      OperatorDesc::Aggregate({0}, {AggregateSpec{AggregateSpec::Func::kSum, 1, "sum"}}),
      src);
  const NodeId s = g.AddOperator(Sel(), agg);
  const FusionPlan plan = PlanFusion(g);
  EXPECT_EQ(plan.clusters.size(), 2u);
  EXPECT_NE(ClusterOf(plan, agg), ClusterOf(plan, s));
}

TEST(FusionPlanner, SortIsABarrierOnBothSides) {
  OpGraph g;
  const NodeId src = g.AddSource("in", KV(), 100);
  const NodeId s1 = g.AddOperator(Sel("s1"), src);
  const NodeId sort = g.AddOperator(OperatorDesc::Sort({0}), s1);
  const NodeId s2 = g.AddOperator(Sel("s2"), sort);
  const FusionPlan plan = PlanFusion(g);
  EXPECT_EQ(plan.clusters.size(), 3u);
  EXPECT_NE(ClusterOf(plan, s1), ClusterOf(plan, sort));
  EXPECT_NE(ClusterOf(plan, sort), ClusterOf(plan, s2));
}

TEST(FusionPlanner, DisabledPlannerKeepsEveryOperatorAlone) {
  OpGraph g;
  const NodeId src = g.AddSource("in", KV(), 100);
  const NodeId s1 = g.AddOperator(Sel("s1"), src);
  g.AddOperator(Sel("s2"), s1);
  FusionOptions options;
  options.enabled = false;
  const FusionPlan plan = PlanFusion(g, options);
  EXPECT_EQ(plan.clusters.size(), 2u);
  EXPECT_EQ(plan.fused_cluster_count(), 0u);
}

TEST(FusionPlanner, RegisterBudgetSplitsLongChains) {
  OpGraph g;
  const NodeId src = g.AddSource("in", KV(), 100);
  NodeId current = src;
  std::vector<NodeId> selects;
  for (int i = 0; i < 12; ++i) {
    current = g.AddOperator(Sel(("s" + std::to_string(i)).c_str()), current);
    selects.push_back(current);
  }
  FusionOptions tight;
  tight.register_budget = 20;  // base 10 + 3 per select -> ~3 per cluster
  const FusionPlan plan = PlanFusion(g, tight);
  EXPECT_GT(plan.clusters.size(), 2u);
  for (const FusionCluster& cluster : plan.clusters) {
    EXPECT_LE(cluster.register_estimate, 20);
  }
  // A generous budget fuses everything.
  FusionOptions loose;
  loose.register_budget = 128;
  EXPECT_EQ(PlanFusion(g, loose).clusters.size(), 1u);
}

TEST(FusionPlanner, BuildSideFromLaterClusterBlocksFusion) {
  // join(chain_a, sel_b) where sel_b is created AFTER the chain started: the
  // planner must not fuse the join into a cluster that would run before its
  // build input exists.
  OpGraph g;
  const NodeId a = g.AddSource("a", KV(), 100);
  const NodeId b = g.AddSource("b", KV(), 100);
  const NodeId sa = g.AddOperator(Sel("sa"), a);
  const NodeId sb = g.AddOperator(Sel("sb"), b);
  const NodeId j = g.AddOperator(OperatorDesc::Join(), sa, sb);
  const FusionPlan plan = PlanFusion(g);
  // sb lands in cluster 1 (> sa's cluster 0), so the join cannot join
  // cluster 0; it must start its own cluster.
  EXPECT_EQ(ClusterOf(plan, sa), 0);
  EXPECT_EQ(ClusterOf(plan, sb), 1);
  EXPECT_EQ(ClusterOf(plan, j), 2);
}

TEST(FusionPlanner, ToStringMentionsFusedClusters) {
  OpGraph g;
  const NodeId src = g.AddSource("in", KV(), 100);
  const NodeId s1 = g.AddOperator(Sel("alpha"), src);
  g.AddOperator(Sel("beta"), s1);
  const FusionPlan plan = PlanFusion(g);
  const std::string s = plan.ToString(g);
  EXPECT_NE(s.find("FUSED"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
}

}  // namespace
}  // namespace kf::core
