// The executor's observability contract: every strategy records its run into
// the metrics registry, and the registry's numbers agree with the
// ExecutionReport the caller gets back.
#include <gtest/gtest.h>

#include <string>

#include "core/query_executor.h"
#include "core/select_chain.h"
#include "obs/metrics_registry.h"
#include "relational/operators.h"

namespace kf::core {
namespace {

using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;

std::string Key(const std::string& name, Strategy strategy) {
  return name + "{strategy=" + ToString(strategy) + "}";
}

std::string BusyKey(Strategy strategy, const std::string& engine) {
  return "executor.engine_busy_seconds{strategy=" + std::string(ToString(strategy)) +
         ",engine=" + engine + "}";
}

class QueryExecutorMetricsTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(QueryExecutorMetricsTest, RegistryAgreesWithExecutionReport) {
  const Strategy strategy = GetParam();
  sim::DeviceSimulator device;
  QueryExecutor executor(device);
  SelectChain chain = MakeSelectChain(8'000'000, std::vector<double>{0.5, 0.5});

  obs::MetricsRegistry registry;
  ExecutorOptions options;
  options.strategy = strategy;
  options.metrics = &registry;
  const ExecutionReport report =
      executor.EstimateOnly(chain.graph, chain.expected_rows, options);

  EXPECT_EQ(registry.CounterValue(Key("executor.runs", strategy)), 1u);
  EXPECT_EQ(registry.CounterValue(Key("executor.kernel_launches", strategy)),
            report.kernel_launches);
  EXPECT_EQ(registry.CounterValue(Key("executor.h2d_bytes", strategy)),
            report.h2d_bytes);
  EXPECT_EQ(registry.CounterValue(Key("executor.d2h_bytes", strategy)),
            report.d2h_bytes);
  EXPECT_EQ(registry.CounterValue(Key("executor.spills", strategy)),
            report.spill_count);
  EXPECT_EQ(registry.CounterValue(Key("executor.clusters", strategy)),
            report.cluster_count);
  EXPECT_EQ(registry.CounterValue(Key("executor.fused_clusters", strategy)),
            report.fused_cluster_count);

  EXPECT_DOUBLE_EQ(registry.GaugeValue(BusyKey(strategy, "h2d")),
                   report.timeline.h2d_busy);
  EXPECT_DOUBLE_EQ(registry.GaugeValue(BusyKey(strategy, "d2h")),
                   report.timeline.d2h_busy);
  EXPECT_DOUBLE_EQ(registry.GaugeValue(BusyKey(strategy, "compute")),
                   report.timeline.compute_busy);
  EXPECT_DOUBLE_EQ(registry.GaugeValue(BusyKey(strategy, "host")),
                   report.timeline.host_busy);
  EXPECT_DOUBLE_EQ(
      registry.GaugeValue(Key("executor.peak_device_bytes", strategy)),
      static_cast<double>(report.peak_device_bytes));

  const obs::DurationHistogram* makespans =
      registry.FindHistogram(Key("executor.makespan_seconds", strategy));
  ASSERT_NE(makespans, nullptr);
  EXPECT_EQ(makespans->count(), 1u);
  EXPECT_DOUBLE_EQ(makespans->sum(), report.makespan);

  // The plan shape is real: every strategy plans at least one cluster, and
  // the fused strategies fuse the two-SELECT chain into one.
  EXPECT_GT(report.cluster_count, 0u);
  if (strategy == Strategy::kFused || strategy == Strategy::kFusedFission) {
    EXPECT_GE(report.fused_cluster_count, 1u);
  }
}

TEST_P(QueryExecutorMetricsTest, CountersAccumulateAcrossRuns) {
  const Strategy strategy = GetParam();
  sim::DeviceSimulator device;
  QueryExecutor executor(device);
  SelectChain chain = MakeSelectChain(4'000'000, std::vector<double>{0.5});

  obs::MetricsRegistry registry;
  ExecutorOptions options;
  options.strategy = strategy;
  options.metrics = &registry;
  const ExecutionReport first =
      executor.EstimateOnly(chain.graph, chain.expected_rows, options);
  const ExecutionReport second =
      executor.EstimateOnly(chain.graph, chain.expected_rows, options);

  EXPECT_EQ(registry.CounterValue(Key("executor.runs", strategy)), 2u);
  EXPECT_EQ(registry.CounterValue(Key("executor.kernel_launches", strategy)),
            first.kernel_launches + second.kernel_launches);
  const obs::DurationHistogram* makespans =
      registry.FindHistogram(Key("executor.makespan_seconds", strategy));
  ASSERT_NE(makespans, nullptr);
  EXPECT_EQ(makespans->count(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, QueryExecutorMetricsTest,
                         ::testing::Values(Strategy::kSerial, Strategy::kFused,
                                           Strategy::kFission,
                                           Strategy::kFusedFission),
                         [](const ::testing::TestParamInfo<Strategy>& param) {
                           switch (param.param) {
                             case Strategy::kSerial: return "Serial";
                             case Strategy::kFused: return "Fused";
                             case Strategy::kFission: return "Fission";
                             case Strategy::kFusedFission: return "FusedFission";
                           }
                           return "Unknown";
                         });

// The retention-heavy graph of executor_spill_test on a tiny device: the
// forced evictions must surface both in the report and in the registry.
TEST(QueryExecutorMetrics, SpillCountReachesRegistry) {
  sim::DeviceSimulator tiny(sim::DeviceSpec::TinyTestDevice());
  QueryExecutor executor(tiny);
  const std::uint64_t rows = 5'000'000;

  OpGraph graph;
  const NodeId src = graph.AddSource("in", Schema{{"v", DataType::kInt32}}, rows);
  std::vector<NodeId> branches;
  for (int i = 1; i <= 3; ++i) {
    const NodeId sorted = graph.AddOperator(
        OperatorDesc::Sort({0}, "sort" + std::to_string(i)), src);
    branches.push_back(graph.AddOperator(
        OperatorDesc::Select(Expr::Ge(Expr::FieldRef(0), Expr::Lit(i - 1)),
                             "sel" + std::to_string(i)),
        sorted));
  }
  const NodeId inner = graph.AddOperator(OperatorDesc::Union("union_inner"),
                                         branches[1], branches[2]);
  graph.AddOperator(OperatorDesc::Union("union_outer"), branches[0], inner);

  obs::MetricsRegistry registry;
  ExecutorOptions options;
  options.strategy = Strategy::kSerial;
  options.metrics = &registry;
  std::map<NodeId, std::uint64_t> counts;
  for (NodeId id = 0; id < graph.node_count(); ++id) counts[id] = rows;
  const ExecutionReport report = executor.EstimateOnly(graph, counts, options);

  EXPECT_GT(report.spill_count, 0u);
  EXPECT_EQ(registry.CounterValue("executor.spills{strategy=serial}"),
            report.spill_count);
}

// Without an explicit registry the executor records into the process-wide
// default — the bench binaries rely on this.
TEST(QueryExecutorMetrics, DefaultRegistryIsUsedWhenUnset) {
  sim::DeviceSimulator device;
  QueryExecutor executor(device);
  SelectChain chain = MakeSelectChain(4'000'000, std::vector<double>{0.5});

  obs::MetricsRegistry& defaults = obs::MetricsRegistry::Default();
  const std::uint64_t before =
      defaults.CounterValue("executor.runs{strategy=serial}");
  ExecutorOptions options;
  options.strategy = Strategy::kSerial;
  executor.EstimateOnly(chain.graph, chain.expected_rows, options);
  EXPECT_EQ(defaults.CounterValue("executor.runs{strategy=serial}"), before + 1);
}

}  // namespace
}  // namespace kf::core
