#include "core/graph_merge.h"

#include <gtest/gtest.h>

#include "core/query_executor.h"
#include "core/select_chain.h"

namespace kf::core {
namespace {

using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;
using relational::Table;

Schema I32() { return Schema{{"v", DataType::kInt32}}; }

OpGraph OneSelectQuery(const char* source_name, std::int32_t threshold,
                       const char* label) {
  OpGraph g;
  const NodeId src = g.AddSource(source_name, I32(), 1000);
  g.AddOperator(OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0),
                                              Expr::Lit(relational::Value::Int32(
                                                  threshold))),
                                     label),
                src);
  return g;
}

TEST(GraphMerge, SharedSourceIsUnified) {
  const OpGraph q1 = OneSelectQuery("lineitem", 100, "q1_select");
  const OpGraph q2 = OneSelectQuery("lineitem", 200, "q2_select");
  const MergeResult merged = MergeGraphs(q1, q2);
  EXPECT_EQ(merged.graph.Sources().size(), 1u);  // one shared scan
  EXPECT_EQ(merged.graph.node_count(), 3u);      // source + 2 selects
  EXPECT_EQ(merged.graph.Sinks().size(), 2u);    // both query results
}

TEST(GraphMerge, DistinctSourcesStaySeparate) {
  const OpGraph q1 = OneSelectQuery("orders", 100, "a");
  const OpGraph q2 = OneSelectQuery("lineitem", 200, "b");
  const MergeResult merged = MergeGraphs(q1, q2);
  EXPECT_EQ(merged.graph.Sources().size(), 2u);
}

TEST(GraphMerge, ConflictingSchemasThrow) {
  OpGraph q1;
  q1.AddSource("t", I32(), 10);
  OpGraph q2;
  q2.AddSource("t", Schema{{"v", DataType::kInt64}}, 10);
  EXPECT_THROW(MergeGraphs(q1, q2), kf::Error);
}

TEST(GraphMerge, CrossQueryFusionSharesOneScan) {
  // Section III-A: RA operators from different queries fuse. Both queries'
  // SELECTs land in ONE cluster streaming the shared source once.
  const OpGraph q1 = OneSelectQuery("lineitem", 100, "q1_select");
  const OpGraph q2 = OneSelectQuery("lineitem", 200, "q2_select");
  const MergeResult merged = MergeGraphs(q1, q2);
  const FusionPlan plan = PlanFusion(merged.graph);
  ASSERT_EQ(plan.clusters.size(), 1u);
  EXPECT_EQ(plan.clusters[0].nodes.size(), 2u);
  EXPECT_EQ(plan.clusters[0].outputs.size(), 2u);  // one result per query
}

TEST(GraphMerge, MergedExecutionMatchesSeparateExecution) {
  const OpGraph q1 = OneSelectQuery("numbers", 1 << 29, "q1_select");
  const OpGraph q2 = OneSelectQuery("numbers", 1 << 30, "q2_select");
  const MergeResult merged = MergeGraphs(q1, q2);

  const Table data = MakeUniformInt32Table(20000, 77);
  sim::DeviceSimulator device;
  QueryExecutor executor(device);
  ExecutorOptions options;
  options.strategy = Strategy::kFused;
  options.chunk_count = 8;

  // Separate runs.
  const auto r1 = executor.Execute(q1, {{q1.Sources()[0], data}}, options);
  const auto r2 = executor.Execute(q2, {{q2.Sources()[0], data}}, options);
  // Merged run: one scan serves both.
  const auto merged_report = executor.Execute(
      merged.graph, {{merged.graph.Sources()[0], data}}, options);
  ASSERT_EQ(merged_report.sink_results.size(), 2u);

  // Map each original sink to its merged counterpart and compare.
  const NodeId sink1 = merged.first_mapping.at(q1.Sinks()[0]);
  const NodeId sink2 = merged.second_mapping.at(q2.Sinks()[0]);
  EXPECT_TRUE(relational::SameRowMultiset(merged_report.sink_results.at(sink1),
                                          r1.sink_results.begin()->second));
  EXPECT_TRUE(relational::SameRowMultiset(merged_report.sink_results.at(sink2),
                                          r2.sink_results.begin()->second));

  // And the shared scan moves fewer bytes than two separate runs.
  EXPECT_LT(merged_report.h2d_bytes, r1.h2d_bytes + r2.h2d_bytes);
  EXPECT_LT(merged_report.makespan, r1.makespan + r2.makespan);
}

TEST(GraphMerge, MappingsCoverEveryNode) {
  const OpGraph q1 = OneSelectQuery("t", 1, "a");
  const OpGraph q2 = OneSelectQuery("t", 2, "b");
  const MergeResult merged = MergeGraphs(q1, q2);
  EXPECT_EQ(merged.first_mapping.size(), q1.node_count());
  EXPECT_EQ(merged.second_mapping.size(), q2.node_count());
}

}  // namespace
}  // namespace kf::core
