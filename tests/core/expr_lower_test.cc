#include "core/expr_lower.h"

#include <gtest/gtest.h>

#include "ir/passes.h"

namespace kf::core {
namespace {

using relational::Expr;

TEST(ExprLower, SelectFilterShape) {
  const ir::Function f =
      LowerSelectFilter("filter", Expr::Lt(Expr::FieldRef(0), Expr::Lit(100)));
  // ld, mov(const), setp, bra, st, ret.
  EXPECT_EQ(f.InstructionCount(), 6u);
}

TEST(ExprLower, SelectFilterOptimizesToPredicatedStore) {
  ir::Function f =
      LowerSelectFilter("filter", Expr::Lt(Expr::FieldRef(0), Expr::Lit(100)));
  ir::OptimizeO3(f);
  EXPECT_EQ(f.InstructionCount(), 4u);  // ld, setp, @p st, ret
  EXPECT_EQ(f.block_count(), 1u);
}

TEST(ExprLower, FusedChainCollapsesUnderO3) {
  const std::vector<Expr> predicates = {
      Expr::Lt(Expr::FieldRef(0), Expr::Lit(1000)),
      Expr::Lt(Expr::FieldRef(0), Expr::Lit(500)),
  };
  ir::Function fused = LowerFusedSelectFilters("fused", predicates);
  const std::size_t before = fused.InstructionCount();
  ir::OptimizeO3(fused);
  // The two range predicates merge into one comparison.
  EXPECT_EQ(fused.InstructionCount(), 4u);
  EXPECT_GT(before, 2 * fused.InstructionCount());
}

TEST(ExprLower, MultiFieldPredicateLoadsEachFieldOnce) {
  const Expr pred = Expr::And(Expr::Lt(Expr::FieldRef(0), Expr::Lit(10)),
                              Expr::Gt(Expr::FieldRef(1), Expr::FieldRef(0)));
  ir::Function f = LowerSelectFilter("multi", pred);
  std::size_t loads = 0;
  for (ir::BlockId b = 0; b < f.block_count(); ++b) {
    for (const auto& inst : f.block(b).instructions) {
      if (inst.op == ir::Opcode::kLd) ++loads;
    }
  }
  EXPECT_EQ(loads, 2u);  // fields 0 and 1, cached
}

TEST(ExprLower, ArithMapLowersAndFolds) {
  // (1 - 0.4) * $0  -> constant folds the (1 - 0.4) subtree.
  const Expr e = Expr::Mul(Expr::Sub(Expr::Lit(10), Expr::Lit(4)), Expr::FieldRef(0));
  ir::Function f = LowerArithMap("map", e);
  ir::OptimizeO3(f);
  // ld, mul, st, ret.
  EXPECT_EQ(f.InstructionCount(), 4u);
}

TEST(ExprLower, LogicalOpsLower) {
  const Expr pred = Expr::Or(Expr::Not(Expr::Eq(Expr::FieldRef(0), Expr::Lit(0))),
                             Expr::Le(Expr::FieldRef(0), Expr::Lit(-5)));
  ir::Function f = LowerSelectFilter("logic", pred);
  f.Verify();
  EXPECT_GT(f.InstructionCount(), 5u);
}

TEST(ExprLower, EmptyChainThrows) {
  EXPECT_THROW(LowerFusedSelectFilters("none", {}), kf::Error);
}

}  // namespace
}  // namespace kf::core
