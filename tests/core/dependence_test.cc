#include "core/dependence.h"

#include <gtest/gtest.h>

namespace kf::core {
namespace {

using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::OpKind;
using relational::Schema;

TEST(Dependence, ClassificationFollowsThePaper) {
  // Case (i): elementwise dependence decomposes to scalars.
  EXPECT_EQ(Classify(OpKind::kSelect), FusionClass::kElementwise);
  EXPECT_EQ(Classify(OpKind::kProject), FusionClass::kElementwise);
  EXPECT_EQ(Classify(OpKind::kArith), FusionClass::kElementwise);
  // Case (ii) with domain knowledge: JOIN-JOIN fuses via the probe side.
  EXPECT_EQ(Classify(OpKind::kJoin), FusionClass::kBroadcastProbe);
  EXPECT_EQ(Classify(OpKind::kProduct), FusionClass::kBroadcastProbe);
  // Aggregation fuses as a terminal reduction (pattern g).
  EXPECT_EQ(Classify(OpKind::kAggregate), FusionClass::kReduction);
  // "SORT and UNIQUE cannot be fused with any other operators."
  EXPECT_EQ(Classify(OpKind::kSort), FusionClass::kBarrier);
  EXPECT_EQ(Classify(OpKind::kUnique), FusionClass::kBarrier);
}

TEST(Dependence, FusableEdges) {
  EXPECT_TRUE(CanFuseEdge(OperatorDesc::Select(Expr::Lit(1)), 0));
  EXPECT_TRUE(CanFuseEdge(OperatorDesc::Join(), 0));    // probe side
  EXPECT_FALSE(CanFuseEdge(OperatorDesc::Join(), 1));   // build side
  EXPECT_TRUE(CanFuseEdge(OperatorDesc::Aggregate({}, {{}}), 0));
  EXPECT_FALSE(CanFuseEdge(OperatorDesc::Sort({0}), 0));
  EXPECT_FALSE(CanFuseEdge(OperatorDesc::Unique(), 0));
  EXPECT_FALSE(CanFuseEdge(OperatorDesc::Union(), 0));
}

TEST(Dependence, RegisterDemandGrowsWithExprComplexity) {
  OpGraph g;
  const NodeId src =
      g.AddSource("s", Schema{{"a", DataType::kInt64}, {"b", DataType::kInt64}}, 1);
  const NodeId cheap = g.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(1))), src);
  const NodeId costly = g.AddOperator(
      OperatorDesc::Select(Expr::And(
          Expr::Lt(Expr::Add(Expr::FieldRef(0), Expr::FieldRef(1)), Expr::Lit(9)),
          Expr::Gt(Expr::Mul(Expr::FieldRef(0), Expr::FieldRef(1)), Expr::Lit(2)))),
      src);
  EXPECT_LT(RegisterDemand(g, g.node(cheap)), RegisterDemand(g, g.node(costly)));
  EXPECT_EQ(RegisterDemand(g, g.node(src)), 0);
}

TEST(Dependence, JoinDemandCountsAppendedFieldsOnly) {
  OpGraph g;
  const NodeId wide = g.AddSource(
      "wide",
      Schema{{"k", DataType::kInt64}, {"a", DataType::kInt64}, {"b", DataType::kInt64}},
      1);
  const NodeId narrow =
      g.AddSource("narrow", Schema{{"k", DataType::kInt64}, {"x", DataType::kInt64}}, 1);
  const NodeId j = g.AddOperator(OperatorDesc::Join(), wide, narrow);
  // Join appends exactly one field (x): demand is 2 + 1.
  EXPECT_EQ(RegisterDemand(g, g.node(j)), 3);
}

}  // namespace
}  // namespace kf::core
