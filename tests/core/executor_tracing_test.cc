// Executor tracing: the root execute span covers the whole makespan, the
// structural tree (plan / functional / clusters / segments / commands) is
// well formed, stage occupancy cross-checks against the report's stage sums,
// and fault / degrade / retry paths leave their typed annotations behind.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/query_executor.h"
#include "core/select_chain.h"
#include "obs/tracer.h"
#include "sim/fault_injector.h"

namespace kf::core {
namespace {

using relational::Table;

class ExecutorTracingTest : public ::testing::Test {
 protected:
  sim::DeviceSimulator device_;
  QueryExecutor executor_{device_};
  obs::MetricsRegistry registry_;
  obs::Tracer tracer_;

  ExecutorOptions Options(Strategy strategy) {
    ExecutorOptions options;
    options.strategy = strategy;
    options.chunk_count = 8;
    options.fission_segments = 4;
    options.metrics = &registry_;
    options.tracer = &tracer_;
    return options;
  }

  obs::QueryTrace Run(Strategy strategy, ExecutionReport* report_out = nullptr,
                      const sim::FaultInjector* injector = nullptr) {
    SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5, 0.5});
    const std::map<NodeId, Table> sources{
        {chain.source, MakeUniformInt32Table(20000)}};
    ExecutorOptions options = Options(strategy);
    options.fault_injector = injector;
    const ExecutionReport report =
        executor_.Execute(chain.graph, sources, options);
    if (report_out != nullptr) *report_out = report;
    // The executor allocated the query id itself (options.trace.query_id
    // was 0); recover it from the most recent live tree.
    const std::uint64_t query_id = LastQueryId();
    return tracer_.Snapshot(query_id);
  }

  std::uint64_t LastQueryId() const {
    // Tracer ids are monotonic from 1; the run just finished is the highest.
    std::uint64_t last = 0;
    for (std::uint64_t id = 1; id <= 64; ++id) {
      if (!tracer_.Snapshot(id).empty()) last = id;
    }
    return last;
  }
};

using obs::QueryTrace;

TEST_F(ExecutorTracingTest, RootSpanCoversTheWholeMakespan) {
  ExecutionReport report;
  const QueryTrace trace = Run(Strategy::kFused, &report);
  ASSERT_FALSE(trace.empty());

  const obs::Span& root = trace.spans.front();
  EXPECT_EQ(root.name, "execute/fusion");
  EXPECT_EQ(root.parent, 0u);
  EXPECT_DOUBLE_EQ(root.sim_start, 0.0);
  EXPECT_DOUBLE_EQ(root.sim_end, report.makespan);
  EXPECT_DOUBLE_EQ(report.trace_covered, report.makespan);
  EXPECT_EQ(report.trace_spans, trace.spans.size());
  EXPECT_GT(report.trace_spans, 3u);

  // Every non-root span resolves to a parent inside the tree and stays
  // within the root's window.
  for (const obs::Span& span : trace.spans) {
    if (span.id == root.id) continue;
    ASSERT_NE(trace.FindSpan(span.parent), nullptr) << span.name;
    EXPECT_GE(span.sim_start, root.sim_start - 1e-12) << span.name;
    EXPECT_LE(span.sim_end, root.sim_end + 1e-12) << span.name;
  }
}

TEST_F(ExecutorTracingTest, StructuralSpansArePresent) {
  const QueryTrace trace = Run(Strategy::kFusedFission);
  ASSERT_FALSE(trace.empty());
  bool saw_plan = false, saw_cluster = false, saw_segment = false,
       saw_command = false;
  for (const obs::Span& span : trace.spans) {
    if (span.name == "plan") saw_plan = true;
    if (span.name.rfind("cluster ", 0) == 0) saw_cluster = true;
    if (span.name.rfind("segment ", 0) == 0) saw_segment = true;
    if (!span.category.empty()) saw_command = true;
  }
  EXPECT_TRUE(saw_plan);
  EXPECT_TRUE(saw_cluster);
  EXPECT_TRUE(saw_segment);
  EXPECT_TRUE(saw_command);
}

TEST_F(ExecutorTracingTest, PlanSpanRecordsCacheMissThenHit) {
  SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5});
  const std::map<NodeId, Table> sources{
      {chain.source, MakeUniformInt32Table(20000)}};

  ExecutorOptions options = Options(Strategy::kFused);
  (void)executor_.Execute(chain.graph, sources, options);
  const QueryTrace cold = tracer_.Snapshot(LastQueryId());

  const FusionPlan plan = PlanFusion(chain.graph, EffectiveFusionOptions(options));
  options.plan = &plan;
  (void)executor_.Execute(chain.graph, sources, options);
  const QueryTrace warm = tracer_.Snapshot(LastQueryId());

  auto plan_annotation = [](const QueryTrace& trace) {
    for (const obs::Span& span : trace.spans) {
      if (span.name != "plan") continue;
      if (span.annotations.empty()) break;
      return span.annotations.front().kind;
    }
    return obs::SpanAnnotationKind::kFailure;
  };
  EXPECT_EQ(plan_annotation(cold), obs::SpanAnnotationKind::kCacheMiss);
  EXPECT_EQ(plan_annotation(warm), obs::SpanAnnotationKind::kCacheHit);
}

TEST_F(ExecutorTracingTest, StageOccupancyMatchesReportOnSerialCleanRun) {
  ExecutionReport report;
  const QueryTrace trace = Run(Strategy::kSerial, &report);
  ASSERT_FALSE(trace.empty());
  // On a fault-free serial run, per-category leaf occupancy equals the
  // report's stage sums: no engine overlap, no stall stretching.
  const auto stage = [&](const std::string& name) {
    const auto it = report.trace_stage_seconds.find(name);
    return it == report.trace_stage_seconds.end() ? 0.0 : it->second;
  };
  EXPECT_NEAR(stage("input_output"), report.input_output_time, 1e-9);
  EXPECT_NEAR(stage("round_trip"), report.round_trip_time, 1e-9);
  EXPECT_NEAR(stage("compute"), report.compute_time, 1e-9);
  EXPECT_NEAR(stage("host_gather"), report.host_gather_time, 1e-9);
}

TEST_F(ExecutorTracingTest, FaultsAnnotateTheTree) {
  sim::FaultConfig config;
  config.seed = 7;
  config.copy_fault_rate = 0.3;
  config.kernel_fault_rate = 0.3;
  sim::FaultInjector injector(config, &registry_);

  ExecutionReport report;
  const QueryTrace trace = Run(Strategy::kFusedFission, &report, &injector);
  ASSERT_FALSE(trace.empty());
  ASSERT_GT(report.fault_count, 0u);

  std::size_t fault_notes = 0, retry_spans = 0;
  for (const obs::Span& span : trace.spans) {
    if (span.name.rfind("retry", 0) == 0) ++retry_spans;
    for (const obs::SpanAnnotation& note : span.annotations) {
      if (note.kind == obs::SpanAnnotationKind::kFault) ++fault_notes;
    }
  }
  EXPECT_GT(fault_notes, 0u);
  EXPECT_GT(retry_spans, 0u);
}

TEST_F(ExecutorTracingTest, DegradeAnnotatesAndAddsHostRerunSpans) {
  sim::FaultConfig config;
  config.seed = 1;
  config.kernel_fault_rate = 1.0;
  sim::FaultInjector injector(config, &registry_);

  SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5, 0.5});
  const std::map<NodeId, Table> sources{
      {chain.source, MakeUniformInt32Table(20000)}};
  ExecutorOptions options = Options(Strategy::kFusedFission);
  options.fault_injector = &injector;
  options.resilience.max_retries = 2;
  const ExecutionReport report =
      executor_.Execute(chain.graph, sources, options);
  ASSERT_TRUE(report.degraded);

  const QueryTrace trace = tracer_.Snapshot(LastQueryId());
  bool saw_degraded_note = false, saw_host_rerun = false;
  for (const obs::Span& span : trace.spans) {
    if (span.name.rfind("degraded host rerun", 0) == 0) saw_host_rerun = true;
    for (const obs::SpanAnnotation& note : span.annotations) {
      if (note.kind == obs::SpanAnnotationKind::kDegraded) {
        saw_degraded_note = true;
      }
    }
  }
  EXPECT_TRUE(saw_degraded_note);
  EXPECT_TRUE(saw_host_rerun);
}

TEST_F(ExecutorTracingTest, TracedRunKeepsTheSameSimTiming) {
  SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5, 0.5});
  const std::map<NodeId, Table> sources{
      {chain.source, MakeUniformInt32Table(20000)}};
  ExecutorOptions untraced = Options(Strategy::kFusedFission);
  untraced.tracer = nullptr;
  const ExecutionReport plain =
      executor_.Execute(chain.graph, sources, untraced);
  const ExecutionReport traced =
      executor_.Execute(chain.graph, sources, Options(Strategy::kFusedFission));
  // Tracing observes the virtual clock; it never advances it.
  EXPECT_DOUBLE_EQ(traced.makespan, plain.makespan);
  EXPECT_EQ(traced.h2d_bytes, plain.h2d_bytes);
  EXPECT_EQ(traced.d2h_bytes, plain.d2h_bytes);
}

}  // namespace
}  // namespace kf::core
