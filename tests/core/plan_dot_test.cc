#include "core/plan_dot.h"

#include <gtest/gtest.h>

#include "core/select_chain.h"

namespace kf::core {
namespace {

TEST(PlanDot, PlainGraphListsNodesAndEdges) {
  const SelectChain chain = MakeSelectChain(100, std::vector<double>{0.5, 0.5});
  const std::string dot = ToDot(chain.graph);
  EXPECT_NE(dot.find("digraph plan"), std::string::npos);
  EXPECT_NE(dot.find("select1"), std::string::npos);
  EXPECT_NE(dot.find("select2"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n2"), std::string::npos);
  EXPECT_NE(dot.find("cylinder"), std::string::npos);  // source shape
}

TEST(PlanDot, FusionPlanDrawsClusters) {
  const SelectChain chain = MakeSelectChain(100, std::vector<double>{0.5, 0.5});
  const FusionPlan plan = PlanFusion(chain.graph);
  const std::string dot = ToDot(chain.graph, plan);
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("fused kernel 0"), std::string::npos);
  EXPECT_NE(dot.find("#d7f0d7"), std::string::npos);  // fused shading
}

TEST(PlanDot, JoinEdgesLabeledProbeAndBuild) {
  OpGraph g;
  using relational::DataType;
  const NodeId a = g.AddSource("a", {{{"k", DataType::kInt64}}}, 1);
  const NodeId b = g.AddSource("b", {{{"k", DataType::kInt64}}}, 1);
  g.AddOperator(relational::OperatorDesc::Join(), a, b);
  const std::string dot = ToDot(g);
  EXPECT_NE(dot.find("probe"), std::string::npos);
  EXPECT_NE(dot.find("build"), std::string::npos);
}

TEST(PlanDot, EscapesLabels) {
  OpGraph g;
  using relational::DataType;
  g.AddSource("weird \"name\"", {{{"k", DataType::kInt64}}}, 1);
  const std::string dot = ToDot(g);
  EXPECT_NE(dot.find("weird \\\"name\\\""), std::string::npos);
}

}  // namespace
}  // namespace kf::core
