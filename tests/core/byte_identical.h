// Exact table equality for differential tests: same schema, same rows, same
// order, same bytes per value. Stricter than Value::operator== (which
// coerces across numeric types) and than the property tests' multiset
// comparisons — a path that silently reorders or perturbs rows fails here.
#ifndef KF_TESTS_CORE_BYTE_IDENTICAL_H_
#define KF_TESTS_CORE_BYTE_IDENTICAL_H_

#include <gtest/gtest.h>

#include "relational/table.h"

namespace kf::core {

inline ::testing::AssertionResult ByteIdentical(const relational::Table& actual,
                                                const relational::Table& expected) {
  if (actual.schema().ToString() != expected.schema().ToString()) {
    return ::testing::AssertionFailure()
           << "schema mismatch: " << actual.schema().ToString() << " vs "
           << expected.schema().ToString();
  }
  if (actual.row_count() != expected.row_count()) {
    return ::testing::AssertionFailure()
           << "row count mismatch: " << actual.row_count() << " vs "
           << expected.row_count();
  }
  const std::vector<relational::Row> a = actual.Rows();
  const std::vector<relational::Row> b = expected.Rows();
  for (std::size_t r = 0; r < a.size(); ++r) {
    for (std::size_t f = 0; f < a[r].size(); ++f) {
      const relational::Value& va = a[r][f];
      const relational::Value& vb = b[r][f];
      // Require the same type tag and the same stored payload.
      if (va.type != vb.type || va.i != vb.i || va.f != vb.f) {
        return ::testing::AssertionFailure()
               << "row " << r << " field " << f << ": " << va.ToString()
               << " vs " << vb.ToString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace kf::core

#endif  // KF_TESTS_CORE_BYTE_IDENTICAL_H_
