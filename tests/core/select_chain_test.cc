#include "core/select_chain.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "relational/operators.h"

namespace kf::core {
namespace {

TEST(SelectChain, GraphShape) {
  const SelectChain chain = MakeSelectChain(1000, std::vector<double>{0.5, 0.5, 0.5});
  EXPECT_EQ(chain.graph.node_count(), 4u);  // source + 3 selects
  EXPECT_EQ(chain.selects.size(), 3u);
  EXPECT_EQ(chain.graph.Sinks(), std::vector<NodeId>{chain.selects.back()});
  EXPECT_EQ(chain.input_bytes(), 4000u);
}

TEST(SelectChain, ExpectedRowsCompound) {
  const SelectChain chain = MakeSelectChain(1000000, std::vector<double>{0.5, 0.5});
  EXPECT_EQ(chain.expected_rows.at(chain.source), 1000000u);
  EXPECT_NEAR(chain.expected_rows.at(chain.selects[0]), 500000.0, 1.0);
  EXPECT_NEAR(chain.expected_rows.at(chain.selects[1]), 250000.0, 1.0);
}

TEST(SelectChain, ThresholdsAreNested) {
  const SelectChain chain = MakeSelectChain(100, std::vector<double>{0.5, 0.5, 0.5});
  ASSERT_EQ(chain.thresholds.size(), 3u);
  EXPECT_GT(chain.thresholds[0], chain.thresholds[1]);
  EXPECT_GT(chain.thresholds[1], chain.thresholds[2]);
}

TEST(SelectChain, RealizedSelectivityMatchesExpectation) {
  const SelectChain chain = MakeSelectChain(100000, std::vector<double>{0.3, 0.5});
  const relational::Table data = MakeUniformInt32Table(100000, 7);
  relational::Table current = data;
  for (std::size_t i = 0; i < chain.selects.size(); ++i) {
    current = relational::ApplyOperator(
        chain.graph.node(chain.selects[i]).desc, current);
    const double expected =
        static_cast<double>(chain.expected_rows.at(chain.selects[i]));
    EXPECT_NEAR(static_cast<double>(current.row_count()) / expected, 1.0, 0.05)
        << "select " << i;
  }
}

TEST(SelectChain, RejectsBadSelectivities) {
  EXPECT_THROW(MakeSelectChain(10, std::vector<double>{}), Error);
  EXPECT_THROW(MakeSelectChain(10, std::vector<double>{1.5}), Error);
  EXPECT_THROW(MakeSelectChain(10, std::vector<double>{0.0}), Error);
}

TEST(UniformTable, DeterministicAndInDomain) {
  const relational::Table a = MakeUniformInt32Table(1000, 3);
  const relational::Table b = MakeUniformInt32Table(1000, 3);
  EXPECT_TRUE(relational::SameRowMultiset(a, b));
  for (std::int32_t v : a.column(0).AsInt32()) EXPECT_GE(v, 0);
}

}  // namespace
}  // namespace kf::core
