// Property-based tests of the fusion planner and the query executor over
// randomly generated operator graphs: structural invariants of every plan,
// and functional equivalence of all four execution strategies against the
// plain operator-at-a-time semantics.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/query_executor.h"
#include "relational/operators.h"

namespace kf::core {
namespace {

using relational::AggregateSpec;
using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;
using relational::Table;

// A random DAG of streaming-friendly operators over int64 KV relations.
struct RandomQuery {
  OpGraph graph;
  std::map<NodeId, Table> sources;
};

Table RandomKV(Rng& rng, std::size_t rows) {
  Table t(Schema{{"k", DataType::kInt64}, {"v", DataType::kInt64}});
  for (std::size_t r = 0; r < rows; ++r) {
    t.AppendRow({relational::Value::Int64(rng.UniformInt(0, 30)),
                 relational::Value::Int64(rng.UniformInt(-50, 50))});
  }
  return t;
}

RandomQuery MakeRandomQuery(std::uint64_t seed) {
  Rng rng(seed);
  RandomQuery q;
  std::vector<NodeId> pool;  // nodes with 2-field schemas, usable as inputs

  const int source_count = static_cast<int>(rng.UniformInt(1, 3));
  for (int s = 0; s < source_count; ++s) {
    const std::size_t rows = static_cast<std::size_t>(rng.UniformInt(50, 400));
    const NodeId src = q.graph.AddSource("src" + std::to_string(s),
                                         RandomKV(rng, 1).schema(), rows);
    q.sources.emplace(src, RandomKV(rng, rows));
    pool.push_back(src);
  }

  const int op_count = static_cast<int>(rng.UniformInt(2, 8));
  for (int i = 0; i < op_count; ++i) {
    const NodeId input = pool[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(pool.size()) - 1))];
    const bool two_fields = q.graph.node(input).schema.field_count() == 2;
    switch (rng.UniformInt(0, two_fields ? 4 : 2)) {
      case 0:
        pool.push_back(q.graph.AddOperator(
            OperatorDesc::Select(
                Expr::Lt(Expr::FieldRef(0), Expr::Lit(rng.UniformInt(0, 30))),
                "sel" + std::to_string(i)),
            input));
        break;
      case 1:
        pool.push_back(q.graph.AddOperator(
            OperatorDesc::Select(
                Expr::Ge(Expr::FieldRef(static_cast<int>(
                             rng.UniformInt(0, static_cast<std::int64_t>(
                                                   q.graph.node(input)
                                                       .schema.field_count()) -
                                                   1))),
                         Expr::Lit(rng.UniformInt(-20, 20))),
                "sel" + std::to_string(i)),
            input));
        break;
      case 2: {
        // Sort: a barrier in the middle of the DAG.
        pool.push_back(
            q.graph.AddOperator(OperatorDesc::Sort({0}, "sort" + std::to_string(i)),
                                input));
        break;
      }
      case 3: {
        pool.push_back(q.graph.AddOperator(
            OperatorDesc::Arith(Expr::Add(Expr::FieldRef(0), Expr::FieldRef(1)),
                                "sum" + std::to_string(i), DataType::kInt64),
            input));
        break;
      }
      case 4: {
        // Join against a fresh small build table.
        const std::size_t rows = static_cast<std::size_t>(rng.UniformInt(5, 40));
        const NodeId build = q.graph.AddSource("build" + std::to_string(i),
                                               RandomKV(rng, 1).schema(), rows);
        q.sources.emplace(build, RandomKV(rng, rows));
        pool.push_back(q.graph.AddOperator(
            OperatorDesc::Join(0, 0, "join" + std::to_string(i)), input, build));
        break;
      }
    }
  }
  return q;
}

class RandomGraphProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomGraphProperty, PlanInvariantsHold) {
  for (int trial = 0; trial < 10; ++trial) {
    const RandomQuery q =
        MakeRandomQuery(static_cast<std::uint64_t>(GetParam()) * 100 + trial);
    FusionOptions options;
    options.register_budget = static_cast<int>(20 + trial * 8);
    const FusionPlan plan = PlanFusion(q.graph, options);

    // Every operator node is in exactly one cluster.
    std::map<NodeId, int> membership;
    for (std::size_t c = 0; c < plan.clusters.size(); ++c) {
      for (NodeId id : plan.clusters[c].nodes) {
        EXPECT_EQ(membership.count(id), 0u) << "node in two clusters";
        membership[id] = static_cast<int>(c);
        EXPECT_EQ(plan.cluster_of[id], static_cast<int>(c));
      }
    }
    for (NodeId id : q.graph.TopologicalOrder()) {
      if (!q.graph.node(id).is_source) {
        EXPECT_EQ(membership.count(id), 1u) << "operator not planned";
      }
    }

    for (std::size_t c = 0; c < plan.clusters.size(); ++c) {
      const FusionCluster& cluster = plan.clusters[c];
      // Barriers are always singleton clusters.
      for (NodeId id : cluster.nodes) {
        if (Classify(q.graph.node(id).desc.kind) == FusionClass::kBarrier) {
          EXPECT_EQ(cluster.nodes.size(), 1u) << "fused barrier";
        }
      }
      // Register estimates respect the budget for fused clusters.
      if (cluster.fused()) {
        EXPECT_LE(cluster.register_estimate, options.register_budget);
      }
      // Build inputs come from sources or strictly earlier clusters.
      for (NodeId build : cluster.build_inputs) {
        if (!q.graph.node(build).is_source) {
          EXPECT_LT(plan.cluster_of[build], static_cast<int>(c));
        }
      }
      // The primary input is a source or belongs to an earlier cluster.
      if (!q.graph.node(cluster.primary_input).is_source) {
        EXPECT_LT(plan.cluster_of[cluster.primary_input], static_cast<int>(c));
      }
      EXPECT_FALSE(cluster.outputs.empty());
    }
  }
}

TEST_P(RandomGraphProperty, AllStrategiesMatchOperatorAtATimeSemantics) {
  for (int trial = 0; trial < 5; ++trial) {
    const RandomQuery q =
        MakeRandomQuery(static_cast<std::uint64_t>(GetParam()) * 977 + trial + 31);

    // Ground truth: plain ApplyOperator over the graph.
    std::map<NodeId, Table> truth;
    for (NodeId id : q.graph.TopologicalOrder()) {
      const OpNode& node = q.graph.node(id);
      if (node.is_source) {
        truth.emplace(id, q.sources.at(id));
        continue;
      }
      const Table* right =
          node.inputs.size() > 1 ? &truth.at(node.inputs[1]) : nullptr;
      truth.emplace(id,
                    relational::ApplyOperator(node.desc, truth.at(node.inputs[0]),
                                              right));
    }

    sim::DeviceSimulator device;
    QueryExecutor executor(device);
    for (Strategy strategy : {Strategy::kSerial, Strategy::kFused,
                              Strategy::kFission, Strategy::kFusedFission}) {
      ExecutorOptions options;
      options.strategy = strategy;
      options.chunk_count = 4;
      const ExecutionReport report = executor.Execute(q.graph, q.sources, options);
      for (NodeId sink : q.graph.Sinks()) {
        ASSERT_EQ(report.sink_results.count(sink), 1u)
            << ToString(strategy) << " missing sink " << sink;
        EXPECT_TRUE(relational::SameRowMultiset(report.sink_results.at(sink),
                                                truth.at(sink)))
            << ToString(strategy) << " sink " << sink << " trial " << trial
            << "\ngraph:\n" << q.graph.ToString();
      }
      EXPECT_GT(report.makespan, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace kf::core
