// Property-based tests of the fusion planner and the query executor over
// randomly generated operator graphs: structural invariants of every plan,
// and functional equivalence of all four execution strategies against the
// plain operator-at-a-time semantics. The generator lives in random_graph.h
// and is shared with the strategy differential sweep and the scheduler
// stress tests.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/query_executor.h"
#include "relational/operators.h"
#include "tests/core/random_graph.h"

namespace kf::core {
namespace {

using relational::Table;

class RandomGraphProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomGraphProperty, PlanInvariantsHold) {
  for (int trial = 0; trial < 10; ++trial) {
    const RandomQuery q =
        MakeRandomQuery(static_cast<std::uint64_t>(GetParam()) * 100 + trial);
    FusionOptions options;
    options.register_budget = static_cast<int>(20 + trial * 8);
    const FusionPlan plan = PlanFusion(q.graph, options);

    // Every operator node is in exactly one cluster.
    std::map<NodeId, int> membership;
    for (std::size_t c = 0; c < plan.clusters.size(); ++c) {
      for (NodeId id : plan.clusters[c].nodes) {
        EXPECT_EQ(membership.count(id), 0u) << "node in two clusters";
        membership[id] = static_cast<int>(c);
        EXPECT_EQ(plan.cluster_of[id], static_cast<int>(c));
      }
    }
    for (NodeId id : q.graph.TopologicalOrder()) {
      if (!q.graph.node(id).is_source) {
        EXPECT_EQ(membership.count(id), 1u) << "operator not planned";
      }
    }

    for (std::size_t c = 0; c < plan.clusters.size(); ++c) {
      const FusionCluster& cluster = plan.clusters[c];
      // Barriers are always singleton clusters.
      for (NodeId id : cluster.nodes) {
        if (Classify(q.graph.node(id).desc.kind) == FusionClass::kBarrier) {
          EXPECT_EQ(cluster.nodes.size(), 1u) << "fused barrier";
        }
      }
      // Register estimates respect the budget for fused clusters.
      if (cluster.fused()) {
        EXPECT_LE(cluster.register_estimate, options.register_budget);
      }
      // Build inputs come from sources or strictly earlier clusters.
      for (NodeId build : cluster.build_inputs) {
        if (!q.graph.node(build).is_source) {
          EXPECT_LT(plan.cluster_of[build], static_cast<int>(c));
        }
      }
      // The primary input is a source or belongs to an earlier cluster.
      if (!q.graph.node(cluster.primary_input).is_source) {
        EXPECT_LT(plan.cluster_of[cluster.primary_input], static_cast<int>(c));
      }
      EXPECT_FALSE(cluster.outputs.empty());
    }
  }
}

TEST_P(RandomGraphProperty, AllStrategiesMatchOperatorAtATimeSemantics) {
  for (int trial = 0; trial < 5; ++trial) {
    const RandomQuery q =
        MakeRandomQuery(static_cast<std::uint64_t>(GetParam()) * 977 + trial + 31);

    const std::map<NodeId, Table> truth = ReferenceResults(q);

    sim::DeviceSimulator device;
    QueryExecutor executor(device);
    for (Strategy strategy : {Strategy::kSerial, Strategy::kFused,
                              Strategy::kFission, Strategy::kFusedFission}) {
      ExecutorOptions options;
      options.strategy = strategy;
      options.chunk_count = 4;
      const ExecutionReport report = executor.Execute(q.graph, q.sources, options);
      for (NodeId sink : q.graph.Sinks()) {
        ASSERT_EQ(report.sink_results.count(sink), 1u)
            << ToString(strategy) << " missing sink " << sink;
        EXPECT_TRUE(relational::SameRowMultiset(report.sink_results.at(sink),
                                                truth.at(sink)))
            << ToString(strategy) << " sink " << sink << " trial " << trial
            << "\ngraph:\n" << q.graph.ToString();
      }
      EXPECT_GT(report.makespan, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace kf::core
