// MultiDeviceExecutor: shardability analysis, differential byte-identity of
// sharded execution against the scalar reference (all strategies, both split
// policies, with and without per-device faults), and the sharding edge cases
// (single device, more devices than rows, group-wide OOM host fallback).
#include "core/multi_device.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/random.h"
#include "core/select_chain.h"
#include "obs/metrics_registry.h"
#include "sim/device_group.h"
#include "sim/fault_injector.h"
#include "tests/core/byte_identical.h"
#include "tests/core/random_graph.h"

namespace kf::core {
namespace {

using relational::Expr;
using relational::OperatorDesc;
using relational::Table;
using relational::Value;

// Fact table {k, v}: keys land in [0, 30] so the dimension join always has
// matches; v is the selection column.
Table MakeFact(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  return RandomKV(rng, rows);
}

// Dimension {k, w}: one row per key, plus duplicated keys every 7th row so
// probe rows can fan out to several matches.
Table MakeDim(std::uint64_t seed) {
  Rng rng(seed);
  Table t(relational::Schema{{"k", relational::DataType::kInt64},
                             {"w", relational::DataType::kInt64}});
  for (std::int64_t k = 0; k <= 30; ++k) {
    t.AppendRow({Value::Int64(k), Value::Int64(rng.UniformInt(-9, 9))});
    if (k % 7 == 0) {
      t.AppendRow({Value::Int64(k), Value::Int64(rng.UniformInt(-9, 9))});
    }
  }
  return t;
}

// SELECT -> JOIN(broadcast dim) -> ARITH -> SELECT over one fact source:
// the fission-friendly probe-side chain sharding is built for.
RandomQuery MakeShardableJoinQuery(std::uint64_t seed, std::size_t rows) {
  RandomQuery q;
  const Table fact = MakeFact(rows, seed);
  const Table dim = MakeDim(seed + 1);
  const NodeId src = q.graph.AddSource("fact", fact.schema(), fact.row_count());
  const NodeId dim_src = q.graph.AddSource("dim", dim.schema(), dim.row_count());
  q.sources.emplace(src, fact);
  q.sources.emplace(dim_src, dim);

  NodeId node = q.graph.AddOperator(
      OperatorDesc::Select(Expr::Le(Expr::FieldRef(1), Expr::Lit(35))), src);
  node = q.graph.AddOperator(OperatorDesc::Join(0, 0), node, dim_src);
  node = q.graph.AddOperator(
      OperatorDesc::Arith(Expr::Add(Expr::FieldRef(1), Expr::FieldRef(2)), "s"),
      node);
  node = q.graph.AddOperator(
      OperatorDesc::Select(Expr::Ge(Expr::FieldRef(0), Expr::Lit(3))), node);
  return q;
}

// Plain SELECT chain over one source (no joins).
RandomQuery MakeShardableChain(std::uint64_t seed, std::size_t rows) {
  RandomQuery q;
  const Table fact = MakeFact(rows, seed);
  const NodeId src = q.graph.AddSource("fact", fact.schema(), fact.row_count());
  q.sources.emplace(src, fact);
  NodeId node = q.graph.AddOperator(
      OperatorDesc::Select(Expr::Le(Expr::FieldRef(1), Expr::Lit(30))), src);
  node = q.graph.AddOperator(
      OperatorDesc::Select(Expr::Ge(Expr::FieldRef(1), Expr::Lit(-30))), node);
  return q;
}

void ExpectAllSinksByteIdentical(const OpGraph& graph,
                                 const std::map<NodeId, Table>& actual,
                                 const std::map<NodeId, Table>& truth,
                                 const std::string& context) {
  for (NodeId sink : graph.Sinks()) {
    ASSERT_EQ(actual.count(sink), 1u) << context << " missing sink " << sink;
    EXPECT_TRUE(ByteIdentical(actual.at(sink), truth.at(sink)))
        << context << " sink " << sink;
  }
}

TEST(MultiDeviceShardable, AcceptsProbeSideChainsAndRejectsTheRest) {
  EXPECT_TRUE(MultiDeviceExecutor::Shardable(MakeShardableChain(1, 50).graph));
  EXPECT_TRUE(MultiDeviceExecutor::Shardable(MakeShardableJoinQuery(2, 50).graph));

  {
    // SORT in the chain: order depends on the whole input, not shardable.
    RandomQuery q = MakeShardableChain(3, 50);
    q.graph.AddOperator(OperatorDesc::Sort({0}), q.graph.Sinks().front());
    EXPECT_FALSE(MultiDeviceExecutor::Shardable(q.graph));
  }
  {
    // AGGREGATE folds across shards: not shardable.
    RandomQuery q = MakeShardableChain(4, 50);
    q.graph.AddOperator(
        OperatorDesc::Aggregate({}, {{relational::AggregateSpec::Func::kSum, 1, "s"}}),
        q.graph.Sinks().front());
    EXPECT_FALSE(MultiDeviceExecutor::Shardable(q.graph));
  }
  {
    // Build side fed by an operator (not a source): not shardable.
    RandomQuery q;
    const Table fact = MakeFact(40, 5);
    const Table dim = MakeDim(6);
    const NodeId src = q.graph.AddSource("fact", fact.schema(), 40);
    const NodeId dim_src = q.graph.AddSource("dim", dim.schema(), dim.row_count());
    const NodeId filtered = q.graph.AddOperator(
        OperatorDesc::Select(Expr::Ge(Expr::FieldRef(1), Expr::Lit(0))), dim_src);
    q.graph.AddOperator(OperatorDesc::Join(0, 0), src, filtered);
    EXPECT_FALSE(MultiDeviceExecutor::Shardable(q.graph));
  }
  {
    // Two sinks rooted at different sources: no single shard source.
    RandomQuery q;
    const Table a = MakeFact(30, 7);
    const Table b = MakeFact(30, 8);
    const NodeId sa = q.graph.AddSource("a", a.schema(), 30);
    const NodeId sb = q.graph.AddSource("b", b.schema(), 30);
    q.graph.AddOperator(
        OperatorDesc::Select(Expr::Ge(Expr::FieldRef(1), Expr::Lit(0))), sa);
    q.graph.AddOperator(
        OperatorDesc::Select(Expr::Ge(Expr::FieldRef(1), Expr::Lit(0))), sb);
    EXPECT_FALSE(MultiDeviceExecutor::Shardable(q.graph));
  }
  {
    // The shard source also feeds a build side: slicing it would drop
    // join matches, so the graph is rejected.
    RandomQuery q;
    const Table fact = MakeFact(30, 9);
    const NodeId src = q.graph.AddSource("fact", fact.schema(), 30);
    const NodeId sel = q.graph.AddOperator(
        OperatorDesc::Select(Expr::Ge(Expr::FieldRef(1), Expr::Lit(0))), src);
    q.graph.AddOperator(OperatorDesc::Join(0, 0), sel, src);
    EXPECT_FALSE(MultiDeviceExecutor::Shardable(q.graph));
  }
}

class MultiDeviceDifferential : public ::testing::TestWithParam<int> {};

TEST_P(MultiDeviceDifferential, ShardedByteIdenticalToScalarReference) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 733 + 17;
  for (const bool with_join : {false, true}) {
    const RandomQuery q = with_join ? MakeShardableJoinQuery(seed, 700)
                                    : MakeShardableChain(seed, 700);
    const std::map<NodeId, Table> truth = ReferenceResults(q);

    for (int devices : {1, 2, 3, 4}) {
      sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(devices);
      MultiDeviceExecutor executor(group);
      for (ShardSplit split :
           {ShardSplit::kStatic, ShardSplit::kBytesProportional}) {
        for (Strategy strategy : {Strategy::kSerial, Strategy::kFused,
                                  Strategy::kFission, Strategy::kFusedFission}) {
          MultiDeviceOptions options;
          options.base.strategy = strategy;
          options.base.chunk_count = 4;
          options.split = split;
          const MultiDeviceReport report =
              executor.Execute(q.graph, q.sources, options);
          const std::string context =
              std::string(with_join ? "join" : "chain") + "/" +
              ToString(strategy) + "/" + ToString(split) + "/devices=" +
              std::to_string(devices);
          EXPECT_EQ(report.devices_used, devices) << context;
          EXPECT_EQ(report.sharded, devices > 1) << context;
          EXPECT_EQ(report.combined.leaked_device_bytes, 0u) << context;
          ExpectAllSinksByteIdentical(q.graph, report.combined.sink_results,
                                      truth, context);
        }
      }
    }
  }
}

TEST_P(MultiDeviceDifferential, PerDeviceFaultsStayByteIdentical) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 191 + 3;
  const RandomQuery q = MakeShardableJoinQuery(seed, 600);
  const std::map<NodeId, Table> truth = ReferenceResults(q);

  sim::FaultConfig config;
  config.seed = seed;
  config.copy_fault_rate = 0.5;
  config.kernel_fault_rate = 0.4;
  const sim::FaultInjector faulty(config);

  sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(3);
  MultiDeviceExecutor executor(group);
  std::uint64_t dev1_faults = 0;
  for (Strategy strategy : {Strategy::kSerial, Strategy::kFission}) {
    // Faults only on device 1: its shard retries/degrades internally while
    // devices 0 and 2 run clean; the merged result must not change.
    MultiDeviceOptions options;
    options.base.strategy = strategy;
    options.base.chunk_count = 4;
    options.per_device_injectors = {nullptr, &faulty, nullptr};
    const MultiDeviceReport report = executor.Execute(q.graph, q.sources, options);
    ASSERT_EQ(report.shards.size(), 3u);
    EXPECT_EQ(report.shards[0].report.fault_count, 0u);
    EXPECT_EQ(report.shards[2].report.fault_count, 0u);
    dev1_faults += report.shards[1].report.fault_count;
    EXPECT_EQ(report.combined.leaked_device_bytes, 0u);
    ExpectAllSinksByteIdentical(q.graph, report.combined.sink_results, truth,
                                std::string("faulted/") + ToString(strategy));
  }
  // An individual strategy run can draw no faults; across both runs the
  // injector on dev1 must have fired at least once.
  EXPECT_GT(dev1_faults, 0u) << "fault injector on dev1 never fired";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiDeviceDifferential, ::testing::Range(0, 4));

TEST(MultiDeviceEdge, OneDeviceDegeneratesToPlainExecutor) {
  const RandomQuery q = MakeShardableJoinQuery(11, 500);
  sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(1);
  ExecutorOptions base;
  base.strategy = Strategy::kFission;

  QueryExecutor plain(group.device(0));
  const ExecutionReport expected = plain.Execute(q.graph, q.sources, base);

  MultiDeviceExecutor executor(group);
  MultiDeviceOptions options;
  options.base = base;
  const MultiDeviceReport report = executor.Execute(q.graph, q.sources, options);

  EXPECT_FALSE(report.sharded);
  EXPECT_EQ(report.devices_used, 1);
  EXPECT_DOUBLE_EQ(report.transfer_derating, 1.0);
  // Byte-for-byte the plain run: same simulated times, same bytes moved,
  // same results.
  EXPECT_DOUBLE_EQ(report.combined.makespan, expected.makespan);
  EXPECT_EQ(report.combined.h2d_bytes, expected.h2d_bytes);
  EXPECT_EQ(report.combined.d2h_bytes, expected.d2h_bytes);
  EXPECT_EQ(report.combined.kernel_launches, expected.kernel_launches);
  ExpectAllSinksByteIdentical(q.graph, report.combined.sink_results,
                              expected.sink_results, "degenerate");
}

TEST(MultiDeviceEdge, MoreDevicesThanRows) {
  // 4 devices, 3 rows: only 3 shards get rows; results still exact.
  RandomQuery q = MakeShardableChain(13, 3);
  const std::map<NodeId, Table> truth = ReferenceResults(q);
  sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(4);
  MultiDeviceExecutor executor(group);
  MultiDeviceOptions options;
  const MultiDeviceReport report = executor.Execute(q.graph, q.sources, options);
  EXPECT_LE(report.devices_used, 3);
  ExpectAllSinksByteIdentical(q.graph, report.combined.sink_results, truth,
                              "tiny input");
}

TEST(MultiDeviceEdge, ShardCountAboveSegmentCount) {
  // More fission segments than any shard has chunks to fill: pipelines
  // degenerate gracefully and results stay exact.
  const RandomQuery q = MakeShardableChain(17, 64);
  const std::map<NodeId, Table> truth = ReferenceResults(q);
  sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(4);
  MultiDeviceExecutor executor(group);
  MultiDeviceOptions options;
  options.base.strategy = Strategy::kFission;
  options.base.fission_segments = 48;  // far above 64/4 = 16 rows per shard
  const MultiDeviceReport report = executor.Execute(q.graph, q.sources, options);
  EXPECT_EQ(report.devices_used, 4);
  ExpectAllSinksByteIdentical(q.graph, report.combined.sink_results, truth,
                              "oversegmented");
}

TEST(MultiDeviceEdge, GroupWideOomFallsBackToHost) {
  // A broadcast join build table larger than every device's memory: no
  // shard can run on-device, so the whole query degrades to the host.
  RandomQuery q;
  const Table fact = MakeFact(2000, 19);
  Rng rng(23);
  Table dim(relational::Schema{{"k", relational::DataType::kInt64},
                               {"w", relational::DataType::kInt64}});
  for (std::int64_t r = 0; r < 8192; ++r) {
    dim.AppendRow({Value::Int64(r % 31), Value::Int64(rng.UniformInt(-9, 9))});
  }
  const NodeId src = q.graph.AddSource("fact", fact.schema(), fact.row_count());
  const NodeId dim_src = q.graph.AddSource("dim", dim.schema(), dim.row_count());
  q.sources.emplace(src, fact);
  q.sources.emplace(dim_src, dim);
  q.graph.AddOperator(OperatorDesc::Join(0, 0), src, dim_src);
  ASSERT_TRUE(MultiDeviceExecutor::Shardable(q.graph));
  const std::map<NodeId, Table> truth = ReferenceResults(q);

  sim::DeviceSpec tiny = sim::DeviceSpec::TinyTestDevice();
  tiny.mem_capacity_bytes = 64 * 1024;  // dim is 8192 * 16 B = 128 KiB
  obs::MetricsRegistry registry;
  sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(
      2, tiny, sim::PcieConfig{}, sim::RootComplexConfig{}, &registry);
  MultiDeviceExecutor executor(group);
  MultiDeviceOptions options;
  options.base.metrics = &registry;
  const MultiDeviceReport report = executor.Execute(q.graph, q.sources, options);

  EXPECT_TRUE(report.host_fallback);
  EXPECT_FALSE(report.sharded);
  EXPECT_TRUE(report.combined.ran_on_host);
  EXPECT_EQ(report.combined.leaked_device_bytes, 0u);
  EXPECT_GE(registry.GetCounter("sim.group.host_fallbacks").value(), 1u);
  // The persistent devices never held a byte of this query.
  EXPECT_EQ(group.device(0).memory().used(), 0u);
  EXPECT_EQ(group.device(1).memory().used(), 0u);
  ExpectAllSinksByteIdentical(q.graph, report.combined.sink_results, truth,
                              "host fallback");

  // With the fallback disabled the capacity error surfaces typed.
  options.allow_host_fallback = false;
  EXPECT_THROW(executor.Execute(q.graph, q.sources, options),
               kf::CapacityExceeded);
}

TEST(MultiDeviceEdge, DeviceSubsetAndValidation) {
  const RandomQuery q = MakeShardableChain(29, 300);
  const std::map<NodeId, Table> truth = ReferenceResults(q);
  sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(4);
  MultiDeviceExecutor executor(group);

  MultiDeviceOptions options;
  options.devices = {3, 1};  // shard order follows the caller's order
  const MultiDeviceReport report = executor.Execute(q.graph, q.sources, options);
  EXPECT_EQ(report.devices_used, 2);
  ASSERT_EQ(report.shards.size(), 2u);
  EXPECT_EQ(report.shards[0].device, 3);
  EXPECT_EQ(report.shards[1].device, 1);
  ExpectAllSinksByteIdentical(q.graph, report.combined.sink_results, truth,
                              "subset");

  options.devices = {0, 7};
  EXPECT_THROW(executor.Execute(q.graph, q.sources, options), kf::InvalidArgument);
  options.devices = {2, 2};
  EXPECT_THROW(executor.Execute(q.graph, q.sources, options), kf::InvalidArgument);
}

TEST(MultiDeviceEdge, EstimateOnlyScalesWithDevices) {
  // Timing-only strong scaling on the paper's SELECT chain: 4 devices must
  // beat 2 must beat 1 on a copy-dominated fission pipeline.
  const std::vector<double> selectivities{0.5, 0.5, 0.5, 0.5};
  const SelectChain chain = MakeSelectChain(40'000'000, selectivities);

  MultiDeviceOptions options;
  options.base.strategy = Strategy::kFusedFission;

  auto makespan_at = [&](int devices) {
    sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(devices);
    MultiDeviceExecutor executor(group);
    return executor.EstimateOnly(chain.graph, chain.expected_rows, options)
        .combined.makespan;
  };
  const double one = makespan_at(1);
  const double two = makespan_at(2);
  const double four = makespan_at(4);
  EXPECT_GT(one / two, 1.7);
  EXPECT_GT(one / four, 3.0);
}

}  // namespace
}  // namespace kf::core
