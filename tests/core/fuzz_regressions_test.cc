// Regression tests pinned from tools/graph_fuzz findings. Each test names
// the fuzzer seed that found it; the repro shape is rebuilt explicitly so
// the pin survives generator drift.
#include <gtest/gtest.h>

#include "core/query_executor.h"
#include "tests/core/byte_identical.h"
#include "tests/core/random_graph.h"

namespace kf::core {
namespace {

using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Table;

// graph_fuzz --seed=1214: a SELECT that keeps zero rows feeds a SORT
// barrier, and the fused cluster streaming the (empty) sort output has an
// interior member. ExecuteCluster over an empty primary input ran no chunks,
// so interior members got no realized row count and the executor's cost
// accounting crashed with an untyped std::map::at instead of executing.
TEST(FuzzRegressions, EmptyPrimaryWithInteriorFusedMemberExecutes) {
  Table data(relational::Schema{{"k", DataType::kInt64},
                                {"v", DataType::kInt64}});
  for (int r = 0; r < 64; ++r) {
    data.AppendRow({relational::Value::Int64(r % 30),
                    relational::Value::Int64(r)});
  }

  OpGraph graph;
  const NodeId src = graph.AddSource("src", data.schema(), data.row_count());
  // k in [0, 30), so k < 0 keeps nothing: the whole downstream is empty.
  const NodeId empty = graph.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(0)), "none"),
      src);
  const NodeId sorted =
      graph.AddOperator(OperatorDesc::Sort({0}, "sort"), empty);
  // Two selects past the barrier: they fuse into one cluster whose primary
  // input is the empty sort output, with `sel_a` as an interior member.
  const NodeId sel_a = graph.AddOperator(
      OperatorDesc::Select(Expr::Ge(Expr::FieldRef(0), Expr::Lit(0)), "sel_a"),
      sorted);
  const NodeId sel_b = graph.AddOperator(
      OperatorDesc::Select(Expr::Ge(Expr::FieldRef(1), Expr::Lit(0)), "sel_b"),
      sel_a);

  std::map<NodeId, Table> sources;
  sources.emplace(src, data);

  RandomQuery q;
  q.graph = graph;
  q.sources = sources;
  const std::map<NodeId, Table> truth = ReferenceResults(q);
  ASSERT_EQ(truth.at(sel_b).row_count(), 0u);

  sim::DeviceSimulator device;
  QueryExecutor executor(device);
  for (Strategy strategy : {Strategy::kSerial, Strategy::kFused,
                            Strategy::kFission, Strategy::kFusedFission}) {
    ExecutorOptions options;
    options.strategy = strategy;
    options.chunk_count = 4;
    const ExecutionReport report = executor.Execute(graph, sources, options);
    for (NodeId sink : graph.Sinks()) {
      ASSERT_EQ(report.sink_results.count(sink), 1u)
          << ToString(strategy) << " missing sink " << sink;
      EXPECT_TRUE(ByteIdentical(report.sink_results.at(sink), truth.at(sink)))
          << ToString(strategy) << " sink " << sink;
    }
  }
}

// The original finding, replayed through the generator: keeps the exact
// random DAG (empty select fanning out into a sort chain, a select, and a
// join) covered even if the hand-built shape above stops matching it.
TEST(FuzzRegressions, GeneratorSeed1214AllStrategiesByteIdentical) {
  const RandomQuery q = MakeRandomQuery(1214);
  const std::map<NodeId, Table> truth = ReferenceResults(q);

  sim::DeviceSimulator device;
  QueryExecutor executor(device);
  for (Strategy strategy : {Strategy::kSerial, Strategy::kFused,
                            Strategy::kFission, Strategy::kFusedFission}) {
    ExecutorOptions options;
    options.strategy = strategy;
    options.chunk_count = 4;
    const ExecutionReport report = executor.Execute(q.graph, q.sources, options);
    for (NodeId sink : q.graph.Sinks()) {
      ASSERT_EQ(report.sink_results.count(sink), 1u)
          << ToString(strategy) << " missing sink " << sink;
      EXPECT_TRUE(ByteIdentical(report.sink_results.at(sink), truth.at(sink)))
          << ToString(strategy) << " sink " << sink << "\ngraph:\n"
          << q.graph.ToString();
    }
  }
}

}  // namespace
}  // namespace kf::core
