// Fault injection through the executor: transient faults are retried at
// fission-segment granularity, persistent faults degrade to the host engine,
// deadlines become typed timeouts — and results stay byte-identical to the
// fault-free run in every recovered case.
#include <gtest/gtest.h>

#include "core/query_executor.h"
#include "core/select_chain.h"
#include "relational/csv.h"
#include "sim/fault_injector.h"

namespace kf::core {
namespace {

using relational::Table;

class ExecutorResilienceTest : public ::testing::Test {
 protected:
  sim::DeviceSimulator device_;
  QueryExecutor executor_{device_};
  obs::MetricsRegistry registry_;

  ExecutorOptions Options(Strategy strategy = Strategy::kFusedFission) {
    ExecutorOptions options;
    options.strategy = strategy;
    options.chunk_count = 16;
    options.fission_segments = 6;
    options.metrics = &registry_;
    return options;
  }

  static std::string SinkCsv(const ExecutionReport& report) {
    std::string out;
    for (const auto& [sink, table] : report.sink_results) {
      out += relational::ToCsv(table);
    }
    return out;
  }
};

TEST_F(ExecutorResilienceTest, ZeroRateInjectorChangesNothing) {
  SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5, 0.5});
  const std::map<NodeId, Table> sources{{chain.source,
                                         MakeUniformInt32Table(20000)}};
  const ExecutionReport clean =
      executor_.Execute(chain.graph, sources, Options());

  sim::FaultInjector injector(sim::FaultConfig{}, &registry_);
  ExecutorOptions options = Options();
  options.fault_injector = &injector;
  const ExecutionReport injected =
      executor_.Execute(chain.graph, sources, options);

  EXPECT_EQ(injected.fault_count, 0u);
  EXPECT_EQ(injected.retried_units, 0u);
  EXPECT_FALSE(injected.degraded);
  EXPECT_DOUBLE_EQ(injected.makespan, clean.makespan);
  EXPECT_EQ(SinkCsv(injected), SinkCsv(clean));
}

TEST_F(ExecutorResilienceTest, TransientFaultsRetrySegmentsAndPreserveResults) {
  SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5, 0.5});
  const std::map<NodeId, Table> sources{{chain.source,
                                         MakeUniformInt32Table(20000)}};
  const ExecutionReport clean =
      executor_.Execute(chain.graph, sources, Options());

  sim::FaultConfig config;
  config.seed = 7;
  config.copy_fault_rate = 0.3;
  config.kernel_fault_rate = 0.3;
  sim::FaultInjector injector(config, &registry_);
  ExecutorOptions options = Options();
  options.fault_injector = &injector;
  const ExecutionReport report =
      executor_.Execute(chain.graph, sources, options);

  EXPECT_GT(report.fault_count, 0u);
  EXPECT_GT(report.retried_units, 0u);
  EXPECT_GE(report.retry_attempts, report.retried_units);
  EXPECT_GT(report.backoff_time, 0.0);
  // Recovery costs simulated time but never correctness.
  EXPECT_GT(report.makespan, clean.makespan);
  EXPECT_EQ(SinkCsv(report), SinkCsv(clean));
  // No reservation leaks across the fault paths.
  EXPECT_EQ(report.leaked_device_bytes, 0u);
}

TEST_F(ExecutorResilienceTest, RetriesAreDeterministicPerSeed) {
  SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5, 0.5});
  const std::map<NodeId, Table> sources{{chain.source,
                                         MakeUniformInt32Table(20000)}};
  sim::FaultConfig config;
  config.seed = 11;
  config.kernel_fault_rate = 0.25;

  auto run_once = [&] {
    sim::FaultInjector injector(config, &registry_);  // fresh epoch counter
    ExecutorOptions options = Options();
    options.fault_injector = &injector;
    return executor_.Execute(chain.graph, sources, options);
  };
  const ExecutionReport a = run_once();
  const ExecutionReport b = run_once();
  EXPECT_EQ(a.fault_count, b.fault_count);
  EXPECT_EQ(a.retry_attempts, b.retry_attempts);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST_F(ExecutorResilienceTest, PersistentFaultsDegradeToHost) {
  SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5, 0.5});
  const std::map<NodeId, Table> sources{{chain.source,
                                         MakeUniformInt32Table(20000)}};
  const ExecutionReport clean =
      executor_.Execute(chain.graph, sources, Options());

  sim::FaultConfig config;
  config.seed = 1;
  config.kernel_fault_rate = 1.0;  // every kernel fails, retries included
  sim::FaultInjector injector(config, &registry_);
  ExecutorOptions options = Options();
  options.fault_injector = &injector;
  options.resilience.max_retries = 2;
  const ExecutionReport report =
      executor_.Execute(chain.graph, sources, options);

  EXPECT_TRUE(report.degraded);
  EXPECT_GT(report.degraded_clusters, 0u);
  EXPECT_EQ(SinkCsv(report), SinkCsv(clean));
  EXPECT_EQ(report.leaked_device_bytes, 0u);
  EXPECT_GE(registry_.GetCounter("resilience.degraded_clusters",
                                 {{"strategy", "fusion+fission"}})
                .value(),
            report.degraded_clusters);
}

TEST_F(ExecutorResilienceTest, DegradeDisabledThrowsTypedDeviceFault) {
  SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5});
  const std::map<NodeId, Table> sources{{chain.source,
                                         MakeUniformInt32Table(20000)}};
  sim::FaultConfig config;
  config.seed = 1;
  config.kernel_fault_rate = 1.0;
  sim::FaultInjector injector(config, &registry_);
  ExecutorOptions options = Options();
  options.fault_injector = &injector;
  options.resilience.max_retries = 1;
  options.resilience.degrade_to_host = false;
  try {
    (void)executor_.Execute(chain.graph, sources, options);
    FAIL() << "expected kf::DeviceFault";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeviceFault);
  }
}

TEST_F(ExecutorResilienceTest, DeadlineThrowsTypedTimeout) {
  SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5});
  const std::map<NodeId, Table> sources{{chain.source,
                                         MakeUniformInt32Table(20000)}};
  ExecutorOptions options = Options();
  options.resilience.deadline = 1e-12;  // no run fits in a picosecond
  try {
    (void)executor_.Execute(chain.graph, sources, options);
    FAIL() << "expected kf::Timeout";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTimeout);
  }
}

TEST_F(ExecutorResilienceTest, ForceHostRunsEverythingOnCpu) {
  SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5, 0.5});
  const std::map<NodeId, Table> sources{{chain.source,
                                         MakeUniformInt32Table(20000)}};
  const ExecutionReport clean =
      executor_.Execute(chain.graph, sources, Options());

  ExecutorOptions options = Options();
  options.force_host = true;
  const ExecutionReport report =
      executor_.Execute(chain.graph, sources, options);

  EXPECT_TRUE(report.ran_on_host);
  EXPECT_EQ(report.h2d_bytes, 0u);  // nothing crossed PCIe
  EXPECT_EQ(report.d2h_bytes, 0u);
  EXPECT_EQ(report.peak_device_bytes, 0u);
  EXPECT_GT(report.makespan, 0.0);
  EXPECT_EQ(SinkCsv(report), SinkCsv(clean));  // byte-identical
  EXPECT_EQ(registry_.GetCounter("resilience.host_runs",
                                 {{"strategy", "fusion+fission"}})
                .value(),
            1u);
}

}  // namespace
}  // namespace kf::core
