// Shared random operator-graph generator for property/differential tests.
//
// Generates DAGs of streaming-friendly operators (SELECT, SORT, ARITH, JOIN)
// over int64 KV relations, with bound source tables — the workload used by
// the planner property tests, the strategy differential sweep, and the
// scheduler stress tests. Deterministic per seed.
#ifndef KF_TESTS_CORE_RANDOM_GRAPH_H_
#define KF_TESTS_CORE_RANDOM_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/op_graph.h"
#include "relational/operators.h"
#include "relational/table.h"

namespace kf::core {

// A random DAG of streaming-friendly operators over int64 KV relations.
struct RandomQuery {
  OpGraph graph;
  std::map<NodeId, relational::Table> sources;
};

inline relational::Table RandomKV(Rng& rng, std::size_t rows) {
  relational::Table t(relational::Schema{{"k", relational::DataType::kInt64},
                                         {"v", relational::DataType::kInt64}});
  for (std::size_t r = 0; r < rows; ++r) {
    t.AppendRow({relational::Value::Int64(rng.UniformInt(0, 30)),
                 relational::Value::Int64(rng.UniformInt(-50, 50))});
  }
  return t;
}

inline RandomQuery MakeRandomQuery(std::uint64_t seed) {
  using relational::DataType;
  using relational::Expr;
  using relational::OperatorDesc;

  Rng rng(seed);
  RandomQuery q;
  std::vector<NodeId> pool;  // nodes with 2-field schemas, usable as inputs

  const int source_count = static_cast<int>(rng.UniformInt(1, 3));
  for (int s = 0; s < source_count; ++s) {
    const std::size_t rows = static_cast<std::size_t>(rng.UniformInt(50, 400));
    const NodeId src = q.graph.AddSource("src" + std::to_string(s),
                                         RandomKV(rng, 1).schema(), rows);
    q.sources.emplace(src, RandomKV(rng, rows));
    pool.push_back(src);
  }

  const int op_count = static_cast<int>(rng.UniformInt(2, 8));
  for (int i = 0; i < op_count; ++i) {
    const NodeId input = pool[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(pool.size()) - 1))];
    const bool two_fields = q.graph.node(input).schema.field_count() == 2;
    switch (rng.UniformInt(0, two_fields ? 4 : 2)) {
      case 0:
        pool.push_back(q.graph.AddOperator(
            OperatorDesc::Select(
                Expr::Lt(Expr::FieldRef(0), Expr::Lit(rng.UniformInt(0, 30))),
                "sel" + std::to_string(i)),
            input));
        break;
      case 1:
        pool.push_back(q.graph.AddOperator(
            OperatorDesc::Select(
                Expr::Ge(Expr::FieldRef(static_cast<int>(
                             rng.UniformInt(0, static_cast<std::int64_t>(
                                                   q.graph.node(input)
                                                       .schema.field_count()) -
                                                   1))),
                         Expr::Lit(rng.UniformInt(-20, 20))),
                "sel" + std::to_string(i)),
            input));
        break;
      case 2: {
        // Sort: a barrier in the middle of the DAG.
        pool.push_back(q.graph.AddOperator(
            OperatorDesc::Sort({0}, "sort" + std::to_string(i)), input));
        break;
      }
      case 3: {
        pool.push_back(q.graph.AddOperator(
            OperatorDesc::Arith(Expr::Add(Expr::FieldRef(0), Expr::FieldRef(1)),
                                "sum" + std::to_string(i), DataType::kInt64),
            input));
        break;
      }
      case 4: {
        // Join against a fresh small build table.
        const std::size_t rows = static_cast<std::size_t>(rng.UniformInt(5, 40));
        const NodeId build = q.graph.AddSource("build" + std::to_string(i),
                                               RandomKV(rng, 1).schema(), rows);
        q.sources.emplace(build, RandomKV(rng, rows));
        pool.push_back(q.graph.AddOperator(
            OperatorDesc::Join(0, 0, "join" + std::to_string(i)), input, build));
        break;
      }
    }
  }
  return q;
}

// Operator-at-a-time scalar reference: plain ApplyOperator over the graph in
// topological order. Returns every node's output keyed by node id.
inline std::map<NodeId, relational::Table> ReferenceResults(
    const RandomQuery& q) {
  std::map<NodeId, relational::Table> truth;
  for (NodeId id : q.graph.TopologicalOrder()) {
    const OpNode& node = q.graph.node(id);
    if (node.is_source) {
      truth.emplace(id, q.sources.at(id));
      continue;
    }
    const relational::Table* right =
        node.inputs.size() > 1 ? &truth.at(node.inputs[1]) : nullptr;
    truth.emplace(id, relational::ApplyOperator(node.desc,
                                                truth.at(node.inputs[0]), right));
  }
  return truth;
}

}  // namespace kf::core

#endif  // KF_TESTS_CORE_RANDOM_GRAPH_H_
