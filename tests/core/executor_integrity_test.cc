// The data-integrity layer end to end: silent bit-flips injected on copies
// and kernel outputs are caught by checksummed transfers + sampled audits,
// healed by verified re-execution (byte-identical to the clean run, no
// reservation leaks), surface as typed kf::DataCorruption when persistent,
// and — with verification off — produce the silent wrong answers the report
// owns up to in corruption_undetected.
#include <gtest/gtest.h>

#include "core/integrity.h"
#include "core/multi_device.h"
#include "core/query_executor.h"
#include "core/select_chain.h"
#include "relational/csv.h"
#include "sim/device_group.h"
#include "sim/fault_injector.h"
#include "tests/core/byte_identical.h"
#include "tests/core/random_graph.h"

namespace kf::core {
namespace {

using relational::Table;

IntegrityOptions FullVerification() {
  IntegrityOptions integrity;
  integrity.verify_transfers = true;
  integrity.audit_fraction = 1.0;
  return integrity;
}

sim::FaultConfig CorruptAll(double rate, std::uint64_t seed) {
  sim::FaultConfig config;
  config.seed = seed;
  config.corrupt_h2d_rate = rate;
  config.corrupt_d2h_rate = rate;
  config.corrupt_kernel_rate = rate;
  return config;
}

class ExecutorIntegrityTest : public ::testing::Test {
 protected:
  sim::DeviceSimulator device_;
  QueryExecutor executor_{device_};
  obs::MetricsRegistry registry_;

  ExecutorOptions Options(Strategy strategy = Strategy::kFusedFission) {
    ExecutorOptions options;
    options.strategy = strategy;
    options.chunk_count = 16;
    options.fission_segments = 6;
    options.metrics = &registry_;
    return options;
  }

  static std::string SinkCsv(const ExecutionReport& report) {
    std::string out;
    for (const auto& [sink, table] : report.sink_results) {
      out += relational::ToCsv(table);
    }
    return out;
  }
};

TEST_F(ExecutorIntegrityTest, VerificationOnCleanRunChangesNoBytes) {
  SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5, 0.5});
  const std::map<NodeId, Table> sources{{chain.source,
                                         MakeUniformInt32Table(20000)}};
  const ExecutionReport clean =
      executor_.Execute(chain.graph, sources, Options());

  ExecutorOptions options = Options();
  options.integrity = FullVerification();
  const ExecutionReport verified =
      executor_.Execute(chain.graph, sources, options);

  EXPECT_EQ(SinkCsv(verified), SinkCsv(clean));
  EXPECT_EQ(verified.corrupted_commands, 0u);
  EXPECT_EQ(verified.corruption_detected, 0u);
  EXPECT_EQ(verified.corruption_undetected, 0u);
  EXPECT_EQ(verified.corruption_reexecutions, 0u);
  EXPECT_FALSE(verified.silent_corruption);
  EXPECT_GT(verified.audited_clusters, 0u);
  // Verification work is accounted (crc + audit commands), not free.
  EXPECT_GT(verified.integrity_time, 0.0);
  EXPECT_GT(verified.makespan, clean.makespan);
}

TEST_F(ExecutorIntegrityTest, CorruptionDetectedAndHealedByteIdentical) {
  SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5, 0.5});
  const std::map<NodeId, Table> sources{{chain.source,
                                         MakeUniformInt32Table(20000)}};
  const ExecutionReport clean =
      executor_.Execute(chain.graph, sources, Options());

  sim::FaultInjector injector(CorruptAll(0.2, 9), &registry_);
  ExecutorOptions options = Options();
  options.fault_injector = &injector;
  options.integrity = FullVerification();
  const ExecutionReport report =
      executor_.Execute(chain.graph, sources, options);

  EXPECT_GT(report.corrupted_commands, 0u);
  EXPECT_GT(report.corruption_detected, 0u);
  EXPECT_EQ(report.corruption_undetected, 0u);
  EXPECT_GT(report.corruption_reexecutions, 0u);
  EXPECT_FALSE(report.silent_corruption);
  // Healed means healed: the bytes match the corruption-free run exactly.
  EXPECT_EQ(SinkCsv(report), SinkCsv(clean));
  EXPECT_EQ(report.leaked_device_bytes, 0u);
  EXPECT_GT(registry_.GetCounter("integrity.detected",
                                 {{"strategy", "fusion+fission"}})
                .value(),
            0u);
}

TEST_F(ExecutorIntegrityTest, SingleCorruptSegmentIsDetectedAndHealed) {
  // Deterministic seed search for a run where exactly ONE command corrupts:
  // detection must localize it (one detected, nothing undetected) and heal
  // only that unit instead of failing the query.
  SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5, 0.5});
  const std::map<NodeId, Table> sources{{chain.source,
                                         MakeUniformInt32Table(20000)}};
  const ExecutionReport clean =
      executor_.Execute(chain.graph, sources, Options());

  bool found = false;
  for (std::uint64_t seed = 1; seed <= 64 && !found; ++seed) {
    sim::FaultInjector injector(CorruptAll(0.01, seed), &registry_);
    ExecutorOptions options = Options();
    options.fault_injector = &injector;
    options.integrity = FullVerification();
    const ExecutionReport report =
        executor_.Execute(chain.graph, sources, options);
    if (report.corrupted_commands != 1) continue;
    found = true;
    EXPECT_EQ(report.corruption_detected, 1u) << "seed " << seed;
    EXPECT_EQ(report.corruption_undetected, 0u) << "seed " << seed;
    EXPECT_GE(report.corruption_reexecutions, 1u) << "seed " << seed;
    EXPECT_EQ(SinkCsv(report), SinkCsv(clean)) << "seed " << seed;
    EXPECT_EQ(report.leaked_device_bytes, 0u) << "seed " << seed;
  }
  ASSERT_TRUE(found) << "no seed in [1,64] produced exactly one corruption";
}

TEST_F(ExecutorIntegrityTest, ChecksumsOffMeansSilentWrongAnswer) {
  // The control experiment: the same injected flips with verification off
  // reach the caller as wrong bytes — and the report admits it.
  SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5, 0.5});
  const std::map<NodeId, Table> sources{{chain.source,
                                         MakeUniformInt32Table(20000)}};
  const ExecutionReport clean =
      executor_.Execute(chain.graph, sources, Options());

  sim::FaultConfig config;
  config.seed = 3;
  config.corrupt_kernel_rate = 1.0;
  sim::FaultInjector injector(config, &registry_);
  ExecutorOptions options = Options();
  options.fault_injector = &injector;
  const ExecutionReport report =
      executor_.Execute(chain.graph, sources, options);

  EXPECT_GT(report.corrupted_commands, 0u);
  EXPECT_EQ(report.corruption_detected, 0u);
  EXPECT_GT(report.corruption_undetected, 0u);
  EXPECT_TRUE(report.silent_corruption);
  EXPECT_NE(SinkCsv(report), SinkCsv(clean));  // the wrong answer is real
}

TEST_F(ExecutorIntegrityTest, PersistentCorruptionThrowsTypedDataCorruption) {
  SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5});
  const std::map<NodeId, Table> sources{{chain.source,
                                         MakeUniformInt32Table(20000)}};
  sim::FaultConfig config;
  config.seed = 1;
  config.corrupt_kernel_rate = 1.0;  // every attempt corrupts again
  sim::FaultInjector injector(config, &registry_);
  ExecutorOptions options = Options();
  options.fault_injector = &injector;
  options.integrity = FullVerification();
  options.integrity.max_reexecutions = 2;
  options.resilience.degrade_to_host = false;
  try {
    (void)executor_.Execute(chain.graph, sources, options);
    FAIL() << "expected kf::DataCorruption";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDataCorruption);
  }
}

TEST_F(ExecutorIntegrityTest, PersistentCorruptionDegradesToHost) {
  SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5, 0.5});
  const std::map<NodeId, Table> sources{{chain.source,
                                         MakeUniformInt32Table(20000)}};
  const ExecutionReport clean =
      executor_.Execute(chain.graph, sources, Options());

  sim::FaultConfig config;
  config.seed = 1;
  config.corrupt_kernel_rate = 1.0;
  sim::FaultInjector injector(config, &registry_);
  ExecutorOptions options = Options();
  options.fault_injector = &injector;
  options.integrity = FullVerification();
  options.integrity.max_reexecutions = 2;
  const ExecutionReport report =
      executor_.Execute(chain.graph, sources, options);

  // The host engine never corrupts: degrading washes the corruption out.
  EXPECT_TRUE(report.degraded);
  EXPECT_GT(report.degraded_clusters, 0u);
  EXPECT_FALSE(report.silent_corruption);
  EXPECT_EQ(SinkCsv(report), SinkCsv(clean));
  EXPECT_EQ(report.leaked_device_bytes, 0u);
}

TEST_F(ExecutorIntegrityTest, AuditChecksumsMatchDeliveredSinks) {
  SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5, 0.5});
  const std::map<NodeId, Table> sources{{chain.source,
                                         MakeUniformInt32Table(20000)}};
  ExecutorOptions options = Options();
  options.integrity = FullVerification();
  const ExecutionReport report =
      executor_.Execute(chain.graph, sources, options);

  ASSERT_FALSE(report.audit_checksums.empty());
  std::size_t compared = 0;
  for (const auto& [node, digest] : report.audit_checksums) {
    auto it = report.sink_results.find(node);
    if (it == report.sink_results.end()) continue;
    EXPECT_EQ(ChecksumTable(it->second), digest) << "node " << node;
    ++compared;
  }
  EXPECT_GT(compared, 0u);
}

TEST_F(ExecutorIntegrityTest, FlipRandomBitChangesExactlyOneTable) {
  Table table = MakeUniformInt32Table(1000);
  const std::uint64_t before = ChecksumTable(table);
  ASSERT_TRUE(FlipRandomBit(table, 42));
  EXPECT_NE(ChecksumTable(table), before);
  // Flipping with the same seed restores the original bit.
  ASSERT_TRUE(FlipRandomBit(table, 42));
  EXPECT_EQ(ChecksumTable(table), before);

  Table empty(table.schema());
  EXPECT_FALSE(FlipRandomBit(empty, 42));  // nothing to corrupt
}

TEST(MultiDeviceIntegrity, ShardedCorruptionDetectedAndHealed) {
  obs::MetricsRegistry registry;
  // A shardable random graph (same generator the fuzzer uses).
  RandomQuery q;
  for (std::uint64_t seed = 1;; ++seed) {
    ASSERT_LT(seed, 200u) << "no shardable random graph found";
    q = MakeRandomQuery(seed);
    if (MultiDeviceExecutor::Shardable(q.graph)) break;
  }
  const std::map<NodeId, Table> truth = ReferenceResults(q);

  sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(
      2, sim::DeviceSpec{}, sim::PcieConfig{}, sim::RootComplexConfig{},
      &registry);
  MultiDeviceExecutor multi(group);

  std::size_t total_corrupted = 0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    sim::FaultInjector injector(CorruptAll(0.1, seed), &registry);
    MultiDeviceOptions options;
    options.base.strategy = Strategy::kFusedFission;
    options.base.chunk_count = 4;
    options.base.metrics = &registry;
    options.base.fault_injector = &injector;
    options.base.integrity = FullVerification();
    const MultiDeviceReport report =
        multi.Execute(q.graph, q.sources, options);
    total_corrupted += report.combined.corrupted_commands;
    EXPECT_EQ(report.combined.corruption_undetected, 0u) << "seed " << seed;
    EXPECT_FALSE(report.combined.silent_corruption) << "seed " << seed;
    for (NodeId sink : q.graph.Sinks()) {
      ASSERT_EQ(report.combined.sink_results.count(sink), 1u)
          << "seed " << seed;
      EXPECT_TRUE(ByteIdentical(report.combined.sink_results.at(sink),
                                truth.at(sink)))
          << "seed " << seed << " sink " << sink;
    }
    // The host gather was verified: integrity time includes it.
    if (options.base.integrity.verify_transfers) {
      EXPECT_GT(report.combined.integrity_time, 0.0) << "seed " << seed;
    }
  }
  // Across 16 seeded runs at 10% per-command corruption, flips happened.
  EXPECT_GT(total_corrupted, 0u);
}

}  // namespace
}  // namespace kf::core
