#include "core/operator_cost.h"

#include <gtest/gtest.h>

#include "core/fusion_planner.h"
#include "sim/device_simulator.h"

namespace kf::core {
namespace {

using relational::AggregateSpec;
using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;

Schema I32() { return Schema{{"v", DataType::kInt32}}; }

RealizedSizes SelectSizes(std::uint64_t n, double selectivity) {
  RealizedSizes s;
  s.input_rows = n;
  s.input_row_bytes = 4;
  s.output_rows = static_cast<std::uint64_t>(n * selectivity);
  s.output_row_bytes = 4;
  return s;
}

struct ChainFixture {
  OpGraph graph;
  NodeId src, s1, s2;
  FusionPlan plan;
};

ChainFixture MakeChain() {
  ChainFixture f;
  f.src = f.graph.AddSource("in", I32(), 0);
  f.s1 = f.graph.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(5)), "s1"), f.src);
  f.s2 = f.graph.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(2)), "s2"), f.s1);
  f.plan = PlanFusion(f.graph);
  return f;
}

TEST(OperatorCost, UnfusedSelectIsComputePlusGather) {
  OperatorCostModel model;
  ChainFixture f = MakeChain();
  const auto profiles = model.UnfusedProfiles(f.graph.node(f.s1), SelectSizes(1000000, 0.5));
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].global_bytes_read, 4000000u);
  EXPECT_EQ(profiles[0].global_bytes_written, 2000000u);
  EXPECT_EQ(profiles[1].global_bytes_read, 2000000u);
  EXPECT_EQ(profiles[1].global_bytes_written, 2000000u);
}

TEST(OperatorCost, FusedChainEliminatesIntermediateTraffic) {
  OperatorCostModel model;
  ChainFixture f = MakeChain();
  ASSERT_EQ(f.plan.clusters.size(), 1u);
  std::vector<RealizedSizes> members = {SelectSizes(1000000, 0.5),
                                        SelectSizes(500000, 0.5)};
  const auto fused = model.FusedProfiles(f.graph, f.plan.clusters[0], members);
  ASSERT_EQ(fused.size(), 2u);  // one compute + one gather
  // Reads the input once; writes only the final 25%.
  EXPECT_EQ(fused[0].global_bytes_read, 4000000u);
  EXPECT_EQ(fused[0].global_bytes_written, 1000000u);

  // Total fused traffic is well below the unfused chain's.
  auto total_traffic = [](const std::vector<sim::KernelProfile>& profiles) {
    std::uint64_t t = 0;
    for (const auto& p : profiles) t += p.global_bytes_read + p.global_bytes_written;
    return t;
  };
  std::uint64_t unfused_traffic =
      total_traffic(model.UnfusedProfiles(f.graph.node(f.s1), members[0])) +
      total_traffic(model.UnfusedProfiles(f.graph.node(f.s2), members[1]));
  EXPECT_LT(total_traffic(fused), unfused_traffic / 2);
}

TEST(OperatorCost, FusedKernelCarriesClusterRegisterPressure) {
  OperatorCostModel model;
  ChainFixture f = MakeChain();
  std::vector<RealizedSizes> members = {SelectSizes(1000, 0.5), SelectSizes(500, 0.5)};
  const auto fused = model.FusedProfiles(f.graph, f.plan.clusters[0], members);
  EXPECT_EQ(fused[0].registers_per_thread,
            std::max(16, f.plan.clusters[0].register_estimate));
}

TEST(OperatorCost, SortHasMultiplePasses) {
  OperatorCostModel model;
  OpGraph g;
  const NodeId src = g.AddSource("in", I32(), 0);
  const NodeId sort = g.AddOperator(OperatorDesc::Sort({0}), src);
  RealizedSizes s = SelectSizes(1000000, 1.0);
  const auto profiles = model.UnfusedProfiles(g.node(sort), s);
  EXPECT_EQ(profiles.size(), static_cast<std::size_t>(model.config().sort_passes));
  // Radix sort traffic: passes x (read + write everything).
  std::uint64_t traffic = 0;
  for (const auto& p : profiles) traffic += p.global_bytes_read + p.global_bytes_written;
  EXPECT_EQ(traffic,
            static_cast<std::uint64_t>(model.config().sort_passes) * 2 * 4000000);
}

TEST(OperatorCost, AggregationWritesOnlyPartials) {
  OperatorCostModel model;
  OpGraph g;
  const NodeId src = g.AddSource("in", I32(), 0);
  const NodeId agg = g.AddOperator(
      OperatorDesc::Aggregate({}, {AggregateSpec{AggregateSpec::Func::kSum, 0, "s"}}),
      src);
  RealizedSizes s;
  s.input_rows = 1000000;
  s.input_row_bytes = 4;
  s.output_rows = 1;
  s.output_row_bytes = 8;
  const auto profiles = model.UnfusedProfiles(g.node(agg), s);
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_LT(profiles[0].global_bytes_written, 100000u);  // partials only
}

TEST(OperatorCost, JoinChargesBuildSideAndRandomAccess) {
  OperatorCostModel model;
  OpGraph g;
  const NodeId a = g.AddSource("a", I32(), 0);
  const NodeId b = g.AddSource("b", I32(), 0);
  const NodeId j = g.AddOperator(OperatorDesc::Join(), a, b);
  RealizedSizes s = SelectSizes(1000000, 1.0);
  s.build_bytes = 400000;
  const auto profiles = model.UnfusedProfiles(g.node(j), s);
  EXPECT_EQ(profiles[0].global_bytes_read, 4000000u + 400000u);
  EXPECT_EQ(profiles[0].memory_access_efficiency,
            model.config().probe_access_efficiency);
}

TEST(OperatorCost, SizeMismatchThrows) {
  OperatorCostModel model;
  ChainFixture f = MakeChain();
  std::vector<RealizedSizes> wrong = {SelectSizes(10, 0.5)};  // cluster has 2 members
  EXPECT_THROW(model.FusedProfiles(f.graph, f.plan.clusters[0], wrong), kf::Error);
}

}  // namespace
}  // namespace kf::core
