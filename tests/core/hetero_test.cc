#include "core/hetero.h"

#include <gtest/gtest.h>

#include "core/select_chain.h"

namespace kf::core {
namespace {

struct Fixture {
  SelectChain chain = MakeSelectChain(1000, std::vector<double>{0.5, 0.5});
  FusionPlan plan = PlanFusion(chain.graph);
  sim::DeviceSimulator device;
  HeterogeneousScheduler scheduler{device};

  std::vector<RealizedSizes> Sizes(std::uint64_t n) const {
    RealizedSizes s1{n, 4, n / 2, 4, 0};
    RealizedSizes s2{n / 2, 4, n / 4, 4, 0};
    return {s1, s2};
  }
};

TEST(Hetero, TinyClustersRunOnTheHost) {
  Fixture f;
  const PlacementDecision d = f.scheduler.Decide(
      f.chain.graph, f.plan.clusters[0], f.Sizes(10'000));
  EXPECT_EQ(d.placement, Placement::kHost);
  EXPECT_LT(d.host_time, d.device_time);
}

TEST(Hetero, LargeStreamingClustersRunOnTheDevice) {
  Fixture f;
  const PlacementDecision d = f.scheduler.Decide(
      f.chain.graph, f.plan.clusters[0], f.Sizes(200'000'000));
  EXPECT_EQ(d.placement, Placement::kDevice);
  EXPECT_LT(d.device_time, d.host_time);
}

TEST(Hetero, CrossoverIsMonotone) {
  // Once the device wins, it keeps winning as the data grows.
  Fixture f;
  bool device_seen = false;
  for (std::uint64_t n = 1'000; n <= 1'000'000'000ull; n *= 10) {
    const PlacementDecision d =
        f.scheduler.Decide(f.chain.graph, f.plan.clusters[0], f.Sizes(n));
    if (device_seen) {
      EXPECT_EQ(d.placement, Placement::kDevice) << "n=" << n;
    }
    if (d.placement == Placement::kDevice) device_seen = true;
  }
  EXPECT_TRUE(device_seen);
}

TEST(Hetero, DeviceResidentInputFavorsTheDevice) {
  // If the input is already in device memory, host placement must pay a D2H
  // download first — the Q1 arithmetic block stays on the device.
  Fixture f;
  const auto sizes = f.Sizes(5'000'000);
  const PlacementDecision host_input = f.scheduler.Decide(
      f.chain.graph, f.plan.clusters[0], sizes, /*input_on_host=*/true);
  const PlacementDecision device_input = f.scheduler.Decide(
      f.chain.graph, f.plan.clusters[0], sizes, /*input_on_host=*/false);
  EXPECT_LT(device_input.device_time, host_input.device_time);
  EXPECT_GT(device_input.host_time, host_input.host_time);
}

TEST(Hetero, OutputDestinationShiftsTheBalance) {
  Fixture f;
  const auto sizes = f.Sizes(50'000'000);
  const PlacementDecision to_host = f.scheduler.Decide(
      f.chain.graph, f.plan.clusters[0], sizes, true, /*output_to_host=*/true);
  const PlacementDecision stay_device = f.scheduler.Decide(
      f.chain.graph, f.plan.clusters[0], sizes, true, /*output_to_host=*/false);
  EXPECT_LT(stay_device.device_time, to_host.device_time);
}

TEST(Hetero, SizeMismatchThrows) {
  Fixture f;
  EXPECT_THROW(
      f.scheduler.Decide(f.chain.graph, f.plan.clusters[0], {RealizedSizes{}}),
      kf::Error);
}

}  // namespace
}  // namespace kf::core
