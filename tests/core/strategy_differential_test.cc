// Differential sweep: random operator graphs executed under every
// ExecutionStrategy — and through the QueryScheduler serving path — must
// produce byte-identical results to the operator-at-a-time scalar reference.
// The property tests check multiset equality; this sweep pins down row order
// and exact values too, so a strategy that silently reorders or perturbs
// rows fails here even when the multiset still matches.
#include <gtest/gtest.h>

#include "core/query_executor.h"
#include "server/query_scheduler.h"
#include "tests/core/random_graph.h"

namespace kf::core {
namespace {

using relational::Row;
using relational::Table;

// Exact equality: same schema, same rows, same order, same bytes per value.
::testing::AssertionResult ByteIdentical(const Table& actual,
                                         const Table& expected) {
  if (actual.schema().ToString() != expected.schema().ToString()) {
    return ::testing::AssertionFailure()
           << "schema mismatch: " << actual.schema().ToString() << " vs "
           << expected.schema().ToString();
  }
  if (actual.row_count() != expected.row_count()) {
    return ::testing::AssertionFailure()
           << "row count mismatch: " << actual.row_count() << " vs "
           << expected.row_count();
  }
  const std::vector<Row> a = actual.Rows();
  const std::vector<Row> b = expected.Rows();
  for (std::size_t r = 0; r < a.size(); ++r) {
    for (std::size_t f = 0; f < a[r].size(); ++f) {
      const relational::Value& va = a[r][f];
      const relational::Value& vb = b[r][f];
      // Stricter than Value::operator== (which coerces): require the same
      // type tag and the same stored payload.
      if (va.type != vb.type || va.i != vb.i || va.f != vb.f) {
        return ::testing::AssertionFailure()
               << "row " << r << " field " << f << ": " << va.ToString()
               << " vs " << vb.ToString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

class StrategyDifferential : public ::testing::TestWithParam<int> {};

TEST_P(StrategyDifferential, EveryStrategyByteIdenticalToScalarReference) {
  for (int trial = 0; trial < 4; ++trial) {
    const RandomQuery q = MakeRandomQuery(
        static_cast<std::uint64_t>(GetParam()) * 1543 + trial + 7);
    const std::map<NodeId, Table> truth = ReferenceResults(q);

    sim::DeviceSimulator device;
    QueryExecutor executor(device);
    for (Strategy strategy : {Strategy::kSerial, Strategy::kFused,
                              Strategy::kFission, Strategy::kFusedFission}) {
      for (std::size_t chunks : {std::size_t{1}, std::size_t{4}}) {
        ExecutorOptions options;
        options.strategy = strategy;
        options.chunk_count = chunks;
        const ExecutionReport report =
            executor.Execute(q.graph, q.sources, options);
        for (NodeId sink : q.graph.Sinks()) {
          ASSERT_EQ(report.sink_results.count(sink), 1u)
              << ToString(strategy) << " missing sink " << sink;
          EXPECT_TRUE(ByteIdentical(report.sink_results.at(sink), truth.at(sink)))
              << ToString(strategy) << " chunks=" << chunks << " sink " << sink
              << " trial " << trial << "\ngraph:\n" << q.graph.ToString();
        }
      }
    }
  }
}

TEST_P(StrategyDifferential, SchedulerPathByteIdenticalToScalarReference) {
  const RandomQuery q =
      MakeRandomQuery(static_cast<std::uint64_t>(GetParam()) * 389 + 11);
  const std::map<NodeId, Table> truth = ReferenceResults(q);

  sim::DeviceSimulator device;
  server::SchedulerOptions sched_options;
  sched_options.worker_count = 2;
  obs::MetricsRegistry registry;
  sched_options.metrics = &registry;
  server::QueryScheduler scheduler(device, sched_options);

  std::vector<std::future<server::QueryResult>> futures;
  const std::vector<Strategy> strategies = {Strategy::kSerial, Strategy::kFused,
                                            Strategy::kFission,
                                            Strategy::kFusedFission};
  for (Strategy strategy : strategies) {
    server::QueryRequest request;
    request.graph = q.graph;
    request.sources = q.sources;
    request.options.strategy = strategy;
    request.options.chunk_count = 4;
    futures.push_back(scheduler.Submit(std::move(request)));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    server::QueryResult result = futures[i].get();
    for (NodeId sink : q.graph.Sinks()) {
      ASSERT_EQ(result.results.count(sink), 1u)
          << ToString(strategies[i]) << " missing sink " << sink;
      EXPECT_TRUE(ByteIdentical(result.results.at(sink), truth.at(sink)))
          << "scheduler " << ToString(strategies[i]) << " sink " << sink;
    }
    EXPECT_GT(result.report.makespan, 0.0);
  }
}

TEST_P(StrategyDifferential, MergedBatchByteIdenticalToScalarReference) {
  // Two structurally different queries over the SAME sources (same seed ->
  // same tables), merged into one execution: each must still get exactly its
  // own reference results back.
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 7121 + 3;
  const RandomQuery a = MakeRandomQuery(seed);
  const RandomQuery b = MakeRandomQuery(seed);  // identical twin

  sim::DeviceSimulator device;
  server::SchedulerOptions sched_options;
  sched_options.worker_count = 1;
  sched_options.start_paused = true;  // both queued before the worker wakes
  obs::MetricsRegistry registry;
  sched_options.metrics = &registry;
  server::QueryScheduler scheduler(device, sched_options);

  auto submit = [&](const RandomQuery& q) {
    server::QueryRequest request;
    request.graph = q.graph;
    request.sources = q.sources;
    request.options.strategy = Strategy::kFused;
    request.merge_class = "twins";
    return scheduler.Submit(std::move(request));
  };
  auto fa = submit(a);
  auto fb = submit(b);
  scheduler.Start();

  const std::map<NodeId, Table> truth = ReferenceResults(a);
  for (auto* f : {&fa, &fb}) {
    server::QueryResult result = f->get();
    EXPECT_TRUE(result.merged);
    EXPECT_EQ(result.batch_size, 2u);
    for (NodeId sink : a.graph.Sinks()) {
      ASSERT_EQ(result.results.count(sink), 1u) << "missing sink " << sink;
      EXPECT_TRUE(ByteIdentical(result.results.at(sink), truth.at(sink)))
          << "merged sink " << sink;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyDifferential, ::testing::Range(0, 5));

}  // namespace
}  // namespace kf::core
