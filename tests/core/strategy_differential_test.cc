// Differential sweep: random operator graphs executed under every
// ExecutionStrategy — and through the QueryScheduler serving path — must
// produce byte-identical results to the operator-at-a-time scalar reference.
// The property tests check multiset equality; this sweep pins down row order
// and exact values too, so a strategy that silently reorders or perturbs
// rows fails here even when the multiset still matches.
#include <gtest/gtest.h>

#include "common/buffer_arena.h"
#include "core/query_executor.h"
#include "core/select_chain.h"
#include "server/query_scheduler.h"
#include "tests/core/byte_identical.h"
#include "tests/core/random_graph.h"

namespace kf::core {
namespace {

using relational::Row;
using relational::Table;

class StrategyDifferential : public ::testing::TestWithParam<int> {};

TEST_P(StrategyDifferential, EveryStrategyByteIdenticalToScalarReference) {
  for (int trial = 0; trial < 4; ++trial) {
    const RandomQuery q = MakeRandomQuery(
        static_cast<std::uint64_t>(GetParam()) * 1543 + trial + 7);
    const std::map<NodeId, Table> truth = ReferenceResults(q);

    sim::DeviceSimulator device;
    QueryExecutor executor(device);
    for (Strategy strategy : {Strategy::kSerial, Strategy::kFused,
                              Strategy::kFission, Strategy::kFusedFission}) {
      for (std::size_t chunks : {std::size_t{1}, std::size_t{4}}) {
        ExecutorOptions options;
        options.strategy = strategy;
        options.chunk_count = chunks;
        const ExecutionReport report =
            executor.Execute(q.graph, q.sources, options);
        for (NodeId sink : q.graph.Sinks()) {
          ASSERT_EQ(report.sink_results.count(sink), 1u)
              << ToString(strategy) << " missing sink " << sink;
          EXPECT_TRUE(ByteIdentical(report.sink_results.at(sink), truth.at(sink)))
              << ToString(strategy) << " chunks=" << chunks << " sink " << sink
              << " trial " << trial << "\ngraph:\n" << q.graph.ToString();
        }
      }
    }
  }
}

TEST_P(StrategyDifferential, ArenaRunsByteIdenticalToScalarReference) {
  // Same sweep as above but with a caller-provided BufferArena: pooled
  // workspaces must never change a byte of output, across repeated (warm)
  // runs included.
  const RandomQuery q =
      MakeRandomQuery(static_cast<std::uint64_t>(GetParam()) * 911 + 5);
  const std::map<NodeId, Table> truth = ReferenceResults(q);

  sim::DeviceSimulator device;
  QueryExecutor executor(device);
  kf::BufferArena arena;
  for (Strategy strategy : {Strategy::kSerial, Strategy::kFused,
                            Strategy::kFission, Strategy::kFusedFission}) {
    ExecutorOptions options;
    options.strategy = strategy;
    options.chunk_count = 4;
    options.arena = &arena;
    for (int run = 0; run < 2; ++run) {  // second run reuses warm pools
      const ExecutionReport report =
          executor.Execute(q.graph, q.sources, options);
      for (NodeId sink : q.graph.Sinks()) {
        ASSERT_EQ(report.sink_results.count(sink), 1u);
        EXPECT_TRUE(ByteIdentical(report.sink_results.at(sink), truth.at(sink)))
            << ToString(strategy) << " arena run " << run << " sink " << sink;
      }
    }
  }
}

// Single-column int32 select chains: the shape the typed-predicate fast path
// (TryTypedSelectChain) accepts. `compilable` picks expressions every one of
// which CompilePredicate can lower; otherwise each chain gets at least one
// uncompilable predicate so execution must stay on the generic Row path.
struct Int32Chain {
  OpGraph graph;
  std::map<NodeId, Table> sources;
  NodeId source = 0;
};

Int32Chain MakeInt32Chain(std::uint64_t seed, bool compilable) {
  using relational::Expr;
  using relational::OperatorDesc;
  Rng rng(seed);
  Int32Chain q;
  const std::size_t rows = static_cast<std::size_t>(rng.UniformInt(200, 2000));
  const Table data = MakeUniformInt32Table(rows, seed);
  q.source = q.graph.AddSource("chain_src", data.schema(), rows);
  q.sources.emplace(q.source, data);

  NodeId prev = q.source;
  const int depth = static_cast<int>(rng.UniformInt(2, 5));
  for (int i = 0; i < depth; ++i) {
    Expr expr = Expr::Lt(Expr::FieldRef(0), Expr::Lit(rng.UniformInt(0, 1 << 30)));
    switch (rng.UniformInt(0, 3)) {
      case 0:
        break;  // plain v < lit
      case 1:
        expr = Expr::And(
            Expr::Ge(Expr::FieldRef(0), Expr::Lit(rng.UniformInt(0, 1 << 29))),
            Expr::Le(Expr::FieldRef(0), Expr::Lit(rng.UniformInt(0, 1 << 30))));
        break;
      case 2:
        expr = Expr::Not(
            Expr::Ge(Expr::FieldRef(0), Expr::Lit(rng.UniformInt(0, 1 << 30))));
        break;
      case 3:
        // Literal on the left: still compilable via mirroring.
        expr = Expr::Gt(Expr::Lit(rng.UniformInt(0, 1 << 30)), Expr::FieldRef(0));
        break;
    }
    if (!compilable && i == depth / 2) {
      // Arithmetic inside the comparison defeats CompilePredicate but is
      // semantically equivalent to a plain threshold for EvalExpr.
      expr = Expr::Lt(Expr::Add(Expr::FieldRef(0), Expr::Lit(0)),
                      Expr::Lit(rng.UniformInt(0, 1 << 30)));
    }
    prev = q.graph.AddOperator(OperatorDesc::Select(expr, "sel" + std::to_string(i)),
                               prev);
  }
  return q;
}

std::map<NodeId, Table> Int32ChainReference(const Int32Chain& q) {
  std::map<NodeId, Table> truth;
  for (NodeId id : q.graph.TopologicalOrder()) {
    const OpNode& node = q.graph.node(id);
    if (node.is_source) {
      truth.emplace(id, q.sources.at(id));
    } else {
      truth.emplace(id,
                    relational::ApplyOperator(node.desc, truth.at(node.inputs[0])));
    }
  }
  return truth;
}

TEST_P(StrategyDifferential, TypedSelectChainByteIdenticalToScalarReference) {
  const std::uint64_t typed_before =
      kf::HostPerfCounters::Global().typed_predicates.load();
  for (bool compilable : {true, false}) {
    for (int trial = 0; trial < 4; ++trial) {
      const Int32Chain q = MakeInt32Chain(
          static_cast<std::uint64_t>(GetParam()) * 271 + trial * 13 + 1,
          compilable);
      const std::map<NodeId, Table> truth = Int32ChainReference(q);

      sim::DeviceSimulator device;
      QueryExecutor executor(device);
      kf::BufferArena arena;
      for (Strategy strategy : {Strategy::kSerial, Strategy::kFused,
                                Strategy::kFission, Strategy::kFusedFission}) {
        for (std::size_t chunks : {std::size_t{1}, std::size_t{4}}) {
          ExecutorOptions options;
          options.strategy = strategy;
          options.chunk_count = chunks;
          options.arena = &arena;
          const ExecutionReport report =
              executor.Execute(q.graph, q.sources, options);
          for (NodeId sink : q.graph.Sinks()) {
            ASSERT_EQ(report.sink_results.count(sink), 1u);
            EXPECT_TRUE(
                ByteIdentical(report.sink_results.at(sink), truth.at(sink)))
                << ToString(strategy) << " chunks=" << chunks
                << " compilable=" << compilable << " trial " << trial
                << "\ngraph:\n" << q.graph.ToString();
          }
        }
      }
    }
  }
  // The compilable chains must actually have exercised typed kernels.
  EXPECT_GT(kf::HostPerfCounters::Global().typed_predicates.load(),
            typed_before);
}

TEST_P(StrategyDifferential, SchedulerPathByteIdenticalToScalarReference) {
  const RandomQuery q =
      MakeRandomQuery(static_cast<std::uint64_t>(GetParam()) * 389 + 11);
  const std::map<NodeId, Table> truth = ReferenceResults(q);

  sim::DeviceSimulator device;
  server::SchedulerOptions sched_options;
  sched_options.worker_count = 2;
  obs::MetricsRegistry registry;
  sched_options.metrics = &registry;
  server::QueryScheduler scheduler(device, sched_options);

  std::vector<std::future<server::QueryResult>> futures;
  const std::vector<Strategy> strategies = {Strategy::kSerial, Strategy::kFused,
                                            Strategy::kFission,
                                            Strategy::kFusedFission};
  for (Strategy strategy : strategies) {
    server::QueryRequest request;
    request.graph = q.graph;
    request.sources = q.sources;
    request.options.strategy = strategy;
    request.options.chunk_count = 4;
    futures.push_back(scheduler.Submit(std::move(request)));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    server::QueryResult result = futures[i].get();
    for (NodeId sink : q.graph.Sinks()) {
      ASSERT_EQ(result.results.count(sink), 1u)
          << ToString(strategies[i]) << " missing sink " << sink;
      EXPECT_TRUE(ByteIdentical(result.results.at(sink), truth.at(sink)))
          << "scheduler " << ToString(strategies[i]) << " sink " << sink;
    }
    EXPECT_GT(result.report.makespan, 0.0);
  }
}

TEST_P(StrategyDifferential, MergedBatchByteIdenticalToScalarReference) {
  // Two structurally different queries over the SAME sources (same seed ->
  // same tables), merged into one execution: each must still get exactly its
  // own reference results back.
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 7121 + 3;
  const RandomQuery a = MakeRandomQuery(seed);
  const RandomQuery b = MakeRandomQuery(seed);  // identical twin

  sim::DeviceSimulator device;
  server::SchedulerOptions sched_options;
  sched_options.worker_count = 1;
  sched_options.start_paused = true;  // both queued before the worker wakes
  obs::MetricsRegistry registry;
  sched_options.metrics = &registry;
  server::QueryScheduler scheduler(device, sched_options);

  auto submit = [&](const RandomQuery& q) {
    server::QueryRequest request;
    request.graph = q.graph;
    request.sources = q.sources;
    request.options.strategy = Strategy::kFused;
    request.merge_class = "twins";
    return scheduler.Submit(std::move(request));
  };
  auto fa = submit(a);
  auto fb = submit(b);
  scheduler.Start();

  const std::map<NodeId, Table> truth = ReferenceResults(a);
  for (auto* f : {&fa, &fb}) {
    server::QueryResult result = f->get();
    EXPECT_TRUE(result.merged);
    EXPECT_EQ(result.batch_size, 2u);
    for (NodeId sink : a.graph.Sinks()) {
      ASSERT_EQ(result.results.count(sink), 1u) << "missing sink " << sink;
      EXPECT_TRUE(ByteIdentical(result.results.at(sink), truth.at(sink)))
          << "merged sink " << sink;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyDifferential, ::testing::Range(0, 5));

}  // namespace
}  // namespace kf::core
