// Integration tests: all four strategies over real data must agree
// functionally, and their simulated timings must reproduce the paper's
// qualitative ordering.
#include "core/query_executor.h"

#include <gtest/gtest.h>

#include "core/select_chain.h"
#include "relational/operators.h"

namespace kf::core {
namespace {

using relational::Table;

class QueryExecutorTest : public ::testing::Test {
 protected:
  sim::DeviceSimulator device_;
  QueryExecutor executor_{device_};

  ExecutorOptions Options(Strategy strategy,
                          IntermediatePolicy policy = IntermediatePolicy::kKeepOnDevice) {
    ExecutorOptions options;
    options.strategy = strategy;
    options.intermediates = policy;
    options.chunk_count = 16;
    options.fission_segments = 6;
    return options;
  }
};

TEST_F(QueryExecutorTest, AllStrategiesProduceIdenticalResults) {
  SelectChain chain = MakeSelectChain(20000, std::vector<double>{0.5, 0.5});
  const Table data = MakeUniformInt32Table(20000);
  const std::map<NodeId, Table> sources{{chain.source, data}};

  std::map<Strategy, ExecutionReport> reports;
  for (Strategy s : {Strategy::kSerial, Strategy::kFused, Strategy::kFission,
                     Strategy::kFusedFission}) {
    reports.emplace(s, executor_.Execute(chain.graph, sources, Options(s)));
  }
  const Table& reference = reports.at(Strategy::kSerial).sink_results.begin()->second;
  EXPECT_NEAR(static_cast<double>(reference.row_count()) / 20000.0, 0.25, 0.02);
  for (auto& [strategy, report] : reports) {
    ASSERT_EQ(report.sink_results.size(), 1u) << ToString(strategy);
    EXPECT_TRUE(relational::SameRowMultiset(
        report.sink_results.begin()->second, reference))
        << ToString(strategy);
    EXPECT_GT(report.makespan, 0.0);
  }
}

TEST_F(QueryExecutorTest, RoundTripPolicyAddsPcieTraffic) {
  SelectChain chain = MakeSelectChain(2000000, std::vector<double>{0.5, 0.5});
  const auto with_round_trip = executor_.EstimateOnly(
      chain.graph, chain.expected_rows,
      Options(Strategy::kSerial, IntermediatePolicy::kRoundTrip));
  const auto without = executor_.EstimateOnly(chain.graph, chain.expected_rows,
                                              Options(Strategy::kSerial));
  EXPECT_GT(with_round_trip.round_trip_time, 0.0);
  EXPECT_DOUBLE_EQ(without.round_trip_time, 0.0);
  EXPECT_GT(with_round_trip.makespan, without.makespan);
  EXPECT_GT(with_round_trip.h2d_bytes, without.h2d_bytes);
}

TEST_F(QueryExecutorTest, FusionBeatsSerialAndRoundTrip) {
  // Fig 8(a) ordering: fused > without round trip > with round trip.
  SelectChain chain = MakeSelectChain(200000000, std::vector<double>{0.5, 0.5});
  const auto with_rt = executor_.EstimateOnly(
      chain.graph, chain.expected_rows,
      Options(Strategy::kSerial, IntermediatePolicy::kRoundTrip));
  const auto without_rt = executor_.EstimateOnly(chain.graph, chain.expected_rows,
                                                 Options(Strategy::kSerial));
  const auto fused = executor_.EstimateOnly(chain.graph, chain.expected_rows,
                                            Options(Strategy::kFused));
  EXPECT_LT(fused.makespan, without_rt.makespan);
  EXPECT_LT(without_rt.makespan, with_rt.makespan);
  // Fused launches two device kernels instead of four.
  EXPECT_LT(fused.kernel_launches, without_rt.kernel_launches);
}

TEST_F(QueryExecutorTest, FusionReducesComputeTimeSubstantially) {
  // Fig 8(b): compute-only gain of fusion is large (~1.8x in the paper).
  SelectChain chain = MakeSelectChain(200000000, std::vector<double>{0.5, 0.5});
  const auto serial = executor_.EstimateOnly(chain.graph, chain.expected_rows,
                                             Options(Strategy::kSerial));
  const auto fused = executor_.EstimateOnly(chain.graph, chain.expected_rows,
                                            Options(Strategy::kFused));
  EXPECT_GT(serial.compute_time / fused.compute_time, 1.5);
}

TEST_F(QueryExecutorTest, FissionOverlapsTransfersOnLargeData) {
  // Fig 14: pipelined fission beats serial segmented execution when the data
  // exceeds device memory.
  SelectChain chain = MakeSelectChain(2000000000ull, std::vector<double>{0.5});
  const auto serial = executor_.EstimateOnly(chain.graph, chain.expected_rows,
                                             Options(Strategy::kSerial));
  const auto fission = executor_.EstimateOnly(chain.graph, chain.expected_rows,
                                              Options(Strategy::kFission));
  EXPECT_LT(fission.makespan, serial.makespan);
  // The win comes from overlap, not from doing less work (allow rounding
  // from the different segment counts).
  EXPECT_NEAR(static_cast<double>(fission.h2d_bytes),
              static_cast<double>(serial.h2d_bytes), 64.0);
  EXPECT_GT(serial.makespan / fission.makespan, 1.2);
}

TEST_F(QueryExecutorTest, FusionPlusFissionBeatsEitherAlone) {
  // Fig 16 ordering on 2 back-to-back SELECTs over huge data.
  SelectChain chain = MakeSelectChain(2000000000ull, std::vector<double>{0.5, 0.5});
  std::map<Strategy, SimTime> makespans;
  for (Strategy s : {Strategy::kSerial, Strategy::kFused, Strategy::kFission,
                     Strategy::kFusedFission}) {
    makespans[s] =
        executor_.EstimateOnly(chain.graph, chain.expected_rows, Options(s)).makespan;
  }
  EXPECT_LT(makespans[Strategy::kFusedFission], makespans[Strategy::kFission]);
  EXPECT_LT(makespans[Strategy::kFusedFission], makespans[Strategy::kFused]);
  EXPECT_LT(makespans[Strategy::kFission], makespans[Strategy::kSerial]);
  EXPECT_LT(makespans[Strategy::kFused], makespans[Strategy::kSerial]);
}

TEST_F(QueryExecutorTest, FissionUsesHostGather) {
  SelectChain chain = MakeSelectChain(2000000000ull, std::vector<double>{0.5});
  const auto fission = executor_.EstimateOnly(chain.graph, chain.expected_rows,
                                              Options(Strategy::kFission));
  EXPECT_GT(fission.host_gather_time, 0.0);  // Fig 15's CPU gather
  const auto serial = executor_.EstimateOnly(chain.graph, chain.expected_rows,
                                             Options(Strategy::kSerial));
  EXPECT_DOUBLE_EQ(serial.host_gather_time, 0.0);  // in-order arrival
}

TEST_F(QueryExecutorTest, ThroughputScalesWithOverlap) {
  SelectChain chain = MakeSelectChain(1000000000ull, std::vector<double>{0.5});
  const auto serial = executor_.EstimateOnly(chain.graph, chain.expected_rows,
                                             Options(Strategy::kSerial));
  const auto fission = executor_.EstimateOnly(chain.graph, chain.expected_rows,
                                              Options(Strategy::kFission));
  EXPECT_GT(fission.ThroughputGBs(chain.input_bytes()),
            serial.ThroughputGBs(chain.input_bytes()));
}

TEST_F(QueryExecutorTest, PeakDeviceMemoryBounded) {
  // Even 8 GB of input must fit through the 6 GB device.
  SelectChain chain = MakeSelectChain(2000000000ull, std::vector<double>{0.5});
  for (Strategy s : {Strategy::kSerial, Strategy::kFission}) {
    const auto report =
        executor_.EstimateOnly(chain.graph, chain.expected_rows, Options(s));
    EXPECT_LE(report.peak_device_bytes, device_.spec().mem_capacity_bytes)
        << ToString(s);
  }
}

TEST_F(QueryExecutorTest, MissingSourceBindingThrows) {
  SelectChain chain = MakeSelectChain(100, std::vector<double>{0.5});
  EXPECT_THROW(executor_.Execute(chain.graph, {}, Options(Strategy::kSerial)),
               kf::Error);
}

TEST_F(QueryExecutorTest, EstimateOnlyUsesRowHintsWhenNoOverrides) {
  SelectChain chain = MakeSelectChain(1000000, std::vector<double>{0.5});
  // No override for the select: the estimator falls back to its input count
  // (conservative upper bound) and still produces a sane report.
  const auto report =
      executor_.EstimateOnly(chain.graph, {}, Options(Strategy::kSerial));
  EXPECT_GT(report.makespan, 0.0);
  EXPECT_GT(report.h2d_bytes, 0u);
}

TEST_F(QueryExecutorTest, BreakdownSumsRoughlyToMakespanWhenSerial) {
  // Fig 9's decomposition: in fully serial execution the category sums
  // account for the whole makespan (no overlap hides anything).
  SelectChain chain = MakeSelectChain(100000000, std::vector<double>{0.5, 0.5});
  const auto report = executor_.EstimateOnly(
      chain.graph, chain.expected_rows,
      Options(Strategy::kSerial, IntermediatePolicy::kRoundTrip));
  const SimTime sum = report.input_output_time + report.round_trip_time +
                      report.compute_time + report.host_gather_time;
  EXPECT_NEAR(sum / report.makespan, 1.0, 0.05);
}

}  // namespace
}  // namespace kf::core
