// Metamorphic and behavioral tests for the adaptive cost-model calibrator
// (core/calibration.h): monotonicity, idempotence, convergence, epoch
// semantics, the adaptive deciders, and end-to-end executor integration.
#include "core/calibration.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/query_executor.h"
#include "sim/device_simulator.h"
#include "sim/kernel_cost_model.h"
#include "sim/pcie_model.h"
#include "tests/core/byte_identical.h"
#include "tests/core/random_graph.h"

namespace kf::core {
namespace {

using sim::CopyDirection;
using sim::HostMemoryKind;

// A believed PCIe link `factor`× faster than the default (true) one —
// factor > 1 models an optimistic seed, factor < 1 a pessimistic one.
sim::PcieConfig ScaledPcie(double factor) {
  sim::PcieConfig config;
  config.pinned_h2d_gbs *= factor;
  config.pinned_d2h_gbs *= factor;
  config.pageable_h2d_gbs *= factor;
  config.pageable_d2h_gbs *= factor;
  return config;
}

sim::KernelProfile StreamProfile(std::uint64_t elements) {
  sim::KernelProfile profile;
  profile.label = "test";
  profile.elements = elements;
  profile.global_bytes_read = elements * 16;
  profile.global_bytes_written = elements * 16;
  return profile;
}

TEST(Calibration, SizeClassBoundaries) {
  EXPECT_EQ(CostModelCalibrator::SizeClass(1), 0u);
  EXPECT_EQ(CostModelCalibrator::SizeClass(KiB(256) - 1), 0u);
  EXPECT_EQ(CostModelCalibrator::SizeClass(KiB(256)), 1u);
  EXPECT_EQ(CostModelCalibrator::SizeClass(MiB(8) - 1), 1u);
  EXPECT_EQ(CostModelCalibrator::SizeClass(MiB(8)), 2u);
  EXPECT_EQ(CostModelCalibrator::SizeClass(MiB(128) - 1), 2u);
  EXPECT_EQ(CostModelCalibrator::SizeClass(MiB(128)), 3u);
  EXPECT_EQ(CostModelCalibrator::SizeClass(GiB(2)), 3u);
}

TEST(Calibration, UncalibratedEstimatesEqualBelievedModel) {
  const sim::PcieConfig pcie = ScaledPcie(2.0);
  CostModelCalibrator calib(sim::DeviceSpec::TeslaC2070(), pcie);
  const sim::PcieModel believed(pcie);
  for (std::uint64_t bytes : {KiB(64), MiB(1), MiB(64), MiB(512)}) {
    EXPECT_DOUBLE_EQ(
        calib.EstimateTransferTime(bytes, HostMemoryKind::kPinned,
                                   CopyDirection::kHostToDevice),
        believed.TransferTime(bytes, HostMemoryKind::kPinned,
                              CopyDirection::kHostToDevice));
  }
  const sim::KernelCostModel kernels(sim::DeviceSpec::TeslaC2070());
  const sim::KernelProfile profile = StreamProfile(1 << 20);
  EXPECT_DOUBLE_EQ(calib.EstimateKernelTime(KernelClass::kStaged, profile),
                   kernels.Cost(profile).solo_duration);
}

// --- Idempotence: the first sample snaps, identical re-feeds are a fixed
// point of the EWMA update. --------------------------------------------------

TEST(Calibration, FirstSampleSnapsToObservedRatio) {
  CostModelCalibrator calib;
  const sim::PcieModel believed{};
  const std::uint64_t bytes = MiB(4);
  const SimTime truth = 2.0 * believed.TransferTime(bytes, HostMemoryKind::kPinned,
                                                    CopyDirection::kHostToDevice);
  calib.ObserveCopy(CopyDirection::kHostToDevice, HostMemoryKind::kPinned, bytes,
                    truth);
  EXPECT_NEAR(calib.CopyCorrection(CopyDirection::kHostToDevice), 2.0, 1e-9);
}

TEST(Calibration, IdenticalObservationsAreAFixedPoint) {
  CostModelCalibrator calib;
  const sim::PcieModel believed{};
  const std::uint64_t bytes = MiB(4);
  const SimTime observed =
      1.7 * believed.TransferTime(bytes, HostMemoryKind::kPinned,
                                  CopyDirection::kHostToDevice);
  calib.ObserveCopy(CopyDirection::kHostToDevice, HostMemoryKind::kPinned, bytes,
                    observed);
  const double correction = calib.CopyCorrection(CopyDirection::kHostToDevice);
  const SimTime estimate = calib.EstimateTransferTime(
      bytes, HostMemoryKind::kPinned, CopyDirection::kHostToDevice);
  // Re-feeding the exact same timeline must not move anything — the EWMA
  // update c += alpha*(r - c) is exactly zero at r == c.
  for (int i = 0; i < 10; ++i) {
    calib.ObserveCopy(CopyDirection::kHostToDevice, HostMemoryKind::kPinned,
                      bytes, observed);
  }
  EXPECT_DOUBLE_EQ(calib.CopyCorrection(CopyDirection::kHostToDevice), correction);
  EXPECT_DOUBLE_EQ(calib.EstimateTransferTime(bytes, HostMemoryKind::kPinned,
                                              CopyDirection::kHostToDevice),
                   estimate);
  // And once the feed matches the estimate, the error EWMA decays toward
  // zero (it still carries a trace of the one pre-calibration sample).
  EXPECT_LT(calib.error(), 0.01);
}

// --- Monotonicity. ----------------------------------------------------------

TEST(Calibration, FasterObservationsNeverRaiseEstimates) {
  CostModelCalibrator calib;
  const sim::PcieModel believed{};
  const std::uint64_t bytes = MiB(4);
  const SimTime base = believed.TransferTime(bytes, HostMemoryKind::kPinned,
                                             CopyDirection::kHostToDevice);
  // Start calibrated to a device 3x slower than believed, then observe
  // progressively faster transfers; the estimate must be non-increasing.
  SimTime previous_estimate = -1.0;
  for (double factor : {3.0, 2.5, 2.0, 1.5, 1.0, 0.8}) {
    calib.ObserveCopy(CopyDirection::kHostToDevice, HostMemoryKind::kPinned,
                      bytes, factor * base);
    const SimTime estimate = calib.EstimateTransferTime(
        bytes, HostMemoryKind::kPinned, CopyDirection::kHostToDevice);
    if (previous_estimate >= 0.0) EXPECT_LE(estimate, previous_estimate + 1e-15);
    previous_estimate = estimate;
  }
}

TEST(Calibration, EstimatesMonotoneInBytes) {
  CostModelCalibrator calib;
  // Seed every size class with the same slowdown so the correction overlay
  // cannot invert the believed model's monotonicity in bytes.
  const sim::PcieModel believed{};
  for (std::uint64_t bytes : {KiB(64), MiB(1), MiB(32), MiB(256)}) {
    calib.ObserveCopy(CopyDirection::kHostToDevice, HostMemoryKind::kPinned,
                      bytes,
                      2.0 * believed.TransferTime(bytes, HostMemoryKind::kPinned,
                                                  CopyDirection::kHostToDevice));
  }
  SimTime previous = 0.0;
  for (std::uint64_t bytes = KiB(16); bytes <= MiB(64); bytes *= 2) {
    const SimTime estimate = calib.EstimateTransferTime(
        bytes, HostMemoryKind::kPinned, CopyDirection::kHostToDevice);
    EXPECT_GE(estimate, previous);
    previous = estimate;
  }
}

// --- Convergence. -----------------------------------------------------------

TEST(Calibration, ConvergesFromTwoXOptimisticBelief) {
  // Believed link is 2x faster than the true device: initial estimates are
  // ~2x short. Feeding true observations must drive the relative error to
  // (near) zero and the estimate to the true time.
  CostModelCalibrator calib(sim::DeviceSpec::TeslaC2070(), ScaledPcie(2.0));
  const sim::PcieModel truth{};  // the real link
  const std::uint64_t bytes = MiB(4);
  const SimTime true_time = truth.TransferTime(bytes, HostMemoryKind::kPinned,
                                               CopyDirection::kHostToDevice);

  const SimTime before = calib.EstimateTransferTime(
      bytes, HostMemoryKind::kPinned, CopyDirection::kHostToDevice);
  EXPECT_LT(before, 0.75 * true_time);  // optimistic belief underestimates

  double previous_error = -1.0;
  for (int run = 0; run < 8; ++run) {
    calib.ObserveCopy(CopyDirection::kHostToDevice, HostMemoryKind::kPinned,
                      bytes, true_time);
    calib.EndRun();
    if (previous_error >= 0.0) EXPECT_LE(calib.error(), previous_error + 1e-12);
    previous_error = calib.error();
  }
  const SimTime after = calib.EstimateTransferTime(
      bytes, HostMemoryKind::kPinned, CopyDirection::kHostToDevice);
  EXPECT_NEAR(after, true_time, 0.02 * true_time);
  EXPECT_LT(calib.error(), 0.05);
}

TEST(Calibration, KernelClassesCalibrateIndependentlyWithFallback) {
  CostModelCalibrator calib;
  const sim::KernelCostModel believed(sim::DeviceSpec::TeslaC2070());
  const sim::KernelProfile profile = StreamProfile(1 << 20);
  const SimTime base = believed.Cost(profile).solo_duration;

  calib.ObserveKernel(KernelClass::kStaged, profile, 2.0 * base);
  // kStaged has its own correction; kFused has no samples and falls back to
  // the all-kernel correction (also 2.0 after one observation).
  EXPECT_NEAR(calib.EstimateKernelTime(KernelClass::kStaged, profile),
              2.0 * base, 1e-9 * base);
  EXPECT_NEAR(calib.EstimateKernelTime(KernelClass::kFused, profile), 2.0 * base,
              1e-9 * base);

  // A fused observation at 1.2x splits the classes apart.
  calib.ObserveKernel(KernelClass::kFused, profile, 1.2 * base);
  EXPECT_NEAR(calib.EstimateKernelTime(KernelClass::kFused, profile), 1.2 * base,
              1e-9 * base);
  EXPECT_NEAR(calib.EstimateKernelTime(KernelClass::kStaged, profile),
              2.0 * base, 1e-9 * base);
}

// --- Epochs. ----------------------------------------------------------------

TEST(Calibration, EpochBumpsOnDriftThenStabilizes) {
  obs::MetricsRegistry metrics;
  CalibrationOptions options;
  options.metrics = &metrics;
  CostModelCalibrator calib(sim::DeviceSpec::TeslaC2070(), sim::PcieConfig{},
                            options);
  EXPECT_EQ(calib.epoch(), 1u);

  const sim::PcieModel believed{};
  const std::uint64_t bytes = MiB(4);
  const SimTime slow = 2.0 * believed.TransferTime(bytes, HostMemoryKind::kPinned,
                                                   CopyDirection::kHostToDevice);
  // First run: correction snaps 1.0 -> 2.0, >10% drift, epoch bumps.
  calib.ObserveCopy(CopyDirection::kHostToDevice, HostMemoryKind::kPinned, bytes,
                    slow);
  calib.EndRun();
  EXPECT_EQ(calib.epoch(), 2u);

  // Steady-state runs: corrections are at their fixed point, no more bumps.
  for (int run = 0; run < 5; ++run) {
    calib.ObserveCopy(CopyDirection::kHostToDevice, HostMemoryKind::kPinned,
                      bytes, slow);
    calib.EndRun();
  }
  EXPECT_EQ(calib.epoch(), 2u);
}

TEST(Calibration, AdvanceEpochIsManualBump) {
  CostModelCalibrator calib;
  EXPECT_EQ(calib.epoch(), 1u);
  calib.AdvanceEpoch();
  EXPECT_EQ(calib.epoch(), 2u);
  // The manual bump re-snapshots: an immediately following EndRun with no
  // new observations must not double-bump.
  calib.EndRun();
  EXPECT_EQ(calib.epoch(), 2u);
}

// --- Frozen mode. -----------------------------------------------------------

TEST(Calibration, FrozenCalibratorNeverLearns) {
  CalibrationOptions options;
  options.frozen = true;
  CostModelCalibrator calib(sim::DeviceSpec::TeslaC2070(), ScaledPcie(2.0),
                            options);
  const sim::PcieModel believed(ScaledPcie(2.0));
  const std::uint64_t bytes = MiB(4);
  const SimTime believed_time = believed.TransferTime(
      bytes, HostMemoryKind::kPinned, CopyDirection::kHostToDevice);

  for (int i = 0; i < 10; ++i) {
    calib.ObserveCopy(CopyDirection::kHostToDevice, HostMemoryKind::kPinned,
                      bytes, 10.0 * believed_time);
  }
  EXPECT_EQ(calib.observations(), 0u);
  EXPECT_DOUBLE_EQ(calib.CopyCorrection(CopyDirection::kHostToDevice), 1.0);
  EXPECT_DOUBLE_EQ(calib.EstimateTransferTime(bytes, HostMemoryKind::kPinned,
                                              CopyDirection::kHostToDevice),
                   believed_time);
  // A frozen model never explores — it would never use the observations.
  EXPECT_FALSE(calib.NeedsExploration());
}

// --- Adaptive deciders. -----------------------------------------------------

TEST(Calibration, FissionSegmentsOverlapLargePipelines) {
  CostModelCalibrator calib;
  PipelineEstimate estimate;
  estimate.h2d_bytes = MiB(512);
  estimate.d2h_bytes = MiB(512);
  estimate.kernel_time =
      calib.EstimateKernelTime(KernelClass::kStaged, StreamProfile(64 << 20));
  const int segments = calib.PlanFissionSegments(estimate, 1);
  // A large balanced pipeline wants real overlap depth...
  EXPECT_GE(segments, 8);
  EXPECT_LE(segments, calib.options().max_segments);
}

TEST(Calibration, FissionSegmentsCollapseToResidentForTinyClusters) {
  CostModelCalibrator calib;
  PipelineEstimate estimate;
  estimate.h2d_bytes = KiB(32);
  estimate.d2h_bytes = KiB(32);
  estimate.kernel_time = 20.0 * kMicrosecond;
  // ...but a tiny cluster is dominated by per-segment PCIe latency and
  // launch overhead: segmentation does not pay, N = 1 (resident replanning).
  EXPECT_EQ(calib.PlanFissionSegments(estimate, 1), 1);
}

TEST(Calibration, FissionSegmentsRespectCapacityFloor) {
  CostModelCalibrator calib;
  PipelineEstimate estimate;
  estimate.h2d_bytes = KiB(32);
  estimate.kernel_time = 20.0 * kMicrosecond;
  // min_segments is the capacity floor (data does not fit at fewer): the
  // picked count can never go below it even when overlap does not pay.
  EXPECT_GE(calib.PlanFissionSegments(estimate, 6), 6);
}

TEST(Calibration, StreamCountMatchesPipelineLegsAndStalls) {
  CostModelCalibrator calib;
  EXPECT_EQ(calib.ChooseStreamCount(/*d2h_present=*/false), 2);
  EXPECT_EQ(calib.ChooseStreamCount(/*d2h_present=*/true), 3);
  // A measured stall rate above the threshold provisions one spare stream.
  calib.ObserveStalls(/*commands=*/100, /*stalled=*/20);
  EXPECT_EQ(calib.ChooseStreamCount(/*d2h_present=*/false), 3);
  EXPECT_EQ(calib.ChooseStreamCount(/*d2h_present=*/true), 4);  // capped at 4
}

TEST(Calibration, RegisterBudgetFollowsKernelCorrection) {
  const sim::KernelCostModel believed(sim::DeviceSpec::TeslaC2070());
  const sim::KernelProfile profile = StreamProfile(1 << 20);
  const SimTime base = believed.Cost(profile).solo_duration;

  CostModelCalibrator neutral;
  EXPECT_EQ(neutral.CalibratedRegisterBudget(32, 10), 32);  // no samples yet

  CostModelCalibrator expensive;
  expensive.ObserveKernel(KernelClass::kStaged, profile, 2.0 * base);
  EXPECT_EQ(expensive.CalibratedRegisterBudget(32, 10), 40);  // fuse harder
  EXPECT_EQ(expensive.CalibratedRegisterBudget(58, 10),
            sim::KernelCostModel::kMaxRegistersPerThread - 3);  // capped

  CostModelCalibrator cheap;
  cheap.ObserveKernel(KernelClass::kStaged, profile, 0.5 * base);
  EXPECT_EQ(cheap.CalibratedRegisterBudget(32, 10), 24);      // relax
  EXPECT_EQ(cheap.CalibratedRegisterBudget(16, 10), 14);      // floored
}

TEST(Calibration, ExplorationEndsAfterKernelAndCopySamples) {
  CostModelCalibrator calib;
  EXPECT_TRUE(calib.NeedsExploration());
  calib.ObserveKernel(KernelClass::kStaged, StreamProfile(1 << 20),
                      1.0 * kMicrosecond * 1000);
  EXPECT_TRUE(calib.NeedsExploration());  // still no H2D sample
  const sim::PcieModel believed{};
  calib.ObserveCopy(CopyDirection::kHostToDevice, HostMemoryKind::kPinned,
                    MiB(1),
                    believed.TransferTime(MiB(1), HostMemoryKind::kPinned,
                                          CopyDirection::kHostToDevice));
  EXPECT_FALSE(calib.NeedsExploration());
}

// --- Executor integration. --------------------------------------------------

TEST(Calibration, ExecutorFeedsCalibratorAndStaysByteIdentical) {
  const RandomQuery q = MakeRandomQuery(20260808);
  const std::map<NodeId, relational::Table> truth = ReferenceResults(q);

  sim::DeviceSimulator device;
  QueryExecutor executor(device);

  // Believed spec 2x optimistic on PCIe: the calibrator must learn the ~2x
  // correction purely from the executor's observation feed.
  CostModelCalibrator calib(device.spec(), ScaledPcie(2.0));
  for (Strategy strategy : {Strategy::kSerial, Strategy::kFused,
                            Strategy::kFission, Strategy::kFusedFission}) {
    ExecutorOptions options;
    options.strategy = strategy;
    options.calibration = &calib;
    for (int run = 0; run < 3; ++run) {
      const ExecutionReport report = executor.Execute(q.graph, q.sources, options);
      for (NodeId sink : q.graph.Sinks()) {
        ASSERT_EQ(report.sink_results.count(sink), 1u);
        EXPECT_TRUE(ByteIdentical(report.sink_results.at(sink), truth.at(sink)))
            << ToString(strategy) << " run " << run;
      }
    }
  }
  EXPECT_GT(calib.observations(), 0u);
  // The learned H2D correction reflects the 2x-optimistic believed link.
  EXPECT_GT(calib.CopyCorrection(CopyDirection::kHostToDevice), 1.3);
  // The drift bumped the epoch past its initial value.
  EXPECT_GT(calib.epoch(), 1u);
}

TEST(Calibration, CalibratedTimingMatchesStaticWhenBeliefIsTrue) {
  // With a correctly believed spec and a converged calibrator, the adaptive
  // executor's *results* are identical and its makespan is finite and sane.
  const RandomQuery q = MakeRandomQuery(77);
  sim::DeviceSimulator device;
  QueryExecutor executor(device);

  CostModelCalibrator calib(device.spec(), sim::PcieConfig{});
  ExecutorOptions adaptive;
  adaptive.strategy = Strategy::kFusedFission;
  adaptive.calibration = &calib;

  ExecutorOptions fixed;
  fixed.strategy = Strategy::kFusedFission;

  const ExecutionReport a = executor.Execute(q.graph, q.sources, adaptive);
  const ExecutionReport b = executor.Execute(q.graph, q.sources, fixed);
  ASSERT_EQ(a.sink_results.size(), b.sink_results.size());
  for (const auto& [sink, table] : b.sink_results) {
    EXPECT_TRUE(ByteIdentical(a.sink_results.at(sink), table));
  }
  EXPECT_GT(a.makespan, 0.0);
}

}  // namespace
}  // namespace kf::core
