#include "core/op_graph.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace kf::core {
namespace {

using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;

Schema KV() { return Schema{{"k", DataType::kInt64}, {"v", DataType::kInt64}}; }

TEST(OpGraph, SourcesAndOperatorsPropagateSchemas) {
  OpGraph g;
  const NodeId src = g.AddSource("input", KV(), 100);
  const NodeId sel = g.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(5))), src);
  const NodeId proj = g.AddOperator(OperatorDesc::Project({1}), sel);
  EXPECT_EQ(g.node(src).schema.field_count(), 2u);
  EXPECT_EQ(g.node(sel).schema.field_count(), 2u);
  EXPECT_EQ(g.node(proj).schema.field_count(), 1u);
  EXPECT_EQ(g.node(proj).schema.field(0).name, "v");
}

TEST(OpGraph, JoinSchemaConcatenates) {
  OpGraph g;
  const NodeId a = g.AddSource("a", KV(), 10);
  const NodeId b = g.AddSource("b", KV(), 10);
  const NodeId j = g.AddOperator(OperatorDesc::Join(), a, b);
  EXPECT_EQ(g.node(j).schema.field_count(), 3u);
}

TEST(OpGraph, ArityIsEnforced) {
  OpGraph g;
  const NodeId a = g.AddSource("a", KV(), 10);
  const NodeId b = g.AddSource("b", KV(), 10);
  EXPECT_THROW(g.AddOperator(OperatorDesc::Join(), a), Error);
  EXPECT_THROW(g.AddOperator(OperatorDesc::Unique(), a, b), Error);
  EXPECT_THROW(g.AddOperator(OperatorDesc::Unique(), NodeId{99}), Error);
}

TEST(OpGraph, ConsumersAndSinks) {
  OpGraph g;
  const NodeId src = g.AddSource("input", KV(), 100);
  const NodeId s1 = g.AddOperator(OperatorDesc::Select(Expr::Lit(1), "s1"), src);
  const NodeId s2 = g.AddOperator(OperatorDesc::Select(Expr::Lit(1), "s2"), src);
  const NodeId u = g.AddOperator(OperatorDesc::Union(), s1, s2);
  EXPECT_EQ(g.Consumers(src), (std::vector<NodeId>{s1, s2}));
  EXPECT_EQ(g.Sinks(), std::vector<NodeId>{u});
  EXPECT_EQ(g.Sources(), std::vector<NodeId>{src});
}

TEST(OpGraph, TopologicalOrderRespectsInsertion) {
  OpGraph g;
  const NodeId src = g.AddSource("input", KV(), 1);
  const NodeId a = g.AddOperator(OperatorDesc::Unique(), src);
  const auto order = g.TopologicalOrder();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_LT(std::find(order.begin(), order.end(), src),
            std::find(order.begin(), order.end(), a));
}

TEST(OpGraph, ToStringListsNodes) {
  OpGraph g;
  const NodeId src = g.AddSource("lineitem", KV(), 1);
  g.AddOperator(OperatorDesc::Sort({0}, "sort_it"), src);
  const std::string s = g.ToString();
  EXPECT_NE(s.find("lineitem"), std::string::npos);
  EXPECT_NE(s.find("sort_it"), std::string::npos);
}

}  // namespace
}  // namespace kf::core
