// The fused kernel must be functionally identical to the unfused operator
// chain — the correctness contract of kernel fusion.
#include "core/fused_pipeline.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "core/fusion_planner.h"
#include "relational/operators.h"

namespace kf::core {
namespace {

using relational::AggregateSpec;
using relational::ApplyOperator;
using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;
using relational::Table;
using relational::Value;

Table RandomKV(std::size_t rows, std::uint64_t seed, int key_range = 50) {
  Rng rng(seed);
  Table t(Schema{{"k", DataType::kInt64}, {"v", DataType::kInt64}});
  for (std::size_t r = 0; r < rows; ++r) {
    t.AppendRow({Value::Int64(rng.UniformInt(0, key_range)),
                 Value::Int64(rng.UniformInt(0, 100))});
  }
  return t;
}

// Runs the graph unfused (operator at a time) and fused (cluster pipeline),
// comparing every cluster output.
void CheckFusionEquivalence(const OpGraph& g,
                            const std::map<NodeId, Table>& sources,
                            int chunk_count = 16) {
  const FusionPlan plan = PlanFusion(g);
  // Unfused reference.
  std::map<NodeId, Table> reference;
  for (NodeId id : g.TopologicalOrder()) {
    const OpNode& node = g.node(id);
    if (node.is_source) {
      reference.emplace(id, sources.at(id));
      continue;
    }
    const Table& left = reference.at(node.inputs[0]);
    const Table* right = node.inputs.size() > 1 ? &reference.at(node.inputs[1]) : nullptr;
    reference.emplace(id, ApplyOperator(node.desc, left, right));
  }
  // Fused execution.
  std::map<NodeId, Table> computed;
  auto lookup = [&](NodeId id) -> const Table& {
    auto it = sources.find(id);
    if (it != sources.end()) return it->second;
    return computed.at(id);
  };
  for (const FusionCluster& cluster : plan.clusters) {
    ClusterExecution exec = ExecuteCluster(g, cluster, lookup, chunk_count);
    for (auto& [id, table] : exec.outputs) {
      EXPECT_TRUE(ApproxSameRowMultiset(table, reference.at(id)))
          << "node #" << id << " (" << g.node(id).name << ") differs";
      computed.emplace(id, std::move(table));
    }
  }
}

TEST(FusedPipeline, SelectChain) {
  OpGraph g;
  const NodeId src = g.AddSource("in", RandomKV(1, 0).schema(), 0);
  const NodeId s1 = g.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(30))), src);
  g.AddOperator(OperatorDesc::Select(Expr::Ge(Expr::FieldRef(1), Expr::Lit(20))), s1);
  CheckFusionEquivalence(g, {{src, RandomKV(5000, 1)}});
}

TEST(FusedPipeline, SelectProjectArith) {
  OpGraph g;
  const Table data = RandomKV(3000, 2);
  const NodeId src = g.AddSource("in", data.schema(), 0);
  const NodeId s = g.AddOperator(
      OperatorDesc::Select(Expr::Gt(Expr::FieldRef(1), Expr::Lit(10))), src);
  const NodeId ar = g.AddOperator(
      OperatorDesc::Arith(Expr::Mul(Expr::FieldRef(1), Expr::Lit(3)), "triple",
                          DataType::kInt64),
      s);
  g.AddOperator(OperatorDesc::Project({0, 2}), ar);
  CheckFusionEquivalence(g, {{src, data}});
}

TEST(FusedPipeline, JoinChainWithExpansion) {
  OpGraph g;
  const Table probe = RandomKV(2000, 3, 20);
  const Table build1 = RandomKV(100, 4, 20);  // duplicate keys -> expansion
  const Table build2 = RandomKV(50, 5, 20);
  const NodeId src = g.AddSource("probe", probe.schema(), 0);
  const NodeId b1 = g.AddSource("build1", build1.schema(), 0);
  const NodeId b2 = g.AddSource("build2", build2.schema(), 0);
  const NodeId j1 = g.AddOperator(OperatorDesc::Join(0, 0, "j1"), src, b1);
  g.AddOperator(OperatorDesc::Join(0, 0, "j2"), j1, b2);
  CheckFusionEquivalence(g, {{src, probe}, {b1, build1}, {b2, build2}});
}

TEST(FusedPipeline, ProductInsideCluster) {
  OpGraph g;
  const Table left = RandomKV(100, 6);
  const Table right = RandomKV(7, 7);
  const NodeId src = g.AddSource("l", left.schema(), 0);
  const NodeId b = g.AddSource("r", right.schema(), 0);
  const NodeId s = g.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(25))), src);
  g.AddOperator(OperatorDesc::Product(), s, b);
  CheckFusionEquivalence(g, {{src, left}, {b, right}});
}

TEST(FusedPipeline, TerminalAggregationMatchesUnfused) {
  OpGraph g;
  const Table data = RandomKV(5000, 8, 5);
  const NodeId src = g.AddSource("in", data.schema(), 0);
  const NodeId s = g.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(1), Expr::Lit(60))), src);
  g.AddOperator(
      OperatorDesc::Aggregate({0},
                              {AggregateSpec{AggregateSpec::Func::kSum, 1, "sum"},
                               AggregateSpec{AggregateSpec::Func::kAvg, 1, "avg"},
                               AggregateSpec{AggregateSpec::Func::kMin, 1, "min"},
                               AggregateSpec{AggregateSpec::Func::kMax, 1, "max"},
                               AggregateSpec{AggregateSpec::Func::kCount, 0, "n"}}),
      s);
  CheckFusionEquivalence(g, {{src, data}});
}

TEST(FusedPipeline, MultiOutputClusterPatternC) {
  OpGraph g;
  const Table data = RandomKV(2000, 9);
  const NodeId src = g.AddSource("in", data.schema(), 0);
  g.AddOperator(OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(10)), "s1"),
                src);
  g.AddOperator(OperatorDesc::Select(Expr::Ge(Expr::FieldRef(0), Expr::Lit(40)), "s2"),
                src);
  CheckFusionEquivalence(g, {{src, data}});
}

TEST(FusedPipeline, ResultsIndependentOfChunkCount) {
  OpGraph g;
  const Table data = RandomKV(3000, 10);
  const NodeId src = g.AddSource("in", data.schema(), 0);
  const NodeId s = g.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(1), Expr::Lit(50))), src);
  g.AddOperator(
      OperatorDesc::Aggregate({0}, {AggregateSpec{AggregateSpec::Func::kSum, 1, "sum"}}),
      s);
  for (int chunks : {1, 3, 64, 448}) {
    CheckFusionEquivalence(g, {{src, data}}, chunks);
  }
}

TEST(FusedPipeline, ParallelChunksMatchSerial) {
  OpGraph g;
  const Table data = RandomKV(20000, 11);
  const NodeId src = g.AddSource("in", data.schema(), 0);
  const NodeId s1 = g.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(40))), src);
  g.AddOperator(OperatorDesc::Select(Expr::Gt(Expr::FieldRef(1), Expr::Lit(5))), s1);
  const FusionPlan plan = PlanFusion(g);
  ASSERT_EQ(plan.clusters.size(), 1u);
  auto lookup = [&](NodeId) -> const Table& { return data; };
  ThreadPool pool(4);
  const ClusterExecution serial = ExecuteCluster(g, plan.clusters[0], lookup, 32);
  const ClusterExecution parallel =
      ExecuteCluster(g, plan.clusters[0], lookup, 32, &pool);
  for (const auto& [id, table] : serial.outputs) {
    EXPECT_TRUE(relational::SameRowMultiset(table, parallel.outputs.at(id)));
  }
}

TEST(FusedPipeline, MemberRowsTrackIntermediateCardinalities) {
  OpGraph g;
  const Table data = RandomKV(1000, 12);
  const NodeId src = g.AddSource("in", data.schema(), 0);
  const NodeId s1 = g.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(25)), "half"), src);
  const NodeId s2 = g.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(1), Expr::Lit(50)), "quarter"), s1);
  const FusionPlan plan = PlanFusion(g);
  auto lookup = [&](NodeId) -> const Table& { return data; };
  const ClusterExecution exec = ExecuteCluster(g, plan.clusters[0], lookup, 8);
  EXPECT_EQ(exec.primary_rows, data.row_count());
  EXPECT_GT(exec.member_rows.at(s1), exec.member_rows.at(s2));
  EXPECT_EQ(exec.member_rows.at(s2), exec.outputs.at(s2).row_count());
}

TEST(FusedPipeline, RejectsBarrierMembers) {
  OpGraph g;
  const Table data = RandomKV(10, 13);
  const NodeId src = g.AddSource("in", data.schema(), 0);
  const NodeId sort = g.AddOperator(OperatorDesc::Sort({0}), src);
  FusionCluster bogus;
  bogus.nodes = {sort};
  bogus.primary_input = src;
  bogus.outputs = {sort};
  auto lookup = [&](NodeId) -> const Table& { return data; };
  EXPECT_THROW(ExecuteCluster(g, bogus, lookup, 4), kf::Error);
}

}  // namespace
}  // namespace kf::core
