#include "stream/stream_pool.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "obs/metrics_registry.h"
#include "sim/fault_injector.h"

namespace kf::stream {
namespace {

sim::CommandSpec Kernel(SimTime solo, double demand = 1.0) {
  sim::CommandSpec c;
  c.kind = sim::CommandKind::kKernel;
  c.solo_duration = solo;
  c.demand = demand;
  return c;
}

class StreamPoolTest : public ::testing::Test {
 protected:
  sim::DeviceSimulator device_;
};

TEST_F(StreamPoolTest, GetAvailableStreamPrefersUnused) {
  StreamPool pool(device_, 3);
  EXPECT_EQ(pool.GetAvailableStream(), 0);
  EXPECT_EQ(pool.GetAvailableStream(), 1);
  EXPECT_EQ(pool.GetAvailableStream(), 2);
  // All in use: returns the least-loaded one.
  const StreamHandle again = pool.GetAvailableStream();
  EXPECT_GE(again, 0);
  EXPECT_LT(again, 3);
}

TEST_F(StreamPoolTest, CommandsInOneStreamSerialize) {
  StreamPool pool(device_, 2);
  const StreamHandle s = pool.GetAvailableStream();
  pool.SetStreamCommand(s, PoolCommand{Kernel(1.0), {}});
  pool.SetStreamCommand(s, PoolCommand{Kernel(1.0), {}});
  pool.StartStreams();
  EXPECT_NEAR(pool.WaitAll().makespan, 2.0, 1e-9);
}

TEST_F(StreamPoolTest, HostActionsRunAtStart) {
  StreamPool pool(device_, 2);
  const StreamHandle s = pool.GetAvailableStream();
  int order = 0, first = -1, second = -1;
  pool.SetStreamCommand(s, PoolCommand{Kernel(1.0), [&] { first = order++; }});
  pool.SetStreamCommand(s, PoolCommand{Kernel(1.0), [&] { second = order++; }});
  pool.StartStreams();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST_F(StreamPoolTest, SelectWaitOrdersAcrossStreams) {
  StreamPool pool(device_, 2);
  const StreamHandle a = pool.GetAvailableStream();
  const StreamHandle b = pool.GetAvailableStream();
  pool.SetStreamCommand(a, PoolCommand{Kernel(1.0, 0.25), {}});
  // b's next command waits on a's last command (Table IV selectWait).
  pool.SelectWait(b, a);
  pool.SetStreamCommand(b, PoolCommand{Kernel(1.0, 0.25), {}});
  pool.StartStreams();
  // Without the wait the two low-demand kernels would overlap (~1.0).
  EXPECT_NEAR(pool.WaitAll().makespan, 2.0, 1e-9);
}

TEST_F(StreamPoolTest, WithoutSelectWaitLowDemandKernelsOverlap) {
  StreamPool pool(device_, 2);
  const StreamHandle a = pool.GetAvailableStream();
  const StreamHandle b = pool.GetAvailableStream();
  pool.SetStreamCommand(a, PoolCommand{Kernel(1.0, 0.25), {}});
  pool.SetStreamCommand(b, PoolCommand{Kernel(1.0, 0.25), {}});
  pool.StartStreams();
  EXPECT_LT(pool.WaitAll().makespan, 1.2);
}

TEST_F(StreamPoolTest, SelectWaitValidation) {
  StreamPool pool(device_, 2);
  const StreamHandle a = pool.GetAvailableStream();
  const StreamHandle b = pool.GetAvailableStream();
  EXPECT_THROW(pool.SelectWait(a, a), kf::Error);   // self-wait
  EXPECT_THROW(pool.SelectWait(a, b), kf::Error);   // b has no commands yet
  EXPECT_THROW(pool.SelectWait(9, a), kf::Error);   // bad handle
}

TEST_F(StreamPoolTest, WaitAllBeforeStartThrows) {
  StreamPool pool(device_, 1);
  EXPECT_THROW(pool.WaitAll(), kf::Error);
}

TEST_F(StreamPoolTest, DoubleStartThrows) {
  StreamPool pool(device_, 1);
  pool.SetStreamCommand(pool.GetAvailableStream(), PoolCommand{Kernel(0.1), {}});
  pool.StartStreams();
  EXPECT_THROW(pool.StartStreams(), kf::Error);
}

TEST_F(StreamPoolTest, TerminateResetsForReuse) {
  StreamPool pool(device_, 2);
  const StreamHandle s = pool.GetAvailableStream();
  pool.SetStreamCommand(s, PoolCommand{Kernel(0.5), {}});
  pool.StartStreams();
  EXPECT_TRUE(pool.started());
  pool.Terminate();
  EXPECT_FALSE(pool.started());
  // Fresh lease and fresh commands work after terminate.
  const StreamHandle s2 = pool.GetAvailableStream();
  pool.SetStreamCommand(s2, PoolCommand{Kernel(0.25), {}});
  pool.StartStreams();
  EXPECT_NEAR(pool.WaitAll().makespan, 0.25, 1e-9);
}

TEST_F(StreamPoolTest, ThreeStreamFissionPipelineOverlaps) {
  // The canonical fission schedule (Fig 13) through the Table IV API.
  StreamPool pool(device_, 3);
  std::vector<StreamHandle> handles = {pool.GetAvailableStream(),
                                       pool.GetAvailableStream(),
                                       pool.GetAvailableStream()};
  const int segments = 9;
  for (int s = 0; s < segments; ++s) {
    const StreamHandle h = handles[static_cast<std::size_t>(s) % 3];
    sim::CommandSpec up;
    up.kind = sim::CommandKind::kCopyH2D;
    up.duration = 1.0;
    pool.SetStreamCommand(h, PoolCommand{up, {}});
    pool.SetStreamCommand(h, PoolCommand{Kernel(1.0), {}});
    sim::CommandSpec down;
    down.kind = sim::CommandKind::kCopyD2H;
    down.duration = 1.0;
    pool.SetStreamCommand(h, PoolCommand{down, {}});
  }
  pool.StartStreams();
  const SimTime makespan = pool.WaitAll().makespan;
  EXPECT_NEAR(makespan, segments + 2.0, 0.1);  // vs 3*segments serialized
}

TEST_F(StreamPoolTest, FaultOutcomesSurfaceThroughWaitAll) {
  obs::MetricsRegistry registry;
  sim::FaultConfig config;
  config.seed = 1;
  config.kernel_fault_rate = 1.0;
  sim::FaultInjector injector(config, &registry);

  StreamPool pool(device_, 2, &registry, &injector);
  const StreamHandle s = pool.GetAvailableStream();
  const sim::CommandId kernel_id =
      pool.SetStreamCommand(s, PoolCommand{Kernel(1.0), {}});
  sim::CommandSpec copy;
  copy.kind = sim::CommandKind::kCopyH2D;
  copy.duration = 1.0;
  const sim::CommandId copy_id = pool.SetStreamCommand(s, PoolCommand{copy, {}});
  pool.StartStreams();

  const sim::TimelineStats& stats = pool.WaitAll();
  EXPECT_FALSE(stats.AllOk());
  EXPECT_FALSE(stats.commands[kernel_id].ok);
  EXPECT_TRUE(stats.commands[copy_id].ok);
  const std::vector<sim::CommandId> failed = pool.FailedCommands();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], kernel_id);
  EXPECT_EQ(registry.GetCounter("stream_pool.faulted_commands").value(), 1u);
}

TEST_F(StreamPoolTest, NoInjectorMeansNoFailedCommands) {
  StreamPool pool(device_, 1);
  pool.SetStreamCommand(pool.GetAvailableStream(), PoolCommand{Kernel(0.5), {}});
  EXPECT_TRUE(pool.FailedCommands().empty());  // before start
  pool.StartStreams();
  EXPECT_TRUE(pool.WaitAll().AllOk());
  EXPECT_TRUE(pool.FailedCommands().empty());
}

TEST_F(StreamPoolTest, DeviceInstanceLabelSeparatesMetrics) {
  // Standalone devices record unlabeled series; a device carrying a group
  // instance label gets a `device` label on every stream_pool series.
  obs::MetricsRegistry registry;

  StreamPool plain(device_, 1, &registry);
  plain.SetStreamCommand(plain.GetAvailableStream(), PoolCommand{Kernel(0.5), {}});
  plain.StartStreams();
  EXPECT_EQ(registry.GetCounter("stream_pool.runs").value(), 1u);

  sim::DeviceSimulator labeled;
  labeled.set_instance_label("dev3");
  StreamPool grouped(labeled, 1, &registry);
  grouped.SetStreamCommand(grouped.GetAvailableStream(),
                           PoolCommand{Kernel(0.5), {}});
  grouped.StartStreams();
  EXPECT_EQ(registry.GetCounter("stream_pool.runs", {{"device", "dev3"}}).value(),
            1u);
  EXPECT_EQ(registry
                .GetCounter("stream_pool.commands",
                            {{"kind", "KERNEL"}, {"device", "dev3"}})
                .value(),
            1u);
  // The labeled run did not touch the unlabeled series.
  EXPECT_EQ(registry.GetCounter("stream_pool.runs").value(), 1u);
}

}  // namespace
}  // namespace kf::stream
