#include "ir/function.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "ir/builder.h"

namespace kf::ir {
namespace {

TEST(Function, InstructionCountCountsBodiesBranchesAndRet) {
  Function f("k");
  IrBuilder b(f);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = b.CreateBlock("entry");
  const BlockId then_block = b.CreateBlock("then");
  const BlockId exit = b.CreateBlock("exit");

  b.SetInsertBlock(entry);
  const ValueId d = b.Load(Type::kI32, in);
  const ValueId p = b.Compare(Opcode::kSetLt, d, f.AddConstInt(Type::kI32, 5));
  b.Branch(p, then_block, exit);

  b.SetInsertBlock(then_block);
  b.Store(out, d);
  b.Jump(exit);  // fallthrough: free

  b.SetInsertBlock(exit);
  b.Ret();

  // ld, setp, bra, st, ret = 5 (the paper's unfused -O0 count).
  EXPECT_EQ(f.InstructionCount(), 5u);
}

TEST(Function, NonFallthroughJumpCosts) {
  Function f("k");
  IrBuilder b(f);
  const BlockId entry = b.CreateBlock("entry");
  const BlockId skip = b.CreateBlock("skipped");
  const BlockId target = b.CreateBlock("target");
  b.SetInsertBlock(entry);
  b.Jump(target);  // jumps over `skip`: costs one instruction
  b.SetInsertBlock(skip);
  b.Ret();
  b.SetInsertBlock(target);
  b.Ret();
  EXPECT_EQ(f.InstructionCount(), 3u);  // bra + 2 rets
}

TEST(Function, VerifyCatchesDoubleDefinition) {
  Function f("k");
  const ValueId reg = f.AddRegister(Type::kI32);
  const BlockId entry = f.AddBlock("entry");
  Instruction def;
  def.op = Opcode::kMov;
  def.type = Type::kI32;
  def.dest = reg;
  def.operands = {f.AddConstInt(Type::kI32, 1)};
  f.block(entry).instructions.push_back(def);
  f.block(entry).instructions.push_back(def);  // defined twice
  f.block(entry).terminator = Terminator{TerminatorKind::kRet, kNoValue, kNoBlock, kNoBlock};
  EXPECT_THROW(f.Verify(), kf::Error);
}

TEST(Function, VerifyCatchesUseOfUndefinedValue) {
  Function f("k");
  const ValueId never_defined = f.AddRegister(Type::kI32);
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = f.AddBlock("entry");
  Instruction st;
  st.op = Opcode::kSt;
  st.type = Type::kI32;
  st.operands = {out, never_defined};
  f.block(entry).instructions.push_back(st);
  f.block(entry).terminator = Terminator{TerminatorKind::kRet, kNoValue, kNoBlock, kNoBlock};
  EXPECT_THROW(f.Verify(), kf::Error);
}

TEST(Function, VerifyCatchesNonPredGuard) {
  Function f("k");
  IrBuilder b(f);
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId x = b.Mov(Type::kI32, f.AddConstInt(Type::kI32, 3));
  b.Store(out, x, x);  // guard is an i32, not a predicate
  b.Ret();
  EXPECT_THROW(f.Verify(), kf::Error);
}

TEST(Function, ReplaceAllUsesRewritesOperandsGuardsAndConditions) {
  Function f("k");
  IrBuilder b(f);
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = b.CreateBlock("entry");
  const BlockId t = b.CreateBlock("t");
  const BlockId e = b.CreateBlock("e");
  b.SetInsertBlock(entry);
  const ValueId x = b.Mov(Type::kI32, f.AddConstInt(Type::kI32, 3));
  const ValueId p = b.Compare(Opcode::kSetLt, x, f.AddConstInt(Type::kI32, 9));
  b.Branch(p, t, e);
  b.SetInsertBlock(t);
  b.Store(out, x, p);
  b.Jump(e);
  b.SetInsertBlock(e);
  b.Ret();

  const ValueId replacement = f.AddRegister(Type::kPred);
  f.ReplaceAllUses(p, replacement);
  EXPECT_EQ(f.block(entry).terminator.condition, replacement);
  EXPECT_EQ(f.block(t).instructions[0].guard, replacement);
}

TEST(Function, ToStringShowsStructure) {
  Function f("demo");
  IrBuilder b(f);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  b.Load(Type::kI32, in);
  b.Ret();
  const std::string text = f.ToString();
  EXPECT_NE(text.find(".func demo"), std::string::npos);
  EXPECT_NE(text.find("ld.s32"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
}

}  // namespace
}  // namespace kf::ir
