// Fuzz-style differential testing of the optimizer: random kernel bodies
// (arithmetic DAGs, comparisons, selects, guarded stores, nested if-then
// triangles) interpreted before and after the -O3 pipeline must leave
// identical memory. This is the strongest guarantee we have that the
// enlarged optimization scope fusion creates (paper Fig 7f) is exploited
// soundly.
#include <gtest/gtest.h>

#include "common/random.h"
#include "ir/builder.h"
#include "ir/interpreter.h"
#include "ir/passes.h"

namespace kf::ir {
namespace {

// Builds a random kernel over `field_count` input slots and up to three
// output slots. Returns the function; identical construction for identical
// rng state (so the O0/O3 pair is built from two equally-seeded rngs).
Function BuildRandomKernel(kf::Rng& rng, int field_count) {
  Function f("fuzz");
  IrBuilder b(f, /*materialize_constants=*/rng.Bernoulli(0.5));
  std::vector<ValueId> inputs;
  for (int i = 0; i < field_count; ++i) {
    inputs.push_back(f.AddParam(Type::kPtr, "f" + std::to_string(i)));
  }
  std::vector<ValueId> outputs;
  for (int i = 0; i < 3; ++i) {
    outputs.push_back(f.AddParam(Type::kPtr, "out" + std::to_string(i)));
  }

  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);

  // A pool of live scalar values to draw operands from.
  std::vector<ValueId> pool;
  for (ValueId slot : inputs) pool.push_back(b.Load(Type::kI32, slot));
  pool.push_back(f.AddConstInt(Type::kI32, rng.UniformInt(-20, 20)));

  auto pick = [&]() {
    return pool[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(pool.size()) - 1))];
  };

  // Straight-line random expression DAG (division excluded: the interpreter
  // faults on zero and randomized operands would hit it).
  const int op_count = static_cast<int>(rng.UniformInt(2, 12));
  std::vector<ValueId> predicates;
  for (int i = 0; i < op_count; ++i) {
    switch (rng.UniformInt(0, 4)) {
      case 0:
        pool.push_back(b.Binary(Opcode::kAdd, Type::kI32, pick(), pick()));
        break;
      case 1:
        pool.push_back(b.Binary(Opcode::kSub, Type::kI32, pick(), pick()));
        break;
      case 2:
        pool.push_back(b.Binary(Opcode::kMul, Type::kI32, pick(), pick()));
        break;
      case 3: {
        const auto op = static_cast<Opcode>(
            static_cast<int>(Opcode::kSetLt) +
            static_cast<int>(rng.UniformInt(0, 5)));
        predicates.push_back(b.Compare(op, pick(), pick()));
        break;
      }
      case 4:
        if (!predicates.empty()) {
          const ValueId p = predicates[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(predicates.size()) - 1))];
          pool.push_back(b.Select(Type::kI32, p, pick(), pick()));
        } else {
          pool.push_back(b.Binary(Opcode::kMin, Type::kI32, pick(), pick()));
        }
        break;
    }
  }
  // Combine some predicates (feeds the predicate-combine pass).
  while (predicates.size() >= 2 && rng.Bernoulli(0.5)) {
    const ValueId a = predicates.back();
    predicates.pop_back();
    const ValueId c = predicates.back();
    predicates.pop_back();
    predicates.push_back(b.Binary(rng.Bernoulli(0.5) ? Opcode::kAnd : Opcode::kOr,
                                  Type::kPred, a, c));
  }

  // Emit stores: some unconditional, some in an if-then triangle, some
  // guarded directly.
  const BlockId then_block = b.CreateBlock("then");
  const BlockId exit = b.CreateBlock("exit");
  b.Store(outputs[0], pick());
  if (!predicates.empty()) {
    const ValueId p = predicates.back();
    if (rng.Bernoulli(0.5)) {
      b.Store(outputs[1], pick(), p);  // directly guarded
      b.Jump(then_block);
      b.SetInsertBlock(then_block);
      b.Jump(exit);
    } else {
      b.Branch(p, then_block, exit);  // triangle
      b.SetInsertBlock(then_block);
      b.Store(outputs[1], pick());
      b.Jump(exit);
    }
  } else {
    b.Store(outputs[1], pick());
    b.Jump(then_block);
    b.SetInsertBlock(then_block);
    b.Jump(exit);
  }
  b.SetInsertBlock(exit);
  b.Store(outputs[2], pick());
  b.Ret();
  f.Verify();
  return f;
}

class OptimizerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerFuzz, O3PreservesMemorySemantics) {
  const auto seed_base = static_cast<std::uint64_t>(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t seed = seed_base * 7919 + static_cast<std::uint64_t>(trial);
    kf::Rng build_rng_a(seed), build_rng_b(seed);
    const int fields = 3;
    Function reference = BuildRandomKernel(build_rng_a, fields);
    Function optimized = BuildRandomKernel(build_rng_b, fields);
    OptimizeO3(optimized);
    optimized.Verify();
    EXPECT_LE(optimized.InstructionCount(), reference.InstructionCount());

    kf::Rng probe_rng(seed ^ 0xabcdef);
    for (int probe = 0; probe < 10; ++probe) {
      SlotState in;
      for (int i = 0; i < fields; ++i) {
        in.ints["f" + std::to_string(i)] = probe_rng.UniformInt(-30, 30);
      }
      const SlotState a = Interpret(reference, in).slots;
      const SlotState b = Interpret(optimized, in).slots;
      ASSERT_EQ(a, b) << "seed " << seed << "\nreference:\n" << reference.ToString()
                      << "optimized:\n" << optimized.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace kf::ir
