#include "ir/interpreter.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/random.h"
#include "core/expr_lower.h"
#include "ir/builder.h"
#include "ir/kernel_gen.h"
#include "ir/passes.h"

namespace kf::ir {
namespace {

TEST(Interpreter, SelectKernelStoresMatchingElement) {
  const Function f = BuildSelectKernel("k", FilterStep{CompareKind::kLt, 100});
  SlotState in;
  in.ints["in"] = 42;
  const InterpreterResult result = Interpret(f, in);
  EXPECT_EQ(result.slots.ints.at("out"), 42);
}

TEST(Interpreter, SelectKernelSkipsNonMatchingElement) {
  const Function f = BuildSelectKernel("k", FilterStep{CompareKind::kLt, 100});
  SlotState in;
  in.ints["in"] = 500;
  const InterpreterResult result = Interpret(f, in);
  EXPECT_EQ(result.slots.ints.count("out"), 0u);
}

TEST(Interpreter, ArithKernelsComposeLikeFig5) {
  // A1 + A2 -> temp; temp - A3 -> out, separately and fused.
  SlotState in;
  in.ints["a1"] = 1;
  in.ints["a2"] = 4;
  in.ints["a3"] = 2;
  const Function a = BuildArithKernelA("a");
  const Function b = BuildArithKernelB("b");
  SlotState after_a = Interpret(a, in).slots;
  EXPECT_EQ(after_a.ints.at("temp"), 5);
  const SlotState after_b = Interpret(b, after_a).slots;
  EXPECT_EQ(after_b.ints.at("out"), 3);

  const Function fused = BuildFusedArithKernel("fused");
  EXPECT_EQ(Interpret(fused, in).slots.ints.at("out"), 3);
}

TEST(Interpreter, GuardedStoreRespectsPredicate) {
  Function f("k");
  IrBuilder b(f);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId d = b.Load(Type::kI32, in);
  const ValueId p = b.Compare(Opcode::kSetGt, d, f.AddConstInt(Type::kI32, 0));
  b.Store(out, d, p);
  b.Ret();

  SlotState positive;
  positive.ints["in"] = 7;
  EXPECT_EQ(Interpret(f, positive).slots.ints.count("out"), 1u);
  SlotState negative;
  negative.ints["in"] = -7;
  EXPECT_EQ(Interpret(f, negative).slots.ints.count("out"), 0u);
}

TEST(Interpreter, DivisionByZeroFaults) {
  Function f("k");
  IrBuilder b(f);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId d = b.Load(Type::kI32, in);
  const ValueId q = b.Binary(Opcode::kDiv, Type::kI32, f.AddConstInt(Type::kI32, 10), d);
  b.Store(out, q);
  b.Ret();
  SlotState zero;
  zero.ints["in"] = 0;
  EXPECT_THROW(Interpret(f, zero), kf::Error);
}

TEST(Interpreter, InfiniteLoopIsCaught) {
  Function f("k");
  IrBuilder b(f);
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  b.Jump(entry);
  EXPECT_THROW(Interpret(f, {}), kf::Error);
}

// --- The property that justifies the optimizer: O3 preserves semantics. -----

class OptimizationSemantics : public ::testing::TestWithParam<int> {};

TEST_P(OptimizationSemantics, FusedSelectChainsAgreeAtO0AndO3) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337 + 5);
  for (int trial = 0; trial < 40; ++trial) {
    // Random chain of 1-4 thresholds with random compare kinds.
    std::vector<FilterStep> steps;
    const int depth = static_cast<int>(rng.UniformInt(1, 4));
    for (int i = 0; i < depth; ++i) {
      steps.push_back(FilterStep{
          static_cast<CompareKind>(rng.UniformInt(0, 5)),
          rng.UniformInt(-100, 100)});
    }
    Function reference = BuildFusedSelectKernel("ref", steps);
    Function optimized = BuildFusedSelectKernel("opt", steps);
    OptimizeO3(optimized);

    for (int probe = 0; probe < 25; ++probe) {
      SlotState in;
      in.ints["in"] = rng.UniformInt(-150, 150);
      const InterpreterResult a = Interpret(reference, in);
      const InterpreterResult b = Interpret(optimized, in);
      ASSERT_EQ(a.slots, b.slots)
          << "input " << in.ints["in"] << ", kernel:\n" << reference.ToString()
          << "optimized:\n" << optimized.ToString();
      // Note: dynamic instruction counts may go *up* on non-matching
      // elements — if-conversion deliberately trades the branchy early exit
      // for straight-line predicated execution (no divergence). The static
      // count reduction is asserted in kernel_gen/table3 tests.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizationSemantics, ::testing::Range(0, 4));

TEST(OptimizationSemantics, LoweredPredicatesAgreeAtO0AndO3) {
  using relational::Expr;
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const Expr pred = Expr::And(
        Expr::Lt(Expr::FieldRef(0), Expr::Lit(rng.UniformInt(-50, 50))),
        Expr::Or(Expr::Ge(Expr::FieldRef(1), Expr::Lit(rng.UniformInt(-50, 50))),
                 Expr::Ne(Expr::FieldRef(0), Expr::FieldRef(1))));
    Function reference = core::LowerSelectFilter("ref", pred);
    Function optimized = core::LowerSelectFilter("opt", pred);
    OptimizeO3(optimized);
    for (int probe = 0; probe < 20; ++probe) {
      SlotState in;
      in.ints["f0"] = rng.UniformInt(-60, 60);
      in.ints["f1"] = rng.UniformInt(-60, 60);
      ASSERT_EQ(Interpret(reference, in).slots, Interpret(optimized, in).slots);
    }
  }
}

}  // namespace
}  // namespace kf::ir
