#include "ir/passes.h"

#include <gtest/gtest.h>

#include "ir/builder.h"

namespace kf::ir {
namespace {

// Counts instructions with a given opcode across the whole function.
std::size_t CountOp(const Function& f, Opcode op) {
  std::size_t n = 0;
  for (BlockId b = 0; b < f.block_count(); ++b) {
    for (const Instruction& inst : f.block(b).instructions) {
      if (inst.op == op) ++n;
    }
  }
  return n;
}

TEST(DcePass, RemovesUnusedPureInstructions) {
  Function f("k");
  IrBuilder b(f);
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const ValueId d = b.Load(Type::kI32, in);
  b.Binary(Opcode::kAdd, Type::kI32, d, d);  // dead
  b.Binary(Opcode::kMul, Type::kI32, d, d);  // dead
  b.Store(out, d);
  b.Ret();

  EXPECT_TRUE(MakeDeadCodeEliminationPass()->Run(f));
  EXPECT_EQ(f.block(entry).instructions.size(), 2u);  // ld + st
  EXPECT_FALSE(MakeDeadCodeEliminationPass()->Run(f));  // fixpoint
}

TEST(DcePass, RemovesTransitivelyDeadChains) {
  Function f("k");
  IrBuilder b(f);
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId d = b.Load(Type::kI32, in);
  const ValueId x = b.Binary(Opcode::kAdd, Type::kI32, d, d);
  b.Binary(Opcode::kMul, Type::kI32, x, x);  // uses x; both dead together
  b.Ret();
  EXPECT_TRUE(MakeDeadCodeEliminationPass()->Run(f));
  EXPECT_EQ(f.block(entry).instructions.size(), 0u);  // load dead too
}

TEST(DcePass, KeepsStores) {
  Function f("k");
  IrBuilder b(f);
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId out = f.AddParam(Type::kPtr, "out");
  b.Store(out, f.AddConstInt(Type::kI32, 1));
  b.Ret();
  EXPECT_FALSE(MakeDeadCodeEliminationPass()->Run(f));
  EXPECT_EQ(CountOp(f, Opcode::kSt), 1u);
}

TEST(CopyPropagation, ForwardsMovSources) {
  Function f("k");
  IrBuilder b(f);
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const ValueId d = b.Load(Type::kI32, in);
  const ValueId copy = b.Mov(Type::kI32, d);
  b.Store(out, copy);
  b.Ret();
  EXPECT_TRUE(MakeCopyPropagationPass()->Run(f));
  EXPECT_EQ(CountOp(f, Opcode::kMov), 0u);
  EXPECT_EQ(f.block(entry).instructions.back().operands[1], d);
}

TEST(ConstantFold, FoldsArithmeticAndComparisons) {
  Function f("k");
  IrBuilder b(f);
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const ValueId sum = b.Binary(Opcode::kAdd, Type::kI32, f.AddConstInt(Type::kI32, 2),
                               f.AddConstInt(Type::kI32, 3));
  b.Store(out, sum);
  b.Ret();
  EXPECT_TRUE(MakeConstantFoldPass()->Run(f));
  const Instruction& st = f.block(entry).instructions.back();
  EXPECT_TRUE(f.value(st.operands[1]).is_constant());
  EXPECT_EQ(f.value(st.operands[1]).ival, 5);
}

TEST(ConstantFold, FoldsBranchOnConstant) {
  Function f("k");
  IrBuilder b(f);
  const BlockId entry = b.CreateBlock("entry");
  const BlockId t = b.CreateBlock("t");
  const BlockId e = b.CreateBlock("e");
  b.SetInsertBlock(entry);
  b.Branch(f.AddConstInt(Type::kPred, 1), t, e);
  b.SetInsertBlock(t);
  b.Ret();
  b.SetInsertBlock(e);
  b.Ret();
  EXPECT_TRUE(MakeConstantFoldPass()->Run(f));
  EXPECT_EQ(f.block(entry).terminator.kind, TerminatorKind::kJump);
  EXPECT_EQ(f.block(entry).terminator.true_target, t);
}

TEST(ConstantFold, DoesNotFoldDivisionByZero) {
  Function f("k");
  IrBuilder b(f);
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const ValueId q = b.Binary(Opcode::kDiv, Type::kI32, f.AddConstInt(Type::kI32, 2),
                             f.AddConstInt(Type::kI32, 0));
  b.Store(out, q);
  b.Ret();
  EXPECT_FALSE(MakeConstantFoldPass()->Run(f));
  EXPECT_EQ(CountOp(f, Opcode::kDiv), 1u);
}

TEST(CsePass, DeduplicatesPureExpressions) {
  Function f("k");
  IrBuilder b(f);
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const ValueId d = b.Load(Type::kI32, in);
  const ValueId a1 = b.Binary(Opcode::kAdd, Type::kI32, d, d);
  const ValueId a2 = b.Binary(Opcode::kAdd, Type::kI32, d, d);  // duplicate
  (void)a1;
  b.Store(out, a2);
  b.Ret();
  EXPECT_TRUE(MakeCsePass()->Run(f));
  EXPECT_EQ(CountOp(f, Opcode::kAdd), 1u);
  EXPECT_EQ(f.block(entry).instructions.back().operands[1], a1);
}

TEST(CsePass, DeduplicatesLoadsButStoresKillThem) {
  Function f("k");
  IrBuilder b(f);
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const ValueId d1 = b.Load(Type::kI32, in);
  const ValueId d2 = b.Load(Type::kI32, in);  // dedup with d1
  b.Store(out, d2);
  const ValueId d3 = b.Load(Type::kI32, in);  // NOT dedup: store killed loads
  b.Store(out, d3);
  b.Ret();
  (void)d1;
  EXPECT_TRUE(MakeCsePass()->Run(f));
  EXPECT_EQ(CountOp(f, Opcode::kLd), 2u);
}

TEST(IfConversion, ConvertsTriangleToPredicatedStore) {
  Function f("k");
  IrBuilder b(f);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = b.CreateBlock("entry");
  const BlockId t = b.CreateBlock("t");
  const BlockId merge = b.CreateBlock("merge");
  b.SetInsertBlock(entry);
  const ValueId d = b.Load(Type::kI32, in);
  const ValueId p = b.Compare(Opcode::kSetLt, d, f.AddConstInt(Type::kI32, 10));
  b.Branch(p, t, merge);
  b.SetInsertBlock(t);
  b.Store(out, d);
  b.Jump(merge);
  b.SetInsertBlock(merge);
  b.Ret();

  EXPECT_TRUE(MakeIfConversionPass()->Run(f));
  f.Verify();
  // Single block remains: ld, setp, @p st, ret.
  EXPECT_EQ(f.block_count(), 1u);
  EXPECT_EQ(f.InstructionCount(), 4u);
  const Instruction& st = f.block(0).instructions.back();
  EXPECT_EQ(st.op, Opcode::kSt);
  EXPECT_EQ(st.guard, p);
}

TEST(IfConversion, NestedTrianglesCombineGuardsWithAnd) {
  Function f("k");
  IrBuilder b(f);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = b.CreateBlock("entry");
  const BlockId l1 = b.CreateBlock("l1");
  const BlockId l2 = b.CreateBlock("l2");
  const BlockId merge = b.CreateBlock("merge");
  b.SetInsertBlock(entry);
  const ValueId d = b.Load(Type::kI32, in);
  const ValueId p1 = b.Compare(Opcode::kSetLt, d, f.AddConstInt(Type::kI32, 10));
  b.Branch(p1, l1, merge);
  b.SetInsertBlock(l1);
  const ValueId p2 = b.Compare(Opcode::kSetLt, d, f.AddConstInt(Type::kI32, 5));
  b.Branch(p2, l2, merge);
  b.SetInsertBlock(l2);
  b.Store(out, d);
  b.Jump(merge);
  b.SetInsertBlock(merge);
  b.Ret();

  // Two rounds: inner triangle first, then the outer.
  Pass* pass_ptr = nullptr;
  auto pass = MakeIfConversionPass();
  pass_ptr = pass.get();
  while (pass_ptr->Run(f)) {
  }
  f.Verify();
  EXPECT_EQ(f.block_count(), 1u);
  EXPECT_EQ(CountOp(f, Opcode::kAnd), 1u);
  const Instruction& st = f.block(0).instructions.back();
  ASSERT_EQ(st.op, Opcode::kSt);
  EXPECT_TRUE(st.is_guarded());
}

TEST(IfConversion, RefusesNonSpeculatableThenBlock) {
  Function f("k");
  IrBuilder b(f);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = b.CreateBlock("entry");
  const BlockId t = b.CreateBlock("t");
  const BlockId merge = b.CreateBlock("merge");
  b.SetInsertBlock(entry);
  const ValueId d = b.Load(Type::kI32, in);
  const ValueId p = b.Compare(Opcode::kSetNe, d, f.AddConstInt(Type::kI32, 0));
  b.Branch(p, t, merge);
  b.SetInsertBlock(t);
  // Integer division may fault: not speculatable, blocks if-conversion.
  const ValueId q = b.Binary(Opcode::kDiv, Type::kI32, f.AddConstInt(Type::kI32, 100), d);
  b.Store(out, q);
  b.Jump(merge);
  b.SetInsertBlock(merge);
  b.Ret();

  MakeIfConversionPass()->Run(f);
  // The branch must still be there.
  bool has_branch = false;
  for (BlockId blk = 0; blk < f.block_count(); ++blk) {
    if (f.block(blk).terminator.kind == TerminatorKind::kBranch) has_branch = true;
  }
  EXPECT_TRUE(has_branch);
}

TEST(PredicateCombine, AndOfLessThansKeepsTighterBound) {
  Function f("k");
  IrBuilder b(f);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId d = b.Load(Type::kI32, in);
  const ValueId p1 = b.Compare(Opcode::kSetLt, d, f.AddConstInt(Type::kI32, 10));
  const ValueId p2 = b.Compare(Opcode::kSetLt, d, f.AddConstInt(Type::kI32, 5));
  const ValueId both = b.Binary(Opcode::kAnd, Type::kPred, p1, p2);
  b.Store(out, d, both);
  b.Ret();

  EXPECT_TRUE(MakePredicateCombinePass()->Run(f));
  f.Verify();
  // The AND became a single compare against 5; DCE can drop the old setps.
  const Instruction* rewritten = nullptr;
  for (const Instruction& inst : f.block(entry).instructions) {
    if (inst.dest == both) rewritten = &inst;
  }
  ASSERT_NE(rewritten, nullptr);
  EXPECT_EQ(rewritten->op, Opcode::kSetLt);
  EXPECT_EQ(f.value(rewritten->operands[1]).ival, 5);
}

TEST(PredicateCombine, OrOfGreaterThansKeepsSmallerBound) {
  Function f("k");
  IrBuilder b(f);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId d = b.Load(Type::kI32, in);
  const ValueId p1 = b.Compare(Opcode::kSetGt, d, f.AddConstInt(Type::kI32, 10));
  const ValueId p2 = b.Compare(Opcode::kSetGt, d, f.AddConstInt(Type::kI32, 5));
  const ValueId either = b.Binary(Opcode::kOr, Type::kPred, p1, p2);
  b.Store(out, d, either);
  b.Ret();
  EXPECT_TRUE(MakePredicateCombinePass()->Run(f));
  const Instruction* rewritten = nullptr;
  for (const Instruction& inst : f.block(entry).instructions) {
    if (inst.dest == either) rewritten = &inst;
  }
  ASSERT_NE(rewritten, nullptr);
  EXPECT_EQ(rewritten->op, Opcode::kSetGt);
  EXPECT_EQ(f.value(rewritten->operands[1]).ival, 5);
}

TEST(PredicateCombine, MixedSubjectsAreLeftAlone) {
  Function f("k");
  IrBuilder b(f);
  const ValueId in1 = f.AddParam(Type::kPtr, "in1");
  const ValueId in2 = f.AddParam(Type::kPtr, "in2");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId d1 = b.Load(Type::kI32, in1);
  const ValueId d2 = b.Load(Type::kI32, in2);
  const ValueId p1 = b.Compare(Opcode::kSetLt, d1, f.AddConstInt(Type::kI32, 10));
  const ValueId p2 = b.Compare(Opcode::kSetLt, d2, f.AddConstInt(Type::kI32, 5));
  const ValueId both = b.Binary(Opcode::kAnd, Type::kPred, p1, p2);
  b.Store(out, d1, both);
  b.Ret();
  EXPECT_FALSE(MakePredicateCombinePass()->Run(f));
}

TEST(Peephole, AlgebraicIdentities) {
  Function f("k");
  IrBuilder b(f);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId d = b.Load(Type::kI32, in);
  const ValueId a = b.Binary(Opcode::kAdd, Type::kI32, d, f.AddConstInt(Type::kI32, 0));
  const ValueId m = b.Binary(Opcode::kMul, Type::kI32, a, f.AddConstInt(Type::kI32, 1));
  b.Store(out, m);
  b.Ret();
  EXPECT_TRUE(MakePeepholePass()->Run(f));
  // Both became movs; copy-prop + DCE clean up fully.
  EXPECT_EQ(CountOp(f, Opcode::kAdd), 0u);
  EXPECT_EQ(CountOp(f, Opcode::kMul), 0u);
  OptimizeO3(f);
  EXPECT_EQ(f.InstructionCount(), 3u);  // ld, st, ret
}

TEST(Peephole, RecognizesMinFromSelp) {
  Function f("k");
  IrBuilder b(f);
  const ValueId in1 = f.AddParam(Type::kPtr, "a");
  const ValueId in2 = f.AddParam(Type::kPtr, "b");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId x = b.Load(Type::kI32, in1);
  const ValueId y = b.Load(Type::kI32, in2);
  const ValueId p = b.Compare(Opcode::kSetLt, x, y);
  const ValueId m = b.Select(Type::kI32, p, x, y);  // p ? x : y == min
  b.Store(out, m);
  b.Ret();
  EXPECT_TRUE(MakePeepholePass()->Run(f));
  EXPECT_EQ(CountOp(f, Opcode::kMin), 1u);
  EXPECT_EQ(CountOp(f, Opcode::kSelp), 0u);
  f.Verify();
}

TEST(Peephole, RecognizesMaxFromSwappedSelp) {
  Function f("k");
  IrBuilder b(f);
  const ValueId in1 = f.AddParam(Type::kPtr, "a");
  const ValueId in2 = f.AddParam(Type::kPtr, "b");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId x = b.Load(Type::kI32, in1);
  const ValueId y = b.Load(Type::kI32, in2);
  const ValueId p = b.Compare(Opcode::kSetLt, x, y);
  const ValueId m = b.Select(Type::kI32, p, y, x);  // p ? y : x == max
  b.Store(out, m);
  b.Ret();
  EXPECT_TRUE(MakePeepholePass()->Run(f));
  EXPECT_EQ(CountOp(f, Opcode::kMax), 1u);
}

TEST(ConstantFold, EqualTargetBranchBecomesJump) {
  Function f("k");
  IrBuilder b(f);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const BlockId entry = b.CreateBlock("entry");
  const BlockId next = b.CreateBlock("next");
  b.SetInsertBlock(entry);
  const ValueId d = b.Load(Type::kI32, in);
  const ValueId p = b.Compare(Opcode::kSetLt, d, f.AddConstInt(Type::kI32, 3));
  b.Branch(p, next, next);  // degenerate: both arms identical
  b.SetInsertBlock(next);
  b.Ret();
  EXPECT_TRUE(MakeConstantFoldPass()->Run(f));
  EXPECT_EQ(f.block(entry).terminator.kind, TerminatorKind::kJump);
  OptimizeO3(f);
  EXPECT_EQ(f.InstructionCount(), 1u);  // the dead load and compare vanish: ret
}

TEST(PassManager, ReachesFixpointOnO3Pipeline) {
  Function f("k");
  IrBuilder b(f);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId d = b.Load(Type::kI32, in);
  b.Store(out, d);
  b.Ret();
  PassManager pm = PassManager::StandardO3();
  const int iterations = pm.RunToFixpoint(f);
  EXPECT_LE(iterations, 2);
  f.Verify();
}

}  // namespace
}  // namespace kf::ir
