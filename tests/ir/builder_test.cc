#include "ir/builder.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace kf::ir {
namespace {

TEST(IrBuilder, EmitWithoutBlockThrows) {
  Function f("k");
  IrBuilder b(f);
  EXPECT_THROW(b.Ret(), kf::Error);
}

TEST(IrBuilder, MaterializeConstantsEmitsMovs) {
  Function f("k");
  IrBuilder b(f, /*materialize_constants=*/true);
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId c = f.AddConstInt(Type::kI32, 7);
  const ValueId x = b.Mov(Type::kI32, f.AddConstInt(Type::kI32, 1));
  b.Binary(Opcode::kAdd, Type::kI32, x, c);
  b.Ret();
  // mov(x) + mov(materialized 7) + add.
  EXPECT_EQ(f.block(entry).instructions.size(), 3u);
  EXPECT_EQ(f.block(entry).instructions[1].op, Opcode::kMov);
}

TEST(IrBuilder, ImmediateModeUsesConstantsDirectly) {
  Function f("k");
  IrBuilder b(f, /*materialize_constants=*/false);
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId x = b.Mov(Type::kI32, f.AddConstInt(Type::kI32, 1));
  b.Binary(Opcode::kAdd, Type::kI32, x, f.AddConstInt(Type::kI32, 7));
  b.Ret();
  EXPECT_EQ(f.block(entry).instructions.size(), 2u);  // mov + add only
}

TEST(IrBuilder, CompareProducesPredicate) {
  Function f("k");
  IrBuilder b(f);
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId d = b.Load(Type::kI32, in);
  const ValueId p = b.Compare(Opcode::kSetLt, d, f.AddConstInt(Type::kI32, 3));
  b.Ret();
  EXPECT_EQ(f.value(p).type, Type::kPred);
  EXPECT_THROW(b.Compare(Opcode::kAdd, d, d), kf::Error);  // not a compare op
}

TEST(IrBuilder, SelectAndMadShapes) {
  Function f("k");
  IrBuilder b(f);
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId d = b.Load(Type::kI32, in);
  const ValueId p = b.Compare(Opcode::kSetNe, d, f.AddConstInt(Type::kI32, 0));
  const ValueId sel = b.Select(Type::kI32, p, d, f.AddConstInt(Type::kI32, -1));
  const ValueId mad = b.Mad(Type::kI32, d, d, sel);
  b.Ret();
  f.Verify();
  EXPECT_EQ(f.value(sel).type, Type::kI32);
  EXPECT_EQ(f.value(mad).type, Type::kI32);
}

TEST(IrBuilder, GuardedStoreRoundTrips) {
  Function f("k");
  IrBuilder b(f);
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const ValueId d = b.Load(Type::kI32, in);
  const ValueId p = b.Compare(Opcode::kSetGt, d, f.AddConstInt(Type::kI32, 0));
  b.Store(out, d, p);
  b.Ret();
  f.Verify();
  const Instruction& st = f.block(entry).instructions.back();
  EXPECT_EQ(st.op, Opcode::kSt);
  EXPECT_TRUE(st.is_guarded());
  EXPECT_EQ(st.guard, p);
}

}  // namespace
}  // namespace kf::ir
