#include "ir/liveness.h"

#include <gtest/gtest.h>

#include "core/expr_lower.h"
#include "ir/builder.h"
#include "ir/kernel_gen.h"
#include "ir/passes.h"

namespace kf::ir {
namespace {

TEST(Liveness, StraightLinePressure) {
  // d = ld; x = d+d; y = x*x; st y  — at the `mul`, only x is live; peak 2
  // (d and x live simultaneously at the add's result point... d dies there).
  Function f("k");
  IrBuilder b(f);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId d = b.Load(Type::kI32, in);
  const ValueId x = b.Binary(Opcode::kAdd, Type::kI32, d, d);
  const ValueId y = b.Binary(Opcode::kMul, Type::kI32, x, x);
  b.Store(out, y);
  b.Ret();
  EXPECT_EQ(MaxRegisterPressure(f), 1);  // only one value live at a time
}

TEST(Liveness, OverlappingLifetimesRaisePressure) {
  // Load three values, then combine them: all three live together.
  Function f("k");
  IrBuilder b(f);
  const ValueId a_slot = f.AddParam(Type::kPtr, "a");
  const ValueId b_slot = f.AddParam(Type::kPtr, "b");
  const ValueId c_slot = f.AddParam(Type::kPtr, "c");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = b.CreateBlock("entry");
  b.SetInsertBlock(entry);
  const ValueId x = b.Load(Type::kI32, a_slot);
  const ValueId y = b.Load(Type::kI32, b_slot);
  const ValueId z = b.Load(Type::kI32, c_slot);
  const ValueId xy = b.Binary(Opcode::kAdd, Type::kI32, x, y);
  const ValueId all = b.Binary(Opcode::kAdd, Type::kI32, xy, z);
  b.Store(out, all);
  b.Ret();
  EXPECT_EQ(MaxRegisterPressure(f), 3);  // x, y, z live before the first add
}

TEST(Liveness, ValuesLiveAcrossBlocks) {
  Function f("k");
  IrBuilder b(f);
  const ValueId in = f.AddParam(Type::kPtr, "in");
  const ValueId out = f.AddParam(Type::kPtr, "out");
  const BlockId entry = b.CreateBlock("entry");
  const BlockId then_block = b.CreateBlock("then");
  const BlockId exit = b.CreateBlock("exit");
  b.SetInsertBlock(entry);
  const ValueId d = b.Load(Type::kI32, in);
  const ValueId p = b.Compare(Opcode::kSetLt, d, f.AddConstInt(Type::kI32, 9));
  b.Branch(p, then_block, exit);
  b.SetInsertBlock(then_block);
  b.Store(out, d);  // d is live into this block
  b.Jump(exit);
  b.SetInsertBlock(exit);
  b.Ret();

  const LivenessInfo info = AnalyzeLiveness(f);
  EXPECT_EQ(info.live_in[then_block], std::vector<ValueId>{d});
  EXPECT_TRUE(info.live_in[exit].empty());
  EXPECT_GE(info.max_pressure, 2);  // d and p around the branch
}

TEST(Liveness, FusionDepthRaisesMeasuredPressure) {
  // The planner's premise, measured on real kernel bodies: deeper fused
  // chains have (weakly) higher peak register pressure.
  int last = 0;
  for (int depth = 1; depth <= 4; ++depth) {
    std::vector<FilterStep> steps;
    for (int i = 0; i < depth; ++i) {
      steps.push_back(FilterStep{CompareKind::kLt, 1000 - i});
    }
    const Function f = BuildFusedSelectKernel("chain", steps);
    const int pressure = MaxRegisterPressure(f);
    EXPECT_GE(pressure, last) << "depth " << depth;
    last = pressure;
  }
  EXPECT_GT(last, 1);
}

TEST(Liveness, OptimizationNeverIncreasesPressureOnOurKernels) {
  for (int depth = 1; depth <= 3; ++depth) {
    std::vector<FilterStep> steps;
    for (int i = 0; i < depth; ++i) {
      steps.push_back(FilterStep{CompareKind::kLt, 500 * (i + 1)});
    }
    Function f = BuildFusedSelectKernel("chain", steps);
    const int before = MaxRegisterPressure(f);
    OptimizeO3(f);
    EXPECT_LE(MaxRegisterPressure(f), before) << "depth " << depth;
  }
}

TEST(Liveness, MultiFieldPredicateMatchesSethiUllmanOrder) {
  using relational::Expr;
  // Wide balanced predicate: measured pressure tracks the planner's
  // Sethi-Ullman style estimate within a small constant.
  const Expr pred = Expr::And(
      Expr::Lt(Expr::Add(Expr::FieldRef(0), Expr::FieldRef(1)), Expr::Lit(10)),
      Expr::Gt(Expr::Add(Expr::FieldRef(2), Expr::FieldRef(3)), Expr::Lit(-10)));
  const Function f = core::LowerSelectFilter("wide", pred, false);
  const int measured = MaxRegisterPressure(f);
  const int estimated = relational::ExprRegisters(pred);
  EXPECT_NEAR(measured, estimated + 4, 4);  // + loads kept live for the store
}

}  // namespace
}  // namespace kf::ir
