// Reproduces the mechanism of paper Table III: compiler optimization has a
// larger scope — and a larger payoff — after kernel fusion.
#include <gtest/gtest.h>

#include "ir/kernel_gen.h"
#include "ir/passes.h"

namespace kf::ir {
namespace {

struct Table3Counts {
  std::size_t unfused_o0;  // two separate kernels, no optimization
  std::size_t unfused_o3;
  std::size_t fused_o0;    // one fused kernel, no optimization
  std::size_t fused_o3;
};

Table3Counts MeasureTable3() {
  Table3Counts counts{};
  Function k1 = BuildSelectKernel("k1", FilterStep{CompareKind::kLt, 1000});
  Function k2 = BuildSelectKernel("k2", FilterStep{CompareKind::kLt, 500});
  counts.unfused_o0 = k1.InstructionCount() + k2.InstructionCount();
  OptimizeO3(k1);
  OptimizeO3(k2);
  counts.unfused_o3 = k1.InstructionCount() + k2.InstructionCount();

  Function fused = BuildFusedSelectKernel(
      "fused", {{CompareKind::kLt, 1000}, {CompareKind::kLt, 500}});
  counts.fused_o0 = fused.InstructionCount();
  OptimizeO3(fused);
  counts.fused_o3 = fused.InstructionCount();
  return counts;
}

TEST(Table3, FusedO0MatchesPaperCount) {
  EXPECT_EQ(MeasureTable3().fused_o0, 10u);  // paper: 10
}

TEST(Table3, OptimizationShrinksBothVariants) {
  const Table3Counts c = MeasureTable3();
  EXPECT_LT(c.unfused_o3, c.unfused_o0);
  EXPECT_LT(c.fused_o3, c.fused_o0);
}

TEST(Table3, FusionEnlargesOptimizationPayoff) {
  // The paper's headline: -O3 removes 40% of the unfused code but 70% of the
  // fused code. Our honest counts differ in absolute value, but the relative
  // reduction must be strictly larger after fusion.
  const Table3Counts c = MeasureTable3();
  const double unfused_reduction =
      1.0 - static_cast<double>(c.unfused_o3) / static_cast<double>(c.unfused_o0);
  const double fused_reduction =
      1.0 - static_cast<double>(c.fused_o3) / static_cast<double>(c.fused_o0);
  EXPECT_GT(fused_reduction, unfused_reduction + 0.15);
}

TEST(Table3, FusedO3CollapsesToSingleComparison) {
  // d < 1000 && d < 500 folds to d < 500: ld, setp, @p st, ret.
  Function fused = BuildFusedSelectKernel(
      "fused", {{CompareKind::kLt, 1000}, {CompareKind::kLt, 500}});
  OptimizeO3(fused);
  EXPECT_EQ(fused.InstructionCount(), 4u);
  // Exactly one comparison remains, against the tighter bound.
  std::size_t compares = 0;
  for (BlockId b = 0; b < fused.block_count(); ++b) {
    for (const Instruction& inst : fused.block(b).instructions) {
      if (IsCompare(inst.op)) {
        ++compares;
        EXPECT_EQ(fused.value(inst.operands[1]).ival, 500);
      }
    }
  }
  EXPECT_EQ(compares, 1u);
}

TEST(Table3, FusedO3BeatsUnfusedO3) {
  const Table3Counts c = MeasureTable3();
  EXPECT_LT(c.fused_o3, c.unfused_o3);
}

TEST(Table3, ThreeWayFusionStillCollapses) {
  Function fused = BuildFusedSelectKernel(
      "fused3",
      {{CompareKind::kLt, 1000}, {CompareKind::kLt, 500}, {CompareKind::kLt, 250}});
  OptimizeO3(fused);
  EXPECT_EQ(fused.InstructionCount(), 4u);  // still ld, setp, @p st, ret
}

}  // namespace
}  // namespace kf::ir
