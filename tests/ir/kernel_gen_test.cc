#include "ir/kernel_gen.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "ir/passes.h"

namespace kf::ir {
namespace {

TEST(KernelGen, SelectKernelHasPaperO0Shape) {
  // ld, mov(threshold), setp, bra, st, ret — within one of the paper's
  // "5 instructions" depending on how immediates are counted.
  const Function f = BuildSelectKernel("select", FilterStep{CompareKind::kLt, 100});
  EXPECT_GE(f.InstructionCount(), 5u);
  EXPECT_LE(f.InstructionCount(), 6u);
}

TEST(KernelGen, FusedTwoSelectsHasTenInstructionsAtO0) {
  // Paper Table III row 2: the unoptimized fused kernel has 10 instructions.
  const Function f = BuildFusedSelectKernel(
      "fused", {{CompareKind::kLt, 100}, {CompareKind::kLt, 50}});
  EXPECT_EQ(f.InstructionCount(), 10u);
}

TEST(KernelGen, FusedChainGrowsLinearly) {
  const Function two = BuildFusedSelectKernel(
      "f2", {{CompareKind::kLt, 9}, {CompareKind::kLt, 5}});
  const Function three = BuildFusedSelectKernel(
      "f3", {{CompareKind::kLt, 9}, {CompareKind::kLt, 5}, {CompareKind::kLt, 3}});
  EXPECT_GT(three.InstructionCount(), two.InstructionCount());
}

TEST(KernelGen, FusedSelectRejectsEmptyChain) {
  EXPECT_THROW(BuildFusedSelectKernel("empty", {}), kf::Error);
}

TEST(KernelGen, ArithKernelsVerifyAndOptimize) {
  Function a = BuildArithKernelA("a");
  Function b = BuildArithKernelB("b");
  Function fused = BuildFusedArithKernel("fused");
  const std::size_t before = fused.InstructionCount();
  OptimizeO3(a);
  OptimizeO3(b);
  OptimizeO3(fused);
  // Fusion eliminated the temp store+load pair: the fused optimized kernel
  // is smaller than the two optimized kernels combined.
  EXPECT_LT(fused.InstructionCount(), a.InstructionCount() + b.InstructionCount());
  EXPECT_LT(fused.InstructionCount(), before);
}

TEST(KernelGen, AllCompareKindsLower) {
  for (CompareKind kind : {CompareKind::kLt, CompareKind::kLe, CompareKind::kGt,
                           CompareKind::kGe, CompareKind::kEq, CompareKind::kNe}) {
    const Function f = BuildSelectKernel("k", FilterStep{kind, 1});
    EXPECT_GT(f.InstructionCount(), 0u);
  }
}

}  // namespace
}  // namespace kf::ir
