#include "tpch/datagen.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"

namespace kf::tpch {
namespace {

TEST(Datagen, Deterministic) {
  TpchConfig config;
  config.order_count = 100;
  config.supplier_count = 20;
  const TpchData a = MakeTpchData(config);
  const TpchData b = MakeTpchData(config);
  EXPECT_TRUE(relational::SameRowMultiset(a.lineitem, b.lineitem));
  EXPECT_TRUE(relational::SameRowMultiset(a.orders, b.orders));
}

TEST(Datagen, SchemasAndCardinalities) {
  TpchConfig config;
  config.order_count = 200;
  config.supplier_count = 30;
  const TpchData data = MakeTpchData(config);
  EXPECT_EQ(data.nation.row_count(), 25u);
  EXPECT_EQ(data.supplier.row_count(), 30u);
  EXPECT_EQ(data.orders.row_count(), 200u);
  // 1-7 lineitems per order.
  EXPECT_GE(data.lineitem.row_count(), 200u);
  EXPECT_LE(data.lineitem.row_count(), 1400u);
  EXPECT_EQ(data.lineitem.column_count(), 12u);
}

TEST(Datagen, ValueDomainsFollowSpec) {
  TpchConfig config;
  config.order_count = 300;
  const TpchData data = MakeTpchData(config);
  const auto& qty = data.lineitem.column("l_quantity").AsInt32();
  const auto& disc = data.lineitem.column("l_discount").AsFloat64();
  const auto& tax = data.lineitem.column("l_tax").AsFloat64();
  const auto& ship = data.lineitem.column("l_shipdate").AsInt32();
  for (std::size_t r = 0; r < qty.size(); ++r) {
    EXPECT_GE(qty[r], 1);
    EXPECT_LE(qty[r], 50);
    EXPECT_GE(disc[r], 0.0);
    EXPECT_LE(disc[r], 0.10);
    EXPECT_GE(tax[r], 0.0);
    EXPECT_LE(tax[r], 0.08);
    EXPECT_GE(ship[r], kDateLo);
    EXPECT_LE(ship[r], kDateHi);
  }
}

TEST(Datagen, DistinctSuppliersWithinOrder) {
  TpchConfig config;
  config.order_count = 150;
  config.supplier_count = 25;
  const TpchData data = MakeTpchData(config);
  const auto& okey = data.lineitem.column("l_orderkey").AsInt64();
  const auto& skey = data.lineitem.column("l_suppkey").AsInt64();
  std::map<std::int64_t, std::set<std::int64_t>> per_order;
  std::map<std::int64_t, std::size_t> counts;
  for (std::size_t r = 0; r < okey.size(); ++r) {
    per_order[okey[r]].insert(skey[r]);
    ++counts[okey[r]];
  }
  for (const auto& [order, suppliers] : per_order) {
    EXPECT_EQ(suppliers.size(), counts[order]) << "order " << order;
  }
}

TEST(Datagen, StatusMixRoughlyHalfF) {
  TpchConfig config;
  config.order_count = 5000;
  const TpchData data = MakeTpchData(config);
  const auto& status = data.orders.column("o_orderstatus").AsInt32();
  const auto f_count = static_cast<double>(
      std::count(status.begin(), status.end(), kOrderF));
  EXPECT_NEAR(f_count / static_cast<double>(status.size()), 0.486, 0.05);
}

TEST(Datagen, LateFractionRoughlyThirty) {
  TpchConfig config;
  config.order_count = 5000;
  const TpchData data = MakeTpchData(config);
  const auto& commit = data.lineitem.column("l_commitdate").AsInt32();
  const auto& receipt = data.lineitem.column("l_receiptdate").AsInt32();
  std::size_t late = 0;
  for (std::size_t r = 0; r < commit.size(); ++r) {
    if (receipt[r] > commit[r]) ++late;
  }
  EXPECT_NEAR(static_cast<double>(late) / static_cast<double>(commit.size()), 0.30,
              0.05);
}

TEST(Datagen, RejectsBadConfig) {
  TpchConfig bad;
  bad.order_count = 0;
  EXPECT_THROW(MakeTpchData(bad), kf::Error);
  TpchConfig too_many_lines;
  too_many_lines.max_lines_per_order = 9;
  EXPECT_THROW(MakeTpchData(too_many_lines), kf::Error);
}

TEST(SplitQ1Columns, SevenAlignedColumnTables) {
  TpchConfig config;
  config.order_count = 50;
  const TpchData data = MakeTpchData(config);
  const Q1Columns columns = SplitQ1Columns(data.lineitem);
  const std::size_t n = data.lineitem.row_count();
  for (const relational::Table* t :
       {&columns.shipdate, &columns.quantity, &columns.price, &columns.discount,
        &columns.tax, &columns.flag, &columns.status}) {
    EXPECT_EQ(t->row_count(), n);
    EXPECT_EQ(t->column_count(), 2u);
  }
  // Row ids align across the splits.
  EXPECT_EQ(columns.shipdate.column(0).Get(5), columns.price.column(0).Get(5));
}

}  // namespace
}  // namespace kf::tpch
