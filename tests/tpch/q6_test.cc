#include "tpch/q6.h"

#include <gtest/gtest.h>

#include "core/query_executor.h"

namespace kf::tpch {
namespace {

using core::ExecutorOptions;
using core::Strategy;

TpchData SmallData() {
  TpchConfig config;
  config.order_count = 2000;
  config.supplier_count = 50;
  return MakeTpchData(config);
}

TEST(Q6, WholePlanFusesIntoOneKernel) {
  // Q6 is the upper bound for fusion: no JOIN build sides, no SORT — the
  // planner must produce exactly one cluster covering all five operators.
  const TpchData data = SmallData();
  const QueryPlan plan = BuildQ6Plan(data);
  const core::FusionPlan fusion = PlanFusion(plan.graph);
  ASSERT_EQ(fusion.clusters.size(), 1u);
  EXPECT_EQ(fusion.clusters[0].nodes.size(), 5u);
  EXPECT_TRUE(fusion.clusters[0].fused());
  EXPECT_EQ(fusion.clusters[0].outputs, std::vector<core::NodeId>{plan.sink});
}

class Q6Execution : public ::testing::TestWithParam<Strategy> {};

TEST_P(Q6Execution, MatchesScalarReference) {
  const TpchData data = SmallData();
  const QueryPlan plan = BuildQ6Plan(data);
  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  ExecutorOptions options;
  options.strategy = GetParam();
  options.chunk_count = 8;
  const auto report = executor.Execute(plan.graph, plan.sources, options);
  ASSERT_EQ(report.sink_results.count(plan.sink), 1u);
  EXPECT_TRUE(relational::ApproxSameRowMultiset(report.sink_results.at(plan.sink),
                                                ReferenceQ6(data.lineitem), 1e-9))
      << "strategy " << ToString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, Q6Execution,
                         ::testing::Values(Strategy::kSerial, Strategy::kFused,
                                           Strategy::kFission,
                                           Strategy::kFusedFission),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case Strategy::kSerial: return "Serial";
                             case Strategy::kFused: return "Fused";
                             case Strategy::kFission: return "Fission";
                             default: return "FusedFission";
                           }
                         });

TEST(Q6, FusionGainExceedsQ1s) {
  // With nothing unfusable, Q6's fusion speedup must beat Q1's.
  const TpchData data = SmallData();
  const QueryPlan q6 = BuildQ6Plan(data);
  const QueryPlan q1 = BuildQ1Plan(data);
  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  auto gain = [&](const QueryPlan& plan) {
    ExecutorOptions serial;
    serial.strategy = Strategy::kSerial;
    serial.chunk_count = 8;
    serial.fusion.register_budget = 63;
    ExecutorOptions fused = serial;
    fused.strategy = Strategy::kFused;
    return executor.Execute(plan.graph, plan.sources, serial).compute_time /
           executor.Execute(plan.graph, plan.sources, fused).compute_time;
  };
  EXPECT_GT(gain(q6), gain(q1));
  EXPECT_GT(gain(q6), 2.0);
}

TEST(Q6, ReferenceRevenueIsPositive) {
  const TpchData data = SmallData();
  const relational::Table result = ReferenceQ6(data.lineitem);
  ASSERT_EQ(result.row_count(), 1u);
  EXPECT_GT(result.GetRow(0)[0].as_double(), 0.0);
}

}  // namespace
}  // namespace kf::tpch
