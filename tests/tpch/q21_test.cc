#include "tpch/q21.h"

#include <gtest/gtest.h>

#include "core/query_executor.h"

namespace kf::tpch {
namespace {

using core::ExecutorOptions;
using core::Strategy;

TpchData SmallData() {
  TpchConfig config;
  config.order_count = 600;
  config.supplier_count = 50;
  config.target_nation = 20;
  return MakeTpchData(config);
}

TEST(Q21, PlanHasManyRelationalOperators) {
  const TpchData data = SmallData();
  const QueryPlan plan = BuildQ21Plan(data);
  // 4 sources + 13 operators.
  EXPECT_EQ(plan.graph.Sources().size(), 4u);
  EXPECT_GE(plan.graph.node_count(), 16u);
}

TEST(Q21, SortsFragmentTheFusionPlan) {
  // "SORTs form a boundary for the application of kernel fusion": Q21 fuses
  // less than Q1 — multiple clusters, at least two of them fused.
  const TpchData data = SmallData();
  const QueryPlan plan = BuildQ21Plan(data);
  const core::FusionPlan fusion = PlanFusion(plan.graph);
  EXPECT_GE(fusion.clusters.size(), 5u);
  EXPECT_GE(fusion.fused_cluster_count(), 2u);
  // The big fused block streams the lineitem source with the late filter,
  // both per-order aggregations, and the probe joins.
  std::size_t biggest = 0;
  const core::FusionCluster* big_cluster = nullptr;
  for (const auto& cluster : fusion.clusters) {
    if (cluster.nodes.size() > biggest) {
      biggest = cluster.nodes.size();
      big_cluster = &cluster;
    }
  }
  ASSERT_GE(biggest, 4u);
  // That block is a single fused kernel containing TWO terminal reductions
  // (the per-order and per-late counts) alongside the streaming chain — a
  // multi-output fused kernel, pattern (c) + (g) composed.
  int reductions = 0;
  for (core::NodeId member : big_cluster->nodes) {
    if (core::Classify(plan.graph.node(member).desc.kind) ==
        core::FusionClass::kReduction) {
      ++reductions;
    }
  }
  EXPECT_EQ(reductions, 2);
  EXPECT_GE(big_cluster->outputs.size(), 3u);  // chain exit + both counts
}

class Q21Execution : public ::testing::TestWithParam<Strategy> {};

TEST_P(Q21Execution, MatchesScalarReference) {
  const TpchData data = SmallData();
  const QueryPlan plan = BuildQ21Plan(data);
  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  ExecutorOptions options;
  options.strategy = GetParam();
  options.chunk_count = 8;
  const auto report = executor.Execute(plan.graph, plan.sources, options);
  ASSERT_EQ(report.sink_results.count(plan.sink), 1u);
  const relational::Table reference = ReferenceQ21(data);
  EXPECT_TRUE(relational::SameRowMultiset(report.sink_results.at(plan.sink), reference))
      << "strategy " << ToString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, Q21Execution,
                         ::testing::Values(Strategy::kSerial, Strategy::kFused,
                                           Strategy::kFission,
                                           Strategy::kFusedFission),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case Strategy::kSerial: return "Serial";
                             case Strategy::kFused: return "Fused";
                             case Strategy::kFission: return "Fission";
                             default: return "FusedFission";
                           }
                         });

TEST(Q21, ReferenceFindsSomeWaitingSuppliers) {
  const TpchData data = SmallData();
  const relational::Table reference = ReferenceQ21(data);
  EXPECT_GT(reference.row_count(), 0u);
  EXPECT_LT(reference.row_count(), data.supplier.row_count());
}

TEST(Q21, FusionGainSmallerThanQ1) {
  // Fig 18: Q21 gains ~13% vs Q1's ~26% — the mechanism is the unfusable
  // SORT/AGGREGATE fraction. We assert the qualitative relation.
  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  auto gain = [&](const QueryPlan& plan) {
    ExecutorOptions serial;
    serial.strategy = Strategy::kSerial;
    serial.chunk_count = 8;
    serial.fusion.register_budget = 63;
    ExecutorOptions fused = serial;
    fused.strategy = Strategy::kFused;
    const double base = executor.Execute(plan.graph, plan.sources, serial).makespan;
    const double opt = executor.Execute(plan.graph, plan.sources, fused).makespan;
    return base / opt;
  };
  const TpchData data = SmallData();
  const QueryPlan q1 = BuildQ1Plan(data);
  const QueryPlan q21 = BuildQ21Plan(data);
  EXPECT_GT(gain(q1), 1.0);
  EXPECT_GT(gain(q21), 1.0);
}

}  // namespace
}  // namespace kf::tpch
