#include "tpch/q1.h"

#include <gtest/gtest.h>

#include "core/query_executor.h"

namespace kf::tpch {
namespace {

using core::ExecutorOptions;
using core::Strategy;

TpchData SmallData() {
  TpchConfig config;
  config.order_count = 400;
  config.supplier_count = 40;
  return MakeTpchData(config);
}

TEST(Q1, PlanShapeMatchesFig17a) {
  const TpchData data = SmallData();
  const QueryPlan plan = BuildQ1Plan(data);
  // 7 sources + select + 6 joins + sort + 2 ariths + aggregate + unique.
  EXPECT_EQ(plan.graph.node_count(), 19u);
  EXPECT_EQ(plan.graph.Sources().size(), 7u);
  EXPECT_EQ(plan.graph.Sinks(), std::vector<core::NodeId>{plan.sink});
}

TEST(Q1, FusionPlanMatchesPaperStructure) {
  // "The first part of the query including one SELECT and six JOINs can be
  // fused into one kernel. All of the arithmetic computations ... can be
  // fused as well." SORT and UNIQUE stay alone.
  const TpchData data = SmallData();
  const QueryPlan plan = BuildQ1Plan(data);
  core::FusionOptions options;
  options.register_budget = 63;
  const core::FusionPlan fusion = PlanFusion(plan.graph, options);
  ASSERT_EQ(fusion.clusters.size(), 4u);
  EXPECT_EQ(fusion.clusters[0].nodes.size(), 7u);  // select + 6 joins
  EXPECT_EQ(fusion.clusters[1].nodes.size(), 1u);  // sort (barrier)
  EXPECT_EQ(fusion.clusters[2].nodes.size(), 3u);  // arith, arith, aggregate
  EXPECT_EQ(fusion.clusters[3].nodes.size(), 1u);  // unique (barrier)
}

class Q1Execution : public ::testing::TestWithParam<Strategy> {};

TEST_P(Q1Execution, MatchesScalarReference) {
  const TpchData data = SmallData();
  const QueryPlan plan = BuildQ1Plan(data);
  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  ExecutorOptions options;
  options.strategy = GetParam();
  options.chunk_count = 8;
  options.fusion.register_budget = 63;
  const auto report = executor.Execute(plan.graph, plan.sources, options);
  ASSERT_EQ(report.sink_results.count(plan.sink), 1u);
  const relational::Table reference = ReferenceQ1(data.lineitem);
  EXPECT_TRUE(relational::ApproxSameRowMultiset(report.sink_results.at(plan.sink),
                                                reference, 1e-6))
      << "strategy " << ToString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, Q1Execution,
                         ::testing::Values(Strategy::kSerial, Strategy::kFused,
                                           Strategy::kFission,
                                           Strategy::kFusedFission),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case Strategy::kSerial: return "Serial";
                             case Strategy::kFused: return "Fused";
                             case Strategy::kFission: return "Fission";
                             default: return "FusedFission";
                           }
                         });

TEST(Q1, FusionImprovesSimulatedRuntime) {
  // Fig 18(a): fusion helps Q1 substantially; fission adds a little more.
  const TpchData data = SmallData();
  const QueryPlan plan = BuildQ1Plan(data);
  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  std::map<Strategy, double> makespans;
  for (Strategy s :
       {Strategy::kSerial, Strategy::kFused, Strategy::kFusedFission}) {
    ExecutorOptions options;
    options.strategy = s;
    options.chunk_count = 8;
    options.fusion.register_budget = 63;
    makespans[s] = executor.Execute(plan.graph, plan.sources, options).makespan;
  }
  EXPECT_LT(makespans[Strategy::kFused], makespans[Strategy::kSerial]);
  // At this functional test size (a few hundred KB) fission's per-segment
  // PCIe latency outweighs the overlap — applying fission must be a
  // *decision*, exactly the paper's point that "the application of kernel
  // fission must distinguish between such cases" (Fig 12). The large-data
  // behaviour (Fig 18a: fission adds ~1% on top of fusion) is exercised by
  // the benchmark harness at realistic row counts.
  EXPECT_GT(makespans[Strategy::kFusedFission], 0.0);
}

TEST(Q1, ReferenceHasAtMostSixGroups) {
  // 3 return flags x 2 line statuses.
  const TpchData data = SmallData();
  const relational::Table reference = ReferenceQ1(data.lineitem);
  EXPECT_GE(reference.row_count(), 1u);
  EXPECT_LE(reference.row_count(), 6u);
}

}  // namespace
}  // namespace kf::tpch
