#include "sim/kernel_cost_model.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"

namespace kf::sim {
namespace {

KernelProfile StreamingProfile(std::uint64_t elements) {
  KernelProfile p;
  p.label = "streaming";
  p.elements = elements;
  p.ops_per_element = 8.0;
  p.global_bytes_read = elements * 4;
  p.global_bytes_written = elements * 2;
  return p;
}

TEST(KernelCostModel, MemoryBoundKernelScalesWithTraffic) {
  KernelCostModel model(DeviceSpec::TeslaC2070());
  const KernelCost small = model.Cost(StreamingProfile(1'000'000));
  const KernelCost large = model.Cost(StreamingProfile(10'000'000));
  // 10x the data: close to 10x the memory time.
  EXPECT_NEAR(large.memory_time / small.memory_time, 10.0, 0.01);
  EXPECT_GT(large.solo_duration, small.solo_duration);
}

TEST(KernelCostModel, SoloDurationIncludesLaunchOverhead) {
  KernelCostModel model(DeviceSpec::TeslaC2070());
  KernelProfile p = StreamingProfile(0);
  p.global_bytes_read = 0;
  p.global_bytes_written = 0;
  const KernelCost cost = model.Cost(p);
  EXPECT_GE(cost.solo_duration, model.spec().kernel_launch_overhead);
}

TEST(KernelCostModel, MultipleLaunchesCostMore) {
  KernelCostModel model(DeviceSpec::TeslaC2070());
  KernelProfile one = StreamingProfile(1'000'000);
  KernelProfile two = one;
  two.launches = 2;
  EXPECT_NEAR(model.Cost(two).solo_duration - model.Cost(one).solo_duration,
              model.spec().kernel_launch_overhead, 1e-9);
}

TEST(KernelCostModel, HalfGeometryHalvesDemand) {
  // Fig 12's "no stream (new)": half the CTAs and threads -> the launch can
  // no longer saturate the machine.
  KernelCostModel model(DeviceSpec::TeslaC2070());
  KernelProfile full = StreamingProfile(100'000'000);
  full.cta_count = 448;
  full.threads_per_cta = 256;
  KernelProfile half = full;
  half.cta_count = 224;
  half.threads_per_cta = 128;
  const KernelCost full_cost = model.Cost(full);
  const KernelCost half_cost = model.Cost(half);
  EXPECT_DOUBLE_EQ(full_cost.demand, 1.0);
  // 8 resident CTAs/SM x 128 threads = 1024 of 1536 -> ~2/3 demand.
  EXPECT_NEAR(half_cost.demand, 2.0 / 3.0, 0.05);
  EXPECT_GT(half_cost.solo_duration, 1.4 * full_cost.solo_duration);
}

TEST(KernelCostModel, RegisterPressureReducesOccupancy) {
  KernelCostModel model(DeviceSpec::TeslaC2070());
  KernelProfile light = StreamingProfile(10'000'000);
  light.registers_per_thread = 16;
  KernelProfile heavy = light;
  heavy.registers_per_thread = 60;
  EXPECT_GT(model.Cost(light).occupancy, model.Cost(heavy).occupancy);
  EXPECT_GT(model.Cost(heavy).solo_duration, model.Cost(light).solo_duration);
}

TEST(KernelCostModel, SpillsChargeExtraTraffic) {
  KernelCostModel model(DeviceSpec::TeslaC2070());
  KernelProfile at_limit = StreamingProfile(10'000'000);
  at_limit.registers_per_thread = KernelCostModel::kMaxRegistersPerThread;
  KernelProfile spilling = at_limit;
  spilling.registers_per_thread = KernelCostModel::kMaxRegistersPerThread + 8;
  EXPECT_GT(model.Cost(spilling).memory_time, model.Cost(at_limit).memory_time);
}

TEST(KernelCostModel, ComputeBoundWhenOpsDominate) {
  KernelCostModel model(DeviceSpec::TeslaC2070());
  KernelProfile p = StreamingProfile(10'000'000);
  p.ops_per_element = 4000.0;
  const KernelCost cost = model.Cost(p);
  EXPECT_GT(cost.compute_time, cost.memory_time);
}

TEST(KernelCostModel, SelectThroughputInPaperBallpark) {
  // Fig 4(a): the staged SELECT sustains roughly 15-25 GB/s of input at 50%
  // selectivity (PCIe excluded). Filter + gather of N ints at 50%.
  KernelCostModel model(DeviceSpec::TeslaC2070());
  const std::uint64_t n = 100'000'000;
  KernelProfile filter;
  filter.elements = n;
  filter.ops_per_element = 9.0;
  filter.global_bytes_read = n * 4;
  filter.global_bytes_written = n * 2;  // 50% buffered
  filter.memory_access_efficiency = 0.55;
  KernelProfile gather;
  gather.elements = n / 2;
  gather.ops_per_element = 2.0;
  gather.global_bytes_read = n * 2;
  gather.global_bytes_written = n * 2;
  gather.memory_access_efficiency = 0.70;
  const SimTime total = model.Cost(filter).solo_duration + model.Cost(gather).solo_duration;
  const double gbs = ThroughputGBs(n * 4, total);
  EXPECT_GT(gbs, 12.0);
  EXPECT_LT(gbs, 30.0);
}

TEST(KernelCostModel, RejectsInvalidGeometry) {
  KernelCostModel model(DeviceSpec::TeslaC2070());
  KernelProfile p = StreamingProfile(1000);
  p.cta_count = 0;
  EXPECT_THROW(model.Cost(p), Error);
  p = StreamingProfile(1000);
  p.threads_per_cta = 4096;  // above the Fermi limit
  EXPECT_THROW(model.Cost(p), Error);
}

}  // namespace
}  // namespace kf::sim
