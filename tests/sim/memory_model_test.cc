#include "sim/memory_model.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace kf::sim {
namespace {

TEST(DeviceMemoryModel, TracksUsage) {
  DeviceMemoryModel mem(MiB(100));
  EXPECT_EQ(mem.used(), 0u);
  const AllocationId a = mem.Allocate(MiB(30), "a");
  const AllocationId b = mem.Allocate(MiB(50), "b");
  EXPECT_EQ(mem.used(), MiB(80));
  EXPECT_EQ(mem.free_bytes(), MiB(20));
  mem.Free(a);
  EXPECT_EQ(mem.used(), MiB(50));
  mem.Free(b);
  EXPECT_EQ(mem.used(), 0u);
}

TEST(DeviceMemoryModel, ThrowsOnExhaustion) {
  DeviceMemoryModel mem(MiB(10));
  (void)mem.Allocate(MiB(8));
  EXPECT_FALSE(mem.CanAllocate(MiB(4)));
  EXPECT_THROW(mem.Allocate(MiB(4)), Error);
}

TEST(DeviceMemoryModel, ExactFitSucceeds) {
  DeviceMemoryModel mem(MiB(10));
  EXPECT_TRUE(mem.CanAllocate(MiB(10)));
  (void)mem.Allocate(MiB(10));
  EXPECT_EQ(mem.free_bytes(), 0u);
}

TEST(DeviceMemoryModel, HighWaterMarkPersistsAfterFree) {
  DeviceMemoryModel mem(MiB(100));
  const AllocationId a = mem.Allocate(MiB(70));
  mem.Free(a);
  (void)mem.Allocate(MiB(10));
  EXPECT_EQ(mem.high_water_mark(), MiB(70));
}

TEST(DeviceMemoryModel, DoubleFreeThrows) {
  DeviceMemoryModel mem(MiB(10));
  const AllocationId a = mem.Allocate(MiB(1));
  mem.Free(a);
  EXPECT_THROW(mem.Free(a), Error);
}

TEST(DeviceMemoryModel, ResetClearsEverything) {
  DeviceMemoryModel mem(MiB(10));
  (void)mem.Allocate(MiB(5));
  mem.Reset();
  EXPECT_EQ(mem.used(), 0u);
  EXPECT_EQ(mem.high_water_mark(), 0u);
  (void)mem.Allocate(MiB(10));  // full capacity again
}

TEST(DeviceMemoryModel, ZeroByteAllocationIsFine) {
  DeviceMemoryModel mem(MiB(1));
  const AllocationId a = mem.Allocate(0);
  mem.Free(a);
}

TEST(DeviceMemoryModel, GenuineExhaustionThrowsCapacityExceeded) {
  DeviceMemoryModel mem(MiB(10));
  (void)mem.Allocate(MiB(8));
  EXPECT_THROW(mem.Allocate(MiB(4)), CapacityExceeded);
}

TEST(DeviceMemoryModel, InjectedOomThrowsDeviceFault) {
  obs::MetricsRegistry registry;
  FaultConfig config;
  config.seed = 1;
  config.oom_rate = 1.0;  // every reservation fails
  FaultInjector injector(config, &registry);
  DeviceMemoryModel mem(MiB(100));
  mem.set_fault_injector(&injector);
  EXPECT_THROW(mem.Allocate(MiB(1), "victim"), DeviceFault);
  // The injected fault is transient: accounting is untouched, so a retry
  // has the full capacity available.
  EXPECT_EQ(mem.used(), 0u);
  EXPECT_EQ(mem.high_water_mark(), 0u);
  EXPECT_TRUE(mem.CanAllocate(MiB(100)));
}

TEST(DeviceMemoryModel, InjectedOomIsTransient) {
  obs::MetricsRegistry registry;
  FaultConfig config;
  config.seed = 3;
  config.oom_rate = 0.5;
  FaultInjector injector(config, &registry);
  DeviceMemoryModel mem(MiB(100));
  mem.set_fault_injector(&injector);
  // With rate 0.5 some reservation must eventually succeed; accounting then
  // reflects exactly the successful ones.
  int successes = 0;
  for (int i = 0; i < 20; ++i) {
    try {
      const AllocationId a = mem.Allocate(MiB(1));
      ++successes;
      mem.Free(a);
    } catch (const DeviceFault&) {
    }
    EXPECT_EQ(mem.used(), 0u);
  }
  EXPECT_GT(successes, 0);
}

}  // namespace
}  // namespace kf::sim
