#include "sim/pcie_model.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace kf::sim {
namespace {

TEST(PcieModel, PinnedBeatsPageableAtModerateSizes) {
  PcieModel model;
  const std::uint64_t bytes = MiB(64);
  for (auto dir : {CopyDirection::kHostToDevice, CopyDirection::kDeviceToHost}) {
    EXPECT_GT(model.EffectiveBandwidth(bytes, HostMemoryKind::kPinned, dir),
              model.EffectiveBandwidth(bytes, HostMemoryKind::kPageable, dir));
  }
}

TEST(PcieModel, BandwidthRampsUpWithTransferSize) {
  PcieModel model;
  double last = 0.0;
  for (std::uint64_t bytes : {KiB(4), KiB(64), MiB(1), MiB(16), MiB(128)}) {
    const double bw = model.EffectiveBandwidth(bytes, HostMemoryKind::kPageable,
                                               CopyDirection::kHostToDevice);
    EXPECT_GT(bw, last) << "at " << bytes << " bytes";
    last = bw;
  }
}

TEST(PcieModel, EffectiveBandwidthBelowTheoreticalPeak) {
  PcieModel model;
  const double peak_pcie2 = 8.0 * kGB;
  for (auto kind : {HostMemoryKind::kPinned, HostMemoryKind::kPageable}) {
    for (auto dir : {CopyDirection::kHostToDevice, CopyDirection::kDeviceToHost}) {
      EXPECT_LT(model.EffectiveBandwidth(GiB(1), kind, dir), peak_pcie2);
    }
  }
}

TEST(PcieModel, PinnedAdvantageShrinksForHugeTransfers) {
  // Fig 4(b): "when the data size becomes large, its advantage reduces".
  PcieModel model;
  auto advantage = [&](std::uint64_t bytes) {
    return model.EffectiveBandwidth(bytes, HostMemoryKind::kPinned,
                                    CopyDirection::kHostToDevice) /
           model.EffectiveBandwidth(bytes, HostMemoryKind::kPageable,
                                    CopyDirection::kHostToDevice);
  };
  EXPECT_GT(advantage(MiB(64)), advantage(GiB(2)));
}

TEST(PcieModel, TransferTimeIncludesLatency) {
  PcieModel model;
  EXPECT_GE(model.TransferTime(0, HostMemoryKind::kPinned, CopyDirection::kHostToDevice),
            model.config().latency);
  // Tiny transfer is latency-dominated.
  const SimTime tiny =
      model.TransferTime(64, HostMemoryKind::kPinned, CopyDirection::kHostToDevice);
  EXPECT_LT(tiny, 2.5 * model.config().latency);
}

TEST(PcieModel, TransferTimeMonotonicInSize) {
  PcieModel model;
  SimTime last = 0.0;
  for (std::uint64_t bytes : {KiB(1), MiB(1), MiB(100), GiB(1)}) {
    const SimTime t =
        model.TransferTime(bytes, HostMemoryKind::kPageable, CopyDirection::kDeviceToHost);
    EXPECT_GT(t, last);
    last = t;
  }
}

TEST(PcieModel, MeasuredCurveMatchesPaperBallpark) {
  // Paper Fig 4(b): pinned ~5-6.5 GB/s, pageable ~2.5-3.5 GB/s in steady state.
  PcieModel model;
  const std::uint64_t bytes = 400ull * 1000 * 1000;  // 100M ints
  const double pinned = model.EffectiveBandwidth(bytes, HostMemoryKind::kPinned,
                                                 CopyDirection::kHostToDevice) / kGB;
  const double pageable = model.EffectiveBandwidth(bytes, HostMemoryKind::kPageable,
                                                   CopyDirection::kHostToDevice) / kGB;
  EXPECT_GT(pinned, 4.0);
  EXPECT_LT(pinned, 7.0);
  EXPECT_GT(pageable, 2.0);
  EXPECT_LT(pageable, 4.0);
}

}  // namespace
}  // namespace kf::sim
