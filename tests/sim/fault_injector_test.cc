#include "sim/fault_injector.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "obs/metrics_registry.h"
#include "sim/timeline.h"

namespace kf::sim {
namespace {

FaultConfig AllFaults(double rate, std::uint64_t seed = 42) {
  FaultConfig config;
  config.seed = seed;
  config.copy_fault_rate = rate;
  config.kernel_fault_rate = rate;
  config.stall_rate = rate;
  return config;
}

TEST(FaultConfig, DefaultInjectsNothing) {
  const FaultConfig config;
  EXPECT_FALSE(config.AnyEnabled());
  obs::MetricsRegistry registry;
  FaultInjector injector(config, &registry);
  for (std::uint64_t id = 0; id < 100; ++id) {
    const FaultDecision d = injector.Decide(1, id, CommandKind::kKernel);
    EXPECT_EQ(d.fault, FaultKind::kNone);
    EXPECT_EQ(d.duration_multiplier, 1.0);
  }
  EXPECT_FALSE(injector.InjectOomOnReservation());
}

TEST(FaultInjector, DecisionsAreDeterministicPerSeed) {
  obs::MetricsRegistry registry;
  FaultInjector a(AllFaults(0.3), &registry);
  FaultInjector b(AllFaults(0.3), &registry);
  for (std::uint64_t epoch = 1; epoch < 5; ++epoch) {
    for (std::uint64_t id = 0; id < 200; ++id) {
      const FaultDecision da = a.Decide(epoch, id, CommandKind::kCopyH2D);
      const FaultDecision db = b.Decide(epoch, id, CommandKind::kCopyH2D);
      EXPECT_EQ(da.fault, db.fault);
      EXPECT_EQ(da.duration_multiplier, db.duration_multiplier);
    }
  }
}

TEST(FaultInjector, DifferentSeedsDisagree) {
  obs::MetricsRegistry registry;
  FaultInjector a(AllFaults(0.3, 1), &registry);
  FaultInjector b(AllFaults(0.3, 2), &registry);
  int differing = 0;
  for (std::uint64_t id = 0; id < 500; ++id) {
    if (a.Decide(1, id, CommandKind::kKernel).fault !=
        b.Decide(1, id, CommandKind::kKernel).fault) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, EpochsGiveFreshDraws) {
  // A retried command must not hit the same fault forever: decisions for one
  // command id differ across epochs.
  obs::MetricsRegistry registry;
  FaultInjector injector(AllFaults(0.5), &registry);
  int faulted = 0;
  for (std::uint64_t epoch = 1; epoch <= 64; ++epoch) {
    if (injector.Decide(epoch, 7, CommandKind::kKernel).fault ==
        FaultKind::kKernelFault) {
      ++faulted;
    }
  }
  EXPECT_GT(faulted, 0);
  EXPECT_LT(faulted, 64);
}

TEST(FaultInjector, ObservedRatesTrackConfiguredRates) {
  obs::MetricsRegistry registry;
  FaultConfig config;
  config.seed = 7;
  config.kernel_fault_rate = 0.2;
  FaultInjector injector(config, &registry);
  const int n = 5000;
  int failures = 0;
  for (std::uint64_t id = 0; id < n; ++id) {
    if (injector.Decide(1, id, CommandKind::kKernel).fault ==
        FaultKind::kKernelFault) {
      ++failures;
    }
  }
  const double observed = static_cast<double>(failures) / n;
  EXPECT_NEAR(observed, 0.2, 0.03);
}

TEST(FaultInjector, HostCommandsNeverFault) {
  obs::MetricsRegistry registry;
  FaultInjector injector(AllFaults(1.0), &registry);
  for (std::uint64_t id = 0; id < 50; ++id) {
    const FaultDecision d = injector.Decide(1, id, CommandKind::kHostCompute);
    EXPECT_EQ(d.fault, FaultKind::kNone);
    EXPECT_EQ(d.duration_multiplier, 1.0);
  }
}

TEST(FaultInjector, CopyAndKernelRatesAreIndependent) {
  obs::MetricsRegistry registry;
  FaultConfig config;
  config.seed = 11;
  config.copy_fault_rate = 1.0;  // copies always fail...
  FaultInjector injector(config, &registry);
  EXPECT_EQ(injector.Decide(1, 0, CommandKind::kCopyH2D).fault,
            FaultKind::kCopyTransient);
  EXPECT_EQ(injector.Decide(1, 0, CommandKind::kCopyD2H).fault,
            FaultKind::kCopyTransient);
  // ...kernels never do.
  EXPECT_EQ(injector.Decide(1, 0, CommandKind::kKernel).fault, FaultKind::kNone);
}

TEST(FaultInjector, StallStretchesDuration) {
  obs::MetricsRegistry registry;
  FaultConfig config;
  config.seed = 3;
  config.stall_rate = 1.0;
  config.stall_multiplier = 4.0;
  FaultInjector injector(config, &registry);
  const FaultDecision d = injector.Decide(1, 0, CommandKind::kKernel);
  EXPECT_EQ(d.fault, FaultKind::kStreamStall);
  EXPECT_EQ(d.duration_multiplier, 4.0);
}

TEST(FaultInjector, OomDrawsAdvanceDeterministically) {
  obs::MetricsRegistry registry;
  FaultConfig config;
  config.seed = 5;
  config.oom_rate = 0.25;
  FaultInjector a(config, &registry);
  FaultInjector b(config, &registry);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.InjectOomOnReservation(), b.InjectOomOnReservation());
  }
}

TEST(FaultInjector, CountsInjectedFaults) {
  obs::MetricsRegistry registry;
  FaultConfig config;
  config.seed = 1;
  config.kernel_fault_rate = 1.0;
  FaultInjector injector(config, &registry);
  (void)injector.Decide(1, 0, CommandKind::kKernel);
  EXPECT_EQ(registry.GetCounter("fault.injected", {{"kind", "kernel"}}).value(),
            1u);
}

TEST(FaultConfig, FromEnvReadsVariables) {
  ::setenv("KF_FAULT_SEED", "99", 1);
  ::setenv("KF_FAULT_COPY_RATE", "0.125", 1);
  ::setenv("KF_FAULT_STALL_MULT", "16", 1);
  const FaultConfig config = FaultConfig::FromEnv();
  ::unsetenv("KF_FAULT_SEED");
  ::unsetenv("KF_FAULT_COPY_RATE");
  ::unsetenv("KF_FAULT_STALL_MULT");
  EXPECT_EQ(config.seed, 99u);
  EXPECT_EQ(config.copy_fault_rate, 0.125);
  EXPECT_EQ(config.stall_multiplier, 16.0);
  EXPECT_EQ(config.kernel_fault_rate, 0.0);  // unset keeps the default
  EXPECT_TRUE(config.AnyEnabled());
}

TEST(Timeline, FaultedCommandsSurfaceInStats) {
  obs::MetricsRegistry registry;
  FaultConfig config;
  config.seed = 1;
  config.kernel_fault_rate = 1.0;
  FaultInjector injector(config, &registry);

  Timeline timeline(DeviceSpec::TeslaC2070());
  timeline.set_fault_injector(&injector);
  CommandSpec kernel;
  kernel.kind = CommandKind::kKernel;
  kernel.solo_duration = 1.0;
  kernel.demand = 1.0;
  timeline.AddCommand(0, kernel);
  CommandSpec copy;
  copy.kind = CommandKind::kCopyH2D;
  copy.duration = 1.0;
  timeline.AddCommand(0, copy);

  const TimelineStats stats = timeline.Run();
  EXPECT_FALSE(stats.AllOk());
  EXPECT_EQ(stats.fault_count, 1u);  // the kernel; copies are clean
  EXPECT_FALSE(stats.commands[0].ok);
  EXPECT_EQ(stats.commands[0].fault, FaultKind::kKernelFault);
  EXPECT_TRUE(stats.commands[1].ok);
  // Failed commands still occupy their engine: timing is unchanged.
  EXPECT_GT(stats.makespan, 0.0);
}

TEST(Timeline, StallDelaysCompletion) {
  obs::MetricsRegistry registry;
  FaultConfig config;
  config.seed = 1;
  config.stall_rate = 1.0;
  config.stall_multiplier = 8.0;
  FaultInjector injector(config, &registry);

  Timeline timeline(DeviceSpec::TeslaC2070());
  timeline.set_fault_injector(&injector);
  CommandSpec copy;
  copy.kind = CommandKind::kCopyH2D;
  copy.duration = 1.0;
  timeline.AddCommand(0, copy);

  const TimelineStats stats = timeline.Run();
  EXPECT_TRUE(stats.AllOk());  // stalls slow commands down, they don't fail
  EXPECT_EQ(stats.stall_count, 1u);
  EXPECT_NEAR(stats.makespan, 8.0, 1e-9);
}

TEST(FaultInjector, CorruptionDrawsAreDeterministicAndSilent) {
  obs::MetricsRegistry registry;
  FaultConfig config;
  config.seed = 21;
  config.corrupt_h2d_rate = 0.3;
  config.corrupt_d2h_rate = 0.3;
  config.corrupt_kernel_rate = 0.3;
  EXPECT_TRUE(config.CorruptionEnabled());
  EXPECT_TRUE(config.AnyEnabled());
  FaultInjector a(config, &registry);
  FaultInjector b(config, &registry);
  int corrupted = 0;
  for (std::uint64_t id = 0; id < 300; ++id) {
    const FaultDecision da = a.Decide(1, id, CommandKind::kKernel);
    const FaultDecision db = b.Decide(1, id, CommandKind::kKernel);
    EXPECT_EQ(da.corrupt, db.corrupt);
    // Corruption is SILENT: the command still reports success and normal
    // timing — only the bytes are wrong.
    EXPECT_EQ(da.fault, FaultKind::kNone);
    EXPECT_EQ(da.duration_multiplier, 1.0);
    if (da.corrupt) ++corrupted;
  }
  EXPECT_NEAR(static_cast<double>(corrupted) / 300.0, 0.3, 0.07);
}

TEST(FaultInjector, CorruptionRatesArePerKind) {
  obs::MetricsRegistry registry;
  FaultConfig config;
  config.seed = 13;
  config.corrupt_h2d_rate = 1.0;  // uploads always corrupt...
  FaultInjector injector(config, &registry);
  EXPECT_TRUE(injector.Decide(1, 0, CommandKind::kCopyH2D).corrupt);
  // ...downloads and kernels never do.
  EXPECT_FALSE(injector.Decide(1, 0, CommandKind::kCopyD2H).corrupt);
  EXPECT_FALSE(injector.Decide(1, 0, CommandKind::kKernel).corrupt);
  EXPECT_EQ(
      registry.GetCounter("fault.injected", {{"kind", "corrupt_h2d"}}).value(),
      1u);
}

TEST(FaultInjector, HostCommandsNeverCorrupt) {
  // Host executions are the trusted reference (the audit re-executes against
  // them), so corruption only ever targets device-side commands.
  obs::MetricsRegistry registry;
  FaultConfig config;
  config.seed = 5;
  config.corrupt_h2d_rate = 1.0;
  config.corrupt_d2h_rate = 1.0;
  config.corrupt_kernel_rate = 1.0;
  FaultInjector injector(config, &registry);
  for (std::uint64_t id = 0; id < 50; ++id) {
    EXPECT_FALSE(injector.Decide(1, id, CommandKind::kHostCompute).corrupt);
  }
}

TEST(FaultInjector, LoudFaultExcludesCorruption) {
  // A command that fails loudly delivers no bytes, so it cannot also deliver
  // corrupted ones: fault and corrupt are mutually exclusive per decision.
  obs::MetricsRegistry registry;
  FaultConfig config;
  config.seed = 17;
  config.copy_fault_rate = 0.5;
  config.kernel_fault_rate = 0.5;
  config.corrupt_h2d_rate = 0.5;
  config.corrupt_d2h_rate = 0.5;
  config.corrupt_kernel_rate = 0.5;
  FaultInjector injector(config, &registry);
  for (std::uint64_t id = 0; id < 500; ++id) {
    for (CommandKind kind : {CommandKind::kCopyH2D, CommandKind::kCopyD2H,
                             CommandKind::kKernel}) {
      const FaultDecision d = injector.Decide(1, id, kind);
      const bool loud = d.fault == FaultKind::kCopyTransient ||
                        d.fault == FaultKind::kKernelFault;
      EXPECT_FALSE(loud && d.corrupt) << "id " << id;
    }
  }
}

TEST(FaultConfig, FromEnvReadsCorruptionVariables) {
  ::setenv("KF_FAULT_CORRUPT_RATE", "0.25", 1);
  ::setenv("KF_FAULT_CORRUPT_D2H_RATE", "0.5", 1);
  const FaultConfig config = FaultConfig::FromEnv();
  ::unsetenv("KF_FAULT_CORRUPT_RATE");
  ::unsetenv("KF_FAULT_CORRUPT_D2H_RATE");
  // The blanket rate seeds all three kinds; the per-kind variable overrides.
  EXPECT_EQ(config.corrupt_h2d_rate, 0.25);
  EXPECT_EQ(config.corrupt_d2h_rate, 0.5);
  EXPECT_EQ(config.corrupt_kernel_rate, 0.25);
  EXPECT_TRUE(config.CorruptionEnabled());
}

TEST(Timeline, CorruptedCommandsSurfaceInStats) {
  obs::MetricsRegistry registry;
  FaultConfig config;
  config.seed = 1;
  config.corrupt_kernel_rate = 1.0;
  FaultInjector injector(config, &registry);

  Timeline timeline(DeviceSpec::TeslaC2070());
  timeline.set_fault_injector(&injector);
  CommandSpec kernel;
  kernel.kind = CommandKind::kKernel;
  kernel.solo_duration = 1.0;
  kernel.demand = 1.0;
  timeline.AddCommand(0, kernel);
  CommandSpec host;
  host.kind = CommandKind::kHostCompute;
  host.duration = 0.5;
  timeline.AddCommand(0, host);

  const TimelineStats stats = timeline.Run();
  // Corruption is silent: every command succeeds and timing is unchanged.
  EXPECT_TRUE(stats.AllOk());
  EXPECT_EQ(stats.fault_count, 0u);
  EXPECT_EQ(stats.corrupted_count, 1u);
  EXPECT_TRUE(stats.commands[0].corrupted);
  EXPECT_FALSE(stats.commands[1].corrupted);
}

TEST(Timeline, NoInjectorMeansEveryCommandOk) {
  Timeline timeline(DeviceSpec::TeslaC2070());
  CommandSpec copy;
  copy.kind = CommandKind::kCopyD2H;
  copy.duration = 0.5;
  timeline.AddCommand(0, copy);
  const TimelineStats stats = timeline.Run();
  EXPECT_TRUE(stats.AllOk());
  EXPECT_TRUE(stats.commands[0].ok);
  EXPECT_EQ(stats.commands[0].fault, FaultKind::kNone);
}

}  // namespace
}  // namespace kf::sim
