#include "sim/timeline.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"

namespace kf::sim {
namespace {

CommandSpec Copy(CommandKind kind, SimTime duration, std::string label = {}) {
  CommandSpec c;
  c.kind = kind;
  c.duration = duration;
  c.label = std::move(label);
  return c;
}

CommandSpec Kernel(SimTime solo, double demand = 1.0, std::string label = {}) {
  CommandSpec c;
  c.kind = CommandKind::kKernel;
  c.solo_duration = solo;
  c.demand = demand;
  c.label = std::move(label);
  return c;
}

TEST(Timeline, EmptyRuns) {
  Timeline t(DeviceSpec::TeslaC2070());
  const TimelineStats stats = t.Run();
  EXPECT_DOUBLE_EQ(stats.makespan, 0.0);
}

TEST(Timeline, SingleStreamSerializes) {
  DeviceSpec spec = DeviceSpec::TeslaC2070();
  Timeline t(spec);
  t.AddCommand(0, Copy(CommandKind::kCopyH2D, 1.0));
  t.AddCommand(0, Kernel(2.0));
  t.AddCommand(0, Copy(CommandKind::kCopyD2H, 0.5));
  const TimelineStats stats = t.Run();
  EXPECT_NEAR(stats.makespan, 3.5, 1e-9);
  EXPECT_NEAR(stats.commands[1].start, 1.0, 1e-9);
  EXPECT_NEAR(stats.commands[2].start, 3.0, 1e-9);
}

TEST(Timeline, IndependentStreamsOverlapAcrossEngines) {
  // One upload, one kernel, one download in different streams: all overlap
  // (the C2070's two copy engines + compute).
  Timeline t(DeviceSpec::TeslaC2070());
  t.AddCommand(0, Copy(CommandKind::kCopyH2D, 1.0));
  t.AddCommand(1, Kernel(1.0));
  t.AddCommand(2, Copy(CommandKind::kCopyD2H, 1.0));
  const TimelineStats stats = t.Run();
  EXPECT_NEAR(stats.makespan, 1.0, 1e-9);
}

TEST(Timeline, SameEngineSerializesAcrossStreams) {
  // Two H2D copies in different streams share one DMA engine.
  Timeline t(DeviceSpec::TeslaC2070());
  t.AddCommand(0, Copy(CommandKind::kCopyH2D, 1.0));
  t.AddCommand(1, Copy(CommandKind::kCopyH2D, 1.0));
  const TimelineStats stats = t.Run();
  EXPECT_NEAR(stats.makespan, 2.0, 1e-9);
  EXPECT_NEAR(stats.h2d_busy, 2.0, 1e-9);
}

TEST(Timeline, DependenciesCrossStreams) {
  Timeline t(DeviceSpec::TeslaC2070());
  const CommandId upload = t.AddCommand(0, Copy(CommandKind::kCopyH2D, 1.0));
  CommandSpec k = Kernel(1.0);
  k.dependencies.push_back(upload);
  t.AddCommand(1, k);
  const TimelineStats stats = t.Run();
  EXPECT_NEAR(stats.commands[1].start, 1.0, 1e-9);
  EXPECT_NEAR(stats.makespan, 2.0, 1e-9);
}

TEST(Timeline, TwoSaturatingKernelsShareCompute) {
  // Two demand-1 kernels run concurrently at half rate plus the co-residency
  // penalty: no faster than back-to-back (Fig 12 at large N).
  Timeline t(DeviceSpec::TeslaC2070());
  t.AddCommand(0, Kernel(1.0, 1.0));
  t.AddCommand(1, Kernel(1.0, 1.0));
  const TimelineStats stats = t.Run();
  EXPECT_GE(stats.makespan, 2.0);
  EXPECT_LE(stats.makespan, 2.3);
}

TEST(Timeline, TwoSmallKernelsRunConcurrently) {
  // Two demand-0.4 kernels fit side by side: concurrency wins (Fig 12 at
  // small N).
  Timeline t(DeviceSpec::TeslaC2070());
  t.AddCommand(0, Kernel(1.0, 0.4));
  t.AddCommand(1, Kernel(1.0, 0.4));
  const TimelineStats stats = t.Run();
  EXPECT_LT(stats.makespan, 1.2);
}

TEST(Timeline, PipelineOverlapsTransfersWithCompute) {
  // Classic 3-stage software pipeline over 3 streams (Fig 13): with S
  // segments of (h2d=1, kernel=1, d2h=1), the makespan approaches S+2
  // instead of 3S.
  Timeline t(DeviceSpec::TeslaC2070());
  const int segments = 6;
  for (int s = 0; s < segments; ++s) {
    const StreamId stream = s % 3;
    t.AddCommand(stream, Copy(CommandKind::kCopyH2D, 1.0));
    t.AddCommand(stream, Kernel(1.0));
    t.AddCommand(stream, Copy(CommandKind::kCopyD2H, 1.0));
  }
  const TimelineStats stats = t.Run();
  EXPECT_NEAR(stats.makespan, segments + 2.0, 0.1);
}

TEST(Timeline, HostWorkOverlapsDevice) {
  Timeline t(DeviceSpec::TeslaC2070());
  t.AddCommand(0, Kernel(2.0));
  CommandSpec host;
  host.kind = CommandKind::kHostCompute;
  host.duration = 2.0;
  t.AddCommand(1, host);
  const TimelineStats stats = t.Run();
  EXPECT_NEAR(stats.makespan, 2.0, 1e-9);
  EXPECT_NEAR(stats.host_busy, 2.0, 1e-9);
  EXPECT_NEAR(stats.compute_busy, 2.0, 1e-9);
}

TEST(Timeline, ReadyTimeReflectsDependencies) {
  Timeline t(DeviceSpec::TeslaC2070());
  const CommandId a = t.AddCommand(0, Kernel(1.0));
  CommandSpec b = Copy(CommandKind::kCopyD2H, 1.0);
  b.dependencies.push_back(a);
  t.AddCommand(0, b);
  const TimelineStats stats = t.Run();
  EXPECT_NEAR(stats.commands[1].ready, 1.0, 1e-9);
}

TEST(Timeline, ManyKernelsRespectConcurrencyCap) {
  DeviceSpec spec = DeviceSpec::TeslaC2070();
  Timeline t(spec);
  const int n = spec.max_concurrent_kernels + 4;
  for (int i = 0; i < n; ++i) {
    t.AddCommand(i, Kernel(1.0, 0.001));  // negligible demand
  }
  const TimelineStats stats = t.Run();
  // Up to the cap run together (paying the co-residency penalty); the extra
  // 4 wait for slots: ~1.9 for the first wave, ~1.2 more for the second.
  EXPECT_GE(stats.makespan, 1.9);
  EXPECT_LT(stats.makespan, 3.5);
}

TEST(Timeline, RejectsBadCommands) {
  Timeline t(DeviceSpec::TeslaC2070());
  EXPECT_THROW(t.AddCommand(-1, Kernel(1.0)), kf::Error);
  CommandSpec bad = Kernel(1.0);
  bad.dependencies.push_back(42);  // unknown id
  EXPECT_THROW(t.AddCommand(0, bad), kf::Error);
  CommandSpec negative = Copy(CommandKind::kCopyH2D, -1.0);
  EXPECT_THROW(t.AddCommand(0, negative), kf::Error);
}

TEST(Timeline, ZeroDurationCommandsComplete) {
  Timeline t(DeviceSpec::TeslaC2070());
  t.AddCommand(0, Copy(CommandKind::kCopyH2D, 0.0));
  t.AddCommand(0, Kernel(0.0));
  const TimelineStats stats = t.Run();
  EXPECT_DOUBLE_EQ(stats.makespan, 0.0);
}

}  // namespace
}  // namespace kf::sim
