#include "sim/device_simulator.h"

#include <gtest/gtest.h>

namespace kf::sim {
namespace {

TEST(DeviceSimulator, DefaultsToTeslaC2070) {
  DeviceSimulator device;
  EXPECT_EQ(device.spec().sm_count, 14);
  EXPECT_EQ(device.spec().mem_capacity_bytes, GiB(6));
  EXPECT_EQ(device.memory().capacity(), GiB(6));
}

TEST(DeviceSimulator, MakeCopyUsesPcieModel) {
  DeviceSimulator device;
  const CommandSpec h2d = device.MakeCopy(MiB(100), CopyDirection::kHostToDevice,
                                          HostMemoryKind::kPinned, "upload");
  EXPECT_EQ(h2d.kind, CommandKind::kCopyH2D);
  EXPECT_EQ(h2d.label, "upload");
  EXPECT_NEAR(h2d.duration,
              device.pcie().TransferTime(MiB(100), HostMemoryKind::kPinned,
                                         CopyDirection::kHostToDevice),
              1e-12);
  const CommandSpec d2h = device.MakeCopy(MiB(100), CopyDirection::kDeviceToHost,
                                          HostMemoryKind::kPageable);
  EXPECT_EQ(d2h.kind, CommandKind::kCopyD2H);
  EXPECT_GT(d2h.duration, h2d.duration);  // pageable is slower
}

TEST(DeviceSimulator, MakeKernelUsesCostModel) {
  DeviceSimulator device;
  KernelProfile profile;
  profile.label = "k";
  profile.elements = 10'000'000;
  profile.global_bytes_read = 40'000'000;
  const CommandSpec kernel = device.MakeKernel(profile);
  EXPECT_EQ(kernel.kind, CommandKind::kKernel);
  const KernelCost cost = device.cost_model().Cost(profile);
  EXPECT_DOUBLE_EQ(kernel.solo_duration, cost.solo_duration);
  EXPECT_DOUBLE_EQ(kernel.demand, cost.demand);
}

TEST(DeviceSimulator, MakeHostWorkScalesWithBytes) {
  DeviceSimulator device;
  const CommandSpec small = device.MakeHostWork(MiB(1));
  const CommandSpec large = device.MakeHostWork(MiB(100));
  EXPECT_EQ(small.kind, CommandKind::kHostCompute);
  EXPECT_NEAR(large.duration / small.duration, 100.0, 0.01);
}

TEST(DeviceSimulator, NewTimelineIsIndependent) {
  DeviceSimulator device;
  Timeline a = device.NewTimeline();
  Timeline b = device.NewTimeline();
  a.AddCommand(0, device.MakeHostWork(MiB(16)));
  EXPECT_EQ(a.command_count(), 1u);
  EXPECT_EQ(b.command_count(), 0u);
}

TEST(DeviceSimulator, CustomSpecPropagates) {
  DeviceSimulator tiny(DeviceSpec::TinyTestDevice());
  EXPECT_EQ(tiny.memory().capacity(), MiB(64));
  EXPECT_LT(tiny.spec().sustained_mem_bytes_per_second(),
            DeviceSimulator().spec().sustained_mem_bytes_per_second());
}

}  // namespace
}  // namespace kf::sim
