// DeviceGroup: fleet construction, PCIe root-complex contention, and the
// derated ContendedView handed to per-shard executors.
#include "sim/device_group.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "obs/metrics_registry.h"
#include "sim/device_spec.h"

namespace kf::sim {
namespace {

TEST(DeviceGroupTest, HomogeneousBuildsLabeledIndependentDevices) {
  obs::MetricsRegistry registry;
  DeviceGroup group = DeviceGroup::Homogeneous(
      3, DeviceSpec::TeslaC2070(), PcieConfig{}, RootComplexConfig{}, &registry);
  ASSERT_EQ(group.device_count(), 3);
  EXPECT_EQ(group.device(0).instance_label(), "dev0");
  EXPECT_EQ(group.device(2).instance_label(), "dev2");
  EXPECT_EQ(registry.GetGauge("sim.group.devices").value(), 3.0);

  // Memory models are independent: an allocation on dev0 is invisible to
  // dev1's accounting.
  group.device(0).memory().Allocate(1024, "probe");
  EXPECT_GT(group.device(0).memory().used(), 0u);
  EXPECT_EQ(group.device(1).memory().used(), 0u);
}

TEST(DeviceGroupTest, RejectsEmptyAndBadConfigs) {
  EXPECT_THROW(DeviceGroup(std::vector<DeviceSpec>{}), kf::InvalidArgument);
  EXPECT_THROW(DeviceGroup::Homogeneous(0), kf::InvalidArgument);
  RootComplexConfig bad;
  bad.aggregate_bandwidth_gbs = 0.0;
  EXPECT_THROW(DeviceGroup::Homogeneous(2, DeviceSpec::TeslaC2070(),
                                        PcieConfig{}, bad),
               kf::InvalidArgument);
}

TEST(DeviceGroupTest, TransferDeratingFollowsRootComplexOversubscription) {
  // Defaults: link peak = max(5.9, 6.3) = 6.3 GB/s, aggregate 22 GB/s.
  DeviceGroup group = DeviceGroup::Homogeneous(4);
  EXPECT_DOUBLE_EQ(group.DeviceLinkPeakGbs(0), 6.3);
  EXPECT_DOUBLE_EQ(group.TransferDerating(1), 1.0);
  // 2 x 6.3 = 12.6 < 22: two concurrent devices stream at full link speed.
  EXPECT_DOUBLE_EQ(group.TransferDerating(2), 1.0);
  // 4 x 6.3 = 25.2 > 22: every link is derated by the oversubscription.
  EXPECT_DOUBLE_EQ(group.TransferDerating(4), 25.2 / 22.0);
  // Clamped to the group size on both ends.
  EXPECT_DOUBLE_EQ(group.TransferDerating(0), 1.0);
  EXPECT_DOUBLE_EQ(group.TransferDerating(9), group.TransferDerating(4));
}

TEST(DeviceGroupTest, ContendedViewScalesTransferTimesNotCompute) {
  obs::MetricsRegistry registry;
  DeviceGroup group = DeviceGroup::Homogeneous(
      4, DeviceSpec::TeslaC2070(), PcieConfig{}, RootComplexConfig{}, &registry);
  const std::uint64_t bytes = 256 * 1024 * 1024;

  const CommandSpec solo = group.device(1).MakeCopy(
      bytes, CopyDirection::kHostToDevice, HostMemoryKind::kPinned);
  // One concurrent streamer: byte-for-byte the persistent device's time.
  const DeviceSimulator view1 = group.ContendedView(1, 1);
  EXPECT_EQ(view1.instance_label(), "dev1");
  EXPECT_DOUBLE_EQ(view1
                       .MakeCopy(bytes, CopyDirection::kHostToDevice,
                                 HostMemoryKind::kPinned)
                       .duration,
                   solo.duration);

  // Four concurrent streamers: transfers slow by the derating factor...
  const double derating = group.TransferDerating(4);
  ASSERT_GT(derating, 1.0);
  const DeviceSimulator view4 = group.ContendedView(1, 4);
  const double contended = view4.MakeCopy(bytes, CopyDirection::kHostToDevice,
                                          HostMemoryKind::kPinned)
                               .duration;
  // Durations include a fixed latency term, so the ratio sits between 1 and
  // the pure-bandwidth derating; the bandwidth-bound part scales exactly.
  EXPECT_GT(contended, solo.duration);
  EXPECT_LE(contended, solo.duration * derating + 1e-12);

  // ...while kernel cost is untouched (contention is host-link-only).
  KernelProfile profile;
  profile.elements = 1 << 20;
  EXPECT_DOUBLE_EQ(view4.MakeKernel(profile).solo_duration,
                   group.device(1).MakeKernel(profile).solo_duration);

  EXPECT_GE(registry.GetCounter("sim.group.contended_views").value(), 2u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("sim.group.transfer_derating").value(),
                   derating);
}

TEST(DeviceGroupTest, BandwidthWeightsTrackDeviceSpecs) {
  std::vector<DeviceSpec> specs{DeviceSpec::TeslaC2070(),
                                DeviceSpec::TinyTestDevice()};
  DeviceGroup group(std::move(specs));
  const std::vector<double> weights = group.BandwidthWeights();
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[0],
                   group.device(0).spec().sustained_mem_bytes_per_second());
  EXPECT_DOUBLE_EQ(weights[1],
                   group.device(1).spec().sustained_mem_bytes_per_second());
  EXPECT_GT(weights[0], weights[1]);
}

}  // namespace
}  // namespace kf::sim
