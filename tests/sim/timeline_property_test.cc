// Property-based tests of the discrete-event timeline over random command
// sets: scheduling bounds, work conservation, and dependency monotonicity.
#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/timeline.h"

namespace kf::sim {
namespace {

struct RandomWorkload {
  DeviceSpec spec = DeviceSpec::TeslaC2070();
  std::vector<StreamId> stream_of;
  std::vector<CommandSpec> commands;
};

RandomWorkload MakeWorkload(std::uint64_t seed, bool with_dependencies) {
  kf::Rng rng(seed);
  RandomWorkload w;
  const int n = static_cast<int>(rng.UniformInt(3, 24));
  for (int i = 0; i < n; ++i) {
    CommandSpec cmd;
    switch (rng.UniformInt(0, 3)) {
      case 0: cmd.kind = CommandKind::kCopyH2D; break;
      case 1: cmd.kind = CommandKind::kCopyD2H; break;
      case 2: cmd.kind = CommandKind::kKernel; break;
      case 3: cmd.kind = CommandKind::kHostCompute; break;
    }
    if (cmd.kind == CommandKind::kKernel) {
      cmd.solo_duration = rng.UniformDouble(0.001, 0.5);
      cmd.demand = rng.UniformDouble(0.05, 1.0);
    } else {
      cmd.duration = rng.UniformDouble(0.001, 0.5);
    }
    if (with_dependencies && i > 0 && rng.Bernoulli(0.3)) {
      cmd.dependencies.push_back(
          static_cast<CommandId>(rng.UniformInt(0, i - 1)));
    }
    w.stream_of.push_back(static_cast<StreamId>(rng.UniformInt(0, 3)));
    w.commands.push_back(std::move(cmd));
  }
  return w;
}

TimelineStats RunWorkload(const RandomWorkload& w) {
  Timeline t(w.spec);
  for (std::size_t i = 0; i < w.commands.size(); ++i) {
    t.AddCommand(w.stream_of[i], w.commands[i]);
  }
  return t.Run();
}

SimTime SerialBound(const RandomWorkload& w) {
  SimTime total = 0;
  for (const CommandSpec& cmd : w.commands) {
    total += cmd.kind == CommandKind::kKernel ? cmd.solo_duration : cmd.duration;
  }
  return total;
}

class TimelineProperty : public ::testing::TestWithParam<int> {};

TEST_P(TimelineProperty, MakespanBounds) {
  for (int trial = 0; trial < 25; ++trial) {
    const RandomWorkload w =
        MakeWorkload(static_cast<std::uint64_t>(GetParam()) * 31 + trial, true);
    const TimelineStats stats = RunWorkload(w);
    // Lower bound: any engine's busy time. Upper bound: fully serial
    // execution plus the co-residency penalty margin.
    EXPECT_GE(stats.makespan + 1e-9, stats.h2d_busy);
    EXPECT_GE(stats.makespan + 1e-9, stats.d2h_busy);
    EXPECT_GE(stats.makespan + 1e-9, stats.host_busy);
    EXPECT_GE(stats.makespan + 1e-9, stats.compute_busy);
    EXPECT_LE(stats.makespan, SerialBound(w) * 2.0 + 1e-9);
    // Every command completes, in order, within the makespan.
    for (const CommandTiming& timing : stats.commands) {
      EXPECT_LE(timing.ready, timing.start + 1e-9);
      EXPECT_LE(timing.start, timing.end + 1e-9);
      EXPECT_LE(timing.end, stats.makespan + 1e-9);
    }
  }
}

TEST_P(TimelineProperty, ExclusiveEnginesNeverOverlap) {
  for (int trial = 0; trial < 25; ++trial) {
    const RandomWorkload w =
        MakeWorkload(static_cast<std::uint64_t>(GetParam()) * 71 + trial, true);
    const TimelineStats stats = RunWorkload(w);
    for (CommandKind kind : {CommandKind::kCopyH2D, CommandKind::kCopyD2H,
                             CommandKind::kHostCompute}) {
      std::vector<std::pair<SimTime, SimTime>> intervals;
      SimTime busy = 0;
      for (std::size_t i = 0; i < w.commands.size(); ++i) {
        if (w.commands[i].kind != kind) continue;
        intervals.emplace_back(stats.commands[i].start, stats.commands[i].end);
        busy += stats.commands[i].end - stats.commands[i].start;
      }
      std::sort(intervals.begin(), intervals.end());
      for (std::size_t i = 1; i < intervals.size(); ++i) {
        EXPECT_GE(intervals[i].first + 1e-9, intervals[i - 1].second)
            << ToString(kind) << " overlaps";
      }
      // Busy accounting matches the sum of executed intervals.
      const SimTime reported = kind == CommandKind::kCopyH2D   ? stats.h2d_busy
                               : kind == CommandKind::kCopyD2H ? stats.d2h_busy
                                                               : stats.host_busy;
      EXPECT_NEAR(reported, busy, 1e-9);
    }
  }
}

TEST_P(TimelineProperty, StreamOrderIsRespected) {
  for (int trial = 0; trial < 25; ++trial) {
    const RandomWorkload w =
        MakeWorkload(static_cast<std::uint64_t>(GetParam()) * 131 + trial, false);
    const TimelineStats stats = RunWorkload(w);
    std::map<StreamId, SimTime> last_end;
    for (std::size_t i = 0; i < w.commands.size(); ++i) {
      const StreamId stream = w.stream_of[i];
      auto it = last_end.find(stream);
      if (it != last_end.end()) {
        EXPECT_GE(stats.commands[i].start + 1e-9, it->second)
            << "command " << i << " started before its stream predecessor ended";
      }
      last_end[stream] = stats.commands[i].end;
    }
  }
}

TEST_P(TimelineProperty, DependenciesAreRespectedAndMonotone) {
  for (int trial = 0; trial < 15; ++trial) {
    RandomWorkload w =
        MakeWorkload(static_cast<std::uint64_t>(GetParam()) * 513 + trial, true);
    const TimelineStats stats = RunWorkload(w);
    for (std::size_t i = 0; i < w.commands.size(); ++i) {
      for (CommandId dep : w.commands[i].dependencies) {
        EXPECT_GE(stats.commands[i].start + 1e-9, stats.commands[dep].end)
            << "command " << i << " ignored dependency " << dep;
      }
    }
    // Adding one more dependency cannot shrink the makespan much. (It CAN
    // shrink it a little: under processor sharing with a co-residency
    // penalty, delaying a kernel may reduce contention for the others —
    // the classic Graham scheduling anomaly, which real GPUs exhibit too.
    // The anomaly is bounded by the penalty factor.)
    if (w.commands.size() >= 2) {
      RandomWorkload constrained = w;
      constrained.commands.back().dependencies.push_back(0);
      const TimelineStats tighter = RunWorkload(constrained);
      EXPECT_GE(tighter.makespan, stats.makespan * 0.5);
      // And the added edge is honored.
      EXPECT_GE(tighter.commands.back().start + 1e-9, tighter.commands[0].end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineProperty, ::testing::Range(0, 4));

}  // namespace
}  // namespace kf::sim
