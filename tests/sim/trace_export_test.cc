#include "sim/trace_export.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace kf::sim {
namespace {

TEST(TraceExport, EmitsOneSlicePerCommand) {
  Timeline t(DeviceSpec::TeslaC2070());
  std::vector<TraceCommand> meta;
  CommandSpec up;
  up.kind = CommandKind::kCopyH2D;
  up.duration = 0.001;
  up.label = "upload";
  t.AddCommand(0, up);
  meta.push_back({CommandKind::kCopyH2D, "upload"});
  CommandSpec kernel;
  kernel.kind = CommandKind::kKernel;
  kernel.solo_duration = 0.002;
  kernel.label = "select";
  t.AddCommand(0, kernel);
  meta.push_back({CommandKind::kKernel, "select"});

  const std::string json = ToChromeTrace(t.Run(), meta);
  EXPECT_NE(json.find("\"upload\""), std::string::npos);
  EXPECT_NE(json.find("\"select\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("H2D copy engine"), std::string::npos);
  // Durations in microseconds: 1000us and 2000us.
  EXPECT_NE(json.find("\"dur\":1000.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2000.000"), std::string::npos);
}

TEST(TraceExport, EscapesLabels) {
  Timeline t(DeviceSpec::TeslaC2070());
  CommandSpec cmd;
  cmd.kind = CommandKind::kHostCompute;
  cmd.duration = 0.001;
  t.AddCommand(0, cmd);
  const std::string json =
      ToChromeTrace(t.Run(), {{CommandKind::kHostCompute, "with \"quotes\"\n"}});
  EXPECT_NE(json.find("with \\\"quotes\\\"\\n"), std::string::npos);
}

TEST(TraceExport, MismatchedMetadataThrows) {
  Timeline t(DeviceSpec::TeslaC2070());
  CommandSpec cmd;
  cmd.kind = CommandKind::kKernel;
  cmd.solo_duration = 0.001;
  t.AddCommand(0, cmd);
  EXPECT_THROW(ToChromeTrace(t.Run(), {}), kf::Error);
}

TEST(TraceExport, EmptyTimeline) {
  Timeline t(DeviceSpec::TeslaC2070());
  const std::string json = ToChromeTrace(t.Run(), {});
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
}

}  // namespace
}  // namespace kf::sim
