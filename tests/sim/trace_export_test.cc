#include "sim/trace_export.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/fault_injector.h"

namespace kf::sim {
namespace {

TEST(TraceExport, EmitsOneSlicePerCommand) {
  Timeline t(DeviceSpec::TeslaC2070());
  std::vector<TraceCommand> meta;
  CommandSpec up;
  up.kind = CommandKind::kCopyH2D;
  up.duration = 0.001;
  up.label = "upload";
  t.AddCommand(0, up);
  meta.push_back({CommandKind::kCopyH2D, "upload"});
  CommandSpec kernel;
  kernel.kind = CommandKind::kKernel;
  kernel.solo_duration = 0.002;
  kernel.label = "select";
  t.AddCommand(0, kernel);
  meta.push_back({CommandKind::kKernel, "select"});

  const std::string json = ToChromeTrace(t.Run(), meta);
  EXPECT_NE(json.find("\"upload\""), std::string::npos);
  EXPECT_NE(json.find("\"select\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("H2D copy engine"), std::string::npos);
  // Durations in microseconds: 1000us and 2000us.
  EXPECT_NE(json.find("\"dur\":1000.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2000.000"), std::string::npos);
}

TEST(TraceExport, EscapesLabels) {
  Timeline t(DeviceSpec::TeslaC2070());
  CommandSpec cmd;
  cmd.kind = CommandKind::kHostCompute;
  cmd.duration = 0.001;
  t.AddCommand(0, cmd);
  const std::string json =
      ToChromeTrace(t.Run(), {{CommandKind::kHostCompute, "with \"quotes\"\n"}});
  EXPECT_NE(json.find("with \\\"quotes\\\"\\n"), std::string::npos);
}

TEST(TraceExport, MismatchedMetadataThrows) {
  Timeline t(DeviceSpec::TeslaC2070());
  CommandSpec cmd;
  cmd.kind = CommandKind::kKernel;
  cmd.solo_duration = 0.001;
  t.AddCommand(0, cmd);
  EXPECT_THROW(ToChromeTrace(t.Run(), {}), kf::Error);
}

TEST(TraceExport, EmptyTimeline) {
  Timeline t(DeviceSpec::TeslaC2070());
  const std::string json = ToChromeTrace(t.Run(), {});
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
}

TEST(TraceExport, CleanCommandsCarryOutcomeArgs) {
  Timeline t(DeviceSpec::TeslaC2070());
  CommandSpec cmd;
  cmd.kind = CommandKind::kKernel;
  cmd.solo_duration = 0.001;
  t.AddCommand(0, cmd);
  const std::string json = ToChromeTrace(t.Run(), {{CommandKind::kKernel, "k"}});
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"stalled\":false"), std::string::npos);
  EXPECT_NE(json.find("\"corrupted\":false"), std::string::npos);
  // A clean command carries no fault kind at all.
  EXPECT_EQ(json.find("\"fault\":"), std::string::npos);
}

TEST(TraceExport, StalledCommandsCarryFaultKind) {
  Timeline t(DeviceSpec::TeslaC2070());
  FaultConfig config;
  config.stall_rate = 1.0;
  config.seed = 7;
  const FaultInjector injector(config);
  t.set_fault_injector(&injector);
  CommandSpec cmd;
  cmd.kind = CommandKind::kCopyH2D;
  cmd.duration = 0.001;
  t.AddCommand(0, cmd);
  const std::string json =
      ToChromeTrace(t.Run(), {{CommandKind::kCopyH2D, "upload"}});
  // A stall slows the command but it still completes: ok stays true.
  EXPECT_NE(json.find("\"fault\":\"stall\""), std::string::npos);
  EXPECT_NE(json.find("\"stalled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
}

TEST(TraceExport, CorruptedCommandsAreFlagged) {
  Timeline t(DeviceSpec::TeslaC2070());
  FaultConfig config;
  config.corrupt_h2d_rate = 1.0;
  config.seed = 11;
  const FaultInjector injector(config);
  t.set_fault_injector(&injector);
  CommandSpec cmd;
  cmd.kind = CommandKind::kCopyH2D;
  cmd.duration = 0.001;
  t.AddCommand(0, cmd);
  const std::string json =
      ToChromeTrace(t.Run(), {{CommandKind::kCopyH2D, "upload"}});
  EXPECT_NE(json.find("\"corrupted\":true"), std::string::npos);
  // Silent corruption: the command itself still reports success.
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
}

}  // namespace
}  // namespace kf::sim
