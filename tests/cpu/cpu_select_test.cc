#include "cpu/cpu_select.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "common/random.h"

namespace kf::cpu {
namespace {

std::vector<std::int32_t> RandomInts(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int32_t> v(n);
  for (auto& x : v) x = static_cast<std::int32_t>(rng.UniformInt(0, 1 << 30));
  return v;
}

TEST(CpuSelect, MatchesCopyIfSerial) {
  const auto data = RandomInts(10000, 1);
  const auto pred = [](std::int32_t v) { return v % 2 == 0; };
  std::vector<std::int32_t> expected;
  std::copy_if(data.begin(), data.end(), std::back_inserter(expected), pred);
  EXPECT_EQ(CpuSelect(data, pred), expected);
}

TEST(CpuSelect, ParallelMatchesSerialAndPreservesOrder) {
  const auto data = RandomInts(100000, 2);
  const auto pred = [](std::int32_t v) { return (v % 5) < 2; };
  ThreadPool pool(4);
  EXPECT_EQ(CpuSelect(data, pred, &pool), CpuSelect(data, pred));
}

TEST(CpuSelect, EmptyAndDegenerate) {
  const std::vector<std::int32_t> empty;
  EXPECT_TRUE(CpuSelect(empty, [](std::int32_t) { return true; }).empty());
  const auto data = RandomInts(1000, 3);
  ThreadPool pool(4);
  EXPECT_EQ(CpuSelect(data, [](std::int32_t) { return true; }, &pool), data);
  EXPECT_TRUE(CpuSelect(data, [](std::int32_t) { return false; }, &pool).empty());
}

TEST(CpuSelectModel, CalibratedToPaperFig4a) {
  // Fig 4(a): CPU throughput falls from ~7.5 GB/s at 10% to ~1.8 at 90%.
  CpuSelectModel model;
  const std::uint64_t n = 200'000'000;
  EXPECT_NEAR(model.ThroughputGBs(n, 0.10), 7.5, 0.5);
  EXPECT_NEAR(model.ThroughputGBs(n, 0.50), 2.3, 0.3);
  EXPECT_NEAR(model.ThroughputGBs(n, 0.90), 1.75, 0.3);
}

TEST(CpuSelectModel, ThroughputMonotonicInSelectivity) {
  CpuSelectModel model;
  double last = 1e9;
  for (double s : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    const double t = model.ThroughputGBs(100'000'000, s);
    EXPECT_LE(t, last) << "selectivity " << s;
    last = t;
  }
}

TEST(CpuSelectModel, SmallInputsRampDown) {
  CpuSelectModel model;
  EXPECT_LT(model.ThroughputGBs(10'000, 0.5), model.ThroughputGBs(100'000'000, 0.5));
}

TEST(CpuSelectModel, FewerThreadsAreSlower) {
  CpuSelectModel::Config half;
  half.threads = 8;
  EXPECT_LT(CpuSelectModel(half).ThroughputGBs(100'000'000, 0.5),
            CpuSelectModel().ThroughputGBs(100'000'000, 0.5));
}

TEST(CpuSelectModel, SelectTimeConsistentWithThroughput) {
  CpuSelectModel model;
  const std::uint64_t n = 50'000'000;
  const double gbs = model.ThroughputGBs(n, 0.5);
  EXPECT_NEAR(model.SelectTime(n, 0.5), n * 4.0 / (gbs * kGB), 1e-9);
}

TEST(CpuSelectModel, RejectsBadSelectivity) {
  CpuSelectModel model;
  EXPECT_THROW(model.ThroughputGBs(100, -0.1), Error);
  EXPECT_THROW(model.ThroughputGBs(100, 1.5), Error);
}

}  // namespace
}  // namespace kf::cpu
