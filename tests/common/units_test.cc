#include "common/units.h"

#include <gtest/gtest.h>

namespace kf {
namespace {

TEST(Units, ByteHelpers) {
  EXPECT_EQ(KiB(1), 1024u);
  EXPECT_EQ(MiB(2), 2u * 1024 * 1024);
  EXPECT_EQ(GiB(6), 6ull * 1024 * 1024 * 1024);
}

TEST(Units, ThroughputGBs) {
  EXPECT_DOUBLE_EQ(ThroughputGBs(2'000'000'000ull, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(ThroughputGBs(1'000'000'000ull, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(ThroughputGBs(100, 0.0), 0.0);
}

TEST(Units, FormatTimePicksUnit) {
  EXPECT_EQ(FormatTime(2.0), "2.000 s");
  EXPECT_EQ(FormatTime(0.0123), "12.300 ms");
  EXPECT_EQ(FormatTime(42e-6), "42.000 us");
}

TEST(Units, FormatBytesPicksUnit) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(KiB(2)), "2.00 KiB");
  EXPECT_EQ(FormatBytes(MiB(3)), "3.00 MiB");
  EXPECT_EQ(FormatBytes(GiB(1)), "1.00 GiB");
}

TEST(Units, FormatGBs) {
  EXPECT_EQ(FormatGBs(1.5), "1.500 GB/s");
  EXPECT_EQ(FormatGBs(1.23456, 2), "1.23 GB/s");
}

}  // namespace
}  // namespace kf
