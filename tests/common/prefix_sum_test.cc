#include "common/prefix_sum.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

namespace kf {
namespace {

TEST(PrefixSum, EmptyInputYieldsSingleZero) {
  const std::vector<std::uint32_t> counts;
  const auto offsets = ExclusiveScanWithTotal(counts);
  ASSERT_EQ(offsets.size(), 1u);
  EXPECT_EQ(offsets[0], 0u);
}

TEST(PrefixSum, SingleElement) {
  const std::vector<std::uint32_t> counts{7};
  const auto offsets = ExclusiveScanWithTotal(counts);
  ASSERT_EQ(offsets.size(), 2u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[1], 7u);
}

TEST(PrefixSum, OffsetsAreExclusiveAndTotalIsLast) {
  const std::vector<std::uint32_t> counts{3, 0, 5, 1};
  const auto offsets = ExclusiveScanWithTotal(counts);
  const std::vector<std::uint32_t> expected{0, 3, 3, 8, 9};
  EXPECT_EQ(offsets, expected);
}

TEST(PrefixSum, WorksWithInt64) {
  const std::vector<std::int64_t> counts{1000000000, 2000000000, 3000000000};
  const auto offsets = ExclusiveScanWithTotal(counts);
  EXPECT_EQ(offsets.back(), 6000000000);
}

TEST(PrefixSum, MatchesManualScanOnRandomInput) {
  std::vector<std::uint64_t> counts(100);
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] = (i * 37) % 11;
  const auto offsets = ExclusiveScanWithTotal(counts);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(offsets[i], running) << "at " << i;
    running += counts[i];
  }
  EXPECT_EQ(offsets.back(), running);
}

}  // namespace
}  // namespace kf
