#include "common/buffer_arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace kf {
namespace {

struct Workspace {
  std::vector<std::int32_t> data;
  std::size_t CapacityBytes() const {
    return data.capacity() * sizeof(std::int32_t);
  }
};

TEST(BufferArena, FirstAcquireMissesThenHits) {
  BufferArena arena;
  {
    auto ws = arena.Acquire<Workspace>();
    ws->data.resize(1024);
  }
  EXPECT_EQ(arena.stats().hits, 0u);
  EXPECT_EQ(arena.stats().misses, 1u);
  EXPECT_EQ(arena.pooled_count(), 1u);

  auto ws = arena.Acquire<Workspace>();
  EXPECT_EQ(arena.stats().hits, 1u);
  EXPECT_EQ(arena.pooled_count(), 0u);
}

TEST(BufferArena, ReuseRetainsCapacity) {
  BufferArena arena;
  const std::int32_t* buffer = nullptr;
  {
    auto ws = arena.Acquire<Workspace>();
    ws->data.resize(4096);
    buffer = ws->data.data();
  }
  auto ws = arena.Acquire<Workspace>();
  EXPECT_EQ(ws->data.data(), buffer);  // same heap block handed back
  EXPECT_GE(ws->data.capacity(), 4096u);
}

TEST(BufferArena, ReusedBytesAccounted) {
  BufferArena arena;
  {
    auto ws = arena.Acquire<Workspace>();
    ws->data.resize(1000);
  }
  { auto ws = arena.Acquire<Workspace>(); }
  EXPECT_GE(arena.stats().reused_bytes, 1000u * sizeof(std::int32_t));
  EXPECT_GT(arena.stats().HitRate(), 0.0);
}

TEST(BufferArena, DistinctTypesPoolSeparately) {
  struct Other {
    std::vector<double> data;
  };
  BufferArena arena;
  { auto a = arena.Acquire<Workspace>(); }
  auto b = arena.Acquire<Other>();
  // The pooled Workspace must not be handed out as an Other.
  EXPECT_EQ(arena.stats().hits, 0u);
  EXPECT_EQ(arena.stats().misses, 2u);
  EXPECT_EQ(arena.pooled_count(), 1u);
}

TEST(BufferArena, TrimDropsPooledObjects) {
  BufferArena arena;
  { auto ws = arena.Acquire<Workspace>(); }
  EXPECT_EQ(arena.pooled_count(), 1u);
  arena.Trim();
  EXPECT_EQ(arena.pooled_count(), 0u);
  auto ws = arena.Acquire<Workspace>();
  EXPECT_EQ(arena.stats().misses, 2u);
}

TEST(BufferArena, ConcurrentAcquireReleaseIsSafe) {
  BufferArena arena;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&arena] {
      for (int i = 0; i < 500; ++i) {
        auto ws = arena.Acquire<Workspace>();
        ws->data.resize(64);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = arena.stats();
  EXPECT_EQ(stats.hits + stats.misses, 2000u);
  EXPECT_LE(arena.pooled_count(), 4u);
}

TEST(BufferArena, ThreadLocalArenasAreDistinct) {
  BufferArena* main_arena = &BufferArena::ThreadLocal();
  BufferArena* worker_arena = nullptr;
  std::thread worker([&] { worker_arena = &BufferArena::ThreadLocal(); });
  worker.join();
  EXPECT_NE(main_arena, worker_arena);
  EXPECT_EQ(main_arena, &BufferArena::ThreadLocal());
}

TEST(HostPerfCounters, GlobalCountersAdvanceWithArenaTraffic) {
  auto& counters = HostPerfCounters::Global();
  const std::uint64_t hits_before = counters.pool_hits.load();
  const std::uint64_t misses_before = counters.pool_misses.load();
  BufferArena arena;
  { auto ws = arena.Acquire<Workspace>(); }
  { auto ws = arena.Acquire<Workspace>(); }
  EXPECT_GE(counters.pool_hits.load(), hits_before + 1);
  EXPECT_GE(counters.pool_misses.load(), misses_before + 1);
}

}  // namespace
}  // namespace kf
