#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace kf {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(4);
  std::vector<int> data(100, 0);
  pool.ParallelFor(data.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) data[i] = 1;
  });
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0), 100);
}

TEST(ThreadPool, NestedWaitDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&pool, &inner] {
      for (int j = 0; j < 8; ++j) pool.Submit([&inner] { ++inner; });
      // Note: workers submitting then the main thread waiting exercises the
      // help-drain path in Wait().
    });
  }
  pool.Wait();
  EXPECT_EQ(inner.load(), 32);
}

TEST(ThreadPool, ParallelForLargeRangeUsesWorkers) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100000);
  pool.ParallelFor(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEachCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(512);
  pool.ParallelForEach(hits.size(),
                       [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEachZeroIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelForEach(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, NestedParallelForFallsBackInline) {
  // A ParallelFor issued from inside a ParallelFor body (or a worker task)
  // must degrade to inline execution, not deadlock.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelForEach(8, [&](std::size_t) {
    pool.ParallelFor(4096, [&](std::size_t begin, std::size_t end) {
      total.fetch_add(static_cast<int>(end - begin));
    });
  });
  EXPECT_EQ(total.load(), 8 * 4096);
}

TEST(ThreadPool, ConcurrentParallelForsFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        pool.ParallelFor(10000, [&](std::size_t begin, std::size_t end) {
          total.fetch_add(static_cast<int>(end - begin));
        });
      }
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(total.load(), 4 * 10 * 10000);
}

TEST(ThreadPool, ParallelForMixedWithSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> submitted{0};
  std::atomic<int> looped{0};
  for (int i = 0; i < 64; ++i) pool.Submit([&submitted] { ++submitted; });
  pool.ParallelFor(50000, [&](std::size_t begin, std::size_t end) {
    looped.fetch_add(static_cast<int>(end - begin));
  });
  pool.Wait();
  EXPECT_EQ(submitted.load(), 64);
  EXPECT_EQ(looped.load(), 50000);
}

TEST(ThreadPool, SharedPoolIsUsable) {
  std::atomic<int> counter{0};
  ThreadPool::Shared().Submit([&counter] { ++counter; });
  ThreadPool::Shared().Wait();
  EXPECT_EQ(counter.load(), 1);
  EXPECT_GE(ThreadPool::Shared().thread_count(), 1u);
}

}  // namespace
}  // namespace kf
