#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace kf {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(4);
  std::vector<int> data(100, 0);
  pool.ParallelFor(data.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) data[i] = 1;
  });
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0), 100);
}

TEST(ThreadPool, NestedWaitDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&pool, &inner] {
      for (int j = 0; j < 8; ++j) pool.Submit([&inner] { ++inner; });
      // Note: workers submitting then the main thread waiting exercises the
      // help-drain path in Wait().
    });
  }
  pool.Wait();
  EXPECT_EQ(inner.load(), 32);
}

TEST(ThreadPool, SharedPoolIsUsable) {
  std::atomic<int> counter{0};
  ThreadPool::Shared().Submit([&counter] { ++counter; });
  ThreadPool::Shared().Wait();
  EXPECT_EQ(counter.load(), 1);
  EXPECT_GE(ThreadPool::Shared().thread_count(), 1u);
}

}  // namespace
}  // namespace kf
