#include "common/random.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace kf {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(Rng, UniformIntRejectsEmptyRange) {
  Rng rng(7);
  EXPECT_THROW(rng.UniformInt(3, 2), Error);
}

TEST(Rng, UniformIntCoversRangeRoughlyUniformly) {
  Rng rng(99);
  std::array<int, 10> buckets{};
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++buckets[static_cast<std::size_t>(rng.UniformInt(0, 9))];
  for (int count : buckets) {
    EXPECT_NEAR(count, draws / 10, draws / 50);  // within 20% of expectation
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(11);
  int heads = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    if (rng.Bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / draws, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(13);
  Rng child = parent.Split();
  std::set<std::uint64_t> values;
  for (int i = 0; i < 50; ++i) {
    values.insert(parent());
    values.insert(child());
  }
  EXPECT_EQ(values.size(), 100u);  // no collisions in practice
}

TEST(SplitMix, IsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace kf
