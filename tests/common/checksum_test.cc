// kf::Checksummer: known-answer vectors (pinned so the wire digest can never
// drift silently — transfer verification and audit sampling both compare
// digests computed in different places), streaming/one-shot equivalence over
// arbitrary chunkings, and the tail-buffer edge cases.
#include "common/checksum.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace kf {
namespace {

// Pinned digests. These are part of the integrity layer's contract: a
// checksum computed before upload must equal one computed after download on
// the same bytes, across recompiles. Regenerate ONLY for a deliberate,
// versioned hash change (every stored digest is invalidated).
TEST(Checksummer, KnownAnswerVectors) {
  EXPECT_EQ(Checksummer::Hash(nullptr, 0), 0xc5a49d04a6bab236ULL);

  EXPECT_EQ(Checksummer::Hash("abc", 3), 0x34975965bf6ef112ULL);

  const std::string msg = "kernel fusion";
  EXPECT_EQ(Checksummer::Hash(msg.data(), msg.size()), 0x120bcd0768775c1dULL);

  std::vector<unsigned char> seq(64);
  for (int i = 0; i < 64; ++i) seq[i] = static_cast<unsigned char>(i);
  EXPECT_EQ(Checksummer::Hash(seq.data(), seq.size()), 0x1d92a36446b21a91ULL);

  std::vector<unsigned char> odd(13);
  for (int i = 0; i < 13; ++i) odd[i] = static_cast<unsigned char>(0xA0 + i);
  EXPECT_EQ(Checksummer::Hash(odd.data(), odd.size()), 0xefae243fd58e4ca9ULL);
}

TEST(Checksummer, StreamingEqualsOneShotForEveryChunking) {
  std::vector<unsigned char> data(257);  // prime-ish, exercises every tail fill
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<unsigned char>((i * 131 + 17) & 0xFF);
  }
  const std::uint64_t expected = Checksummer::Hash(data.data(), data.size());

  for (std::size_t chunk = 1; chunk <= data.size(); ++chunk) {
    Checksummer streaming;
    for (std::size_t off = 0; off < data.size(); off += chunk) {
      streaming.Update(data.data() + off, std::min(chunk, data.size() - off));
    }
    ASSERT_EQ(streaming.Digest(), expected) << "chunk size " << chunk;
  }
}

TEST(Checksummer, ZeroLengthUpdatesAreIdentity) {
  Checksummer a;
  a.Update("xy", 2);
  Checksummer b;
  b.Update(nullptr, 0);
  b.Update("x", 1);
  b.Update("", 0);
  b.Update("y", 1);
  b.Update(nullptr, 0);
  EXPECT_EQ(a.Digest(), b.Digest());
}

TEST(Checksummer, DigestIsIdempotentAndResetRestarts) {
  Checksummer c;
  c.Update("payload", 7);
  const std::uint64_t first = c.Digest();
  EXPECT_EQ(c.Digest(), first);  // Digest() must not consume state

  c.Update("!", 1);
  EXPECT_NE(c.Digest(), first);

  c.Reset();
  c.Update("payload", 7);
  EXPECT_EQ(c.Digest(), first);
}

TEST(Checksummer, LengthIsPartOfTheDigest) {
  // Same words, different trailing zero-padding must not collide: "ab" vs
  // "ab\0" differ only by tail length.
  const char buf[3] = {'a', 'b', '\0'};
  EXPECT_NE(Checksummer::Hash(buf, 2), Checksummer::Hash(buf, 3));
  // And an empty digest differs from a single zero byte.
  const char zero = '\0';
  EXPECT_NE(Checksummer::Hash(nullptr, 0), Checksummer::Hash(&zero, 1));
}

TEST(Checksummer, SingleBitFlipsChangeTheDigest) {
  std::vector<unsigned char> data(96, 0x5C);
  const std::uint64_t clean = Checksummer::Hash(data.data(), data.size());
  for (std::size_t byte : {std::size_t{0}, std::size_t{7}, std::size_t{8},
                           std::size_t{63}, std::size_t{95}}) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<unsigned char>(1u << bit);
      EXPECT_NE(Checksummer::Hash(data.data(), data.size()), clean)
          << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<unsigned char>(1u << bit);
    }
  }
  EXPECT_EQ(Checksummer::Hash(data.data(), data.size()), clean);
}

}  // namespace
}  // namespace kf
