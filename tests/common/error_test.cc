// The ErrorCode <-> string table is API: codes are logged, matched by retry
// policies, and used as metric labels (server.failed{code=...}), so every
// value and its stable name is pinned here. A new code extends this table;
// an existing name never changes.
#include "common/error.h"

#include <gtest/gtest.h>

#include <string>

namespace kf {
namespace {

TEST(ErrorCode, StableStringTable) {
  EXPECT_STREQ(ToString(ErrorCode::kGeneric), "generic");
  EXPECT_STREQ(ToString(ErrorCode::kInvalidArgument), "invalid_argument");
  EXPECT_STREQ(ToString(ErrorCode::kDeviceFault), "device_fault");
  EXPECT_STREQ(ToString(ErrorCode::kTimeout), "timeout");
  EXPECT_STREQ(ToString(ErrorCode::kCapacityExceeded), "capacity_exceeded");
  EXPECT_STREQ(ToString(ErrorCode::kCancelled), "cancelled");
  EXPECT_STREQ(ToString(ErrorCode::kDataCorruption), "data_corruption");
}

TEST(ErrorCode, StableNumericValues) {
  // Codes are appended, never reordered: the numeric values are part of the
  // logged contract.
  EXPECT_EQ(static_cast<int>(ErrorCode::kGeneric), 0);
  EXPECT_EQ(static_cast<int>(ErrorCode::kInvalidArgument), 1);
  EXPECT_EQ(static_cast<int>(ErrorCode::kDeviceFault), 2);
  EXPECT_EQ(static_cast<int>(ErrorCode::kTimeout), 3);
  EXPECT_EQ(static_cast<int>(ErrorCode::kCapacityExceeded), 4);
  EXPECT_EQ(static_cast<int>(ErrorCode::kCancelled), 5);
  EXPECT_EQ(static_cast<int>(ErrorCode::kDataCorruption), 6);
}

TEST(Error, SubclassesCarryTheirCode) {
  EXPECT_EQ(Error("e").code(), ErrorCode::kGeneric);
  EXPECT_EQ(InvalidArgument("e").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(DeviceFault("e").code(), ErrorCode::kDeviceFault);
  EXPECT_EQ(Timeout("e").code(), ErrorCode::kTimeout);
  EXPECT_EQ(CapacityExceeded("e").code(), ErrorCode::kCapacityExceeded);
  EXPECT_EQ(Cancelled("e").code(), ErrorCode::kCancelled);
  EXPECT_EQ(DataCorruption("e").code(), ErrorCode::kDataCorruption);
}

TEST(Error, DataCorruptionCatchableAsBaseError) {
  try {
    KF_FAIL_AS(::kf::DataCorruption) << "cluster 'join' wrong bytes";
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDataCorruption);
    EXPECT_NE(std::string(e.what()).find("cluster 'join' wrong bytes"),
              std::string::npos);
  }
}

TEST(Error, RequireAsThrowsTypedOnlyOnFailure) {
  EXPECT_NO_THROW(KF_REQUIRE_AS(::kf::DataCorruption, true) << "unused");
  EXPECT_THROW(KF_REQUIRE_AS(::kf::DataCorruption, false) << "boom",
               DataCorruption);
}

}  // namespace
}  // namespace kf
