#!/usr/bin/env bash
# Run clang-format over every tracked C++ file.
#
#   scripts/format.sh          rewrite files in place
#   scripts/format.sh --check  dry run, nonzero exit on any diff (CI mode)
#
# Uses the repo's .clang-format. Override the binary with CLANG_FORMAT=...
set -euo pipefail

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "format.sh: '$CLANG_FORMAT' not found; install clang-format or set CLANG_FORMAT=<binary>" >&2
  exit 127
fi
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

MODE_ARGS=(-i)
if [[ "${1:-}" == "--check" ]]; then
  MODE_ARGS=(--dry-run -Werror)
fi

git ls-files '*.cc' '*.h' | xargs "$CLANG_FORMAT" "${MODE_ARGS[@]}"
