#!/usr/bin/env bash
# Regenerate the checked-in bench baselines used by the CI bench-smoke job.
#
# Usage: scripts/refresh_baselines.sh [build-dir]
#
# The scales here MUST match the ones used by the bench-smoke job in
# .github/workflows/ci.yml — the simulation is deterministic, so a baseline
# regenerated at the same scale reproduces exactly on any machine.
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT_DIR="$REPO_ROOT/bench/baselines"
mkdir -p "$OUT_DIR"

run() {
  local bench="$1" scale="$2"
  echo "== $bench (scale $scale) =="
  "$REPO_ROOT/$BUILD_DIR/bench/$bench" \
    --json "$OUT_DIR/BENCH_${bench#bench_}.json" --scale "$scale" >/dev/null
}

run bench_fig08_fusion_throughput 0.02
run bench_fig14_fission 0.02
run bench_fig18a_tpch_q1 0.05
run bench_server_throughput 0.2
run bench_resilience 0.1
run bench_multi_device 0.1
run bench_adaptive 0.1
run bench_integrity 0.1
run bench_tracing 0.1

echo "baselines written to $OUT_DIR"
