// Renders tracer output as human-readable per-query text profiles.
//
// Accepts both trace formats the tracer emits:
//   - flight-recorder dumps (`trace_query_<id>.json`, one span tree), and
//   - session traces (Chrome trace-event JSON from obs::ToSessionTrace).
//
// Usage:
//   trace_dump <file.json>...          render each file as a text profile
//   trace_dump --check <file.json>...  validate well-formedness only
//
// `--check` validates that a flight dump's span ids are dense with resolvable
// parents and that a session trace obeys the Chrome trace-event schema (used
// by CI to gate the traces uploaded from fuzz and soak jobs). Exit status is
// 0 when every file passes, 1 otherwise.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/tracer.h"

namespace {

using kf::obs::Json;

std::string ReadFile(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return "";
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string FormatSeconds(double seconds) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(6);
  os << seconds;
  return os.str();
}

// --- Flight-recorder dumps (QueryTrace::ToJson). ---------------------------

bool CheckFlightDump(const Json& doc, std::string* error) {
  for (const char* key : {"query_id", "finished", "failed", "spans"}) {
    if (!doc.Has(key)) {
      *error = std::string("missing key '") + key + "'";
      return false;
    }
  }
  const Json& spans = doc.at("spans");
  if (!spans.is_array()) {
    *error = "'spans' is not an array";
    return false;
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Json& span = spans.at(i);
    for (const char* key :
         {"id", "parent", "name", "lane", "sim_start", "sim_end"}) {
      if (!span.Has(key)) {
        *error = "span " + std::to_string(i) + " missing key '" + key + "'";
        return false;
      }
    }
    const auto id = static_cast<std::uint64_t>(span.at("id").number());
    const auto parent = static_cast<std::uint64_t>(span.at("parent").number());
    if (id != i + 1) {
      *error = "span ids not dense: span " + std::to_string(i) + " has id " +
               std::to_string(id);
      return false;
    }
    if (parent == id || parent > spans.size()) {
      *error = "span " + std::to_string(id) + " has unresolvable parent " +
               std::to_string(parent);
      return false;
    }
  }
  return true;
}

void PrintSpanTree(const Json& spans, std::size_t index,
                   const std::vector<std::vector<std::size_t>>& children,
                   int depth) {
  const Json& span = spans.at(index);
  const double start = span.at("sim_start").number();
  const double end = span.at("sim_end").number();
  std::cout << std::string(static_cast<std::size_t>(depth) * 2, ' ')
            << span.at("name").str() << "  [" << FormatSeconds(start) << "s .. "
            << FormatSeconds(end) << "s]  dur=" << FormatSeconds(end - start)
            << "s  lane=" << span.at("lane").str();
  if (const Json* category = span.Find("category")) {
    std::cout << "  cat=" << category->str();
  }
  if (const Json* device = span.Find("device")) {
    std::cout << "  dev=" << static_cast<int>(device->number());
  }
  if (const Json* attempt = span.Find("attempt")) {
    const int value = static_cast<int>(attempt->number());
    if (value > 0) std::cout << "  attempt=" << value;
  }
  if (const Json* shard = span.Find("shard")) {
    const int value = static_cast<int>(shard->number());
    if (value >= 0) std::cout << "  shard=" << value;
  }
  std::cout << "\n";
  if (const Json* annotations = span.Find("annotations")) {
    for (std::size_t a = 0; a < annotations->size(); ++a) {
      const Json& note = annotations->at(a);
      std::cout << std::string(static_cast<std::size_t>(depth) * 2 + 2, ' ')
                << "! " << note.at("kind").str();
      const std::string& detail = note.at("detail").str();
      if (!detail.empty()) std::cout << ": " << detail;
      std::cout << "  @" << FormatSeconds(note.at("sim_time").number()) << "s\n";
    }
  }
  for (std::size_t child : children[index]) {
    PrintSpanTree(spans, child, children, depth + 1);
  }
}

void RenderFlightDump(const Json& doc) {
  const auto query_id = static_cast<std::uint64_t>(doc.at("query_id").number());
  std::cout << "query " << query_id;
  if (doc.at("failed").bool_value()) {
    std::cout << "  FAILED";
    if (const Json* failure = doc.Find("failure")) {
      if (!failure->str().empty()) std::cout << " (" << failure->str() << ")";
    }
  }
  std::cout << "\n";
  const Json& spans = doc.at("spans");
  std::vector<std::vector<std::size_t>> children(spans.size());
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto parent =
        static_cast<std::uint64_t>(spans.at(i).at("parent").number());
    if (parent == 0) {
      roots.push_back(i);
    } else {
      children[parent - 1].push_back(i);
    }
  }
  for (std::size_t root : roots) PrintSpanTree(spans, root, children, 1);
}

// --- Session traces (Chrome trace-event JSON). -----------------------------

bool CheckSessionTrace(const Json& doc, std::string* error) {
  const Json& events = doc.at("traceEvents");
  if (!events.is_array()) {
    *error = "'traceEvents' is not an array";
    return false;
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& event = events.at(i);
    const Json* ph = event.Find("ph");
    if (ph == nullptr || !ph->is_string()) {
      *error = "event " + std::to_string(i) + " has no phase";
      return false;
    }
    const std::string& phase = ph->str();
    std::vector<const char*> required;
    if (phase == "X") {
      required = {"name", "pid", "tid", "ts", "dur", "args"};
    } else if (phase == "M") {
      required = {"name", "pid", "tid", "args"};
    } else if (phase == "s" || phase == "f") {
      required = {"name", "id", "pid", "tid", "ts"};
    } else {
      *error = "event " + std::to_string(i) + " has unexpected phase '" +
               phase + "'";
      return false;
    }
    for (const char* key : required) {
      if (!event.Has(key)) {
        *error = "event " + std::to_string(i) + " (ph=" + phase +
                 ") missing key '" + key + "'";
        return false;
      }
    }
    if (phase == "X" && event.at("dur").number() < 0.0) {
      *error = "event " + std::to_string(i) + " has negative duration";
      return false;
    }
  }
  return true;
}

void RenderSessionTrace(const Json& doc) {
  const Json& events = doc.at("traceEvents");
  // Group complete slices by query id, keep submission (ts) order per query.
  std::map<std::uint64_t, std::vector<const Json*>> by_query;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& event = events.at(i);
    if (event.at("ph").str() != "X") continue;
    const Json* args = event.Find("args");
    const Json* query = args != nullptr ? args->Find("query") : nullptr;
    if (query == nullptr) continue;
    by_query[static_cast<std::uint64_t>(query->number())].push_back(&event);
  }
  for (auto& [query_id, slices] : by_query) {
    std::stable_sort(slices.begin(), slices.end(),
                     [](const Json* a, const Json* b) {
                       return a->at("ts").number() < b->at("ts").number();
                     });
    std::cout << "query " << query_id << "  (" << slices.size() << " spans)\n";
    for (const Json* slice : slices) {
      const double start = slice->at("ts").number() / 1e6;
      const double dur = slice->at("dur").number() / 1e6;
      std::cout << "  " << FormatSeconds(start) << "s +"
                << FormatSeconds(dur) << "s  pid=" << slice->at("pid").number()
                << " tid=" << slice->at("tid").number() << "  "
                << slice->at("name").str();
      const Json* args = slice->Find("args");
      const Json* notes = args != nullptr ? args->Find("annotations") : nullptr;
      if (notes != nullptr) {
        for (std::size_t a = 0; a < notes->size(); ++a) {
          std::cout << "  [" << notes->at(a).str() << "]";
        }
      }
      std::cout << "\n";
    }
  }
}

bool ProcessFile(const std::string& path, bool check_only) {
  std::string error;
  const std::string text = ReadFile(path, &error);
  if (!error.empty()) {
    std::cerr << "trace_dump: " << error << "\n";
    return false;
  }
  Json doc;
  try {
    doc = Json::Parse(text);
  } catch (const std::exception& e) {
    std::cerr << "trace_dump: " << path << ": " << e.what() << "\n";
    return false;
  }
  const bool session = doc.is_object() && doc.Has("traceEvents");
  const bool flight = doc.is_object() && doc.Has("spans");
  if (!session && !flight) {
    std::cerr << "trace_dump: " << path
              << ": neither a session trace (traceEvents) nor a flight dump"
                 " (spans)\n";
    return false;
  }
  const bool ok = session ? CheckSessionTrace(doc, &error)
                          : CheckFlightDump(doc, &error);
  if (!ok) {
    std::cerr << "trace_dump: " << path << ": " << error << "\n";
    return false;
  }
  if (check_only) {
    const std::size_t count =
        session ? doc.at("traceEvents").size() : doc.at("spans").size();
    std::cout << "OK " << path << " (" << count
              << (session ? " events)" : " spans)") << "\n";
    return true;
  }
  std::cout << "== " << path << " ==\n";
  if (session) {
    RenderSessionTrace(doc);
  } else {
    RenderFlightDump(doc);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_only = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check_only = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: trace_dump [--check] <file.json>...\n";
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: trace_dump [--check] <file.json>...\n";
    return 1;
  }
  bool all_ok = true;
  for (const std::string& path : paths) {
    all_ok = ProcessFile(path, check_only) && all_ok;
  }
  return all_ok ? 0 : 1;
}
