// bench_compare — regression gate for kf-bench-v1 JSON produced by the
// bench binaries' --json mode.
//
// Usage:
//   bench_compare <baseline.json> <run.json>
//       [--tolerance <frac>] [--metric-tolerance <name>=<frac>]... [--verbose]
//
// Exit codes: 0 = within tolerance, 1 = at least one regression or missing
// metric, 2 = usage / IO / parse error. Only summaries and series points are
// gated; the embedded metrics-registry dump is informational (wall-clock
// histograms are machine-dependent).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "obs/json.h"
#include "obs/regression.h"

namespace {

int Usage(std::ostream& out, int code) {
  out << "usage: bench_compare <baseline.json> <run.json>\n"
         "           [--tolerance <frac>] [--metric-tolerance <name>=<frac>]...\n"
         "           [--verbose]\n"
         "\n"
         "Compares a kf-bench-v1 run against a baseline. Summaries are gated\n"
         "in their declared direction; series points are gated two-sided.\n"
         "Exit 0 = pass, 1 = regression/missing metric, 2 = bad input.\n";
  return code;
}

// Strict fraction parse: the whole token must be a non-negative number,
// so `--tolerance banana` is an error instead of a silent 0.0.
bool ParseFraction(const std::string& token, double* out) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || value < 0.0) {
    return false;
  }
  *out = value;
  return true;
}

kf::obs::Json LoadDocument(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw kf::Error("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return kf::obs::Json::Parse(buffer.str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, run_path;
  kf::obs::ToleranceSpec tolerances;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return Usage(std::cout, 0);
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--tolerance") {
      if (++i >= argc) return Usage(std::cerr, 2);
      if (!ParseFraction(argv[i], &tolerances.default_tolerance)) {
        std::cerr << "bench_compare: bad --tolerance '" << argv[i]
                  << "' (want a non-negative fraction)\n";
        return 2;
      }
    } else if (arg == "--metric-tolerance") {
      if (++i >= argc) return Usage(std::cerr, 2);
      const std::string spec = argv[i];
      const std::size_t eq = spec.rfind('=');
      double fraction = 0.0;
      if (eq == std::string::npos || eq == 0 ||
          !ParseFraction(spec.substr(eq + 1), &fraction)) {
        std::cerr << "bench_compare: bad --metric-tolerance '" << spec
                  << "' (want name=frac)\n";
        return 2;
      }
      tolerances.per_metric[spec.substr(0, eq)] = fraction;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "bench_compare: unknown option '" << arg << "'\n";
      return Usage(std::cerr, 2);
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (run_path.empty()) {
      run_path = arg;
    } else {
      return Usage(std::cerr, 2);
    }
  }
  if (baseline_path.empty() || run_path.empty()) {
    return Usage(std::cerr, 2);
  }

  try {
    const kf::obs::Json baseline = LoadDocument(baseline_path);
    const kf::obs::Json run = LoadDocument(run_path);
    const kf::obs::CompareResult result =
        kf::obs::CompareBenchRuns(baseline, run, tolerances);
    std::cout << kf::obs::FormatReport(result, verbose);
    return result.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bench_compare: " << e.what() << "\n";
    return 2;
  }
}
