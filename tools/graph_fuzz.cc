// Property-based differential fuzzer for the execution stack.
//
// Each iteration draws a seeded random operator DAG (tests/core/random_graph.h
// — the same generator the property suites use), computes the scalar
// operator-at-a-time reference, then sweeps the executor configuration space:
//
//   * all four ExecutionStrategies, cold and with a shared BufferArena,
//   * adaptive calibration on and off (a learning CostModelCalibrator is
//     shared across the iteration's runs, so later runs execute replanned
//     segment/stream/placement choices),
//   * multi-device sharding across a two-card DeviceGroup when the graph is
//     shardable,
//   * seeded fault-injection profiles (copy/kernel faults, device OOM,
//     stream stalls) through the resilient retry/degrade path.
//
// The oracle: every run must either produce byte-identical sink tables
// (same schema, rows, order, and value payloads as the reference) or — only
// when faults are enabled — fail with a typed kf::Error. Any mismatch, any
// untyped exception, or a typed failure without faults is a finding: the
// tool prints a REPRO line that replays exactly that iteration and exits 1.
//
// Usage:
//   graph_fuzz [--seed=N] [--iters=N] [--profile=NAME]
//
// Profiles: none | default | copy-heavy | oom-heavy | stall-heavy |
// corrupt | corrupt-mixed | corrupt-blind | all ("all" cycles every profile
// across iterations; the default). The corrupt profiles inject silent
// bit-flips: the verified ones run with checksummed transfers plus a full
// audit (any surviving mismatch is a detection hole), corrupt-blind runs
// unverified and accepts wrong bytes only when the report itself counts
// them as undetected corruption. CI runs a
// small --iters smoke per PR and a 10k-iteration nightly sweep
// (.github/workflows/{ci,nightly}.yml); confirmed findings get pinned as
// regression tests in tests/core/fuzz_regressions_test.cc.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/buffer_arena.h"
#include "common/error.h"
#include "core/calibration.h"
#include "core/multi_device.h"
#include "core/query_executor.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "sim/device_group.h"
#include "sim/fault_injector.h"
#include "tests/core/random_graph.h"

namespace {

using namespace kf;
using relational::Table;

struct FaultProfile {
  std::string name;
  sim::FaultConfig config;          // seed filled in per run
  core::IntegrityOptions integrity;  // verification arms for corruption runs
};

std::vector<FaultProfile> AllProfiles() {
  std::vector<FaultProfile> profiles;
  profiles.push_back({"none", {}, {}});
  sim::FaultConfig def;
  def.copy_fault_rate = 0.05;
  def.kernel_fault_rate = 0.05;
  def.oom_rate = 0.01;
  def.stall_rate = 0.05;
  profiles.push_back({"default", def, {}});
  sim::FaultConfig copy_heavy;
  copy_heavy.copy_fault_rate = 0.25;
  profiles.push_back({"copy-heavy", copy_heavy, {}});
  sim::FaultConfig oom_heavy;
  oom_heavy.oom_rate = 0.20;
  profiles.push_back({"oom-heavy", oom_heavy, {}});
  sim::FaultConfig stall_heavy;
  stall_heavy.stall_rate = 0.30;
  stall_heavy.stall_multiplier = 8.0;
  profiles.push_back({"stall-heavy", stall_heavy, {}});
  // Silent bit-flips with full verification: checksummed transfers plus a
  // 100% audit, so every corrupted run must either heal to byte-identical
  // bytes or fail typed — a mismatch here is a detection hole.
  core::IntegrityOptions verified;
  verified.verify_transfers = true;
  verified.audit_fraction = 1.0;
  sim::FaultConfig corrupt;
  corrupt.corrupt_h2d_rate = 0.05;
  corrupt.corrupt_d2h_rate = 0.05;
  corrupt.corrupt_kernel_rate = 0.05;
  profiles.push_back({"corrupt", corrupt, verified});
  // Corruption layered over loud faults: retries, degrades, and
  // re-executions interleave; the oracle is unchanged.
  sim::FaultConfig corrupt_mixed = def;
  corrupt_mixed.corrupt_h2d_rate = 0.03;
  corrupt_mixed.corrupt_d2h_rate = 0.03;
  corrupt_mixed.corrupt_kernel_rate = 0.03;
  profiles.push_back({"corrupt-mixed", corrupt_mixed, verified});
  // Corruption with verification OFF: wrong sink bytes are expected, but
  // only when the run itself admits it (corruption_undetected > 0) — a
  // mismatch the report cannot explain is a finding.
  sim::FaultConfig corrupt_blind;
  corrupt_blind.corrupt_h2d_rate = 0.03;
  corrupt_blind.corrupt_d2h_rate = 0.03;
  corrupt_blind.corrupt_kernel_rate = 0.03;
  profiles.push_back({"corrupt-blind", corrupt_blind, {}});
  return profiles;
}

// gtest-free twin of tests/core/byte_identical.h: same schema string, same
// row count, same type tag and stored payload per value.
bool TablesByteIdentical(const Table& actual, const Table& expected,
                         std::string* why) {
  std::ostringstream oss;
  if (actual.schema().ToString() != expected.schema().ToString()) {
    oss << "schema mismatch: " << actual.schema().ToString() << " vs "
        << expected.schema().ToString();
    *why = oss.str();
    return false;
  }
  if (actual.row_count() != expected.row_count()) {
    oss << "row count mismatch: " << actual.row_count() << " vs "
        << expected.row_count();
    *why = oss.str();
    return false;
  }
  const std::vector<relational::Row> a = actual.Rows();
  const std::vector<relational::Row> b = expected.Rows();
  for (std::size_t r = 0; r < a.size(); ++r) {
    for (std::size_t f = 0; f < a[r].size(); ++f) {
      const relational::Value& va = a[r][f];
      const relational::Value& vb = b[r][f];
      if (va.type != vb.type || va.i != vb.i || va.f != vb.f) {
        oss << "row " << r << " field " << f << ": " << va.ToString() << " vs "
            << vb.ToString();
        *why = oss.str();
        return false;
      }
    }
  }
  return true;
}

struct FuzzStats {
  std::uint64_t runs = 0;
  std::uint64_t typed_errors = 0;
  std::uint64_t sharded_runs = 0;
  std::uint64_t host_placed = 0;
  std::uint64_t corrupted_commands = 0;
  std::uint64_t corruption_detected = 0;
  std::uint64_t corruption_reexecutions = 0;
  std::uint64_t blind_mismatches = 0;  // wrong bytes admitted by the report
};

// Checks one ExecutionReport (or typed failure) against the reference.
// Returns false and fills `why` on an oracle violation.
bool CheckSinks(const core::ExecutionReport& report,
                const core::RandomQuery& q,
                const std::map<core::NodeId, Table>& truth,
                std::string* why) {
  for (core::NodeId sink : q.graph.Sinks()) {
    if (report.sink_results.count(sink) == 0) {
      *why = "missing sink " + std::to_string(sink);
      return false;
    }
    std::string detail;
    if (!TablesByteIdentical(report.sink_results.at(sink), truth.at(sink),
                             &detail)) {
      *why = "sink " + std::to_string(sink) + ": " + detail;
      return false;
    }
  }
  return true;
}

// One fuzz iteration: the full configuration sweep over one random graph.
// Returns false and fills `why` on the first oracle violation. When `tracer`
// is set (KF_TRACE_DIR configured) every run is traced; the violating run's
// span tree is dumped and its path returned in `trace_path`.
bool RunIteration(std::uint64_t seed, const FaultProfile& profile,
                  obs::Tracer* tracer, FuzzStats* stats, std::string* why,
                  std::string* trace_path) {
  const core::RandomQuery q = core::MakeRandomQuery(seed);
  const std::map<core::NodeId, Table> truth = core::ReferenceResults(q);
  const bool faults = profile.config.AnyEnabled();
  // Unverified corruption runs are allowed to return wrong bytes — but only
  // when the report itself admits corruption escaped (undetected > 0).
  const bool blind_corruption =
      profile.config.CorruptionEnabled() && !profile.integrity.Enabled();

  obs::MetricsRegistry metrics;  // keep fuzz traffic out of the default
  sim::FaultConfig fault_config = profile.config;
  fault_config.seed = seed * 31 + 7;
  const sim::FaultInjector injector(fault_config, &metrics);

  // A learning calibrator shared across the iteration: the first runs feed
  // it, later runs execute its replanned segments/streams/placements.
  core::CostModelCalibrator calibrator{sim::DeviceSpec{}, sim::PcieConfig{}};

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  kf::BufferArena arena;

  const auto run_single = [&](core::Strategy strategy, bool use_arena,
                              bool calibrated, const char* label) {
    core::ExecutorOptions options;
    options.strategy = strategy;
    options.chunk_count = 4;
    options.metrics = &metrics;
    if (use_arena) options.arena = &arena;
    if (calibrated) options.calibration = &calibrator;
    if (faults) options.fault_injector = &injector;
    options.integrity = profile.integrity;
    obs::TraceContext trace_ctx;
    if (tracer != nullptr) {
      trace_ctx.query_id = tracer->NextQueryId();
      options.tracer = tracer;
      options.trace = trace_ctx;
    }
    const auto finding = [&](const std::string& reason) {
      *why = reason;
      if (tracer != nullptr) {
        *trace_path = tracer->FinishQuery(trace_ctx, /*failed=*/true, reason);
      }
      return false;
    };
    try {
      const core::ExecutionReport report = executor.Execute(q.graph, q.sources,
                                                            options);
      ++stats->runs;
      stats->host_placed += report.host_placed_clusters;
      stats->corrupted_commands += report.corrupted_commands;
      stats->corruption_detected += report.corruption_detected;
      stats->corruption_reexecutions += report.corruption_reexecutions;
      std::string detail;
      if (!CheckSinks(report, q, truth, &detail)) {
        if (blind_corruption && report.corruption_undetected > 0) {
          ++stats->blind_mismatches;  // the report owns up to the wrong bytes
        } else {
          return finding(std::string(label) + " " + core::ToString(strategy) +
                         ": " + detail);
        }
      }
    } catch (const kf::Error& e) {
      ++stats->runs;
      if (!faults) {
        return finding(std::string(label) + " " + core::ToString(strategy) +
                       ": typed error without faults: " + e.what());
      }
      ++stats->typed_errors;  // typed failure under faults: acceptable
    } catch (const std::exception& e) {
      // Untyped exceptions are never acceptable, faults or not.
      ++stats->runs;
      return finding(std::string(label) + " " + core::ToString(strategy) +
                     ": untyped exception: " + e.what());
    }
    if (tracer != nullptr) tracer->FinishQuery(trace_ctx, /*failed=*/false, "");
    return true;
  };

  for (core::Strategy strategy :
       {core::Strategy::kSerial, core::Strategy::kFused,
        core::Strategy::kFission, core::Strategy::kFusedFission}) {
    if (!run_single(strategy, /*use_arena=*/false, /*calibrated=*/false,
                    "cold")) {
      return false;
    }
    if (!run_single(strategy, /*use_arena=*/true, /*calibrated=*/true,
                    "arena+calib")) {
      return false;
    }
  }

  // Multi-device sharding across two cards (calibrated base options), when
  // the graph shape supports it.
  if (core::MultiDeviceExecutor::Shardable(q.graph)) {
    sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(
        2, sim::DeviceSpec{}, sim::PcieConfig{}, sim::RootComplexConfig{},
        &metrics);
    core::MultiDeviceExecutor multi(group);
    core::MultiDeviceOptions options;
    options.base.strategy = core::Strategy::kFusedFission;
    options.base.chunk_count = 4;
    options.base.metrics = &metrics;
    options.base.calibration = &calibrator;
    if (faults) options.base.fault_injector = &injector;
    options.base.integrity = profile.integrity;
    obs::TraceContext trace_ctx;
    if (tracer != nullptr) {
      trace_ctx.query_id = tracer->NextQueryId();
      options.base.tracer = tracer;
      options.base.trace = trace_ctx;
    }
    const auto finding = [&](const std::string& reason) {
      *why = reason;
      if (tracer != nullptr) {
        *trace_path = tracer->FinishQuery(trace_ctx, /*failed=*/true, reason);
      }
      return false;
    };
    try {
      const core::MultiDeviceReport report = multi.Execute(q.graph, q.sources,
                                                           options);
      ++stats->runs;
      if (report.sharded) ++stats->sharded_runs;
      stats->corrupted_commands += report.combined.corrupted_commands;
      stats->corruption_detected += report.combined.corruption_detected;
      stats->corruption_reexecutions += report.combined.corruption_reexecutions;
      std::string detail;
      if (!CheckSinks(report.combined, q, truth, &detail)) {
        if (blind_corruption && report.combined.corruption_undetected > 0) {
          ++stats->blind_mismatches;
        } else {
          return finding("multi-device: " + detail);
        }
      }
    } catch (const kf::Error& e) {
      ++stats->runs;
      if (!faults) {
        return finding(std::string("multi-device: typed error without faults: ") +
                       e.what());
      }
      ++stats->typed_errors;
    } catch (const std::exception& e) {
      ++stats->runs;
      return finding(std::string("multi-device: untyped exception: ") + e.what());
    }
    if (tracer != nullptr) tracer->FinishQuery(trace_ctx, /*failed=*/false, "");
  }
  return true;
}

void PrintUsage() {
  std::cout <<
      "graph_fuzz: property-based differential fuzzer (see file header)\n"
      "  --seed=N      base seed; iteration i fuzzes graph seed N+i (default 1)\n"
      "  --iters=N     iterations (default 200)\n"
      "  --profile=P   none|default|copy-heavy|oom-heavy|stall-heavy|\n"
      "                corrupt|corrupt-mixed|corrupt-blind|all\n"
      "                (default all: cycle profiles across iterations)\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t base_seed = 1;
  std::uint64_t iters = 200;
  std::string profile_name = "all";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      base_seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--iters=", 0) == 0) {
      iters = std::strtoull(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("--profile=", 0) == 0) {
      profile_name = arg.substr(10);
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      PrintUsage();
      return 2;
    }
  }

  const std::vector<FaultProfile> all = AllProfiles();
  std::vector<FaultProfile> profiles;
  if (profile_name == "all") {
    profiles = all;
  } else {
    for (const FaultProfile& p : all) {
      if (p.name == profile_name) profiles.push_back(p);
    }
    if (profiles.empty()) {
      std::cerr << "unknown profile: " << profile_name << "\n";
      PrintUsage();
      return 2;
    }
  }

  // With KF_TRACE_DIR set every run is traced and a finding dumps the
  // violating run's full span tree next to the REPRO line.
  std::unique_ptr<obs::Tracer> tracer;
  const char* trace_dir = std::getenv("KF_TRACE_DIR");
  if (trace_dir != nullptr && trace_dir[0] != '\0') {
    tracer = std::make_unique<obs::Tracer>();
  }

  FuzzStats stats;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t seed = base_seed + i;
    const FaultProfile& profile = profiles[i % profiles.size()];
    std::string why;
    std::string trace_path;
    if (!RunIteration(seed, profile, tracer.get(), &stats, &why, &trace_path)) {
      std::cerr << "FINDING: " << why << "\n"
                << "graph:\n" << core::MakeRandomQuery(seed).graph.ToString()
                << "REPRO: graph_fuzz --seed=" << seed
                << " --iters=1 --profile=" << profile.name << "\n";
      if (!trace_path.empty()) std::cerr << "TRACE: " << trace_path << "\n";
      return 1;
    }
    if ((i + 1) % 100 == 0) {
      std::cout << "... " << (i + 1) << "/" << iters << " iterations, "
                << stats.runs << " runs, " << stats.typed_errors
                << " typed errors, " << stats.sharded_runs << " sharded\n";
    }
  }
  std::cout << "OK: " << iters << " graphs, " << stats.runs << " runs ("
            << stats.sharded_runs << " sharded, " << stats.typed_errors
            << " typed errors under faults, " << stats.host_placed
            << " host-placed clusters, " << stats.corrupted_commands
            << " corrupted commands / " << stats.corruption_detected
            << " detected / " << stats.corruption_reexecutions
            << " re-executions, " << stats.blind_mismatches
            << " admitted blind mismatches), 0 findings\n";
  return 0;
}
