#include "server/plan_cache.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "common/error.h"

namespace kf::server {

namespace {

using core::FusionCluster;
using core::FusionPlan;
using core::NodeId;
using core::OpGraph;
using core::OpNode;

void AppendInts(std::ostringstream& os, const std::vector<int>& values) {
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ',';
    os << values[i];
  }
  os << ']';
}

// Structural content of one node, excluding anything cosmetic (labels) or
// data-dependent (row hints): what the node *is*, not what flows through it.
std::string ContentSignature(const OpNode& node) {
  std::ostringstream os;
  if (node.is_source) {
    os << "src|" << node.name << '|' << node.schema.ToString();
    return os.str();
  }
  const relational::OperatorDesc& desc = node.desc;
  os << "op|" << relational::ToString(desc.kind);
  switch (desc.kind) {
    case relational::OpKind::kSelect:
      os << '|' << desc.predicate.ToString();
      break;
    case relational::OpKind::kProject:
      os << '|';
      AppendInts(os, desc.fields);
      break;
    case relational::OpKind::kJoin:
      os << '|' << desc.left_key << ':' << desc.right_key;
      break;
    case relational::OpKind::kSort:
      os << '|';
      AppendInts(os, desc.sort_keys);
      break;
    case relational::OpKind::kAggregate:
      os << '|';
      AppendInts(os, desc.group_by);
      os << '|';
      for (const relational::AggregateSpec& agg : desc.aggregates) {
        os << static_cast<int>(agg.func) << ':' << agg.field << ':' << agg.name
           << ';';
      }
      break;
    case relational::OpKind::kArith:
      os << '|' << desc.arith.ToString() << '|' << desc.arith_name << '|'
         << static_cast<int>(desc.arith_type);
      break;
    default:
      break;  // kind alone identifies the set operators and PRODUCT/UNIQUE
  }
  return os.str();
}

// Maps `id` through the canonical positions, preserving kNoNode.
std::size_t PositionOf(const CanonicalGraph& canonical, NodeId id) {
  return canonical.position.at(id);
}

FusionPlan MapPlan(const FusionPlan& plan, std::size_t node_count,
                   const std::function<NodeId(NodeId)>& map_node) {
  FusionPlan out;
  out.cluster_of.assign(node_count, -1);
  out.clusters.reserve(plan.clusters.size());
  for (std::size_t c = 0; c < plan.clusters.size(); ++c) {
    const FusionCluster& cluster = plan.clusters[c];
    FusionCluster mapped;
    mapped.register_estimate = cluster.register_estimate;
    mapped.primary_input = cluster.primary_input == core::kNoNode
                               ? core::kNoNode
                               : map_node(cluster.primary_input);
    for (NodeId id : cluster.nodes) {
      const NodeId m = map_node(id);
      mapped.nodes.push_back(m);
      out.cluster_of[m] = static_cast<int>(c);
    }
    for (NodeId id : cluster.build_inputs) mapped.build_inputs.push_back(map_node(id));
    for (NodeId id : cluster.outputs) mapped.outputs.push_back(map_node(id));
    out.clusters.push_back(std::move(mapped));
  }
  return out;
}

}  // namespace

CanonicalGraph CanonicalizeGraph(const OpGraph& graph) {
  const std::size_t n = graph.node_count();
  CanonicalGraph canonical;
  canonical.order.reserve(n);
  canonical.position.assign(n, n);  // n = "not yet placed"

  std::vector<std::string> content(n);
  for (NodeId id = 0; id < n; ++id) content[id] = ContentSignature(graph.node(id));

  // Deterministic topological order: repeatedly place the ready node (all
  // inputs already placed) with the smallest (content, input positions)
  // tuple. Both components are insertion-order independent, so two builds of
  // the same DAG converge on the same ordering; a full tie means the
  // candidates are structurally interchangeable up to their consumers, and
  // insertion order is an acceptable final tie-break (either choice yields
  // the same key when the graphs really are equal).
  auto input_positions = [&](NodeId id) {
    std::vector<std::size_t> positions;
    for (NodeId input : graph.node(id).inputs) {
      positions.push_back(canonical.position[input]);
    }
    return positions;
  };
  for (std::size_t placed = 0; placed < n; ++placed) {
    NodeId best = core::kNoNode;
    std::vector<std::size_t> best_inputs;
    for (NodeId id = 0; id < n; ++id) {
      if (canonical.position[id] != n) continue;  // already placed
      const OpNode& node = graph.node(id);
      bool ready = true;
      for (NodeId input : node.inputs) {
        if (canonical.position[input] == n) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      std::vector<std::size_t> inputs = input_positions(id);
      if (best == core::kNoNode || content[id] < content[best] ||
          (content[id] == content[best] && inputs < best_inputs)) {
        best = id;
        best_inputs = std::move(inputs);
      }
    }
    KF_REQUIRE_AS(::kf::InvalidArgument, best != core::kNoNode)
        << "operator graph has a cycle";
    canonical.position[best] = canonical.order.size();
    canonical.order.push_back(best);
  }

  std::ostringstream key;
  for (std::size_t pos = 0; pos < n; ++pos) {
    const NodeId id = canonical.order[pos];
    key << pos << ':' << content[id] << '(';
    const OpNode& node = graph.node(id);
    for (std::size_t i = 0; i < node.inputs.size(); ++i) {
      if (i) key << ',';
      key << canonical.position[node.inputs[i]];
    }
    key << ")\n";
  }
  canonical.key = key.str();
  return canonical;
}

std::string FusionOptionsKey(const core::FusionOptions& options) {
  std::ostringstream os;
  os << "fusion{enabled=" << (options.enabled ? 1 : 0)
     << ",budget=" << options.register_budget
     << ",base=" << options.base_registers << '}';
  return os.str();
}

namespace {
// Version 0 keeps the historical unversioned key so existing entries,
// tests, and logs are unchanged when no versioned state is in play.
std::string VersionPrefix(std::uint64_t version) {
  return version == 0 ? std::string()
                      : "v" + std::to_string(version) + "||";
}
}  // namespace

std::string FusionPlanCache::KeyFor(const OpGraph& graph,
                                    const core::FusionOptions& options,
                                    std::uint64_t version) {
  return VersionPrefix(version) + FusionOptionsKey(options) + "||" +
         CanonicalizeGraph(graph).key;
}

FusionPlan FusionPlanCache::GetOrPlan(const OpGraph& graph,
                                      const core::FusionOptions& options,
                                      bool* hit, std::uint64_t version) {
  const CanonicalGraph canonical = CanonicalizeGraph(graph);
  const std::string key =
      VersionPrefix(version) + FusionOptionsKey(options) + "||" + canonical.key;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // mark most-recent
      ++hits_;
      metrics().GetCounter("server.plan_cache.hits").Increment();
      if (hit != nullptr) *hit = true;
      // Rehydrate: canonical positions -> this graph's node ids.
      return MapPlan(it->second->canonical_plan, graph.node_count(),
                     [&](NodeId pos) { return canonical.order.at(pos); });
    }
  }

  // Plan outside the lock — planning is the expensive part we cache.
  FusionPlan plan = PlanFusion(graph, options);
  FusionPlan canonical_plan =
      MapPlan(plan, graph.node_count(), [&](NodeId id) {
        return static_cast<NodeId>(PositionOf(canonical, id));
      });

  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  metrics().GetCounter("server.plan_cache.misses").Increment();
  if (by_key_.count(key) == 0) {
    lru_.push_front(Entry{key, std::move(canonical_plan)});
    by_key_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
      by_key_.erase(lru_.back().key);
      lru_.pop_back();
      metrics().GetCounter("server.plan_cache.evictions").Increment();
    }
    metrics().GetGauge("server.plan_cache.size").Set(static_cast<double>(lru_.size()));
  }
  if (hit != nullptr) *hit = false;
  return plan;
}

std::size_t FusionPlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

double FusionPlanCache::HitRate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t total = hits() + misses();
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

void FusionPlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  by_key_.clear();
}

}  // namespace kf::server
