// Fusion-plan caching keyed by canonicalized graph shape.
//
// A serving system sees the same query *templates* over and over (the same
// TPC-H Q1 plan at different scale factors, the same dashboard query from
// thousands of clients). Planning fusion for every arrival is wasted work:
// the plan depends only on the graph's structure and the planner knobs, not
// on the bound data. `FusionPlanCache` canonicalizes an operator graph into
// an insertion-order-independent key, caches the planner's output in
// canonical node space, and rehydrates it for any structurally-equal graph —
// so repeated templates skip `PlanFusion` entirely.
//
// Canonicalization must be deterministic across runs and across insertion
// orders: like `plan_dot`, it orders nodes by structural position — never by
// pointer value or map iteration over addresses. Two graphs that build the
// same DAG in different AddSource/AddOperator orders produce the same key
// and share one cache entry (verified by regression test).
#ifndef KF_SERVER_PLAN_CACHE_H_
#define KF_SERVER_PLAN_CACHE_H_

#include <atomic>
#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/fusion_planner.h"
#include "core/op_graph.h"
#include "obs/metrics_registry.h"

namespace kf::server {

// A deterministic canonical ordering of a graph's nodes.
//
// Nodes are emitted in a topological order where ties among ready nodes are
// broken by (content signature, canonical input positions) — both are pure
// structure, so the ordering is identical for structurally-equal graphs
// regardless of insertion order. Node labels and row hints are cosmetic and
// excluded from signatures; predicates, keys, schemas, and source names are
// structural and included.
struct CanonicalGraph {
  // Full structural serialization: one entry per canonical position, each
  // encoding the node's content and the canonical positions of its inputs.
  // Equal keys imply isomorphic graphs under `order`.
  std::string key;
  // Canonical position -> node id in the original graph.
  std::vector<core::NodeId> order;
  // Node id -> canonical position (inverse of `order`).
  std::vector<std::size_t> position;
};

CanonicalGraph CanonicalizeGraph(const core::OpGraph& graph);

// Renders the planner knobs that change a plan into a key fragment.
std::string FusionOptionsKey(const core::FusionOptions& options);

// A bounded, thread-safe LRU cache of fusion plans.
//
// Plans are stored in canonical node space and translated to/from a concrete
// graph's node ids on insert/lookup, so one entry serves every
// structurally-equal graph. Hits, misses, and evictions are recorded into
// the registry (`server.plan_cache.*`).
class FusionPlanCache {
 public:
  explicit FusionPlanCache(std::size_t capacity = 128,
                           obs::MetricsRegistry* metrics = nullptr)
      : capacity_(capacity == 0 ? 1 : capacity), metrics_(metrics) {}

  FusionPlanCache(const FusionPlanCache&) = delete;
  FusionPlanCache& operator=(const FusionPlanCache&) = delete;

  // Returns the fusion plan for `graph` under `options`, planning and
  // inserting on miss. `hit` (optional) reports whether the plan came from
  // the cache. `version` is rendered into the cache key: callers that plan
  // against mutable planner state (e.g. a calibration epoch,
  // core/calibration.h) pass the state's version so entries planned under a
  // stale epoch are simply never found again — invalidated, not reused.
  // Version 0 reproduces the historical unversioned keys.
  core::FusionPlan GetOrPlan(const core::OpGraph& graph,
                             const core::FusionOptions& options,
                             bool* hit = nullptr,
                             std::uint64_t version = 0);

  // Cache key for `graph` + `options` (exposed for tests and debugging).
  static std::string KeyFor(const core::OpGraph& graph,
                            const core::FusionOptions& options,
                            std::uint64_t version = 0);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  double HitRate() const;

  void Clear();

 private:
  obs::MetricsRegistry& metrics() const {
    return metrics_ != nullptr ? *metrics_ : obs::MetricsRegistry::Default();
  }

  const std::size_t capacity_;
  obs::MetricsRegistry* metrics_;

  mutable std::mutex mutex_;
  // LRU list, most-recent first; map values point into the list.
  struct Entry {
    std::string key;
    core::FusionPlan canonical_plan;  // NodeIds are canonical positions
  };
  std::list<Entry> lru_;
  std::map<std::string, std::list<Entry>::iterator> by_key_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace kf::server

#endif  // KF_SERVER_PLAN_CACHE_H_
