#include "server/query_scheduler.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "core/graph_merge.h"

namespace kf::server {

namespace {

using core::NodeId;
using relational::Table;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Everything about ExecutorOptions that must match for two queries to share
// one execution. The fusion knobs go through EffectiveFusionOptions so two
// option structs that plan identically compare equal.
std::string ExecOptionsKey(const core::ExecutorOptions& options) {
  std::ostringstream os;
  os << static_cast<int>(options.strategy) << '|'
     << static_cast<int>(options.intermediates) << '|'
     << static_cast<int>(options.host_memory) << '|' << options.fission_segments
     << '|' << options.stream_count << '|' << options.chunk_count << '|'
     << options.device_memory_budget << '|'
     << static_cast<const void*>(options.fault_injector) << '|'
     << options.force_host << '|' << options.resilience.max_retries << '|'
     << options.resilience.backoff_base << '|'
     << options.resilience.backoff_factor << '|'
     << options.resilience.degrade_to_host << '|'
     << options.resilience.deadline << '|'
     << static_cast<const void*>(options.calibration) << '|'
     << options.integrity.verify_transfers << '|'
     << options.integrity.audit_fraction << '|'
     << options.integrity.audit_seed << '|'
     << options.integrity.max_reexecutions << '|'
     << FusionOptionsKey(core::EffectiveFusionOptions(options));
  return os.str();
}

}  // namespace

QueryScheduler::QueryScheduler(const sim::DeviceSimulator& device,
                               SchedulerOptions options)
    : device_(device),
      options_(std::move(options)),
      executor_(device_, options_.cost_model, options_.execution_pool),
      plan_cache_(options_.plan_cache_capacity, options_.metrics),
      started_(!options_.start_paused) {
  if (options_.worker_count == 0) options_.worker_count = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.max_queue_depth == 0) options_.max_queue_depth = 1;
  if (options_.device_group != nullptr) {
    group_executor_ = std::make_unique<core::MultiDeviceExecutor>(
        *options_.device_group, options_.cost_model, options_.execution_pool);
    device_states_.resize(
        static_cast<std::size_t>(options_.device_group->device_count()));
  }
  workers_.reserve(options_.worker_count);
  for (std::size_t i = 0; i < options_.worker_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

namespace {
SchedulerOptions WithGroup(SchedulerOptions options, const sim::DeviceGroup* group) {
  options.device_group = group;
  return options;
}
}  // namespace

QueryScheduler::QueryScheduler(const sim::DeviceGroup& group,
                               SchedulerOptions options)
    : QueryScheduler(group.device(0), WithGroup(std::move(options), &group)) {}

QueryScheduler::~QueryScheduler() { Shutdown(); }

void QueryScheduler::BeginJobTrace(Job& job) {
  if (options_.tracer == nullptr) return;
  job.trace.query_id = options_.tracer->NextQueryId();
  job.root_span =
      options_.tracer->BeginSpan(job.trace, 0, "query", "scheduler", job.sim_submit);
  job.queue_span = options_.tracer->BeginSpan(job.trace, job.root_span,
                                              "queue wait", "scheduler",
                                              job.sim_submit);
}

std::future<QueryResult> QueryScheduler::Submit(QueryRequest request) {
  auto job = std::make_unique<Job>();
  job->request = std::move(request);
  std::future<QueryResult> future = job->promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    space_available_.wait(lock, [&] {
      return stopping_ || queue_.size() < options_.max_queue_depth;
    });
    KF_REQUIRE_AS(::kf::Cancelled, !stopping_) << "QueryScheduler is shut down";
    job->sim_submit = sim_clock_;
    job->wall_submit = std::chrono::steady_clock::now();
    BeginJobTrace(*job);
    queue_.push_back(std::move(job));
    metrics().GetCounter("server.submitted").Increment();
    metrics().GetGauge("server.queue_depth").Set(static_cast<double>(queue_.size()));
  }
  work_available_.notify_one();
  return future;
}

std::optional<std::future<QueryResult>> QueryScheduler::TrySubmit(
    QueryRequest request) {
  auto job = std::make_unique<Job>();
  job->request = std::move(request);
  std::future<QueryResult> future = job->promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_ || queue_.size() >= options_.max_queue_depth) {
      metrics().GetCounter("server.rejected").Increment();
      return std::nullopt;
    }
    job->sim_submit = sim_clock_;
    job->wall_submit = std::chrono::steady_clock::now();
    BeginJobTrace(*job);
    queue_.push_back(std::move(job));
    metrics().GetCounter("server.submitted").Increment();
    metrics().GetGauge("server.queue_depth").Set(static_cast<double>(queue_.size()));
  }
  work_available_.notify_one();
  return future;
}

void QueryScheduler::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    started_ = true;
  }
  work_available_.notify_all();
}

void QueryScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [&] { return queue_.empty() && executing_ == 0; });
}

void QueryScheduler::Shutdown() {
  std::deque<JobPtr> cancelled;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    started_ = true;  // a paused scheduler still drains its queue
    // Cancel-on-shutdown: queued (unstarted) queries fail typed instead of
    // draining; batches already executing always complete.
    if (options_.cancel_pending_on_shutdown) cancelled.swap(queue_);
  }
  for (JobPtr& job : cancelled) {
    metrics().GetCounter("server.cancelled").Increment();
    if (options_.tracer != nullptr && job->root_span != 0) {
      job->trace.sim_offset = 0.0;
      options_.tracer->Annotate(job->trace, job->root_span,
                                obs::SpanAnnotationKind::kFailure,
                                "cancelled by scheduler shutdown",
                                job->sim_submit);
      options_.tracer->EndSpan(job->trace, job->queue_span, job->sim_submit);
      options_.tracer->EndSpan(job->trace, job->root_span, job->sim_submit);
      options_.tracer->FinishQuery(job->trace, true, "cancelled");
    }
    job->promise.set_exception(std::make_exception_ptr(
        ::kf::Cancelled("query cancelled by scheduler shutdown")));
  }
  work_available_.notify_all();
  space_available_.notify_all();
  admission_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

double QueryScheduler::sim_clock() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sim_clock_;
}

std::size_t QueryScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool QueryScheduler::breaker_open() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return breaker_open_;
}

bool QueryScheduler::breaker_open(int device) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (device < 0 || device >= static_cast<int>(device_states_.size())) return false;
  return device_states_[static_cast<std::size_t>(device)].breaker_open;
}

bool QueryScheduler::quarantined(int device) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (device < 0 || device >= static_cast<int>(device_states_.size())) return false;
  return device_states_[static_cast<std::size_t>(device)].quarantined;
}

std::size_t QueryScheduler::corruption_score(int device) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (device < 0 || device >= static_cast<int>(device_states_.size())) return 0;
  return device_states_[static_cast<std::size_t>(device)].corruption_score;
}

bool QueryScheduler::RecordDeviceFault() {
  bool opened = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++consecutive_faults_;
    if (!breaker_open_ && options_.breaker_threshold > 0 &&
        consecutive_faults_ >= options_.breaker_threshold) {
      breaker_open_ = true;
      breaker_batches_ = 0;
      opened = true;
    }
  }
  if (opened) metrics().GetCounter("resilience.breaker_opened").Increment();
  return opened;
}

bool QueryScheduler::RecordDeviceSuccess() {
  bool closed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    consecutive_faults_ = 0;
    if (breaker_open_) {
      breaker_open_ = false;
      closed = true;
    }
  }
  if (closed) metrics().GetCounter("resilience.breaker_closed").Increment();
  return closed;
}

bool QueryScheduler::RecordDeviceFault(int device) {
  bool opened = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DeviceState& state = device_states_.at(static_cast<std::size_t>(device));
    ++state.consecutive_faults;
    if (!state.breaker_open && options_.breaker_threshold > 0 &&
        state.consecutive_faults >= options_.breaker_threshold) {
      state.breaker_open = true;
      state.breaker_batches = 0;
      opened = true;
    }
  }
  if (opened) {
    const std::string& label =
        options_.device_group->device(device).instance_label();
    metrics().GetCounter("resilience.breaker_opened").Increment();
    metrics().GetCounter("server.device.breaker_opened", {{"device", label}})
        .Increment();
  }
  return opened;
}

bool QueryScheduler::RecordDeviceSuccess(int device) {
  bool closed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DeviceState& state = device_states_.at(static_cast<std::size_t>(device));
    state.consecutive_faults = 0;
    if (state.breaker_open) {
      state.breaker_open = false;
      closed = true;
    }
  }
  if (closed) {
    const std::string& label =
        options_.device_group->device(device).instance_label();
    metrics().GetCounter("resilience.breaker_closed").Increment();
    metrics().GetCounter("server.device.breaker_closed", {{"device", label}})
        .Increment();
  }
  return closed;
}

bool QueryScheduler::RecordDeviceCorruption(int device, std::size_t detected) {
  bool opened = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DeviceState& state = device_states_.at(static_cast<std::size_t>(device));
    ++state.corruption_score;
    if (!state.quarantined && options_.quarantine_threshold > 0 &&
        state.corruption_score >= options_.quarantine_threshold) {
      state.quarantined = true;
      state.quarantine_batches = 0;
      opened = true;
    }
  }
  const std::string& label =
      options_.device_group->device(device).instance_label();
  metrics().GetCounter("server.device.corrupt_batches", {{"device", label}})
      .Increment();
  metrics()
      .GetCounter("integrity.corruption_detected", {{"device", label}})
      .Increment(detected);
  if (opened) {
    metrics().GetCounter("integrity.quarantine_opened").Increment();
    metrics().GetCounter("server.device.quarantined", {{"device", label}})
        .Increment();
  }
  return opened;
}

bool QueryScheduler::RecordDeviceClean(int device) {
  bool closed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DeviceState& state = device_states_.at(static_cast<std::size_t>(device));
    state.corruption_score /= 2;
    if (state.quarantined) {
      // A clean batch while quarantined is necessarily a probe (nothing else
      // lands here) — the device is delivering honest bytes again.
      state.quarantined = false;
      state.corruption_score = 0;
      closed = true;
    }
  }
  if (closed) {
    const std::string& label =
        options_.device_group->device(device).instance_label();
    metrics().GetCounter("integrity.quarantine_closed").Increment();
    metrics().GetCounter("server.device.unquarantined", {{"device", label}})
        .Increment();
  }
  return closed;
}

bool QueryScheduler::Compatible(const QueryRequest& leader,
                                const QueryRequest& candidate) {
  if (leader.merge_class.empty() || leader.merge_class != candidate.merge_class) {
    return false;
  }
  if (leader.allow_sharding != candidate.allow_sharding) return false;
  if (leader.options.metrics != candidate.options.metrics) return false;
  if (ExecOptionsKey(leader.options) != ExecOptionsKey(candidate.options)) {
    return false;
  }
  // Same-named sources must agree on schema (MergeGraphs would throw) and on
  // row count (a cheap proxy for "same table"; identical contents are the
  // merge_class contract).
  for (NodeId lsrc : leader.graph.Sources()) {
    const core::OpNode& lnode = leader.graph.node(lsrc);
    for (NodeId csrc : candidate.graph.Sources()) {
      const core::OpNode& cnode = candidate.graph.node(csrc);
      if (lnode.name != cnode.name) continue;
      if (lnode.schema.ToString() != cnode.schema.ToString()) return false;
      auto lt = leader.sources.find(lsrc);
      auto ct = candidate.sources.find(csrc);
      if (lt != leader.sources.end() && ct != candidate.sources.end() &&
          lt->second.row_count() != ct->second.row_count()) {
        return false;
      }
    }
  }
  return true;
}

std::uint64_t QueryScheduler::EstimateBytes(const std::vector<JobPtr>& batch) {
  // Distinct sources by name (merged batches share same-named sources) plus
  // nothing for sinks — realized output sizes are unknown at admission time.
  std::map<std::string, std::uint64_t> by_name;
  for (const JobPtr& job : batch) {
    for (const auto& [id, table] : job->request.sources) {
      by_name[job->request.graph.node(id).name] =
          std::max(by_name[job->request.graph.node(id).name], table.byte_size());
    }
  }
  std::uint64_t total = 0;
  for (const auto& [name, bytes] : by_name) total += bytes;
  return total;
}

void QueryScheduler::WorkerLoop() {
  // Worker-private buffer pool: staged-kernel workspaces stay warm across
  // every batch this worker executes, with no cross-worker contention.
  kf::BufferArena arena;
  for (;;) {
    std::vector<JobPtr> batch;
    std::uint64_t batch_bytes = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [&] { return (started_ && !queue_.empty()) || stopping_; });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      for (auto it = queue_.begin();
           it != queue_.end() && batch.size() < options_.max_batch;) {
        if (Compatible(batch.front()->request, (*it)->request)) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      metrics().GetGauge("server.queue_depth").Set(static_cast<double>(queue_.size()));

      // Admission control: concurrent batches share the device's memory; a
      // batch whose estimated footprint does not fit waits until enough
      // in-flight work retires (an oversized batch runs when nothing else
      // is executing, so progress is guaranteed).
      batch_bytes = EstimateBytes(batch);
      std::uint64_t capacity = device_.spec().mem_capacity_bytes;
      if (options_.device_group != nullptr) {
        capacity = 0;  // group mode: batches share the fleet's memory
        for (int d = 0; d < options_.device_group->device_count(); ++d) {
          capacity += options_.device_group->device(d).spec().mem_capacity_bytes;
        }
      }
      const auto allowance = static_cast<std::uint64_t>(
          static_cast<double>(capacity) * options_.admission_memory_fraction);
      admission_.wait(lock, [&] {
        return executing_ == 0 || inflight_bytes_ + batch_bytes <= allowance;
      });
      inflight_bytes_ += batch_bytes;
      ++executing_;
      metrics().GetGauge("server.inflight_bytes")
          .Set(static_cast<double>(inflight_bytes_));
    }
    space_available_.notify_all();

    ExecuteBatch(std::move(batch), &arena);

    bool now_idle = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_bytes_ -= batch_bytes;
      --executing_;
      metrics().GetGauge("server.inflight_bytes")
          .Set(static_cast<double>(inflight_bytes_));
      now_idle = queue_.empty() && executing_ == 0;
    }
    admission_.notify_all();
    if (now_idle) idle_.notify_all();
  }
}

void QueryScheduler::ExecuteBatch(std::vector<JobPtr> batch,
                                  kf::BufferArena* arena) {
  const auto pickup = std::chrono::steady_clock::now();
  for (const JobPtr& job : batch) {
    const double wait =
        std::chrono::duration<double>(pickup - job->wall_submit).count();
    job->queue_wait = wait;
    metrics().GetHistogram("server.queue_wait_seconds").Record(wait);
  }

  obs::Tracer* const tracer = options_.tracer;
  const double pickup_sim = sim_clock();
  if (tracer != nullptr) {
    for (const JobPtr& job : batch) {
      if (job->queue_span != 0) {
        tracer->EndSpan(job->trace, job->queue_span, pickup_sim);
        job->queue_span = 0;  // merge-fallback solo reruns must not re-end it
      }
    }
  }
  Job& leader = *batch.front();
  // The scheduler only wires executor tracing when the request left
  // ExecutorOptions::tracer unset (per-query settings always win).
  const bool sched_trace = tracer != nullptr && leader.root_span != 0 &&
                           leader.request.options.tracer == nullptr;
  obs::SpanId attempt_span = 0;
  double attempt_start = pickup_sim;

  const bool merged = batch.size() > 1;
  try {
    // Splice the batch into one graph, remembering each query's node
    // mapping so results can be routed back.
    core::OpGraph merged_graph;
    std::map<NodeId, Table> merged_sources;
    std::vector<std::map<NodeId, NodeId>> mappings(batch.size());
    const core::OpGraph* exec_graph = &batch.front()->request.graph;
    const std::map<NodeId, Table>* exec_sources = &batch.front()->request.sources;
    if (merged) {
      merged_graph = batch.front()->request.graph;
      for (NodeId id = 0; id < merged_graph.node_count(); ++id) {
        mappings[0][id] = id;
      }
      for (std::size_t i = 1; i < batch.size(); ++i) {
        core::MergeResult step =
            core::MergeGraphs(merged_graph, batch[i]->request.graph);
        for (std::size_t j = 0; j < i; ++j) {
          for (auto& [orig, mapped] : mappings[j]) {
            mapped = step.first_mapping.at(mapped);
          }
        }
        mappings[i] = std::move(step.second_mapping);
        merged_graph = std::move(step.graph);
      }
      for (std::size_t j = 0; j < batch.size(); ++j) {
        for (const auto& [id, table] : batch[j]->request.sources) {
          merged_sources.emplace(mappings[j].at(id), table);
        }
      }
      exec_graph = &merged_graph;
      exec_sources = &merged_sources;
      metrics().GetCounter("server.merged_queries").Increment(batch.size());
    }

    core::ExecutorOptions options = batch.front()->request.options;
    if (options.metrics == nullptr) options.metrics = &metrics();
    if (options.arena == nullptr) options.arena = arena;
    if (options.fault_injector == nullptr) {
      options.fault_injector = options_.fault_injector;
    }
    if (options.calibration == nullptr) {
      options.calibration = options_.calibration;
    }
    if (!options.integrity.Enabled()) {
      // A request that configured nothing inherits the scheduler's
      // fleet-wide verification policy (per-query settings always win).
      options.integrity = options_.integrity;
    }
    // Cached plans are versioned by the calibration epoch of every calibrator
    // this run could consult (scheduler-level + per-device). A plan cached
    // before the cost model drifted simply misses — it is re-planned against
    // the current corrections, never reused stale.
    std::uint64_t plan_version = 0;
    if (options.calibration != nullptr) {
      plan_version += options.calibration->epoch();
    }
    for (core::CostModelCalibrator* calib : options_.device_calibrations) {
      if (calib != nullptr && calib != options.calibration) {
        plan_version += calib->epoch();
      }
    }
    bool cache_hit = false;
    const core::FusionPlan plan = plan_cache_.GetOrPlan(
        *exec_graph, core::EffectiveFusionOptions(options), &cache_hit,
        plan_version);
    options.plan = &plan;

    const bool group_mode = group_executor_ != nullptr;

    // Circuit breaker (single-device mode): while open, batches run
    // host-side except for the periodic probe that tests whether the device
    // recovered. Group mode does per-device breakers inside the placement
    // step below instead.
    bool probing = false;
    if (!group_mode) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (breaker_open_) {
        ++breaker_batches_;
        if (options_.breaker_probe_interval > 0 &&
            breaker_batches_ % options_.breaker_probe_interval == 0) {
          probing = true;
        } else {
          options.force_host = true;
        }
      }
    }
    if (options.force_host && !batch.front()->request.options.force_host) {
      metrics().GetCounter("resilience.breaker_rerouted").Increment();
    }
    if (probing) metrics().GetCounter("resilience.breaker_probes").Increment();

    // Whole-query retry: a device fault thrown before the executor could
    // recover internally (e.g. an injected reservation failure) re-runs the
    // batch up to query_retry_limit times. In group mode placement runs
    // inside the loop, so a retried batch can land on a different (healthy)
    // device than the one that faulted.
    core::ExecutionReport report;
    core::MultiDeviceReport group_report;
    std::vector<int> placement;
    bool host_route = false;
    std::size_t device_retries = 0;
    for (;;) {
      attempt_start = pickup_sim;
      if (sched_trace) {
        leader.trace.attempt = static_cast<int>(device_retries);
        attempt_span = tracer->BeginSpan(leader.trace, leader.root_span,
                                         "execute attempt", "worker",
                                         attempt_start);
        tracer->Annotate(leader.trace, attempt_span,
                         cache_hit ? obs::SpanAnnotationKind::kCacheHit
                                   : obs::SpanAnnotationKind::kCacheMiss,
                         cache_hit ? "fusion plan cache hit"
                                   : "fusion plan cache miss",
                         attempt_start);
        if (merged) {
          tracer->Annotate(leader.trace, attempt_span,
                           obs::SpanAnnotationKind::kBatchMerge,
                           "leads merged batch of " +
                               std::to_string(batch.size()) + " queries",
                           attempt_start);
        }
      }
      try {
        if (!group_mode) {
          if (sched_trace) {
            options.tracer = tracer;
            options.trace = leader.trace;
            options.trace.sim_offset = attempt_start;
            options.trace_parent = attempt_span;
          }
          report = executor_.Execute(*exec_graph, *exec_sources, options);
          break;
        }

        // Placement: healthy devices (breaker closed, not quarantined) plus
        // any unhealthy device whose probe is due; least-loaded device for
        // whole queries, every available device for sharding opt-ins. No
        // device available routes the batch host-side (accounted on the
        // least-loaded device).
        placement.clear();
        host_route = false;
        std::vector<int> probes;
        std::vector<int> quarantine_probes;
        // Predicted batch start on the group's virtual clocks: no earlier
        // than any member's submit nor any placed device's busy-until time.
        // Exact with one worker; an estimate when workers race.
        double group_start = 0.0;
        for (const JobPtr& job : batch) {
          group_start = std::max(group_start, job->sim_submit);
        }
        {
          std::lock_guard<std::mutex> lock(mutex_);
          std::vector<int> available;
          int least_loaded_any = 0;
          for (int d = 0; d < static_cast<int>(device_states_.size()); ++d) {
            DeviceState& state = device_states_[static_cast<std::size_t>(d)];
            if (state.clock <
                device_states_[static_cast<std::size_t>(least_loaded_any)].clock) {
              least_loaded_any = d;
            }
            bool usable = true;
            if (state.breaker_open) {
              usable = false;
              ++state.breaker_batches;
              if (options_.breaker_probe_interval > 0 &&
                  state.breaker_batches % options_.breaker_probe_interval == 0) {
                usable = true;  // probe: one batch tries the device
                probes.push_back(d);
              }
            }
            if (state.quarantined) {
              // A persistent corrupter drains to its siblings; every
              // `quarantine_probe_interval`-th batch sends it one probe whose
              // verified result decides re-admission.
              bool probe_due = false;
              ++state.quarantine_batches;
              if (options_.quarantine_probe_interval > 0 &&
                  state.quarantine_batches %
                          options_.quarantine_probe_interval == 0) {
                probe_due = true;
                quarantine_probes.push_back(d);
              }
              usable = usable && probe_due;
            }
            if (usable) available.push_back(d);
          }
          if (available.empty()) {
            host_route = true;
            placement.push_back(least_loaded_any);
          } else if (batch.front()->request.allow_sharding &&
                     available.size() > 1 &&
                     core::MultiDeviceExecutor::Shardable(*exec_graph)) {
            placement = available;
          } else {
            int best = available.front();
            for (int d : available) {
              if (device_states_[static_cast<std::size_t>(d)].clock <
                  device_states_[static_cast<std::size_t>(best)].clock) {
                best = d;
              }
            }
            placement.push_back(best);
          }
          for (int d : placement) {
            group_start = std::max(
                group_start, device_states_[static_cast<std::size_t>(d)].clock);
          }
        }
        for (int d : probes) {
          metrics()
              .GetCounter(
                  "server.device.breaker_probes",
                  {{"device", options_.device_group->device(d).instance_label()}})
              .Increment();
        }
        for (int d : quarantine_probes) {
          metrics()
              .GetCounter(
                  "server.device.quarantine_probes",
                  {{"device", options_.device_group->device(d).instance_label()}})
              .Increment();
        }
        if (host_route) {
          metrics().GetCounter("resilience.breaker_rerouted").Increment();
        }

        if (sched_trace) {
          attempt_start = group_start;
          std::ostringstream os;
          os << (host_route ? "host route, accounted on device"
                            : "placed on device");
          for (int d : placement) os << ' ' << d;
          tracer->Annotate(leader.trace, attempt_span,
                           obs::SpanAnnotationKind::kPlacement, os.str(),
                           group_start);
          options.tracer = tracer;
          options.trace = leader.trace;
          options.trace.sim_offset = group_start;
          options.trace_parent = attempt_span;
        }

        core::MultiDeviceOptions group_options;
        group_options.base = options;
        group_options.base.force_host = options.force_host || host_route;
        group_options.split = options_.shard_split;
        group_options.per_device_injectors = options_.device_injectors;
        group_options.per_device_calibrations = options_.device_calibrations;
        group_options.devices = placement;
        group_report =
            group_executor_->Execute(*exec_graph, *exec_sources, group_options);
        report = group_report.combined;
        break;
      } catch (const ::kf::Error& e) {
        if (e.code() != ::kf::ErrorCode::kDeviceFault) throw;
        if (sched_trace && attempt_span != 0) {
          tracer->Annotate(leader.trace, attempt_span,
                           obs::SpanAnnotationKind::kFault, e.what(),
                           attempt_start);
          tracer->EndSpan(leader.trace, attempt_span, attempt_start);
          attempt_span = 0;
        }
        bool opened = false;
        if (!group_mode) {
          opened = RecordDeviceFault();
        } else {
          for (int d : placement) opened = RecordDeviceFault(d) || opened;
        }
        if (sched_trace && opened) {
          tracer->Annotate(leader.trace, leader.root_span,
                           obs::SpanAnnotationKind::kBreakerOpen,
                           "circuit breaker opened", attempt_start);
        }
        if (device_retries >= options_.query_retry_limit) throw;
        ++device_retries;
        metrics().GetCounter("resilience.query_retries").Increment();
        if (sched_trace) {
          tracer->Annotate(
              leader.trace, leader.root_span,
              obs::SpanAnnotationKind::kReExecution,
              "whole-query retry " + std::to_string(device_retries) +
                  " after device fault",
              attempt_start);
        }
      }
    }
    // Trace annotations for breaker/quarantine transitions triggered by this
    // batch land on the leading query's root span.
    auto annotate_root = [&](obs::SpanAnnotationKind kind,
                             const std::string& detail) {
      if (sched_trace) {
        tracer->Annotate(leader.trace, leader.root_span, kind, detail,
                         attempt_start);
      }
    };
    if (!group_mode) {
      if (!options.force_host) {
        // A degraded run means the device kept failing (the executor gave up
        // and reran clusters on the host) — that feeds the breaker; a clean
        // or internally-recovered run closes it.
        if (report.degraded) {
          if (RecordDeviceFault()) {
            annotate_root(obs::SpanAnnotationKind::kBreakerOpen,
                          "circuit breaker opened");
          }
        } else if (RecordDeviceSuccess()) {
          annotate_root(obs::SpanAnnotationKind::kBreakerClose,
                        "circuit breaker closed");
        }
      }
    } else if (!host_route && !options.force_host &&
               !group_report.host_fallback) {
      // Per-shard breaker feed: only the device whose shard degraded takes
      // the fault; its siblings' clean shards close their breakers. The same
      // shard reports feed the corruption scores: a shard whose verification
      // caught wrong bytes marks its device as a corrupter, a clean shard
      // decays the score (and re-admits a quarantined device it probed).
      for (const core::ShardReport& shard : group_report.shards) {
        if (shard.report.ran_on_host) continue;
        const std::string dev = std::to_string(shard.device);
        if (shard.report.degraded) {
          if (RecordDeviceFault(shard.device)) {
            annotate_root(obs::SpanAnnotationKind::kBreakerOpen,
                          "circuit breaker opened on device " + dev);
          }
        } else if (RecordDeviceSuccess(shard.device)) {
          annotate_root(obs::SpanAnnotationKind::kBreakerClose,
                        "circuit breaker closed on device " + dev);
        }
        if (shard.report.corruption_detected > 0) {
          if (RecordDeviceCorruption(shard.device,
                                     shard.report.corruption_detected)) {
            annotate_root(obs::SpanAnnotationKind::kQuarantine,
                          "device " + dev + " quarantined for corruption");
          }
        } else if (RecordDeviceClean(shard.device)) {
          annotate_root(obs::SpanAnnotationKind::kUnquarantine,
                        "device " + dev + " re-admitted from quarantine");
        }
      }
    }

    double complete = 0.0;
    if (!group_mode) {
      std::lock_guard<std::mutex> lock(mutex_);
      sim_clock_ += report.makespan;
      complete = sim_clock_;
    } else {
      // The batch starts when every involved device is free and no earlier
      // than its latest member's submit time; all involved device clocks
      // advance to the shared completion time.
      std::lock_guard<std::mutex> lock(mutex_);
      double start = 0.0;
      for (const JobPtr& job : batch) start = std::max(start, job->sim_submit);
      for (int d : placement) {
        start = std::max(start, device_states_[static_cast<std::size_t>(d)].clock);
      }
      complete = start + report.makespan;
      for (int d : placement) {
        device_states_[static_cast<std::size_t>(d)].clock = complete;
      }
      sim_clock_ = std::max(sim_clock_, complete);
    }
    if (group_mode) {
      for (int d : placement) {
        const std::string& label =
            options_.device_group->device(d).instance_label();
        metrics().GetCounter("server.device.batches", {{"device", label}})
            .Increment();
        metrics().GetGauge("server.device.sim_seconds", {{"device", label}})
            .Set(complete);
      }
      if (group_report.sharded) {
        metrics().GetCounter("server.device.sharded_batches").Increment();
      }
    }
    metrics().GetCounter("server.batches").Increment();
    metrics().GetHistogram("server.batch_size")
        .Record(static_cast<double>(batch.size()));
    metrics().GetHistogram("server.batch_makespan_seconds").Record(report.makespan);

    // Now that the batch's position on the virtual clock is known, pin the
    // attempt span to the executed interval (the executor's subtree was
    // recorded against `sim_offset`, i.e. the predicted start).
    if (sched_trace && attempt_span != 0) {
      tracer->SetSpanInterval(leader.trace, attempt_span,
                              complete - report.makespan, complete);
      attempt_span = 0;
    }

    core::ExecutionReport shared = report;
    shared.sink_results.clear();
    for (std::size_t j = 0; j < batch.size(); ++j) {
      JobPtr& job = batch[j];
      QueryResult result;
      result.report = shared;
      result.batch_size = batch.size();
      result.merged = merged;
      result.plan_cache_hit = cache_hit;
      result.degraded = report.degraded;
      result.ran_on_host = report.ran_on_host;
      result.device_retries = device_retries;
      if (group_mode) {
        result.device = !group_report.shards.empty()
                            ? group_report.shards.front().device
                            : (placement.empty() ? 0 : placement.front());
        result.devices_used = group_report.devices_used;
        result.sharded = group_report.sharded;
      }
      result.sim_submit = job->sim_submit;
      result.sim_complete = complete;
      result.queue_wait_seconds = job->queue_wait;
      for (NodeId sink : job->request.graph.Sinks()) {
        const NodeId mapped = merged ? mappings[j].at(sink) : sink;
        auto it = report.sink_results.find(mapped);
        if (it != report.sink_results.end()) {
          result.results.emplace(sink, it->second);
        } else if (job->request.graph.node(sink).is_source) {
          // A bare source "query" — in a merged graph another query's
          // operators may consume it, so it is no longer a merged sink.
          result.results.emplace(sink, job->request.sources.at(sink));
        }
      }
      result.wall_latency_seconds = SecondsSince(job->wall_submit);
      result.trace_query_id = job->trace.query_id;
      metrics().GetHistogram("server.query_latency_seconds")
          .Record(result.wall_latency_seconds);
      metrics().GetHistogram("server.sim_latency_seconds")
          .Record(result.sim_latency());
      metrics().GetCounter("server.completed").Increment();
      if (tracer != nullptr && job->root_span != 0) {
        if (merged && j > 0) {
          tracer->Annotate(
              job->trace, job->root_span, obs::SpanAnnotationKind::kBatchMerge,
              "co-executed in batch of " + std::to_string(batch.size()) +
                  " led by query " + std::to_string(leader.trace.query_id),
              complete);
        }
        tracer->EndSpan(job->trace, job->root_span, complete);
        tracer->FinishQuery(job->trace, false, "");
        job->root_span = 0;
      }
      job->promise.set_value(std::move(result));
    }
  } catch (...) {
    if (sched_trace && attempt_span != 0) {
      tracer->EndSpan(leader.trace, attempt_span, attempt_start);
      attempt_span = 0;
    }
    if (!merged) {
      // Label the failure with its stable error code so dashboards can tell
      // device faults from timeouts from caller mistakes.
      const char* code = "unknown";
      try {
        throw;
      } catch (const ::kf::Error& e) {
        code = ::kf::ToString(e.code());
      } catch (...) {
      }
      metrics().GetCounter("server.failed", {{"code", code}}).Increment();
      if (tracer != nullptr && leader.root_span != 0) {
        leader.trace.sim_offset = 0.0;
        tracer->Annotate(leader.trace, leader.root_span,
                         obs::SpanAnnotationKind::kFailure, code, pickup_sim);
        tracer->EndSpan(leader.trace, leader.root_span, pickup_sim);
        // A failed query's full span tree is dumped by the flight recorder
        // (when KF_TRACE_DIR / TracerOptions::trace_dir is configured).
        tracer->FinishQuery(leader.trace, true, code);
        leader.root_span = 0;
      }
      batch.front()->promise.set_exception(std::current_exception());
      return;
    }
    // A merged execution failed (e.g. one query's sources were unbound):
    // fall back to solo runs so one bad query cannot poison the batch.
    metrics().GetCounter("server.merge_fallbacks").Increment();
    for (JobPtr& job : batch) {
      if (tracer != nullptr && job->root_span != 0) {
        tracer->Annotate(job->trace, job->root_span,
                         obs::SpanAnnotationKind::kSoloRetry,
                         "merged batch failed; re-running solo", pickup_sim);
      }
      std::vector<JobPtr> solo;
      solo.push_back(std::move(job));
      ExecuteBatch(std::move(solo), arena);
    }
  }
}

}  // namespace kf::server
