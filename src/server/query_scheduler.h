// Concurrent multi-query serving on top of QueryExecutor.
//
// The paper's stated ongoing work is sharing data paths *across* queries;
// `graph_merge` implements the graph splice, and this layer makes it a
// serving system: clients submit operator graphs asynchronously and get a
// future; a bounded admission queue applies backpressure; worker threads
// batch compatible in-flight queries through `MergeGraphs` so one scan of a
// shared relation feeds every query in the batch (cross-query kernel
// fusion); a `FusionPlanCache` keyed by canonical graph shape lets repeated
// query templates skip the fusion planner entirely; and an admission
// controller arbitrates the simulated device's 6 GB memory across
// concurrent batches.
//
// Device-time accounting: the simulated device is one shared resource, so
// the scheduler keeps a virtual device clock — each executed batch advances
// it by the batch's simulated makespan, and every query records its
// simulated submit/complete times against that clock. Batching helps
// because a merged batch's makespan is far less than the sum of its members'
// solo makespans (shared scans amortize PCIe transfers); wall-clock
// concurrency additionally overlaps the host-side functional execution.
//
// Determinism: with `worker_count = 1` and paused start (submit everything,
// then Start()), batching, plan-cache hits, and all simulated times are
// fully deterministic — that is how bench_server_throughput produces its
// CI-gated numbers. With multiple workers, batching depends on arrival
// interleaving; results stay correct, only the grouping varies.
#ifndef KF_SERVER_QUERY_SCHEDULER_H_
#define KF_SERVER_QUERY_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/multi_device.h"
#include "core/query_executor.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "server/plan_cache.h"
#include "sim/device_group.h"
#include "sim/device_simulator.h"

namespace kf::server {

// One query submission: a graph, its bound source tables, and executor
// options. `merge_class` opts the query into cross-query batching: queries
// with the same non-empty class and identical executor options may be merged
// into one execution, and the caller guarantees that same-named sources
// across the class are bound to identical tables (the scheduler verifies
// schemas and row counts, not contents). An empty class never merges.
struct QueryRequest {
  core::OpGraph graph;
  std::map<core::NodeId, relational::Table> sources;
  core::ExecutorOptions options;
  std::string merge_class;

  // Group mode only: allow this query to be sharded across every healthy
  // device of the group (when its graph is shardable — see
  // core::MultiDeviceExecutor::Shardable). Off, the query runs whole on the
  // least-loaded device. Part of batch compatibility.
  bool allow_sharding = false;
};

// What a client's future resolves to.
struct QueryResult {
  // This query's sink outputs, keyed by ITS OWN graph's node ids (results of
  // merged batches are split and remapped back before delivery).
  std::map<core::NodeId, relational::Table> results;

  // The executing run's report (shared by every query of a merged batch;
  // sink_results are stripped — use `results`).
  core::ExecutionReport report;

  std::size_t batch_size = 1;   // queries co-executed in the same run
  bool merged = false;          // batch_size > 1
  bool plan_cache_hit = false;  // the run skipped PlanFusion

  // Fault-recovery outcomes (see docs/resilience.md). Results are
  // byte-identical in every case; these report how the run got there.
  bool degraded = false;          // a cluster reran on the host engine
  bool ran_on_host = false;       // circuit breaker routed the run host-side
  std::size_t device_retries = 0; // whole-query re-runs after kf::DeviceFault

  // Where the run landed (group mode; single-device schedulers report
  // device 0). For sharded runs `device` is the first shard's device.
  int device = 0;
  int devices_used = 1;
  bool sharded = false;

  // Virtual-device-clock times (seconds of simulated device time).
  double sim_submit = 0.0;
  double sim_complete = 0.0;
  double sim_latency() const { return sim_complete - sim_submit; }

  // Host wall-clock observability.
  double queue_wait_seconds = 0.0;  // submit -> batch pickup
  double wall_latency_seconds = 0.0;  // submit -> future fulfilled

  // Tracer query id assigned at submission (0 when no tracer is configured).
  // Look the query's span tree up via Tracer::FlightRecorder()/Snapshot().
  std::uint64_t trace_query_id = 0;
};

struct SchedulerOptions {
  // Worker threads picking and executing batches. One worker serializes
  // batch execution (deterministic); more overlap host-side work.
  std::size_t worker_count = 2;

  // Bounded admission queue: Submit blocks (backpressure) and TrySubmit
  // rejects when `max_queue_depth` queries are waiting.
  std::size_t max_queue_depth = 64;

  // Maximum queries merged into one execution.
  std::size_t max_batch = 8;

  std::size_t plan_cache_capacity = 128;

  // When true, workers do not pick up work until Start() — lets callers
  // enqueue a whole workload first for deterministic batching.
  bool start_paused = false;

  // Fraction of device memory the admission controller hands out to
  // concurrently executing batches (estimated by source + sink footprint).
  // A batch larger than the whole allowance still runs — alone.
  double admission_memory_fraction = 1.0;

  // Registry for scheduler metrics (`server.*`); nullptr = process default.
  obs::MetricsRegistry* metrics = nullptr;

  // End-to-end tracer. When set, every submitted query gets a span tree
  // (root + queue-wait at Submit, one execution-attempt span per whole-query
  // retry, the executor's plan/cluster/segment/command subtree underneath,
  // and breaker/quarantine/cache/batch annotations), finished into the
  // tracer's flight recorder when the future is fulfilled. Requests that
  // attach their own `ExecutorOptions::tracer` keep it — the scheduler only
  // wires the executor when the request left tracing unset. The tracer must
  // outlive the scheduler.
  obs::Tracer* tracer = nullptr;

  // Thread pool for intra-query functional execution (fused pipelines);
  // nullptr = none (single-threaded cluster execution).
  ThreadPool* execution_pool = nullptr;

  core::OperatorCostModel cost_model;

  // Fault injector applied to every execution whose request did not attach
  // its own (per-query `ExecutorOptions::fault_injector` wins). nullptr
  // disables scheduler-level fault handling.
  const sim::FaultInjector* fault_injector = nullptr;

  // Whole-query re-runs after a batch fails with kf::DeviceFault (e.g. an
  // injected reservation fault) before the error reaches the futures.
  std::size_t query_retry_limit = 2;

  // Circuit breaker: after `breaker_threshold` consecutive device faults the
  // breaker opens and new batches run host-side (force_host); every
  // `breaker_probe_interval`-th batch while open probes the device, and a
  // successful probe closes the breaker. A threshold of 0 disables it.
  std::size_t breaker_threshold = 4;
  std::size_t breaker_probe_interval = 4;

  // Integrity verification applied to every execution whose request left
  // integrity fully off (per-query `ExecutorOptions::integrity` wins).
  core::IntegrityOptions integrity;

  // Device quarantine (group mode): every batch with detected corruption on
  // a device adds 1 to that device's corruption score, every clean batch
  // halves it; at `quarantine_threshold` the device is quarantined — new
  // batches drain to its siblings (or host when none are left) — and every
  // `quarantine_probe_interval`-th batch while quarantined probes it, a
  // clean probe re-admitting it. 0 disables quarantine. Mirrors the circuit
  // breaker, but keyed on *corruption* (wrong bytes) instead of loud faults.
  std::size_t quarantine_threshold = 3;
  std::size_t quarantine_probe_interval = 4;

  // Shutdown(): fail still-queued queries with kf::Cancelled instead of
  // draining them (in-flight batches always complete).
  bool cancel_pending_on_shutdown = false;

  // --- Group mode (multi-device serving). --------------------------------
  // When set, batches are placed on the group's least-loaded healthy device
  // (per-device virtual clocks), queries opting in via `allow_sharding` are
  // sharded across every healthy device, and each device gets its own
  // circuit breaker / fault domain (`breaker_threshold` and
  // `breaker_probe_interval` apply per device). The constructor-passed
  // DeviceSimulator is ignored for execution; prefer the DeviceGroup
  // constructor. The group must outlive the scheduler.
  const sim::DeviceGroup* device_group = nullptr;

  // Per-device fault injectors, indexed by group device index (nullptr
  // entries fall back to `fault_injector`). Group mode only.
  std::vector<const sim::FaultInjector*> device_injectors;

  // How sharded queries split rows across devices. Group mode only.
  core::ShardSplit shard_split = core::ShardSplit::kStatic;

  // --- Adaptive calibration (core/calibration.h). ------------------------
  // Scheduler-level calibrator applied to every execution whose request did
  // not attach its own (per-query `ExecutorOptions::calibration` wins).
  // Plan-cache entries are keyed by the calibration epoch of every
  // configured calibrator, so a plan cached before the model drifted is
  // invalidated — re-planned, never reused stale. The calibrator must
  // outlive the scheduler; nullptr keeps serving fully static.
  core::CostModelCalibrator* calibration = nullptr;

  // Group mode: per-device calibrators, indexed by group device index
  // (nullptr entries fall back to `calibration`). Each device learns its own
  // corrections — a degraded device's placement shifts without polluting its
  // healthy siblings' models.
  std::vector<core::CostModelCalibrator*> device_calibrations;
};

class QueryScheduler {
 public:
  explicit QueryScheduler(const sim::DeviceSimulator& device,
                          SchedulerOptions options = SchedulerOptions());

  // Group-mode convenience: serve across `group` (equivalent to passing
  // `group.device(0)` with `options.device_group = &group`).
  explicit QueryScheduler(const sim::DeviceGroup& group,
                          SchedulerOptions options = SchedulerOptions());

  // Drains outstanding work and joins the workers; queued queries still
  // complete. Futures never dangle.
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  // Enqueues a query. Blocks while the queue is full (backpressure); throws
  // kf::Cancelled after Shutdown().
  std::future<QueryResult> Submit(QueryRequest request);

  // Non-blocking admission: returns nullopt (and counts a rejection) when
  // the queue is full.
  std::optional<std::future<QueryResult>> TrySubmit(QueryRequest request);

  // Releases paused workers (no-op when not started paused).
  void Start();

  // Blocks until the queue is empty and no batch is executing.
  void Drain();

  // Stops accepting new queries, drains, and joins workers (idempotent;
  // also run by the destructor).
  void Shutdown();

  // Simulated device time consumed so far (sum of executed batch makespans).
  double sim_clock() const;

  std::size_t queue_depth() const;
  const FusionPlanCache& plan_cache() const { return plan_cache_; }

  // Circuit-breaker state (true: new batches are routed host-side).
  bool breaker_open() const;

  // Per-device breaker state (group mode; false for single-device use).
  bool breaker_open(int device) const;

  // Per-device quarantine state (group mode; false for single-device use).
  bool quarantined(int device) const;

  // Per-device corruption score (group mode; 0 for single-device use).
  std::size_t corruption_score(int device) const;

 private:
  struct Job {
    QueryRequest request;
    std::promise<QueryResult> promise;
    double sim_submit = 0.0;
    double queue_wait = 0.0;
    std::chrono::steady_clock::time_point wall_submit;
    // Tracing state (only used when SchedulerOptions::tracer is set).
    obs::TraceContext trace;
    obs::SpanId root_span = 0;   // "query" span, open submit -> fulfilled
    obs::SpanId queue_span = 0;  // "queue wait" span, open submit -> pickup
  };
  using JobPtr = std::unique_ptr<Job>;

  void WorkerLoop();
  // Assigns a tracer query id and opens the root + queue-wait spans for a
  // freshly admitted job (no-op when no tracer is configured).
  void BeginJobTrace(Job& job);
  // True when `candidate` can join a batch led by `leader`.
  static bool Compatible(const QueryRequest& leader, const QueryRequest& candidate);
  // Executes `batch` as one (possibly merged) run and fulfills its promises.
  // `arena` is the executing worker's private buffer pool — repeated queries
  // on one worker reuse warm staged-kernel workspaces without locking against
  // other workers.
  void ExecuteBatch(std::vector<JobPtr> batch, kf::BufferArena* arena);
  // Estimated device footprint of a batch (sources + sinks, deduplicated
  // shared sources by name).
  static std::uint64_t EstimateBytes(const std::vector<JobPtr>& batch);

  // Circuit-breaker bookkeeping: every device-facing outcome feeds the
  // consecutive-fault counter (global breaker; legacy single-device mode).
  // Each returns true when the call transitioned the breaker/quarantine
  // state, so the caller can annotate the triggering query's trace.
  bool RecordDeviceFault();
  bool RecordDeviceSuccess();
  // Per-device breakers (group mode).
  bool RecordDeviceFault(int device);
  bool RecordDeviceSuccess(int device);
  // Per-device corruption scores / quarantine (group mode). A batch with
  // detected corruption on `device` feeds Corruption, a clean one Clean.
  bool RecordDeviceCorruption(int device, std::size_t detected);
  bool RecordDeviceClean(int device);

  obs::MetricsRegistry& metrics() const {
    return options_.metrics != nullptr ? *options_.metrics
                                       : obs::MetricsRegistry::Default();
  }

  const sim::DeviceSimulator& device_;
  SchedulerOptions options_;
  core::QueryExecutor executor_;
  // Group mode only (nullptr otherwise).
  std::unique_ptr<core::MultiDeviceExecutor> group_executor_;
  FusionPlanCache plan_cache_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;   // workers wait for jobs/Start
  std::condition_variable space_available_;  // submitters wait for room
  std::condition_variable admission_;        // batches wait for device memory
  std::condition_variable idle_;             // Drain waits here
  std::deque<JobPtr> queue_;
  bool started_ = true;
  bool stopping_ = false;
  std::size_t executing_ = 0;          // batches currently running
  std::uint64_t inflight_bytes_ = 0;   // admission-controller ledger
  double sim_clock_ = 0.0;

  // Circuit breaker (guarded by mutex_).
  std::size_t consecutive_faults_ = 0;
  bool breaker_open_ = false;
  std::size_t breaker_batches_ = 0;  // batches seen while open (probe cadence)

  // Group mode: per-device virtual clock and circuit breaker (guarded by
  // mutex_; sized to the group's device count).
  struct DeviceState {
    double clock = 0.0;                  // simulated busy-until time
    std::size_t consecutive_faults = 0;
    bool breaker_open = false;
    std::size_t breaker_batches = 0;     // batches seen while open
    // Quarantine (corruption) state: score +1 per corrupt batch, halved per
    // clean batch; quarantined at quarantine_threshold.
    std::size_t corruption_score = 0;
    bool quarantined = false;
    std::size_t quarantine_batches = 0;  // batches seen while quarantined
  };
  std::vector<DeviceState> device_states_;

  std::vector<std::thread> workers_;
};

}  // namespace kf::server

#endif  // KF_SERVER_QUERY_SCHEDULER_H_
