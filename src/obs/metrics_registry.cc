#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/random.h"

namespace kf::obs {

std::string FlattenKey(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name + "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) key += ",";
    key += labels[i].first + "=" + labels[i].second;
  }
  key += "}";
  return key;
}

void DurationHistogram::Record(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++count_;
  sum_ += seconds;
  if (count_ == 1) {
    min_ = max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  if (samples_.size() < kReservoirCap) {
    samples_.push_back(seconds);
    return;
  }
  // Vitter's algorithm R with a fixed-seed deterministic stream: sample i
  // replaces a uniformly random reservoir slot with probability cap/i.
  const std::uint64_t slot = SplitMix64(rng_state_) % count_;
  if (slot < kReservoirCap) samples_[static_cast<std::size_t>(slot)] = seconds;
}

std::size_t DurationHistogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double DurationHistogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double DurationHistogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double DurationHistogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

double DurationHistogram::Percentile(double p) const {
  KF_REQUIRE(p >= 0.0 && p <= 100.0) << "percentile " << p << " out of [0, 100]";
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sorted = samples_;
  }
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::vector<double> DurationHistogram::Samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

MetricsRegistry::MetricsRegistry(MetricsRegistry&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mutex_);
  counters_ = std::move(other.counters_);
  gauges_ = std::move(other.gauges_);
  histograms_ = std::move(other.histograms_);
}

MetricsRegistry& MetricsRegistry::operator=(MetricsRegistry&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mutex_, other.mutex_);
    counters_ = std::move(other.counters_);
    gauges_ = std::move(other.gauges_);
    histograms_ = std::move(other.histograms_);
  }
  return *this;
}

Counter& MetricsRegistry::GetCounter(const std::string& name, const Labels& labels) {
  const std::string key = FlattenKey(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[key];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, const Labels& labels) {
  const std::string key = FlattenKey(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[key];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

DurationHistogram& MetricsRegistry::GetHistogram(const std::string& name,
                                                 const Labels& labels) {
  const std::string key = FlattenKey(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[key];
  if (!slot) slot = std::make_unique<DurationHistogram>();
  return *slot;
}

std::uint64_t MetricsRegistry::CounterValue(const std::string& key,
                                            std::uint64_t fallback) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(key);
  return it == counters_.end() ? fallback : it->second->value();
}

double MetricsRegistry::GaugeValue(const std::string& key, double fallback) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(key);
  return it == gauges_.end() ? fallback : it->second->value();
}

const DurationHistogram* MetricsRegistry::FindHistogram(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(key);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Json MetricsRegistry::ToJson() const {
  Json::Object counters;
  Json::Object gauges;
  Json::Object histograms;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, counter] : counters_) {
      counters[key] = Json(counter->value());
    }
    for (const auto& [key, gauge] : gauges_) {
      gauges[key] = Json(gauge->value());
    }
    for (const auto& [key, histogram] : histograms_) {
      Json::Object h;
      h["count"] = Json(histogram->count());
      h["sum"] = Json(histogram->sum());
      h["min"] = Json(histogram->min());
      h["max"] = Json(histogram->max());
      h["p50"] = Json(histogram->Percentile(50));
      h["p90"] = Json(histogram->Percentile(90));
      h["p99"] = Json(histogram->Percentile(99));
      Json samples = Json::MakeArray();
      for (double s : histogram->Samples()) samples.push_back(Json(s));
      h["samples"] = std::move(samples);
      histograms[key] = Json(std::move(h));
    }
  }
  Json::Object root;
  root["counters"] = Json(std::move(counters));
  root["gauges"] = Json(std::move(gauges));
  root["histograms"] = Json(std::move(histograms));
  return Json(std::move(root));
}

MetricsRegistry MetricsRegistry::FromJson(const Json& json) {
  MetricsRegistry registry;
  KF_REQUIRE(json.is_object()) << "metrics document must be a JSON object";
  if (const Json* counters = json.Find("counters")) {
    for (const auto& [key, value] : counters->object()) {
      registry.GetCounter(key).Set(static_cast<std::uint64_t>(value.number()));
    }
  }
  if (const Json* gauges = json.Find("gauges")) {
    for (const auto& [key, value] : gauges->object()) {
      registry.GetGauge(key).Set(value.number());
    }
  }
  if (const Json* histograms = json.Find("histograms")) {
    for (const auto& [key, value] : histograms->object()) {
      DurationHistogram& histogram = registry.GetHistogram(key);
      for (const Json& sample : value.at("samples").array()) {
        histogram.Record(sample.number());
      }
    }
  }
  return registry;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace kf::obs
