#include "obs/hostperf_export.h"

#include "common/buffer_arena.h"

namespace kf::obs {

void RecordHostPerfMetrics(MetricsRegistry& registry) {
  const auto& counters = kf::HostPerfCounters::Global();
  const std::uint64_t hits = counters.pool_hits.load(std::memory_order_relaxed);
  const std::uint64_t misses =
      counters.pool_misses.load(std::memory_order_relaxed);
  registry.GetGauge("hostperf.pool_hits").Set(hits);
  registry.GetGauge("hostperf.pool_misses").Set(misses);
  const std::uint64_t total = hits + misses;
  registry.GetGauge("hostperf.pool_hit_rate_ppm")
      .Set(total == 0 ? 0 : hits * 1'000'000 / total);
  registry.GetGauge("hostperf.arena_reused_bytes")
      .Set(counters.arena_reused_bytes.load(std::memory_order_relaxed));
  registry.GetGauge("hostperf.typed_predicates")
      .Set(counters.typed_predicates.load(std::memory_order_relaxed));
  registry.GetGauge("hostperf.fallback_predicates")
      .Set(counters.fallback_predicates.load(std::memory_order_relaxed));
}

}  // namespace kf::obs
