// Prometheus text-format exposition for the metrics registry.
//
// The registry's native serialization is the bespoke kf-bench JSON document;
// this header renders the same metrics in the Prometheus exposition format
// (text/plain; version 0.0.4) so a scrape endpoint or a push job can consume
// them without the JSON path. Flattened keys (`name{k=v,...}`) are parsed
// back into name + labels; metric and label names are sanitized to the
// Prometheus charset ([a-zA-Z0-9_:], leading digit escaped), label values
// are escaped per the spec. Histograms are exported as summaries (quantile
// series plus _sum and _count).
#ifndef KF_OBS_PROMETHEUS_H_
#define KF_OBS_PROMETHEUS_H_

#include <map>
#include <string>

#include "obs/metrics_registry.h"

namespace kf::obs {

// Sanitizes a metric or label name to the Prometheus charset: every invalid
// character becomes '_', and a leading digit gains a '_' prefix.
std::string SanitizeMetricName(const std::string& name);

// Renders every counter, gauge, and histogram in the registry. Output is
// deterministic (series sorted by name, then label set) so tests and diffs
// are stable.
std::string ToPrometheusText(const MetricsRegistry& registry);

// Minimal parser for the exposition format emitted above: returns a map of
// `name{labels}` -> value covering every sample line (comments skipped).
// Used by the round-trip tests and by tooling that wants to assert on a
// scrape without a real Prometheus. Throws kf::Error on malformed lines.
std::map<std::string, double> ParsePrometheusText(const std::string& text);

}  // namespace kf::obs

#endif  // KF_OBS_PROMETHEUS_H_
