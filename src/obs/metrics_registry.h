// The metrics registry: one structured place every layer records into.
//
// The paper's argument is quantitative (Figs 4-18 are throughput and
// breakdown curves), so the library instruments itself: the executor, the
// fusion planner, the stream pool, and the device simulator all record
// counters (kernel launches, transfer bytes, spill events), gauges (engine
// busy time of the most recent run), and duration histograms (makespans,
// per-stage timings) here. The benchmark harnesses dump the registry into
// their `BENCH_<name>.json` output, and `tools/bench_compare` gates CI on
// the numbers that matter.
//
// Metrics are identified by a name plus an ordered label list, flattened to
// `name{key=value,...}`. All mutation paths are thread-safe: counters are
// lock-free atomics, gauges and histograms take a per-metric mutex, and the
// registry itself guards its maps — functional execution fans out over the
// ThreadPool, and concurrent increments must not lose updates.
#ifndef KF_OBS_METRICS_REGISTRY_H_
#define KF_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace kf::obs {

// Ordered label list; rendered into the flattened key in the given order so
// call sites control grouping (e.g. {"strategy", "fusion"}).
using Labels = std::vector<std::pair<std::string, std::string>>;

// Renders `name{k1=v1,k2=v2}` (or bare `name` when unlabeled).
std::string FlattenKey(const std::string& name, const Labels& labels);

// Monotonic event count. Lock-free; safe to increment from ThreadPool tasks.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Set(std::uint64_t value) { value_.store(value, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-written point-in-time value (e.g. engine busy seconds of the most
// recent run).
class Gauge {
 public:
  void Set(double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    value_ = value;
  }
  void Add(double delta) {
    std::lock_guard<std::mutex> lock(mutex_);
    value_ += delta;
  }
  double value() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return value_;
  }

 private:
  mutable std::mutex mutex_;
  double value_ = 0.0;
};

// Duration distribution. Keeps every sample exactly up to kReservoirCap;
// past that it switches to a deterministic bounded reservoir (algorithm R
// driven by a fixed-seed SplitMix64 stream), so soak-length runs stay at
// O(cap) memory while percentiles remain an unbiased estimate. count/sum/
// min/max are always exact running values regardless of eviction.
class DurationHistogram {
 public:
  // Exact below the cap; reservoir-sampled above it. Large enough that every
  // benchmark/CI-scale stream stays exact (committed baselines unchanged).
  static constexpr std::size_t kReservoirCap = 8192;

  void Record(double seconds);

  std::size_t count() const;  // total recorded, not reservoir size
  double sum() const;
  double min() const;
  double max() const;
  // Linear-interpolated percentile, `p` in [0, 100]. Returns 0 when empty.
  // Exact below kReservoirCap; estimated from the reservoir above it.
  double Percentile(double p) const;
  // The retained samples (all of them below the cap, the reservoir above).
  std::vector<double> Samples() const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;  // fixed: deterministic
};

// Times a scope (wall clock) into a histogram on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(DurationHistogram& histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_.Record(std::chrono::duration<double>(elapsed).count());
  }

 private:
  DurationHistogram& histogram_;
  std::chrono::steady_clock::time_point start_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  // Moves transfer the metric maps; the mutex is freshly constructed.
  MetricsRegistry(MetricsRegistry&& other) noexcept;
  MetricsRegistry& operator=(MetricsRegistry&& other) noexcept;

  // Lookup-or-create. Returned references stay valid for the registry's
  // lifetime (metrics are never removed except by Reset()).
  Counter& GetCounter(const std::string& name, const Labels& labels = {});
  Gauge& GetGauge(const std::string& name, const Labels& labels = {});
  DurationHistogram& GetHistogram(const std::string& name, const Labels& labels = {});

  // Read-only lookup by flattened key; returns fallback / nullptr when the
  // metric was never recorded.
  std::uint64_t CounterValue(const std::string& key, std::uint64_t fallback = 0) const;
  double GaugeValue(const std::string& key, double fallback = 0.0) const;
  const DurationHistogram* FindHistogram(const std::string& key) const;

  // Drops every metric (tests and per-run isolation).
  void Reset();

  // Serializes all metrics:
  //   {"counters": {key: n}, "gauges": {key: x},
  //    "histograms": {key: {"count", "sum", "min", "max",
  //                         "p50", "p90", "p99", "samples": [...]}}}
  Json ToJson() const;

  // Rebuilds a registry from ToJson() output (histograms are restored from
  // their samples). Throws kf::Error on schema violations.
  static MetricsRegistry FromJson(const Json& json);

  // Process-wide registry that instrumented components record into by
  // default. Callers wanting isolation pass their own registry instead.
  static MetricsRegistry& Default();

 private:
  mutable std::mutex mutex_;
  // unique_ptr keeps metric addresses stable across map rehash/inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<DurationHistogram>> histograms_;
};

}  // namespace kf::obs

#endif  // KF_OBS_METRICS_REGISTRY_H_
