#include "obs/tracer.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <utility>

#include "common/error.h"

namespace kf::obs {

namespace {

std::string EnvTraceDir() {
  const char* env = std::getenv("KF_TRACE_DIR");
  return env != nullptr ? std::string(env) : std::string();
}

Json AnnotationToJson(const SpanAnnotation& annotation) {
  Json::Object out;
  out["kind"] = Json(std::string(ToString(annotation.kind)));
  out["detail"] = Json(annotation.detail);
  out["sim_time"] = Json(annotation.sim_time);
  return Json(std::move(out));
}

Json SpanToJson(const Span& span, bool include_wall) {
  Json::Object out;
  out["id"] = Json(static_cast<std::uint64_t>(span.id));
  out["parent"] = Json(static_cast<std::uint64_t>(span.parent));
  out["name"] = Json(span.name);
  out["lane"] = Json(span.lane);
  if (!span.category.empty()) out["category"] = Json(span.category);
  out["device"] = Json(span.device);
  out["shard"] = Json(span.shard);
  out["attempt"] = Json(span.attempt);
  out["sim_start"] = Json(span.sim_start);
  out["sim_end"] = Json(span.sim_end);
  if (include_wall) {
    out["wall_start"] = Json(span.wall_start);
    out["wall_end"] = Json(span.wall_end);
  }
  if (!span.annotations.empty()) {
    Json annotations = Json::MakeArray();
    for (const SpanAnnotation& a : span.annotations) {
      annotations.push_back(AnnotationToJson(a));
    }
    out["annotations"] = std::move(annotations);
  }
  return Json(std::move(out));
}

}  // namespace

const char* ToString(SpanAnnotationKind kind) {
  switch (kind) {
    case SpanAnnotationKind::kFault: return "fault";
    case SpanAnnotationKind::kStall: return "stall";
    case SpanAnnotationKind::kCorruption: return "corruption";
    case SpanAnnotationKind::kCorruptionDetected: return "corruption_detected";
    case SpanAnnotationKind::kReExecution: return "re_execution";
    case SpanAnnotationKind::kCacheHit: return "cache_hit";
    case SpanAnnotationKind::kCacheMiss: return "cache_miss";
    case SpanAnnotationKind::kBreakerOpen: return "breaker_open";
    case SpanAnnotationKind::kBreakerClose: return "breaker_close";
    case SpanAnnotationKind::kQuarantine: return "quarantine";
    case SpanAnnotationKind::kUnquarantine: return "unquarantine";
    case SpanAnnotationKind::kCalibrationEpoch: return "calibration_epoch";
    case SpanAnnotationKind::kDegraded: return "degraded";
    case SpanAnnotationKind::kPlacement: return "placement";
    case SpanAnnotationKind::kBatchMerge: return "batch_merge";
    case SpanAnnotationKind::kSoloRetry: return "solo_retry";
    case SpanAnnotationKind::kFailure: return "failure";
  }
  return "unknown";
}

const Span* QueryTrace::FindSpan(SpanId id) const {
  if (id == 0 || id > spans.size()) return nullptr;
  return &spans[id - 1];
}

Json QueryTrace::ToJson(bool include_wall) const {
  Json::Object out;
  out["query_id"] = Json(query_id);
  out["finished"] = Json(finished);
  out["failed"] = Json(failed);
  out["failure"] = Json(failure);
  Json span_array = Json::MakeArray();
  for (const Span& span : spans) {
    span_array.push_back(SpanToJson(span, include_wall));
  }
  out["spans"] = std::move(span_array);
  return Json(std::move(out));
}

Tracer::Tracer(TracerOptions options)
    : trace_dir_(options.trace_dir.empty() ? EnvTraceDir()
                                           : std::move(options.trace_dir)),
      flight_capacity_(options.flight_capacity),
      origin_(std::chrono::steady_clock::now()),
      stripes_(std::max<std::size_t>(options.stripe_count, 1)) {}

double Tracer::WallNow() const {
  const auto elapsed = std::chrono::steady_clock::now() - origin_;
  return std::chrono::duration<double>(elapsed).count();
}

SpanId Tracer::BeginSpan(const TraceContext& ctx, SpanId parent,
                         std::string name, std::string lane,
                         double sim_start) {
  const double wall = WallNow();
  Stripe& stripe = StripeFor(ctx.query_id);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  QueryTrace& trace = stripe.live[ctx.query_id];
  trace.query_id = ctx.query_id;
  Span span;
  span.id = static_cast<SpanId>(trace.spans.size() + 1);
  span.parent = parent;
  span.name = std::move(name);
  span.lane = std::move(lane);
  span.device = ctx.device;
  span.shard = ctx.shard;
  span.attempt = ctx.attempt;
  span.sim_start = ctx.sim_offset + sim_start;
  span.sim_end = span.sim_start;
  span.wall_start = wall;
  span.wall_end = wall;
  trace.spans.push_back(std::move(span));
  return trace.spans.back().id;
}

void Tracer::EndSpan(const TraceContext& ctx, SpanId id, double sim_end) {
  const double wall = WallNow();
  Stripe& stripe = StripeFor(ctx.query_id);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.live.find(ctx.query_id);
  if (it == stripe.live.end() || id == 0 || id > it->second.spans.size()) return;
  Span& span = it->second.spans[id - 1];
  span.sim_end = ctx.sim_offset + sim_end;
  span.wall_end = wall;
}

void Tracer::SetSpanInterval(const TraceContext& ctx, SpanId id,
                             double sim_start, double sim_end) {
  const double wall = WallNow();
  Stripe& stripe = StripeFor(ctx.query_id);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.live.find(ctx.query_id);
  if (it == stripe.live.end() || id == 0 || id > it->second.spans.size()) return;
  Span& span = it->second.spans[id - 1];
  span.sim_start = ctx.sim_offset + sim_start;
  span.sim_end = ctx.sim_offset + sim_end;
  span.wall_end = wall;
}

SpanId Tracer::AddSpan(const TraceContext& ctx, SpanId parent,
                       std::string name, std::string lane, double sim_start,
                       double sim_end, std::string category) {
  const double wall = WallNow();
  Stripe& stripe = StripeFor(ctx.query_id);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  QueryTrace& trace = stripe.live[ctx.query_id];
  trace.query_id = ctx.query_id;
  Span span;
  span.id = static_cast<SpanId>(trace.spans.size() + 1);
  span.parent = parent;
  span.name = std::move(name);
  span.lane = std::move(lane);
  span.category = std::move(category);
  span.device = ctx.device;
  span.shard = ctx.shard;
  span.attempt = ctx.attempt;
  span.sim_start = ctx.sim_offset + sim_start;
  span.sim_end = ctx.sim_offset + sim_end;
  span.wall_start = wall;
  span.wall_end = wall;
  trace.spans.push_back(std::move(span));
  return trace.spans.back().id;
}

void Tracer::Annotate(const TraceContext& ctx, SpanId id,
                      SpanAnnotationKind kind, std::string detail,
                      double sim_time) {
  Stripe& stripe = StripeFor(ctx.query_id);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.live.find(ctx.query_id);
  if (it == stripe.live.end() || it->second.spans.empty()) return;
  QueryTrace& trace = it->second;
  const SpanId target = id == 0 ? 1 : id;  // id 0 -> the query root span
  if (target > trace.spans.size()) return;
  trace.spans[target - 1].annotations.push_back(
      {kind, std::move(detail), ctx.sim_offset + sim_time});
}

std::string Tracer::FinishQuery(const TraceContext& ctx, bool failed,
                                const std::string& failure) {
  QueryTrace trace;
  {
    Stripe& stripe = StripeFor(ctx.query_id);
    std::lock_guard<std::mutex> lock(stripe.mutex);
    auto it = stripe.live.find(ctx.query_id);
    if (it == stripe.live.end()) return "";
    trace = std::move(it->second);
    stripe.live.erase(it);
  }
  trace.finished = true;
  trace.failed = failed;
  trace.failure = failure;
  finished_count_.fetch_add(1);

  std::string dump_path;
  if (failed && !trace_dir_.empty()) dump_path = WriteDump(trace);

  {
    std::lock_guard<std::mutex> lock(flight_mutex_);
    flight_.push_back(std::move(trace));
    while (flight_.size() > flight_capacity_) {
      flight_.pop_front();
      dropped_count_.fetch_add(1);
    }
  }
  return dump_path;
}

QueryTrace Tracer::Snapshot(std::uint64_t query_id) const {
  {
    Stripe& stripe = StripeFor(query_id);
    std::lock_guard<std::mutex> lock(stripe.mutex);
    auto it = stripe.live.find(query_id);
    if (it != stripe.live.end()) return it->second;
  }
  std::lock_guard<std::mutex> lock(flight_mutex_);
  for (auto it = flight_.rbegin(); it != flight_.rend(); ++it) {
    if (it->query_id == query_id) return *it;
  }
  return QueryTrace{};
}

std::vector<QueryTrace> Tracer::FlightRecorder() const {
  std::lock_guard<std::mutex> lock(flight_mutex_);
  return {flight_.begin(), flight_.end()};
}

std::string Tracer::DumpQuery(std::uint64_t query_id) const {
  if (trace_dir_.empty()) return "";
  const QueryTrace trace = Snapshot(query_id);
  if (trace.empty() && trace.query_id == 0) return "";
  return WriteDump(trace);
}

std::string Tracer::WriteDump(const QueryTrace& trace) const {
  std::error_code ec;
  std::filesystem::create_directories(trace_dir_, ec);
  if (ec) return "";
  const std::filesystem::path path =
      std::filesystem::path(trace_dir_) /
      ("trace_query_" + std::to_string(trace.query_id) + ".json");
  std::ofstream out(path);
  if (!out) return "";
  out << trace.ToJson(/*include_wall=*/true).Dump(2) << "\n";
  return path.string();
}

namespace {

// Stable lane -> tid assignment: lanes sorted by name across the whole
// session, tid starts at 1. Deterministic for seeded runs.
std::map<std::string, int> AssignLaneTids(
    const std::vector<QueryTrace>& traces) {
  std::set<std::string> lanes;
  for (const QueryTrace& trace : traces) {
    for (const Span& span : trace.spans) lanes.insert(span.lane);
  }
  std::map<std::string, int> tids;
  int next = 1;
  for (const std::string& lane : lanes) tids[lane] = next++;
  return tids;
}

Json MetadataEvent(const std::string& name, int pid, int tid,
                   const std::string& value) {
  Json::Object args;
  args["name"] = Json(value);
  Json::Object event;
  event["ph"] = Json("M");
  event["name"] = Json(name);
  event["pid"] = Json(pid);
  event["tid"] = Json(tid);
  event["args"] = Json(std::move(args));
  return Json(std::move(event));
}

}  // namespace

Json ToSessionTraceJson(const Tracer& tracer, bool include_wall) {
  // Gather every finished tree; live queries are intentionally excluded so
  // the export never races in-flight span mutation.
  std::vector<QueryTrace> traces = tracer.FlightRecorder();
  std::sort(traces.begin(), traces.end(),
            [](const QueryTrace& a, const QueryTrace& b) {
              return a.query_id < b.query_id;
            });

  const std::map<std::string, int> lane_tids = AssignLaneTids(traces);
  Json events = Json::MakeArray();

  // Process/thread naming metadata: one process per device, one named
  // thread per lane within each device that uses it.
  std::set<std::pair<int, int>> named_threads;
  for (const QueryTrace& trace : traces) {
    for (const Span& span : trace.spans) {
      const int pid = std::max(span.device, 0);
      const int tid = lane_tids.at(span.lane);
      if (named_threads.insert({pid, tid}).second) {
        events.push_back(MetadataEvent("process_name", pid, 0,
                                       "device " + std::to_string(pid)));
        events.push_back(MetadataEvent("thread_name", pid, tid, span.lane));
      }
    }
  }

  std::uint64_t next_flow_id = 1;
  for (const QueryTrace& trace : traces) {
    for (const Span& span : trace.spans) {
      const int pid = std::max(span.device, 0);
      const int tid = lane_tids.at(span.lane);
      Json::Object args;
      args["query"] = Json(trace.query_id);
      args["span"] = Json(static_cast<std::uint64_t>(span.id));
      args["parent"] = Json(static_cast<std::uint64_t>(span.parent));
      args["attempt"] = Json(span.attempt);
      args["shard"] = Json(span.shard);
      if (!span.category.empty()) args["category"] = Json(span.category);
      if (include_wall) {
        args["wall_ms"] = Json((span.wall_end - span.wall_start) * 1e3);
      }
      if (!span.annotations.empty()) {
        Json notes = Json::MakeArray();
        for (const SpanAnnotation& a : span.annotations) {
          std::string note = ToString(a.kind);
          if (!a.detail.empty()) note += ": " + a.detail;
          notes.push_back(Json(std::move(note)));
        }
        args["annotations"] = std::move(notes);
      }
      Json::Object event;
      event["ph"] = Json("X");
      event["name"] = Json(span.name);
      event["cat"] = Json(span.category.empty() ? std::string("span")
                                                : span.category);
      event["pid"] = Json(pid);
      event["tid"] = Json(tid);
      event["ts"] = Json(span.sim_start * 1e6);
      event["dur"] = Json(std::max(span.sim_end - span.sim_start, 0.0) * 1e6);
      event["args"] = Json(std::move(args));
      events.push_back(Json(std::move(event)));
    }

    // Flow events: link a query's spans across attempts and shards so a
    // retried / sharded query reads as one connected story in Perfetto.
    // A span opens a new leg when its attempt or shard differs from its
    // parent's (or it is a non-root span with no parent).
    const Span* root = trace.FindSpan(1);
    if (root == nullptr) continue;
    for (const Span& span : trace.spans) {
      if (span.id == 1) continue;
      const Span* parent = trace.FindSpan(span.parent);
      const Span& from = parent != nullptr ? *parent : *root;
      const bool new_leg = parent == nullptr ||
                           span.attempt != parent->attempt ||
                           span.shard != parent->shard;
      if (!new_leg) continue;
      const std::uint64_t flow_id = next_flow_id++;
      Json::Object start;
      start["ph"] = Json("s");
      start["name"] = Json("query " + std::to_string(trace.query_id));
      start["cat"] = Json("flow");
      start["id"] = Json(flow_id);
      start["pid"] = Json(std::max(from.device, 0));
      start["tid"] = Json(lane_tids.at(from.lane));
      start["ts"] = Json(from.sim_start * 1e6);
      events.push_back(Json(std::move(start)));
      Json::Object finish;
      finish["ph"] = Json("f");
      finish["bp"] = Json("e");
      finish["name"] = Json("query " + std::to_string(trace.query_id));
      finish["cat"] = Json("flow");
      finish["id"] = Json(flow_id);
      finish["pid"] = Json(std::max(span.device, 0));
      finish["tid"] = Json(lane_tids.at(span.lane));
      finish["ts"] = Json(span.sim_start * 1e6);
      events.push_back(Json(std::move(finish)));
    }
  }

  Json::Object root;
  root["traceEvents"] = std::move(events);
  root["displayTimeUnit"] = Json("ms");
  return Json(std::move(root));
}

std::string ToSessionTrace(const Tracer& tracer) {
  return ToSessionTraceJson(tracer).Dump(-1);
}

}  // namespace kf::obs
