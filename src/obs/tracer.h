// End-to-end query tracing: span trees, a session-wide Perfetto exporter,
// and a failure flight recorder.
//
// The paper's argument is a timing decomposition (Figs 9/10: input-output vs
// round-trip vs compute), and the metrics registry only aggregates those
// numbers. The tracer keeps the per-query picture: every layer of the stack
// (scheduler admission, planning, fusion clusters, fission segments, retries,
// integrity chasers, per-command stream activity) records spans into a tree
// keyed by a propagated TraceContext, carrying both virtual sim-time and
// wall-time plus typed annotations (fault, stall, corruption, re-execution,
// cache hit/miss, breaker/quarantine transitions, calibration epochs).
//
// Two sinks:
//   * ToSessionTrace() renders every recorded query into one Chrome
//     trace-event JSON document (pid = device, tid = lane, flow events
//     linking a query's spans across retries and shards) that loads directly
//     in ui.perfetto.dev — the session-wide generalization of
//     sim::ToChromeTrace's single-timeline view.
//   * A bounded flight recorder retains the last N finished query trees; any
//     query finishing with a typed failure dumps its full tree as JSON into
//     `KF_TRACE_DIR` (or TracerOptions::trace_dir), so fuzz/soak/CI failures
//     ship their own trace.
//
// Thread safety: span storage is lock-striped by query id, so concurrent
// scheduler workers tracing different queries never contend on one mutex.
// All sim-time fields are deterministic for seeded runs; wall-time fields are
// excluded from deterministic serializations (ToJson(include_wall=false)).
#ifndef KF_OBS_TRACER_H_
#define KF_OBS_TRACER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace kf::obs {

// Propagated alongside a query through scheduler -> executor -> stream pool.
// `sim_offset` re-bases run-local virtual times onto the session's device
// clock so concurrent queries land side by side in the session trace.
struct TraceContext {
  std::uint64_t query_id = 0;
  int attempt = 0;    // whole-query attempt (scheduler-level retries)
  int device = 0;     // group device index (0 for standalone devices)
  int shard = -1;     // multi-device shard index; -1 when unsharded
  double sim_offset = 0.0;
};

enum class SpanAnnotationKind {
  kFault,               // injected device fault (copy/kernel/oom)
  kStall,               // stream stall stretched a command
  kCorruption,          // silent corruption happened (ground truth)
  kCorruptionDetected,  // the integrity layer caught corrupted bytes
  kReExecution,         // a retry unit re-ran after fault/corruption
  kCacheHit,            // plan cache hit
  kCacheMiss,           // plan cache miss
  kBreakerOpen,         // circuit breaker opened on this query's device
  kBreakerClose,        // circuit breaker closed again (probe succeeded)
  kQuarantine,          // device quarantined
  kUnquarantine,        // device released from quarantine
  kCalibrationEpoch,    // cost-model calibration epoch observed at plan time
  kDegraded,            // cluster degraded to the host engine
  kPlacement,           // scheduler placed the batch on a device
  kBatchMerge,          // query executed as part of a merged batch
  kSoloRetry,           // merged batch failed; query re-ran solo
  kFailure,             // query finished with a typed error
};
const char* ToString(SpanAnnotationKind kind);

// Span ids are dense per query: spans[i].id == i + 1; 0 means "no parent".
using SpanId = std::uint32_t;

struct SpanAnnotation {
  SpanAnnotationKind kind = SpanAnnotationKind::kFault;
  std::string detail;
  double sim_time = 0.0;
};

struct Span {
  SpanId id = 0;
  SpanId parent = 0;
  std::string name;
  std::string lane;      // session-trace thread grouping ("scheduler",
                         // "executor", "stream 0", "host", ...)
  std::string category;  // executor stage for leaf commands (input_output,
                         // round_trip, compute, host_gather, integrity)
  int device = 0;
  int shard = -1;
  int attempt = 0;
  double sim_start = 0.0;
  double sim_end = 0.0;
  double wall_start = 0.0;  // seconds since tracer construction
  double wall_end = 0.0;
  std::vector<SpanAnnotation> annotations;
};

// One query's full span tree.
struct QueryTrace {
  std::uint64_t query_id = 0;
  bool finished = false;
  bool failed = false;
  std::string failure;  // error code string for failed queries

  std::vector<Span> spans;  // allocation order; spans[i].id == i + 1

  bool empty() const { return spans.empty(); }
  const Span* FindSpan(SpanId id) const;
  // Serializes the tree. `include_wall == false` drops every wall-clock
  // field, leaving only deterministic content (the determinism tests compare
  // these dumps byte-for-byte across identical seeded runs).
  Json ToJson(bool include_wall = true) const;
};

struct TracerOptions {
  std::size_t stripe_count = 16;      // lock stripes for live queries
  std::size_t flight_capacity = 64;   // finished trees retained (ring)
  // Directory for failure dumps. Empty falls back to $KF_TRACE_DIR; if that
  // is also unset, no dumps are written.
  std::string trace_dir;
};

class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Monotonic query-id allocator (first id is 1). Callers that already have
  // stable ids (the scheduler) may use their own instead.
  std::uint64_t NextQueryId() { return next_query_id_.fetch_add(1) + 1; }

  // Opens a span; sim_start is run-local and gets ctx.sim_offset added.
  // Returns the new span's id (parent for children).
  SpanId BeginSpan(const TraceContext& ctx, SpanId parent, std::string name,
                   std::string lane, double sim_start);
  // Closes a span. Unknown ids are ignored (a span may outlive pruning).
  void EndSpan(const TraceContext& ctx, SpanId id, double sim_end);
  // Rewrites a span's sim interval (used when the real interval is only
  // known after the timeline ran). Wall times are left untouched.
  void SetSpanInterval(const TraceContext& ctx, SpanId id, double sim_start,
                       double sim_end);
  // Records a complete leaf span in one call.
  SpanId AddSpan(const TraceContext& ctx, SpanId parent, std::string name,
                 std::string lane, double sim_start, double sim_end,
                 std::string category = "");
  // Attaches a typed annotation to a span (id 0 targets the query root).
  void Annotate(const TraceContext& ctx, SpanId id, SpanAnnotationKind kind,
                std::string detail, double sim_time);

  // Moves the query's tree into the flight recorder. A failed finish with a
  // configured trace dir writes the full tree as JSON and returns the path
  // (empty when no dump was written).
  std::string FinishQuery(const TraceContext& ctx, bool failed,
                          const std::string& failure);

  // Copies one query's tree (live or flight-recorded); empty() when unknown.
  QueryTrace Snapshot(std::uint64_t query_id) const;
  // Flight-recorder contents, oldest first.
  std::vector<QueryTrace> FlightRecorder() const;
  // Unconditionally dumps one query's tree to the trace dir; returns the
  // path (empty when the query is unknown or no dir is configured).
  std::string DumpQuery(std::uint64_t query_id) const;

  const std::string& trace_dir() const { return trace_dir_; }
  std::size_t finished_count() const { return finished_count_.load(); }
  std::size_t dropped_count() const { return dropped_count_.load(); }

  // Seconds since tracer construction (steady clock).
  double WallNow() const;

 private:
  struct Stripe {
    mutable std::mutex mutex;
    std::map<std::uint64_t, QueryTrace> live;
  };

  Stripe& StripeFor(std::uint64_t query_id) const {
    return stripes_[query_id % stripes_.size()];
  }
  std::string WriteDump(const QueryTrace& trace) const;

  std::string trace_dir_;
  std::size_t flight_capacity_;
  std::chrono::steady_clock::time_point origin_;
  std::atomic<std::uint64_t> next_query_id_{0};
  std::atomic<std::size_t> finished_count_{0};
  std::atomic<std::size_t> dropped_count_{0};

  // Sized once at construction, never resized (Stripe is not movable).
  mutable std::vector<Stripe> stripes_;

  mutable std::mutex flight_mutex_;
  std::deque<QueryTrace> flight_;
};

// Renders every query the tracer has seen (live and flight-recorded) into a
// Chrome trace-event JSON document: pid = device, tid = lane, complete ("X")
// slices per span, flow events linking a query's spans across attempts and
// shards. Open the output in ui.perfetto.dev or chrome://tracing.
Json ToSessionTraceJson(const Tracer& tracer, bool include_wall = true);
std::string ToSessionTrace(const Tracer& tracer);

}  // namespace kf::obs

#endif  // KF_OBS_TRACER_H_
