#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"

namespace kf::obs {

namespace {

const char* TypeName(Json::Type type) {
  switch (type) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return "bool";
    case Json::Type::kNumber: return "number";
    case Json::Type::kString: return "string";
    case Json::Type::kArray: return "array";
    case Json::Type::kObject: return "object";
  }
  return "?";
}

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through unchanged
        }
    }
  }
  out += '"';
}

void AppendNumber(std::string& out, double value) {
  // Integral values in the exactly-representable double range print as
  // integers so counters round-trip byte-identically in baselines.
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    out += buf;
    return;
  }
  if (!std::isfinite(value)) {
    out += "null";  // JSON has no Inf/NaN; null keeps the document valid
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Prefer the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    if (std::strtod(shorter, nullptr) == value) {
      out += shorter;
      return;
    }
  }
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json ParseDocument() {
    Json value = ParseValue();
    SkipWhitespace();
    KF_REQUIRE(pos_ == text_.size())
        << "trailing characters after JSON document at offset " << pos_;
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    KF_REQUIRE(pos_ < text_.size()) << "unexpected end of JSON at offset " << pos_;
    return text_[pos_];
  }

  void Expect(char c) {
    KF_REQUIRE(Peek() == c) << "expected '" << c << "' at offset " << pos_
                            << ", found '" << text_[pos_] << "'";
    ++pos_;
  }

  bool ConsumeLiteral(const char* literal) {
    std::size_t len = 0;
    while (literal[len] != '\0') ++len;
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json ParseValue() {
    SkipWhitespace();
    const char c = Peek();
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return Json(ParseString());
      case 't':
        KF_REQUIRE(ConsumeLiteral("true")) << "bad literal at offset " << pos_;
        return Json(true);
      case 'f':
        KF_REQUIRE(ConsumeLiteral("false")) << "bad literal at offset " << pos_;
        return Json(false);
      case 'n':
        KF_REQUIRE(ConsumeLiteral("null")) << "bad literal at offset " << pos_;
        return Json();
      default:
        return ParseNumber();
    }
  }

  Json ParseObject() {
    Expect('{');
    Json::Object object;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      object[std::move(key)] = ParseValue();
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return Json(std::move(object));
    }
  }

  Json ParseArray() {
    Expect('[');
    Json::Array array;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return Json(std::move(array));
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      KF_REQUIRE(pos_ < text_.size()) << "unterminated string at offset " << pos_;
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      KF_REQUIRE(pos_ < text_.size()) << "unterminated escape at offset " << pos_;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          KF_REQUIRE(pos_ + 4 <= text_.size())
              << "truncated \\u escape at offset " << pos_;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              KF_REQUIRE(false) << "bad hex digit in \\u escape at offset " << pos_;
            }
          }
          // UTF-8 encode the code point (BMP only; surrogate pairs are not
          // produced by our own writer).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          KF_REQUIRE(false) << "bad escape '\\" << esc << "' at offset " << pos_;
      }
    }
  }

  Json ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    KF_REQUIRE(pos_ > start) << "expected a JSON value at offset " << start;
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    KF_REQUIRE(end != nullptr && *end == '\0')
        << "malformed number '" << token << "' at offset " << start;
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::bool_value() const {
  KF_REQUIRE(is_bool()) << "JSON value is " << TypeName(type_) << ", not bool";
  return bool_;
}

double Json::number() const {
  KF_REQUIRE(is_number()) << "JSON value is " << TypeName(type_) << ", not number";
  return number_;
}

const std::string& Json::str() const {
  KF_REQUIRE(is_string()) << "JSON value is " << TypeName(type_) << ", not string";
  return string_;
}

const Json::Array& Json::array() const {
  KF_REQUIRE(is_array()) << "JSON value is " << TypeName(type_) << ", not array";
  return array_;
}

Json::Array& Json::array() {
  KF_REQUIRE(is_array()) << "JSON value is " << TypeName(type_) << ", not array";
  return array_;
}

const Json::Object& Json::object() const {
  KF_REQUIRE(is_object()) << "JSON value is " << TypeName(type_) << ", not object";
  return object_;
}

Json::Object& Json::object() {
  KF_REQUIRE(is_object()) << "JSON value is " << TypeName(type_) << ", not object";
  return object_;
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) type_ = Type::kObject;  // auto-vivify like map::operator[]
  KF_REQUIRE(is_object()) << "JSON value is " << TypeName(type_) << ", not object";
  return object_[key];
}

const Json& Json::at(const std::string& key) const {
  const Json* found = Find(key);
  KF_REQUIRE(found != nullptr) << "JSON object has no key '" << key << "'";
  return *found;
}

const Json* Json::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const Json& Json::at(std::size_t index) const {
  KF_REQUIRE(is_array()) << "JSON value is " << TypeName(type_) << ", not array";
  KF_REQUIRE(index < array_.size())
      << "JSON array index " << index << " out of range (size " << array_.size() << ")";
  return array_[index];
}

void Json::push_back(Json value) {
  if (is_null()) type_ = Type::kArray;
  KF_REQUIRE(is_array()) << "JSON value is " << TypeName(type_) << ", not array";
  array_.push_back(std::move(value));
}

std::size_t Json::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  KF_REQUIRE(false) << "size() on scalar JSON value (" << TypeName(type_) << ")";
  return 0;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

void Json::DumpTo(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto newline = [&](int level) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: AppendNumber(out, number_); break;
    case Type::kString: AppendEscaped(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        AppendEscaped(out, key);
        out += pretty ? ": " : ":";
        value.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  if (indent >= 0) out += '\n';
  return out;
}

Json Json::Parse(const std::string& text) { return Parser(text).ParseDocument(); }

}  // namespace kf::obs
