// A minimal JSON document model for the observability layer.
//
// The benchmark harnesses serialize their series and the metrics registry
// into machine-readable files (`BENCH_<name>.json`), and `tools/bench_compare`
// reads those files back to gate CI on regressions. The repo deliberately has
// no third-party JSON dependency, so this header provides the small value
// type both sides share: parse, navigate, mutate, and dump with stable
// (sorted-key, fixed-format) output so committed baselines diff cleanly.
#ifndef KF_OBS_JSON_H_
#define KF_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace kf::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  // std::map keeps object keys sorted, which makes Dump() deterministic —
  // a requirement for committed baselines and golden tests.
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}  // NOLINT(runtime/explicit)
  Json(double value) : type_(Type::kNumber), number_(value) {}
  Json(int value) : Json(static_cast<double>(value)) {}
  Json(std::int64_t value) : Json(static_cast<double>(value)) {}
  Json(std::uint64_t value) : Json(static_cast<double>(value)) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(Array value) : type_(Type::kArray), array_(std::move(value)) {}
  Json(Object value) : type_(Type::kObject), object_(std::move(value)) {}

  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; throw kf::Error on type mismatch.
  bool bool_value() const;
  double number() const;
  const std::string& str() const;
  const Array& array() const;
  Array& array();
  const Object& object() const;
  Object& object();

  // Object field access. The const form throws on a missing key; `Find`
  // returns nullptr instead.
  Json& operator[](const std::string& key);
  const Json& at(const std::string& key) const;
  const Json* Find(const std::string& key) const;
  bool Has(const std::string& key) const { return Find(key) != nullptr; }

  // Array element access (bounds-checked).
  const Json& at(std::size_t index) const;
  void push_back(Json value);
  std::size_t size() const;

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

  // Serializes the document. `indent < 0` produces compact single-line
  // output; `indent >= 0` pretty-prints with that many spaces per level.
  // Numbers that hold integral values in the exactly-representable range
  // print without a decimal point.
  std::string Dump(int indent = -1) const;

  // Parses a complete JSON document; throws kf::Error with an offset-tagged
  // message on malformed input or trailing garbage.
  static Json Parse(const std::string& text);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace kf::obs

#endif  // KF_OBS_JSON_H_
