// Regression comparison between two benchmark JSON documents.
//
// A benchmark run (see bench/bench_util.h) serializes gated values in two
// places: `summaries` (named headline numbers with an explicit goodness
// direction) and `series` (per-sweep-point curves). This module diffs a run
// against a committed baseline with per-metric relative tolerances and
// reports which values regressed — the core of the `tools/bench_compare`
// CLI that CI's bench-smoke job exits nonzero on.
//
// Registry metrics (`metrics` in the document) are informational only and
// are never gated: they include wall-clock histograms that vary run to run,
// while the simulated series/summaries are deterministic.
#ifndef KF_OBS_REGRESSION_H_
#define KF_OBS_REGRESSION_H_

#include <map>
#include <string>
#include <vector>

#include "obs/json.h"

namespace kf::obs {

// Which direction of change is a regression for a gated value.
//   kHigherIsBetter — regression when run < baseline * (1 - tolerance)
//   kLowerIsBetter  — regression when run > baseline * (1 + tolerance)
//   kTwoSided       — regression when |run - baseline| > tolerance * |baseline|
enum class Direction { kHigherIsBetter, kLowerIsBetter, kTwoSided };

const char* ToString(Direction direction);
// Parses "higher" / "lower" / "none"; throws kf::Error otherwise.
Direction ParseDirection(const std::string& text);

struct ToleranceSpec {
  // Relative tolerance applied to every gated value without an override.
  double default_tolerance = 0.05;
  // Per-metric overrides keyed by gated-value name (exact match).
  std::map<std::string, double> per_metric;

  double ToleranceFor(const std::string& name) const;
};

// One gated value's comparison outcome.
struct MetricDelta {
  std::string name;
  double baseline = 0.0;
  double run = 0.0;
  double tolerance = 0.0;
  Direction direction = Direction::kTwoSided;
  bool missing = false;    // present in baseline, absent in run
  bool regressed = false;  // outside tolerance in the bad direction (or missing)

  // Signed relative change, (run - baseline) / |baseline|; 0 when the
  // baseline is 0 and the run matches it exactly.
  double RelativeChange() const;
};

struct CompareResult {
  std::vector<MetricDelta> deltas;        // baseline order (summaries, then series)
  std::vector<std::string> new_metrics;   // in run but not baseline (not gated)
  std::size_t regression_count = 0;
  std::size_t missing_count = 0;

  bool ok() const { return regression_count == 0; }
};

// Extracts the gated values of a bench document: every summary as
// `summary/<name>` (with its recorded direction) and every series point as
// `series/<name>[<x>]` (two-sided). Throws kf::Error on schema violations.
std::map<std::string, std::pair<double, Direction>> GatedValues(const Json& doc);

// Compares `run` against `baseline`. Both must be bench documents produced
// by the harness (`schema: "kf-bench-v1"`).
CompareResult CompareBenchRuns(const Json& baseline, const Json& run,
                               const ToleranceSpec& tolerances);

// Renders a human-readable report of the comparison.
std::string FormatReport(const CompareResult& result, bool verbose);

}  // namespace kf::obs

#endif  // KF_OBS_REGRESSION_H_
