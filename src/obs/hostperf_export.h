// Cold-path export of the host-performance substrate counters.
//
// The staged-kernel hot paths update kf::HostPerfCounters (process-wide
// lock-free atomics — a registry lookup allocates and is far too expensive
// per run). This shim snapshots those atomics into `hostperf.*` metrics so
// dashboards and the bench JSON see them alongside the executor metrics:
//
//   hostperf.pool_hits            arena checkouts served from the pool
//   hostperf.pool_misses          checkouts that had to construct fresh
//   hostperf.pool_hit_rate_ppm    hits / (hits+misses), parts per million
//   hostperf.arena_reused_bytes   capacity handed back out instead of malloc'd
//   hostperf.typed_predicates     staged-select predicates run as typed kernels
//   hostperf.fallback_predicates  predicates run through the std::function path
//
// Call it wherever a run's metrics are finalized (QueryExecutor does after
// every execution). Counters are cumulative since process start; the gauges
// overwrite, so the registry always shows the latest snapshot.
#ifndef KF_OBS_HOSTPERF_EXPORT_H_
#define KF_OBS_HOSTPERF_EXPORT_H_

#include "obs/metrics_registry.h"

namespace kf::obs {

void RecordHostPerfMetrics(MetricsRegistry& registry);

}  // namespace kf::obs

#endif  // KF_OBS_HOSTPERF_EXPORT_H_
