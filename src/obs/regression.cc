#include "obs/regression.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace kf::obs {

const char* ToString(Direction direction) {
  switch (direction) {
    case Direction::kHigherIsBetter: return "higher";
    case Direction::kLowerIsBetter: return "lower";
    case Direction::kTwoSided: return "none";
  }
  return "?";
}

Direction ParseDirection(const std::string& text) {
  if (text == "higher") return Direction::kHigherIsBetter;
  if (text == "lower") return Direction::kLowerIsBetter;
  if (text == "none") return Direction::kTwoSided;
  KF_REQUIRE(false) << "bad direction '" << text
                    << "' (expected higher, lower, or none)";
  return Direction::kTwoSided;
}

double ToleranceSpec::ToleranceFor(const std::string& name) const {
  auto it = per_metric.find(name);
  return it == per_metric.end() ? default_tolerance : it->second;
}

double MetricDelta::RelativeChange() const {
  if (baseline == 0.0) return run == 0.0 ? 0.0 : std::copysign(1.0, run);
  return (run - baseline) / std::abs(baseline);
}

namespace {

void CheckSchema(const Json& doc, const char* which) {
  KF_REQUIRE(doc.is_object()) << which << " document is not a JSON object";
  const Json* schema = doc.Find("schema");
  KF_REQUIRE(schema != nullptr && schema->is_string() &&
             schema->str() == "kf-bench-v1")
      << which << " document is not a kf-bench-v1 benchmark file";
}

bool Regressed(double baseline, double run, double tolerance, Direction direction) {
  const double slack = tolerance * std::abs(baseline);
  switch (direction) {
    case Direction::kHigherIsBetter: return run < baseline - slack;
    case Direction::kLowerIsBetter: return run > baseline + slack;
    case Direction::kTwoSided: return std::abs(run - baseline) > slack;
  }
  return false;
}

}  // namespace

std::map<std::string, std::pair<double, Direction>> GatedValues(const Json& doc) {
  CheckSchema(doc, "bench");
  std::map<std::string, std::pair<double, Direction>> values;
  if (const Json* summaries = doc.Find("summaries")) {
    for (const Json& summary : summaries->array()) {
      const std::string name = "summary/" + summary.at("name").str();
      const Direction direction = ParseDirection(summary.at("direction").str());
      KF_REQUIRE(values.count(name) == 0) << "duplicate gated value '" << name << "'";
      values[name] = {summary.at("value").number(), direction};
    }
  }
  if (const Json* series_list = doc.Find("series")) {
    for (const Json& series : series_list->array()) {
      const std::string& series_name = series.at("name").str();
      for (const Json& point : series.at("points").array()) {
        KF_REQUIRE(point.is_array() && point.size() == 2)
            << "series '" << series_name << "' point is not an [x, y] pair";
        const std::string name =
            "series/" + series_name + "[" + Json(point.at(0).number()).Dump() + "]";
        KF_REQUIRE(values.count(name) == 0)
            << "duplicate gated value '" << name << "'";
        values[name] = {point.at(1).number(), Direction::kTwoSided};
      }
    }
  }
  return values;
}

CompareResult CompareBenchRuns(const Json& baseline, const Json& run,
                               const ToleranceSpec& tolerances) {
  CheckSchema(baseline, "baseline");
  CheckSchema(run, "run");
  const auto baseline_values = GatedValues(baseline);
  const auto run_values = GatedValues(run);

  CompareResult result;
  for (const auto& [name, base] : baseline_values) {
    MetricDelta delta;
    delta.name = name;
    delta.baseline = base.first;
    delta.direction = base.second;
    delta.tolerance = tolerances.ToleranceFor(name);
    auto it = run_values.find(name);
    if (it == run_values.end()) {
      delta.missing = true;
      delta.regressed = true;
      ++result.missing_count;
      ++result.regression_count;
    } else {
      delta.run = it->second.first;
      delta.regressed =
          Regressed(delta.baseline, delta.run, delta.tolerance, delta.direction);
      if (delta.regressed) ++result.regression_count;
    }
    result.deltas.push_back(std::move(delta));
  }
  for (const auto& [name, value] : run_values) {
    (void)value;
    if (baseline_values.count(name) == 0) result.new_metrics.push_back(name);
  }
  return result;
}

std::string FormatReport(const CompareResult& result, bool verbose) {
  std::ostringstream os;
  for (const MetricDelta& delta : result.deltas) {
    if (!verbose && !delta.regressed) continue;
    os << (delta.regressed ? "REGRESSION  " : "ok          ") << delta.name;
    if (delta.missing) {
      os << "  missing from run (baseline " << delta.baseline << ")";
    } else {
      os << "  baseline " << delta.baseline << "  run " << delta.run << "  ("
         << (delta.RelativeChange() >= 0 ? "+" : "")
         << delta.RelativeChange() * 100.0 << "%, tol "
         << delta.tolerance * 100.0 << "%, " << ToString(delta.direction)
         << "-is-better)";
    }
    os << "\n";
  }
  for (const std::string& name : result.new_metrics) {
    os << "note        " << name << "  new in run (not gated)\n";
  }
  os << (result.ok() ? "PASS" : "FAIL") << ": " << result.deltas.size()
     << " gated value(s), " << result.regression_count << " regression(s), "
     << result.missing_count << " missing\n";
  return os.str();
}

}  // namespace kf::obs
