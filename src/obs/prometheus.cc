#include "obs/prometheus.h"

#include <cctype>
#include <sstream>
#include <utility>
#include <vector>

#include "common/error.h"

namespace kf::obs {

namespace {

bool ValidNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

// Splits a flattened registry key (`name{k=v,...}` or bare `name`) back into
// its name and ordered label list. Label values may not contain ',' or '}'
// (the registry never produces them), which keeps this split unambiguous.
void SplitKey(const std::string& key, std::string& name, Labels& labels) {
  const std::size_t brace = key.find('{');
  if (brace == std::string::npos) {
    name = key;
    return;
  }
  name = key.substr(0, brace);
  KF_REQUIRE(key.back() == '}') << "malformed metric key: " << key;
  std::string body = key.substr(brace + 1, key.size() - brace - 2);
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    const std::string pair = body.substr(pos, comma - pos);
    const std::size_t eq = pair.find('=');
    KF_REQUIRE(eq != std::string::npos) << "malformed label in key: " << key;
    labels.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
    pos = comma + 1;
  }
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += SanitizeMetricName(labels[i].first) + "=\"" +
           EscapeLabelValue(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

std::string RenderNumber(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

struct Series {
  std::string name;      // sanitized metric family name
  std::string type;      // counter | gauge | summary
  // Rendered sample lines belonging to the family, in emit order.
  std::vector<std::string> lines;
};

}  // namespace

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && std::isdigit(static_cast<unsigned char>(name[0]))) {
    out += '_';
  }
  for (char c : name) out += ValidNameChar(c) ? c : '_';
  return out;
}

std::string ToPrometheusText(const MetricsRegistry& registry) {
  const Json snapshot = registry.ToJson();
  // Family name -> series; std::map keeps the output deterministically
  // sorted. The registry's own maps are sorted too, so lines within a
  // family keep a stable label order.
  std::map<std::string, Series> families;

  auto family_for = [&](const std::string& key, const std::string& type,
                        std::string& rendered_labels) -> Series& {
    std::string raw_name;
    Labels labels;
    SplitKey(key, raw_name, labels);
    const std::string name = SanitizeMetricName(raw_name);
    rendered_labels = RenderLabels(labels);
    Series& series = families[name + "\x01" + type];
    series.name = name;
    series.type = type;
    return series;
  };

  if (const Json* counters = snapshot.Find("counters")) {
    for (const auto& [key, value] : counters->object()) {
      std::string labels;
      Series& series = family_for(key, "counter", labels);
      series.lines.push_back(series.name + labels + " " +
                             RenderNumber(value.number()));
    }
  }
  if (const Json* gauges = snapshot.Find("gauges")) {
    for (const auto& [key, value] : gauges->object()) {
      std::string labels;
      Series& series = family_for(key, "gauge", labels);
      series.lines.push_back(series.name + labels + " " +
                             RenderNumber(value.number()));
    }
  }
  if (const Json* histograms = snapshot.Find("histograms")) {
    for (const auto& [key, value] : histograms->object()) {
      std::string raw_name;
      Labels labels;
      SplitKey(key, raw_name, labels);
      const std::string name = SanitizeMetricName(raw_name);
      Series& series = families[name + "\x01summary"];
      series.name = name;
      series.type = "summary";
      const std::pair<const char*, const char*> quantiles[] = {
          {"p50", "0.5"}, {"p90", "0.9"}, {"p99", "0.99"}};
      for (const auto& [field, quantile] : quantiles) {
        Labels with_quantile = labels;
        with_quantile.emplace_back("quantile", quantile);
        series.lines.push_back(name + RenderLabels(with_quantile) + " " +
                               RenderNumber(value.at(field).number()));
      }
      const std::string rendered = RenderLabels(labels);
      series.lines.push_back(name + "_sum" + rendered + " " +
                             RenderNumber(value.at("sum").number()));
      series.lines.push_back(name + "_count" + rendered + " " +
                             RenderNumber(value.at("count").number()));
    }
  }

  std::string out;
  for (const auto& [key, series] : families) {
    (void)key;
    out += "# TYPE " + series.name + " " + series.type + "\n";
    for (const std::string& line : series.lines) out += line + "\n";
  }
  return out;
}

std::map<std::string, double> ParsePrometheusText(const std::string& text) {
  std::map<std::string, double> samples;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // Sample lines are `name{labels} value` or `name value`; the value is
    // the last space-separated token (label values never contain spaces in
    // our output, and we do not emit timestamps).
    const std::size_t space = line.rfind(' ');
    KF_REQUIRE(space != std::string::npos && space + 1 < line.size())
        << "malformed exposition line: " << line;
    const std::string key = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    KF_REQUIRE(consumed == value.size())
        << "malformed sample value in line: " << line;
    samples[key] = parsed;
  }
  return samples;
}

}  // namespace kf::obs
