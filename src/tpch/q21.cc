#include "tpch/q21.h"

#include <map>
#include <set>

#include "relational/operators.h"

namespace kf::tpch {

using core::NodeId;
using relational::AggregateSpec;
using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;
using relational::Table;
using relational::Value;

namespace {

// The slice of lineitem Q21 streams: (orderkey, suppkey, commit, receipt).
Table LineitemSlice(const Table& lineitem) {
  Table out(Schema{{"l_orderkey", DataType::kInt64},
                   {"l_suppkey", DataType::kInt64},
                   {"l_commitdate", DataType::kInt32},
                   {"l_receiptdate", DataType::kInt32}});
  out.Reserve(lineitem.row_count());
  const auto& okey = lineitem.column("l_orderkey");
  const auto& skey = lineitem.column("l_suppkey");
  const auto& commit = lineitem.column("l_commitdate");
  const auto& receipt = lineitem.column("l_receiptdate");
  for (std::size_t r = 0; r < lineitem.row_count(); ++r) {
    out.AppendRow({okey.Get(r), skey.Get(r), commit.Get(r), receipt.Get(r)});
  }
  return out;
}

}  // namespace

QueryPlan BuildQ21Plan(const TpchData& data) {
  QueryPlan plan;
  auto add_source = [&](const char* name, Table table) {
    const NodeId id = plan.graph.AddSource(name, table.schema(), table.row_count());
    plan.source_bytes += table.byte_size();
    plan.sources.emplace(id, std::move(table));
    return id;
  };
  const NodeId src_l1 = add_source("lineitem", LineitemSlice(data.lineitem));
  const NodeId src_orders = add_source("orders", data.orders);
  const NodeId src_supplier = add_source("supplier", data.supplier);
  const NodeId src_nation = add_source("nation", data.nation);

  // Build-side chains first, so their clusters execute before the consumers.
  const NodeId nat = plan.graph.AddOperator(
      OperatorDesc::Select(Expr::Eq(Expr::FieldRef(1),
                                    Expr::Lit(Value::Int32(data.config.target_nation))),
                           "select_nation"),
      src_nation);
  const NodeId supnat = plan.graph.AddOperator(OperatorDesc::Join(1, 0, "join_supnat"),
                                               src_supplier, nat);

  // The big fused block: one pass over lineitem computes the late filter,
  // both per-order counts, and the probe joins (Fig 2 patterns a/f/g
  // combined).
  const NodeId late = plan.graph.AddOperator(
      OperatorDesc::Select(Expr::Gt(Expr::FieldRef(3), Expr::FieldRef(2)),
                           "select_late"),
      src_l1);
  const NodeId per_order = plan.graph.AddOperator(
      OperatorDesc::Aggregate({0},
                              {AggregateSpec{AggregateSpec::Func::kCount, 0, "nsupp"}},
                              "agg_per_order"),
      src_l1);
  const NodeId per_late = plan.graph.AddOperator(
      OperatorDesc::Aggregate({0},
                              {AggregateSpec{AggregateSpec::Func::kCount, 0, "nlate"}},
                              "agg_per_late"),
      late);
  const NodeId j_ord =
      plan.graph.AddOperator(OperatorDesc::Join(0, 0, "join_orders"), late, src_orders);
  // Keep only F-orders via the pre-selected build side instead: probe fords.
  // (j_ord above joins the raw orders; the status filter applies next.)
  const NodeId only_f = plan.graph.AddOperator(
      OperatorDesc::Select(Expr::Eq(Expr::FieldRef(4), Expr::Lit(Value::Int32(kOrderF))),
                           "select_status_f"),
      j_ord);
  const NodeId j_sup = plan.graph.AddOperator(OperatorDesc::Join(1, 0, "join_supplier"),
                                              only_f, supnat);

  // Count filters from the aggregation branches.
  const NodeId multi = plan.graph.AddOperator(
      OperatorDesc::Select(Expr::Gt(Expr::FieldRef(1), Expr::Lit(1)), "select_multi"),
      per_order);
  const NodeId single_late = plan.graph.AddOperator(
      OperatorDesc::Select(Expr::Eq(Expr::FieldRef(1), Expr::Lit(1)), "select_single"),
      per_late);

  const NodeId j_multi = plan.graph.AddOperator(OperatorDesc::Join(0, 0, "join_multi"),
                                                j_sup, multi);
  const NodeId j_single = plan.graph.AddOperator(
      OperatorDesc::Join(0, 0, "join_single"), j_multi, single_late);

  // Order by supplier, count waits, order by count.
  const NodeId srt1 =
      plan.graph.AddOperator(OperatorDesc::Sort({1}, "sort_supp"), j_single);
  const NodeId agg_final = plan.graph.AddOperator(
      OperatorDesc::Aggregate({1},
                              {AggregateSpec{AggregateSpec::Func::kCount, 0, "numwait"}},
                              "agg_numwait"),
      srt1);
  plan.sink =
      plan.graph.AddOperator(OperatorDesc::Sort({1, 0}, "sort_numwait"), agg_final);
  return plan;
}

Table ReferenceQ21(const TpchData& data) {
  const Table& lineitem = data.lineitem;
  const auto& okey = lineitem.column("l_orderkey").AsInt64();
  const auto& skey = lineitem.column("l_suppkey").AsInt64();
  const auto& commit = lineitem.column("l_commitdate").AsInt32();
  const auto& receipt = lineitem.column("l_receiptdate").AsInt32();

  // Per-order line and late-line counts.
  std::map<std::int64_t, std::int64_t> lines_per_order;
  std::map<std::int64_t, std::int64_t> late_per_order;
  for (std::size_t r = 0; r < lineitem.row_count(); ++r) {
    ++lines_per_order[okey[r]];
    if (receipt[r] > commit[r]) ++late_per_order[okey[r]];
  }

  // Order status and supplier nation lookups.
  std::map<std::int64_t, std::int32_t> status_of;
  {
    const auto& keys = data.orders.column("o_orderkey").AsInt64();
    const auto& status = data.orders.column("o_orderstatus").AsInt32();
    for (std::size_t r = 0; r < data.orders.row_count(); ++r) status_of[keys[r]] = status[r];
  }
  std::set<std::int64_t> nation_suppliers;
  {
    const auto& keys = data.supplier.column("s_suppkey").AsInt64();
    const auto& nations = data.supplier.column("s_nationkey").AsInt32();
    for (std::size_t r = 0; r < data.supplier.row_count(); ++r) {
      if (nations[r] == data.config.target_nation) nation_suppliers.insert(keys[r]);
    }
  }

  std::map<std::int64_t, std::int64_t> numwait;
  for (std::size_t r = 0; r < lineitem.row_count(); ++r) {
    if (receipt[r] <= commit[r]) continue;                   // late only
    if (status_of[okey[r]] != kOrderF) continue;             // order status F
    if (nation_suppliers.count(skey[r]) == 0) continue;      // nation filter
    if (lines_per_order[okey[r]] <= 1) continue;             // multi-supplier
    if (late_per_order[okey[r]] != 1) continue;              // only late one
    ++numwait[skey[r]];
  }

  Table out(Schema{{"s_suppkey", DataType::kInt64}, {"numwait", DataType::kInt64}});
  for (const auto& [supp, count] : numwait) {
    out.AppendRow({Value::Int64(supp), Value::Int64(count)});
  }
  return out;
}

}  // namespace kf::tpch
