#include "tpch/datagen.h"

#include <algorithm>

#include "common/error.h"
#include "common/random.h"

namespace kf::tpch {

using relational::DataType;
using relational::Schema;
using relational::Table;
using relational::Value;

TpchData MakeTpchData(const TpchConfig& config) {
  KF_REQUIRE(config.order_count > 0 && config.supplier_count > 0)
      << "empty TPC-H configuration";
  KF_REQUIRE(config.max_lines_per_order >= 1 && config.max_lines_per_order <= 7)
      << "TPC-H orders have 1-7 lineitems";
  TpchData data;
  data.config = config;
  Rng rng(config.seed);

  // --- nation ---------------------------------------------------------------
  data.nation = Table(Schema{{"n_nationkey", DataType::kInt32},
                             {"n_name", DataType::kInt32}});
  for (std::int32_t n = 0; n < 25; ++n) {
    data.nation.AppendRow({Value::Int32(n), Value::Int32(n)});
  }

  // --- supplier ---------------------------------------------------------------
  data.supplier = Table(Schema{{"s_suppkey", DataType::kInt64},
                               {"s_nationkey", DataType::kInt32}});
  data.supplier.Reserve(config.supplier_count);
  for (std::uint64_t s = 0; s < config.supplier_count; ++s) {
    data.supplier.AppendRow({Value::Int64(static_cast<std::int64_t>(s)),
                             Value::Int32(static_cast<std::int32_t>(rng.UniformInt(0, 24)))});
  }

  // --- orders -----------------------------------------------------------------
  data.orders = Table(Schema{{"o_orderkey", DataType::kInt64},
                             {"o_orderstatus", DataType::kInt32}});
  data.orders.Reserve(config.order_count);
  std::vector<std::int32_t> order_status(config.order_count);
  for (std::uint64_t o = 0; o < config.order_count; ++o) {
    // TPC-H: 'F' iff all lineitems shipped (~48.6%); approximate the mix.
    const double p = rng.UniformDouble();
    const std::int32_t status = p < 0.486 ? kOrderF : (p < 0.75 ? kOrderO : kOrderP);
    order_status[o] = status;
    data.orders.AppendRow(
        {Value::Int64(static_cast<std::int64_t>(o)), Value::Int32(status)});
  }

  // --- lineitem ---------------------------------------------------------------
  data.lineitem = Table(Schema{{"l_rowid", DataType::kInt64},
                               {"l_orderkey", DataType::kInt64},
                               {"l_suppkey", DataType::kInt64},
                               {"l_quantity", DataType::kInt32},
                               {"l_extendedprice", DataType::kFloat64},
                               {"l_discount", DataType::kFloat64},
                               {"l_tax", DataType::kFloat64},
                               {"l_returnflag", DataType::kInt32},
                               {"l_linestatus", DataType::kInt32},
                               {"l_shipdate", DataType::kInt32},
                               {"l_commitdate", DataType::kInt32},
                               {"l_receiptdate", DataType::kInt32}});
  std::int64_t rowid = 0;
  std::vector<std::int64_t> suppliers_of_order;
  for (std::uint64_t o = 0; o < config.order_count; ++o) {
    const int lines = static_cast<int>(rng.UniformInt(1, config.max_lines_per_order));
    // Distinct suppliers within one order (Q21's multi-supplier condition
    // counts suppliers per order).
    suppliers_of_order.clear();
    for (int l = 0; l < lines; ++l) {
      std::int64_t supp = 0;
      do {
        supp = rng.UniformInt(0, static_cast<std::int64_t>(config.supplier_count) - 1);
      } while (std::find(suppliers_of_order.begin(), suppliers_of_order.end(), supp) !=
               suppliers_of_order.end());
      suppliers_of_order.push_back(supp);

      const auto shipdate = static_cast<std::int32_t>(rng.UniformInt(kDateLo, kDateHi));
      const auto commitdate =
          static_cast<std::int32_t>(shipdate + rng.UniformInt(-30, 60));
      // ~30% of lineitems are received after their commit date (late).
      const bool late = rng.Bernoulli(0.3);
      const auto receiptdate = static_cast<std::int32_t>(
          late ? commitdate + rng.UniformInt(1, 30)
               : commitdate - rng.UniformInt(0, 30));
      const auto quantity = static_cast<std::int32_t>(rng.UniformInt(1, 50));
      const double price = static_cast<double>(quantity) *
                           rng.UniformDouble(900.0, 110000.0 / 50.0);
      const double discount = rng.UniformDouble(0.0, 0.10);
      const double tax = rng.UniformDouble(0.0, 0.08);
      // Return flag: R/A for older shipments, N for recent (spec ties it to
      // the receipt date; an approximation of the mix suffices here).
      const std::int32_t flag =
          shipdate < (kDateLo + kDateHi) / 2
              ? (rng.Bernoulli(0.5) ? kFlagR : kFlagA)
              : kFlagN;
      const std::int32_t lstatus =
          order_status[o] == kOrderF ? kStatusF : (rng.Bernoulli(0.5) ? kStatusO : kStatusF);

      data.lineitem.AppendRow({Value::Int64(rowid++),
                               Value::Int64(static_cast<std::int64_t>(o)),
                               Value::Int64(supp),
                               Value::Int32(quantity),
                               Value::Float64(price),
                               Value::Float64(discount),
                               Value::Float64(tax),
                               Value::Int32(flag),
                               Value::Int32(lstatus),
                               Value::Int32(shipdate),
                               Value::Int32(commitdate),
                               Value::Int32(receiptdate)});
    }
  }
  return data;
}

namespace {

Table SplitColumn(const Table& lineitem, const char* name, const std::string& source_field,
                  DataType type) {
  Table out(Schema{{"rowid", DataType::kInt64}, {name, type}});
  out.Reserve(lineitem.row_count());
  const auto& rowid_col = lineitem.column("l_rowid");
  const auto& value_col = lineitem.column(source_field);
  for (std::size_t r = 0; r < lineitem.row_count(); ++r) {
    out.AppendRow({rowid_col.Get(r), value_col.Get(r)});
  }
  return out;
}

}  // namespace

Q1Columns SplitQ1Columns(const Table& lineitem) {
  Q1Columns columns;
  columns.shipdate = SplitColumn(lineitem, "shipdate", "l_shipdate", DataType::kInt32);
  columns.quantity = SplitColumn(lineitem, "quantity", "l_quantity", DataType::kInt32);
  columns.price = SplitColumn(lineitem, "price", "l_extendedprice", DataType::kFloat64);
  columns.discount = SplitColumn(lineitem, "discount", "l_discount", DataType::kFloat64);
  columns.tax = SplitColumn(lineitem, "tax", "l_tax", DataType::kFloat64);
  columns.flag = SplitColumn(lineitem, "flag", "l_returnflag", DataType::kInt32);
  columns.status = SplitColumn(lineitem, "status", "l_linestatus", DataType::kInt32);
  return columns;
}

}  // namespace kf::tpch
