#include "tpch/q1.h"

#include <map>

#include "relational/operators.h"

namespace kf::tpch {

using core::NodeId;
using relational::AggregateSpec;
using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Table;
using relational::Value;

QueryPlan BuildQ1Plan(const TpchData& data) {
  QueryPlan plan;
  Q1Columns columns = SplitQ1Columns(data.lineitem);

  auto add_source = [&](const char* name, Table& table) {
    const NodeId id = plan.graph.AddSource(name, table.schema(), table.row_count());
    plan.source_bytes += table.byte_size();
    plan.sources.emplace(id, std::move(table));
    return id;
  };
  const NodeId src_date = add_source("shipdate", columns.shipdate);
  const NodeId src_qty = add_source("quantity", columns.quantity);
  const NodeId src_price = add_source("price", columns.price);
  const NodeId src_disc = add_source("discount", columns.discount);
  const NodeId src_tax = add_source("tax", columns.tax);
  const NodeId src_flag = add_source("flag", columns.flag);
  const NodeId src_status = add_source("status", columns.status);

  // SELECT on the ship date, then six JOINs on the row id reassemble the
  // wide relation: (rowid, date, qty, price, disc, tax, flag, status).
  const NodeId sel = plan.graph.AddOperator(
      OperatorDesc::Select(
          Expr::Le(Expr::FieldRef(1), Expr::Lit(Value::Int32(kQ1Cutoff))),
          "select_shipdate"),
      src_date);
  NodeId wide = sel;
  const NodeId joins[] = {src_qty, src_price, src_disc, src_tax, src_flag, src_status};
  const char* names[] = {"join_qty", "join_price", "join_disc",
                         "join_tax", "join_flag", "join_status"};
  for (std::size_t j = 0; j < 6; ++j) {
    wide = plan.graph.AddOperator(OperatorDesc::Join(0, 0, names[j]), wide, joins[j]);
  }

  // SORT by (returnflag, linestatus) — fields 6, 7.
  const NodeId sorted =
      plan.graph.AddOperator(OperatorDesc::Sort({6, 7}, "sort_flag_status"), wide);

  // Price arithmetic: disc_price = price*(1-disc); charge = disc_price*(1+tax).
  const NodeId disc_price = plan.graph.AddOperator(
      OperatorDesc::Arith(
          Expr::Mul(Expr::FieldRef(3), Expr::Sub(Expr::LitF(1.0), Expr::FieldRef(4))),
          "disc_price", DataType::kFloat64, "arith_disc_price"),
      sorted);
  const NodeId charge = plan.graph.AddOperator(
      OperatorDesc::Arith(
          Expr::Mul(Expr::FieldRef(8), Expr::Add(Expr::LitF(1.0), Expr::FieldRef(5))),
          "charge", DataType::kFloat64, "arith_charge"),
      disc_price);

  // AGGREGATION by (flag, status).
  const NodeId agg = plan.graph.AddOperator(
      OperatorDesc::Aggregate(
          {6, 7},
          {
              AggregateSpec{AggregateSpec::Func::kSum, 2, "sum_qty"},
              AggregateSpec{AggregateSpec::Func::kSum, 3, "sum_base_price"},
              AggregateSpec{AggregateSpec::Func::kSum, 8, "sum_disc_price"},
              AggregateSpec{AggregateSpec::Func::kSum, 9, "sum_charge"},
              AggregateSpec{AggregateSpec::Func::kAvg, 2, "avg_qty"},
              AggregateSpec{AggregateSpec::Func::kAvg, 3, "avg_price"},
              AggregateSpec{AggregateSpec::Func::kAvg, 4, "avg_disc"},
              AggregateSpec{AggregateSpec::Func::kCount, 0, "count_order"},
          },
          "aggregate_q1"),
      charge);

  plan.sink = plan.graph.AddOperator(OperatorDesc::Unique("unique_q1"), agg);
  return plan;
}

Table ReferenceQ1(const Table& lineitem) {
  struct Acc {
    double sum_qty = 0, sum_price = 0, sum_disc_price = 0, sum_charge = 0;
    double sum_disc = 0;
    std::int64_t count = 0;
  };
  std::map<std::pair<std::int32_t, std::int32_t>, Acc> groups;

  const auto& qty = lineitem.column("l_quantity").AsInt32();
  const auto& price = lineitem.column("l_extendedprice").AsFloat64();
  const auto& disc = lineitem.column("l_discount").AsFloat64();
  const auto& tax = lineitem.column("l_tax").AsFloat64();
  const auto& flag = lineitem.column("l_returnflag").AsInt32();
  const auto& status = lineitem.column("l_linestatus").AsInt32();
  const auto& shipdate = lineitem.column("l_shipdate").AsInt32();

  for (std::size_t r = 0; r < lineitem.row_count(); ++r) {
    if (shipdate[r] > kQ1Cutoff) continue;
    Acc& acc = groups[{flag[r], status[r]}];
    const double disc_price = price[r] * (1.0 - disc[r]);
    acc.sum_qty += qty[r];
    acc.sum_price += price[r];
    acc.sum_disc_price += disc_price;
    acc.sum_charge += disc_price * (1.0 + tax[r]);
    acc.sum_disc += disc[r];
    ++acc.count;
  }

  Table out(relational::Schema{{"flag", DataType::kInt32},
                               {"status", DataType::kInt32},
                               {"sum_qty", DataType::kFloat64},
                               {"sum_base_price", DataType::kFloat64},
                               {"sum_disc_price", DataType::kFloat64},
                               {"sum_charge", DataType::kFloat64},
                               {"avg_qty", DataType::kFloat64},
                               {"avg_price", DataType::kFloat64},
                               {"avg_disc", DataType::kFloat64},
                               {"count_order", DataType::kInt64}});
  for (const auto& [key, acc] : groups) {
    const auto n = static_cast<double>(acc.count);
    out.AppendRow({Value::Int32(key.first), Value::Int32(key.second),
                   Value::Float64(acc.sum_qty), Value::Float64(acc.sum_price),
                   Value::Float64(acc.sum_disc_price), Value::Float64(acc.sum_charge),
                   Value::Float64(acc.sum_qty / n), Value::Float64(acc.sum_price / n),
                   Value::Float64(acc.sum_disc / n), Value::Int64(acc.count)});
  }
  return out;
}

}  // namespace kf::tpch
