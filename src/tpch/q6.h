// TPC-H Q6 — the forecasting revenue change query (extension beyond the
// paper's Q1/Q21 evaluation).
//
// Q6 is the canonical *fully fusable* decision-support query: three range
// SELECTs over lineitem, one ARITH (revenue = price * discount), and one
// global aggregation — no JOIN, no SORT. The whole plan collapses into a
// single fused kernel (patterns (a) + (h) + (g) composed), which makes it
// the upper-bound contrast to Q1 (fusable blocks fenced by one SORT) and
// Q21 (heavily fenced): it bounds how much fusion can ever deliver on a
// real query.
#ifndef KF_TPCH_Q6_H_
#define KF_TPCH_Q6_H_

#include "tpch/q1.h"

namespace kf::tpch {

QueryPlan BuildQ6Plan(const TpchData& data);

// Scalar reference: one row, the total discounted revenue.
relational::Table ReferenceQ6(const relational::Table& lineitem);

}  // namespace kf::tpch

#endif  // KF_TPCH_Q6_H_
