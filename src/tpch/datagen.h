// TPC-H-style synthetic data generation.
//
// Generates the columns Q1 and Q21 touch, following the TPC-H specification's
// value domains (dates in 1992-1998, quantities 1-50, discounts 0-0.10,
// taxes 0-0.08, ~49% of orders with status 'F', 25 nations). Row counts are
// parameterized by a scale knob instead of the spec's fixed SF multiples so
// tests stay fast; distributions are uniform as in dbgen. String-typed spec
// columns (return flag, line status, order status, nation name) are
// dictionary-encoded to small integers — exactly what a columnar GPU
// database ships across PCIe.
#ifndef KF_TPCH_DATAGEN_H_
#define KF_TPCH_DATAGEN_H_

#include <cstdint>

#include "relational/table.h"

namespace kf::tpch {

// Dictionary encodings.
enum ReturnFlag : std::int32_t { kFlagA = 0, kFlagN = 1, kFlagR = 2 };
enum LineStatus : std::int32_t { kStatusO = 0, kStatusF = 1 };
enum OrderStatus : std::int32_t { kOrderO = 0, kOrderF = 1, kOrderP = 2 };

// Days since 1970-01-01.
inline constexpr std::int32_t kDateLo = 8036;    // 1992-01-01
inline constexpr std::int32_t kDateHi = 10560;   // 1998-12-01
// Q1 cutoff: 1998-12-01 minus 90 days.
inline constexpr std::int32_t kQ1Cutoff = kDateHi - 90;

struct TpchConfig {
  std::uint64_t order_count = 1000;
  std::uint64_t supplier_count = 100;
  int max_lines_per_order = 7;
  std::uint64_t seed = 20120521;  // IPDPS-W 2012
  std::int32_t target_nation = 20;  // "SAUDI ARABIA" in the spec's numbering
};

struct TpchData {
  // nation(n_nationkey i32, n_name i32) — name dictionary-encoded to the key.
  relational::Table nation;
  // supplier(s_suppkey i64, s_nationkey i32)
  relational::Table supplier;
  // orders(o_orderkey i64, o_orderstatus i32)
  relational::Table orders;
  // lineitem(l_rowid i64, l_orderkey i64, l_suppkey i64, l_quantity i32,
  //          l_extendedprice f64, l_discount f64, l_tax f64,
  //          l_returnflag i32, l_linestatus i32, l_shipdate i32,
  //          l_commitdate i32, l_receiptdate i32)
  relational::Table lineitem;

  TpchConfig config;
};

TpchData MakeTpchData(const TpchConfig& config);

// Q1's query plan consumes the lineitem columns as seven single-column
// relations keyed by row id (paper Fig 17a builds "a large table from seven
// columns" with one SELECT and six JOINs). Field order matches the plan.
struct Q1Columns {
  relational::Table shipdate;   // (rowid, l_shipdate)
  relational::Table quantity;   // (rowid, l_quantity)
  relational::Table price;      // (rowid, l_extendedprice)
  relational::Table discount;   // (rowid, l_discount)
  relational::Table tax;        // (rowid, l_tax)
  relational::Table flag;       // (rowid, l_returnflag)
  relational::Table status;     // (rowid, l_linestatus)
};

Q1Columns SplitQ1Columns(const relational::Table& lineitem);

}  // namespace kf::tpch

#endif  // KF_TPCH_DATAGEN_H_
