// TPC-H Q21 — suppliers who kept orders waiting (paper Fig 17b / Fig 18b).
//
// Q21 identifies suppliers, in one nation, whose late shipment was the only
// late shipment of a multi-supplier order with status 'F'. The paper uses a
// simplified plan (PROJECTs omitted); we follow the same spirit:
//
//   late      = SELECT(lineitem, receiptdate > commitdate)
//   fords     = SELECT(orders, status == 'F')
//   nat       = SELECT(nation, name == SAUDI ARABIA)
//   supnat    = JOIN(supplier, nat)               [suppliers in the nation]
//   per_order = AGGREGATE(lineitem BY orderkey, COUNT)   [suppliers/order]
//   per_late  = AGGREGATE(late BY orderkey, COUNT)       [late supps/order]
//   chain     = late ⋈ fords ⋈ supnat ⋈ SELECT(per_order > 1)
//                     ⋈ SELECT(per_late == 1)
//   result    = SORT(AGGREGATE(SORT(chain) BY suppkey, COUNT))
//
// (The generator guarantees distinct suppliers per order, so per-order line
// counts equal per-order supplier counts — the EXISTS / NOT EXISTS of the
// spec become the two count filters.) SORTs and the AGGREGATE boundaries
// fragment fusion exactly as the paper describes, which is why Q21 gains
// less from fusion than Q1.
#ifndef KF_TPCH_Q21_H_
#define KF_TPCH_Q21_H_

#include "tpch/q1.h"

namespace kf::tpch {

QueryPlan BuildQ21Plan(const TpchData& data);

// Scalar implementation mirroring the plan's semantics.
relational::Table ReferenceQ21(const TpchData& data);

}  // namespace kf::tpch

#endif  // KF_TPCH_Q21_H_
