// TPC-H Q1 — the pricing summary report (paper Fig 17a / Fig 18a).
//
// The paper's plan builds a wide relation from seven single-column tables
// (one SELECT on the ship date plus six JOINs on the row id), sorts by
// (returnflag, linestatus), computes the price arithmetic, and aggregates.
// Fusion merges the SELECT + 6 JOINs into one kernel and the arithmetic +
// aggregation into another; SORT stays a fusion barrier, and fission can
// only overlap the *input* transfers of the first block (the arithmetic's
// input is already in device memory after the SORT).
#ifndef KF_TPCH_Q1_H_
#define KF_TPCH_Q1_H_

#include <map>

#include "core/op_graph.h"
#include "tpch/datagen.h"

namespace kf::tpch {

struct QueryPlan {
  core::OpGraph graph;
  std::map<core::NodeId, relational::Table> sources;
  core::NodeId sink = core::kNoNode;
  std::uint64_t source_bytes = 0;
};

QueryPlan BuildQ1Plan(const TpchData& data);

// Independent scalar implementation of the same query over the raw lineitem
// table; rows match the plan's sink output (ApproxSameRowMultiset).
relational::Table ReferenceQ1(const relational::Table& lineitem);

}  // namespace kf::tpch

#endif  // KF_TPCH_Q1_H_
