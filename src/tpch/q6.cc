#include "tpch/q6.h"

#include "relational/operators.h"

namespace kf::tpch {

using core::NodeId;
using relational::AggregateSpec;
using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;
using relational::Table;
using relational::Value;

namespace {

// Q6 parameters (spec defaults): shipped in 1994, discount 0.05-0.07,
// quantity < 24.
constexpr std::int32_t kYearLo = 8766;   // 1994-01-01 (days since epoch)
constexpr std::int32_t kYearHi = 9131;   // 1995-01-01
constexpr double kDiscountLo = 0.05;
constexpr double kDiscountHi = 0.07;
constexpr std::int32_t kMaxQuantity = 24;

// The slice of lineitem Q6 streams: (shipdate, discount, quantity, price).
Table LineitemSlice(const Table& lineitem) {
  Table out(Schema{{"l_shipdate", DataType::kInt32},
                   {"l_discount", DataType::kFloat64},
                   {"l_quantity", DataType::kInt32},
                   {"l_extendedprice", DataType::kFloat64}});
  out.Reserve(lineitem.row_count());
  const auto& ship = lineitem.column("l_shipdate");
  const auto& disc = lineitem.column("l_discount");
  const auto& qty = lineitem.column("l_quantity");
  const auto& price = lineitem.column("l_extendedprice");
  for (std::size_t r = 0; r < lineitem.row_count(); ++r) {
    out.AppendRow({ship.Get(r), disc.Get(r), qty.Get(r), price.Get(r)});
  }
  return out;
}

}  // namespace

QueryPlan BuildQ6Plan(const TpchData& data) {
  QueryPlan plan;
  Table slice = LineitemSlice(data.lineitem);
  const NodeId src =
      plan.graph.AddSource("lineitem", slice.schema(), slice.row_count());
  plan.source_bytes = slice.byte_size();
  plan.sources.emplace(src, std::move(slice));

  // Three range filters, kept as separate SELECTs (pattern a) so the fusion
  // planner earns its keep.
  const NodeId in_year = plan.graph.AddOperator(
      OperatorDesc::Select(
          Expr::And(Expr::Ge(Expr::FieldRef(0), Expr::Lit(Value::Int32(kYearLo))),
                    Expr::Lt(Expr::FieldRef(0), Expr::Lit(Value::Int32(kYearHi)))),
          "select_shipdate"),
      src);
  const NodeId in_discount = plan.graph.AddOperator(
      OperatorDesc::Select(
          Expr::And(Expr::Ge(Expr::FieldRef(1), Expr::LitF(kDiscountLo - 1e-9)),
                    Expr::Le(Expr::FieldRef(1), Expr::LitF(kDiscountHi + 1e-9))),
          "select_discount"),
      in_year);
  const NodeId in_quantity = plan.graph.AddOperator(
      OperatorDesc::Select(
          Expr::Lt(Expr::FieldRef(2), Expr::Lit(Value::Int32(kMaxQuantity))),
          "select_quantity"),
      in_discount);

  // revenue = extendedprice * discount, then SUM.
  const NodeId revenue = plan.graph.AddOperator(
      OperatorDesc::Arith(Expr::Mul(Expr::FieldRef(3), Expr::FieldRef(1)), "revenue",
                          DataType::kFloat64, "arith_revenue"),
      in_quantity);
  plan.sink = plan.graph.AddOperator(
      OperatorDesc::Aggregate(
          {}, {AggregateSpec{AggregateSpec::Func::kSum, 4, "total_revenue"}},
          "aggregate_q6"),
      revenue);
  return plan;
}

Table ReferenceQ6(const Table& lineitem) {
  const auto& ship = lineitem.column("l_shipdate").AsInt32();
  const auto& disc = lineitem.column("l_discount").AsFloat64();
  const auto& qty = lineitem.column("l_quantity").AsInt32();
  const auto& price = lineitem.column("l_extendedprice").AsFloat64();
  double revenue = 0.0;
  for (std::size_t r = 0; r < lineitem.row_count(); ++r) {
    if (ship[r] >= kYearLo && ship[r] < kYearHi &&
        disc[r] >= kDiscountLo - 1e-9 && disc[r] <= kDiscountHi + 1e-9 &&
        qty[r] < kMaxQuantity) {
      revenue += price[r] * disc[r];
    }
  }
  Table out(Schema{{"total_revenue", DataType::kFloat64}});
  out.AppendRow({Value::Float64(revenue)});
  return out;
}

}  // namespace kf::tpch
