// Instructions of the mini kernel IR.
#ifndef KF_IR_INSTRUCTION_H_
#define KF_IR_INSTRUCTION_H_

#include <vector>

#include "ir/value.h"

namespace kf::ir {

enum class Opcode : std::uint8_t {
  // Data movement.
  kMov,   // dest = op0
  kLd,    // dest = load(slot op0)            — slot is a kPtr param
  kSt,    // store(slot op0, value op1)       — side effect
  kCvt,   // dest = convert(op0)
  // Arithmetic.
  kAdd, kSub, kMul, kDiv, kMad,  // mad: dest = op0 * op1 + op2
  kMin, kMax,
  // Comparison (dest is kPred).
  kSetLt, kSetLe, kSetGt, kSetGe, kSetEq, kSetNe,
  // Predicate logic.
  kAnd, kOr, kXor, kNot,
  // Select: dest = op0(pred) ? op1 : op2.
  kSelp,
};

const char* ToString(Opcode op);

// True if executing the instruction speculatively is safe (no side effects,
// no faults in our abstract machine — loads read from private slots).
bool IsSpeculatable(Opcode op);

// True for comparison opcodes producing predicates.
bool IsCompare(Opcode op);

struct Instruction {
  Opcode op = Opcode::kMov;
  Type type = Type::kI32;          // result / operation type
  ValueId dest = kNoValue;         // kNoValue for stores
  std::vector<ValueId> operands;
  // Optional guard predicate (PTX "@p"). Guarded instructions execute only
  // when the predicate is true; only stores are ever guarded after
  // if-conversion, but the field is general.
  ValueId guard = kNoValue;

  bool has_dest() const { return dest != kNoValue; }
  bool is_guarded() const { return guard != kNoValue; }
};

}  // namespace kf::ir

#endif  // KF_IR_INSTRUCTION_H_
