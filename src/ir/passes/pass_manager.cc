#include "ir/passes.h"

namespace kf::ir {

int PassManager::RunToFixpoint(Function& function, int max_iterations) {
  int iteration = 0;
  for (; iteration < max_iterations; ++iteration) {
    bool changed = false;
    for (auto& pass : passes_) {
      if (pass->Run(function)) changed = true;
      function.Verify();
    }
    if (!changed) break;
  }
  return iteration;
}

PassManager PassManager::StandardO3() {
  PassManager pm;
  pm.Add(MakeCopyPropagationPass());
  pm.Add(MakeConstantFoldPass());
  pm.Add(MakeIfConversionPass());
  pm.Add(MakePredicateCombinePass());
  pm.Add(MakeCsePass());
  pm.Add(MakePeepholePass());
  pm.Add(MakeDeadCodeEliminationPass());
  return pm;
}

void OptimizeO3(Function& function) {
  PassManager pm = PassManager::StandardO3();
  pm.RunToFixpoint(function);
}

}  // namespace kf::ir
