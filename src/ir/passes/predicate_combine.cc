#include <optional>

#include "ir/passes.h"

namespace kf::ir {
namespace {

struct CompareInfo {
  Opcode op;
  Type type;
  ValueId subject;   // the non-constant side
  ValueId constant;  // the constant side
};

// Matches "cmp subject, constant" among the instructions of `bb` that appear
// before position `limit` and define `pred`.
std::optional<CompareInfo> MatchCompare(const Function& function, const BasicBlock& bb,
                                        std::size_t limit, ValueId pred) {
  for (std::size_t i = 0; i < limit; ++i) {
    const Instruction& inst = bb.instructions[i];
    if (inst.dest != pred) continue;
    if (!IsCompare(inst.op) || inst.operands.size() != 2) return std::nullopt;
    const bool lhs_const = function.value(inst.operands[0]).is_constant();
    const bool rhs_const = function.value(inst.operands[1]).is_constant();
    if (rhs_const && !lhs_const) {
      return CompareInfo{inst.op, inst.type, inst.operands[0], inst.operands[1]};
    }
    return std::nullopt;  // constant-on-left and const/const are handled elsewhere
  }
  return std::nullopt;
}

// Rewrites and(x<a, x<b) -> x<min(a,b) and or(x<a, x<b) -> x<max(a,b)
// (and the analogous le/gt/ge forms) when both comparisons test the same
// subject against constants. This is the transformation that lets a fused
// SELECT-SELECT collapse to a single comparison (paper Table III).
class PredicateCombinePass final : public Pass {
 public:
  const char* name() const override { return "predicate-combine"; }

  bool Run(Function& function) override {
    bool changed = false;
    for (BlockId b = 0; b < function.block_count(); ++b) {
      BasicBlock& bb = function.block(b);
      for (std::size_t i = 0; i < bb.instructions.size(); ++i) {
        Instruction& inst = bb.instructions[i];
        const bool is_and = inst.op == Opcode::kAnd;
        const bool is_or = inst.op == Opcode::kOr;
        if ((!is_and && !is_or) || inst.operands.size() != 2 || inst.is_guarded()) {
          continue;
        }
        auto lhs = MatchCompare(function, bb, i, inst.operands[0]);
        auto rhs = MatchCompare(function, bb, i, inst.operands[1]);
        if (!lhs || !rhs) continue;
        if (lhs->op != rhs->op || lhs->subject != rhs->subject || lhs->type != rhs->type) {
          continue;
        }
        const ValueInfo& ca = function.value(lhs->constant);
        const ValueInfo& cb = function.value(rhs->constant);
        // For < and <=, AND keeps the smaller bound, OR the larger;
        // for > and >=, it is the reverse.
        bool keep_smaller = false;
        switch (lhs->op) {
          case Opcode::kSetLt:
          case Opcode::kSetLe:
            keep_smaller = is_and;
            break;
          case Opcode::kSetGt:
          case Opcode::kSetGe:
            keep_smaller = !is_and;
            break;
          default:
            continue;  // eq/ne do not combine into a range
        }
        const bool a_smaller = ca.is_float() || cb.is_float()
                                   ? ca.as_double() < cb.as_double()
                                   : ca.ival < cb.ival;
        const ValueId kept = (a_smaller == keep_smaller) ? lhs->constant : rhs->constant;
        inst.op = lhs->op;
        inst.type = lhs->type;
        inst.operands = {lhs->subject, kept};
        changed = true;
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> MakePredicateCombinePass() {
  return std::make_unique<PredicateCombinePass>();
}

}  // namespace kf::ir
