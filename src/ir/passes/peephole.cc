#include "ir/passes.h"

namespace kf::ir {
namespace {

class PeepholePass final : public Pass {
 public:
  const char* name() const override { return "peephole"; }

  bool Run(Function& function) override {
    bool changed = false;
    for (BlockId b = 0; b < function.block_count(); ++b) {
      auto& instructions = function.block(b).instructions;
      for (std::size_t i = 0; i < instructions.size(); ++i) {
        Instruction& inst = instructions[i];
        if (!inst.has_dest() || inst.is_guarded()) continue;
        auto is_const_int = [&](std::size_t k, std::int64_t v) {
          const ValueInfo& info = function.value(inst.operands[k]);
          return info.is_constant() && !info.is_float() && info.ival == v;
        };
        auto to_mov = [&](ValueId src) {
          inst.op = Opcode::kMov;
          inst.operands = {src};
          changed = true;
        };
        switch (inst.op) {
          case Opcode::kAdd:
            if (is_const_int(1, 0)) to_mov(inst.operands[0]);
            else if (is_const_int(0, 0)) to_mov(inst.operands[1]);
            break;
          case Opcode::kSub:
            if (is_const_int(1, 0)) to_mov(inst.operands[0]);
            break;
          case Opcode::kMul:
            if (is_const_int(1, 1)) to_mov(inst.operands[0]);
            else if (is_const_int(0, 1)) to_mov(inst.operands[1]);
            break;
          case Opcode::kMad:
            // a*b + 0 -> mul; a*1 + c -> add.
            if (is_const_int(2, 0)) {
              inst.op = Opcode::kMul;
              inst.operands.pop_back();
              changed = true;
            } else if (is_const_int(1, 1)) {
              inst.op = Opcode::kAdd;
              inst.operands.erase(inst.operands.begin() + 1);
              changed = true;
            }
            break;
          case Opcode::kAnd:
          case Opcode::kOr:
            if (inst.operands[0] == inst.operands[1]) to_mov(inst.operands[0]);
            break;
          case Opcode::kSelp:
            if (inst.operands[1] == inst.operands[2]) {
              to_mov(inst.operands[1]);
              break;
            }
            // selp(a<b, a, b) -> min(a,b); selp(a<b, b, a) -> max(a,b)
            // (and the analogous > forms), searching the compare in-block.
            for (std::size_t j = 0; j < i; ++j) {
              const Instruction& def = instructions[j];
              if (def.dest != inst.operands[0] || def.is_guarded()) continue;
              if (def.op != Opcode::kSetLt && def.op != Opcode::kSetLe &&
                  def.op != Opcode::kSetGt && def.op != Opcode::kSetGe) {
                break;
              }
              const bool lt_like =
                  def.op == Opcode::kSetLt || def.op == Opcode::kSetLe;
              const ValueId lhs = def.operands[0];
              const ValueId rhs = def.operands[1];
              if (inst.operands[1] == lhs && inst.operands[2] == rhs) {
                inst.op = lt_like ? Opcode::kMin : Opcode::kMax;
                inst.operands = {lhs, rhs};
                changed = true;
              } else if (inst.operands[1] == rhs && inst.operands[2] == lhs) {
                inst.op = lt_like ? Opcode::kMax : Opcode::kMin;
                inst.operands = {lhs, rhs};
                changed = true;
              }
              break;
            }
            break;
          case Opcode::kNot: {
            // not(not(x)) -> x, searching the def within this block.
            const ValueId src = inst.operands[0];
            for (std::size_t j = 0; j < i; ++j) {
              const Instruction& def = instructions[j];
              if (def.dest == src && def.op == Opcode::kNot && !def.is_guarded()) {
                to_mov(def.operands[0]);
                break;
              }
            }
            break;
          }
          default:
            break;
        }
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> MakePeepholePass() { return std::make_unique<PeepholePass>(); }

}  // namespace kf::ir
