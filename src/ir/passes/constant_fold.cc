#include <cmath>
#include <optional>

#include "ir/passes.h"

namespace kf::ir {
namespace {

// Evaluates an all-constant operation; returns the folded constant id, or
// nullopt when the opcode cannot be folded (loads, stores, ...).
std::optional<ValueId> Fold(Function& function, const Instruction& inst) {
  for (ValueId v : inst.operands) {
    if (!function.value(v).is_constant()) return std::nullopt;
  }
  const bool is_float = inst.type == Type::kF32 || inst.type == Type::kF64;
  auto ival = [&](std::size_t i) { return function.value(inst.operands[i]).ival; };
  auto fval = [&](std::size_t i) { return function.value(inst.operands[i]).as_double(); };
  auto make_int = [&](std::int64_t v) { return function.AddConstInt(inst.type, v); };
  auto make_float = [&](double v) { return function.AddConstFloat(inst.type, v); };
  auto make_pred = [&](bool v) { return function.AddConstInt(Type::kPred, v ? 1 : 0); };
  // Wrapping integer arithmetic, matching the interpreter (and hardware).
  auto wrap = [](auto fn, std::int64_t a, std::int64_t b) {
    return static_cast<std::int64_t>(
        fn(static_cast<std::uint64_t>(a), static_cast<std::uint64_t>(b)));
  };

  switch (inst.op) {
    case Opcode::kAdd:
      return is_float ? make_float(fval(0) + fval(1))
                      : make_int(wrap([](auto a, auto b) { return a + b; }, ival(0),
                                      ival(1)));
    case Opcode::kSub:
      return is_float ? make_float(fval(0) - fval(1))
                      : make_int(wrap([](auto a, auto b) { return a - b; }, ival(0),
                                      ival(1)));
    case Opcode::kMul:
      return is_float ? make_float(fval(0) * fval(1))
                      : make_int(wrap([](auto a, auto b) { return a * b; }, ival(0),
                                      ival(1)));
    case Opcode::kDiv:
      if (!is_float && ival(1) == 0) return std::nullopt;
      return is_float ? make_float(fval(0) / fval(1)) : make_int(ival(0) / ival(1));
    case Opcode::kMad:
      return is_float
                 ? make_float(fval(0) * fval(1) + fval(2))
                 : make_int(wrap([](auto a, auto b) { return a + b; },
                                 wrap([](auto a, auto b) { return a * b; }, ival(0),
                                      ival(1)),
                                 ival(2)));
    case Opcode::kMin:
      return is_float ? make_float(std::min(fval(0), fval(1)))
                      : make_int(std::min(ival(0), ival(1)));
    case Opcode::kMax:
      return is_float ? make_float(std::max(fval(0), fval(1)))
                      : make_int(std::max(ival(0), ival(1)));
    case Opcode::kSetLt:
      return make_pred(is_float ? fval(0) < fval(1) : ival(0) < ival(1));
    case Opcode::kSetLe:
      return make_pred(is_float ? fval(0) <= fval(1) : ival(0) <= ival(1));
    case Opcode::kSetGt:
      return make_pred(is_float ? fval(0) > fval(1) : ival(0) > ival(1));
    case Opcode::kSetGe:
      return make_pred(is_float ? fval(0) >= fval(1) : ival(0) >= ival(1));
    case Opcode::kSetEq:
      return make_pred(is_float ? fval(0) == fval(1) : ival(0) == ival(1));
    case Opcode::kSetNe:
      return make_pred(is_float ? fval(0) != fval(1) : ival(0) != ival(1));
    case Opcode::kAnd:
      return make_pred(ival(0) != 0 && ival(1) != 0);
    case Opcode::kOr:
      return make_pred(ival(0) != 0 || ival(1) != 0);
    case Opcode::kXor:
      return make_pred((ival(0) != 0) != (ival(1) != 0));
    case Opcode::kNot:
      return make_pred(ival(0) == 0);
    case Opcode::kSelp:
      return inst.operands[ival(0) != 0 ? 1 : 2];
    case Opcode::kCvt:
      return is_float ? make_float(fval(0)) : make_int(ival(0));
    default:
      return std::nullopt;
  }
}

class ConstantFoldPass final : public Pass {
 public:
  const char* name() const override { return "constant-fold"; }

  bool Run(Function& function) override {
    bool changed = false;
    for (BlockId b = 0; b < function.block_count(); ++b) {
      auto& instructions = function.block(b).instructions;
      for (std::size_t i = 0; i < instructions.size();) {
        Instruction& inst = instructions[i];
        if (inst.has_dest() && !inst.is_guarded()) {
          if (auto folded = Fold(function, inst)) {
            const ValueId dest = inst.dest;
            instructions.erase(instructions.begin() + static_cast<std::ptrdiff_t>(i));
            function.ReplaceAllUses(dest, *folded);
            changed = true;
            continue;
          }
        }
        ++i;
      }
      // Fold branches on constant conditions, and branches whose two targets
      // coincide, into jumps.
      Terminator& term = function.block(b).terminator;
      if (term.kind == TerminatorKind::kBranch &&
          (function.value(term.condition).is_constant() ||
           term.true_target == term.false_target)) {
        const bool taken = term.true_target == term.false_target ||
                           function.value(term.condition).ival != 0;
        term.kind = TerminatorKind::kJump;
        term.true_target = taken ? term.true_target : term.false_target;
        term.condition = kNoValue;
        term.false_target = kNoBlock;
        changed = true;
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> MakeConstantFoldPass() {
  return std::make_unique<ConstantFoldPass>();
}

}  // namespace kf::ir
