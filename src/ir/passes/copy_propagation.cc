#include "ir/passes.h"

namespace kf::ir {
namespace {

class CopyPropagationPass final : public Pass {
 public:
  const char* name() const override { return "copy-prop"; }

  bool Run(Function& function) override {
    bool changed = false;
    for (BlockId b = 0; b < function.block_count(); ++b) {
      auto& instructions = function.block(b).instructions;
      for (std::size_t i = 0; i < instructions.size();) {
        const Instruction& inst = instructions[i];
        if (inst.op == Opcode::kMov && !inst.is_guarded() && inst.has_dest() &&
            inst.operands.size() == 1) {
          const ValueId dest = inst.dest;
          const ValueId src = inst.operands[0];
          instructions.erase(instructions.begin() + static_cast<std::ptrdiff_t>(i));
          function.ReplaceAllUses(dest, src);
          changed = true;
          continue;  // re-examine the instruction now at position i
        }
        ++i;
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> MakeCopyPropagationPass() {
  return std::make_unique<CopyPropagationPass>();
}

}  // namespace kf::ir
