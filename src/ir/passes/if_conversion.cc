#include <unordered_map>
#include <vector>

#include "ir/passes.h"

namespace kf::ir {
namespace {

// Converts the triangle
//
//     B:  ... ; @c bra T else M
//     T:  <speculatable ops and stores> ; bra M
//     M:  ...
//
// (where B is T's only predecessor) into predicated straight-line code:
// T's pure ops are hoisted as-is, stores become "@c st" (existing guards are
// AND-ed with c), B falls through to M. Nested triangles converge over
// repeated runs of the pass. Unreachable blocks are then removed and
// straight-line chains merged.
class IfConversionPass final : public Pass {
 public:
  const char* name() const override { return "if-convert"; }

  bool Run(Function& function) override {
    bool changed = false;
    while (ConvertOneTriangle(function)) changed = true;
    if (CleanUpCfg(function)) changed = true;
    return changed;
  }

 private:
  static std::vector<int> CountPredecessors(const Function& function) {
    std::vector<int> preds(function.block_count(), 0);
    for (BlockId b = 0; b < function.block_count(); ++b) {
      const Terminator& term = function.block(b).terminator;
      if (term.kind == TerminatorKind::kJump) {
        ++preds[term.true_target];
      } else if (term.kind == TerminatorKind::kBranch) {
        ++preds[term.true_target];
        ++preds[term.false_target];
      }
    }
    return preds;
  }

  static bool ConvertOneTriangle(Function& function) {
    const std::vector<int> preds = CountPredecessors(function);
    for (BlockId b = 0; b < function.block_count(); ++b) {
      BasicBlock& head = function.block(b);
      if (head.terminator.kind != TerminatorKind::kBranch) continue;
      const BlockId then_id = head.terminator.true_target;
      const BlockId merge_id = head.terminator.false_target;
      if (then_id == b || then_id == merge_id) continue;
      BasicBlock& then_block = function.block(then_id);
      if (preds[then_id] != 1) continue;
      if (then_block.terminator.kind != TerminatorKind::kJump ||
          then_block.terminator.true_target != merge_id) {
        continue;
      }
      bool convertible = true;
      for (const Instruction& inst : then_block.instructions) {
        if (!IsSpeculatable(inst.op) && inst.op != Opcode::kSt) {
          convertible = false;
          break;
        }
      }
      if (!convertible) continue;

      const ValueId cond = head.terminator.condition;
      for (Instruction inst : then_block.instructions) {
        if (inst.op == Opcode::kSt) {
          if (inst.is_guarded()) {
            // @p st under "if (c)" becomes @(p && c) st.
            const ValueId combined = function.AddRegister(Type::kPred);
            Instruction conj;
            conj.op = Opcode::kAnd;
            conj.type = Type::kPred;
            conj.dest = combined;
            conj.operands = {inst.guard, cond};
            head.instructions.push_back(std::move(conj));
            inst.guard = combined;
          } else {
            inst.guard = cond;
          }
        }
        head.instructions.push_back(std::move(inst));
      }
      then_block.instructions.clear();
      head.terminator.kind = TerminatorKind::kJump;
      head.terminator.true_target = merge_id;
      head.terminator.condition = kNoValue;
      head.terminator.false_target = kNoBlock;
      return true;
    }
    return false;
  }

  // Removes unreachable blocks and merges single-predecessor jump chains,
  // rebuilding block ids, until a fixpoint.
  static bool CleanUpCfg(Function& function) {
    bool changed = false;
    bool progress = true;
    while (progress) {
      progress = false;
      if (CompactReachable(function)) {
        progress = true;
        changed = true;
      }
      if (MergeOneChain(function)) {
        progress = true;
        changed = true;
      }
    }
    return changed;
  }

  // Merges one straight-line chain B -> C where C has exactly one
  // predecessor (B). Returns true if a merge happened.
  static bool MergeOneChain(Function& function) {
    const std::vector<int> preds = CountPredecessors(function);
    for (BlockId b = 0; b < function.block_count(); ++b) {
      BasicBlock& bb = function.block(b);
      if (bb.terminator.kind != TerminatorKind::kJump) continue;
      const BlockId next = bb.terminator.true_target;
      if (next == b || preds[next] != 1) continue;
      BasicBlock& nb = function.block(next);
      bb.instructions.insert(bb.instructions.end(),
                             std::make_move_iterator(nb.instructions.begin()),
                             std::make_move_iterator(nb.instructions.end()));
      nb.instructions.clear();
      bb.terminator = nb.terminator;
      nb.terminator = Terminator{TerminatorKind::kRet, kNoValue, kNoBlock, kNoBlock};
      return true;
    }
    return false;
  }

  // Drops unreachable blocks (entry is block 0) and remaps targets.
  // Returns true if anything was removed.
  static bool CompactReachable(Function& function) {
    std::vector<bool> reachable(function.block_count(), false);
    std::vector<BlockId> worklist{0};
    reachable[0] = true;
    while (!worklist.empty()) {
      const BlockId b = worklist.back();
      worklist.pop_back();
      const Terminator& term = function.block(b).terminator;
      auto visit = [&](BlockId t) {
        if (t != kNoBlock && !reachable[t]) {
          reachable[t] = true;
          worklist.push_back(t);
        }
      };
      if (term.kind != TerminatorKind::kRet) visit(term.true_target);
      if (term.kind == TerminatorKind::kBranch) visit(term.false_target);
    }
    bool any_unreachable = false;
    for (BlockId b = 0; b < function.block_count(); ++b) {
      if (!reachable[b]) any_unreachable = true;
    }
    if (!any_unreachable) return false;

    Function compacted(function.name());
    // Values are shared by id; copy the value table verbatim.
    for (ValueId v = 0; v < function.value_count(); ++v) {
      // Reconstruct values in order (ids are stable across the copy).
      const ValueInfo& info = function.value(v);
      ValueId copied = kNoValue;
      switch (info.kind) {
        case ValueKind::kParam:
          copied = compacted.AddParam(info.type, info.name);
          break;
        case ValueKind::kConstant:
          copied = info.is_float() ? compacted.AddConstFloat(info.type, info.fval)
                                   : compacted.AddConstInt(info.type, info.ival);
          break;
        case ValueKind::kRegister:
          copied = compacted.AddRegister(info.type);
          break;
      }
      (void)copied;
    }
    std::unordered_map<BlockId, BlockId> remap;
    for (BlockId b = 0; b < function.block_count(); ++b) {
      if (reachable[b]) remap[b] = compacted.AddBlock(function.block(b).label);
    }
    for (BlockId b = 0; b < function.block_count(); ++b) {
      if (!reachable[b]) continue;
      BasicBlock& dst = compacted.block(remap[b]);
      dst.instructions = std::move(function.block(b).instructions);
      Terminator term = function.block(b).terminator;
      if (term.kind != TerminatorKind::kRet) term.true_target = remap.at(term.true_target);
      if (term.kind == TerminatorKind::kBranch) {
        term.false_target = remap.at(term.false_target);
      }
      dst.terminator = term;
    }
    function = std::move(compacted);
    return true;
  }
};

}  // namespace

std::unique_ptr<Pass> MakeIfConversionPass() {
  return std::make_unique<IfConversionPass>();
}

}  // namespace kf::ir
