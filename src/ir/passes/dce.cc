#include <unordered_set>

#include "ir/passes.h"

namespace kf::ir {
namespace {

class DeadCodeEliminationPass final : public Pass {
 public:
  const char* name() const override { return "dce"; }

  bool Run(Function& function) override {
    bool changed_any = false;
    bool changed = true;
    while (changed) {
      changed = false;
      std::unordered_set<ValueId> used;
      for (BlockId b = 0; b < function.block_count(); ++b) {
        const BasicBlock& bb = function.block(b);
        for (const Instruction& inst : bb.instructions) {
          for (ValueId v : inst.operands) used.insert(v);
          if (inst.is_guarded()) used.insert(inst.guard);
        }
        if (bb.terminator.kind == TerminatorKind::kBranch) {
          used.insert(bb.terminator.condition);
        }
      }
      for (BlockId b = 0; b < function.block_count(); ++b) {
        auto& instructions = function.block(b).instructions;
        for (std::size_t i = instructions.size(); i-- > 0;) {
          const Instruction& inst = instructions[i];
          if (inst.op == Opcode::kSt) continue;  // side effect
          if (inst.has_dest() && used.count(inst.dest) == 0) {
            instructions.erase(instructions.begin() + static_cast<std::ptrdiff_t>(i));
            changed = true;
            changed_any = true;
          }
        }
      }
    }
    return changed_any;
  }
};

}  // namespace

std::unique_ptr<Pass> MakeDeadCodeEliminationPass() {
  return std::make_unique<DeadCodeEliminationPass>();
}

}  // namespace kf::ir
