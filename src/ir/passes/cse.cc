#include <map>
#include <tuple>
#include <vector>

#include "ir/passes.h"

namespace kf::ir {
namespace {

// Block-local value numbering. Loads participate until any store is seen
// (stores conservatively kill all remembered loads — the staged kernels never
// alias their input and output slots, but the pass does not rely on that).
class CsePass final : public Pass {
 public:
  const char* name() const override { return "cse"; }

  bool Run(Function& function) override {
    bool changed = false;
    using Key = std::tuple<Opcode, Type, std::vector<ValueId>, ValueId>;
    for (BlockId b = 0; b < function.block_count(); ++b) {
      std::map<Key, ValueId> available;
      auto& instructions = function.block(b).instructions;
      for (std::size_t i = 0; i < instructions.size();) {
        Instruction& inst = instructions[i];
        if (inst.op == Opcode::kSt) {
          // Kill loads; pure ops stay valid across stores.
          for (auto it = available.begin(); it != available.end();) {
            if (std::get<0>(it->first) == Opcode::kLd) {
              it = available.erase(it);
            } else {
              ++it;
            }
          }
          ++i;
          continue;
        }
        if (!inst.has_dest()) {
          ++i;
          continue;
        }
        Key key{inst.op, inst.type, inst.operands, inst.guard};
        auto [it, inserted] = available.emplace(std::move(key), inst.dest);
        if (!inserted) {
          const ValueId dest = inst.dest;
          instructions.erase(instructions.begin() + static_cast<std::ptrdiff_t>(i));
          function.ReplaceAllUses(dest, it->second);
          changed = true;
          continue;
        }
        ++i;
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> MakeCsePass() { return std::make_unique<CsePass>(); }

}  // namespace kf::ir
