#include "ir/function.h"

#include <sstream>
#include <unordered_set>

#include "common/error.h"

namespace kf::ir {

const char* ToString(Type type) {
  switch (type) {
    case Type::kPred: return "pred";
    case Type::kI32: return "s32";
    case Type::kI64: return "s64";
    case Type::kF32: return "f32";
    case Type::kF64: return "f64";
    case Type::kPtr: return "ptr";
  }
  return "?";
}

const char* ToString(Opcode op) {
  switch (op) {
    case Opcode::kMov: return "mov";
    case Opcode::kLd: return "ld";
    case Opcode::kSt: return "st";
    case Opcode::kCvt: return "cvt";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kMad: return "mad";
    case Opcode::kMin: return "min";
    case Opcode::kMax: return "max";
    case Opcode::kSetLt: return "setp.lt";
    case Opcode::kSetLe: return "setp.le";
    case Opcode::kSetGt: return "setp.gt";
    case Opcode::kSetGe: return "setp.ge";
    case Opcode::kSetEq: return "setp.eq";
    case Opcode::kSetNe: return "setp.ne";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kNot: return "not";
    case Opcode::kSelp: return "selp";
  }
  return "?";
}

bool IsSpeculatable(Opcode op) {
  switch (op) {
    case Opcode::kSt:
      return false;
    case Opcode::kDiv:
      // Integer division faults on zero in real machines; keep it
      // non-speculatable so if-conversion stays honest.
      return false;
    default:
      return true;
  }
}

bool IsCompare(Opcode op) {
  switch (op) {
    case Opcode::kSetLt:
    case Opcode::kSetLe:
    case Opcode::kSetGt:
    case Opcode::kSetGe:
    case Opcode::kSetEq:
    case Opcode::kSetNe:
      return true;
    default:
      return false;
  }
}

ValueId Function::AddParam(Type type, std::string param_name) {
  ValueInfo info;
  info.type = type;
  info.kind = ValueKind::kParam;
  info.name = std::move(param_name);
  values_.push_back(std::move(info));
  return static_cast<ValueId>(values_.size() - 1);
}

ValueId Function::AddConstInt(Type type, std::int64_t v) {
  ValueInfo info;
  info.type = type;
  info.kind = ValueKind::kConstant;
  info.ival = v;
  values_.push_back(info);
  return static_cast<ValueId>(values_.size() - 1);
}

ValueId Function::AddConstFloat(Type type, double v) {
  ValueInfo info;
  info.type = type;
  info.kind = ValueKind::kConstant;
  info.fval = v;
  values_.push_back(info);
  return static_cast<ValueId>(values_.size() - 1);
}

ValueId Function::AddRegister(Type type) {
  ValueInfo info;
  info.type = type;
  info.kind = ValueKind::kRegister;
  values_.push_back(info);
  return static_cast<ValueId>(values_.size() - 1);
}

BlockId Function::AddBlock(std::string label) {
  BasicBlock bb;
  bb.label = std::move(label);
  blocks_.push_back(std::move(bb));
  return static_cast<BlockId>(blocks_.size() - 1);
}

std::size_t Function::InstructionCount() const {
  std::size_t count = 0;
  for (BlockId b = 0; b < blocks_.size(); ++b) {
    const BasicBlock& bb = blocks_[b];
    count += bb.instructions.size();
    switch (bb.terminator.kind) {
      case TerminatorKind::kRet:
        count += 1;
        break;
      case TerminatorKind::kBranch:
        count += 1;
        break;
      case TerminatorKind::kJump:
        // Fallthrough to the next block is free; a real jump costs one.
        if (bb.terminator.true_target != b + 1) count += 1;
        break;
    }
  }
  return count;
}

void Function::Verify() const {
  std::unordered_set<ValueId> defined;
  for (ValueId v = 0; v < values_.size(); ++v) {
    if (values_[v].kind != ValueKind::kRegister) defined.insert(v);
  }
  // First pass: record all register definitions, checking single assignment.
  for (const BasicBlock& bb : blocks_) {
    for (const Instruction& inst : bb.instructions) {
      if (inst.has_dest()) {
        KF_REQUIRE(inst.dest < values_.size())
            << name_ << ": destination id out of range";
        KF_REQUIRE(values_[inst.dest].kind == ValueKind::kRegister)
            << name_ << ": instruction writes a non-register value";
        KF_REQUIRE(defined.insert(inst.dest).second)
            << name_ << ": value %" << inst.dest << " defined twice";
      }
    }
  }
  auto check_use = [&](ValueId v, const char* what) {
    KF_REQUIRE(v < values_.size()) << name_ << ": " << what << " id out of range";
    KF_REQUIRE(defined.count(v) != 0)
        << name_ << ": use of undefined value %" << v << " as " << what;
  };
  for (const BasicBlock& bb : blocks_) {
    for (const Instruction& inst : bb.instructions) {
      for (ValueId v : inst.operands) check_use(v, "operand");
      if (inst.is_guarded()) {
        check_use(inst.guard, "guard");
        KF_REQUIRE(values_[inst.guard].type == Type::kPred)
            << name_ << ": guard is not a predicate";
      }
      if (inst.op == Opcode::kSt) {
        KF_REQUIRE(inst.operands.size() == 2) << name_ << ": st needs slot+value";
        KF_REQUIRE(!inst.has_dest()) << name_ << ": st has a destination";
      }
    }
    const Terminator& term = bb.terminator;
    if (term.kind == TerminatorKind::kBranch) {
      check_use(term.condition, "branch condition");
      KF_REQUIRE(term.true_target < blocks_.size() && term.false_target < blocks_.size())
          << name_ << ": branch target out of range";
    } else if (term.kind == TerminatorKind::kJump) {
      KF_REQUIRE(term.true_target < blocks_.size())
          << name_ << ": jump target out of range";
    }
  }
}

void Function::ReplaceAllUses(ValueId from, ValueId to) {
  for (BasicBlock& bb : blocks_) {
    for (Instruction& inst : bb.instructions) {
      for (ValueId& v : inst.operands) {
        if (v == from) v = to;
      }
      if (inst.guard == from) inst.guard = to;
    }
    if (bb.terminator.condition == from) bb.terminator.condition = to;
  }
}

std::string Function::ToString() const {
  std::ostringstream os;
  os << ".func " << name_ << " {\n";
  auto value_name = [&](ValueId v) {
    const ValueInfo& info = values_[v];
    std::ostringstream vs;
    if (info.kind == ValueKind::kConstant) {
      if (info.is_float()) {
        vs << info.fval;
      } else {
        vs << info.ival;
      }
    } else if (!info.name.empty()) {
      vs << "%" << info.name;
    } else {
      vs << "%r" << v;
    }
    return vs.str();
  };
  for (BlockId b = 0; b < blocks_.size(); ++b) {
    const BasicBlock& bb = blocks_[b];
    os << bb.label << ":\n";
    for (const Instruction& inst : bb.instructions) {
      os << "  ";
      if (inst.is_guarded()) os << "@" << value_name(inst.guard) << " ";
      os << kf::ir::ToString(inst.op) << "." << kf::ir::ToString(inst.type);
      if (inst.has_dest()) os << " " << value_name(inst.dest) << ",";
      for (std::size_t i = 0; i < inst.operands.size(); ++i) {
        os << " " << value_name(inst.operands[i]);
        if (i + 1 < inst.operands.size()) os << ",";
      }
      os << ";\n";
    }
    const Terminator& term = bb.terminator;
    switch (term.kind) {
      case TerminatorKind::kRet:
        os << "  ret;\n";
        break;
      case TerminatorKind::kJump:
        os << "  bra " << blocks_[term.true_target].label << ";\n";
        break;
      case TerminatorKind::kBranch:
        os << "  @" << value_name(term.condition) << " bra "
           << blocks_[term.true_target].label << "; else bra "
           << blocks_[term.false_target].label << ";\n";
        break;
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace kf::ir
