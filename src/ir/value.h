// Values and types of the mini kernel IR.
//
// The IR is a deliberately small PTX-flavored SSA form: enough to express the
// bodies of staged relational kernels (loads, compares, predicated stores,
// arithmetic) so that the effect of kernel fusion on the compiler's
// optimization scope (paper Table III) can be measured with a real — if
// compact — optimizer instead of being asserted.
#ifndef KF_IR_VALUE_H_
#define KF_IR_VALUE_H_

#include <cstdint>
#include <string>

namespace kf::ir {

using ValueId = std::uint32_t;
inline constexpr ValueId kNoValue = 0xffffffffu;

enum class Type : std::uint8_t {
  kPred,  // 1-bit predicate register
  kI32,
  kI64,
  kF32,
  kF64,
  kPtr,  // memory slot handle (kernel parameter)
};

const char* ToString(Type type);

// What a ValueId denotes.
enum class ValueKind : std::uint8_t {
  kRegister,  // defined by an instruction
  kConstant,  // immediate
  kParam,     // kernel parameter (incl. memory slots and the thread index)
};

struct ValueInfo {
  Type type = Type::kI32;
  ValueKind kind = ValueKind::kRegister;
  // Constant payload (integers stored in `ival`, floats in `fval`).
  std::int64_t ival = 0;
  double fval = 0.0;
  std::string name;  // for parameters and debugging

  bool is_constant() const { return kind == ValueKind::kConstant; }
  bool is_float() const { return type == Type::kF32 || type == Type::kF64; }
  double as_double() const { return is_float() ? fval : static_cast<double>(ival); }
};

}  // namespace kf::ir

#endif  // KF_IR_VALUE_H_
