#include "ir/builder.h"

#include "common/error.h"

namespace kf::ir {

Instruction& IrBuilder::Emit(Instruction inst) {
  KF_REQUIRE(block_ != kNoBlock) << "no insertion block set";
  auto& instructions = function_.block(block_).instructions;
  instructions.push_back(std::move(inst));
  return instructions.back();
}

ValueId IrBuilder::Use(ValueId v, Type type) {
  if (materialize_constants_ && function_.value(v).is_constant()) {
    const ValueId reg = function_.AddRegister(type);
    Instruction mov;
    mov.op = Opcode::kMov;
    mov.type = type;
    mov.dest = reg;
    mov.operands = {v};
    Emit(std::move(mov));
    return reg;
  }
  return v;
}

ValueId IrBuilder::Load(Type type, ValueId slot) {
  const ValueId dest = function_.AddRegister(type);
  Instruction inst;
  inst.op = Opcode::kLd;
  inst.type = type;
  inst.dest = dest;
  inst.operands = {slot};
  Emit(std::move(inst));
  return dest;
}

void IrBuilder::Store(ValueId slot, ValueId value, ValueId guard) {
  Instruction inst;
  inst.op = Opcode::kSt;
  inst.type = function_.value(value).type;
  inst.operands = {slot, value};
  inst.guard = guard;
  Emit(std::move(inst));
}

ValueId IrBuilder::Mov(Type type, ValueId src) {
  const ValueId dest = function_.AddRegister(type);
  Instruction inst;
  inst.op = Opcode::kMov;
  inst.type = type;
  inst.dest = dest;
  inst.operands = {src};
  Emit(std::move(inst));
  return dest;
}

ValueId IrBuilder::Binary(Opcode op, Type type, ValueId lhs, ValueId rhs) {
  const ValueId dest = function_.AddRegister(type);
  Instruction inst;
  inst.op = op;
  inst.type = type;
  inst.dest = dest;
  inst.operands = {Use(lhs, type), Use(rhs, type)};
  Emit(std::move(inst));
  return dest;
}

ValueId IrBuilder::Mad(Type type, ValueId a, ValueId b, ValueId c) {
  const ValueId dest = function_.AddRegister(type);
  Instruction inst;
  inst.op = Opcode::kMad;
  inst.type = type;
  inst.dest = dest;
  inst.operands = {Use(a, type), Use(b, type), Use(c, type)};
  Emit(std::move(inst));
  return dest;
}

ValueId IrBuilder::Compare(Opcode op, ValueId lhs, ValueId rhs) {
  KF_REQUIRE(IsCompare(op)) << "Compare() called with non-compare opcode";
  const Type operand_type = function_.value(lhs).type;
  const ValueId dest = function_.AddRegister(Type::kPred);
  Instruction inst;
  inst.op = op;
  inst.type = operand_type;
  inst.dest = dest;
  inst.operands = {Use(lhs, operand_type), Use(rhs, operand_type)};
  Emit(std::move(inst));
  return dest;
}

ValueId IrBuilder::Select(Type type, ValueId pred, ValueId if_true, ValueId if_false) {
  const ValueId dest = function_.AddRegister(type);
  Instruction inst;
  inst.op = Opcode::kSelp;
  inst.type = type;
  inst.dest = dest;
  inst.operands = {pred, Use(if_true, type), Use(if_false, type)};
  Emit(std::move(inst));
  return dest;
}

ValueId IrBuilder::NotOf(ValueId pred) {
  const ValueId dest = function_.AddRegister(Type::kPred);
  Instruction inst;
  inst.op = Opcode::kNot;
  inst.type = Type::kPred;
  inst.dest = dest;
  inst.operands = {pred};
  Emit(std::move(inst));
  return dest;
}

void IrBuilder::Jump(BlockId target) {
  KF_REQUIRE(block_ != kNoBlock) << "no insertion block set";
  Terminator term;
  term.kind = TerminatorKind::kJump;
  term.true_target = target;
  function_.block(block_).terminator = term;
}

void IrBuilder::Branch(ValueId condition, BlockId if_true, BlockId if_false) {
  KF_REQUIRE(block_ != kNoBlock) << "no insertion block set";
  Terminator term;
  term.kind = TerminatorKind::kBranch;
  term.condition = condition;
  term.true_target = if_true;
  term.false_target = if_false;
  function_.block(block_).terminator = term;
}

void IrBuilder::Ret() {
  KF_REQUIRE(block_ != kNoBlock) << "no insertion block set";
  Terminator term;
  term.kind = TerminatorKind::kRet;
  function_.block(block_).terminator = term;
}

}  // namespace kf::ir
