// Convenience builder for the mini kernel IR.
//
// Tracks a current insertion block and provides typed emit helpers. The
// `materialize_constants` knob mimics an -O0 code generator that loads every
// immediate into a register with `mov` before use (as unoptimized compilers
// do); with it off, constants are used as immediates directly.
#ifndef KF_IR_BUILDER_H_
#define KF_IR_BUILDER_H_

#include <string>

#include "ir/function.h"

namespace kf::ir {

class IrBuilder {
 public:
  explicit IrBuilder(Function& function, bool materialize_constants = false)
      : function_(function), materialize_constants_(materialize_constants) {}

  Function& function() { return function_; }

  BlockId CreateBlock(std::string label) { return function_.AddBlock(std::move(label)); }
  void SetInsertBlock(BlockId block) { block_ = block; }
  BlockId insert_block() const { return block_; }

  ValueId Load(Type type, ValueId slot);
  void Store(ValueId slot, ValueId value, ValueId guard = kNoValue);
  ValueId Mov(Type type, ValueId src);
  ValueId Binary(Opcode op, Type type, ValueId lhs, ValueId rhs);
  ValueId Mad(Type type, ValueId a, ValueId b, ValueId c);
  ValueId Compare(Opcode op, ValueId lhs, ValueId rhs);
  ValueId Select(Type type, ValueId pred, ValueId if_true, ValueId if_false);
  ValueId NotOf(ValueId pred);

  void Jump(BlockId target);
  void Branch(ValueId condition, BlockId if_true, BlockId if_false);
  void Ret();

 private:
  // Applies the -O0 constant-materialization behaviour.
  ValueId Use(ValueId v, Type type);
  Instruction& Emit(Instruction inst);

  Function& function_;
  bool materialize_constants_;
  BlockId block_ = kNoBlock;
};

}  // namespace kf::ir

#endif  // KF_IR_BUILDER_H_
