// Functions and basic blocks of the mini kernel IR.
//
// Control flow is structured: codegen only emits nested if-then (triangle)
// regions, so blocks are kept in a topological order and terminators are
// either a conditional branch, an unconditional jump, or a return. A jump to
// the lexically next block is a *fallthrough* and is not counted as an
// instruction (matching how one reads straight-line PTX).
#ifndef KF_IR_FUNCTION_H_
#define KF_IR_FUNCTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ir/instruction.h"
#include "ir/value.h"

namespace kf::ir {

using BlockId = std::uint32_t;
inline constexpr BlockId kNoBlock = 0xffffffffu;

enum class TerminatorKind : std::uint8_t { kJump, kBranch, kRet };

struct Terminator {
  TerminatorKind kind = TerminatorKind::kRet;
  ValueId condition = kNoValue;   // kBranch only
  BlockId true_target = kNoBlock;
  BlockId false_target = kNoBlock;  // kBranch only
};

struct BasicBlock {
  std::string label;
  std::vector<Instruction> instructions;
  Terminator terminator;
};

class Function {
 public:
  explicit Function(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- Values ---------------------------------------------------------------
  ValueId AddParam(Type type, std::string param_name);
  ValueId AddConstInt(Type type, std::int64_t value);
  ValueId AddConstFloat(Type type, double value);
  ValueId AddRegister(Type type);

  const ValueInfo& value(ValueId id) const { return values_.at(id); }
  ValueInfo& value(ValueId id) { return values_.at(id); }
  std::size_t value_count() const { return values_.size(); }

  // --- Blocks ---------------------------------------------------------------
  BlockId AddBlock(std::string label);
  BasicBlock& block(BlockId id) { return blocks_.at(id); }
  const BasicBlock& block(BlockId id) const { return blocks_.at(id); }
  std::size_t block_count() const { return blocks_.size(); }

  // --- Analysis / reporting --------------------------------------------------
  // Counts executable instructions: block bodies, conditional branches, and
  // returns. Jumps to the next block (fallthroughs) are free; other jumps
  // count as one instruction.
  std::size_t InstructionCount() const;

  // Structural well-formedness: operand ids valid, branch targets valid,
  // destinations defined once, uses reachable. Throws kf::Error on failure.
  void Verify() const;

  // PTX-flavored textual dump.
  std::string ToString() const;

  // Replace every use of `from` (operands and guards) with `to`.
  void ReplaceAllUses(ValueId from, ValueId to);

 private:
  std::string name_;
  std::vector<ValueInfo> values_;
  std::vector<BasicBlock> blocks_;
};

}  // namespace kf::ir

#endif  // KF_IR_FUNCTION_H_
