#include "ir/interpreter.h"

#include <cmath>
#include <vector>

#include "common/error.h"

namespace kf::ir {

namespace {

// Runtime value: integers (incl. predicates) in `i`, floats in `f`.
struct RuntimeValue {
  std::int64_t i = 0;
  double f = 0.0;
  bool is_float = false;

  double as_double() const { return is_float ? f : static_cast<double>(i); }
  std::int64_t as_int() const { return is_float ? static_cast<std::int64_t>(f) : i; }
  bool truthy() const { return is_float ? f != 0.0 : i != 0; }
};

RuntimeValue FromInt(std::int64_t v) { return RuntimeValue{v, 0.0, false}; }
RuntimeValue FromFloat(double v) { return RuntimeValue{0, v, true}; }

// Two's-complement wrapping arithmetic (defined behaviour on overflow, like
// the hardware the IR models).
std::int64_t WrapAdd(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
std::int64_t WrapSub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}
std::int64_t WrapMul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}

bool IsFloatType(Type t) { return t == Type::kF32 || t == Type::kF64; }

}  // namespace

InterpreterResult Interpret(const Function& function, const SlotState& initial,
                            std::size_t max_steps) {
  InterpreterResult result;
  result.slots = initial;

  std::vector<RuntimeValue> values(function.value_count());
  std::vector<bool> defined(function.value_count(), false);
  for (ValueId v = 0; v < function.value_count(); ++v) {
    const ValueInfo& info = function.value(v);
    if (info.kind == ValueKind::kConstant) {
      values[v] = info.is_float() ? FromFloat(info.fval) : FromInt(info.ival);
      defined[v] = true;
    } else if (info.kind == ValueKind::kParam && info.type != Type::kPtr) {
      values[v] = FromInt(info.ival);
      defined[v] = true;
    } else if (info.kind == ValueKind::kParam) {
      defined[v] = true;  // slot handle; value unused
    }
  }

  auto slot_name = [&](ValueId v) -> const std::string& {
    const ValueInfo& info = function.value(v);
    KF_REQUIRE(info.kind == ValueKind::kParam && info.type == Type::kPtr)
        << function.name() << ": memory operand is not a slot parameter";
    return info.name;
  };
  auto use = [&](ValueId v) -> const RuntimeValue& {
    KF_REQUIRE(defined[v]) << function.name() << ": use of undefined %" << v;
    return values[v];
  };

  KF_REQUIRE(function.block_count() > 0) << function.name() << ": no blocks";
  BlockId block = 0;
  std::size_t steps = 0;
  for (;;) {
    const BasicBlock& bb = function.block(block);
    for (const Instruction& inst : bb.instructions) {
      KF_REQUIRE(++steps <= max_steps)
          << function.name() << ": exceeded " << max_steps << " steps";
      ++result.dynamic_instructions;
      if (inst.is_guarded() && !use(inst.guard).truthy()) continue;

      const bool float_op = IsFloatType(inst.type);
      auto binary = [&](auto int_fn, auto float_fn) {
        const RuntimeValue& a = use(inst.operands[0]);
        const RuntimeValue& b = use(inst.operands[1]);
        if (float_op || a.is_float || b.is_float) {
          return FromFloat(float_fn(a.as_double(), b.as_double()));
        }
        return FromInt(int_fn(a.i, b.i));
      };
      auto compare = [&](auto predicate) {
        const RuntimeValue& a = use(inst.operands[0]);
        const RuntimeValue& b = use(inst.operands[1]);
        const bool truth = (a.is_float || b.is_float)
                               ? predicate(a.as_double(), b.as_double())
                               : predicate(a.i, b.i);
        return FromInt(truth ? 1 : 0);
      };

      RuntimeValue out;
      bool writes = true;
      switch (inst.op) {
        case Opcode::kMov:
        case Opcode::kCvt:
          out = use(inst.operands[0]);
          break;
        case Opcode::kLd: {
          const std::string& name = slot_name(inst.operands[0]);
          if (float_op) {
            auto it = result.slots.floats.find(name);
            out = FromFloat(it == result.slots.floats.end() ? 0.0 : it->second);
          } else {
            auto it = result.slots.ints.find(name);
            out = FromInt(it == result.slots.ints.end() ? 0 : it->second);
          }
          break;
        }
        case Opcode::kSt: {
          const std::string& name = slot_name(inst.operands[0]);
          const RuntimeValue& v = use(inst.operands[1]);
          if (v.is_float || float_op) {
            result.slots.floats[name] = v.as_double();
          } else {
            result.slots.ints[name] = v.i;
          }
          writes = false;
          break;
        }
        case Opcode::kAdd:
          out = binary([](auto a, auto b) { return WrapAdd(a, b); },
                       [](double a, double b) { return a + b; });
          break;
        case Opcode::kSub:
          out = binary([](auto a, auto b) { return WrapSub(a, b); },
                       [](double a, double b) { return a - b; });
          break;
        case Opcode::kMul:
          out = binary([](auto a, auto b) { return WrapMul(a, b); },
                       [](double a, double b) { return a * b; });
          break;
        case Opcode::kDiv: {
          const RuntimeValue& b = use(inst.operands[1]);
          KF_REQUIRE(b.is_float || b.i != 0)
              << function.name() << ": integer division by zero";
          out = binary([](auto lhs, auto rhs) { return lhs / rhs; },
                       [](double lhs, double rhs) { return lhs / rhs; });
          break;
        }
        case Opcode::kMad: {
          const RuntimeValue& a = use(inst.operands[0]);
          const RuntimeValue& b = use(inst.operands[1]);
          const RuntimeValue& c = use(inst.operands[2]);
          if (float_op || a.is_float || b.is_float || c.is_float) {
            out = FromFloat(a.as_double() * b.as_double() + c.as_double());
          } else {
            out = FromInt(WrapAdd(WrapMul(a.i, b.i), c.i));
          }
          break;
        }
        case Opcode::kMin:
          out = binary([](auto a, auto b) { return std::min(a, b); },
                       [](double a, double b) { return std::min(a, b); });
          break;
        case Opcode::kMax:
          out = binary([](auto a, auto b) { return std::max(a, b); },
                       [](double a, double b) { return std::max(a, b); });
          break;
        case Opcode::kSetLt:
          out = compare([](auto a, auto b) { return a < b; });
          break;
        case Opcode::kSetLe:
          out = compare([](auto a, auto b) { return a <= b; });
          break;
        case Opcode::kSetGt:
          out = compare([](auto a, auto b) { return a > b; });
          break;
        case Opcode::kSetGe:
          out = compare([](auto a, auto b) { return a >= b; });
          break;
        case Opcode::kSetEq:
          out = compare([](auto a, auto b) { return a == b; });
          break;
        case Opcode::kSetNe:
          out = compare([](auto a, auto b) { return a != b; });
          break;
        case Opcode::kAnd:
          out = FromInt(use(inst.operands[0]).truthy() && use(inst.operands[1]).truthy()
                            ? 1 : 0);
          break;
        case Opcode::kOr:
          out = FromInt(use(inst.operands[0]).truthy() || use(inst.operands[1]).truthy()
                            ? 1 : 0);
          break;
        case Opcode::kXor:
          out = FromInt(use(inst.operands[0]).truthy() != use(inst.operands[1]).truthy()
                            ? 1 : 0);
          break;
        case Opcode::kNot:
          out = FromInt(use(inst.operands[0]).truthy() ? 0 : 1);
          break;
        case Opcode::kSelp:
          out = use(inst.operands[0]).truthy() ? use(inst.operands[1])
                                               : use(inst.operands[2]);
          break;
      }
      if (writes && inst.has_dest()) {
        values[inst.dest] = out;
        defined[inst.dest] = true;
      }
    }

    const Terminator& term = bb.terminator;
    if (term.kind == TerminatorKind::kRet) {
      ++result.dynamic_instructions;
      return result;
    }
    KF_REQUIRE(++steps <= max_steps)
        << function.name() << ": exceeded " << max_steps << " steps";
    if (term.kind == TerminatorKind::kJump) {
      if (term.true_target != block + 1) ++result.dynamic_instructions;
      block = term.true_target;
    } else {
      ++result.dynamic_instructions;
      block = use(term.condition).truthy() ? term.true_target : term.false_target;
    }
  }
}

}  // namespace kf::ir
