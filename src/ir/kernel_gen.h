// Generators producing mini-IR kernel bodies for the paper's code examples.
//
// These model what a straightforward (-O0-style) CUDA-C-to-PTX translation of
// the filter stage of the staged SELECT operator looks like, before and after
// kernel fusion. The Table III experiment runs the optimizer pipeline over
// these bodies and counts instructions.
//
// Conventions mirroring an unoptimized compiler:
//   * every constant is materialized into a register with `mov` before use;
//   * each original kernel loads its input from a memory slot and stores its
//     output to a memory slot;
//   * fusion replaces the intermediate slot round trip with a register copy
//     (`mov`), exactly what the paper's source-level fusion does — the fused
//     body is NOT hand-optimized (paper Section I).
#ifndef KF_IR_KERNEL_GEN_H_
#define KF_IR_KERNEL_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.h"

namespace kf::ir {

enum class CompareKind { kLt, kLe, kGt, kGe, kEq, kNe };

Opcode ToOpcode(CompareKind kind);

struct FilterStep {
  CompareKind compare = CompareKind::kLt;
  std::int64_t threshold = 0;
};

// A single SELECT filter body:  d = in[i]; if (d <op> T) out[i] = d.
Function BuildSelectKernel(const std::string& name, const FilterStep& step);

// The unoptimized fusion of a chain of SELECT filters: the kernels' bodies
// concatenated, with each intermediate slot replaced by a register `mov`
// and each later body guarded by the earlier predicates (nested triangles).
Function BuildFusedSelectKernel(const std::string& name,
                                const std::vector<FilterStep>& steps);

// Figure 5's example: kernel A adds two arrays, kernel B subtracts a third.
// `BuildArithKernelA/B` are the separate kernels (B loads A's result from a
// temporary slot); `BuildFusedArithKernel` is their unoptimized fusion.
Function BuildArithKernelA(const std::string& name);
Function BuildArithKernelB(const std::string& name);
Function BuildFusedArithKernel(const std::string& name);

}  // namespace kf::ir

#endif  // KF_IR_KERNEL_GEN_H_
