// Liveness analysis and register-pressure measurement for the mini IR.
//
// The fusion planner guards cluster growth with an *estimated* per-thread
// register demand (core/dependence). This analysis computes the real
// maximum number of simultaneously-live register values of a generated
// kernel body, so tests can hold the estimate against ground truth and the
// register-pressure ablation can show the pressure growth of deeper fusion.
#ifndef KF_IR_LIVENESS_H_
#define KF_IR_LIVENESS_H_

#include <vector>

#include "ir/function.h"

namespace kf::ir {

struct LivenessInfo {
  // Per block: values live on entry / exit (register values only).
  std::vector<std::vector<ValueId>> live_in;
  std::vector<std::vector<ValueId>> live_out;
  // Maximum number of simultaneously live registers anywhere in the function.
  int max_pressure = 0;
};

// Classic backward dataflow liveness over the CFG, to a fixpoint.
LivenessInfo AnalyzeLiveness(const Function& function);

// Convenience: just the peak register pressure.
int MaxRegisterPressure(const Function& function);

}  // namespace kf::ir

#endif  // KF_IR_LIVENESS_H_
