// Reference interpreter for the mini kernel IR.
//
// Executes one kernel body over one element's worth of slot state, exactly
// like a single GPU thread would. Its purpose is verification: the optimizer
// pipeline must be semantics-preserving, so tests run every kernel at -O0
// and -O3 over randomized inputs and require identical final slot states.
#ifndef KF_IR_INTERPRETER_H_
#define KF_IR_INTERPRETER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "ir/function.h"

namespace kf::ir {

// Memory visible to one kernel invocation: one scalar cell per kPtr
// parameter, addressed by parameter name.
struct SlotState {
  std::map<std::string, std::int64_t> ints;
  std::map<std::string, double> floats;

  friend bool operator==(const SlotState&, const SlotState&) = default;
};

struct InterpreterResult {
  SlotState slots;
  // Dynamic instruction count (executed instructions incl. taken branches) —
  // lets tests assert that optimization reduces *executed* work too.
  std::size_t dynamic_instructions = 0;
};

// Runs `function` against the initial slot state. Unwritten slots keep
// their initial values; loads from slots absent in `initial` read 0.
// Throws kf::Error on malformed IR (bad block order, infinite loops beyond
// `max_steps`, type confusion).
InterpreterResult Interpret(const Function& function, const SlotState& initial,
                            std::size_t max_steps = 10000);

}  // namespace kf::ir

#endif  // KF_IR_INTERPRETER_H_
