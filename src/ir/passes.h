// Optimization passes over the mini kernel IR.
//
// The pipeline is a compact model of what `nvcc -O3` does to kernel bodies,
// sufficient to reproduce the mechanism behind paper Table III: after kernel
// fusion the optimizer sees both filter bodies at once, so if-conversion,
// predicate combining, CSE, and DCE collapse the fused body far below the
// sum of the separately-optimized kernels.
#ifndef KF_IR_PASSES_H_
#define KF_IR_PASSES_H_

#include <memory>
#include <vector>

#include "ir/function.h"

namespace kf::ir {

class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  // Returns true if the function was modified.
  virtual bool Run(Function& function) = 0;
};

// Removes instructions whose results are never used (stores are kept).
std::unique_ptr<Pass> MakeDeadCodeEliminationPass();
// Forwards `mov` sources into uses and deletes the movs.
std::unique_ptr<Pass> MakeCopyPropagationPass();
// Evaluates operations whose operands are all constants.
std::unique_ptr<Pass> MakeConstantFoldPass();
// Block-local common-subexpression elimination (value numbering).
std::unique_ptr<Pass> MakeCsePass();
// Converts single-predecessor if-then triangles into predicated straight-line
// code (PTX "@p st"), removing branches and unreachable blocks.
std::unique_ptr<Pass> MakeIfConversionPass();
// Rewrites and/or of comparisons of one value against constants into a single
// comparison against the tighter bound (e.g. d<5 && d<3  =>  d<3).
std::unique_ptr<Pass> MakePredicateCombinePass();
// Algebraic identities: x+0, x*1, p&&p, selp(p,a,a), not(not(x)), ...
std::unique_ptr<Pass> MakePeepholePass();

class PassManager {
 public:
  void Add(std::unique_ptr<Pass> pass) { passes_.push_back(std::move(pass)); }

  // Runs the pipeline repeatedly until a fixpoint (bounded), verifying the
  // function after every pass. Returns the number of full iterations.
  int RunToFixpoint(Function& function, int max_iterations = 10);

  // The standard -O3-like pipeline.
  static PassManager StandardO3();

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

// Convenience: run the standard pipeline on `function`.
void OptimizeO3(Function& function);

}  // namespace kf::ir

#endif  // KF_IR_PASSES_H_
