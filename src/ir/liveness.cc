#include "ir/liveness.h"

#include <algorithm>
#include <set>

namespace kf::ir {

namespace {

bool IsRegister(const Function& f, ValueId v) {
  return f.value(v).kind == ValueKind::kRegister;
}

void UseValue(const Function& f, std::set<ValueId>& live, ValueId v) {
  if (v != kNoValue && IsRegister(f, v)) live.insert(v);
}

}  // namespace

LivenessInfo AnalyzeLiveness(const Function& function) {
  const std::size_t blocks = function.block_count();
  std::vector<std::set<ValueId>> live_in(blocks), live_out(blocks);

  // Successors per block.
  auto successors = [&](BlockId b) {
    std::vector<BlockId> succ;
    const Terminator& term = function.block(b).terminator;
    if (term.kind != TerminatorKind::kRet) succ.push_back(term.true_target);
    if (term.kind == TerminatorKind::kBranch) succ.push_back(term.false_target);
    return succ;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b = blocks; b-- > 0;) {
      std::set<ValueId> out;
      for (BlockId s : successors(b)) {
        out.insert(live_in[s].begin(), live_in[s].end());
      }
      std::set<ValueId> in = out;
      const BasicBlock& bb = function.block(b);
      UseValue(function, in, bb.terminator.condition);
      for (std::size_t i = bb.instructions.size(); i-- > 0;) {
        const Instruction& inst = bb.instructions[i];
        if (inst.has_dest()) in.erase(inst.dest);
        for (ValueId v : inst.operands) UseValue(function, in, v);
        UseValue(function, in, inst.guard);
      }
      if (in != live_in[b] || out != live_out[b]) {
        live_in[b] = std::move(in);
        live_out[b] = std::move(out);
        changed = true;
      }
    }
  }

  LivenessInfo info;
  info.live_in.resize(blocks);
  info.live_out.resize(blocks);
  for (BlockId b = 0; b < blocks; ++b) {
    info.live_in[b].assign(live_in[b].begin(), live_in[b].end());
    info.live_out[b].assign(live_out[b].begin(), live_out[b].end());
  }

  // Peak pressure: walk each block backward from its live-out set.
  int max_pressure = 0;
  for (BlockId b = 0; b < blocks; ++b) {
    std::set<ValueId> live = live_out[b];
    const BasicBlock& bb = function.block(b);
    UseValue(function, live, bb.terminator.condition);
    max_pressure = std::max(max_pressure, static_cast<int>(live.size()));
    for (std::size_t i = bb.instructions.size(); i-- > 0;) {
      const Instruction& inst = bb.instructions[i];
      if (inst.has_dest()) live.erase(inst.dest);
      for (ValueId v : inst.operands) UseValue(function, live, v);
      UseValue(function, live, inst.guard);
      max_pressure = std::max(max_pressure, static_cast<int>(live.size()));
    }
  }
  info.max_pressure = max_pressure;
  return info;
}

int MaxRegisterPressure(const Function& function) {
  return AnalyzeLiveness(function).max_pressure;
}

}  // namespace kf::ir
