#include "ir/kernel_gen.h"

#include "common/error.h"
#include "ir/builder.h"

namespace kf::ir {

Opcode ToOpcode(CompareKind kind) {
  switch (kind) {
    case CompareKind::kLt: return Opcode::kSetLt;
    case CompareKind::kLe: return Opcode::kSetLe;
    case CompareKind::kGt: return Opcode::kSetGt;
    case CompareKind::kGe: return Opcode::kSetGe;
    case CompareKind::kEq: return Opcode::kSetEq;
    case CompareKind::kNe: return Opcode::kSetNe;
  }
  return Opcode::kSetLt;
}

Function BuildSelectKernel(const std::string& name, const FilterStep& step) {
  Function function(name);
  IrBuilder builder(function, /*materialize_constants=*/true);
  const ValueId in_slot = function.AddParam(Type::kPtr, "in");
  const ValueId out_slot = function.AddParam(Type::kPtr, "out");
  const ValueId threshold = function.AddConstInt(Type::kI32, step.threshold);

  const BlockId entry = builder.CreateBlock("entry");
  const BlockId then_block = builder.CreateBlock("matched");
  const BlockId exit = builder.CreateBlock("exit");

  builder.SetInsertBlock(entry);
  const ValueId d = builder.Load(Type::kI32, in_slot);
  const ValueId pred = builder.Compare(ToOpcode(step.compare), d, threshold);
  builder.Branch(pred, then_block, exit);

  builder.SetInsertBlock(then_block);
  builder.Store(out_slot, d);
  builder.Jump(exit);

  builder.SetInsertBlock(exit);
  builder.Ret();

  function.Verify();
  return function;
}

Function BuildFusedSelectKernel(const std::string& name,
                                const std::vector<FilterStep>& steps) {
  KF_REQUIRE(!steps.empty()) << "fused select needs at least one step";
  Function function(name);
  IrBuilder builder(function, /*materialize_constants=*/true);
  const ValueId in_slot = function.AddParam(Type::kPtr, "in");
  const ValueId out_slot = function.AddParam(Type::kPtr, "out");

  // One nested triangle per filter; the innermost block stores the element.
  const BlockId entry = builder.CreateBlock("entry");
  std::vector<BlockId> level_blocks;
  for (std::size_t i = 1; i < steps.size(); ++i) {
    level_blocks.push_back(builder.CreateBlock("pass" + std::to_string(i)));
  }
  const BlockId store_block = builder.CreateBlock("matched");
  const BlockId exit = builder.CreateBlock("exit");

  builder.SetInsertBlock(entry);
  ValueId current = builder.Load(Type::kI32, in_slot);
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const ValueId threshold = function.AddConstInt(Type::kI32, steps[i].threshold);
    const ValueId pred = builder.Compare(ToOpcode(steps[i].compare), current, threshold);
    const BlockId next = i + 1 < steps.size() ? level_blocks[i] : store_block;
    builder.Branch(pred, next, exit);
    builder.SetInsertBlock(next);
    if (i + 1 < steps.size()) {
      // The downstream kernel's "load of the intermediate" became a register
      // copy during fusion — unoptimized fusion keeps the mov.
      current = builder.Mov(Type::kI32, current);
    }
  }
  builder.Store(out_slot, current);
  builder.Jump(exit);

  builder.SetInsertBlock(exit);
  builder.Ret();

  function.Verify();
  return function;
}

Function BuildArithKernelA(const std::string& name) {
  Function function(name);
  IrBuilder builder(function, /*materialize_constants=*/true);
  const ValueId a1 = function.AddParam(Type::kPtr, "a1");
  const ValueId a2 = function.AddParam(Type::kPtr, "a2");
  const ValueId temp = function.AddParam(Type::kPtr, "temp");

  const BlockId entry = builder.CreateBlock("entry");
  builder.SetInsertBlock(entry);
  const ValueId x = builder.Load(Type::kI32, a1);
  const ValueId y = builder.Load(Type::kI32, a2);
  const ValueId sum = builder.Binary(Opcode::kAdd, Type::kI32, x, y);
  builder.Store(temp, sum);
  builder.Ret();

  function.Verify();
  return function;
}

Function BuildArithKernelB(const std::string& name) {
  Function function(name);
  IrBuilder builder(function, /*materialize_constants=*/true);
  const ValueId temp = function.AddParam(Type::kPtr, "temp");
  const ValueId a3 = function.AddParam(Type::kPtr, "a3");
  const ValueId out = function.AddParam(Type::kPtr, "out");

  const BlockId entry = builder.CreateBlock("entry");
  builder.SetInsertBlock(entry);
  const ValueId t = builder.Load(Type::kI32, temp);
  const ValueId z = builder.Load(Type::kI32, a3);
  const ValueId diff = builder.Binary(Opcode::kSub, Type::kI32, t, z);
  builder.Store(out, diff);
  builder.Ret();

  function.Verify();
  return function;
}

Function BuildFusedArithKernel(const std::string& name) {
  Function function(name);
  IrBuilder builder(function, /*materialize_constants=*/true);
  const ValueId a1 = function.AddParam(Type::kPtr, "a1");
  const ValueId a2 = function.AddParam(Type::kPtr, "a2");
  const ValueId a3 = function.AddParam(Type::kPtr, "a3");
  const ValueId out = function.AddParam(Type::kPtr, "out");

  const BlockId entry = builder.CreateBlock("entry");
  builder.SetInsertBlock(entry);
  const ValueId x = builder.Load(Type::kI32, a1);
  const ValueId y = builder.Load(Type::kI32, a2);
  const ValueId sum = builder.Binary(Opcode::kAdd, Type::kI32, x, y);
  // Fusion: kernel B's load of the temporary becomes a register copy.
  const ValueId t = builder.Mov(Type::kI32, sum);
  const ValueId z = builder.Load(Type::kI32, a3);
  const ValueId diff = builder.Binary(Opcode::kSub, Type::kI32, t, z);
  builder.Store(out, diff);
  builder.Ret();

  function.Verify();
  return function;
}

}  // namespace kf::ir
