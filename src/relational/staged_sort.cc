#include "relational/staged_sort.h"

#include <array>
#include <numeric>

#include "common/error.h"
#include "relational/staged_kernel.h"

namespace kf::relational {

namespace {

constexpr int kDigitBits = 8;
constexpr int kBuckets = 1 << kDigitBits;
constexpr int kPasses = 32 / kDigitBits;

// Bias transform: signed order == unsigned order of (key ^ 0x80000000).
std::uint32_t Bias(std::int32_t key) {
  return static_cast<std::uint32_t>(key) ^ 0x80000000u;
}

std::uint32_t Digit(std::uint32_t key, int pass) {
  return (key >> (pass * kDigitBits)) & (kBuckets - 1);
}

// One radix pass over (key, payload) pairs: histogram / scan / scatter.
template <typename Payload>
void RadixPass(std::vector<std::uint32_t>& keys, std::vector<Payload>& payload,
               std::vector<std::uint32_t>& keys_out, std::vector<Payload>& payload_out,
               int pass, std::span<const ChunkRange> chunks, ThreadPool* pool) {
  const std::size_t chunk_count = chunks.size();

  // Stage 1 — per-chunk histograms (one simulated CTA each).
  std::vector<std::array<std::uint32_t, kBuckets>> histograms(chunk_count);
  auto histogram_chunk = [&](std::size_t c) {
    auto& h = histograms[c];
    h.fill(0);
    for (std::size_t i = chunks[c].begin; i < chunks[c].end; ++i) {
      ++h[Digit(keys[i], pass)];
    }
  };
  if (pool != nullptr && chunk_count > 1) {
    pool->ParallelForEach(chunk_count, histogram_chunk);
  } else {
    for (std::size_t c = 0; c < chunk_count; ++c) histogram_chunk(c);
  }

  // Stage 2 — global bucket-major exclusive scan: output offset of each
  // (bucket, chunk) pair. This is the cross-CTA synchronization.
  std::vector<std::uint32_t> offsets(chunk_count * kBuckets);
  std::uint32_t running = 0;
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    for (std::size_t c = 0; c < chunk_count; ++c) {
      offsets[c * kBuckets + static_cast<std::size_t>(bucket)] = running;
      running += histograms[c][static_cast<std::size_t>(bucket)];
    }
  }

  // Stage 3 — stable scatter.
  auto scatter_chunk = [&](std::size_t c) {
    std::array<std::uint32_t, kBuckets> cursor;
    for (int bucket = 0; bucket < kBuckets; ++bucket) {
      cursor[static_cast<std::size_t>(bucket)] =
          offsets[c * kBuckets + static_cast<std::size_t>(bucket)];
    }
    for (std::size_t i = chunks[c].begin; i < chunks[c].end; ++i) {
      const std::uint32_t d = Digit(keys[i], pass);
      const std::uint32_t pos = cursor[d]++;
      keys_out[pos] = keys[i];
      payload_out[pos] = payload[i];
    }
  };
  if (pool != nullptr && chunk_count > 1) {
    pool->ParallelForEach(chunk_count, scatter_chunk);
  } else {
    for (std::size_t c = 0; c < chunk_count; ++c) scatter_chunk(c);
  }

  keys.swap(keys_out);
  payload.swap(payload_out);
}

template <typename Payload>
void SortPairs(std::vector<std::uint32_t>& keys, std::vector<Payload>& payload,
               int chunk_count, ThreadPool* pool) {
  KF_REQUIRE(chunk_count > 0) << "chunk count must be positive";
  const std::vector<ChunkRange> chunks = PartitionInput(keys.size(), chunk_count);
  std::vector<std::uint32_t> keys_scratch(keys.size());
  std::vector<Payload> payload_scratch(payload.size());
  for (int pass = 0; pass < kPasses; ++pass) {
    RadixPass(keys, payload, keys_scratch, payload_scratch, pass, chunks, pool);
  }
}

}  // namespace

std::vector<std::int32_t> StagedRadixSort(std::span<const std::int32_t> input,
                                          int chunk_count, ThreadPool* pool) {
  std::vector<std::uint32_t> keys(input.size());
  std::vector<char> payload(input.size());  // no payload; keep the API uniform
  for (std::size_t i = 0; i < input.size(); ++i) keys[i] = Bias(input[i]);
  SortPairs(keys, payload, chunk_count, pool);
  std::vector<std::int32_t> out(input.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::int32_t>(keys[i] ^ 0x80000000u);
  }
  return out;
}

std::vector<std::uint32_t> StagedRadixArgsort(std::span<const std::int32_t> input,
                                              int chunk_count, ThreadPool* pool) {
  std::vector<std::uint32_t> keys(input.size());
  std::vector<std::uint32_t> indices(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    keys[i] = Bias(input[i]);
    indices[i] = static_cast<std::uint32_t>(i);
  }
  SortPairs(keys, indices, chunk_count, pool);
  return indices;
}

}  // namespace kf::relational
