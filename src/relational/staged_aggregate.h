// Staged grouped aggregation — the GPU-style AGGREGATION substrate
// (paper Fig 2 pattern (g): AGGREGATION over selected data).
//
// Stage structure: the input is partitioned into chunks; each chunk folds
// its elements into a chunk-local accumulator table (the per-CTA
// shared-memory partials a GPU reduction keeps); the combine stage merges
// the partials — the cross-CTA step that would be the second kernel launch.
// This is the standalone, typed counterpart of the aggregation the fused row
// pipeline performs, and it is what makes AGGREGATION fusable as a terminal
// stage: the per-chunk fold slots directly after any elementwise chain.
#ifndef KF_RELATIONAL_STAGED_AGGREGATE_H_
#define KF_RELATIONAL_STAGED_AGGREGATE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.h"

namespace kf::relational {

struct GroupedSum {
  std::int64_t group = 0;
  double sum = 0.0;
  double min_value = 0.0;
  double max_value = 0.0;
  std::int64_t count = 0;

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

struct AggregateInput {
  std::int64_t group = 0;
  double value = 0.0;
};

// Grouped sum/min/max/count over (group, value) pairs. Output is sorted by
// group key (the canonical GPU result order after the combine's sort).
std::vector<GroupedSum> StagedGroupedAggregate(std::span<const AggregateInput> input,
                                               int chunk_count = 64,
                                               ThreadPool* pool = nullptr);

}  // namespace kf::relational

#endif  // KF_RELATIONAL_STAGED_AGGREGATE_H_
