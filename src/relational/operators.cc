#include "relational/operators.h"

#include "relational/staged_sort.h"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <numeric>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"

namespace kf::relational {

const char* ToString(OpKind kind) {
  switch (kind) {
    case OpKind::kSelect: return "SELECT";
    case OpKind::kProject: return "PROJECT";
    case OpKind::kProduct: return "PRODUCT";
    case OpKind::kJoin: return "JOIN";
    case OpKind::kUnion: return "UNION";
    case OpKind::kIntersect: return "INTERSECTION";
    case OpKind::kDifference: return "DIFFERENCE";
    case OpKind::kAggregate: return "AGGREGATION";
    case OpKind::kArith: return "ARITH";
    case OpKind::kSort: return "SORT";
    case OpKind::kUnique: return "UNIQUE";
  }
  return "?";
}

OperatorDesc OperatorDesc::Select(Expr predicate, std::string label) {
  OperatorDesc op;
  op.kind = OpKind::kSelect;
  op.predicate = std::move(predicate);
  op.label = std::move(label);
  return op;
}

OperatorDesc OperatorDesc::Project(std::vector<int> fields, std::string label) {
  OperatorDesc op;
  op.kind = OpKind::kProject;
  op.fields = std::move(fields);
  op.label = std::move(label);
  return op;
}

OperatorDesc OperatorDesc::Product(std::string label) {
  OperatorDesc op;
  op.kind = OpKind::kProduct;
  op.label = std::move(label);
  return op;
}

OperatorDesc OperatorDesc::Join(int left_key, int right_key, std::string label) {
  OperatorDesc op;
  op.kind = OpKind::kJoin;
  op.left_key = left_key;
  op.right_key = right_key;
  op.label = std::move(label);
  return op;
}

OperatorDesc OperatorDesc::Union(std::string label) {
  OperatorDesc op;
  op.kind = OpKind::kUnion;
  op.label = std::move(label);
  return op;
}

OperatorDesc OperatorDesc::Intersect(std::string label) {
  OperatorDesc op;
  op.kind = OpKind::kIntersect;
  op.label = std::move(label);
  return op;
}

OperatorDesc OperatorDesc::Difference(std::string label) {
  OperatorDesc op;
  op.kind = OpKind::kDifference;
  op.label = std::move(label);
  return op;
}

OperatorDesc OperatorDesc::Aggregate(std::vector<int> group_by,
                                     std::vector<AggregateSpec> aggregates,
                                     std::string label) {
  OperatorDesc op;
  op.kind = OpKind::kAggregate;
  op.group_by = std::move(group_by);
  op.aggregates = std::move(aggregates);
  op.label = std::move(label);
  return op;
}

OperatorDesc OperatorDesc::Arith(Expr expr, std::string name, DataType type,
                                 std::string label) {
  OperatorDesc op;
  op.kind = OpKind::kArith;
  op.arith = std::move(expr);
  op.arith_name = std::move(name);
  op.arith_type = type;
  op.label = std::move(label);
  return op;
}

OperatorDesc OperatorDesc::Sort(std::vector<int> keys, std::string label) {
  OperatorDesc op;
  op.kind = OpKind::kSort;
  op.sort_keys = std::move(keys);
  op.label = std::move(label);
  return op;
}

OperatorDesc OperatorDesc::Unique(std::string label) {
  OperatorDesc op;
  op.kind = OpKind::kUnique;
  op.label = std::move(label);
  return op;
}

namespace {

void CheckFieldIndex(int field, const Schema& schema, const char* what) {
  KF_REQUIRE(field >= 0 && static_cast<std::size_t>(field) < schema.field_count())
      << what << " field " << field << " out of range for schema " << schema.ToString();
}

std::string RowKey(const Row& row) {
  std::ostringstream os;
  os << std::setprecision(17);  // round-trip doubles exactly
  for (const Value& v : row) {
    if (v.is_float()) {
      os << "f" << v.as_double() << "|";
    } else {
      os << "i" << v.as_int() << "|";
    }
  }
  return os.str();
}

DataType AggregateType(const AggregateSpec& spec, const Schema& input) {
  switch (spec.func) {
    case AggregateSpec::Func::kCount:
      return DataType::kInt64;
    case AggregateSpec::Func::kSum:
    case AggregateSpec::Func::kAvg:
      return DataType::kFloat64;
    case AggregateSpec::Func::kMin:
    case AggregateSpec::Func::kMax:
      return input.field(static_cast<std::size_t>(spec.field)).type;
  }
  return DataType::kFloat64;
}

}  // namespace

Schema OutputSchema(const OperatorDesc& op, const Schema& left, const Schema* right) {
  KF_REQUIRE(op.is_binary() == (right != nullptr))
      << ToString(op.kind) << ": right input " << (right ? "unexpected" : "missing");
  std::vector<Field> fields;
  switch (op.kind) {
    case OpKind::kSelect:
    case OpKind::kSort:
    case OpKind::kUnique:
      return left;
    case OpKind::kUnion:
    case OpKind::kIntersect:
    case OpKind::kDifference:
      KF_REQUIRE(left.field_count() == right->field_count())
          << ToString(op.kind) << ": schemas differ: " << left.ToString() << " vs "
          << right->ToString();
      return left;
    case OpKind::kProject:
      KF_REQUIRE(!op.fields.empty()) << "PROJECT keeps no fields";
      for (int f : op.fields) {
        CheckFieldIndex(f, left, "PROJECT");
        fields.push_back(left.field(static_cast<std::size_t>(f)));
      }
      return Schema(std::move(fields));
    case OpKind::kProduct:
      fields = left.fields();
      for (const Field& f : right->fields()) fields.push_back(f);
      return Schema(std::move(fields));
    case OpKind::kJoin:
      CheckFieldIndex(op.left_key, left, "JOIN left");
      CheckFieldIndex(op.right_key, *right, "JOIN right");
      fields = left.fields();
      for (std::size_t i = 0; i < right->field_count(); ++i) {
        if (static_cast<int>(i) != op.right_key) fields.push_back(right->field(i));
      }
      return Schema(std::move(fields));
    case OpKind::kAggregate: {
      KF_REQUIRE(!op.aggregates.empty()) << "AGGREGATION computes nothing";
      for (int g : op.group_by) {
        CheckFieldIndex(g, left, "AGGREGATION group-by");
        fields.push_back(left.field(static_cast<std::size_t>(g)));
      }
      for (const AggregateSpec& spec : op.aggregates) {
        if (spec.func != AggregateSpec::Func::kCount) {
          CheckFieldIndex(spec.field, left, "AGGREGATION");
        }
        fields.push_back(Field{spec.name, AggregateType(spec, left)});
      }
      return Schema(std::move(fields));
    }
    case OpKind::kArith: {
      const int max_field = ExprMaxField(op.arith);
      KF_REQUIRE(max_field < static_cast<int>(left.field_count()))
          << "ARITH references field $" << max_field << " beyond schema "
          << left.ToString();
      fields = left.fields();
      fields.push_back(Field{op.arith_name, op.arith_type});
      return Schema(std::move(fields));
    }
  }
  return Schema{};
}

namespace {

Table ApplySelect(const OperatorDesc& op, const Table& in) {
  Table out(in.schema());
  for (std::size_t r = 0; r < in.row_count(); ++r) {
    const Row row = in.GetRow(r);
    if (EvalExpr(op.predicate, row).as_bool()) out.AppendRow(row);
  }
  return out;
}

Table ApplyProject(const OperatorDesc& op, const Table& in) {
  Table out(OutputSchema(op, in.schema(), nullptr));
  Row projected(op.fields.size());
  for (std::size_t r = 0; r < in.row_count(); ++r) {
    const Row row = in.GetRow(r);
    for (std::size_t i = 0; i < op.fields.size(); ++i) {
      projected[i] = row[static_cast<std::size_t>(op.fields[i])];
    }
    out.AppendRow(projected);
  }
  return out;
}

Table ApplyProduct(const OperatorDesc& op, const Table& left, const Table& right) {
  Table out(OutputSchema(op, left.schema(), &right.schema()));
  for (std::size_t l = 0; l < left.row_count(); ++l) {
    Row row = left.GetRow(l);
    const std::size_t left_width = row.size();
    row.resize(left_width + right.column_count());
    for (std::size_t r = 0; r < right.row_count(); ++r) {
      for (std::size_t c = 0; c < right.column_count(); ++c) {
        row[left_width + c] = right.column(c).Get(r);
      }
      out.AppendRow(row);
    }
  }
  return out;
}

Table ApplyJoin(const OperatorDesc& op, const Table& left, const Table& right) {
  Table out(OutputSchema(op, left.schema(), &right.schema()));
  // Build on the right input, probe with the left (hash equi-join).
  std::unordered_map<Value, std::vector<std::size_t>, ValueHash, ValueEq> build;
  const Column& right_keys = right.column(static_cast<std::size_t>(op.right_key));
  for (std::size_t r = 0; r < right.row_count(); ++r) {
    build[right_keys.Get(r)].push_back(r);
  }
  for (std::size_t l = 0; l < left.row_count(); ++l) {
    Row row = left.GetRow(l);
    const Value key = row[static_cast<std::size_t>(op.left_key)];
    auto it = build.find(key);
    if (it == build.end()) continue;
    const std::size_t left_width = row.size();
    for (std::size_t match : it->second) {
      row.resize(left_width);
      for (std::size_t c = 0; c < right.column_count(); ++c) {
        if (static_cast<int>(c) == op.right_key) continue;
        row.push_back(right.column(c).Get(match));
      }
      out.AppendRow(row);
    }
  }
  return out;
}

Table ApplyUnion(const OperatorDesc& op, const Table& left, const Table& right) {
  Table out(OutputSchema(op, left.schema(), &right.schema()));
  std::unordered_set<std::string> seen;
  for (const Table* t : {&left, &right}) {
    for (std::size_t r = 0; r < t->row_count(); ++r) {
      const Row row = t->GetRow(r);
      if (seen.insert(RowKey(row)).second) out.AppendRow(row);
    }
  }
  return out;
}

Table ApplyIntersect(const OperatorDesc& op, const Table& left, const Table& right) {
  Table out(OutputSchema(op, left.schema(), &right.schema()));
  std::unordered_set<std::string> right_rows;
  for (std::size_t r = 0; r < right.row_count(); ++r) {
    right_rows.insert(RowKey(right.GetRow(r)));
  }
  std::unordered_set<std::string> emitted;
  for (std::size_t r = 0; r < left.row_count(); ++r) {
    const Row row = left.GetRow(r);
    const std::string key = RowKey(row);
    if (right_rows.count(key) != 0 && emitted.insert(key).second) out.AppendRow(row);
  }
  return out;
}

Table ApplyDifference(const OperatorDesc& op, const Table& left, const Table& right) {
  Table out(OutputSchema(op, left.schema(), &right.schema()));
  std::unordered_set<std::string> right_rows;
  for (std::size_t r = 0; r < right.row_count(); ++r) {
    right_rows.insert(RowKey(right.GetRow(r)));
  }
  std::unordered_set<std::string> emitted;
  for (std::size_t r = 0; r < left.row_count(); ++r) {
    const Row row = left.GetRow(r);
    const std::string key = RowKey(row);
    if (right_rows.count(key) == 0 && emitted.insert(key).second) out.AppendRow(row);
  }
  return out;
}

struct AggregateState {
  double sum = 0.0;
  Value min_value;
  Value max_value;
  std::int64_t count = 0;
};

Table ApplyAggregate(const OperatorDesc& op, const Table& in) {
  Table out(OutputSchema(op, in.schema(), nullptr));
  // Group rows; keys keep first-seen order for deterministic output.
  std::unordered_map<std::string, std::size_t> group_index;
  std::vector<Row> group_keys;
  std::vector<std::vector<AggregateState>> states;
  for (std::size_t r = 0; r < in.row_count(); ++r) {
    const Row row = in.GetRow(r);
    Row key;
    key.reserve(op.group_by.size());
    for (int g : op.group_by) key.push_back(row[static_cast<std::size_t>(g)]);
    const std::string key_str = RowKey(key);
    auto [it, inserted] = group_index.emplace(key_str, group_keys.size());
    if (inserted) {
      group_keys.push_back(key);
      states.emplace_back(op.aggregates.size());
    }
    auto& group_states = states[it->second];
    for (std::size_t a = 0; a < op.aggregates.size(); ++a) {
      const AggregateSpec& spec = op.aggregates[a];
      AggregateState& state = group_states[a];
      ++state.count;
      if (spec.func == AggregateSpec::Func::kCount) continue;
      const Value v = row[static_cast<std::size_t>(spec.field)];
      state.sum += v.as_double();
      if (state.count == 1) {
        state.min_value = v;
        state.max_value = v;
      } else {
        if (v < state.min_value) state.min_value = v;
        if (state.max_value < v) state.max_value = v;
      }
    }
  }
  for (std::size_t g = 0; g < group_keys.size(); ++g) {
    Row row = group_keys[g];
    for (std::size_t a = 0; a < op.aggregates.size(); ++a) {
      const AggregateSpec& spec = op.aggregates[a];
      const AggregateState& state = states[g][a];
      switch (spec.func) {
        case AggregateSpec::Func::kSum:
          row.push_back(Value::Float64(state.sum));
          break;
        case AggregateSpec::Func::kAvg:
          row.push_back(Value::Float64(
              state.count == 0 ? 0.0 : state.sum / static_cast<double>(state.count)));
          break;
        case AggregateSpec::Func::kMin:
          row.push_back(state.min_value);
          break;
        case AggregateSpec::Func::kMax:
          row.push_back(state.max_value);
          break;
        case AggregateSpec::Func::kCount:
          row.push_back(Value::Int64(state.count));
          break;
      }
    }
    out.AppendRow(row);
  }
  return out;
}

Table ApplyArith(const OperatorDesc& op, const Table& in) {
  Table out(OutputSchema(op, in.schema(), nullptr));
  for (std::size_t r = 0; r < in.row_count(); ++r) {
    Row row = in.GetRow(r);
    Value v = EvalExpr(op.arith, row);
    switch (op.arith_type) {
      case DataType::kInt32: v = Value::Int32(static_cast<std::int32_t>(v.as_int())); break;
      case DataType::kInt64: v = Value::Int64(v.as_int()); break;
      case DataType::kFloat64: v = Value::Float64(v.as_double()); break;
    }
    row.push_back(v);
    out.AppendRow(row);
  }
  return out;
}

Table ApplySort(const OperatorDesc& op, const Table& in) {
  for (int k : op.sort_keys) CheckFieldIndex(k, in.schema(), "SORT");

  // Fast path: a single int32 key uses the staged radix sort (stable), the
  // same algorithm the GPU cost model charges for.
  if (op.sort_keys.size() == 1 &&
      in.column(static_cast<std::size_t>(op.sort_keys[0])).type() ==
          DataType::kInt32) {
    const auto& keys =
        in.column(static_cast<std::size_t>(op.sort_keys[0])).AsInt32();
    const std::vector<std::uint32_t> permutation = StagedRadixArgsort(keys);
    Table out(in.schema());
    out.Reserve(in.row_count());
    for (std::uint32_t r : permutation) out.AppendRow(in.GetRow(r));
    return out;
  }

  std::vector<std::size_t> order(in.row_count());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    for (int k : op.sort_keys) {
      const Value va = in.column(static_cast<std::size_t>(k)).Get(a);
      const Value vb = in.column(static_cast<std::size_t>(k)).Get(b);
      if (va < vb) return true;
      if (vb < va) return false;
    }
    return false;
  });
  Table out(in.schema());
  out.Reserve(in.row_count());
  for (std::size_t r : order) out.AppendRow(in.GetRow(r));
  return out;
}

Table ApplyUnique(const OperatorDesc& op, const Table& in) {
  Table out(OutputSchema(op, in.schema(), nullptr));
  std::unordered_set<std::string> seen;
  for (std::size_t r = 0; r < in.row_count(); ++r) {
    const Row row = in.GetRow(r);
    if (seen.insert(RowKey(row)).second) out.AppendRow(row);
  }
  return out;
}

}  // namespace

Table ApplyOperator(const OperatorDesc& op, const Table& left, const Table* right) {
  KF_REQUIRE(op.is_binary() == (right != nullptr))
      << ToString(op.kind) << ": right input " << (right ? "unexpected" : "missing");
  switch (op.kind) {
    case OpKind::kSelect: return ApplySelect(op, left);
    case OpKind::kProject: return ApplyProject(op, left);
    case OpKind::kProduct: return ApplyProduct(op, left, *right);
    case OpKind::kJoin: return ApplyJoin(op, left, *right);
    case OpKind::kUnion: return ApplyUnion(op, left, *right);
    case OpKind::kIntersect: return ApplyIntersect(op, left, *right);
    case OpKind::kDifference: return ApplyDifference(op, left, *right);
    case OpKind::kAggregate: return ApplyAggregate(op, left);
    case OpKind::kArith: return ApplyArith(op, left);
    case OpKind::kSort: return ApplySort(op, left);
    case OpKind::kUnique: return ApplyUnique(op, left);
  }
  KF_REQUIRE(false) << "unhandled operator kind";
  return Table{};
}

}  // namespace kf::relational
