#include "relational/csv.h"

#include <charconv>
#include <iomanip>
#include <sstream>
#include <vector>

#include "common/error.h"

namespace kf::relational {

namespace {

const char* TypeTag(DataType type) {
  switch (type) {
    case DataType::kInt32: return "i32";
    case DataType::kInt64: return "i64";
    case DataType::kFloat64: return "f64";
  }
  return "?";
}

DataType ParseTypeTag(const std::string& tag) {
  if (tag == "i32") return DataType::kInt32;
  if (tag == "i64") return DataType::kInt64;
  if (tag == "f64") return DataType::kFloat64;
  KF_FAIL_AS(::kf::InvalidArgument) << "unknown CSV column type '" << tag << "'";
  return DataType::kInt64;  // unreachable: KF_FAIL_AS throws
}

// Defensive bound on one line of input: anything longer is corrupt (or an
// unterminated stream), not data this loader should try to materialize.
constexpr std::size_t kMaxLineBytes = 1 << 20;

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

}  // namespace

void WriteCsv(const Table& table, std::ostream& os) {
  const Schema& schema = table.schema();
  for (std::size_t c = 0; c < schema.field_count(); ++c) {
    if (c) os << ",";
    os << schema.field(c).name << ":" << TypeTag(schema.field(c).type);
  }
  os << "\n";
  os << std::setprecision(17);
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    for (std::size_t c = 0; c < table.column_count(); ++c) {
      if (c) os << ",";
      const Value v = table.column(c).Get(r);
      if (v.is_float()) {
        os << v.as_double();
      } else {
        os << v.as_int();
      }
    }
    os << "\n";
  }
}

std::string ToCsv(const Table& table) {
  std::ostringstream os;
  WriteCsv(table, os);
  return os.str();
}

Table ReadCsv(std::istream& is) {
  std::string line;
  KF_REQUIRE_AS(::kf::InvalidArgument, static_cast<bool>(std::getline(is, line)))
      << "empty CSV input";
  KF_REQUIRE_AS(::kf::InvalidArgument, line.size() <= kMaxLineBytes)
      << "CSV header line exceeds " << kMaxLineBytes << " bytes";
  std::vector<Field> fields;
  for (const std::string& header : SplitLine(line)) {
    const std::size_t colon = header.rfind(':');
    KF_REQUIRE_AS(::kf::InvalidArgument, colon != std::string::npos && colon > 0)
        << "CSV header '" << header << "' is not name:type";
    fields.push_back(
        Field{header.substr(0, colon), ParseTypeTag(header.substr(colon + 1))});
  }
  Table table{Schema(fields)};

  std::size_t line_number = 1;
  Row row(fields.size());
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    KF_REQUIRE_AS(::kf::InvalidArgument, line.size() <= kMaxLineBytes)
        << "CSV line " << line_number << " exceeds " << kMaxLineBytes << " bytes";
    const std::vector<std::string> cells = SplitLine(line);
    KF_REQUIRE_AS(::kf::InvalidArgument, cells.size() == fields.size())
        << "CSV line " << line_number << " has " << cells.size() << " cells, expected "
        << fields.size();
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string& cell = cells[c];
      if (fields[c].type == DataType::kFloat64) {
        double value = 0.0;
        std::size_t consumed = 0;
        bool parsed = false;
        try {
          value = std::stod(cell, &consumed);
          parsed = true;
        } catch (const std::exception&) {
        }
        KF_REQUIRE_AS(::kf::InvalidArgument, parsed && consumed == cell.size())
            << "CSV line " << line_number << ": bad float '" << cell << "'";
        row[c] = Value::Float64(value);
      } else {
        std::int64_t value = 0;
        const auto [ptr, ec] =
            std::from_chars(cell.data(), cell.data() + cell.size(), value);
        KF_REQUIRE_AS(::kf::InvalidArgument,
                      ec == std::errc{} && ptr == cell.data() + cell.size())
            << "CSV line " << line_number << ": bad integer '" << cell << "'";
        row[c] = fields[c].type == DataType::kInt32
                     ? Value::Int32(static_cast<std::int32_t>(value))
                     : Value::Int64(value);
      }
    }
    table.AppendRow(row);
  }
  return table;
}

Table FromCsv(const std::string& text) {
  std::istringstream is(text);
  return ReadCsv(is);
}

}  // namespace kf::relational
