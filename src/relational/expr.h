// A small expression AST over row fields.
//
// SELECT predicates and ARITH computations are expressed as `Expr` trees,
// which serve three purposes: functional evaluation against rows, cost
// estimation for the kernel cost model (ops per element, register pressure),
// and lowering to the mini IR so the compiler-scope benefits of fusion can be
// measured (core/expr_lower).
#ifndef KF_RELATIONAL_EXPR_H_
#define KF_RELATIONAL_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/column.h"
#include "relational/table.h"

namespace kf::relational {

enum class ExprOp : std::uint8_t {
  kConst,
  kField,
  kAdd, kSub, kMul, kDiv,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAnd, kOr, kNot,
};

const char* ToString(ExprOp op);

struct Expr {
  ExprOp op = ExprOp::kConst;
  Value constant;            // kConst
  int field = -1;            // kField
  std::vector<Expr> children;

  // --- Construction helpers -------------------------------------------------
  static Expr Lit(Value v);
  static Expr Lit(std::int64_t v) { return Lit(Value::Int64(v)); }
  static Expr LitF(double v) { return Lit(Value::Float64(v)); }
  static Expr FieldRef(int index);
  static Expr Unary(ExprOp op, Expr a);
  static Expr Binary(ExprOp op, Expr a, Expr b);

  static Expr Add(Expr a, Expr b) { return Binary(ExprOp::kAdd, std::move(a), std::move(b)); }
  static Expr Sub(Expr a, Expr b) { return Binary(ExprOp::kSub, std::move(a), std::move(b)); }
  static Expr Mul(Expr a, Expr b) { return Binary(ExprOp::kMul, std::move(a), std::move(b)); }
  static Expr Div(Expr a, Expr b) { return Binary(ExprOp::kDiv, std::move(a), std::move(b)); }
  static Expr Lt(Expr a, Expr b) { return Binary(ExprOp::kLt, std::move(a), std::move(b)); }
  static Expr Le(Expr a, Expr b) { return Binary(ExprOp::kLe, std::move(a), std::move(b)); }
  static Expr Gt(Expr a, Expr b) { return Binary(ExprOp::kGt, std::move(a), std::move(b)); }
  static Expr Ge(Expr a, Expr b) { return Binary(ExprOp::kGe, std::move(a), std::move(b)); }
  static Expr Eq(Expr a, Expr b) { return Binary(ExprOp::kEq, std::move(a), std::move(b)); }
  static Expr Ne(Expr a, Expr b) { return Binary(ExprOp::kNe, std::move(a), std::move(b)); }
  static Expr And(Expr a, Expr b) { return Binary(ExprOp::kAnd, std::move(a), std::move(b)); }
  static Expr Or(Expr a, Expr b) { return Binary(ExprOp::kOr, std::move(a), std::move(b)); }
  static Expr Not(Expr a) { return Unary(ExprOp::kNot, std::move(a)); }

  std::string ToString() const;
};

// Evaluates `expr` against `row`. Comparison/logic results are Int64 0/1.
Value EvalExpr(const Expr& expr, const Row& row);

// Approximate dynamic scalar operations per evaluation (AST node count,
// loads of fields included) — feeds the kernel cost model.
double ExprOps(const Expr& expr);

// Approximate live registers needed to evaluate the expression (Sethi-Ullman
// style) — feeds the fusion register-pressure cost function.
int ExprRegisters(const Expr& expr);

// Highest field index referenced, or -1 when the expression is constant.
int ExprMaxField(const Expr& expr);

}  // namespace kf::relational

#endif  // KF_RELATIONAL_EXPR_H_
