// Relational-algebra operator descriptors and their functional semantics.
//
// Every operator of paper Table I is here (SELECT, PROJECT, PRODUCT, JOIN,
// UNION, INTERSECTION, DIFFERENCE), plus the auxiliary operators the TPC-H
// queries need (ARITH maps, AGGREGATION, SORT, UNIQUE). `ApplyOperator` is
// the executable semantics: it is what the staged kernels must compute, what
// fused kernels must preserve, and what the TPC-H validation compares
// against. Set operators use set semantics (distinct rows); JOIN is an
// equi-join on one key field per side, emitting the left row plus the right
// row's non-key fields (Table I's convention, key = field 0 by default).
#ifndef KF_RELATIONAL_OPERATORS_H_
#define KF_RELATIONAL_OPERATORS_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/expr.h"
#include "relational/table.h"

namespace kf::relational {

enum class OpKind : std::uint8_t {
  kSelect,
  kProject,
  kProduct,
  kJoin,
  kUnion,
  kIntersect,
  kDifference,
  kAggregate,
  kArith,
  kSort,
  kUnique,
};

const char* ToString(OpKind kind);

struct AggregateSpec {
  enum class Func : std::uint8_t { kSum, kMin, kMax, kCount, kAvg };
  Func func = Func::kSum;
  int field = 0;  // ignored for kCount
  std::string name;
};

// A fully-parameterized operator instance. Only the members relevant to
// `kind` are read.
struct OperatorDesc {
  OpKind kind = OpKind::kSelect;
  std::string label;

  Expr predicate;                         // kSelect
  std::vector<int> fields;                // kProject: kept fields, in order
  int left_key = 0;                       // kJoin
  int right_key = 0;                      // kJoin
  std::vector<int> sort_keys;             // kSort: lexicographic key order
  std::vector<int> group_by;              // kAggregate (may be empty)
  std::vector<AggregateSpec> aggregates;  // kAggregate
  Expr arith;                             // kArith: appended column
  std::string arith_name = "expr";        // kArith
  DataType arith_type = DataType::kFloat64;

  static OperatorDesc Select(Expr predicate, std::string label = "select");
  static OperatorDesc Project(std::vector<int> fields, std::string label = "project");
  static OperatorDesc Product(std::string label = "product");
  static OperatorDesc Join(int left_key = 0, int right_key = 0,
                           std::string label = "join");
  static OperatorDesc Union(std::string label = "union");
  static OperatorDesc Intersect(std::string label = "intersect");
  static OperatorDesc Difference(std::string label = "difference");
  static OperatorDesc Aggregate(std::vector<int> group_by,
                                std::vector<AggregateSpec> aggregates,
                                std::string label = "aggregate");
  static OperatorDesc Arith(Expr expr, std::string name,
                            DataType type = DataType::kFloat64,
                            std::string label = "arith");
  static OperatorDesc Sort(std::vector<int> keys, std::string label = "sort");
  static OperatorDesc Unique(std::string label = "unique");

  bool is_binary() const {
    return kind == OpKind::kProduct || kind == OpKind::kJoin ||
           kind == OpKind::kUnion || kind == OpKind::kIntersect ||
           kind == OpKind::kDifference;
  }
};

// Schema of the operator's output given its input schema(s). Throws on
// malformed descriptors (bad field indices, missing right input, ...).
Schema OutputSchema(const OperatorDesc& op, const Schema& left, const Schema* right);

// Executes the operator. `right` must be non-null iff `op.is_binary()`.
Table ApplyOperator(const OperatorDesc& op, const Table& left,
                    const Table* right = nullptr);

}  // namespace kf::relational

#endif  // KF_RELATIONAL_OPERATORS_H_
