#include "relational/predicate.h"

#include <algorithm>
#include <cstring>
#include <limits>

namespace kf::relational {
namespace {

constexpr std::int64_t kI32Min = std::numeric_limits<std::int32_t>::min();
constexpr std::int64_t kI32Max = std::numeric_limits<std::int32_t>::max();

// The branch-free compaction loop every typed kernel instantiates. The store
// is unconditional and the count advance is data-dependent, so there is no
// per-element branch to mispredict and the loop auto-vectorizes.
template <typename P>
std::size_t FilterDense(std::span<const std::int32_t> input, std::int32_t* out,
                        P p) {
  std::size_t count = 0;
  for (const std::int32_t v : input) {
    out[count] = v;
    count += static_cast<std::size_t>(p(v));
  }
  return count;
}

template <typename P>
std::size_t CountDense(std::span<const std::int32_t> input, P p) {
  std::size_t count = 0;
  for (const std::int32_t v : input) count += static_cast<std::size_t>(p(v));
  return count;
}

// Scalar evaluation of one predicate; the per-element cost of the generic
// multi-predicate path and of Matches().
inline bool EvalPred(const TypedPredicate& p, std::int32_t v) {
  switch (p.op) {
    case PredOp::kAlwaysTrue: return true;
    case PredOp::kAlwaysFalse: return false;
    case PredOp::kLt: return v < p.a;
    case PredOp::kLe: return v <= p.a;
    case PredOp::kGt: return v > p.a;
    case PredOp::kGe: return v >= p.a;
    case PredOp::kEq: return v == p.a;
    case PredOp::kNe: return v != p.a;
    case PredOp::kInRange: return v >= p.a && v <= p.b;
    case PredOp::kMaskEq: return (v & p.a) == p.b;
    case PredOp::kFallback: return (*p.fallback)(v);
  }
  return false;
}

// Mirrors `lit OP field` into `field OP' lit`.
ExprOp MirrorCompare(ExprOp op) {
  switch (op) {
    case ExprOp::kLt: return ExprOp::kGt;
    case ExprOp::kLe: return ExprOp::kGe;
    case ExprOp::kGt: return ExprOp::kLt;
    case ExprOp::kGe: return ExprOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

// Compiles `field OP literal` exactly, folding literals outside the int32
// domain: EvalExpr compares in int64, so e.g. `v < 2^40` is true for every
// int32 v and must become kAlwaysTrue, not a truncated compare.
TypedPredicate ClampedCompare(ExprOp cmp, std::int64_t lit) {
  switch (cmp) {
    case ExprOp::kLt:
      if (lit > kI32Max) return TypedPredicate::AlwaysTrue();
      if (lit <= kI32Min) return TypedPredicate::AlwaysFalse();
      return TypedPredicate::Lt(static_cast<std::int32_t>(lit));
    case ExprOp::kLe:
      if (lit >= kI32Max) return TypedPredicate::AlwaysTrue();
      if (lit < kI32Min) return TypedPredicate::AlwaysFalse();
      return TypedPredicate::Le(static_cast<std::int32_t>(lit));
    case ExprOp::kGt:
      if (lit >= kI32Max) return TypedPredicate::AlwaysFalse();
      if (lit < kI32Min) return TypedPredicate::AlwaysTrue();
      return TypedPredicate::Gt(static_cast<std::int32_t>(lit));
    case ExprOp::kGe:
      if (lit > kI32Max) return TypedPredicate::AlwaysFalse();
      if (lit <= kI32Min) return TypedPredicate::AlwaysTrue();
      return TypedPredicate::Ge(static_cast<std::int32_t>(lit));
    case ExprOp::kEq:
      if (lit < kI32Min || lit > kI32Max) return TypedPredicate::AlwaysFalse();
      return TypedPredicate::Eq(static_cast<std::int32_t>(lit));
    case ExprOp::kNe:
      if (lit < kI32Min || lit > kI32Max) return TypedPredicate::AlwaysTrue();
      return TypedPredicate::Ne(static_cast<std::int32_t>(lit));
    default: return TypedPredicate::AlwaysFalse();  // unreachable
  }
}

std::optional<TypedPredicate> Negate(const TypedPredicate& p) {
  switch (p.op) {
    case PredOp::kAlwaysTrue: return TypedPredicate::AlwaysFalse();
    case PredOp::kAlwaysFalse: return TypedPredicate::AlwaysTrue();
    case PredOp::kLt: return TypedPredicate::Ge(p.a);
    case PredOp::kLe: return TypedPredicate::Gt(p.a);
    case PredOp::kGt: return TypedPredicate::Le(p.a);
    case PredOp::kGe: return TypedPredicate::Lt(p.a);
    case PredOp::kEq: return TypedPredicate::Ne(p.a);
    case PredOp::kNe: return TypedPredicate::Eq(p.a);
    // ¬InRange is a disjunction; ¬MaskEq / ¬Fallback have no closed form.
    default: return std::nullopt;
  }
}

}  // namespace

const char* ToString(PredOp op) {
  switch (op) {
    case PredOp::kAlwaysTrue: return "true";
    case PredOp::kAlwaysFalse: return "false";
    case PredOp::kLt: return "lt";
    case PredOp::kLe: return "le";
    case PredOp::kGt: return "gt";
    case PredOp::kGe: return "ge";
    case PredOp::kEq: return "eq";
    case PredOp::kNe: return "ne";
    case PredOp::kInRange: return "in_range";
    case PredOp::kMaskEq: return "mask_eq";
    case PredOp::kFallback: return "fallback";
  }
  return "?";
}

bool TypedPredicate::Matches(std::int32_t v) const { return EvalPred(*this, v); }

std::string TypedPredicate::ToString() const {
  std::string s = relational::ToString(op);
  switch (op) {
    case PredOp::kInRange:
    case PredOp::kMaskEq:
      return s + "(" + std::to_string(a) + "," + std::to_string(b) + ")";
    case PredOp::kAlwaysTrue:
    case PredOp::kAlwaysFalse:
    case PredOp::kFallback:
      return s;
    default:
      return s + "(" + std::to_string(a) + ")";
  }
}

std::size_t FilterInt32(std::span<const std::int32_t> input,
                        const TypedPredicate& pred, std::int32_t* out) {
  const std::int32_t a = pred.a;
  const std::int32_t b = pred.b;
  switch (pred.op) {
    case PredOp::kAlwaysTrue:
      if (!input.empty()) {
        std::memcpy(out, input.data(), input.size() * sizeof(std::int32_t));
      }
      return input.size();
    case PredOp::kAlwaysFalse: return 0;
    case PredOp::kLt: return FilterDense(input, out, [a](std::int32_t v) { return v < a; });
    case PredOp::kLe: return FilterDense(input, out, [a](std::int32_t v) { return v <= a; });
    case PredOp::kGt: return FilterDense(input, out, [a](std::int32_t v) { return v > a; });
    case PredOp::kGe: return FilterDense(input, out, [a](std::int32_t v) { return v >= a; });
    case PredOp::kEq: return FilterDense(input, out, [a](std::int32_t v) { return v == a; });
    case PredOp::kNe: return FilterDense(input, out, [a](std::int32_t v) { return v != a; });
    case PredOp::kInRange:
      return FilterDense(input, out,
                         [a, b](std::int32_t v) { return v >= a && v <= b; });
    case PredOp::kMaskEq:
      return FilterDense(input, out,
                         [a, b](std::int32_t v) { return (v & a) == b; });
    case PredOp::kFallback:
      return FilterDense(input, out,
                         [f = pred.fallback](std::int32_t v) { return (*f)(v); });
  }
  return 0;
}

std::size_t FilterInt32All(std::span<const std::int32_t> input,
                           std::span<const TypedPredicate> preds,
                           std::int32_t* out) {
  if (preds.empty()) {
    if (!input.empty()) {
      std::memcpy(out, input.data(), input.size() * sizeof(std::int32_t));
    }
    return input.size();
  }
  if (preds.size() == 1) return FilterInt32(input, preds[0], out);
  // Generic fused conjunction: still one pass with the element in registers,
  // evaluating every predicate unconditionally. FoldConjunction normally
  // collapses chains to a single predicate before reaching this path.
  std::size_t count = 0;
  for (const std::int32_t v : input) {
    unsigned ok = 1;
    for (const TypedPredicate& p : preds) {
      ok &= static_cast<unsigned>(EvalPred(p, v));
    }
    out[count] = v;
    count += ok;
  }
  return count;
}

std::size_t CountInt32(std::span<const std::int32_t> input,
                       const TypedPredicate& pred) {
  const std::int32_t a = pred.a;
  const std::int32_t b = pred.b;
  switch (pred.op) {
    case PredOp::kAlwaysTrue: return input.size();
    case PredOp::kAlwaysFalse: return 0;
    case PredOp::kLt: return CountDense(input, [a](std::int32_t v) { return v < a; });
    case PredOp::kLe: return CountDense(input, [a](std::int32_t v) { return v <= a; });
    case PredOp::kGt: return CountDense(input, [a](std::int32_t v) { return v > a; });
    case PredOp::kGe: return CountDense(input, [a](std::int32_t v) { return v >= a; });
    case PredOp::kEq: return CountDense(input, [a](std::int32_t v) { return v == a; });
    case PredOp::kNe: return CountDense(input, [a](std::int32_t v) { return v != a; });
    case PredOp::kInRange:
      return CountDense(input, [a, b](std::int32_t v) { return v >= a && v <= b; });
    case PredOp::kMaskEq:
      return CountDense(input, [a, b](std::int32_t v) { return (v & a) == b; });
    case PredOp::kFallback:
      return CountDense(input, [f = pred.fallback](std::int32_t v) { return (*f)(v); });
  }
  return 0;
}

std::vector<TypedPredicate> FoldConjunction(
    std::span<const TypedPredicate> preds) {
  std::int64_t lo = kI32Min;
  std::int64_t hi = kI32Max;
  bool always_false = false;
  std::vector<TypedPredicate> rest;
  for (const TypedPredicate& p : preds) {
    switch (p.op) {
      case PredOp::kAlwaysTrue: break;
      case PredOp::kAlwaysFalse: always_false = true; break;
      case PredOp::kLt: hi = std::min(hi, static_cast<std::int64_t>(p.a) - 1); break;
      case PredOp::kLe: hi = std::min(hi, static_cast<std::int64_t>(p.a)); break;
      case PredOp::kGt: lo = std::max(lo, static_cast<std::int64_t>(p.a) + 1); break;
      case PredOp::kGe: lo = std::max(lo, static_cast<std::int64_t>(p.a)); break;
      case PredOp::kEq:
        lo = std::max(lo, static_cast<std::int64_t>(p.a));
        hi = std::min(hi, static_cast<std::int64_t>(p.a));
        break;
      case PredOp::kInRange:
        lo = std::max(lo, static_cast<std::int64_t>(p.a));
        hi = std::min(hi, static_cast<std::int64_t>(p.b));
        break;
      default:  // kNe, kMaskEq, kFallback: kept as-is, in order
        rest.push_back(p);
        break;
    }
  }
  if (always_false || lo > hi) return {TypedPredicate::AlwaysFalse()};

  std::vector<TypedPredicate> out;
  const bool lo_open = lo == kI32Min;
  const bool hi_open = hi == kI32Max;
  if (!lo_open || !hi_open) {
    const auto l = static_cast<std::int32_t>(lo);
    const auto h = static_cast<std::int32_t>(hi);
    if (lo == hi) {
      out.push_back(TypedPredicate::Eq(l));
    } else if (lo_open) {
      out.push_back(TypedPredicate::Le(h));
    } else if (hi_open) {
      out.push_back(TypedPredicate::Ge(l));
    } else {
      out.push_back(TypedPredicate::InRange(l, h));
    }
  }
  out.insert(out.end(), rest.begin(), rest.end());
  if (out.empty()) out.push_back(TypedPredicate::AlwaysTrue());
  return out;
}

bool CompileConjunction(const Expr& expr, int field_index,
                        std::vector<TypedPredicate>& out) {
  switch (expr.op) {
    case ExprOp::kConst:
      // Truthiness is exact for any literal type.
      out.push_back(expr.constant.as_bool() ? TypedPredicate::AlwaysTrue()
                                            : TypedPredicate::AlwaysFalse());
      return true;
    case ExprOp::kAnd:
      return CompileConjunction(expr.children[0], field_index, out) &&
             CompileConjunction(expr.children[1], field_index, out);
    case ExprOp::kNot: {
      std::vector<TypedPredicate> child;
      if (!CompileConjunction(expr.children[0], field_index, child) ||
          child.size() != 1) {
        return false;
      }
      const std::optional<TypedPredicate> neg = Negate(child[0]);
      if (!neg.has_value()) return false;
      out.push_back(*neg);
      return true;
    }
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
    case ExprOp::kEq:
    case ExprOp::kNe: {
      const Expr& l = expr.children[0];
      const Expr& r = expr.children[1];
      const Expr* field = nullptr;
      const Expr* lit = nullptr;
      ExprOp cmp = expr.op;
      if (l.op == ExprOp::kField && r.op == ExprOp::kConst) {
        field = &l;
        lit = &r;
      } else if (l.op == ExprOp::kConst && r.op == ExprOp::kField) {
        field = &r;
        lit = &l;
        cmp = MirrorCompare(cmp);
      } else {
        return false;
      }
      if (field->field != field_index) return false;
      // Float literals compare as double (Value semantics); only integer
      // literals fold exactly into the int32 kernels.
      if (lit->constant.is_float()) return false;
      out.push_back(ClampedCompare(cmp, lit->constant.i));
      return true;
    }
    default:
      return false;  // arithmetic, OR, bare field refs: fallback territory
  }
}

std::optional<TypedPredicate> CompilePredicate(const Expr& expr,
                                               int field_index) {
  std::vector<TypedPredicate> preds;
  if (!CompileConjunction(expr, field_index, preds)) return std::nullopt;
  std::vector<TypedPredicate> folded = FoldConjunction(preds);
  if (folded.size() != 1) return std::nullopt;
  return folded[0];
}

}  // namespace kf::relational
