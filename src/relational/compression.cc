#include "relational/compression.h"

#include <algorithm>

#include "common/error.h"

namespace kf::relational {

const char* ToString(CompressionScheme scheme) {
  switch (scheme) {
    case CompressionScheme::kRaw: return "raw";
    case CompressionScheme::kRunLength: return "rle";
    case CompressionScheme::kBitPacked: return "bitpack";
  }
  return "?";
}

namespace {

int BitsNeeded(std::uint64_t span) {
  int bits = 0;
  while (span != 0) {
    ++bits;
    span >>= 1;
  }
  return std::max(bits, 1);
}

}  // namespace

CompressedInt32 CompressedInt32::Compress(std::span<const std::int32_t> values) {
  CompressedInt32 result;
  result.value_count_ = values.size();
  if (values.empty()) return result;

  // Candidate 1 — run-length encoding.
  std::vector<std::pair<std::int32_t, std::uint32_t>> runs;
  runs.emplace_back(values[0], 1);
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] == runs.back().first && runs.back().second != UINT32_MAX) {
      ++runs.back().second;
    } else {
      runs.emplace_back(values[i], 1);
    }
  }
  const std::uint64_t rle_bytes = runs.size() * 8;

  // Candidate 2 — frame-of-reference bit packing.
  const auto [min_it, max_it] = std::minmax_element(values.begin(), values.end());
  const std::int64_t lo = *min_it;
  const std::int64_t hi = *max_it;
  const int width = BitsNeeded(static_cast<std::uint64_t>(hi - lo));
  const std::uint64_t packed_bytes =
      (values.size() * static_cast<std::uint64_t>(width) + 63) / 64 * 8 + 16;

  const std::uint64_t raw_bytes = values.size() * 4;

  if (rle_bytes <= packed_bytes && rle_bytes < raw_bytes) {
    result.scheme_ = CompressionScheme::kRunLength;
    result.runs_ = std::move(runs);
    return result;
  }
  if (packed_bytes < raw_bytes) {
    result.scheme_ = CompressionScheme::kBitPacked;
    result.frame_min_ = lo;
    result.bit_width_ = width;
    result.packed_.assign((values.size() * static_cast<std::uint64_t>(width) + 63) / 64,
                          0);
    for (std::size_t i = 0; i < values.size(); ++i) {
      const std::uint64_t delta =
          static_cast<std::uint64_t>(static_cast<std::int64_t>(values[i]) - lo);
      const std::size_t bit = i * static_cast<std::size_t>(width);
      const std::size_t word = bit / 64;
      const int shift = static_cast<int>(bit % 64);
      result.packed_[word] |= delta << shift;
      if (shift + width > 64) {
        result.packed_[word + 1] |= delta >> (64 - shift);
      }
    }
    return result;
  }
  result.scheme_ = CompressionScheme::kRaw;
  result.raw_.assign(values.begin(), values.end());
  return result;
}

std::uint64_t CompressedInt32::compressed_bytes() const {
  switch (scheme_) {
    case CompressionScheme::kRaw:
      return raw_.size() * 4;
    case CompressionScheme::kRunLength:
      return runs_.size() * 8;
    case CompressionScheme::kBitPacked:
      return packed_.size() * 8 + 16;  // + frame header
  }
  return 0;
}

std::vector<std::int32_t> CompressedInt32::Decompress() const {
  std::vector<std::int32_t> out;
  out.reserve(value_count_);
  switch (scheme_) {
    case CompressionScheme::kRaw:
      out = raw_;
      break;
    case CompressionScheme::kRunLength:
      for (const auto& [value, count] : runs_) {
        out.insert(out.end(), count, value);
      }
      break;
    case CompressionScheme::kBitPacked: {
      const std::uint64_t mask =
          bit_width_ == 64 ? ~0ull : ((1ull << bit_width_) - 1);
      for (std::size_t i = 0; i < value_count_; ++i) {
        const std::size_t bit = i * static_cast<std::size_t>(bit_width_);
        const std::size_t word = bit / 64;
        const int shift = static_cast<int>(bit % 64);
        std::uint64_t delta = packed_[word] >> shift;
        if (shift + bit_width_ > 64) {
          delta |= packed_[word + 1] << (64 - shift);
        }
        delta &= mask;
        out.push_back(static_cast<std::int32_t>(frame_min_ +
                                                static_cast<std::int64_t>(delta)));
      }
      break;
    }
  }
  KF_REQUIRE(out.size() == value_count_) << "decompression size mismatch";
  return out;
}

}  // namespace kf::relational
