// Relations: schemas and column-major tables.
#ifndef KF_RELATIONAL_TABLE_H_
#define KF_RELATIONAL_TABLE_H_

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "relational/column.h"

namespace kf::relational {

struct Field {
  std::string name;
  DataType type = DataType::kInt64;
};

class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Field> fields) : fields_(fields) {}
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  std::size_t field_count() const { return fields_.size(); }
  const Field& field(std::size_t i) const { return fields_.at(i); }
  const std::vector<Field>& fields() const { return fields_; }

  // Index of the field named `name`; throws if absent.
  std::size_t IndexOf(const std::string& name) const;

  // Bytes per row (sum of field widths) — drives transfer-size accounting.
  std::size_t row_width_bytes() const;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

// A row materialized as scalars (used by the generic operator paths and by
// tests; the hot staged-kernel paths use typed columns directly).
using Row = std::vector<Value>;

class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  std::size_t column_count() const { return columns_.size(); }
  std::size_t row_count() const { return row_count_; }
  bool empty() const { return row_count_ == 0; }

  std::uint64_t byte_size() const;

  Column& column(std::size_t i) { return columns_.at(i); }
  const Column& column(std::size_t i) const { return columns_.at(i); }
  const Column& column(const std::string& name) const {
    return columns_.at(schema_.IndexOf(name));
  }

  void Reserve(std::size_t rows);
  void AppendRow(std::span<const Value> row);
  void AppendRow(std::initializer_list<Value> row) {
    AppendRow(std::span<const Value>(row.begin(), row.size()));
  }
  Row GetRow(std::size_t i) const;

  // For bulk columnar fills that bypass AppendRow (typed column access):
  // validates that all columns have equal length and adopts it as the row
  // count. Throws on ragged columns.
  void SyncRowCountFromColumns();

  // All rows, materialized (testing convenience).
  std::vector<Row> Rows() const;

  std::string ToString(std::size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  std::size_t row_count_ = 0;
};

// True when the two tables hold the same multiset of rows (order-insensitive
// comparison used by tests and the TPC-H validation).
bool SameRowMultiset(const Table& a, const Table& b);

// Order-insensitive comparison with relative tolerance on float fields —
// aggregation sums accumulate in different orders in fused vs reference
// execution, so the last ulps may differ.
bool ApproxSameRowMultiset(const Table& a, const Table& b, double rel_tol = 1e-9);

}  // namespace kf::relational

#endif  // KF_RELATIONAL_TABLE_H_
