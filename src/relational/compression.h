// Lightweight columnar compression for PCIe transfer reduction.
//
// The paper's related work contrasts kernel fusion with He et al.'s
// suggestion to attack the PCIe bottleneck with data compression [25]. This
// module implements that alternative so the two can be compared (and
// composed) in the benchmarks: GPU-database-style lightweight schemes —
// run-length encoding and frame-of-reference bit-packing — with a
// cheapest-scheme chooser. Decompression is branch-light streaming work, the
// kind a GPU kernel (or a fused kernel's first stage) performs at memory
// bandwidth.
#ifndef KF_RELATIONAL_COMPRESSION_H_
#define KF_RELATIONAL_COMPRESSION_H_

#include <cstdint>
#include <span>
#include <vector>

namespace kf::relational {

enum class CompressionScheme : std::uint8_t {
  kRaw,           // incompressible data: stored verbatim
  kRunLength,     // (value, run length) pairs
  kBitPacked,     // frame of reference + fixed-width bit packing
};

const char* ToString(CompressionScheme scheme);

class CompressedInt32 {
 public:
  // Compresses with whichever scheme yields the fewest bytes.
  static CompressedInt32 Compress(std::span<const std::int32_t> values);

  CompressionScheme scheme() const { return scheme_; }
  std::size_t value_count() const { return value_count_; }
  // Bytes that would cross PCIe.
  std::uint64_t compressed_bytes() const;
  std::uint64_t uncompressed_bytes() const { return value_count_ * 4; }
  double ratio() const {
    return compressed_bytes() == 0
               ? 1.0
               : static_cast<double>(uncompressed_bytes()) /
                     static_cast<double>(compressed_bytes());
  }

  std::vector<std::int32_t> Decompress() const;

 private:
  CompressionScheme scheme_ = CompressionScheme::kRaw;
  std::size_t value_count_ = 0;

  std::vector<std::int32_t> raw_;                       // kRaw
  std::vector<std::pair<std::int32_t, std::uint32_t>> runs_;  // kRunLength
  std::int64_t frame_min_ = 0;                          // kBitPacked
  int bit_width_ = 0;
  std::vector<std::uint64_t> packed_;
};

}  // namespace kf::relational

#endif  // KF_RELATIONAL_COMPRESSION_H_
