#include "relational/expr.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace kf::relational {

const char* ToString(ExprOp op) {
  switch (op) {
    case ExprOp::kConst: return "const";
    case ExprOp::kField: return "field";
    case ExprOp::kAdd: return "+";
    case ExprOp::kSub: return "-";
    case ExprOp::kMul: return "*";
    case ExprOp::kDiv: return "/";
    case ExprOp::kLt: return "<";
    case ExprOp::kLe: return "<=";
    case ExprOp::kGt: return ">";
    case ExprOp::kGe: return ">=";
    case ExprOp::kEq: return "==";
    case ExprOp::kNe: return "!=";
    case ExprOp::kAnd: return "&&";
    case ExprOp::kOr: return "||";
    case ExprOp::kNot: return "!";
  }
  return "?";
}

Expr Expr::Lit(Value v) {
  Expr e;
  e.op = ExprOp::kConst;
  e.constant = v;
  return e;
}

Expr Expr::FieldRef(int index) {
  KF_REQUIRE(index >= 0) << "negative field index";
  Expr e;
  e.op = ExprOp::kField;
  e.field = index;
  return e;
}

Expr Expr::Unary(ExprOp op, Expr a) {
  Expr e;
  e.op = op;
  e.children.push_back(std::move(a));
  return e;
}

Expr Expr::Binary(ExprOp op, Expr a, Expr b) {
  Expr e;
  e.op = op;
  e.children.push_back(std::move(a));
  e.children.push_back(std::move(b));
  return e;
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (op) {
    case ExprOp::kConst:
      os << constant.ToString();
      break;
    case ExprOp::kField:
      os << "$" << field;
      break;
    case ExprOp::kNot:
      os << "!(" << children[0].ToString() << ")";
      break;
    default:
      os << "(" << children[0].ToString() << " " << kf::relational::ToString(op) << " "
         << children[1].ToString() << ")";
      break;
  }
  return os.str();
}

namespace {

Value Arith(ExprOp op, const Value& a, const Value& b) {
  const bool as_float = a.is_float() || b.is_float() || op == ExprOp::kDiv;
  if (as_float) {
    const double x = a.as_double();
    const double y = b.as_double();
    switch (op) {
      case ExprOp::kAdd: return Value::Float64(x + y);
      case ExprOp::kSub: return Value::Float64(x - y);
      case ExprOp::kMul: return Value::Float64(x * y);
      case ExprOp::kDiv:
        KF_REQUIRE(y != 0.0) << "division by zero in expression";
        return Value::Float64(x / y);
      default: break;
    }
  } else {
    const std::int64_t x = a.as_int();
    const std::int64_t y = b.as_int();
    switch (op) {
      case ExprOp::kAdd: return Value::Int64(x + y);
      case ExprOp::kSub: return Value::Int64(x - y);
      case ExprOp::kMul: return Value::Int64(x * y);
      default: break;
    }
  }
  KF_REQUIRE(false) << "not an arithmetic op";
  return {};
}

Value Compare(ExprOp op, const Value& a, const Value& b) {
  bool result = false;
  switch (op) {
    case ExprOp::kLt: result = a < b; break;
    case ExprOp::kLe: result = a <= b; break;
    case ExprOp::kGt: result = a > b; break;
    case ExprOp::kGe: result = a >= b; break;
    case ExprOp::kEq: result = a == b; break;
    case ExprOp::kNe: result = a != b; break;
    default: KF_REQUIRE(false) << "not a comparison op";
  }
  return Value::Int64(result ? 1 : 0);
}

}  // namespace

Value EvalExpr(const Expr& expr, const Row& row) {
  switch (expr.op) {
    case ExprOp::kConst:
      return expr.constant;
    case ExprOp::kField:
      KF_REQUIRE(expr.field >= 0 && static_cast<std::size_t>(expr.field) < row.size())
          << "field $" << expr.field << " out of range for row of " << row.size();
      return row[static_cast<std::size_t>(expr.field)];
    case ExprOp::kAdd:
    case ExprOp::kSub:
    case ExprOp::kMul:
    case ExprOp::kDiv:
      return Arith(expr.op, EvalExpr(expr.children[0], row),
                   EvalExpr(expr.children[1], row));
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
    case ExprOp::kEq:
    case ExprOp::kNe:
      return Compare(expr.op, EvalExpr(expr.children[0], row),
                     EvalExpr(expr.children[1], row));
    case ExprOp::kAnd:
      // Short-circuit like the CUDA source would.
      if (!EvalExpr(expr.children[0], row).as_bool()) return Value::Int64(0);
      return Value::Int64(EvalExpr(expr.children[1], row).as_bool() ? 1 : 0);
    case ExprOp::kOr:
      if (EvalExpr(expr.children[0], row).as_bool()) return Value::Int64(1);
      return Value::Int64(EvalExpr(expr.children[1], row).as_bool() ? 1 : 0);
    case ExprOp::kNot:
      return Value::Int64(EvalExpr(expr.children[0], row).as_bool() ? 0 : 1);
  }
  return {};
}

double ExprOps(const Expr& expr) {
  double ops = 1.0;
  for (const Expr& child : expr.children) ops += ExprOps(child);
  return ops;
}

int ExprRegisters(const Expr& expr) {
  if (expr.children.empty()) return 1;
  if (expr.children.size() == 1) return ExprRegisters(expr.children[0]);
  const int left = ExprRegisters(expr.children[0]);
  const int right = ExprRegisters(expr.children[1]);
  return left == right ? left + 1 : std::max(left, right);
}

int ExprMaxField(const Expr& expr) {
  int max_field = expr.op == ExprOp::kField ? expr.field : -1;
  for (const Expr& child : expr.children) max_field = std::max(max_field, ExprMaxField(child));
  return max_field;
}

}  // namespace kf::relational
