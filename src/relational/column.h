// Typed values and columnar storage.
//
// Tables are stored column-major, as on the GPU in the paper's system
// (compressed row data is "transferred as columns of 32-bit integers"); we
// additionally support 64-bit integers and doubles for the TPC-H arithmetic.
#ifndef KF_RELATIONAL_COLUMN_H_
#define KF_RELATIONAL_COLUMN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "common/error.h"

namespace kf::relational {

enum class DataType : std::uint8_t { kInt32, kInt64, kFloat64 };

const char* ToString(DataType type);
std::size_t SizeOf(DataType type);

// A dynamically-typed scalar. Comparison is numeric across integer widths;
// mixing integers with floats compares as double.
struct Value {
  DataType type = DataType::kInt64;
  std::int64_t i = 0;
  double f = 0.0;

  static Value Int32(std::int32_t v) { return Value{DataType::kInt32, v, 0.0}; }
  static Value Int64(std::int64_t v) { return Value{DataType::kInt64, v, 0.0}; }
  static Value Float64(double v) { return Value{DataType::kFloat64, 0, v}; }

  bool is_float() const { return type == DataType::kFloat64; }
  double as_double() const { return is_float() ? f : static_cast<double>(i); }
  std::int64_t as_int() const { return is_float() ? static_cast<std::int64_t>(f) : i; }
  bool as_bool() const { return is_float() ? f != 0.0 : i != 0; }

  friend bool operator==(const Value& a, const Value& b) {
    if (a.is_float() || b.is_float()) return a.as_double() == b.as_double();
    return a.i == b.i;
  }
  friend bool operator<(const Value& a, const Value& b) {
    if (a.is_float() || b.is_float()) return a.as_double() < b.as_double();
    return a.i < b.i;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<=(const Value& a, const Value& b) { return !(b < a); }
  friend bool operator>(const Value& a, const Value& b) { return b < a; }
  friend bool operator>=(const Value& a, const Value& b) { return !(a < b); }

  std::string ToString() const;
};

// Hash consistent with operator== (integers hash by value; floats by the
// double they compare as).
struct ValueHash {
  std::size_t operator()(const Value& v) const {
    if (v.is_float()) return std::hash<double>{}(v.f);
    // Hash integers through double only when they are exactly representable;
    // otherwise by integer value. Mixed int/double keys of equal numeric
    // value are rare in practice and never occur in our queries.
    return std::hash<double>{}(static_cast<double>(v.i));
  }
};

struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return a == b; }
};

// A single typed column.
class Column {
 public:
  explicit Column(DataType type = DataType::kInt64);

  DataType type() const { return type_; }
  std::size_t size() const;
  std::uint64_t byte_size() const { return size() * SizeOf(type_); }
  bool empty() const { return size() == 0; }

  void Reserve(std::size_t n);
  void Append(const Value& v);
  Value Get(std::size_t i) const;
  void Clear();

  // Typed access (throws on type mismatch).
  std::vector<std::int32_t>& AsInt32();
  const std::vector<std::int32_t>& AsInt32() const;
  std::vector<std::int64_t>& AsInt64();
  const std::vector<std::int64_t>& AsInt64() const;
  std::vector<double>& AsFloat64();
  const std::vector<double>& AsFloat64() const;

 private:
  DataType type_;
  std::variant<std::vector<std::int32_t>, std::vector<std::int64_t>, std::vector<double>>
      data_;
};

}  // namespace kf::relational

#endif  // KF_RELATIONAL_COLUMN_H_
