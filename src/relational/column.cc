#include "relational/column.h"

#include <sstream>

namespace kf::relational {

const char* ToString(DataType type) {
  switch (type) {
    case DataType::kInt32: return "i32";
    case DataType::kInt64: return "i64";
    case DataType::kFloat64: return "f64";
  }
  return "?";
}

std::size_t SizeOf(DataType type) {
  switch (type) {
    case DataType::kInt32: return 4;
    case DataType::kInt64: return 8;
    case DataType::kFloat64: return 8;
  }
  return 0;
}

std::string Value::ToString() const {
  std::ostringstream os;
  if (is_float()) {
    os << f;
  } else {
    os << i;
  }
  return os.str();
}

Column::Column(DataType type) : type_(type) {
  switch (type_) {
    case DataType::kInt32: data_ = std::vector<std::int32_t>{}; break;
    case DataType::kInt64: data_ = std::vector<std::int64_t>{}; break;
    case DataType::kFloat64: data_ = std::vector<double>{}; break;
  }
}

std::size_t Column::size() const {
  return std::visit([](const auto& v) { return v.size(); }, data_);
}

void Column::Reserve(std::size_t n) {
  std::visit([n](auto& v) { v.reserve(n); }, data_);
}

void Column::Clear() {
  std::visit([](auto& v) { v.clear(); }, data_);
}

void Column::Append(const Value& v) {
  switch (type_) {
    case DataType::kInt32:
      std::get<std::vector<std::int32_t>>(data_).push_back(
          static_cast<std::int32_t>(v.as_int()));
      break;
    case DataType::kInt64:
      std::get<std::vector<std::int64_t>>(data_).push_back(v.as_int());
      break;
    case DataType::kFloat64:
      std::get<std::vector<double>>(data_).push_back(v.as_double());
      break;
  }
}

Value Column::Get(std::size_t i) const {
  switch (type_) {
    case DataType::kInt32:
      return Value::Int32(std::get<std::vector<std::int32_t>>(data_).at(i));
    case DataType::kInt64:
      return Value::Int64(std::get<std::vector<std::int64_t>>(data_).at(i));
    case DataType::kFloat64:
      return Value::Float64(std::get<std::vector<double>>(data_).at(i));
  }
  return {};
}

std::vector<std::int32_t>& Column::AsInt32() {
  KF_REQUIRE(type_ == DataType::kInt32) << "column is " << kf::relational::ToString(type_);
  return std::get<std::vector<std::int32_t>>(data_);
}
const std::vector<std::int32_t>& Column::AsInt32() const {
  KF_REQUIRE(type_ == DataType::kInt32) << "column is " << kf::relational::ToString(type_);
  return std::get<std::vector<std::int32_t>>(data_);
}
std::vector<std::int64_t>& Column::AsInt64() {
  KF_REQUIRE(type_ == DataType::kInt64) << "column is " << kf::relational::ToString(type_);
  return std::get<std::vector<std::int64_t>>(data_);
}
const std::vector<std::int64_t>& Column::AsInt64() const {
  KF_REQUIRE(type_ == DataType::kInt64) << "column is " << kf::relational::ToString(type_);
  return std::get<std::vector<std::int64_t>>(data_);
}
std::vector<double>& Column::AsFloat64() {
  KF_REQUIRE(type_ == DataType::kFloat64) << "column is " << kf::relational::ToString(type_);
  return std::get<std::vector<double>>(data_);
}
const std::vector<double>& Column::AsFloat64() const {
  KF_REQUIRE(type_ == DataType::kFloat64) << "column is " << kf::relational::ToString(type_);
  return std::get<std::vector<double>>(data_);
}

}  // namespace kf::relational
