#include "relational/staged_join.h"

#include <bit>

#include "common/error.h"
#include "common/prefix_sum.h"
#include "relational/staged_kernel.h"

namespace kf::relational {

namespace {

std::uint64_t HashKey(std::int64_t key) {
  auto x = static_cast<std::uint64_t>(key);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

StagedHashTable::StagedHashTable(std::span<const JoinPair> rows, int chunk_count,
                                 ThreadPool* pool)
    : entries_(rows.size()) {
  // Power-of-two capacity at load factor <= 0.5 keeps probe runs short.
  const std::size_t capacity =
      std::bit_ceil(std::max<std::size_t>(16, rows.size() * 2));
  slots_ = std::vector<Slot>(capacity);
  mask_ = capacity - 1;

  auto insert_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      KF_REQUIRE(rows[i].key != kEmpty) << "INT64_MIN key is reserved";
      std::size_t slot = Index(rows[i].key);
      for (;;) {
        std::int64_t expected = kEmpty;
        // Claim an empty slot with CAS, then write the value. No probe runs
        // concurrently with the build (stage barrier), so the value write
        // needs no ordering beyond the pool's join.
        if (slots_[slot].key.load(std::memory_order_relaxed) == kEmpty &&
            slots_[slot].key.compare_exchange_strong(expected, rows[i].key,
                                                     std::memory_order_acq_rel)) {
          slots_[slot].value = rows[i].value;
          break;
        }
        slot = (slot + 1) & mask_;
      }
    }
  };

  const std::vector<ChunkRange> chunks = PartitionInput(rows.size(), chunk_count);
  if (pool != nullptr && chunks.size() > 1) {
    pool->ParallelForEach(chunks.size(), [&](std::size_t c) {
      insert_range(chunks[c].begin, chunks[c].end);
    });
  } else {
    insert_range(0, rows.size());
  }
}

std::size_t StagedHashTable::Index(std::int64_t key) const {
  return static_cast<std::size_t>(HashKey(key)) & mask_;
}

std::size_t StagedHashTable::Probe(std::int64_t key,
                                   std::vector<std::int64_t>& out) const {
  std::size_t matches = 0;
  std::size_t slot = Index(key);
  for (;;) {
    const std::int64_t stored = slots_[slot].key.load(std::memory_order_acquire);
    if (stored == kEmpty) return matches;
    if (stored == key) {
      out.push_back(slots_[slot].value);
      ++matches;
    }
    slot = (slot + 1) & mask_;
  }
}

std::vector<JoinedRow> StagedHashJoin(std::span<const JoinPair> left,
                                      std::span<const JoinPair> right,
                                      int chunk_count, ThreadPool* pool) {
  // Build stage (cross-CTA barrier before probing).
  const StagedHashTable table(right, chunk_count, pool);

  // Probe stage: per-chunk buffers.
  const std::vector<ChunkRange> chunks = PartitionInput(left.size(), chunk_count);
  std::vector<std::vector<JoinedRow>> buffers(chunks.size());
  auto probe_chunk = [&](std::size_t c) {
    std::vector<std::int64_t> matches;
    auto& buffer = buffers[c];
    for (std::size_t i = chunks[c].begin; i < chunks[c].end; ++i) {
      matches.clear();
      table.Probe(left[i].key, matches);
      for (std::int64_t value : matches) {
        buffer.push_back(JoinedRow{left[i].key, left[i].value, value});
      }
    }
  };
  if (pool != nullptr && chunks.size() > 1) {
    pool->ParallelForEach(chunks.size(), probe_chunk);
  } else {
    for (std::size_t c = 0; c < chunks.size(); ++c) probe_chunk(c);
  }

  // Gather stage: scan + positioned concatenation.
  std::vector<std::uint64_t> counts(buffers.size());
  for (std::size_t c = 0; c < buffers.size(); ++c) counts[c] = buffers[c].size();
  const std::vector<std::uint64_t> offsets = ExclusiveScanWithTotal(counts);
  std::vector<JoinedRow> output(offsets.back());
  for (std::size_t c = 0; c < buffers.size(); ++c) {
    std::copy(buffers[c].begin(), buffers[c].end(), output.begin() + offsets[c]);
  }
  return output;
}

}  // namespace kf::relational
