// Staged GPU-style SELECT kernels (paper Figure 3), executed on host threads.
//
// Diamos et al.'s RA algorithms are multi-stage: the input is partitioned
// into chunks (one per CTA), each chunk is filtered in parallel into a dense
// per-chunk buffer, a global synchronization computes output offsets from the
// per-chunk match counts (an exclusive scan), and a second kernel gathers the
// buffers into the final dense array. Kernel fusion operates on this stage
// structure — a fused SELECT chain inserts extra filter stages and keeps a
// single partition/buffer/gather (Figure 6) — so the structure is kept
// literal here: each stage is a separate function, and the fused/unfused
// paths below differ exactly the way the paper's kernels differ.
#ifndef KF_RELATIONAL_STAGED_KERNEL_H_
#define KF_RELATIONAL_STAGED_KERNEL_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/thread_pool.h"

namespace kf::relational {

struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

// Stage 1 — partition: split [0, n) into `chunk_count` contiguous chunks
// (the last may be short; empty chunks are produced when n < chunk_count).
std::vector<ChunkRange> PartitionInput(std::size_t n, int chunk_count);

using Int32Predicate = std::function<bool(std::int32_t)>;

// Stages 2+3 — filter + buffer: each chunk's matching elements, densely
// packed per chunk, plus the per-chunk match counts.
struct FilterStageResult {
  std::vector<std::vector<std::int32_t>> buffers;
  std::vector<std::uint32_t> counts;
  std::size_t total_matches() const;
};

FilterStageResult RunFilterStage(std::span<const std::int32_t> input,
                                 std::span<const ChunkRange> chunks,
                                 const Int32Predicate& predicate,
                                 ThreadPool* pool = nullptr);

// Stage 4 — gather: offsets from the exclusive scan of counts (the global
// synchronization between the two CUDA kernels), then a positioned copy.
std::vector<std::int32_t> RunGatherStage(const FilterStageResult& filtered,
                                         ThreadPool* pool = nullptr);

// Realized statistics of a staged select run — these feed the cost model.
struct StagedSelectStats {
  std::size_t input_count = 0;
  std::size_t output_count = 0;
  int chunk_count = 0;
  int filter_stage_count = 1;  // > 1 for fused chains
};

// Complete staged SELECT: partition, filter, scan, gather. A fused chain of
// SELECTs is expressed by passing a composed predicate and recording the
// chain depth in the stats (the filter stage applies every predicate while
// the element is still in registers — Figure 6).
std::vector<std::int32_t> StagedSelect(std::span<const std::int32_t> input,
                                       const Int32Predicate& predicate,
                                       int chunk_count, ThreadPool* pool = nullptr,
                                       StagedSelectStats* stats = nullptr,
                                       int filter_stage_count = 1);

// The unfused chain: one full staged SELECT (two CUDA kernels each) per
// predicate, materializing every intermediate — the paper's baseline.
std::vector<std::int32_t> StagedSelectChainUnfused(
    std::span<const std::int32_t> input, std::span<const Int32Predicate> predicates,
    int chunk_count, ThreadPool* pool = nullptr,
    std::vector<StagedSelectStats>* per_step_stats = nullptr);

// The fused chain: a single staged SELECT whose filter stage applies all
// predicates back-to-back (one partition, one buffer, one gather).
std::vector<std::int32_t> StagedSelectChainFused(
    std::span<const std::int32_t> input, std::span<const Int32Predicate> predicates,
    int chunk_count, ThreadPool* pool = nullptr, StagedSelectStats* stats = nullptr);

}  // namespace kf::relational

#endif  // KF_RELATIONAL_STAGED_KERNEL_H_
