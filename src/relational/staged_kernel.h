// Staged GPU-style SELECT kernels (paper Figure 3), executed on host threads.
//
// Diamos et al.'s RA algorithms are multi-stage: the input is partitioned
// into chunks (one per CTA), each chunk is filtered in parallel into a dense
// per-chunk buffer, a global synchronization computes output offsets from the
// per-chunk match counts (an exclusive scan), and a second kernel gathers the
// buffers into the final dense array. Kernel fusion operates on this stage
// structure — a fused SELECT chain inserts extra filter stages and keeps a
// single partition/buffer/gather (Figure 6) — so the structure is kept
// literal here: each stage is a separate function, and the fused/unfused
// paths below differ exactly the way the paper's kernels differ.
//
// Two API layers:
//  - The `...Into` functions are the hot substrate: they run over a pooled
//    `StagedBuffers` workspace (typically checked out of a kf::BufferArena),
//    use the typed predicate kernels from relational/predicate.h, and perform
//    ZERO heap allocations once the workspace is warm.
//  - The original std::function-based entry points remain for callers that
//    don't manage a workspace; they ride the same substrate through a
//    thread-local arena plus a PredOp::kFallback wrapper, paying one final
//    copy into the returned vector.
#ifndef KF_RELATIONAL_STAGED_KERNEL_H_
#define KF_RELATIONAL_STAGED_KERNEL_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/buffer_arena.h"
#include "common/thread_pool.h"
#include "relational/predicate.h"

namespace kf::relational {

struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

// Stage 1 — partition: split [0, n) into `chunk_count` contiguous chunks
// (the last may be short; empty chunks are produced when n < chunk_count).
std::vector<ChunkRange> PartitionInput(std::size_t n, int chunk_count);

// In-place variant for pooled workspaces (allocation-free when warm).
void PartitionInputInto(std::size_t n, int chunk_count,
                        std::vector<ChunkRange>& ranges);

using Int32Predicate = std::function<bool(std::int32_t)>;

// Stages 2+3 — filter + buffer: each chunk's matching elements, densely
// packed per chunk, plus the per-chunk match counts.
struct FilterStageResult {
  std::vector<std::vector<std::int32_t>> buffers;
  std::vector<std::uint32_t> counts;
  std::size_t total_matches() const;
};

FilterStageResult RunFilterStage(std::span<const std::int32_t> input,
                                 std::span<const ChunkRange> chunks,
                                 const Int32Predicate& predicate,
                                 ThreadPool* pool = nullptr);

// Stage 4 — gather: offsets from the exclusive scan of counts (the global
// synchronization between the two CUDA kernels), then a positioned copy.
std::vector<std::int32_t> RunGatherStage(const FilterStageResult& filtered,
                                         ThreadPool* pool = nullptr);

// Realized statistics of a staged select run — these feed the cost model.
struct StagedSelectStats {
  std::size_t input_count = 0;
  std::size_t output_count = 0;
  int chunk_count = 0;
  int filter_stage_count = 1;  // > 1 for fused chains
};

// Reusable workspace for the staged stages. Every vector retains its capacity
// across runs, so a warm workspace executes a whole staged SELECT (or chain)
// without touching the heap. Pool it through kf::BufferArena.
struct StagedBuffers {
  std::vector<ChunkRange> chunks;                  // partition stage
  std::vector<std::vector<std::int32_t>> buffers;  // per-chunk dense buffers
  std::vector<std::uint32_t> counts;               // per-chunk match counts
  std::vector<std::uint32_t> offsets;              // exclusive scan + total
  std::vector<std::int32_t> output;                // gather destination
  std::vector<std::int32_t> stage_a;               // unfused-chain ping...
  std::vector<std::int32_t> stage_b;               // ...pong intermediates

  // Retained heap capacity — reported as hostperf.arena_reused_bytes on
  // arena reuse.
  std::size_t CapacityBytes() const;
};

// Complete staged SELECT over a workspace: partition, typed filter, scan,
// gather. The result lives in `ws.output`; the returned span aliases it and
// is valid until the workspace is reused. Allocation-free when warm.
std::span<const std::int32_t> StagedSelectInto(
    std::span<const std::int32_t> input, const TypedPredicate& predicate,
    int chunk_count, StagedBuffers& ws, ThreadPool* pool = nullptr,
    StagedSelectStats* stats = nullptr, int filter_stage_count = 1);

// Fused chain over a workspace: one partition/buffer/gather whose filter
// stage applies every predicate while the element is still in registers.
std::span<const std::int32_t> StagedSelectChainFusedInto(
    std::span<const std::int32_t> input,
    std::span<const TypedPredicate> predicates, int chunk_count,
    StagedBuffers& ws, ThreadPool* pool = nullptr,
    StagedSelectStats* stats = nullptr);

// Unfused chain over a workspace: one full staged SELECT per predicate. The
// first step reads the input span directly (no defensive copy); later steps
// ping-pong between ws.stage_a and ws.stage_b. The result aliases the
// workspace like StagedSelectInto.
std::span<const std::int32_t> StagedSelectChainUnfusedInto(
    std::span<const std::int32_t> input,
    std::span<const TypedPredicate> predicates, int chunk_count,
    StagedBuffers& ws, ThreadPool* pool = nullptr,
    std::vector<StagedSelectStats>* per_step_stats = nullptr);

// Complete staged SELECT: partition, filter, scan, gather. A fused chain of
// SELECTs is expressed by passing a composed predicate and recording the
// chain depth in the stats (the filter stage applies every predicate while
// the element is still in registers — Figure 6).
std::vector<std::int32_t> StagedSelect(std::span<const std::int32_t> input,
                                       const Int32Predicate& predicate,
                                       int chunk_count, ThreadPool* pool = nullptr,
                                       StagedSelectStats* stats = nullptr,
                                       int filter_stage_count = 1);

// The unfused chain: one full staged SELECT (two CUDA kernels each) per
// predicate, materializing every intermediate — the paper's baseline.
std::vector<std::int32_t> StagedSelectChainUnfused(
    std::span<const std::int32_t> input, std::span<const Int32Predicate> predicates,
    int chunk_count, ThreadPool* pool = nullptr,
    std::vector<StagedSelectStats>* per_step_stats = nullptr);

// The fused chain: a single staged SELECT whose filter stage applies all
// predicates back-to-back (one partition, one buffer, one gather).
std::vector<std::int32_t> StagedSelectChainFused(
    std::span<const std::int32_t> input, std::span<const Int32Predicate> predicates,
    int chunk_count, ThreadPool* pool = nullptr, StagedSelectStats* stats = nullptr);

}  // namespace kf::relational

#endif  // KF_RELATIONAL_STAGED_KERNEL_H_
