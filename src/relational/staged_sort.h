// Staged LSD radix sort — the GPU-style SORT substrate.
//
// SORT is the paper's canonical fusion barrier and, in Q1, 71% of the
// baseline runtime, so the substrate implements it with the same structure
// GPU radix sorts use (and the cost model charges for): per 8-bit digit
// pass, each chunk (simulated CTA) builds a local 256-bin histogram, a
// global bucket-major exclusive scan assigns every (bucket, chunk) pair its
// output range, and a stable scatter places the elements. Signed keys are
// handled with the usual bias transform.
#ifndef KF_RELATIONAL_STAGED_SORT_H_
#define KF_RELATIONAL_STAGED_SORT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.h"

namespace kf::relational {

// Sorts 32-bit signed keys ascending. `chunk_count` chunks per pass.
std::vector<std::int32_t> StagedRadixSort(std::span<const std::int32_t> keys,
                                          int chunk_count = 64,
                                          ThreadPool* pool = nullptr);

// Stable argsort: returns the permutation `p` such that keys[p[0]] <=
// keys[p[1]] <= ... with ties in input order — how a GPU sorts whole rows
// (sort (key, index) pairs, then gather the payload columns).
std::vector<std::uint32_t> StagedRadixArgsort(std::span<const std::int32_t> keys,
                                              int chunk_count = 64,
                                              ThreadPool* pool = nullptr);

}  // namespace kf::relational

#endif  // KF_RELATIONAL_STAGED_SORT_H_
