#include "relational/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/error.h"

namespace kf::relational {

std::size_t Schema::IndexOf(const std::string& name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  KF_REQUIRE(false) << "no field named '" << name << "' in schema " << ToString();
  return 0;  // unreachable
}

std::size_t Schema::row_width_bytes() const {
  std::size_t width = 0;
  for (const Field& f : fields_) width += SizeOf(f.type);
  return width;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i) os << ", ";
    os << fields_[i].name << ":" << kf::relational::ToString(fields_[i].type);
  }
  os << ")";
  return os.str();
}

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.field_count());
  for (const Field& f : schema_.fields()) columns_.emplace_back(f.type);
}

std::uint64_t Table::byte_size() const {
  std::uint64_t total = 0;
  for (const Column& c : columns_) total += c.byte_size();
  return total;
}

void Table::Reserve(std::size_t rows) {
  for (Column& c : columns_) c.Reserve(rows);
}

void Table::AppendRow(std::span<const Value> row) {
  KF_REQUIRE(row.size() == columns_.size())
      << "row has " << row.size() << " values, schema " << schema_.ToString();
  for (std::size_t i = 0; i < columns_.size(); ++i) columns_[i].Append(row[i]);
  ++row_count_;
}

void Table::SyncRowCountFromColumns() {
  KF_REQUIRE(!columns_.empty()) << "table has no columns";
  const std::size_t rows = columns_.front().size();
  for (const Column& c : columns_) {
    KF_REQUIRE(c.size() == rows) << "ragged columns: " << c.size() << " vs " << rows;
  }
  row_count_ = rows;
}

Row Table::GetRow(std::size_t i) const {
  KF_REQUIRE(i < row_count_) << "row " << i << " out of range (" << row_count_ << ")";
  Row row;
  row.reserve(columns_.size());
  for (const Column& c : columns_) row.push_back(c.Get(i));
  return row;
}

std::vector<Row> Table::Rows() const {
  std::vector<Row> rows;
  rows.reserve(row_count_);
  for (std::size_t i = 0; i < row_count_; ++i) rows.push_back(GetRow(i));
  return rows;
}

std::string Table::ToString(std::size_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << " rows=" << row_count_ << "\n";
  const std::size_t limit = std::min(row_count_, max_rows);
  for (std::size_t r = 0; r < limit; ++r) {
    os << "  (";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c) os << ", ";
      os << columns_[c].Get(r).ToString();
    }
    os << ")\n";
  }
  if (limit < row_count_) os << "  ... " << row_count_ - limit << " more\n";
  return os.str();
}

bool ApproxSameRowMultiset(const Table& a, const Table& b, double rel_tol) {
  if (a.row_count() != b.row_count() || a.column_count() != b.column_count()) {
    return false;
  }
  auto row_less = [](const Row& x, const Row& y) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i] < y[i]) return true;
      if (y[i] < x[i]) return false;
    }
    return false;
  };
  std::vector<Row> rows_a = a.Rows();
  std::vector<Row> rows_b = b.Rows();
  std::sort(rows_a.begin(), rows_a.end(), row_less);
  std::sort(rows_b.begin(), rows_b.end(), row_less);
  for (std::size_t r = 0; r < rows_a.size(); ++r) {
    for (std::size_t c = 0; c < rows_a[r].size(); ++c) {
      const Value& va = rows_a[r][c];
      const Value& vb = rows_b[r][c];
      if (!va.is_float() && !vb.is_float()) {
        if (va.as_int() != vb.as_int()) return false;
      } else {
        const double x = va.as_double();
        const double y = vb.as_double();
        const double scale = std::max({1.0, std::abs(x), std::abs(y)});
        if (std::abs(x - y) > rel_tol * scale) return false;
      }
    }
  }
  return true;
}

bool SameRowMultiset(const Table& a, const Table& b) {
  if (a.row_count() != b.row_count() ||
      a.column_count() != b.column_count()) {
    return false;
  }
  auto key = [](const Row& row) {
    std::ostringstream os;
    os << std::setprecision(17);  // round-trip doubles exactly
    for (const Value& v : row) {
      if (v.is_float()) {
        os << "f" << v.as_double() << "|";
      } else {
        os << "i" << v.as_int() << "|";
      }
    }
    return os.str();
  };
  std::map<std::string, int> counts;
  for (const Row& row : a.Rows()) ++counts[key(row)];
  for (const Row& row : b.Rows()) {
    if (--counts[key(row)] < 0) return false;
  }
  return true;
}

}  // namespace kf::relational
