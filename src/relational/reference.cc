#include "relational/reference.h"

#include <algorithm>
#include <map>

#include "common/error.h"

namespace kf::relational::reference {
namespace {

bool RowEq(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

bool RowLess(const Row& a, const Row& b) {
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    if (a[i] < b[i]) return true;
    if (b[i] < a[i]) return false;
  }
  return a.size() < b.size();
}

Table FromRows(const Schema& schema, const std::vector<Row>& rows) {
  Table out(schema);
  out.Reserve(rows.size());
  for (const Row& row : rows) out.AppendRow(row);
  return out;
}

std::vector<Row> DistinctSorted(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), RowLess);
  rows.erase(std::unique(rows.begin(), rows.end(), RowEq), rows.end());
  return rows;
}

}  // namespace

Table Apply(const OperatorDesc& op, const Table& left, const Table* right) {
  KF_REQUIRE(op.is_binary() == (right != nullptr))
      << ToString(op.kind) << ": right input " << (right ? "unexpected" : "missing");
  const std::vector<Row> left_rows = left.Rows();
  switch (op.kind) {
    case OpKind::kSelect: {
      std::vector<Row> out;
      for (const Row& row : left_rows) {
        if (EvalExpr(op.predicate, row).as_bool()) out.push_back(row);
      }
      return FromRows(left.schema(), out);
    }
    case OpKind::kProject: {
      std::vector<Row> out;
      for (const Row& row : left_rows) {
        Row projected;
        for (int f : op.fields) projected.push_back(row.at(static_cast<std::size_t>(f)));
        out.push_back(std::move(projected));
      }
      return FromRows(OutputSchema(op, left.schema(), nullptr), out);
    }
    case OpKind::kProduct: {
      std::vector<Row> out;
      for (const Row& l : left_rows) {
        for (const Row& r : right->Rows()) {
          Row combined = l;
          combined.insert(combined.end(), r.begin(), r.end());
          out.push_back(std::move(combined));
        }
      }
      return FromRows(OutputSchema(op, left.schema(), &right->schema()), out);
    }
    case OpKind::kJoin: {
      // Nested-loop equi-join.
      std::vector<Row> out;
      const std::vector<Row> right_rows = right->Rows();
      for (const Row& l : left_rows) {
        for (const Row& r : right_rows) {
          if (l.at(static_cast<std::size_t>(op.left_key)) !=
              r.at(static_cast<std::size_t>(op.right_key))) {
            continue;
          }
          Row combined = l;
          for (std::size_t c = 0; c < r.size(); ++c) {
            if (static_cast<int>(c) != op.right_key) combined.push_back(r[c]);
          }
          out.push_back(std::move(combined));
        }
      }
      return FromRows(OutputSchema(op, left.schema(), &right->schema()), out);
    }
    case OpKind::kUnion: {
      std::vector<Row> all = left_rows;
      const std::vector<Row> right_rows = right->Rows();
      all.insert(all.end(), right_rows.begin(), right_rows.end());
      return FromRows(left.schema(), DistinctSorted(std::move(all)));
    }
    case OpKind::kIntersect: {
      const std::vector<Row> a = DistinctSorted(left_rows);
      const std::vector<Row> b = DistinctSorted(right->Rows());
      std::vector<Row> out;
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(out), RowLess);
      return FromRows(left.schema(), out);
    }
    case OpKind::kDifference: {
      const std::vector<Row> a = DistinctSorted(left_rows);
      const std::vector<Row> b = DistinctSorted(right->Rows());
      std::vector<Row> out;
      std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out), RowLess);
      return FromRows(left.schema(), out);
    }
    case OpKind::kAggregate:
    case OpKind::kArith:
    case OpKind::kSort:
      // Single sensible implementation; reuse the primary one.
      return ApplyOperator(op, left, right);
    case OpKind::kUnique:
      return FromRows(left.schema(), DistinctSorted(left_rows));
  }
  KF_REQUIRE(false) << "unhandled operator kind";
  return Table{};
}

}  // namespace kf::relational::reference
