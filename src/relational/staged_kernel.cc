#include "relational/staged_kernel.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/prefix_sum.h"

namespace kf::relational {
namespace {

// Accounts each predicate of a run as typed (vectorizable kernel) or
// fallback (opaque std::function) in the process-wide hostperf counters.
void RecordPredicateKinds(std::span<const TypedPredicate> preds) {
  auto& counters = HostPerfCounters::Global();
  std::uint64_t fallback = 0;
  for (const TypedPredicate& p : preds) {
    if (p.is_fallback()) ++fallback;
  }
  if (fallback != 0) {
    counters.fallback_predicates.fetch_add(fallback, std::memory_order_relaxed);
  }
  if (preds.size() != fallback) {
    counters.typed_predicates.fetch_add(preds.size() - fallback,
                                        std::memory_order_relaxed);
  }
}

// One staged SELECT pass: partition, fused typed filter over `preds`, scan,
// gather into `dest`. Uses only workspace storage — allocation-free once the
// workspace vectors have capacity. `dest` must be one of the workspace's
// destination vectors (output / stage_a / stage_b), never buffers/counts.
void StagedSelectCore(std::span<const std::int32_t> input,
                      std::span<const TypedPredicate> preds, int chunk_count,
                      StagedBuffers& ws, ThreadPool* pool,
                      std::vector<std::int32_t>& dest) {
  PartitionInputInto(input.size(), chunk_count, ws.chunks);
  const std::size_t chunk_n = ws.chunks.size();
  if (ws.buffers.size() < chunk_n) ws.buffers.resize(chunk_n);
  ws.counts.assign(chunk_n, 0);

  auto filter_chunk = [&](std::size_t c) {
    const ChunkRange& range = ws.chunks[c];
    KF_REQUIRE(range.end <= input.size()) << "chunk beyond input";
    auto& buffer = ws.buffers[c];
    if (buffer.size() < range.size()) buffer.resize(range.size());
    const std::size_t matched = FilterInt32All(
        input.subspan(range.begin, range.size()), preds, buffer.data());
    ws.counts[c] = static_cast<std::uint32_t>(matched);
  };

  if (pool != nullptr && chunk_n > 1) {
    // One claim per simulated CTA.
    pool->ParallelForEach(chunk_n, filter_chunk);
  } else {
    for (std::size_t c = 0; c < chunk_n; ++c) filter_chunk(c);
  }

  // Global synchronization point: the exclusive scan over match counts is
  // what separates the filter CUDA kernel from the gather CUDA kernel.
  ExclusiveScanWithTotalInto(std::span<const std::uint32_t>(ws.counts),
                             ws.offsets);
  dest.resize(ws.offsets.back());

  auto gather_chunk = [&](std::size_t c) {
    const auto& buffer = ws.buffers[c];
    std::copy(buffer.begin(), buffer.begin() + ws.counts[c],
              dest.begin() + ws.offsets[c]);
  };

  if (pool != nullptr && chunk_n > 1) {
    pool->ParallelForEach(chunk_n, gather_chunk);
  } else {
    for (std::size_t c = 0; c < chunk_n; ++c) gather_chunk(c);
  }
}

}  // namespace

std::vector<ChunkRange> PartitionInput(std::size_t n, int chunk_count) {
  std::vector<ChunkRange> ranges;
  PartitionInputInto(n, chunk_count, ranges);
  return ranges;
}

void PartitionInputInto(std::size_t n, int chunk_count,
                        std::vector<ChunkRange>& ranges) {
  KF_REQUIRE(chunk_count > 0) << "chunk count must be positive";
  const auto chunks = static_cast<std::size_t>(chunk_count);
  ranges.resize(chunks);
  const std::size_t base = n / chunks;
  const std::size_t remainder = n % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t size = base + (c < remainder ? 1 : 0);
    ranges[c] = ChunkRange{begin, begin + size};
    begin += size;
  }
}

std::size_t FilterStageResult::total_matches() const {
  return std::accumulate(counts.begin(), counts.end(), std::size_t{0});
}

std::size_t StagedBuffers::CapacityBytes() const {
  std::size_t bytes = chunks.capacity() * sizeof(ChunkRange) +
                      buffers.capacity() * sizeof(std::vector<std::int32_t>) +
                      counts.capacity() * sizeof(std::uint32_t) +
                      offsets.capacity() * sizeof(std::uint32_t) +
                      (output.capacity() + stage_a.capacity() +
                       stage_b.capacity()) *
                          sizeof(std::int32_t);
  for (const auto& buffer : buffers) {
    bytes += buffer.capacity() * sizeof(std::int32_t);
  }
  return bytes;
}

FilterStageResult RunFilterStage(std::span<const std::int32_t> input,
                                 std::span<const ChunkRange> chunks,
                                 const Int32Predicate& predicate, ThreadPool* pool) {
  FilterStageResult result;
  result.buffers.resize(chunks.size());
  result.counts.assign(chunks.size(), 0);
  const TypedPredicate pred = TypedPredicate::Fallback(predicate);

  auto filter_chunk = [&](std::size_t c) {
    const ChunkRange& range = chunks[c];
    KF_REQUIRE(range.end <= input.size()) << "chunk beyond input";
    auto& buffer = result.buffers[c];
    buffer.resize(range.size());
    const std::size_t matched = FilterInt32(
        input.subspan(range.begin, range.size()), pred, buffer.data());
    buffer.resize(matched);
    result.counts[c] = static_cast<std::uint32_t>(matched);
  };

  if (pool != nullptr && chunks.size() > 1) {
    // One claim per simulated CTA.
    pool->ParallelForEach(chunks.size(), filter_chunk);
  } else {
    for (std::size_t c = 0; c < chunks.size(); ++c) filter_chunk(c);
  }
  return result;
}

std::vector<std::int32_t> RunGatherStage(const FilterStageResult& filtered,
                                         ThreadPool* pool) {
  // Global synchronization point: the exclusive scan over match counts is
  // what separates the filter CUDA kernel from the gather CUDA kernel.
  const std::vector<std::uint32_t> offsets = ExclusiveScanWithTotal(filtered.counts);
  std::vector<std::int32_t> output(offsets.back());

  auto gather_chunk = [&](std::size_t c) {
    const auto& buffer = filtered.buffers[c];
    std::copy(buffer.begin(), buffer.end(), output.begin() + offsets[c]);
  };

  if (pool != nullptr && filtered.buffers.size() > 1) {
    pool->ParallelForEach(filtered.buffers.size(), gather_chunk);
  } else {
    for (std::size_t c = 0; c < filtered.buffers.size(); ++c) gather_chunk(c);
  }
  return output;
}

std::span<const std::int32_t> StagedSelectInto(
    std::span<const std::int32_t> input, const TypedPredicate& predicate,
    int chunk_count, StagedBuffers& ws, ThreadPool* pool,
    StagedSelectStats* stats, int filter_stage_count) {
  RecordPredicateKinds({&predicate, 1});
  StagedSelectCore(input, {&predicate, 1}, chunk_count, ws, pool, ws.output);
  if (stats != nullptr) {
    stats->input_count = input.size();
    stats->output_count = ws.output.size();
    stats->chunk_count = chunk_count;
    stats->filter_stage_count = filter_stage_count;
  }
  return ws.output;
}

std::span<const std::int32_t> StagedSelectChainFusedInto(
    std::span<const std::int32_t> input,
    std::span<const TypedPredicate> predicates, int chunk_count,
    StagedBuffers& ws, ThreadPool* pool, StagedSelectStats* stats) {
  KF_REQUIRE(!predicates.empty()) << "empty select chain";
  RecordPredicateKinds(predicates);
  StagedSelectCore(input, predicates, chunk_count, ws, pool, ws.output);
  if (stats != nullptr) {
    stats->input_count = input.size();
    stats->output_count = ws.output.size();
    stats->chunk_count = chunk_count;
    stats->filter_stage_count = static_cast<int>(predicates.size());
  }
  return ws.output;
}

std::span<const std::int32_t> StagedSelectChainUnfusedInto(
    std::span<const std::int32_t> input,
    std::span<const TypedPredicate> predicates, int chunk_count,
    StagedBuffers& ws, ThreadPool* pool,
    std::vector<StagedSelectStats>* per_step_stats) {
  KF_REQUIRE(!predicates.empty()) << "empty select chain";
  RecordPredicateKinds(predicates);
  if (per_step_stats != nullptr) per_step_stats->clear();

  // Step 0 reads the caller's input span directly; each step then writes the
  // other ping-pong buffer, so no step ever copies its input.
  std::span<const std::int32_t> current = input;
  std::vector<std::int32_t>* next = &ws.stage_a;
  std::vector<std::int32_t>* spare = &ws.stage_b;
  for (const TypedPredicate& predicate : predicates) {
    StagedSelectCore(current, {&predicate, 1}, chunk_count, ws, pool, *next);
    if (per_step_stats != nullptr) {
      per_step_stats->push_back(StagedSelectStats{
          current.size(), next->size(), chunk_count, 1});
    }
    current = *next;
    std::swap(next, spare);
  }
  return current;
}

std::vector<std::int32_t> StagedSelect(std::span<const std::int32_t> input,
                                       const Int32Predicate& predicate, int chunk_count,
                                       ThreadPool* pool, StagedSelectStats* stats,
                                       int filter_stage_count) {
  auto ws = BufferArena::ThreadLocal().Acquire<StagedBuffers>();
  const std::span<const std::int32_t> result =
      StagedSelectInto(input, TypedPredicate::Fallback(predicate), chunk_count,
                       *ws, pool, stats, filter_stage_count);
  return std::vector<std::int32_t>(result.begin(), result.end());
}

std::vector<std::int32_t> StagedSelectChainUnfused(
    std::span<const std::int32_t> input, std::span<const Int32Predicate> predicates,
    int chunk_count, ThreadPool* pool, std::vector<StagedSelectStats>* per_step_stats) {
  KF_REQUIRE(!predicates.empty()) << "empty select chain";
  std::vector<TypedPredicate> typed;
  typed.reserve(predicates.size());
  for (const Int32Predicate& p : predicates) {
    typed.push_back(TypedPredicate::Fallback(p));
  }
  auto ws = BufferArena::ThreadLocal().Acquire<StagedBuffers>();
  const std::span<const std::int32_t> result = StagedSelectChainUnfusedInto(
      input, typed, chunk_count, *ws, pool, per_step_stats);
  return std::vector<std::int32_t>(result.begin(), result.end());
}

std::vector<std::int32_t> StagedSelectChainFused(std::span<const std::int32_t> input,
                                                 std::span<const Int32Predicate> predicates,
                                                 int chunk_count, ThreadPool* pool,
                                                 StagedSelectStats* stats) {
  KF_REQUIRE(!predicates.empty()) << "empty select chain";
  // The fused filter applies every predicate while the element is still in a
  // register (Figure 6's Filter1 + Filter2 in one kernel), preserving the
  // short-circuit order of the original chain.
  auto fused = [&predicates](std::int32_t v) {
    for (const Int32Predicate& p : predicates) {
      if (!p(v)) return false;
    }
    return true;
  };
  return StagedSelect(input, fused, chunk_count, pool, stats,
                      static_cast<int>(predicates.size()));
}

}  // namespace kf::relational
