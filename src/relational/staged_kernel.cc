#include "relational/staged_kernel.h"

#include <numeric>

#include "common/error.h"
#include "common/prefix_sum.h"

namespace kf::relational {

std::vector<ChunkRange> PartitionInput(std::size_t n, int chunk_count) {
  KF_REQUIRE(chunk_count > 0) << "chunk count must be positive";
  const auto chunks = static_cast<std::size_t>(chunk_count);
  std::vector<ChunkRange> ranges(chunks);
  const std::size_t base = n / chunks;
  const std::size_t remainder = n % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t size = base + (c < remainder ? 1 : 0);
    ranges[c] = ChunkRange{begin, begin + size};
    begin += size;
  }
  return ranges;
}

std::size_t FilterStageResult::total_matches() const {
  return std::accumulate(counts.begin(), counts.end(), std::size_t{0});
}

FilterStageResult RunFilterStage(std::span<const std::int32_t> input,
                                 std::span<const ChunkRange> chunks,
                                 const Int32Predicate& predicate, ThreadPool* pool) {
  FilterStageResult result;
  result.buffers.resize(chunks.size());
  result.counts.assign(chunks.size(), 0);

  auto filter_chunk = [&](std::size_t c) {
    const ChunkRange& range = chunks[c];
    KF_REQUIRE(range.end <= input.size()) << "chunk beyond input";
    auto& buffer = result.buffers[c];
    buffer.reserve(range.size());
    for (std::size_t i = range.begin; i < range.end; ++i) {
      if (predicate(input[i])) buffer.push_back(input[i]);
    }
    result.counts[c] = static_cast<std::uint32_t>(buffer.size());
  };

  if (pool != nullptr && chunks.size() > 1) {
    // One task per simulated CTA.
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      pool->Submit([&filter_chunk, c] { filter_chunk(c); });
    }
    pool->Wait();
  } else {
    for (std::size_t c = 0; c < chunks.size(); ++c) filter_chunk(c);
  }
  return result;
}

std::vector<std::int32_t> RunGatherStage(const FilterStageResult& filtered,
                                         ThreadPool* pool) {
  // Global synchronization point: the exclusive scan over match counts is
  // what separates the filter CUDA kernel from the gather CUDA kernel.
  const std::vector<std::uint32_t> offsets = ExclusiveScanWithTotal(filtered.counts);
  std::vector<std::int32_t> output(offsets.back());

  auto gather_chunk = [&](std::size_t c) {
    const auto& buffer = filtered.buffers[c];
    std::copy(buffer.begin(), buffer.end(), output.begin() + offsets[c]);
  };

  if (pool != nullptr && filtered.buffers.size() > 1) {
    for (std::size_t c = 0; c < filtered.buffers.size(); ++c) {
      pool->Submit([&gather_chunk, c] { gather_chunk(c); });
    }
    pool->Wait();
  } else {
    for (std::size_t c = 0; c < filtered.buffers.size(); ++c) gather_chunk(c);
  }
  return output;
}

std::vector<std::int32_t> StagedSelect(std::span<const std::int32_t> input,
                                       const Int32Predicate& predicate, int chunk_count,
                                       ThreadPool* pool, StagedSelectStats* stats,
                                       int filter_stage_count) {
  const std::vector<ChunkRange> chunks = PartitionInput(input.size(), chunk_count);
  const FilterStageResult filtered = RunFilterStage(input, chunks, predicate, pool);
  std::vector<std::int32_t> output = RunGatherStage(filtered, pool);
  if (stats != nullptr) {
    stats->input_count = input.size();
    stats->output_count = output.size();
    stats->chunk_count = chunk_count;
    stats->filter_stage_count = filter_stage_count;
  }
  return output;
}

std::vector<std::int32_t> StagedSelectChainUnfused(
    std::span<const std::int32_t> input, std::span<const Int32Predicate> predicates,
    int chunk_count, ThreadPool* pool, std::vector<StagedSelectStats>* per_step_stats) {
  KF_REQUIRE(!predicates.empty()) << "empty select chain";
  std::vector<std::int32_t> current(input.begin(), input.end());
  if (per_step_stats != nullptr) per_step_stats->clear();
  for (const Int32Predicate& predicate : predicates) {
    StagedSelectStats stats;
    current = StagedSelect(current, predicate, chunk_count, pool, &stats);
    if (per_step_stats != nullptr) per_step_stats->push_back(stats);
  }
  return current;
}

std::vector<std::int32_t> StagedSelectChainFused(std::span<const std::int32_t> input,
                                                 std::span<const Int32Predicate> predicates,
                                                 int chunk_count, ThreadPool* pool,
                                                 StagedSelectStats* stats) {
  KF_REQUIRE(!predicates.empty()) << "empty select chain";
  // The fused filter applies every predicate while the element is still in a
  // register (Figure 6's Filter1 + Filter2 in one kernel).
  auto fused = [&predicates](std::int32_t v) {
    for (const Int32Predicate& p : predicates) {
      if (!p(v)) return false;
    }
    return true;
  };
  return StagedSelect(input, fused, chunk_count, pool, stats,
                      static_cast<int>(predicates.size()));
}

}  // namespace kf::relational
