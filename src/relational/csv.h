// CSV import/export for tables.
//
// Lets downstream users feed their own relations into the operator graphs
// and pull results out for analysis. The dialect is deliberately plain:
// comma separator, first line is "name:type" headers (types i32/i64/f64),
// no quoting (the library's tables are numeric).
#ifndef KF_RELATIONAL_CSV_H_
#define KF_RELATIONAL_CSV_H_

#include <iosfwd>
#include <string>

#include "relational/table.h"

namespace kf::relational {

// Writes `table` as CSV with a "name:type" header row.
void WriteCsv(const Table& table, std::ostream& os);
std::string ToCsv(const Table& table);

// Parses a CSV produced by WriteCsv (or hand-written in the same dialect).
// Throws kf::Error on malformed headers, unknown types, ragged rows, or
// unparseable numbers.
Table ReadCsv(std::istream& is);
Table FromCsv(const std::string& text);

}  // namespace kf::relational

#endif  // KF_RELATIONAL_CSV_H_
