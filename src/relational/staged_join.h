// Staged hash equi-join — the GPU-style JOIN substrate.
//
// Follows the same stage discipline as the staged SELECT (Fig 3), with the
// structure the fusion planner assumes for BroadcastProbe operators:
//   build:  the (smaller) build side is materialized into a lock-free
//           open-addressing hash table, CTAs inserting in parallel with CAS
//           — the GPU analogue of cuckoo/linear-probing join builds;
//   probe:  the probe side is partitioned into chunks; each chunk probes and
//           buffers its matches locally;
//   gather: an exclusive scan positions the per-chunk buffers in the output.
//
// Keys are int64, payloads one int64 per side (the KV relations the tests
// and microbenchmarks use); duplicate build keys chain within the table.
#ifndef KF_RELATIONAL_STAGED_JOIN_H_
#define KF_RELATIONAL_STAGED_JOIN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.h"

namespace kf::relational {

struct JoinPair {
  std::int64_t key = 0;
  std::int64_t value = 0;
};

struct JoinedRow {
  std::int64_t key = 0;
  std::int64_t left_value = 0;
  std::int64_t right_value = 0;

  friend bool operator==(const JoinedRow&, const JoinedRow&) = default;
};

// Parallel open-addressing multi-hash-table over the build side.
class StagedHashTable {
 public:
  // Builds from `rows` with `chunk_count` parallel inserter chunks.
  StagedHashTable(std::span<const JoinPair> rows, int chunk_count = 64,
                  ThreadPool* pool = nullptr);

  std::size_t entry_count() const { return entries_; }
  std::size_t slot_count() const { return slots_.size(); }

  // Appends every build value matching `key` to `out`; returns match count.
  std::size_t Probe(std::int64_t key, std::vector<std::int64_t>& out) const;

 private:
  struct Slot {
    std::atomic<std::int64_t> key{kEmpty};
    std::int64_t value = 0;
  };
  static constexpr std::int64_t kEmpty = INT64_MIN;

  std::size_t Index(std::int64_t key) const;

  std::vector<Slot> slots_;
  std::size_t entries_ = 0;
  std::size_t mask_ = 0;
};

// Complete staged join: probe `left` against `right` (build side). Output
// order is chunk order then probe order — deterministic for fixed
// chunk_count. Duplicate keys on both sides expand (cross product per key).
std::vector<JoinedRow> StagedHashJoin(std::span<const JoinPair> left,
                                      std::span<const JoinPair> right,
                                      int chunk_count = 64,
                                      ThreadPool* pool = nullptr);

}  // namespace kf::relational

#endif  // KF_RELATIONAL_STAGED_JOIN_H_
