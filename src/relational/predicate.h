// Typed predicate kernels for the staged SELECT hot loop.
//
// The staged kernels used to call a per-element std::function<bool(int32_t)>,
// an opaque indirect call the compiler cannot inline — which blocks
// auto-vectorization of the filter stage entirely. TypedPredicate is a small
// closed representation (compare / inclusive range / bitmask, plus explicit
// always-true/false) that FilterInt32 dispatches ONCE per chunk to a
// branch-free template instantiation:
//
//   out[count] = v; count += pred(v);          // no per-element branch
//
// The inner loop then has no calls, no branches, and no stores that depend on
// control flow — exactly the shape the vectorizer wants, and the host-side
// analogue of the paper's "element stays in registers" fused filter.
//
// Exotic predicates keep working through PredOp::kFallback, which wraps the
// original std::function (non-owning: the std::function must outlive the
// TypedPredicate). CompilePredicate turns the Expr trees used by SELECT
// operators into typed predicates where possible; FoldConjunction collapses a
// predicate chain (e.g. Gt 10 ∧ Lt 20) into fewer, tighter kernels.
#ifndef KF_RELATIONAL_PREDICATE_H_
#define KF_RELATIONAL_PREDICATE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "relational/expr.h"

namespace kf::relational {

using Int32Predicate = std::function<bool(std::int32_t)>;

enum class PredOp : std::uint8_t {
  kAlwaysTrue,
  kAlwaysFalse,
  kLt,       // v <  a
  kLe,       // v <= a
  kGt,       // v >  a
  kGe,       // v >= a
  kEq,       // v == a
  kNe,       // v != a
  kInRange,  // a <= v <= b (inclusive)
  kMaskEq,   // (v & a) == b
  kFallback, // opaque std::function
};

const char* ToString(PredOp op);

struct TypedPredicate {
  PredOp op = PredOp::kAlwaysTrue;
  std::int32_t a = 0;  // compare literal / range lo / mask
  std::int32_t b = 0;  // range hi / masked value
  const Int32Predicate* fallback = nullptr;  // kFallback only, non-owning

  static TypedPredicate AlwaysTrue() { return {PredOp::kAlwaysTrue, 0, 0, nullptr}; }
  static TypedPredicate AlwaysFalse() { return {PredOp::kAlwaysFalse, 0, 0, nullptr}; }
  static TypedPredicate Lt(std::int32_t x) { return {PredOp::kLt, x, 0, nullptr}; }
  static TypedPredicate Le(std::int32_t x) { return {PredOp::kLe, x, 0, nullptr}; }
  static TypedPredicate Gt(std::int32_t x) { return {PredOp::kGt, x, 0, nullptr}; }
  static TypedPredicate Ge(std::int32_t x) { return {PredOp::kGe, x, 0, nullptr}; }
  static TypedPredicate Eq(std::int32_t x) { return {PredOp::kEq, x, 0, nullptr}; }
  static TypedPredicate Ne(std::int32_t x) { return {PredOp::kNe, x, 0, nullptr}; }
  // Inclusive on both ends; lo > hi matches nothing.
  static TypedPredicate InRange(std::int32_t lo, std::int32_t hi) {
    return {PredOp::kInRange, lo, hi, nullptr};
  }
  static TypedPredicate MaskEq(std::int32_t mask, std::int32_t value) {
    return {PredOp::kMaskEq, mask, value, nullptr};
  }
  // Non-owning: `f` must outlive the predicate.
  static TypedPredicate Fallback(const Int32Predicate& f) {
    return {PredOp::kFallback, 0, 0, &f};
  }

  bool is_fallback() const { return op == PredOp::kFallback; }

  // Scalar evaluation — the reference the vector kernels are tested against.
  bool Matches(std::int32_t v) const;

  std::string ToString() const;
};

// Dense branch-free compaction of the elements of `input` matching `pred`
// into `out` (which must have room for input.size() elements). Returns the
// match count. Allocation-free.
std::size_t FilterInt32(std::span<const std::int32_t> input,
                        const TypedPredicate& pred, std::int32_t* out);

// Single-pass conjunction over a predicate chain — the fused filter stage:
// every predicate is applied while the element is still in registers.
std::size_t FilterInt32All(std::span<const std::int32_t> input,
                           std::span<const TypedPredicate> preds,
                           std::int32_t* out);

// Match count without materializing (first pass of count/scan/gather selects).
std::size_t CountInt32(std::span<const std::int32_t> input,
                       const TypedPredicate& pred);

// Collapses a conjunction into the fewest predicates that accept exactly the
// same set: compare bounds merge into one range (Gt 10 ∧ Lt 20 → InRange),
// contradictions collapse to kAlwaysFalse, tautologies disappear. Fallback,
// mask, and Ne predicates are preserved in order after the folded range.
std::vector<TypedPredicate> FoldConjunction(
    std::span<const TypedPredicate> preds);

// Compiles an Expr SELECT predicate over the single int32 column that a
// staged kernel scans (the column is field `field_index` of the row). Returns
// nullopt for shapes the closed representation cannot express exactly
// (float literals, arithmetic, OR, references to other fields). Comparisons
// against out-of-int32-range integer literals fold exactly (the row
// evaluator compares in the int64 domain): e.g. `v < 2^40` is kAlwaysTrue.
// Conjunctions (AND) append one predicate per leaf to `out`.
bool CompileConjunction(const Expr& expr, int field_index,
                        std::vector<TypedPredicate>& out);

// Single-predicate convenience wrapper over CompileConjunction + fold.
std::optional<TypedPredicate> CompilePredicate(const Expr& expr,
                                               int field_index = 0);

}  // namespace kf::relational

#endif  // KF_RELATIONAL_PREDICATE_H_
