// Naive reference implementations of the RA operators.
//
// These are deliberately written with different algorithms than
// operators.cc (nested loops instead of hash tables, sort-based set
// operations) so the two can check each other in property-based tests.
#ifndef KF_RELATIONAL_REFERENCE_H_
#define KF_RELATIONAL_REFERENCE_H_

#include "relational/operators.h"

namespace kf::relational::reference {

// Executes `op` with the naive algorithms. Output rows may be in a different
// order than ApplyOperator's; compare with SameRowMultiset.
Table Apply(const OperatorDesc& op, const Table& left, const Table* right = nullptr);

}  // namespace kf::relational::reference

#endif  // KF_RELATIONAL_REFERENCE_H_
