#include "relational/staged_aggregate.h"

#include <algorithm>
#include <unordered_map>

#include "relational/staged_kernel.h"

namespace kf::relational {

std::vector<GroupedSum> StagedGroupedAggregate(std::span<const AggregateInput> input,
                                               int chunk_count, ThreadPool* pool) {
  const std::vector<ChunkRange> chunks = PartitionInput(input.size(), chunk_count);

  // Stage 1+2 — per-chunk partial accumulators (per-CTA shared memory).
  std::vector<std::unordered_map<std::int64_t, GroupedSum>> partials(chunks.size());
  auto fold_chunk = [&](std::size_t c) {
    auto& local = partials[c];
    for (std::size_t i = chunks[c].begin; i < chunks[c].end; ++i) {
      const AggregateInput& in = input[i];
      auto [it, inserted] = local.try_emplace(in.group);
      GroupedSum& acc = it->second;
      if (inserted) {
        acc.group = in.group;
        acc.min_value = in.value;
        acc.max_value = in.value;
      } else {
        acc.min_value = std::min(acc.min_value, in.value);
        acc.max_value = std::max(acc.max_value, in.value);
      }
      acc.sum += in.value;
      ++acc.count;
    }
  };
  if (pool != nullptr && chunks.size() > 1) {
    pool->ParallelForEach(chunks.size(), fold_chunk);
  } else {
    for (std::size_t c = 0; c < chunks.size(); ++c) fold_chunk(c);
  }

  // Stage 3 — combine (the second kernel): merge partials, sort by group.
  std::unordered_map<std::int64_t, GroupedSum> merged;
  for (const auto& local : partials) {
    for (const auto& [group, partial] : local) {
      auto [it, inserted] = merged.try_emplace(group, partial);
      if (!inserted) {
        GroupedSum& acc = it->second;
        acc.sum += partial.sum;
        acc.count += partial.count;
        acc.min_value = std::min(acc.min_value, partial.min_value);
        acc.max_value = std::max(acc.max_value, partial.max_value);
      }
    }
  }
  std::vector<GroupedSum> result;
  result.reserve(merged.size());
  for (const auto& [group, acc] : merged) result.push_back(acc);
  std::sort(result.begin(), result.end(),
            [](const GroupedSum& a, const GroupedSum& b) { return a.group < b.group; });
  return result;
}

}  // namespace kf::relational
