// Chrome-tracing export of a simulated timeline.
//
// Serializes a `TimelineStats` (plus the command list that produced it) into
// the Chrome trace-event JSON format, so a fission pipeline can be inspected
// visually in chrome://tracing or https://ui.perfetto.dev — one row per
// engine (H2D, compute, D2H, host), one slice per command.
#ifndef KF_SIM_TRACE_EXPORT_H_
#define KF_SIM_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "sim/timeline.h"

namespace kf::sim {

struct TraceCommand {
  CommandKind kind = CommandKind::kKernel;
  std::string label;
};

// Builds the trace JSON. `commands` must be parallel to `stats.commands`
// (the issue order of the timeline). Durations are emitted in microseconds.
std::string ToChromeTrace(const TimelineStats& stats,
                          const std::vector<TraceCommand>& commands);

}  // namespace kf::sim

#endif  // KF_SIM_TRACE_EXPORT_H_
