// Parameters of the simulated GPU and host.
//
// The default configuration models the paper's testbed (Table II): an NVIDIA
// Tesla C2070 (Fermi, 14 SMs x 32 cores @ 1.15 GHz, 144 GB/s GDDR5, 6 GB,
// two DMA copy engines) attached over PCIe 2.0 x16 to a dual quad-core Xeon
// E5520 host with 48 GB of memory. Absolute throughputs produced by the cost
// model are calibrated against the figures in the paper; the *mechanisms*
// (bandwidth ratios, overlap capability, capacity limits) are what matter for
// reproducing the fusion/fission results.
#ifndef KF_SIM_DEVICE_SPEC_H_
#define KF_SIM_DEVICE_SPEC_H_

#include <cstdint>
#include <string>

#include "common/units.h"

namespace kf::sim {

struct DeviceSpec {
  std::string name = "Simulated Tesla C2070";

  // Compute.
  int sm_count = 14;
  int cores_per_sm = 32;
  double clock_ghz = 1.15;
  // Sustained fraction of peak issue rate for data-dependent integer code
  // (branches, predication, address arithmetic).
  double sustained_ipc_fraction = 0.55;

  // Memory system.
  double mem_bandwidth_gbs = 144.0;  // GDDR5 peak
  // Fraction of peak DRAM bandwidth achieved by fully coalesced streaming
  // kernels (ECC on, as on the C2070 in the paper's testbed).
  double mem_efficiency = 0.75;
  std::uint64_t mem_capacity_bytes = GiB(6);

  // Execution limits (Fermi).
  int max_threads_per_cta = 1024;
  int max_threads_per_sm = 1536;
  int max_resident_ctas_per_sm = 8;
  int max_concurrent_kernels = 16;

  // Threads needed in flight machine-wide before memory latency is fully
  // hidden; kernels keeping fewer resident run at proportionally lower
  // throughput (this is why halving a launch's CTAs and threads hurts —
  // Fig 12's "no stream (new)" — and why register pressure from aggressive
  // fusion eventually costs performance).
  int saturation_threads() const { return sm_count * max_threads_per_sm; }

  // Overheads.
  SimTime kernel_launch_overhead = 7.0 * kMicrosecond;
  SimTime stream_sync_overhead = 3.0 * kMicrosecond;

  // Host side (dual quad-core Xeon E5520).
  int host_cores = 8;
  int host_threads = 16;
  std::uint64_t host_mem_capacity_bytes = GiB(48);
  double host_mem_bandwidth_gbs = 16.0;

  // Copy engines: the C2070 can overlap one H2D copy, one D2H copy, and
  // kernel execution simultaneously.
  int copy_engine_count = 2;

  // Peak arithmetic throughput in scalar integer ops/s.
  double peak_ops_per_second() const {
    return static_cast<double>(sm_count) * cores_per_sm * clock_ghz * 1e9 *
           sustained_ipc_fraction;
  }

  // Sustained device-memory bandwidth in bytes/s for coalesced access.
  double sustained_mem_bytes_per_second() const {
    return mem_bandwidth_gbs * kGB * mem_efficiency;
  }

  static DeviceSpec TeslaC2070() { return DeviceSpec{}; }

  // A smaller device used by tests to hit capacity limits quickly.
  static DeviceSpec TinyTestDevice() {
    DeviceSpec spec;
    spec.name = "Tiny test device";
    spec.sm_count = 2;
    spec.mem_capacity_bytes = MiB(64);
    spec.mem_bandwidth_gbs = 10.0;
    return spec;
  }
};

}  // namespace kf::sim

#endif  // KF_SIM_DEVICE_SPEC_H_
