#include "sim/fault_injector.h"

#include <cstdlib>
#include <string>

#include "common/random.h"

namespace kf::sim {

namespace {

// Distinct salts so the fail and stall draws for one command are independent.
constexpr std::uint64_t kSaltFail = 0x6661756c74ULL;   // "fault"
constexpr std::uint64_t kSaltStall = 0x7374616c6cULL;  // "stall"
constexpr std::uint64_t kSaltOom = 0x6f6f6dULL;        // "oom"

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtod(value, nullptr) : fallback;
}

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

}  // namespace

FaultConfig FaultConfig::FromEnv() {
  FaultConfig config;
  config.seed = EnvU64("KF_FAULT_SEED", config.seed);
  config.copy_fault_rate = EnvDouble("KF_FAULT_COPY_RATE", config.copy_fault_rate);
  config.kernel_fault_rate =
      EnvDouble("KF_FAULT_KERNEL_RATE", config.kernel_fault_rate);
  config.oom_rate = EnvDouble("KF_FAULT_OOM_RATE", config.oom_rate);
  config.stall_rate = EnvDouble("KF_FAULT_STALL_RATE", config.stall_rate);
  config.stall_multiplier =
      EnvDouble("KF_FAULT_STALL_MULT", config.stall_multiplier);
  return config;
}

double FaultInjector::Draw(std::uint64_t epoch, std::uint64_t ordinal,
                           std::uint64_t salt) const {
  // splitmix64 chain over the decision coordinates: stateless, so the same
  // (seed, epoch, ordinal, salt) always yields the same uniform.
  std::uint64_t state = config_.seed;
  std::uint64_t mixed = SplitMix64(state);
  state ^= epoch * 0x9e3779b97f4a7c15ULL;
  mixed ^= SplitMix64(state);
  state ^= ordinal * 0xbf58476d1ce4e5b9ULL;
  mixed ^= SplitMix64(state);
  state ^= salt;
  mixed ^= SplitMix64(state);
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

void FaultInjector::Count(FaultKind kind) const {
  metrics()
      .GetCounter("fault.injected", {{"kind", ToString(kind)}})
      .Increment();
}

FaultDecision FaultInjector::Decide(std::uint64_t epoch,
                                    std::uint64_t command_id,
                                    CommandKind kind) const {
  FaultDecision decision;
  if (kind == CommandKind::kHostCompute) return decision;  // host is reliable

  if (config_.stall_rate > 0 &&
      Draw(epoch, command_id, kSaltStall) < config_.stall_rate) {
    decision.fault = FaultKind::kStreamStall;
    decision.duration_multiplier = config_.stall_multiplier;
    Count(FaultKind::kStreamStall);
  }

  const bool is_copy =
      kind == CommandKind::kCopyH2D || kind == CommandKind::kCopyD2H;
  const double fail_rate =
      is_copy ? config_.copy_fault_rate : config_.kernel_fault_rate;
  if (fail_rate > 0 && Draw(epoch, command_id, kSaltFail) < fail_rate) {
    decision.fault =
        is_copy ? FaultKind::kCopyTransient : FaultKind::kKernelFault;
    Count(decision.fault);
  }
  return decision;
}

bool FaultInjector::InjectOomOnReservation() const {
  if (config_.oom_rate <= 0) return false;
  const std::uint64_t ordinal = oom_draws_.fetch_add(1, std::memory_order_relaxed);
  if (Draw(0, ordinal, kSaltOom) < config_.oom_rate) {
    Count(FaultKind::kDeviceOom);
    return true;
  }
  return false;
}

}  // namespace kf::sim
