#include "sim/fault_injector.h"

#include <cstdlib>
#include <string>

#include "common/random.h"

namespace kf::sim {

namespace {

// Distinct salts so the fail and stall draws for one command are independent.
constexpr std::uint64_t kSaltFail = 0x6661756c74ULL;     // "fault"
constexpr std::uint64_t kSaltStall = 0x7374616c6cULL;    // "stall"
constexpr std::uint64_t kSaltOom = 0x6f6f6dULL;          // "oom"
constexpr std::uint64_t kSaltCorrupt = 0x666c6970ULL;    // "flip"

const char* CorruptLabel(CommandKind kind) {
  switch (kind) {
    case CommandKind::kCopyH2D: return "corrupt_h2d";
    case CommandKind::kCopyD2H: return "corrupt_d2h";
    default: return "corrupt_kernel";
  }
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtod(value, nullptr) : fallback;
}

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

}  // namespace

FaultConfig FaultConfig::FromEnv() {
  FaultConfig config;
  config.seed = EnvU64("KF_FAULT_SEED", config.seed);
  config.copy_fault_rate = EnvDouble("KF_FAULT_COPY_RATE", config.copy_fault_rate);
  config.kernel_fault_rate =
      EnvDouble("KF_FAULT_KERNEL_RATE", config.kernel_fault_rate);
  config.oom_rate = EnvDouble("KF_FAULT_OOM_RATE", config.oom_rate);
  config.stall_rate = EnvDouble("KF_FAULT_STALL_RATE", config.stall_rate);
  config.stall_multiplier =
      EnvDouble("KF_FAULT_STALL_MULT", config.stall_multiplier);
  const double corrupt_all = EnvDouble("KF_FAULT_CORRUPT_RATE", 0.0);
  config.corrupt_h2d_rate = corrupt_all;
  config.corrupt_d2h_rate = corrupt_all;
  config.corrupt_kernel_rate = corrupt_all;
  config.corrupt_h2d_rate =
      EnvDouble("KF_FAULT_CORRUPT_H2D_RATE", config.corrupt_h2d_rate);
  config.corrupt_d2h_rate =
      EnvDouble("KF_FAULT_CORRUPT_D2H_RATE", config.corrupt_d2h_rate);
  config.corrupt_kernel_rate =
      EnvDouble("KF_FAULT_CORRUPT_KERNEL_RATE", config.corrupt_kernel_rate);
  return config;
}

double FaultInjector::Draw(std::uint64_t epoch, std::uint64_t ordinal,
                           std::uint64_t salt) const {
  // splitmix64 chain over the decision coordinates: stateless, so the same
  // (seed, epoch, ordinal, salt) always yields the same uniform.
  std::uint64_t state = config_.seed;
  std::uint64_t mixed = SplitMix64(state);
  state ^= epoch * 0x9e3779b97f4a7c15ULL;
  mixed ^= SplitMix64(state);
  state ^= ordinal * 0xbf58476d1ce4e5b9ULL;
  mixed ^= SplitMix64(state);
  state ^= salt;
  mixed ^= SplitMix64(state);
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

void FaultInjector::Count(FaultKind kind) const {
  metrics()
      .GetCounter("fault.injected", {{"kind", ToString(kind)}})
      .Increment();
}

FaultDecision FaultInjector::Decide(std::uint64_t epoch,
                                    std::uint64_t command_id,
                                    CommandKind kind) const {
  FaultDecision decision;
  if (kind == CommandKind::kHostCompute) return decision;  // host is reliable

  if (config_.stall_rate > 0 &&
      Draw(epoch, command_id, kSaltStall) < config_.stall_rate) {
    decision.fault = FaultKind::kStreamStall;
    decision.duration_multiplier = config_.stall_multiplier;
    Count(FaultKind::kStreamStall);
  }

  const bool is_copy =
      kind == CommandKind::kCopyH2D || kind == CommandKind::kCopyD2H;
  const double fail_rate =
      is_copy ? config_.copy_fault_rate : config_.kernel_fault_rate;
  if (fail_rate > 0 && Draw(epoch, command_id, kSaltFail) < fail_rate) {
    decision.fault =
        is_copy ? FaultKind::kCopyTransient : FaultKind::kKernelFault;
    Count(decision.fault);
  }

  // Silent corruption: only a command that otherwise succeeds can deliver
  // wrong bytes — a loudly-failed command delivers no bytes at all.
  const double corrupt_rate =
      kind == CommandKind::kCopyH2D   ? config_.corrupt_h2d_rate
      : kind == CommandKind::kCopyD2H ? config_.corrupt_d2h_rate
                                      : config_.corrupt_kernel_rate;
  if (corrupt_rate > 0 && decision.fault != FaultKind::kCopyTransient &&
      decision.fault != FaultKind::kKernelFault &&
      Draw(epoch, command_id, kSaltCorrupt) < corrupt_rate) {
    decision.corrupt = true;
    metrics()
        .GetCounter("fault.injected", {{"kind", CorruptLabel(kind)}})
        .Increment();
  }
  return decision;
}

bool FaultInjector::InjectOomOnReservation() const {
  if (config_.oom_rate <= 0) return false;
  const std::uint64_t ordinal = oom_draws_.fetch_add(1, std::memory_order_relaxed);
  if (Draw(0, ordinal, kSaltOom) < config_.oom_rate) {
    Count(FaultKind::kDeviceOom);
    return true;
  }
  return false;
}

}  // namespace kf::sim
