// Device-memory capacity accounting.
//
// Executors use this model to answer the question that drives the paper's
// "with round trip" vs "without round trip" distinction: does the working set
// (inputs + intermediates + outputs) fit in the 6 GB of device memory, or
// must intermediates make a PCIe round trip through host memory?
#ifndef KF_SIM_MEMORY_MODEL_H_
#define KF_SIM_MEMORY_MODEL_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/error.h"
#include "sim/fault_injector.h"

namespace kf::sim {

using AllocationId = std::uint64_t;

class DeviceMemoryModel {
 public:
  explicit DeviceMemoryModel(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  // Attaches a fault injector consulted once per Allocate() call; an
  // injected fault throws kf::DeviceFault (transient, retryable) and leaves
  // the accounting untouched. nullptr (default) never injects.
  void set_fault_injector(const FaultInjector* injector) { injector_ = injector; }

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return used_; }
  std::uint64_t free_bytes() const { return capacity_ - used_; }
  std::uint64_t high_water_mark() const { return high_water_; }

  bool CanAllocate(std::uint64_t bytes) const { return bytes <= free_bytes(); }

  // Reserves `bytes`; throws kf::CapacityExceeded on genuine exhaustion and
  // kf::DeviceFault on an injected transient reservation failure.
  AllocationId Allocate(std::uint64_t bytes, const std::string& label = {}) {
    if (injector_ != nullptr && injector_->InjectOomOnReservation()) {
      KF_FAIL_AS(::kf::DeviceFault)
          << "injected transient device OOM reserving " << bytes
          << " bytes for '" << label << "'";
    }
    KF_REQUIRE_AS(::kf::CapacityExceeded, CanAllocate(bytes))
        << "device OOM allocating " << bytes << " bytes for '" << label << "' ("
        << used_ << "/" << capacity_ << " in use)";
    const AllocationId id = next_id_++;
    allocations_.emplace(id, bytes);
    used_ += bytes;
    high_water_ = std::max(high_water_, used_);
    return id;
  }

  void Free(AllocationId id) {
    auto it = allocations_.find(id);
    KF_REQUIRE(it != allocations_.end()) << "double free of allocation " << id;
    used_ -= it->second;
    allocations_.erase(it);
  }

  void Reset() {
    allocations_.clear();
    used_ = 0;
    high_water_ = 0;
  }

 private:
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t high_water_ = 0;
  AllocationId next_id_ = 1;
  const FaultInjector* injector_ = nullptr;
  std::unordered_map<AllocationId, std::uint64_t> allocations_;
};

}  // namespace kf::sim

#endif  // KF_SIM_MEMORY_MODEL_H_
