// PCIe 2.0 x16 transfer-time model.
//
// Models the behaviour the paper measures with NVIDIA's bandwidthTest
// (Fig 4b): effective bandwidth well under the 8 GB/s theoretical peak, a
// latency-dominated ramp for small transfers, pinned memory beating pageable
// memory, and the pinned advantage shrinking for very large transfers (the
// OS pays for keeping large regions locked).
#ifndef KF_SIM_PCIE_MODEL_H_
#define KF_SIM_PCIE_MODEL_H_

#include <cstdint>

#include "common/units.h"

namespace kf::sim {

enum class CopyDirection { kHostToDevice, kDeviceToHost };
enum class HostMemoryKind { kPageable, kPinned };

struct PcieConfig {
  // Peak sustained bandwidths in GB/s, calibrated to Fig 4(b).
  double pinned_h2d_gbs = 5.9;
  double pinned_d2h_gbs = 6.3;
  double pageable_h2d_gbs = 2.7;
  double pageable_d2h_gbs = 3.3;

  // Per-transfer fixed cost (driver + DMA setup).
  SimTime latency = 12.0 * kMicrosecond;

  // Transfer size at which half of peak bandwidth is reached.
  std::uint64_t ramp_bytes = KiB(64);

  // Pinned-memory degradation: bandwidth scales by
  // 1 / (1 + degradation_slope * pinned_bytes / host_capacity) once the
  // transfer exceeds `degradation_threshold_bytes`.
  std::uint64_t degradation_threshold_bytes = MiB(256);
  double degradation_slope = 6.0;
  std::uint64_t host_capacity_bytes = GiB(48);
};

class PcieModel {
 public:
  PcieModel() = default;
  explicit PcieModel(PcieConfig config) : config_(config) {}

  const PcieConfig& config() const { return config_; }

  // Effective bandwidth in bytes/s for a single transfer of `bytes`.
  double EffectiveBandwidth(std::uint64_t bytes, HostMemoryKind kind,
                            CopyDirection direction) const;

  // Wall time of a single transfer, including fixed latency.
  SimTime TransferTime(std::uint64_t bytes, HostMemoryKind kind,
                       CopyDirection direction) const;

 private:
  PcieConfig config_;
};

}  // namespace kf::sim

#endif  // KF_SIM_PCIE_MODEL_H_
