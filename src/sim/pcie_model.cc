#include "sim/pcie_model.h"

namespace kf::sim {

double PcieModel::EffectiveBandwidth(std::uint64_t bytes, HostMemoryKind kind,
                                     CopyDirection direction) const {
  double peak_gbs = 0.0;
  if (kind == HostMemoryKind::kPinned) {
    peak_gbs = direction == CopyDirection::kHostToDevice ? config_.pinned_h2d_gbs
                                                         : config_.pinned_d2h_gbs;
  } else {
    peak_gbs = direction == CopyDirection::kHostToDevice ? config_.pageable_h2d_gbs
                                                         : config_.pageable_d2h_gbs;
  }
  double bandwidth = peak_gbs * kGB;

  // Latency-dominated ramp for small transfers.
  const double b = static_cast<double>(bytes);
  bandwidth *= b / (b + static_cast<double>(config_.ramp_bytes));

  // Large pinned regions stress the OS (Fig 4b: the pinned advantage shrinks
  // as transfer size grows).
  if (kind == HostMemoryKind::kPinned && bytes > config_.degradation_threshold_bytes) {
    const double excess = static_cast<double>(bytes - config_.degradation_threshold_bytes);
    const double pressure = excess / static_cast<double>(config_.host_capacity_bytes);
    bandwidth /= 1.0 + config_.degradation_slope * pressure;
  }
  return bandwidth;
}

SimTime PcieModel::TransferTime(std::uint64_t bytes, HostMemoryKind kind,
                                CopyDirection direction) const {
  if (bytes == 0) return config_.latency;
  return config_.latency +
         static_cast<double>(bytes) / EffectiveBandwidth(bytes, kind, direction);
}

}  // namespace kf::sim
