#include "sim/device_group.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace kf::sim {

DeviceGroup::DeviceGroup(std::vector<DeviceSpec> specs, PcieConfig pcie,
                         RootComplexConfig root, obs::MetricsRegistry* metrics)
    : pcie_(pcie), root_(std::move(root)), metrics_(metrics) {
  KF_REQUIRE_AS(::kf::InvalidArgument, !specs.empty())
      << "a device group needs at least one device";
  KF_REQUIRE_AS(::kf::InvalidArgument, root_.aggregate_bandwidth_gbs > 0)
      << "root complex aggregate bandwidth must be positive";
  devices_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto device = std::make_unique<DeviceSimulator>(std::move(specs[i]), pcie_);
    device->set_metrics(metrics_);
    device->set_instance_label("dev" + std::to_string(i));
    devices_.push_back(std::move(device));
  }
  this->metrics()
      .GetGauge("sim.group.devices")
      .Set(static_cast<double>(devices_.size()));
}

DeviceGroup DeviceGroup::Homogeneous(int device_count, DeviceSpec spec,
                                     PcieConfig pcie, RootComplexConfig root,
                                     obs::MetricsRegistry* metrics) {
  KF_REQUIRE_AS(::kf::InvalidArgument, device_count > 0)
      << "device_count must be positive, got " << device_count;
  std::vector<DeviceSpec> specs(static_cast<std::size_t>(device_count), spec);
  return DeviceGroup(std::move(specs), pcie, std::move(root), metrics);
}

double DeviceGroup::DeviceLinkPeakGbs(int i) const {
  KF_REQUIRE_AS(::kf::InvalidArgument, i >= 0 && i < device_count())
      << "device index " << i << " out of range (group has " << device_count()
      << ")";
  // Links are shared PcieConfig today; kept per-device for future
  // heterogeneous link speeds.
  (void)i;
  return std::max(pcie_.pinned_h2d_gbs, pcie_.pinned_d2h_gbs);
}

double DeviceGroup::TransferDerating(int concurrent) const {
  concurrent = std::clamp(concurrent, 1, device_count());
  if (concurrent <= 1) return 1.0;
  // Worst case: the `concurrent` fastest links all stream at pinned peak.
  std::vector<double> peaks;
  peaks.reserve(static_cast<std::size_t>(device_count()));
  for (int i = 0; i < device_count(); ++i) peaks.push_back(DeviceLinkPeakGbs(i));
  std::sort(peaks.begin(), peaks.end(), std::greater<>());
  double demand = 0.0;
  for (int i = 0; i < concurrent; ++i) demand += peaks[static_cast<std::size_t>(i)];
  return std::max(1.0, demand / root_.aggregate_bandwidth_gbs);
}

DeviceSimulator DeviceGroup::ContendedView(int i, int concurrent) const {
  KF_REQUIRE_AS(::kf::InvalidArgument, i >= 0 && i < device_count())
      << "device index " << i << " out of range (group has " << device_count()
      << ")";
  const double derating = TransferDerating(concurrent);
  PcieConfig derated = pcie_;
  derated.pinned_h2d_gbs /= derating;
  derated.pinned_d2h_gbs /= derating;
  derated.pageable_h2d_gbs /= derating;
  derated.pageable_d2h_gbs /= derating;
  DeviceSimulator view(device(i).spec(), derated);
  view.set_metrics(metrics_);
  view.set_instance_label(device(i).instance_label());
  metrics().GetCounter("sim.group.contended_views").Increment();
  metrics().GetGauge("sim.group.transfer_derating").Set(derating);
  return view;
}

std::vector<double> DeviceGroup::BandwidthWeights() const {
  std::vector<double> weights;
  weights.reserve(devices_.size());
  for (const auto& device : devices_) {
    weights.push_back(device->spec().sustained_mem_bytes_per_second());
  }
  return weights;
}

}  // namespace kf::sim
