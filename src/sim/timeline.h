// Discrete-event execution timeline for the simulated device.
//
// The timeline models what the CUDA driver + hardware do with a set of
// streams on a Fermi-class part:
//   * commands within one stream execute in order;
//   * commands in different streams may overlap, subject to engine resources;
//   * there is one H2D DMA engine, one D2H DMA engine, and the compute
//     engine, so one upload, one download, and kernel execution can proceed
//     simultaneously (the paper's three-stream fission pipeline, Fig 13);
//   * up to `max_concurrent_kernels` kernels may be co-resident on the
//     compute engine, sharing machine throughput in proportion to the demand
//     computed by the kernel cost model (this reproduces the concurrent-
//     kernel study of Fig 12);
//   * host-side work (the CPU gather required after fission, Fig 15) runs on
//     a separate host engine that overlaps with everything on the device.
//
// Cross-stream ordering is expressed with explicit dependencies, mirroring
// cudaStreamWaitEvent / the Stream Pool's selectWait.
#ifndef KF_SIM_TIMELINE_H_
#define KF_SIM_TIMELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/device_spec.h"

namespace kf::sim {

using StreamId = int;
using CommandId = std::size_t;

enum class CommandKind { kCopyH2D, kCopyD2H, kKernel, kHostCompute };

const char* ToString(CommandKind kind);

// What the fault injector did to a command (see sim/fault_injector.h).
// `kStreamStall` is a latency spike only — the command still succeeds;
// the other non-none kinds fail the command.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kCopyTransient,  // transient copy-engine error (H2D/D2H)
  kKernelFault,    // kernel/ECC fault on the compute engine
  kDeviceOom,      // injected allocation failure on reservation
  kStreamStall,    // latency spike; command completes successfully
};

const char* ToString(FaultKind kind);

class FaultInjector;

struct CommandSpec {
  CommandKind kind = CommandKind::kKernel;
  std::string label;

  // Copies and host work: fixed duration (seconds). Produced by PcieModel /
  // host cost models.
  SimTime duration = 0.0;

  // Kernels: runtime when alone on the device and the fraction of machine
  // throughput the launch can absorb. Produced by KernelCostModel.
  SimTime solo_duration = 0.0;
  double demand = 1.0;

  // Commands (from any stream) that must complete before this one starts.
  std::vector<CommandId> dependencies;
};

// Per-command result: timing plus outcome. With no fault injector attached
// every command succeeds (`ok`, `fault == kNone`) and this degenerates to
// the old timing-only record.
struct CommandTiming {
  SimTime ready = 0.0;  // when stream order + dependencies were satisfied
  SimTime start = 0.0;
  SimTime end = 0.0;
  bool ok = true;                       // false: command failed (transient fault)
  FaultKind fault = FaultKind::kNone;   // kStreamStall keeps ok == true
  // Command succeeded (ok == true) but delivered wrong bytes. Invisible to
  // the schedule — only the integrity layer's checksums/audits can react.
  bool corrupted = false;
};

struct TimelineStats {
  SimTime makespan = 0.0;
  // Wall time during which each engine had at least one command in flight.
  SimTime h2d_busy = 0.0;
  SimTime d2h_busy = 0.0;
  SimTime compute_busy = 0.0;
  SimTime host_busy = 0.0;
  std::size_t fault_count = 0;      // commands that failed (ok == false)
  std::size_t stall_count = 0;      // commands that hit a latency spike
  std::size_t corrupted_count = 0;  // ok commands with silently-wrong bytes
  std::vector<CommandTiming> commands;

  bool AllOk() const { return fault_count == 0; }
};

// A single-use builder/executor: add commands to streams, then Run().
class Timeline {
 public:
  explicit Timeline(const DeviceSpec& spec) : spec_(spec) {}

  // Appends a command to `stream` (created on first use) and returns its id,
  // usable as a dependency for later commands in any stream.
  CommandId AddCommand(StreamId stream, CommandSpec spec);

  std::size_t command_count() const { return commands_.size(); }

  // Attaches a fault injector consulted once per command during Run().
  // nullptr (the default) runs fault-free. The injector must outlive Run().
  void set_fault_injector(const FaultInjector* injector) { injector_ = injector; }

  // Runs the simulation to completion and returns per-command timings and
  // outcomes. A failed command still occupies its engine for its (possibly
  // stalled) duration — the fault is detected at completion, as with a CUDA
  // sync — and its dependents still run; re-issuing failed work is the
  // caller's job (the executor retries at fission-segment granularity).
  // Throws kf::Error on dependency deadlock.
  TimelineStats Run() const;

 private:
  struct Entry {
    CommandSpec spec;
    StreamId stream;
  };

  // Extra throughput lost per additional co-resident kernel (scheduling and
  // cache interference); calibrated so that two saturating kernels run
  // slightly worse concurrently than back-to-back, as in Fig 12.
  static constexpr double kCoResidencyPenalty = 0.06;

  // By value: a Timeline outlives temporaries like
  // `Timeline(DeviceSpec::TeslaC2070())`, so a reference would dangle.
  DeviceSpec spec_;
  std::vector<Entry> commands_;
  const FaultInjector* injector_ = nullptr;
};

}  // namespace kf::sim

#endif  // KF_SIM_TIMELINE_H_
