// A group of simulated devices sharing one PCIe root complex.
//
// The paper's fission pipeline overlaps copy and compute on a single C2070;
// the same segmentation is the natural unit for sharding work across
// *several* cards. A `DeviceGroup` models the fleet: N independent devices
// (own spec, cost model, memory accounting) whose host links hang off one
// root complex, so concurrent H2D/D2H traffic on different devices contends
// for the aggregate host-side bandwidth the way real multi-GPU nodes do
// (see docs/multi_device.md for the contention model and calibration).
//
// Contention model: each device's link runs at full PcieConfig bandwidth
// while the sum of concurrently active links stays under the root complex's
// aggregate bandwidth; beyond that every active link is derated by the
// oversubscription ratio (fair sharing). The derating is applied up front to
// a run's transfer times via `ContendedView` — a value `DeviceSimulator`
// whose PCIe bandwidths are scaled for the number of concurrently streaming
// devices — which keeps per-device timelines independent and deterministic.
#ifndef KF_SIM_DEVICE_GROUP_H_
#define KF_SIM_DEVICE_GROUP_H_

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "sim/device_simulator.h"

namespace kf::sim {

// The shared host-side transfer fabric. The default aggregate is calibrated
// for a dual-IOH board of the paper's era: two x16 Gen2 slots run at full
// tilt (2 x 6.3 GB/s), four slots oversubscribe the complex by ~15%.
struct RootComplexConfig {
  double aggregate_bandwidth_gbs = 22.0;
  std::string name = "PCIe 2.0 root complex";
};

class DeviceGroup {
 public:
  // One entry in `specs` per device; every device shares `pcie` link
  // parameters and the root complex. `metrics` is where `sim.group.*`
  // counters are recorded (nullptr: process-wide default registry).
  explicit DeviceGroup(std::vector<DeviceSpec> specs,
                       PcieConfig pcie = PcieConfig{},
                       RootComplexConfig root = RootComplexConfig{},
                       obs::MetricsRegistry* metrics = nullptr);

  // N identical devices (the common homogeneous-fleet case).
  static DeviceGroup Homogeneous(int device_count,
                                 DeviceSpec spec = DeviceSpec::TeslaC2070(),
                                 PcieConfig pcie = PcieConfig{},
                                 RootComplexConfig root = RootComplexConfig{},
                                 obs::MetricsRegistry* metrics = nullptr);

  int device_count() const { return static_cast<int>(devices_.size()); }

  // The persistent per-device simulators (stable addresses for the lifetime
  // of the group; each has its own DeviceMemoryModel).
  DeviceSimulator& device(int i) { return *devices_.at(static_cast<std::size_t>(i)); }
  const DeviceSimulator& device(int i) const {
    return *devices_.at(static_cast<std::size_t>(i));
  }

  const RootComplexConfig& root_complex() const { return root_; }
  const PcieConfig& pcie_config() const { return pcie_; }

  // Peak PCIe demand of device `i`'s link in GB/s (pinned, faster direction).
  double DeviceLinkPeakGbs(int i) const;

  // Bandwidth derating factor (>= 1.0) when the `concurrent` highest-demand
  // links stream transfers simultaneously. Transfer durations scale by this.
  double TransferDerating(int concurrent) const;

  // A value DeviceSimulator for device `i` whose PCIe bandwidths are derated
  // for `concurrent` simultaneously-streaming devices. Its memory model is
  // fresh (executors account capacity per run); spec, cost model, metrics
  // registry, and instance label match the persistent device. `concurrent`
  // of 1 reproduces the persistent device's transfer times exactly.
  DeviceSimulator ContendedView(int i, int concurrent) const;

  // Per-device sharding weights proportional to sustained device-memory
  // bandwidth — the throughput a streaming fission pipeline is bound by.
  std::vector<double> BandwidthWeights() const;

  obs::MetricsRegistry& metrics() const {
    return metrics_ != nullptr ? *metrics_ : obs::MetricsRegistry::Default();
  }

 private:
  // unique_ptr for address stability: executors hold `const DeviceSimulator&`.
  std::vector<std::unique_ptr<DeviceSimulator>> devices_;
  PcieConfig pcie_;
  RootComplexConfig root_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace kf::sim

#endif  // KF_SIM_DEVICE_GROUP_H_
