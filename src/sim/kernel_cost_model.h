// Analytic kernel cost model for the simulated device.
//
// Each staged RA kernel (or fused kernel) is summarized by a `KernelProfile`:
// how many elements it touches, how many scalar operations it executes per
// element, how many bytes it moves to/from device global memory, and its
// launch geometry. The model converts a profile into
//   * `solo_duration`  — runtime when the kernel has the device to itself, and
//   * `demand`         — the fraction of machine throughput it can absorb,
// which the discrete-event timeline uses for processor-sharing of the compute
// engine (concurrent kernels, Fig 12).
//
// The model captures exactly the effects the paper attributes to fusion:
//   * global-memory traffic is the common bottleneck, so removing
//     intermediate loads/stores (benefit c) shortens kernels;
//   * under-populated launches (few CTAs / threads) cannot hide memory
//     latency, so halving the geometry halves throughput (Fig 12 "new");
//   * register pressure reduces occupancy and eventually spills, which is the
//     cost side of fusing too many kernels (Section III-C).
#ifndef KF_SIM_KERNEL_COST_MODEL_H_
#define KF_SIM_KERNEL_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "common/units.h"
#include "sim/device_spec.h"

namespace kf::sim {

struct KernelProfile {
  std::string label;

  // Work volume.
  std::uint64_t elements = 0;
  double ops_per_element = 8.0;

  // Device global-memory traffic (bytes). Shared-memory/register traffic is
  // deliberately *not* counted: keeping intermediates there is the point of
  // fusion.
  std::uint64_t global_bytes_read = 0;
  std::uint64_t global_bytes_written = 0;
  // 1.0 for fully coalesced streaming access; < 1 for scattered access such
  // as the gather stage's positioned writes.
  double memory_access_efficiency = 1.0;

  // Launch geometry.
  int cta_count = 448;
  int threads_per_cta = 256;
  int registers_per_thread = 16;

  // Number of distinct device-kernel launches this profile represents (a
  // staged operator is usually 2: compute + gather).
  int launches = 1;
};

struct KernelCost {
  SimTime solo_duration = 0.0;  // runtime alone on the device (incl. launches)
  double demand = 1.0;          // fraction of machine throughput demanded
  SimTime memory_time = 0.0;    // global-memory component at full utilization
  SimTime compute_time = 0.0;   // arithmetic component at full utilization
  double occupancy = 1.0;       // resident-thread fraction after reg pressure
};

class KernelCostModel {
 public:
  explicit KernelCostModel(DeviceSpec spec) : spec_(spec) {}

  const DeviceSpec& spec() const { return spec_; }

  KernelCost Cost(const KernelProfile& profile) const;

  // Fermi register file per SM (32 K x 32-bit) and per-thread spill limit.
  static constexpr int kRegistersPerSm = 32 * 1024;
  static constexpr int kMaxRegistersPerThread = 63;

 private:
  DeviceSpec spec_;
};

}  // namespace kf::sim

#endif  // KF_SIM_KERNEL_COST_MODEL_H_
