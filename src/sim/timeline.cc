#include "sim/timeline.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/error.h"
#include "sim/fault_injector.h"

namespace kf::sim {

namespace {
constexpr SimTime kInfinity = std::numeric_limits<SimTime>::infinity();
}  // namespace

const char* ToString(CommandKind kind) {
  switch (kind) {
    case CommandKind::kCopyH2D: return "H2D";
    case CommandKind::kCopyD2H: return "D2H";
    case CommandKind::kKernel: return "KERNEL";
    case CommandKind::kHostCompute: return "HOST";
  }
  return "?";
}

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kCopyTransient: return "copy";
    case FaultKind::kKernelFault: return "kernel";
    case FaultKind::kDeviceOom: return "oom";
    case FaultKind::kStreamStall: return "stall";
  }
  return "?";
}

CommandId Timeline::AddCommand(StreamId stream, CommandSpec spec) {
  KF_REQUIRE_AS(::kf::InvalidArgument, stream >= 0)
      << "negative stream id " << stream;
  if (spec.kind == CommandKind::kKernel) {
    KF_REQUIRE_AS(::kf::InvalidArgument, spec.solo_duration >= 0 && spec.demand > 0)
        << "kernel '" << spec.label << "' needs solo_duration/demand";
  } else {
    KF_REQUIRE_AS(::kf::InvalidArgument, spec.duration >= 0)
        << "command '" << spec.label << "' negative duration";
  }
  for (CommandId dep : spec.dependencies) {
    KF_REQUIRE_AS(::kf::InvalidArgument, dep < commands_.size())
        << "command '" << spec.label << "' depends on unknown command " << dep;
  }
  commands_.push_back(Entry{std::move(spec), stream});
  return commands_.size() - 1;
}

TimelineStats Timeline::Run() const {
  const std::size_t n = commands_.size();
  TimelineStats stats;
  stats.commands.resize(n);
  if (n == 0) return stats;

  // Per-command fault decisions, drawn up front for this run's epoch. A
  // stall stretches the command's duration; a failing fault lets the command
  // occupy its engine normally and marks it failed at completion.
  std::vector<FaultDecision> decisions(n);
  if (injector_ != nullptr) {
    const std::uint64_t epoch = injector_->NextEpoch();
    for (CommandId id = 0; id < n; ++id) {
      decisions[id] = injector_->Decide(epoch, id, commands_[id].spec.kind);
    }
  }
  auto effective_duration = [&](CommandId id) {
    const CommandSpec& spec = commands_[id].spec;
    const SimTime base =
        spec.kind == CommandKind::kKernel ? spec.solo_duration : spec.duration;
    return base * decisions[id].duration_multiplier;
  };

  // Per-command bookkeeping.
  std::vector<bool> started(n, false);
  std::vector<bool> finished(n, false);
  std::vector<SimTime> end_time(n, kInfinity);
  std::vector<SimTime> ready_time(n, 0.0);

  // Per-stream predecessor (in-order execution within a stream).
  std::unordered_map<StreamId, CommandId> last_in_stream;
  std::vector<std::ptrdiff_t> predecessor(n, -1);
  for (CommandId id = 0; id < n; ++id) {
    auto it = last_in_stream.find(commands_[id].stream);
    if (it != last_in_stream.end()) predecessor[id] = static_cast<std::ptrdiff_t>(it->second);
    last_in_stream[commands_[id].stream] = id;
  }

  // Exclusive engines: H2D DMA, D2H DMA, host CPU.
  struct ExclusiveEngine {
    std::ptrdiff_t running = -1;
    SimTime busy_accum = 0.0;
  };
  ExclusiveEngine h2d, d2h, host;
  auto engine_for = [&](CommandKind kind) -> ExclusiveEngine* {
    switch (kind) {
      case CommandKind::kCopyH2D: return &h2d;
      case CommandKind::kCopyD2H: return &d2h;
      case CommandKind::kHostCompute: return &host;
      default: return nullptr;
    }
  };

  // Compute engine: processor sharing over co-resident kernels. `remaining`
  // is measured in "solo seconds" (the kernel finishes when it reaches 0);
  // `rate` is the fraction of solo speed currently granted.
  struct ActiveKernel {
    CommandId id;
    SimTime remaining;
    double rate = 1.0;
  };
  std::vector<ActiveKernel> active_kernels;

  auto recompute_rates = [&] {
    if (active_kernels.empty()) return;
    double total_demand = 0.0;
    for (const auto& k : active_kernels) total_demand += commands_[k.id].spec.demand;
    const double share = std::min(1.0, 1.0 / total_demand);
    const double penalty =
        1.0 / (1.0 + kCoResidencyPenalty * static_cast<double>(active_kernels.size() - 1));
    for (auto& k : active_kernels) k.rate = share * penalty;
  };

  SimTime now = 0.0;
  std::size_t finished_count = 0;

  auto is_ready = [&](CommandId id) {
    if (started[id]) return false;
    if (predecessor[id] >= 0 && !finished[static_cast<std::size_t>(predecessor[id])]) {
      return false;
    }
    for (CommandId dep : commands_[id].spec.dependencies) {
      if (!finished[dep]) return false;
    }
    return true;
  };

  auto compute_ready_time = [&](CommandId id) {
    SimTime t = 0.0;
    if (predecessor[id] >= 0) {
      t = std::max(t, end_time[static_cast<std::size_t>(predecessor[id])]);
    }
    for (CommandId dep : commands_[id].spec.dependencies) {
      t = std::max(t, end_time[dep]);
    }
    return t;
  };

  while (finished_count < n) {
    // --- Start everything that can start at `now`. -------------------------
    bool started_any = true;
    while (started_any) {
      started_any = false;
      // Exclusive engines pick the ready command with the earliest ready time
      // (ties broken by issue order) — FIFO per engine, like the DMA queues.
      for (CommandKind kind : {CommandKind::kCopyH2D, CommandKind::kCopyD2H,
                               CommandKind::kHostCompute}) {
        ExclusiveEngine* engine = engine_for(kind);
        if (engine->running >= 0) continue;
        std::ptrdiff_t best = -1;
        SimTime best_ready = kInfinity;
        for (CommandId id = 0; id < n; ++id) {
          if (commands_[id].spec.kind != kind || !is_ready(id)) continue;
          const SimTime r = compute_ready_time(id);
          if (r < best_ready) {
            best_ready = r;
            best = static_cast<std::ptrdiff_t>(id);
          }
        }
        if (best >= 0) {
          const auto id = static_cast<CommandId>(best);
          started[id] = true;
          engine->running = best;
          stats.commands[id].ready = best_ready;
          stats.commands[id].start = now;
          end_time[id] = now + effective_duration(id);
          started_any = true;
        }
      }
      // Compute engine: admit ready kernels up to the co-residency cap.
      while (static_cast<int>(active_kernels.size()) < spec_.max_concurrent_kernels) {
        std::ptrdiff_t pick = -1;
        SimTime pick_ready = kInfinity;
        for (CommandId id = 0; id < n; ++id) {
          if (commands_[id].spec.kind != CommandKind::kKernel || !is_ready(id)) continue;
          const SimTime r = compute_ready_time(id);
          if (r < pick_ready) {
            pick_ready = r;
            pick = static_cast<std::ptrdiff_t>(id);
          }
        }
        if (pick < 0) break;
        const auto id = static_cast<CommandId>(pick);
        started[id] = true;
        stats.commands[id].ready = pick_ready;
        stats.commands[id].start = now;
        active_kernels.push_back(
            ActiveKernel{id, std::max<SimTime>(effective_duration(id), 0.0)});
        started_any = true;
      }
      if (started_any) recompute_rates();
    }

    if (finished_count == n) break;

    // --- Find the next completion event. -----------------------------------
    SimTime next_event = kInfinity;
    for (const ExclusiveEngine* engine : {&h2d, &d2h, &host}) {
      if (engine->running >= 0) {
        next_event = std::min(next_event, end_time[static_cast<std::size_t>(engine->running)]);
      }
    }
    for (const auto& k : active_kernels) {
      next_event = std::min(next_event, now + k.remaining / k.rate);
    }
    KF_REQUIRE(next_event < kInfinity)
        << "timeline deadlock: " << (n - finished_count)
        << " commands cannot start (dependency cycle?)";

    const SimTime dt = next_event - now;

    // --- Advance clocks and engine busy accounting. ------------------------
    for (ExclusiveEngine* engine : {&h2d, &d2h, &host}) {
      if (engine->running >= 0) engine->busy_accum += dt;
    }
    if (!active_kernels.empty()) stats.compute_busy += dt;
    for (auto& k : active_kernels) k.remaining -= k.rate * dt;
    now = next_event;

    // --- Retire completed commands. ----------------------------------------
    for (ExclusiveEngine* engine : {&h2d, &d2h, &host}) {
      if (engine->running >= 0) {
        const auto id = static_cast<CommandId>(engine->running);
        if (end_time[id] <= now + 1e-12) {
          finished[id] = true;
          ++finished_count;
          stats.commands[id].end = end_time[id];
          engine->running = -1;
        }
      }
    }
    for (std::size_t i = active_kernels.size(); i-- > 0;) {
      if (active_kernels[i].remaining <= 1e-12) {
        const CommandId id = active_kernels[i].id;
        finished[id] = true;
        ++finished_count;
        end_time[id] = now;
        stats.commands[id].end = now;
        active_kernels.erase(active_kernels.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    recompute_rates();
  }

  stats.makespan = now;
  stats.h2d_busy = h2d.busy_accum;
  stats.d2h_busy = d2h.busy_accum;
  stats.host_busy = host.busy_accum;
  for (CommandId id = 0; id < n; ++id) {
    stats.commands[id].fault = decisions[id].fault;
    stats.commands[id].ok = decisions[id].fault == FaultKind::kNone ||
                            decisions[id].fault == FaultKind::kStreamStall;
    if (!stats.commands[id].ok) ++stats.fault_count;
    if (decisions[id].duration_multiplier > 1.0) ++stats.stall_count;
    stats.commands[id].corrupted = decisions[id].corrupt && stats.commands[id].ok;
    if (stats.commands[id].corrupted) ++stats.corrupted_count;
  }
  return stats;
}

}  // namespace kf::sim
