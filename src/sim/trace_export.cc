#include "sim/trace_export.h"

#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace kf::sim {

namespace {

// Track id per engine, in display order.
int TrackOf(CommandKind kind) {
  switch (kind) {
    case CommandKind::kCopyH2D: return 1;
    case CommandKind::kKernel: return 2;
    case CommandKind::kCopyD2H: return 3;
    case CommandKind::kHostCompute: return 4;
  }
  return 0;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
  }
  return out;
}

}  // namespace

std::string ToChromeTrace(const TimelineStats& stats,
                          const std::vector<TraceCommand>& commands) {
  KF_REQUIRE(commands.size() == stats.commands.size())
      << "trace metadata for " << commands.size() << " commands, stats has "
      << stats.commands.size();
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  os << "{\"traceEvents\":[";
  // Engine name metadata.
  const char* names[] = {"", "H2D copy engine", "compute engine",
                         "D2H copy engine", "host CPU"};
  bool first = true;
  for (int track = 1; track <= 4; ++track) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << track
       << ",\"args\":{\"name\":\"" << names[track] << "\"}}";
  }
  for (std::size_t i = 0; i < commands.size(); ++i) {
    const CommandTiming& timing = stats.commands[i];
    const std::string label =
        commands[i].label.empty() ? ToString(commands[i].kind) : commands[i].label;
    os << ",{\"name\":\"" << EscapeJson(label) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
       << TrackOf(commands[i].kind) << ",\"ts\":" << timing.start * 1e6
       << ",\"dur\":" << (timing.end - timing.start) * 1e6 << ",\"args\":{\"ready\":"
       << timing.ready * 1e6;
    // Failure visibility: faulted, stalled, and corrupted commands carry
    // their outcome in args so they are distinguishable in Perfetto.
    if (timing.fault != FaultKind::kNone) {
      os << ",\"fault\":\"" << ToString(timing.fault) << "\"";
    }
    os << ",\"ok\":" << (timing.ok ? "true" : "false");
    os << ",\"stalled\":"
       << (timing.fault == FaultKind::kStreamStall ? "true" : "false");
    os << ",\"corrupted\":" << (timing.corrupted ? "true" : "false");
    os << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

}  // namespace kf::sim
