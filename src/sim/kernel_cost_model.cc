#include "sim/kernel_cost_model.h"

#include <algorithm>

#include "common/error.h"

namespace kf::sim {

KernelCost KernelCostModel::Cost(const KernelProfile& profile) const {
  KF_REQUIRE(profile.cta_count > 0) << "kernel '" << profile.label << "' has no CTAs";
  KF_REQUIRE(profile.threads_per_cta > 0 &&
             profile.threads_per_cta <= spec_.max_threads_per_cta)
      << "kernel '" << profile.label << "' threads_per_cta=" << profile.threads_per_cta;
  KF_REQUIRE(profile.registers_per_thread > 0);

  KernelCost cost;

  // --- Occupancy: how many threads can be resident at once. -----------------
  // Register pressure limits residents; beyond the hardware per-thread limit
  // the compiler spills to local memory, which we charge as extra traffic.
  int effective_regs = profile.registers_per_thread;
  std::uint64_t spill_bytes = 0;
  if (effective_regs > kMaxRegistersPerThread) {
    const int spilled = effective_regs - kMaxRegistersPerThread;
    // Each spilled register costs one store + one load of 4 bytes per element.
    spill_bytes = profile.elements * static_cast<std::uint64_t>(spilled) * 8;
    effective_regs = kMaxRegistersPerThread;
  }

  const int threads_by_regs = kRegistersPerSm / effective_regs;
  const int threads_by_ctas = spec_.max_resident_ctas_per_sm * profile.threads_per_cta;
  const int resident_per_sm = std::min(
      {spec_.max_threads_per_sm, threads_by_regs, threads_by_ctas});
  cost.occupancy = static_cast<double>(resident_per_sm) /
                   static_cast<double>(spec_.max_threads_per_sm);

  // --- Machine demand: can this launch keep the device busy? ---------------
  const std::int64_t launched_threads =
      static_cast<std::int64_t>(profile.cta_count) * profile.threads_per_cta;
  const std::int64_t resident_threads =
      std::min<std::int64_t>(launched_threads,
                             static_cast<std::int64_t>(spec_.sm_count) * resident_per_sm);
  cost.demand = std::min(
      1.0, static_cast<double>(resident_threads) /
               static_cast<double>(spec_.saturation_threads()));
  cost.demand = std::max(cost.demand, 1e-3);

  // --- Time components at full utilization. --------------------------------
  const double mem_bw =
      spec_.sustained_mem_bytes_per_second() * profile.memory_access_efficiency;
  const auto traffic = static_cast<double>(profile.global_bytes_read +
                                           profile.global_bytes_written + spill_bytes);
  cost.memory_time = traffic / mem_bw;
  cost.compute_time = static_cast<double>(profile.elements) * profile.ops_per_element /
                      spec_.peak_ops_per_second();

  // A streaming kernel overlaps arithmetic with memory; the slower pipe wins.
  const SimTime busy = std::max(cost.memory_time, cost.compute_time);
  cost.solo_duration =
      busy / cost.demand +
      static_cast<double>(std::max(1, profile.launches)) * spec_.kernel_launch_overhead;
  return cost;
}

}  // namespace kf::sim
