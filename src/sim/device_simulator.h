// Facade tying the device model together.
//
// A `DeviceSimulator` owns the device spec, the PCIe model, the kernel cost
// model, and a device-memory capacity model, and provides helpers to build
// timeline commands from high-level descriptions (transfer N bytes, run this
// kernel profile). Executors in `core/` talk to this facade only.
#ifndef KF_SIM_DEVICE_SIMULATOR_H_
#define KF_SIM_DEVICE_SIMULATOR_H_

#include <cstdint>
#include <string>

#include "obs/metrics_registry.h"
#include "sim/device_spec.h"
#include "sim/kernel_cost_model.h"
#include "sim/memory_model.h"
#include "sim/pcie_model.h"
#include "sim/timeline.h"

namespace kf::sim {

class DeviceSimulator {
 public:
  explicit DeviceSimulator(DeviceSpec spec = DeviceSpec::TeslaC2070(),
                           PcieConfig pcie = PcieConfig{})
      : spec_(std::move(spec)),
        pcie_(pcie),
        cost_model_(spec_),
        memory_(spec_.mem_capacity_bytes) {}

  const DeviceSpec& spec() const { return spec_; }
  const PcieModel& pcie() const { return pcie_; }
  const KernelCostModel& cost_model() const { return cost_model_; }
  DeviceMemoryModel& memory() { return memory_; }
  const DeviceMemoryModel& memory() const { return memory_; }

  // Instance label distinguishing devices of a DeviceGroup ("dev0", "dev1",
  // ...). Empty for a standalone device; consumers (StreamPool) add a
  // `device` metric label only when set, so single-device metrics keep their
  // original label sets.
  void set_instance_label(std::string label) { instance_label_ = std::move(label); }
  const std::string& instance_label() const { return instance_label_; }

  // Where command-construction counters are recorded (`sim.commands_built`,
  // `sim.copy_bytes`). Defaults to the process-wide registry.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  obs::MetricsRegistry& metrics() const {
    return metrics_ != nullptr ? *metrics_ : obs::MetricsRegistry::Default();
  }

  // Creates a fresh timeline bound to this device.
  Timeline NewTimeline() const { return Timeline(spec_); }

  // Builds a copy command of `bytes` in `direction` using `kind` host memory.
  CommandSpec MakeCopy(std::uint64_t bytes, CopyDirection direction,
                       HostMemoryKind kind, std::string label = {}) const {
    CommandSpec cmd;
    cmd.kind = direction == CopyDirection::kHostToDevice ? CommandKind::kCopyH2D
                                                         : CommandKind::kCopyD2H;
    cmd.duration = pcie_.TransferTime(bytes, kind, direction);
    cmd.label = std::move(label);
    const char* dir = direction == CopyDirection::kHostToDevice ? "h2d" : "d2h";
    metrics().GetCounter("sim.commands_built", {{"kind", dir}}).Increment();
    metrics().GetCounter("sim.copy_bytes", {{"direction", dir}}).Increment(bytes);
    return cmd;
  }

  // Builds a kernel command from a cost-model profile.
  CommandSpec MakeKernel(const KernelProfile& profile) const {
    const KernelCost cost = cost_model_.Cost(profile);
    CommandSpec cmd;
    cmd.kind = CommandKind::kKernel;
    cmd.solo_duration = cost.solo_duration;
    cmd.demand = cost.demand;
    cmd.label = profile.label;
    metrics().GetCounter("sim.commands_built", {{"kind", "kernel"}}).Increment();
    return cmd;
  }

  // Builds a host-side compute command (e.g. the CPU gather after fission)
  // modeled as memory-bandwidth-bound on the host.
  CommandSpec MakeHostWork(std::uint64_t bytes_touched, std::string label = {}) const {
    CommandSpec cmd;
    cmd.kind = CommandKind::kHostCompute;
    cmd.duration = static_cast<double>(bytes_touched) /
                   (spec_.host_mem_bandwidth_gbs * kGB);
    cmd.label = std::move(label);
    metrics().GetCounter("sim.commands_built", {{"kind", "host"}}).Increment();
    return cmd;
  }

 private:
  DeviceSpec spec_;
  PcieModel pcie_;
  KernelCostModel cost_model_;
  DeviceMemoryModel memory_;
  std::string instance_label_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace kf::sim

#endif  // KF_SIM_DEVICE_SIMULATOR_H_
