// Seeded, deterministic fault injection for the simulated device.
//
// Real Fermi-class deployments see transient copy-engine errors, ECC kernel
// faults, device-OOM on allocation, and stream stalls; the runtime layers
// above the device model (StreamPool, QueryExecutor, QueryScheduler) must
// absorb them. The injector is the single source of those events: the
// Timeline consults it once per command, the DeviceMemoryModel once per
// reservation, and every injected event is counted into `fault.*` metrics.
//
// Determinism contract: every decision is a pure hash of (seed, epoch,
// ordinal, salt) — no wall clock, no global RNG. The epoch advances once
// per Timeline::Run, so a retried command gets a fresh draw while a re-run
// of the whole process with the same seed reproduces the exact fault
// sequence (single-worker schedulers make the epoch order deterministic).
#ifndef KF_SIM_FAULT_INJECTOR_H_
#define KF_SIM_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>

#include "obs/metrics_registry.h"
#include "sim/timeline.h"

namespace kf::sim {

// Fault rates, one Bernoulli draw per decision point. All default to zero:
// a default-constructed config injects nothing. Field names mirror the
// `KF_FAULT_*` environment variables read by FromEnv().
struct FaultConfig {
  std::uint64_t seed = 0;         // KF_FAULT_SEED
  double copy_fault_rate = 0.0;   // KF_FAULT_COPY_RATE: per copy command
  double kernel_fault_rate = 0.0; // KF_FAULT_KERNEL_RATE: per kernel command
  double oom_rate = 0.0;          // KF_FAULT_OOM_RATE: per device reservation
  double stall_rate = 0.0;        // KF_FAULT_STALL_RATE: per device command
  double stall_multiplier = 8.0;  // KF_FAULT_STALL_MULT: latency spike factor

  // Silent-corruption rates: the command *succeeds* (ok, normal duration)
  // but its bytes are wrong. Only the integrity layer's checksums/audits can
  // notice. KF_FAULT_CORRUPT_RATE sets all three at once; the per-kind
  // variables override it.
  double corrupt_h2d_rate = 0.0;     // KF_FAULT_CORRUPT_H2D_RATE
  double corrupt_d2h_rate = 0.0;     // KF_FAULT_CORRUPT_D2H_RATE
  double corrupt_kernel_rate = 0.0;  // KF_FAULT_CORRUPT_KERNEL_RATE

  bool CorruptionEnabled() const {
    return corrupt_h2d_rate > 0 || corrupt_d2h_rate > 0 ||
           corrupt_kernel_rate > 0;
  }

  bool AnyEnabled() const {
    return copy_fault_rate > 0 || kernel_fault_rate > 0 || oom_rate > 0 ||
           stall_rate > 0 || CorruptionEnabled();
  }

  // Reads the KF_FAULT_* environment variables (unset fields keep their
  // defaults). Lets the soak job and ad-hoc runs turn faults on without a
  // recompile; determinism still comes entirely from the seed.
  static FaultConfig FromEnv();
};

struct FaultDecision {
  FaultKind fault = FaultKind::kNone;
  double duration_multiplier = 1.0;  // > 1 when the command is stalled
  // The command completes "successfully" but delivers wrong bytes. Mutually
  // exclusive with a loud fault: a failed command delivers no bytes at all,
  // so the corrupt flag is cleared when a fail draw also hits.
  bool corrupt = false;
};

class FaultInjector {
 public:
  // `metrics` is where `fault.injected{kind=...}` counters are recorded;
  // nullptr means the process-wide default registry.
  explicit FaultInjector(FaultConfig config,
                         obs::MetricsRegistry* metrics = nullptr)
      : config_(config), metrics_(metrics) {}

  const FaultConfig& config() const { return config_; }

  // Starts a new decision epoch (one per Timeline::Run). Retried commands
  // re-run in a later epoch, so they draw fresh fault decisions.
  std::uint64_t NextEpoch() const {
    return epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // Current epoch without advancing it. The executor folds this into its
  // audit-sampling draw so which clusters get audited varies between runs
  // (deterministically) without perturbing the fault stream itself.
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  // Fault decision for command `command_id` of `epoch`. Pure function of
  // (seed, epoch, command_id, kind); host-side work never faults.
  FaultDecision Decide(std::uint64_t epoch, std::uint64_t command_id,
                       CommandKind kind) const;

  // One draw per device-memory reservation; true means the allocation fails
  // with an injected (transient) device OOM.
  bool InjectOomOnReservation() const;

 private:
  double Draw(std::uint64_t epoch, std::uint64_t ordinal,
              std::uint64_t salt) const;
  void Count(FaultKind kind) const;

  obs::MetricsRegistry& metrics() const {
    return metrics_ != nullptr ? *metrics_ : obs::MetricsRegistry::Default();
  }

  FaultConfig config_;
  obs::MetricsRegistry* metrics_;
  mutable std::atomic<std::uint64_t> epoch_{0};
  mutable std::atomic<std::uint64_t> oom_draws_{0};
};

}  // namespace kf::sim

#endif  // KF_SIM_FAULT_INJECTOR_H_
